#ifndef REFLEX_NET_NETWORK_H_
#define REFLEX_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/stack_costs.h"
#include "obs/hooks.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace reflex::sim {
class FaultPlan;
}  // namespace reflex::sim

namespace reflex::net {

class Network;
class TcpConnection;

/**
 * State of a machine's physical link. A link can be taken down by
 * overlapping kNetLinkFlap fault windows; it is up only when no window
 * holds it down. While down, every message sent from or to the machine
 * is dropped (senders see the drop; reliable callers must retry).
 */
class Link {
 public:
  bool up() const { return down_count_ == 0; }

 private:
  friend class Network;
  int down_count_ = 0;
};

/**
 * Transport used by a connection. The paper ships TCP ("the most
 * heavy-weight protocol used in datacenters ... a conservative choice
 * that defines a lower bound on ReFlex performance") and names UDP as
 * the future lighter option; both are modeled here.
 */
enum class Transport : uint8_t { kTcp = 0, kUdp = 1 };

/**
 * A host on the simulated network. Each machine has one full-duplex
 * NIC; its tx and rx sides are independent FIFO serialization
 * resources, which is how line-rate ceilings and NIC-level queueing
 * emerge (e.g. the 10GbE saturation in the paper's Figure 7a).
 */
class Machine {
 public:
  const std::string& name() const { return name_; }
  int id() const { return id_; }
  const NicSpec& nic() const { return nic_; }

  /** Bytes transmitted / received (wire bytes, incl. frame overhead). */
  int64_t tx_bytes() const { return tx_bytes_; }
  int64_t rx_bytes() const { return rx_bytes_; }

  /** This machine's physical link (down during link-flap windows). */
  const Link& link() const { return link_; }

 private:
  friend class Network;
  friend class TcpConnection;
  Machine(int id, std::string name, NicSpec nic)
      : id_(id), name_(std::move(name)), nic_(nic) {}

  int id_;
  std::string name_;
  NicSpec nic_;
  sim::TimeNs tx_free_ = 0;
  sim::TimeNs rx_free_ = 0;
  int64_t tx_bytes_ = 0;
  int64_t rx_bytes_ = 0;
  Link link_;
};

/**
 * Star-topology network: every machine connects to one switch. This
 * matches the paper's testbed (hosts on an Arista 7050S-64).
 */
class Network {
 public:
  /**
   * @param switch_latency store-and-forward plus fabric latency.
   * @param propagation one-way cable propagation per hop.
   */
  explicit Network(sim::Simulator& sim,
                   sim::TimeNs switch_latency = sim::Micros(1.0),
                   sim::TimeNs propagation = sim::Micros(0.3))
      : sim_(sim),
        switch_latency_(switch_latency),
        propagation_(propagation) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /** Adds a host. The returned pointer is owned by the network. */
  Machine* AddMachine(const std::string& name, NicSpec nic = NicSpec());

  sim::Simulator& sim() { return sim_; }

  /** Registers fabric-level counters (messages, wire bytes/time). */
  void AttachMetrics(obs::MetricsRegistry& registry) {
    metrics_ = obs::NetMetrics::ForFabric(registry);
  }

  /**
   * Attaches a fault-injection plan (null detaches). Connections roll
   * kNetDrop / kNetReset per message, scoped to the sending machine's
   * id, and kNetLinkFlap windows take machine links down for their
   * duration (id = machine id, or kAnyId for every machine).
   */
  void SetFaultPlan(sim::FaultPlan* plan);

  /** Messages dropped by fault injection (drops + messages sent while
   * the connection was reset or a link was down). */
  int64_t dropped_messages() const { return dropped_messages_; }
  /** Connections forcibly reset by fault injection. */
  int64_t connection_resets() const { return connection_resets_; }

 private:
  friend class TcpConnection;

  sim::Simulator& sim_;
  sim::TimeNs switch_latency_;
  sim::TimeNs propagation_;
  std::vector<std::unique_ptr<Machine>> machines_;
  obs::NetMetrics metrics_;
  sim::FaultPlan* fault_plan_ = nullptr;
  bool flap_listener_added_ = false;
  int64_t dropped_messages_ = 0;
  int64_t connection_resets_ = 0;
};

/**
 * A reliable, in-order message channel between two machines, modeling
 * an established TCP connection. Loss and congestion control are not
 * modeled (datacenter links; the paper's experiments are loss-free),
 * but serialization, propagation, switch latency, NIC latency, frame
 * segmentation (jumbo frames) and per-frame header overhead are.
 *
 * Send() is asynchronous: the callback fires at the moment the last
 * frame of the message has been received by the destination NIC.
 * Stack processing above the NIC (interrupts, syscalls, copies) is
 * charged by the caller using StackCosts, because it depends on who
 * owns the endpoint (dataplane server vs Linux client).
 */
class TcpConnection {
 public:
  TcpConnection(Network& net, Machine* client, Machine* server,
                Transport transport = Transport::kTcp);

  /** Client-to-server message. */
  void SendToServer(uint32_t bytes, std::function<void()> on_rx_nic) {
    Send(client_, server_, bytes, std::move(on_rx_nic));
  }

  /** Server-to-client message. */
  void SendToClient(uint32_t bytes, std::function<void()> on_rx_nic) {
    Send(server_, client_, bytes, std::move(on_rx_nic));
  }

  Machine* client() const { return client_; }
  Machine* server() const { return server_; }

  /** Messages in flight in either direction. */
  int64_t messages_in_flight() const { return in_flight_; }

  /**
   * Effective cache footprint of one connection's state (TCP control
   * block plus rx/tx buffers touched per message). Used by the
   * server's LLC-pressure model (paper section 5.5: performance drops
   * once connection state exceeds the last-level cache, ~5K
   * connections on the paper's testbed). UDP flows keep almost no
   * per-connection state.
   */
  static constexpr uint32_t kStateBytes = 8192;
  static constexpr uint32_t kUdpStateBytes = 512;

  Transport transport() const { return transport_; }

  /** Per-frame wire overhead for this transport (headers). */
  uint32_t FrameOverhead() const {
    return transport_ == Transport::kTcp ? 78 : 46;
  }

  uint32_t StateBytes() const {
    return transport_ == Transport::kTcp ? kStateBytes : kUdpStateBytes;
  }

  /**
   * True once the connection has been reset (by a kNetReset fault or
   * an explicit Close). Every subsequent Send is silently dropped;
   * endpoints detect the reset via timeouts and reconnect.
   */
  bool closed() const { return closed_; }
  void Close() { closed_ = true; }
  /** Re-establishes a reset connection in place (models reconnect). */
  void Reopen() { closed_ = false; }

 private:
  void Send(Machine* from, Machine* to, uint32_t bytes,
            std::function<void()> on_rx_nic);
  /** Rolls connection faults; true means the message was dropped. */
  bool DropFaulted(Machine* from, Machine* to);

  Network& net_;
  Machine* client_;
  Machine* server_;
  Transport transport_;
  int64_t in_flight_ = 0;
  bool closed_ = false;
};

}  // namespace reflex::net

#endif  // REFLEX_NET_NETWORK_H_
