#ifndef REFLEX_NET_STACK_COSTS_H_
#define REFLEX_NET_STACK_COSTS_H_

#include <cstdint>

#include "sim/random.h"
#include "sim/time.h"

namespace reflex::net {

/**
 * NIC and link parameters. Defaults model the paper's testbed: Intel
 * 82599ES 10GbE NICs behind an Arista 7050S switch, jumbo frames
 * enabled, LRO/GRO disabled.
 */
struct NicSpec {
  /** Link bandwidth in gigabits per second. */
  double bandwidth_gbps = 10.0;

  /** PCIe/DMA/MAC latency per NIC traversal (tx or rx). */
  sim::TimeNs nic_latency = sim::Micros(2.5);

  /** Jumbo frame payload (9000 MTU minus TCP/IP headers). */
  uint32_t mtu_payload = 8948;


  /** Nanoseconds to serialize one byte onto the wire. */
  double NsPerByte() const { return 8.0 / bandwidth_gbps; }
};

/**
 * CPU-cost model for a host network stack. All remote-Flash latency
 * differences between IX, Linux and iSCSI in the paper come down to
 * these per-message terms; see DESIGN.md section 5 for the calibration
 * against Table 2.
 */
struct StackCosts {
  /** CPU time to transmit one message (stack traversal, doorbells). */
  sim::TimeNs tx_per_msg = sim::Micros(1.0);

  /** CPU time to receive one message once the stack runs. */
  sim::TimeNs rx_per_msg = sim::Micros(1.0);

  /** Syscall overhead per send/recv (0 for kernel-bypass stacks). */
  sim::TimeNs syscall = 0;

  /** Data copy cost (0 for zero-copy dataplanes). */
  double copy_ns_per_byte = 0.0;

  /**
   * Interrupt-driven receive: delivery waits for interrupt coalescing,
   * uniform in [0, irq_coalesce_max] (the paper's setup coalesces at a
   * 20us interval). 0 means polled receive (no added delay).
   */
  sim::TimeNs irq_coalesce_max = 0;

  /** Median of lognormal softirq/scheduler jitter on receive. */
  sim::TimeNs sched_jitter_median = 0;

  /** Sigma of that jitter (0 disables). */
  double sched_jitter_sigma = 0.0;

  /**
   * Extra wakeup latency for blocking (non-busy-polling) receivers:
   * context switch plus run-queue delay. Models legacy clients that
   * sleep in read(2) instead of spinning on epoll.
   */
  sim::TimeNs blocking_wakeup = 0;

  /** Total CPU time to send a message of `bytes` payload. */
  sim::TimeNs TxCost(uint32_t bytes) const {
    return tx_per_msg + syscall +
           static_cast<sim::TimeNs>(copy_ns_per_byte * bytes);
  }

  /** CPU time to receive a message of `bytes` payload. */
  sim::TimeNs RxCost(uint32_t bytes) const {
    return rx_per_msg + syscall +
           static_cast<sim::TimeNs>(copy_ns_per_byte * bytes);
  }

  /**
   * Sampled delay between frame arrival at the NIC and the stack
   * starting to process it (interrupt coalescing + scheduling jitter +
   * blocking wakeup). Zero for polled dataplanes.
   */
  sim::TimeNs SampleDeliveryDelay(sim::Rng& rng) const {
    sim::TimeNs d = 0;
    if (irq_coalesce_max > 0) {
      d += static_cast<sim::TimeNs>(rng.NextDouble() *
                                    static_cast<double>(irq_coalesce_max));
    }
    if (sched_jitter_median > 0) {
      d += static_cast<sim::TimeNs>(rng.NextLognormal(
          static_cast<double>(sched_jitter_median), sched_jitter_sigma));
    }
    d += blocking_wakeup;
    return d;
  }

  /**
   * Zero-cost stack: all processing charged elsewhere. Used by layers
   * (e.g. the block-device driver) that model their kernel path
   * explicitly and must not double-count the client library's costs.
   */
  static StackCosts Null() { return StackCosts{0, 0, 0, 0.0, 0, 0, 0.0, 0}; }

  /**
   * IX-style dataplane (kernel bypass, polled, zero-copy). Used by the
   * ReFlex server and by "IX client" rows of Table 2.
   */
  static StackCosts IxDataplane() {
    StackCosts c;
    c.tx_per_msg = sim::Micros(0.9);
    c.rx_per_msg = sim::Micros(0.9);
    return c;
  }

  /**
   * Linux kernel stack with a busy-polling epoll user (mutilate-style
   * load generator): syscalls and copies but minimal sleep/wake cost.
   */
  static StackCosts LinuxEpoll() {
    StackCosts c;
    c.tx_per_msg = sim::Micros(2.2);
    c.rx_per_msg = sim::Micros(2.2);
    c.syscall = sim::Micros(1.2);
    c.copy_ns_per_byte = 0.25;
    c.irq_coalesce_max = sim::Micros(20);
    c.sched_jitter_median = sim::Micros(1.5);
    c.sched_jitter_sigma = 0.6;
    return c;
  }

  /**
   * Linux kernel stack with a blocking reader (legacy applications and
   * in-kernel completion threads that sleep between I/Os).
   */
  static StackCosts LinuxBlocking() {
    StackCosts c = LinuxEpoll();
    c.blocking_wakeup = sim::Micros(6);
    c.sched_jitter_median = sim::Micros(3);
    c.sched_jitter_sigma = 0.8;
    return c;
  }
};

}  // namespace reflex::net

#endif  // REFLEX_NET_STACK_COSTS_H_
