#include "net/network.h"

#include <algorithm>

#include "sim/fault.h"
#include "sim/logging.h"

namespace reflex::net {

Machine* Network::AddMachine(const std::string& name, NicSpec nic) {
  const int id = static_cast<int>(machines_.size());
  machines_.emplace_back(new Machine(id, name, nic));
  return machines_.back().get();
}

void Network::SetFaultPlan(sim::FaultPlan* plan) {
  fault_plan_ = plan;
  if (plan == nullptr || flap_listener_added_) return;
  flap_listener_added_ = true;
  plan->AddWindowListener(
      [this](sim::FaultKind kind, uint64_t id, bool active) {
        if (kind != sim::FaultKind::kNetLinkFlap) return;
        const int delta = active ? 1 : -1;
        if (id == sim::FaultPlan::kAnyId) {
          for (auto& m : machines_) m->link_.down_count_ += delta;
        } else if (id < machines_.size()) {
          machines_[id]->link_.down_count_ += delta;
        }
      });
}

TcpConnection::TcpConnection(Network& net, Machine* client, Machine* server,
                             Transport transport)
    : net_(net), client_(client), server_(server), transport_(transport) {
  REFLEX_CHECK(client != nullptr && server != nullptr);
  REFLEX_CHECK(client != server);
}

void TcpConnection::Send(Machine* from, Machine* to, uint32_t bytes,
                         std::function<void()> on_rx_nic) {
  REFLEX_CHECK(bytes > 0);
  sim::Simulator& sim = net_.sim_;
  // One branch on the hot path: with no plan attached and the
  // connection open, fault handling costs a single predictable test.
  if (closed_ || net_.fault_plan_ != nullptr) {
    if (DropFaulted(from, to)) return;
  }
  ++in_flight_;

  // Segment the message into jumbo frames and push each through the
  // sender NIC (FIFO serialization), the switch, and the receiver NIC
  // (FIFO serialization). The message is delivered when its last frame
  // finishes on the receiver side.
  uint32_t remaining = bytes;
  int64_t total_wire_bytes = 0;
  sim::TimeNs last_arrival = sim.Now();
  while (remaining > 0) {
    const uint32_t payload = std::min(remaining, from->nic_.mtu_payload);
    remaining -= payload;
    const uint32_t wire_bytes = payload + FrameOverhead();
    const auto tx_ser = static_cast<sim::TimeNs>(
        wire_bytes * from->nic_.NsPerByte());
    const sim::TimeNs tx_start = std::max(sim.Now(), from->tx_free_);
    const sim::TimeNs tx_end = tx_start + tx_ser;
    from->tx_free_ = tx_end;
    from->tx_bytes_ += wire_bytes;

    const sim::TimeNs at_switch = tx_end + from->nic_.nic_latency +
                                  net_.propagation_ + net_.switch_latency_;
    // Receiver link serialization (store-and-forward at the switch
    // egress port feeding the receiver NIC).
    const auto rx_ser = static_cast<sim::TimeNs>(
        wire_bytes * to->nic_.NsPerByte());
    const sim::TimeNs rx_start =
        std::max(at_switch + net_.propagation_, to->rx_free_);
    to->rx_free_ = rx_start + rx_ser;  // link occupancy only
    to->rx_bytes_ += wire_bytes;
    total_wire_bytes += wire_bytes;
    last_arrival = to->rx_free_ + to->nic_.nic_latency;
  }

  obs::NetMetrics& metrics = net_.metrics_;
  if (metrics.enabled()) {
    metrics.messages->Increment();
    metrics.wire_bytes->Add(total_wire_bytes);
    metrics.wire_ns->Record(last_arrival - sim.Now());
  }

  sim.ScheduleAt(last_arrival, [this, cb = std::move(on_rx_nic)] {
    --in_flight_;
    if (cb) cb();
  });
}

bool TcpConnection::DropFaulted(Machine* from, Machine* to) {
  sim::FaultPlan* plan = net_.fault_plan_;
  if (!closed_ && plan != nullptr &&
      plan->Roll(sim::FaultKind::kNetReset,
                 static_cast<uint64_t>(from->id_))) {
    closed_ = true;
    ++net_.connection_resets_;
    if (net_.metrics_.enabled()) {
      net_.metrics_.connection_resets->Increment();
    }
  }
  const bool link_down =
      plan != nullptr && (!from->link_.up() || !to->link_.up());
  const bool dropped =
      closed_ || link_down ||
      (plan != nullptr &&
       plan->Roll(sim::FaultKind::kNetDrop, static_cast<uint64_t>(from->id_)));
  if (dropped) {
    ++net_.dropped_messages_;
    if (net_.metrics_.enabled()) net_.metrics_.dropped_messages->Increment();
  }
  return dropped;
}

}  // namespace reflex::net
