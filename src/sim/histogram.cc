#include "sim/histogram.h"

#include <bit>
#include <cmath>
#include <cstdio>

#include "sim/logging.h"

namespace reflex::sim {

Histogram::Histogram(int sub_bucket_bits)
    : sub_bucket_bits_(sub_bucket_bits),
      sub_buckets_(int64_t{1} << sub_bucket_bits) {
  REFLEX_CHECK(sub_bucket_bits >= 2 && sub_bucket_bits <= 12);
  // Octave 0 occupies sub_buckets_ linear buckets; each further octave
  // adds sub_buckets_/2 buckets, up to 63-bit values.
  const int octaves = 64 - sub_bucket_bits_;
  buckets_.assign(sub_buckets_ + octaves * (sub_buckets_ / 2) + 1, 0);
}

int Histogram::BucketIndex(int64_t value) const {
  if (value < 0) value = 0;
  if (value < sub_buckets_) return static_cast<int>(value);
  const int e = 63 - std::countl_zero(static_cast<uint64_t>(value));
  const int o = e - sub_bucket_bits_ + 1;
  const int64_t sub = value >> o;  // in [sub_buckets_/2, sub_buckets_)
  return static_cast<int>(o * (sub_buckets_ / 2) + sub);
}

int64_t Histogram::BucketMidpoint(int index) const {
  if (index < sub_buckets_) return index;
  const int o = static_cast<int>(index / (sub_buckets_ / 2)) - 1;
  const int64_t sub = index - int64_t{o} * (sub_buckets_ / 2);
  return (sub << o) + (int64_t{1} << (o - 1));
}

void Histogram::Record(int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(int64_t value, int64_t count) {
  if (count <= 0) return;
  if (value < 0) value = 0;
  const int idx = BucketIndex(value);
  buckets_[idx] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value) *
             static_cast<double>(count);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      int64_t mid = BucketMidpoint(static_cast<int>(i));
      if (mid < min_) mid = min_;
      if (mid > max_) mid = max_;
      return mid;
    }
  }
  return max_;
}

int64_t Histogram::CountAbove(int64_t threshold) const {
  if (count_ == 0 || max_ <= threshold) return 0;
  if (threshold < min_) return count_;
  int64_t above = 0;
  for (size_t i = static_cast<size_t>(BucketIndex(threshold)) + 1;
       i < buckets_.size(); ++i) {
    above += buckets_[i];
  }
  return above;
}

double Histogram::StdDev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

void Histogram::Merge(const Histogram& other) {
  REFLEX_CHECK(other.sub_bucket_bits_ == sub_bucket_bits_);
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

void Histogram::Reset() {
  buckets_.assign(buckets_.size(), 0);
  count_ = 0;
  sum_ = sum_sq_ = 0.0;
  min_ = max_ = 0;
}

std::string Histogram::SummaryUs() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%lld avg=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus "
                "max=%.1fus",
                static_cast<long long>(count_), Mean() / 1e3,
                Percentile(0.50) / 1e3, Percentile(0.95) / 1e3,
                Percentile(0.99) / 1e3, static_cast<double>(Max()) / 1e3);
  return buf;
}

}  // namespace reflex::sim
