#ifndef REFLEX_SIM_STATS_H_
#define REFLEX_SIM_STATS_H_

#include <cstdint>

#include "sim/time.h"

namespace reflex::sim {

/**
 * Windowed rate meter: counts discrete occurrences (requests, tokens)
 * and reports a rate per second over the window since the last Reset.
 */
class RateMeter {
 public:
  explicit RateMeter(TimeNs start = 0) : window_start_(start) {}

  void Add(double n = 1.0) { count_ += n; }

  /** Rate per second over [window_start, now]. */
  double PerSecond(TimeNs now) const {
    const double dt = ToSeconds(now - window_start_);
    return dt > 0.0 ? count_ / dt : 0.0;
  }

  double Count() const { return count_; }

  void Reset(TimeNs now) {
    window_start_ = now;
    count_ = 0.0;
  }

 private:
  TimeNs window_start_;
  double count_ = 0.0;
};

/**
 * Time-weighted average of a piecewise-constant signal (queue depths,
 * utilization). Call Set() whenever the value changes.
 */
class TimeWeightedMean {
 public:
  explicit TimeWeightedMean(TimeNs start = 0)
      : last_change_(start), window_start_(start) {}

  void Set(TimeNs now, double value) {
    integral_ += value_ * ToSeconds(now - last_change_);
    value_ = value;
    last_change_ = now;
  }

  double Mean(TimeNs now) const {
    const double span = ToSeconds(now - window_start_);
    if (span <= 0.0) return value_;
    const double total = integral_ + value_ * ToSeconds(now - last_change_);
    return total / span;
  }

  double Current() const { return value_; }

  void Reset(TimeNs now) {
    window_start_ = now;
    last_change_ = now;
    integral_ = 0.0;
  }

 private:
  TimeNs last_change_;
  TimeNs window_start_;
  double value_ = 0.0;
  double integral_ = 0.0;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_STATS_H_
