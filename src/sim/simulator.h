#ifndef REFLEX_SIM_SIMULATOR_H_
#define REFLEX_SIM_SIMULATOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace reflex::sim {

class Simulator;

/**
 * Handle to one scheduled event, returned by ScheduleAt/ScheduleAfter
 * and consumed by Simulator::Cancel(). Handles are cheap value types;
 * a default-constructed handle is inert. A handle stays valid until
 * its event fires or is cancelled; after that Cancel() is a safe no-op
 * (the slab slot's generation counter detects reuse).
 */
class TimerHandle {
 public:
  TimerHandle() = default;

  /** True if this handle was issued for a scheduled event (it may have
   * fired since; only Cancel() can tell). */
  bool issued() const { return index_ != kNil; }

 private:
  friend class Simulator;
  static constexpr uint32_t kNil = ~uint32_t{0};

  TimerHandle(uint32_t index, uint64_t gen) : index_(index), gen_(gen) {}

  uint32_t index_ = kNil;
  uint64_t gen_ = 0;
};

/**
 * Deterministic discrete-event simulator.
 *
 * Events are kept in a hierarchical timer wheel: a near wheel of
 * kL0Slots one-nanosecond buckets plus coarser overflow levels that
 * cascade into it as time advances. Event nodes live in a slab with a
 * freelist (no per-event heap allocation) and store their callbacks
 * inline when they fit in kInlineCallbackBytes, so the hot
 * schedule/dispatch path never touches the allocator.
 *
 * Determinism contract: events execute in ascending (time, seq) order,
 * where seq is the order ScheduleAt/ScheduleAfter was called. Events
 * scheduled for the same timestamp therefore run FIFO, which makes
 * every run bit-reproducible given the same seeds. The wheel preserves
 * this exactly: every one-nanosecond near-wheel bucket holds events of
 * a single timestamp and is kept ordered by seq even when overflow
 * levels cascade into it.
 *
 * Stop() is sticky: it makes the *next* (or current) Run()/RunUntil()
 * return after at most the event in flight, and is consumed by that
 * return. A stop requested outside the loop is not lost (historical
 * bug: Run() used to clear the flag on entry).
 *
 * The simulator is strictly single-threaded; simulated parallelism
 * (server threads, client machines, Flash dies) is expressed as
 * interleaved events.
 */
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /** Current simulated time. */
  TimeNs Now() const { return now_; }

  /**
   * Schedules `fn` to run at absolute time `t` (>= Now()). Returns a
   * handle that can cancel the event before it fires.
   */
  template <typename F>
  TimerHandle ScheduleAt(TimeNs t, F&& fn) {
    static_assert(std::is_invocable_r_v<void, std::decay_t<F>>,
                  "event callbacks must be callable as void()");
    using Fn = std::decay_t<F>;
    const uint32_t idx = AllocAndInsert(t);
    Node& n = NodeAt(idx);
    if constexpr (sizeof(Fn) <= kInlineCallbackBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n.storage)) Fn(std::forward<F>(fn));
      n.run = [](void* p) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(p));
        (*f)();
        f->~Fn();
      };
      n.destroy = [](void* p) {
        std::launder(reinterpret_cast<Fn*>(p))->~Fn();
      };
    } else {
      // Oversized callable: the inline buffer holds a pointer instead.
      ::new (static_cast<void*>(n.storage)) Fn*(new Fn(std::forward<F>(fn)));
      n.run = [](void* p) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(p));
        (*f)();
        delete f;
      };
      n.destroy = [](void* p) {
        delete *std::launder(reinterpret_cast<Fn**>(p));
      };
    }
    return TimerHandle(idx, n.gen);
  }

  /** Schedules `fn` to run `delay` after Now(). */
  template <typename F>
  TimerHandle ScheduleAfter(TimeNs delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /**
   * Cancels the event behind `handle` if it has not fired yet. Returns
   * true and releases the event (callback destroyed, never invoked) on
   * success; returns false if the event already fired, was already
   * cancelled, or the handle is inert. The handle is reset either way.
   * Cancellation is eager: the node is unlinked immediately, so
   * PendingEvents() never counts cancelled-but-uncollected timers.
   */
  bool Cancel(TimerHandle& handle);

  /** Runs until the event queue is empty or Stop() is consumed. */
  void Run();

  /**
   * Runs all events with timestamp <= t, then sets Now() to t.
   * Returns the number of events processed by this call.
   *
   * Stop-path post-conditions (see StopHaltsRunUntil* tests): when the
   * loop exits because Stop() was requested, Now() stays at the
   * timestamp of the last event dispatched (it is NOT advanced to t),
   * the return value still counts every event dispatched by this call,
   * EventsProcessed() advanced by exactly that count, and
   * PendingEvents() counts precisely the live (uncancelled) events
   * still queued -- including any with timestamps <= t that the stop
   * left behind. A stop requested before entry is consumed by an
   * immediate return of 0 with Now() unchanged.
   */
  int64_t RunUntil(TimeNs t);

  /**
   * Requests that Run()/RunUntil() return after the current event.
   * Sticky: if no loop is active, the next Run()/RunUntil() consumes
   * the request by returning immediately.
   */
  void Stop() { stopped_ = true; }

  /** True while a Stop() request is pending (not yet consumed). */
  bool StopRequested() const { return stopped_; }

  /** Total events processed since construction. */
  int64_t EventsProcessed() const { return events_processed_; }

  /** Number of events currently pending (excludes cancelled events). */
  size_t PendingEvents() const { return live_events_; }

  /** High-water mark of PendingEvents() since construction. */
  size_t PeakPendingEvents() const { return peak_live_events_; }

 private:
  // --- Wheel geometry -------------------------------------------------
  // Level 0 buckets are exactly one nanosecond wide, so a bucket holds
  // events of a single timestamp and FIFO order within a bucket is
  // total dispatch order. Overflow levels are 64x coarser each and
  // cascade downward as the wheel position advances.
  static constexpr int kL0Bits = 12;                  // 4096 ns near window
  static constexpr uint32_t kL0Slots = 1u << kL0Bits;
  static constexpr int kLevelBits = 6;                // 64 slots per level
  static constexpr uint32_t kLevelSlots = 1u << kLevelBits;
  static constexpr int kNumLevels = 10;  // covers deltas up to 2^66 ns
  static constexpr uint32_t kNumSlots =
      kL0Slots + (kNumLevels - 1) * kLevelSlots;
  static constexpr uint32_t kNilIndex = ~uint32_t{0};
  static constexpr TimeNs kMaxTime = INT64_MAX;
  static constexpr size_t kInlineCallbackBytes = 64;
  static constexpr uint32_t kChunkSize = 1024;  // nodes per slab chunk

  struct Node {
    TimeNs time = 0;
    uint64_t seq = 0;
    /** Bumped when the node leaves the wheel; stale handles mismatch. */
    uint64_t gen = 0;
    uint32_t prev = kNilIndex;
    uint32_t next = kNilIndex;
    /** Wheel slot currently holding the node (valid while pending). */
    uint32_t slot = 0;
    bool pending = false;
    /** Invokes the callback, then destroys it (dispatch path). */
    void (*run)(void*) = nullptr;
    /** Destroys the callback without invoking (cancel/teardown path). */
    void (*destroy)(void*) = nullptr;
    alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
  };

  struct Slot {
    uint32_t head = kNilIndex;
    uint32_t tail = kNilIndex;
  };

  static constexpr int ShiftFor(int level) {
    return kL0Bits + kLevelBits * (level - 1);
  }
  static constexpr uint32_t SlotBase(int level) {
    return level == 0 ? 0 : kL0Slots + kLevelSlots * (level - 1);
  }

  Node& NodeAt(uint32_t idx) { return chunks_[idx / kChunkSize][idx % kChunkSize]; }
  const Node& NodeAt(uint32_t idx) const {
    return chunks_[idx / kChunkSize][idx % kChunkSize];
  }

  /** Allocates a slab node for time `t` (panics if t < Now()) and
   * links it into the wheel. Callback fields are left for the caller. */
  uint32_t AllocAndInsert(TimeNs t);
  /** Places node `idx` into the wheel by its time, relative to pos_. */
  void InsertNode(uint32_t idx);
  /** Unlinks a pending node from its slot, clearing bitmap bits. */
  void Unlink(Node& n);
  /** Returns the node to the freelist (generation already advanced). */
  void FreeNode(uint32_t idx);

  /**
   * Finds the earliest pending event with timestamp <= limit,
   * cascading overflow slots into lower levels as needed (never past
   * the limit, so pos_ cannot overtake the caller's clock). On
   * success, *due is its timestamp and *l0_slot the near-wheel slot
   * holding it. Returns false when no event is due within the limit.
   */
  bool NextDue(TimeNs limit, TimeNs* due, uint32_t* l0_slot);
  /** Redistributes one overflow slot into lower levels. */
  void CascadeSlot(int level, uint32_t ring);
  /** Dispatches the whole near-wheel slot (all same timestamp), honoring
   * Stop() between events. Returns the number of events run. */
  int64_t DispatchSlot(TimeNs t, uint32_t l0_slot);

  void SetOccupied(uint32_t slot_id);
  void ClearOccupied(uint32_t slot_id);
  uint32_t FindL0From(uint32_t from) const;

  TimeNs now_ = 0;
  /**
   * Wheel position: the absolute time the wheel is anchored at.
   * Invariants: pos_ <= now_ <= every pending event's timestamp, and
   * every level-k entry lies within kLevelSlots (kL0Slots for k=0)
   * granules of pos_, so circular slot order equals time order.
   */
  TimeNs pos_ = 0;
  uint64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  size_t live_events_ = 0;
  size_t peak_live_events_ = 0;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Node[]>> chunks_;
  uint32_t free_head_ = kNilIndex;

  std::vector<Slot> slots_;  // kNumSlots entries
  uint64_t l0_words_[kL0Slots / 64] = {};
  uint64_t l0_summary_ = 0;
  uint64_t level_words_[kNumLevels - 1] = {};
  /** Bit k-1 set iff level_words_[k-1] != 0: lets NextDue() visit only
   * occupied overflow levels instead of scanning all nine. */
  uint32_t active_levels_ = 0;
  /**
   * Lower bound on the due candidate (max(slot start, pos_)) of every
   * occupied overflow slot; kMaxTime when none could matter. NextDue()
   * dispatches a near-wheel event strictly below this bound without
   * scanning the overflow levels at all. Lowered on every overflow
   * insert, tightened to the exact minimum by each full scan; a stale
   * low value (after cancels empty a slot) only costs an extra scan.
   */
  TimeNs overflow_floor_ = kMaxTime;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_SIMULATOR_H_
