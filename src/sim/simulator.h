#ifndef REFLEX_SIM_SIMULATOR_H_
#define REFLEX_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace reflex::sim {

/**
 * Deterministic discrete-event simulator.
 *
 * The simulator owns a priority queue of (time, sequence, callback)
 * events. Events scheduled for the same timestamp execute in the order
 * they were scheduled (FIFO tie-break via the sequence number), which
 * makes every run bit-reproducible given the same seeds.
 *
 * The simulator is strictly single-threaded; simulated parallelism
 * (server threads, client machines, Flash dies) is expressed as
 * interleaved events.
 */
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /** Current simulated time. */
  TimeNs Now() const { return now_; }

  /** Schedules `fn` to run at absolute time `t` (>= Now()). */
  void ScheduleAt(TimeNs t, std::function<void()> fn);

  /** Schedules `fn` to run `delay` after Now(). */
  void ScheduleAfter(TimeNs delay, std::function<void()> fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /** Runs until the event queue is empty or Stop() is called. */
  void Run();

  /**
   * Runs all events with timestamp <= t, then sets Now() to t.
   * Returns the number of events processed.
   */
  int64_t RunUntil(TimeNs t);

  /** Requests that Run()/RunUntil() return after the current event. */
  void Stop() { stopped_ = true; }

  /** Total events processed since construction. */
  int64_t EventsProcessed() const { return events_processed_; }

  /** Number of events currently pending. */
  size_t PendingEvents() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs time;
    int64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeNs now_ = 0;
  int64_t next_seq_ = 0;
  int64_t events_processed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_SIMULATOR_H_
