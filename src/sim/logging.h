#ifndef REFLEX_SIM_LOGGING_H_
#define REFLEX_SIM_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace reflex::sim {

/**
 * Severity levels for simulation logging.
 *
 * Following the gem5 convention: `Fatal` is for user errors that make
 * continuing impossible (bad configuration, inadmissible SLOs given to
 * an API that demands validity); `Panic` is for internal invariant
 * violations, i.e. bugs in this library.
 */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/** Returns the process-wide minimum level that will be printed. */
LogLevel GetLogLevel();

/** Sets the process-wide minimum level that will be printed. */
void SetLogLevel(LogLevel level);

namespace internal {
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);
[[noreturn]] void FatalMessage(const char* kind, const char* file, int line,
                               const std::string& msg);
std::string FormatV(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace internal

}  // namespace reflex::sim

/** Logs a printf-style message at the given level. */
#define REFLEX_LOG(level, ...)                                       \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::reflex::sim::GetLogLevel())) {            \
      ::reflex::sim::internal::LogMessage(                           \
          level, __FILE__, __LINE__,                                 \
          ::reflex::sim::internal::FormatV(__VA_ARGS__));            \
    }                                                                \
  } while (0)

#define REFLEX_DEBUG(...) REFLEX_LOG(::reflex::sim::LogLevel::kDebug, __VA_ARGS__)
#define REFLEX_INFO(...) REFLEX_LOG(::reflex::sim::LogLevel::kInfo, __VA_ARGS__)
#define REFLEX_WARN(...) REFLEX_LOG(::reflex::sim::LogLevel::kWarn, __VA_ARGS__)
#define REFLEX_ERROR(...) REFLEX_LOG(::reflex::sim::LogLevel::kError, __VA_ARGS__)

/**
 * Terminates the process due to a user error (bad configuration or
 * arguments). Analogous to gem5's fatal().
 */
#define REFLEX_FATAL(...)                                  \
  ::reflex::sim::internal::FatalMessage(                   \
      "fatal", __FILE__, __LINE__,                         \
      ::reflex::sim::internal::FormatV(__VA_ARGS__))

/**
 * Terminates the process due to an internal invariant violation (a bug
 * in this library). Analogous to gem5's panic().
 */
#define REFLEX_PANIC(...)                                  \
  ::reflex::sim::internal::FatalMessage(                   \
      "panic", __FILE__, __LINE__,                         \
      ::reflex::sim::internal::FormatV(__VA_ARGS__))

/** Checks an invariant; panics with the stringified condition if false. */
#define REFLEX_CHECK(cond)                                           \
  do {                                                               \
    if (!(cond)) {                                                   \
      REFLEX_PANIC("check failed: %s", #cond);                       \
    }                                                                \
  } while (0)

#endif  // REFLEX_SIM_LOGGING_H_
