#include "sim/fault.h"

#include "sim/logging.h"

namespace reflex::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFlashReadError:
      return "flash_read_error";
    case FaultKind::kFlashWriteError:
      return "flash_write_error";
    case FaultKind::kFlashLatencySpike:
      return "flash_latency_spike";
    case FaultKind::kFlashBrownout:
      return "flash_brownout";
    case FaultKind::kNetDrop:
      return "net_drop";
    case FaultKind::kNetReset:
      return "net_reset";
    case FaultKind::kNetLinkFlap:
      return "net_link_flap";
    case FaultKind::kServerDeviceError:
      return "server_device_error";
    case FaultKind::kServerOutOfResources:
      return "server_out_of_resources";
  }
  return "unknown";
}

FaultPlan::FaultPlan(Simulator& sim, uint64_t seed)
    : sim_(sim), rng_(seed, "fault_plan") {}

void FaultPlan::SetProbability(FaultKind kind, double p) {
  REFLEX_CHECK(p >= 0.0 && p <= 1.0);
  prob_[static_cast<int>(kind)] = p;
}

void FaultPlan::SetProbability(FaultKind kind, uint64_t id, double p) {
  REFLEX_CHECK(p >= 0.0 && p <= 1.0);
  id_prob_[Key{static_cast<uint8_t>(kind), id}] = p;
}

double FaultPlan::probability(FaultKind kind, uint64_t id) const {
  if (id != kAnyId) {
    auto it = id_prob_.find(Key{static_cast<uint8_t>(kind), id});
    if (it != id_prob_.end()) return it->second;
  }
  return prob_[static_cast<int>(kind)];
}

bool FaultPlan::Roll(FaultKind kind, uint64_t id) {
  if (!open_windows_.empty() && WindowActive(kind, id)) {
    ++injected_[static_cast<int>(kind)];
    return true;
  }
  const double p = probability(kind, id);
  if (p <= 0.0) return false;
  if (p < 1.0 && !rng_.NextBernoulli(p)) return false;
  ++injected_[static_cast<int>(kind)];
  return true;
}

FaultPlan::WindowId FaultPlan::ScheduleWindow(FaultKind kind, TimeNs start,
                                              TimeNs duration, uint64_t id) {
  REFLEX_CHECK(start >= sim_.Now() && duration > 0);
  const WindowId wid = next_window_id_++;
  PendingWindow pw;
  pw.open =
      sim_.ScheduleAt(start, [this, kind, id] { FlipWindow(kind, id, true); });
  pw.close = sim_.ScheduleAt(start + duration, [this, kind, id, wid] {
    pending_windows_.erase(wid);
    FlipWindow(kind, id, false);
  });
  pending_windows_.emplace(wid, pw);
  return wid;
}

bool FaultPlan::CancelWindow(WindowId id) {
  auto it = pending_windows_.find(id);
  if (it == pending_windows_.end()) return false;
  // Cancelling the open event succeeds only while the window has not
  // started; an already-open window keeps its close event so the
  // nesting depth stays balanced.
  if (!sim_.Cancel(it->second.open)) return false;
  sim_.Cancel(it->second.close);
  pending_windows_.erase(it);
  return true;
}

void FaultPlan::FlipWindow(FaultKind kind, uint64_t id, bool active) {
  int& open = open_windows_[Key{static_cast<uint8_t>(kind), id}];
  open += active ? 1 : -1;
  REFLEX_CHECK(open >= 0);
  if (active) ++injected_[static_cast<int>(kind)];
  // Listeners fire on every transition, even for nested windows; they
  // must treat the signal as a +1/-1 depth change, not a boolean.
  for (const WindowListener& fn : listeners_) fn(kind, id, active);
}

bool FaultPlan::WindowActive(FaultKind kind, uint64_t id) const {
  auto open = [this](uint64_t key_id, FaultKind k) {
    auto it = open_windows_.find(Key{static_cast<uint8_t>(k), key_id});
    return it != open_windows_.end() && it->second > 0;
  };
  if (open(kAnyId, kind)) return true;
  return id != kAnyId && open(id, kind);
}

void FaultPlan::AddWindowListener(WindowListener fn) {
  listeners_.push_back(std::move(fn));
}

int64_t FaultPlan::injected(FaultKind kind) const {
  return injected_[static_cast<int>(kind)];
}

int64_t FaultPlan::total_injected() const {
  int64_t total = 0;
  for (int64_t n : injected_) total += n;
  return total;
}

}  // namespace reflex::sim
