#include "sim/coro_debug.h"

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.h"

namespace reflex::sim {
namespace {

struct FrameInfo {
  std::string tag;   // "Function (file:line)"
  uint64_t seq = 0;  // creation order, for stable reporting
};

struct Registry {
  uint64_t created = 0;
  uint64_t destroyed = 0;
  // Keyed by frame address. The pointer key is sound here: the map is
  // debug-only bookkeeping, consulted for membership and dumped only
  // inside a panic message (sorted by creation seq, not by address),
  // so hash/address order can never reach simulation event order.
  // detlint: allow(pointer-key) debug-only registry; reporting sorts
  // by creation seq so address order never affects behavior.
  std::map<const void*, FrameInfo> live;
};

Registry& GetRegistry() {
  static Registry r;
  return r;
}

}  // namespace

bool CoroDebugEnabled() {
#ifdef REFLEX_CORO_DEBUG
  return true;
#else
  return false;
#endif
}

CoroDebugStats CoroDebugGetStats() {
  const Registry& r = GetRegistry();
  return CoroDebugStats{r.created, r.destroyed,
                        static_cast<uint64_t>(r.live.size())};
}

bool CoroDebugIsLive(const void* frame) {
  return GetRegistry().live.count(frame) > 0;
}

std::vector<std::string> CoroDebugLiveTags() {
  const Registry& r = GetRegistry();
  std::vector<std::pair<uint64_t, std::string>> by_seq;
  by_seq.reserve(r.live.size());
  for (const auto& [frame, info] : r.live) {
    by_seq.emplace_back(info.seq, info.tag);
  }
  std::sort(by_seq.begin(), by_seq.end());
  std::vector<std::string> tags;
  tags.reserve(by_seq.size());
  for (auto& [seq, tag] : by_seq) tags.push_back(std::move(tag));
  return tags;
}

void CoroDebugAssertNoLiveFrames() {
  Registry& r = GetRegistry();
  if (r.live.empty()) return;
  std::string sites;
  for (const std::string& tag : CoroDebugLiveTags()) {
    sites += "\n  live frame created at ";
    sites += tag;
  }
  REFLEX_PANIC(
      "REFLEX_CORO_DEBUG: %zu coroutine frame(s) still alive at Simulator "
      "teardown (created %" PRIu64 ", destroyed %" PRIu64
      "). Every parked sim::Task must be registered via co_await "
      "sim::SelfHandle and destroy()ed by its owner before the simulator "
      "dies.%s",
      r.live.size(), r.created, r.destroyed, sites.c_str());
}

namespace internal {

void CoroDebugRegister(const void* frame, const char* function,
                       const char* file, uint32_t line) {
  Registry& r = GetRegistry();
  FrameInfo info;
  info.seq = r.created++;
  info.tag = std::string(function != nullptr ? function : "?") + " (" +
             (file != nullptr ? file : "?") + ":" + std::to_string(line) +
             ")";
  r.live[frame] = std::move(info);
}

void CoroDebugUnregister(const void* frame) {
  Registry& r = GetRegistry();
  if (r.live.erase(frame) > 0) ++r.destroyed;
}

}  // namespace internal

}  // namespace reflex::sim
