#ifndef REFLEX_SIM_TIME_H_
#define REFLEX_SIM_TIME_H_

#include <cstdint>

namespace reflex::sim {

/**
 * Simulated time, in nanoseconds since simulation start.
 *
 * All simulation components express time in this unit. A signed 64-bit
 * nanosecond counter covers ~292 years, far beyond any experiment.
 */
using TimeNs = int64_t;

/** One microsecond in simulation time units. */
inline constexpr TimeNs kMicrosecond = 1000;
/** One millisecond in simulation time units. */
inline constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
/** One second in simulation time units. */
inline constexpr TimeNs kSecond = 1000 * kMillisecond;

/** Converts a double count of microseconds to TimeNs (rounds down). */
constexpr TimeNs Micros(double us) { return static_cast<TimeNs>(us * 1e3); }
/** Converts a double count of milliseconds to TimeNs (rounds down). */
constexpr TimeNs Millis(double ms) { return static_cast<TimeNs>(ms * 1e6); }
/** Converts a double count of seconds to TimeNs (rounds down). */
constexpr TimeNs Seconds(double s) { return static_cast<TimeNs>(s * 1e9); }

/** Converts TimeNs to floating-point microseconds. */
constexpr double ToMicros(TimeNs t) { return static_cast<double>(t) / 1e3; }
/** Converts TimeNs to floating-point milliseconds. */
constexpr double ToMillis(TimeNs t) { return static_cast<double>(t) / 1e6; }
/** Converts TimeNs to floating-point seconds. */
constexpr double ToSeconds(TimeNs t) { return static_cast<double>(t) / 1e9; }

namespace literals {

constexpr TimeNs operator""_ns(unsigned long long v) {
  return static_cast<TimeNs>(v);
}
constexpr TimeNs operator""_us(unsigned long long v) {
  return static_cast<TimeNs>(v) * kMicrosecond;
}
constexpr TimeNs operator""_ms(unsigned long long v) {
  return static_cast<TimeNs>(v) * kMillisecond;
}
constexpr TimeNs operator""_s(unsigned long long v) {
  return static_cast<TimeNs>(v) * kSecond;
}

}  // namespace literals

}  // namespace reflex::sim

#endif  // REFLEX_SIM_TIME_H_
