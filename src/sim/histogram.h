#ifndef REFLEX_SIM_HISTOGRAM_H_
#define REFLEX_SIM_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace reflex::sim {

/**
 * Log-linear (HDR-style) histogram for latency samples.
 *
 * Values are bucketed with a fixed number of linear sub-buckets per
 * power-of-two range, giving a bounded relative error (~1.5% with the
 * default 64 sub-buckets) across the whole representable range while
 * using a few KB of memory. Recording is O(1); percentile queries are
 * O(#buckets).
 *
 * Units are the caller's choice (simulation code records TimeNs).
 */
class Histogram {
 public:
  /** sub_bucket_bits: log2 of sub-buckets per octave (default 64). */
  explicit Histogram(int sub_bucket_bits = 6);

  /** Records one sample. Negative values are clamped to zero. */
  void Record(int64_t value);

  /** Records `count` occurrences of one sample value. */
  void RecordMany(int64_t value, int64_t count);

  /** Total number of recorded samples. */
  int64_t Count() const { return count_; }

  /** Arithmetic mean of samples (0 if empty). */
  double Mean() const;

  /** Exact minimum recorded value (0 if empty). */
  int64_t Min() const { return count_ == 0 ? 0 : min_; }

  /** Exact maximum recorded value (0 if empty). */
  int64_t Max() const { return count_ == 0 ? 0 : max_; }

  /**
   * Value at quantile q in [0, 1] (e.g. 0.95 for p95). Returns the
   * representative (midpoint) value of the bucket containing the
   * q-quantile sample; 0 if the histogram is empty.
   */
  int64_t Percentile(double q) const;

  /** Standard deviation approximation from bucket midpoints. */
  double StdDev() const;

  /**
   * Number of recorded values above `threshold`, at bucket
   * resolution: values sharing the threshold's bucket count as
   * not-above. Used for SLO-violation counting, where the threshold
   * is orders of magnitude above the bucket width.
   */
  int64_t CountAbove(int64_t threshold) const;

  /** Merges another histogram (same geometry) into this one. */
  void Merge(const Histogram& other);

  /** Discards all samples. */
  void Reset();

  /** Human-readable one-line summary in microseconds. */
  std::string SummaryUs() const;

 private:
  int BucketIndex(int64_t value) const;
  int64_t BucketMidpoint(int index) const;

  int sub_bucket_bits_;
  int64_t sub_buckets_;  // per octave
  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_HISTOGRAM_H_
