#ifndef REFLEX_SIM_FAULT_H_
#define REFLEX_SIM_FAULT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace reflex::sim {

/**
 * Fault classes injectable into the simulation. Each class is consumed
 * by exactly one subsystem: the Flash device model (read/write media
 * errors, per-op latency spikes, whole-device brownouts), the network
 * model (message drops, connection resets, link flaps) and the server
 * dataplane (forced error replies).
 */
enum class FaultKind : uint8_t {
  kFlashReadError = 0,     // read completes with a media error
  kFlashWriteError,        // write completes with a media error
  kFlashLatencySpike,      // op delayed by latency_spike()
  kFlashBrownout,          // all die service scaled by brownout_slowdown()
  kNetDrop,                // message silently lost on the wire
  kNetReset,               // connection closed; all later sends dropped
  kNetLinkFlap,            // machine link down; sends through it dropped
  kServerDeviceError,      // server replies kDeviceError without device I/O
  kServerOutOfResources,   // server replies kOutOfResources
};

inline constexpr int kNumFaultKinds = 9;

/** Stable lower-case name, e.g. "flash_read_error". */
const char* FaultKindName(FaultKind kind);

/**
 * A deterministic, schedulable fault-injection plan.
 *
 * A FaultPlan owns its own named RNG stream, so attaching one to a
 * simulation perturbs no other component's draws: with every
 * probability at zero and no windows scheduled, the simulation is
 * bit-identical to a run without the plan.
 *
 * Two injection mechanisms compose:
 *
 *  - steady-state probabilities: Roll(kind, id) returns true with the
 *    configured per-kind (or per-id override) probability;
 *  - scheduled windows: ScheduleWindow() arms on/off events in the DES
 *    event queue. While a window for (kind, id) is active, Roll() for
 *    that (kind, id) always fires and WindowActive() reports true, so
 *    hard fault episodes ("the die is gone from t1 to t2") are exactly
 *    reproducible.
 *
 * `id` scopes a fault to one entity -- a Flash die index for the flash
 * kinds, a machine id for the net kinds. kAnyId means device-/
 * fabric-wide.
 */
class FaultPlan {
 public:
  static constexpr uint64_t kAnyId = ~uint64_t{0};

  FaultPlan(Simulator& sim, uint64_t seed);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /** Sets the kind-wide injection probability (0 disables). */
  void SetProbability(FaultKind kind, double p);

  /** Sets a per-id override (falls back to the kind-wide value). */
  void SetProbability(FaultKind kind, uint64_t id, double p);

  double probability(FaultKind kind, uint64_t id = kAnyId) const;

  /**
   * One injection decision. Returns true inside an active window for
   * (kind, id), else Bernoulli(probability). Draws from the plan's RNG
   * only when the effective probability is in (0, 1), so disabled
   * kinds cost nothing and stay deterministic.
   */
  bool Roll(FaultKind kind, uint64_t id = kAnyId);

  /** Identifies one scheduled window for CancelWindow(). */
  using WindowId = int64_t;

  /**
   * Arms a fault window [start, start + duration) via the event queue.
   * Windows for the same (kind, id) nest: the state is active while at
   * least one window covers the current time. Returns an id that can
   * cancel the window before it opens.
   */
  WindowId ScheduleWindow(FaultKind kind, TimeNs start, TimeNs duration,
                          uint64_t id = kAnyId);

  /**
   * Cancels a scheduled window that has not opened yet: both its on
   * and off events are released and it never fires its listeners.
   * Returns false (and changes nothing) if the window already opened,
   * already finished, or the id is unknown -- an open window still
   * closes at its scheduled end.
   */
  bool CancelWindow(WindowId id);

  /** True while a window for (kind, id) or (kind, kAnyId) is active. */
  bool WindowActive(FaultKind kind, uint64_t id = kAnyId) const;

  /**
   * Registers a callback fired on every window transition with
   * (kind, id, active). Used by the control plane (brownout shedding)
   * and the network (link state).
   */
  using WindowListener = std::function<void(FaultKind, uint64_t, bool)>;
  void AddWindowListener(WindowListener fn);

  /** Extra latency added when a kFlashLatencySpike fires. */
  void set_latency_spike(TimeNs spike) { latency_spike_ = spike; }
  TimeNs latency_spike() const { return latency_spike_; }

  /** Die-service multiplier while a kFlashBrownout window is active. */
  void set_brownout_slowdown(double factor) { brownout_slowdown_ = factor; }
  double brownout_slowdown() const { return brownout_slowdown_; }

  /** Faults injected so far (Roll hits plus window starts). */
  int64_t injected(FaultKind kind) const;
  int64_t total_injected() const;

 private:
  using Key = std::pair<uint8_t, uint64_t>;

  /** Timer handles of one scheduled-but-unfinished window. */
  struct PendingWindow {
    TimerHandle open;
    TimerHandle close;
  };

  void FlipWindow(FaultKind kind, uint64_t id, bool active);

  Simulator& sim_;
  Rng rng_;
  std::array<double, kNumFaultKinds> prob_{};
  std::map<Key, double> id_prob_;
  /** Count of currently-open windows per (kind, id). */
  std::map<Key, int> open_windows_;
  /** Scheduled windows whose close event has not fired yet. */
  std::map<WindowId, PendingWindow> pending_windows_;
  WindowId next_window_id_ = 1;
  std::array<int64_t, kNumFaultKinds> injected_{};
  std::vector<WindowListener> listeners_;
  TimeNs latency_spike_ = Micros(500);
  double brownout_slowdown_ = 8.0;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_FAULT_H_
