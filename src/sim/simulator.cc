#include "sim/simulator.h"

#include "sim/coro_debug.h"
#include "sim/logging.h"

namespace reflex::sim {

namespace {

/**
 * Index of the first set bit at ring position >= from, searching
 * circularly. `from` must be in [0, 64); `word` must be nonzero.
 */
inline uint32_t NextSet64From(uint64_t word, uint32_t from) {
  const uint64_t ahead = word >> from;
  if (ahead != 0) {
    return from + static_cast<uint32_t>(std::countr_zero(ahead));
  }
  return static_cast<uint32_t>(std::countr_zero(word));
}

/** Circular distance from `from` to `to` on a ring of `size` slots. */
inline uint64_t RingDistance(uint32_t from, uint32_t to, uint32_t size) {
  return (to + size - from) & (size - 1);
}

}  // namespace

Simulator::Simulator() : slots_(kNumSlots) {}

Simulator::~Simulator() {
  // Under REFLEX_CORO_DEBUG, every coroutine frame must already be
  // destroyed: completed tasks self-destructed, parked tasks were
  // destroy()ed by their owners (via their SelfHandle slots) before
  // the simulator. A frame still alive here is the leak class LSan
  // cannot see -- its handle is stored, so it is reachable, yet
  // nothing will ever run or free it. Checked before callbacks are
  // torn down so the report fires ahead of any use-after-free.
  CoroDebugAssertNoLiveFrames();
  // Destroy the callbacks of events that never fired. Nodes are walked
  // through the slab rather than the wheel so the teardown cost is
  // independent of wheel state.
  for (auto& chunk : chunks_) {
    for (uint32_t i = 0; i < kChunkSize; ++i) {
      Node& n = chunk[i];
      if (n.pending) n.destroy(n.storage);
    }
  }
}

uint32_t Simulator::AllocAndInsert(TimeNs t) {
  if (t < now_) {
    REFLEX_PANIC("event scheduled in the past: t=%lld now=%lld",
                 static_cast<long long>(t), static_cast<long long>(now_));
  }
  uint32_t idx = free_head_;
  if (idx != kNilIndex) {
    free_head_ = NodeAt(idx).next;
  } else {
    idx = static_cast<uint32_t>(chunks_.size()) * kChunkSize;
    chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    // Thread the rest of the fresh chunk onto the freelist.
    for (uint32_t i = kChunkSize - 1; i >= 1; --i) {
      NodeAt(idx + i).next = free_head_;
      free_head_ = idx + i;
    }
  }
  Node& n = NodeAt(idx);
  n.time = t;
  n.seq = next_seq_++;
  n.pending = true;
  InsertNode(idx);
  ++live_events_;
  if (live_events_ > peak_live_events_) peak_live_events_ = live_events_;
  return idx;
}

void Simulator::InsertNode(uint32_t idx) {
  Node& n = NodeAt(idx);
  const auto delta = static_cast<uint64_t>(n.time - pos_);
  uint32_t slot_id;
  int level;
  if (delta < kL0Slots) {
    level = 0;
    slot_id = static_cast<uint32_t>(n.time) & (kL0Slots - 1);
  } else {
    const int high_bit = 63 - std::countl_zero(delta);
    level = (high_bit - kL0Bits) / kLevelBits + 1;
    if (level > kNumLevels - 1) level = kNumLevels - 1;
    // When pos_ sits mid-bucket, a delta near the top of this level's
    // range can land exactly kLevelSlots buckets ahead, aliasing the
    // ring slot that holds pos_ itself; promote such nodes one level
    // so circular slot order keeps matching time order. (At the top
    // level the distance is bounded by 8, so no promotion is needed.)
    while (level < kNumLevels - 1 &&
           (static_cast<uint64_t>(n.time) >> ShiftFor(level)) -
                   (static_cast<uint64_t>(pos_) >> ShiftFor(level)) >=
               kLevelSlots) {
      ++level;
    }
    const int shift = ShiftFor(level);
    slot_id = SlotBase(level) +
              (static_cast<uint32_t>(static_cast<uint64_t>(n.time) >> shift) &
               (kLevelSlots - 1));
    const auto start =
        static_cast<TimeNs>((static_cast<uint64_t>(n.time) >> shift) << shift);
    if (start < overflow_floor_) overflow_floor_ = start;
  }
  n.slot = slot_id;
  Slot& s = slots_[slot_id];
  if (level == 0) {
    // A level-0 bucket is one nanosecond wide, so every node in it has
    // the same timestamp and the list must stay ordered by seq: direct
    // schedules append (seq is monotonic), while cascades from
    // overflow levels may carry older sequence numbers and walk
    // backwards to their position.
    uint32_t after = s.tail;
    while (after != kNilIndex && NodeAt(after).seq > n.seq) {
      after = NodeAt(after).prev;
    }
    n.prev = after;
    if (after == kNilIndex) {
      n.next = s.head;
      s.head = idx;
    } else {
      Node& a = NodeAt(after);
      n.next = a.next;
      a.next = idx;
    }
    if (n.next == kNilIndex) {
      s.tail = idx;
    } else {
      NodeAt(n.next).prev = idx;
    }
  } else {
    // Overflow slots are unordered holding pens; order is re-derived
    // when they cascade down.
    n.prev = s.tail;
    n.next = kNilIndex;
    if (s.tail == kNilIndex) {
      s.head = idx;
    } else {
      NodeAt(s.tail).next = idx;
    }
    s.tail = idx;
  }
  SetOccupied(slot_id);
}

void Simulator::Unlink(Node& n) {
  Slot& s = slots_[n.slot];
  if (n.prev == kNilIndex) {
    s.head = n.next;
  } else {
    NodeAt(n.prev).next = n.next;
  }
  if (n.next == kNilIndex) {
    s.tail = n.prev;
  } else {
    NodeAt(n.next).prev = n.prev;
  }
  if (s.head == kNilIndex) ClearOccupied(n.slot);
}

void Simulator::FreeNode(uint32_t idx) {
  Node& n = NodeAt(idx);
  n.next = free_head_;
  free_head_ = idx;
}

void Simulator::SetOccupied(uint32_t slot_id) {
  if (slot_id < kL0Slots) {
    l0_words_[slot_id >> 6] |= uint64_t{1} << (slot_id & 63);
    l0_summary_ |= uint64_t{1} << (slot_id >> 6);
  } else {
    const uint32_t level = 1 + (slot_id - kL0Slots) / kLevelSlots;
    const uint32_t ring = (slot_id - kL0Slots) % kLevelSlots;
    level_words_[level - 1] |= uint64_t{1} << ring;
    active_levels_ |= uint32_t{1} << (level - 1);
  }
}

void Simulator::ClearOccupied(uint32_t slot_id) {
  if (slot_id < kL0Slots) {
    l0_words_[slot_id >> 6] &= ~(uint64_t{1} << (slot_id & 63));
    if (l0_words_[slot_id >> 6] == 0) {
      l0_summary_ &= ~(uint64_t{1} << (slot_id >> 6));
    }
  } else {
    const uint32_t level = 1 + (slot_id - kL0Slots) / kLevelSlots;
    const uint32_t ring = (slot_id - kL0Slots) % kLevelSlots;
    level_words_[level - 1] &= ~(uint64_t{1} << ring);
    if (level_words_[level - 1] == 0) {
      active_levels_ &= ~(uint32_t{1} << (level - 1));
    }
  }
}

uint32_t Simulator::FindL0From(uint32_t from) const {
  const uint32_t w = from >> 6;
  const uint32_t b = from & 63;
  const uint64_t first = l0_words_[w] >> b;
  if (first != 0) {
    return (w << 6) + b + static_cast<uint32_t>(std::countr_zero(first));
  }
  // The rest of word w (bits below b) belongs to the next wrap, so it
  // is circularly *last*: search the summary from w+1 and fall back to
  // the lowest set bit (which lands on w again only via full wrap).
  const uint32_t wi = NextSet64From(l0_summary_, (w + 1) & 63);
  return (wi << 6) +
         static_cast<uint32_t>(std::countr_zero(l0_words_[wi]));
}

bool Simulator::NextDue(TimeNs limit, TimeNs* due, uint32_t* l0_slot) {
  for (;;) {
    // Near-wheel candidate: exact timestamp of the earliest L0 event.
    bool have0 = false;
    TimeNs t0 = 0;
    uint32_t ring0 = 0;
    if (l0_summary_ != 0) {
      const auto cur = static_cast<uint32_t>(pos_) & (kL0Slots - 1);
      ring0 = FindL0From(cur);
      t0 = pos_ + static_cast<TimeNs>(RingDistance(cur, ring0, kL0Slots));
      have0 = true;
      // Fast path: strictly below the overflow floor no occupied
      // overflow slot can hold an earlier (or equal) event, so the
      // near-wheel event dispatches without scanning the levels.
      if (t0 < overflow_floor_) {
        if (t0 > limit) return false;
        *due = t0;
        *l0_slot = ring0;
        return true;
      }
    }

    // Overflow candidates: start time of the next occupied slot per
    // level. Any overflow slot whose window could contain an event at
    // or before t0 must cascade before t0 may dispatch, or a stale
    // upper-level event could be overtaken.
    int best_level = -1;
    uint32_t best_ring = 0;
    TimeNs best_cand = 0;
    for (uint32_t mask = active_levels_; mask != 0; mask &= mask - 1) {
      const int k = std::countr_zero(mask) + 1;
      const uint64_t word = level_words_[k - 1];
      const int shift = ShiftFor(k);
      const uint64_t cur_bucket = static_cast<uint64_t>(pos_) >> shift;
      const auto cur = static_cast<uint32_t>(cur_bucket) & (kLevelSlots - 1);
      const uint32_t ring = NextSet64From(word, cur);
      const uint64_t bucket =
          cur_bucket + RingDistance(cur, ring, kLevelSlots);
      const auto start = static_cast<TimeNs>(bucket << shift);
      const TimeNs cand = start > pos_ ? start : pos_;
      if (best_level < 0 || cand < best_cand) {
        best_level = k;
        best_ring = ring;
        best_cand = cand;
      }
    }
    // Tighten the floor to the exact minimum candidate. Candidates
    // only grow as pos_ advances and slots empty, and inserts lower
    // the floor again, so this stays a valid lower bound.
    overflow_floor_ = best_level < 0 ? kMaxTime : best_cand;

    if (best_level < 0) {
      if (!have0 || t0 > limit) return false;
      *due = t0;
      *l0_slot = ring0;
      return true;
    }
    if (have0 && t0 < best_cand) {
      if (t0 > limit) return false;
      *due = t0;
      *l0_slot = ring0;
      return true;
    }
    // Never cascade a slot that cannot hold an event due within the
    // caller's horizon: cascading advances pos_, and letting pos_
    // overtake the caller's clock would make later near-time inserts
    // compute a negative (wrapped) delta and misplace themselves.
    if (best_cand > limit) return false;
    CascadeSlot(best_level, best_ring);
  }
}

void Simulator::CascadeSlot(int level, uint32_t ring) {
  const int shift = ShiftFor(level);
  const uint64_t cur_bucket = static_cast<uint64_t>(pos_) >> shift;
  const auto cur = static_cast<uint32_t>(cur_bucket) & (kLevelSlots - 1);
  const uint64_t bucket = cur_bucket + RingDistance(cur, ring, kLevelSlots);
  const auto start = static_cast<TimeNs>(bucket << shift);
  // Anchor the wheel at the slot being opened: its events then span
  // less than one level-`level` granule past pos_, so each lands at a
  // strictly lower level and the cascade terminates.
  if (start > pos_) pos_ = start;

  const uint32_t slot_id = SlotBase(level) + ring;
  uint32_t idx = slots_[slot_id].head;
  slots_[slot_id].head = kNilIndex;
  slots_[slot_id].tail = kNilIndex;
  ClearOccupied(slot_id);
  while (idx != kNilIndex) {
    const uint32_t next = NodeAt(idx).next;
    InsertNode(idx);
    idx = next;
  }
}

int64_t Simulator::DispatchSlot(TimeNs t, uint32_t l0_slot) {
  if (t > pos_) pos_ = t;
  Slot& s = slots_[l0_slot];
  int64_t count = 0;
  // Every event in a near-wheel bucket shares timestamp t, so the
  // clock moves once for the whole batch.
  now_ = t;
  // Batch-dispatch the whole same-timestamp run. Callbacks may append
  // new events for this same timestamp (they carry higher seq numbers,
  // so they belong at the tail) or cancel later ones; re-reading the
  // head each iteration observes both.
  while (s.head != kNilIndex && !stopped_) {
    const uint32_t idx = s.head;
    Node& n = NodeAt(idx);
    // Head pop, specialized from Unlink(): the head has no
    // predecessor, so only the forward link and tail need fixing.
    s.head = n.next;
    if (n.next == kNilIndex) {
      s.tail = kNilIndex;
      ClearOccupied(l0_slot);
    } else {
      NodeAt(n.next).prev = kNilIndex;
    }
    n.pending = false;
    ++n.gen;  // outstanding handles to this event are now stale
    ++events_processed_;
    --live_events_;
    ++count;
    n.run(n.storage);
    FreeNode(idx);
  }
  return count;
}

bool Simulator::Cancel(TimerHandle& handle) {
  const uint32_t idx = handle.index_;
  const uint64_t gen = handle.gen_;
  handle = TimerHandle();
  if (idx == kNilIndex) return false;
  if (idx >= chunks_.size() * kChunkSize) return false;
  Node& n = NodeAt(idx);
  if (!n.pending || n.gen != gen) return false;
  Unlink(n);
  n.pending = false;
  ++n.gen;
  n.destroy(n.storage);
  FreeNode(idx);
  --live_events_;
  return true;
}

void Simulator::Run() {
  if (stopped_) {
    // Sticky stop requested before entry: consume it without running
    // anything (historically this was silently dropped).
    stopped_ = false;
    return;
  }
  TimeNs due = 0;
  uint32_t slot = 0;
  while (NextDue(kMaxTime, &due, &slot)) {
    DispatchSlot(due, slot);
    if (stopped_) {
      stopped_ = false;
      return;
    }
  }
}

int64_t Simulator::RunUntil(TimeNs t) {
  if (stopped_) {
    stopped_ = false;
    return 0;
  }
  int64_t processed = 0;
  TimeNs due = 0;
  uint32_t slot = 0;
  while (NextDue(t, &due, &slot)) {
    processed += DispatchSlot(due, slot);
    if (stopped_) {
      // Stop path: Now() stays at the last dispatched event; the clock
      // is not advanced to t (see RunUntil() contract).
      stopped_ = false;
      return processed;
    }
  }
  if (now_ < t) now_ = t;
  if (pos_ < t) pos_ = t;
  return processed;
}

}  // namespace reflex::sim
