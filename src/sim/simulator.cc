#include "sim/simulator.h"

#include <utility>

#include "sim/logging.h"

namespace reflex::sim {

void Simulator::ScheduleAt(TimeNs t, std::function<void()> fn) {
  if (t < now_) {
    REFLEX_PANIC("event scheduled in the past: t=%lld now=%lld",
                 static_cast<long long>(t), static_cast<long long>(now_));
  }
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::Run() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    // std::priority_queue::top() returns a const ref; the function
    // object must be moved out before pop, so copy the event husk.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
  }
}

int64_t Simulator::RunUntil(TimeNs t) {
  stopped_ = false;
  int64_t processed = 0;
  while (!queue_.empty() && !stopped_ && queue_.top().time <= t) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ++processed;
    ev.fn();
  }
  if (!stopped_ && now_ < t) now_ = t;
  return processed;
}

}  // namespace reflex::sim
