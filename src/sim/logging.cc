#include "sim/logging.h"

#include <cstdarg>
#include <cstdio>

namespace reflex::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

void FatalMessage(const char* kind, const char* file, int line,
                  const std::string& msg) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", kind, file, line, msg.c_str());
  std::abort();
}

std::string FormatV(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[1024];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf);
}

}  // namespace internal

}  // namespace reflex::sim
