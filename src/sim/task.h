#ifndef REFLEX_SIM_TASK_H_
#define REFLEX_SIM_TASK_H_

#include <coroutine>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

#include "sim/logging.h"
#include "sim/simulator.h"
#include "sim/time.h"

#ifdef REFLEX_CORO_DEBUG
#include <source_location>

#include "sim/coro_debug.h"
#endif

namespace reflex::sim {

/**
 * A detached simulation process implemented as a C++20 coroutine.
 *
 * Tasks start eagerly and own their own lifetime: the coroutine frame
 * is destroyed automatically when the body finishes. Simulation
 * processes communicate through Future/Promise pairs, Semaphores, or
 * explicit callbacks rather than by joining Task objects.
 *
 * Ownership rulebook (DESIGN.md section 18, enforced by corolint):
 * a Task that can outlive the code that spawned it -- any infinite
 * polling loop, or any await on an event that may never fire -- must
 * publish its handle via `co_await SelfHandle(&slot_)` so a designated
 * owner can destroy() the parked frame at teardown, and must clear
 * that slot on every normal-return path. Parameters are passed by
 * value or pointer, never by reference, and coroutine lambdas never
 * capture: the frame suspends, and referents/captures die under it.
 *
 * With -DREFLEX_CORO_DEBUG=ON every frame registers itself with the
 * coro_debug registry on creation (tagged with the coroutine's name)
 * and unregisters on destruction; ~Simulator() asserts that no frames
 * are left alive. See src/sim/coro_debug.h.
 *
 * Usage:
 *   Task ServerLoop(Simulator& sim, ...) {
 *     co_await SelfHandle(&loop_handle_);
 *     for (;;) {
 *       co_await Delay(sim, 5 * kMicrosecond);
 *       ...
 *     }
 *   }
 */
class Task {
 public:
  struct promise_type {
#ifdef REFLEX_CORO_DEBUG
    // The defaulted source_location resolves to the coroutine that
    // this promise is synthesized into, tagging the frame with its
    // creation site for the teardown report.
    explicit promise_type(
        std::source_location loc = std::source_location::current()) {
      internal::CoroDebugRegister(
          std::coroutine_handle<promise_type>::from_promise(*this).address(),
          loc.function_name(), loc.file_name(), loc.line());
    }
    ~promise_type() {
      internal::CoroDebugUnregister(
          std::coroutine_handle<promise_type>::from_promise(*this).address());
    }
#endif
    Task get_return_object() noexcept { return Task{}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() {
      REFLEX_PANIC("unhandled exception escaped a sim::Task");
    }
  };
};

/**
 * Awaitable that exposes the current coroutine's own handle without
 * suspending it. A long-lived loop stores the handle into a member its
 * owner can see; the owner may then destroy() the frame at teardown if
 * the loop is still parked on an awaitable whose wake event will never
 * run (e.g. a simulation that ends while the loop waits for work). The
 * coroutine must clear the slot before finishing normally -- with
 * suspend_never final_suspend the frame self-destructs and the stored
 * handle would dangle.
 */
class SelfHandle {
 public:
  explicit SelfHandle(std::coroutine_handle<>* out) : out_(out) {}

  bool await_ready() const noexcept { return false; }
  bool await_suspend(std::coroutine_handle<> h) noexcept {
    *out_ = h;
    return false;  // capture only; resume immediately
  }
  void await_resume() const noexcept {}

 private:
  std::coroutine_handle<>* out_;
};

/**
 * Awaitable that suspends the current task for `delay` of simulated
 * time. A zero (or negative) delay still round-trips through the event
 * queue so that same-time events retain FIFO ordering.
 */
class Delay {
 public:
  Delay(Simulator& sim, TimeNs delay) : sim_(sim), delay_(delay) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim_.ScheduleAfter(delay_ > 0 ? delay_ : 0, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Simulator& sim_;
  TimeNs delay_;
};

namespace internal {

template <typename T>
struct FutureState {
  Simulator* sim = nullptr;
  std::optional<T> value;
  std::coroutine_handle<> waiter;

  void Deliver() {
    if (waiter) {
      auto h = waiter;
      waiter = nullptr;
      // Resume through the event queue: keeps stack depth bounded and
      // event ordering deterministic.
      sim->ScheduleAfter(0, [h] { h.resume(); });
    }
  }
};

}  // namespace internal

template <typename T>
class Promise;

/**
 * Single-shot value channel between simulation processes. A Future is
 * awaited (at most one waiter); its Promise is fulfilled exactly once.
 * Copies share the same underlying state.
 */
template <typename T>
class Future {
 public:
  Future() : state_(std::make_shared<internal::FutureState<T>>()) {}

  bool Ready() const { return state_->value.has_value(); }

  /** Returns the value. Requires Ready(). */
  const T& Get() const {
    REFLEX_CHECK(state_->value.has_value());
    return *state_->value;
  }

  bool await_ready() const noexcept { return state_->value.has_value(); }
  void await_suspend(std::coroutine_handle<> h) {
    REFLEX_CHECK(!state_->waiter);  // single waiter
    state_->waiter = h;
  }
  T await_resume() {
    REFLEX_CHECK(state_->value.has_value());
    return std::move(*state_->value);
  }

 private:
  friend class Promise<T>;
  std::shared_ptr<internal::FutureState<T>> state_;
};

/** Producer side of a Future<T>. */
template <typename T>
class Promise {
 public:
  explicit Promise(Simulator& sim) {
    future_.state_->sim = &sim;
  }

  Future<T> GetFuture() const { return future_; }

  /** Fulfills the future; any waiter resumes via the event queue. */
  void Set(T value) {
    auto& st = *future_.state_;
    REFLEX_CHECK(!st.value.has_value());
    st.value = std::move(value);
    st.Deliver();
  }

 private:
  Future<T> future_;
};

/** Tag type so Future<Unit>/Promise<Unit> model void completions. */
struct Unit {};

using VoidFuture = Future<Unit>;
using VoidPromise = Promise<Unit>;

/**
 * Counted resource with FIFO waiters. Models bounded resources such as
 * Flash write-buffer slots or client queue-depth limits.
 *
 * Ownership rule: a coroutine parked in Acquire() is owned by whoever
 * may destroy() its frame, and that owner must not destroy the frame
 * while it is still queued here -- Release() would resume freed
 * memory. Either drain the semaphore (release until Waiters()==0 and
 * let the waiters finish) before tearing frames down, or never
 * destroy a frame that is mid-Acquire. Under REFLEX_CORO_DEBUG the
 * resume path asserts the frame is still registered and panics with a
 * diagnosis instead of corrupting memory.
 */
class Semaphore {
 public:
  Semaphore(Simulator& sim, int64_t initial)
      : sim_(sim), available_(initial) {}

  /** Awaitable acquire of one unit. */
  auto Acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept { return sem.TryAcquire(); }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /** Non-blocking acquire. */
  bool TryAcquire() {
    if (available_ > 0 && waiters_.empty()) {
      --available_;
      return true;
    }
    if (available_ > 0) {
      // Units available but waiters queued: preserve FIFO fairness.
      return false;
    }
    return false;
  }

  /** Releases one unit, waking the oldest waiter if any. */
  void Release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.ScheduleAfter(0, [h] {
#ifdef REFLEX_CORO_DEBUG
        if (!CoroDebugIsLive(h.address())) {
          REFLEX_PANIC(
              "sim::Semaphore::Release would resume a destroyed coroutine "
              "frame: the waiter was destroy()ed while still queued in the "
              "semaphore (see the ownership rule on sim::Semaphore)");
        }
#endif
        h.resume();
      });
    } else {
      ++available_;
    }
  }

  int64_t Available() const { return available_; }
  size_t Waiters() const { return waiters_.size(); }

 private:
  Simulator& sim_;
  int64_t available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Completion barrier: waits until Arrive() has been called `expected`
 * times. Useful for joining a fan-out of detached tasks.
 */
class Barrier {
 public:
  Barrier(Simulator& sim, int64_t expected)
      : promise_(sim), remaining_(expected) {
    REFLEX_CHECK(expected >= 0);
    if (expected == 0) promise_.Set(Unit{});
  }

  void Arrive() {
    REFLEX_CHECK(remaining_ > 0);
    if (--remaining_ == 0) promise_.Set(Unit{});
  }

  VoidFuture Done() const { return promise_.GetFuture(); }

 private:
  VoidPromise promise_;
  int64_t remaining_;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_TASK_H_
