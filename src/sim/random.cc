#include "sim/random.h"

#include <cmath>

#include "sim/logging.h"

namespace reflex::sim {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashName(std::string_view name) {
  // FNV-1a, good enough to decorrelate stream names.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// Numerically stable log1p(x)/x.
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - x * 0.25));
}

// Numerically stable expm1(x)/x.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + x * 0.25));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

Rng::Rng(uint64_t global_seed, std::string_view stream_name)
    : Rng(global_seed ^ HashName(stream_name)) {}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  REFLEX_CHECK(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  uint64_t threshold = (-bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  REFLEX_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextLognormal(double median, double sigma) {
  if (sigma <= 0.0) return median;
  return median * std::exp(sigma * NextGaussian());
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double theta) {
  REFLEX_CHECK(n > 0);
  REFLEX_CHECK(theta > 0.0);
  // Rejection-inversion sampling (Hormann & Derflinger 1996), as used
  // by Apache Commons. O(1) per draw, no O(n) setup.
  auto h_integral = [theta](double x) {
    const double log_x = std::log(x);
    return Helper2((1.0 - theta) * log_x) * log_x;
  };
  auto h = [theta](double x) { return std::exp(-theta * std::log(x)); };
  auto h_integral_inverse = [theta](double x) {
    double t = x * (1.0 - theta);
    if (t < -1.0) t = -1.0;
    return std::exp(Helper1(t) * x);
  };

  const double h_integral_x1 = h_integral(1.5) - 1.0;
  const double h_integral_n = h_integral(static_cast<double>(n) + 0.5);
  const double s = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));

  for (;;) {
    const double u =
        h_integral_n + NextDouble() * (h_integral_x1 - h_integral_n);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n)) k = static_cast<double>(n);
    if (k - x <= s || u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank
    }
  }
}

}  // namespace reflex::sim
