#ifndef REFLEX_SIM_RANDOM_H_
#define REFLEX_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <string_view>

namespace reflex::sim {

/**
 * Deterministic pseudo-random stream (xoshiro256** core, SplitMix64
 * seeding). Every stochastic simulation component owns a named stream
 * seeded from (global seed, component name), so experiments are exactly
 * reproducible and component behaviour is independent of the order in
 * which other components draw numbers.
 */
class Rng {
 public:
  /** Constructs a stream from a raw 64-bit seed. */
  explicit Rng(uint64_t seed);

  /** Constructs a stream derived from a global seed and a name. */
  Rng(uint64_t global_seed, std::string_view stream_name);

  /** Returns the next raw 64-bit value. */
  uint64_t Next();

  /** Returns a uniform double in [0, 1). */
  double NextDouble();

  /** Returns a uniform integer in [0, bound). Requires bound > 0. */
  uint64_t NextBounded(uint64_t bound);

  /** Returns a uniform integer in [lo, hi]. Requires lo <= hi. */
  int64_t NextInRange(int64_t lo, int64_t hi);

  /** Returns an exponentially distributed double with the given mean. */
  double NextExponential(double mean);

  /**
   * Returns a lognormal sample whose *median* is `median` and whose
   * log-space standard deviation is `sigma`. Used for service-time
   * jitter: sigma = 0 returns `median` exactly.
   */
  double NextLognormal(double median, double sigma);

  /** Returns a standard normal sample (Box-Muller, cached pair). */
  double NextGaussian();

  /** Returns true with probability p. */
  bool NextBernoulli(double p);

  /**
   * Returns a Zipf-distributed integer in [0, n) with exponent theta.
   * Uses the rejection-inversion method of Hormann/Derflinger so setup
   * is O(1) and draws are O(1) expected.
   */
  uint64_t NextZipf(uint64_t n, double theta);

 private:
  uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace reflex::sim

#endif  // REFLEX_SIM_RANDOM_H_
