#ifndef REFLEX_SIM_CORO_DEBUG_H_
#define REFLEX_SIM_CORO_DEBUG_H_

#include <cstdint>
#include <string>
#include <vector>

/**
 * REFLEX_CORO_DEBUG frame registry: the dynamic half of the coroutine
 * ownership rulebook (DESIGN.md section 18; corolint is the static
 * half).
 *
 * When the build is configured with -DREFLEX_CORO_DEBUG=ON, every
 * sim::Task coroutine frame registers itself on creation (tagged with
 * the creation site) and unregisters on destruction, and ~Simulator()
 * asserts that no frames are left alive. This catches exactly the leak
 * class LeakSanitizer cannot: a forever-suspended frame whose handle is
 * still stored somewhere is *reachable*, so LSan stays silent, yet the
 * frame (and everything it owns) outlives the simulation.
 *
 * The API below is declared unconditionally -- in a non-debug build
 * the counters are all zero and CoroDebugEnabled() is false, so tests
 * can skip rather than fail -- but the promise hooks in sim::Task
 * compile away entirely unless the macro is set.
 */
namespace reflex::sim {

/** Monotonic frame counters. live == created - destroyed. */
struct CoroDebugStats {
  uint64_t created = 0;
  uint64_t destroyed = 0;
  uint64_t live = 0;
};

/** True when the registry is compiled in (REFLEX_CORO_DEBUG=ON). */
bool CoroDebugEnabled();

CoroDebugStats CoroDebugGetStats();

/** True if `frame` (a coroutine_handle<>::address()) is registered and
 * not yet destroyed. Always false in a non-debug build. */
bool CoroDebugIsLive(const void* frame);

/** Creation-site tags of every live frame, in creation order. */
std::vector<std::string> CoroDebugLiveTags();

/**
 * Panics (listing the creation site of every live frame) if any frame
 * is still alive. Called from ~Simulator(); tests that intentionally
 * park frames across simulator lifetimes must destroy them first.
 * No-op in a non-debug build.
 */
void CoroDebugAssertNoLiveFrames();

namespace internal {

/** Registers a frame address with its creation-site tag. */
void CoroDebugRegister(const void* frame, const char* function,
                       const char* file, uint32_t line);

/** Removes a frame address; unknown addresses are ignored (frames
 * created before the registry was reset). */
void CoroDebugUnregister(const void* frame);

}  // namespace internal

}  // namespace reflex::sim

#endif  // REFLEX_SIM_CORO_DEBUG_H_
