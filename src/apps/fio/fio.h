#ifndef REFLEX_APPS_FIO_FIO_H_
#define REFLEX_APPS_FIO_FIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "client/storage_backend.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::apps::fio {

/**
 * Job description in the spirit of the Flexible I/O tester: a number
 * of worker threads, each maintaining a queue depth of random or
 * sequential I/Os of a fixed size and mix over a byte range.
 */
struct FioJob {
  int num_threads = 1;
  int queue_depth = 32;
  uint32_t block_bytes = 4096;
  double read_fraction = 1.0;
  bool sequential = false;

  uint64_t offset = 0;
  /** Byte span exercised; 0 = whole backend. */
  uint64_t span = 0;

  /** Per-I/O application-side CPU cost (request setup, buffers). */
  sim::TimeNs app_cpu_per_io = sim::TimeNs(500);

  uint64_t seed = 101;
};

/** Aggregate results of one FIO run. */
struct FioResult {
  double iops = 0.0;
  double throughput_mb_s = 0.0;
  sim::Histogram read_latency;
  sim::Histogram write_latency;
  int64_t errors = 0;
};

/**
 * Runs a FIO-style job against any storage backend for the window
 * [warm_end, end). Latency statistics cover completions inside the
 * window, as in FIO's ramp_time semantics.
 */
class FioRunner {
 public:
  FioRunner(sim::Simulator& sim, client::StorageBackend& backend,
            FioJob job);

  /** Starts the job; Done() resolves when all workers finish. */
  void Run(sim::TimeNs warm_end, sim::TimeNs end);

  sim::VoidFuture Done() const { return done_promise_->GetFuture(); }

  /** Valid after Done() resolves. */
  const FioResult& result() const { return result_; }

 private:
  sim::Task Worker(int thread_id);
  uint64_t NextOffset(int thread_id);

  sim::Simulator& sim_;
  client::StorageBackend& backend_;
  FioJob job_;
  sim::Rng rng_;
  uint64_t span_blocks_ = 0;
  std::vector<uint64_t> seq_cursor_;

  sim::TimeNs warm_end_ = 0;
  sim::TimeNs end_ = 0;
  int workers_left_ = 0;
  FioResult result_;
  std::unique_ptr<sim::VoidPromise> done_promise_;
};

}  // namespace reflex::apps::fio

#endif  // REFLEX_APPS_FIO_FIO_H_
