#include "apps/fio/fio.h"

#include <algorithm>

#include "sim/logging.h"

namespace reflex::apps::fio {

FioRunner::FioRunner(sim::Simulator& sim, client::StorageBackend& backend,
                     FioJob job)
    : sim_(sim),
      backend_(backend),
      job_(job),
      rng_(job.seed, "fio"),
      done_promise_(std::make_unique<sim::VoidPromise>(sim)) {
  REFLEX_CHECK(job_.num_threads >= 1);
  REFLEX_CHECK(job_.queue_depth >= 1);
  REFLEX_CHECK(job_.block_bytes > 0);
  uint64_t span = job_.span;
  if (span == 0) span = backend_.CapacityBytes() - job_.offset;
  REFLEX_CHECK(span >= job_.block_bytes);
  span_blocks_ = span / job_.block_bytes;
  seq_cursor_.assign(job_.num_threads, 0);
  for (int t = 0; t < job_.num_threads; ++t) {
    // Sequential threads start striped across the span.
    seq_cursor_[t] = (span_blocks_ / job_.num_threads) * t;
  }
}

void FioRunner::Run(sim::TimeNs warm_end, sim::TimeNs end) {
  warm_end_ = warm_end;
  end_ = end;
  workers_left_ = job_.num_threads * job_.queue_depth;
  for (int t = 0; t < job_.num_threads; ++t) {
    for (int d = 0; d < job_.queue_depth; ++d) Worker(t);
  }
}

uint64_t FioRunner::NextOffset(int thread_id) {
  uint64_t block;
  if (job_.sequential) {
    block = seq_cursor_[thread_id];
    seq_cursor_[thread_id] = (block + 1) % span_blocks_;
  } else {
    block = rng_.NextBounded(span_blocks_);
  }
  return job_.offset + block * job_.block_bytes;
}

sim::Task FioRunner::Worker(int thread_id) {
  while (sim_.Now() < end_) {
    const bool is_read = rng_.NextBernoulli(job_.read_fraction);
    const uint64_t offset = NextOffset(thread_id);
    co_await sim::Delay(sim_, job_.app_cpu_per_io);
    client::IoResult r;
    if (is_read) {
      r = co_await backend_.ReadBytes(offset, job_.block_bytes, nullptr);
    } else {
      r = co_await backend_.WriteBytes(offset, job_.block_bytes, nullptr);
    }
    if (!r.ok()) {
      ++result_.errors;
      continue;
    }
    if (r.complete_time >= warm_end_ && r.complete_time < end_) {
      if (r.issue_time >= warm_end_) {
        (is_read ? result_.read_latency : result_.write_latency)
            .Record(r.Latency());
      }
      const double window_s = sim::ToSeconds(end_ - warm_end_);
      result_.iops += 1.0 / window_s;
      result_.throughput_mb_s +=
          static_cast<double>(job_.block_bytes) / window_s / 1e6;
    }
  }
  if (--workers_left_ == 0) done_promise_->Set(sim::Unit{});
}

}  // namespace reflex::apps::fio
