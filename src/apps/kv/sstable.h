#ifndef REFLEX_APPS_KV_SSTABLE_H_
#define REFLEX_APPS_KV_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "client/storage_backend.h"
#include "sim/task.h"

namespace reflex::apps::kv {

/**
 * Bloom filter over keys (k hash functions over a bit array), as kept
 * per SSTable by LSM stores to skip tables that cannot contain a key.
 */
class BloomFilter {
 public:
  BloomFilter(size_t expected_keys, int bits_per_key = 10, int hashes = 6);

  void Add(std::string_view key);
  bool MayContain(std::string_view key) const;
  size_t SizeBytes() const { return bits_.size() / 8; }

 private:
  uint64_t HashN(std::string_view key, int i) const;

  std::vector<bool> bits_;
  int hashes_;
};

/**
 * In-memory metadata of one on-Flash SSTable: key range, block index,
 * and bloom filter (index/filter blocks are cache-resident, as in
 * RocksDB with cache_index_and_filter_blocks=false). The data blocks
 * live on Flash.
 */
struct SSTableMeta {
  uint64_t extent_offset = 0;  // byte offset of the data blocks
  uint64_t extent_bytes = 0;   // allocated extent size
  uint64_t data_bytes = 0;     // bytes actually used by data blocks
  uint64_t num_entries = 0;
  std::string first_key;
  std::string last_key;
  /** First key of each 4KB data block, for binary search. */
  std::vector<std::string> block_first_keys;
  std::unique_ptr<BloomFilter> bloom;
  uint64_t id = 0;

  uint32_t NumBlocks() const {
    return static_cast<uint32_t>(block_first_keys.size());
  }

  /** Index of the block that could contain `key`. */
  int FindBlock(std::string_view key) const;
};

/** One key/value pair (or a deletion tombstone). */
struct KvEntry {
  std::string key;
  std::string value;
  bool tombstone = false;
};

inline constexpr uint32_t kBlockBytes = 4096;

/**
 * Serializes sorted entries into 4KB data blocks. Record format:
 * [u16 klen][u16 vlen][key][value]; a zero klen terminates a block and
 * vlen = 0xFFFF marks a deletion tombstone (no value bytes). Returns
 * the block image (multiple of 4KB) and fills `meta` (bloom, index,
 * key range).
 */
std::vector<uint8_t> BuildSSTableImage(const std::vector<KvEntry>& entries,
                                       int bloom_bits_per_key,
                                       SSTableMeta* meta);

/** Parses one 4KB block into entries (for reads and compaction). */
std::vector<KvEntry> ParseBlock(const uint8_t* block);

/** Searches a parsed block for a key (tombstones included). Returns
 * nullptr if absent. */
const KvEntry* FindInBlock(const std::vector<KvEntry>& entries,
                           std::string_view key);

/** vlen sentinel marking a tombstone record. */
inline constexpr uint16_t kTombstoneVlen = 0xFFFF;

}  // namespace reflex::apps::kv

#endif  // REFLEX_APPS_KV_SSTABLE_H_
