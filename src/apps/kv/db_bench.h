#ifndef REFLEX_APPS_KV_DB_BENCH_H_
#define REFLEX_APPS_KV_DB_BENCH_H_

#include <cstdint>
#include <memory>
#include <string>

#include "apps/kv/kv_store.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::apps::kv {

/**
 * db_bench-style workloads over the mini-LSM store, matching the
 * phases the paper runs for Figure 7c: bulkload (BL), randomread (RR)
 * and readwhilewriting (RwW).
 */
class DbBench {
 public:
  struct Config {
    uint64_t num_keys = 100000;
    uint32_t value_bytes = 400;
    int read_threads = 8;
    int64_t reads_per_thread = 4000;
    /** Writer rate for readwhilewriting (ops/s). */
    double write_rate = 2000.0;
    uint64_t seed = 11;
  };

  struct PhaseResult {
    std::string name;
    sim::TimeNs duration = 0;
    int64_t ops = 0;
    double ops_per_sec = 0.0;
    sim::Histogram latency;
    int64_t value_mismatches = 0;
    int64_t not_found = 0;
  };

  DbBench(sim::Simulator& sim, KvStore& store, Config config);

  /** Sequential-key load of the whole database, then flush. */
  sim::Future<PhaseResult> BulkLoad();

  /** Uniform random point lookups from concurrent reader threads. */
  sim::Future<PhaseResult> RandomRead();

  /** Random reads with one concurrent rate-limited writer. */
  sim::Future<PhaseResult> ReadWhileWriting();

  static std::string KeyFor(uint64_t i);
  static std::string ValueFor(uint64_t i, uint32_t len);

 private:
  sim::Task BulkLoadTask(sim::Promise<PhaseResult> promise);
  sim::Task ReadPhaseTask(bool with_writer,
                          sim::Promise<PhaseResult> promise);
  sim::Task ReaderThread(int id, PhaseResult* result,
                         sim::Barrier* barrier);
  sim::Task WriterThread(std::shared_ptr<bool> stop_flag);

  sim::Simulator& sim_;
  KvStore& store_;
  Config config_;
  sim::Rng rng_;
  uint64_t writer_cursor_ = 0;
};

}  // namespace reflex::apps::kv

#endif  // REFLEX_APPS_KV_DB_BENCH_H_
