#include "apps/kv/kv_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "sim/logging.h"

namespace reflex::apps::kv {

namespace {
constexpr uint64_t kIoChunk = 256 * 1024;

uint64_t AlignUp4K(uint64_t v) { return (v + 4095) / 4096 * 4096; }
}  // namespace

KvStore::KvStore(sim::Simulator& sim, client::StorageBackend& backend,
                 Options options)
    : sim_(sim),
      backend_(backend),
      options_(options),
      block_cache_(sim, backend, options.block_cache_blocks,
                   /*max_outstanding=*/64),
      wal_block_(kBlockBytes, 0),
      alloc_cursor_(options.region_offset + options.wal_bytes),
      write_lock_(sim, 1) {
  REFLEX_CHECK(options_.region_offset % 4096 == 0);
  REFLEX_CHECK(options_.wal_bytes % 4096 == 0);
  REFLEX_CHECK(options_.region_bytes > options_.wal_bytes);
  REFLEX_CHECK(options_.l0_compaction_trigger >= 1);
}

uint64_t KvStore::AllocateExtent(uint64_t bytes) {
  bytes = AlignUp4K(bytes);
  for (size_t i = 0; i < free_extents_.size(); ++i) {
    if (free_extents_[i].second >= bytes) {
      const uint64_t offset = free_extents_[i].first;
      free_extents_[i].first += bytes;
      free_extents_[i].second -= bytes;
      if (free_extents_[i].second == 0) {
        free_extents_.erase(free_extents_.begin() +
                            static_cast<long>(i));
      }
      return offset;
    }
  }
  const uint64_t offset = alloc_cursor_;
  alloc_cursor_ += bytes;
  if (alloc_cursor_ >
      options_.region_offset + options_.region_bytes) {
    REFLEX_FATAL("KvStore region exhausted (%llu bytes)",
                 static_cast<unsigned long long>(options_.region_bytes));
  }
  return offset;
}

void KvStore::FreeExtent(uint64_t offset, uint64_t bytes) {
  free_extents_.emplace_back(offset, AlignUp4K(bytes));
}

sim::Future<bool> KvStore::Put(std::string key, std::string value) {
  sim::Promise<bool> promise(sim_);
  auto future = promise.GetFuture();
  PutTask(std::move(key), std::move(value), /*tombstone=*/false,
          std::move(promise));
  return future;
}

sim::Future<bool> KvStore::Delete(std::string key) {
  sim::Promise<bool> promise(sim_);
  auto future = promise.GetFuture();
  PutTask(std::move(key), std::string(), /*tombstone=*/true,
          std::move(promise));
  return future;
}

sim::Task KvStore::PutTask(std::string key, std::string value,
                           bool tombstone, sim::Promise<bool> promise) {
  co_await write_lock_.Acquire();
  if (tombstone) {
    ++stats_.deletes;
  } else {
    ++stats_.puts;
  }
  co_await sim::Delay(sim_, options_.cpu_per_put);

  // WAL append: stage the record into the current 4KB WAL block and
  // rewrite that block in place (fdatasync-per-write semantics).
  if (wal_enabled_) {
    const uint64_t rec = 4 + key.size() + value.size();
    REFLEX_CHECK(rec <= kBlockBytes);
    if (wal_block_used_ + rec > kBlockBytes) {
      wal_head_ = (wal_head_ + kBlockBytes) % options_.wal_bytes;
      wal_block_used_ = 0;
      std::fill(wal_block_.begin(), wal_block_.end(), 0);
    }
    const auto klen = static_cast<uint16_t>(key.size());
    const uint16_t vlen =
        tombstone ? kTombstoneVlen : static_cast<uint16_t>(value.size());
    std::memcpy(wal_block_.data() + wal_block_used_, &klen, 2);
    std::memcpy(wal_block_.data() + wal_block_used_ + 2, &vlen, 2);
    std::memcpy(wal_block_.data() + wal_block_used_ + 4, key.data(), klen);
    std::memcpy(wal_block_.data() + wal_block_used_ + 4 + klen,
                value.data(), value.size());
    wal_block_used_ += static_cast<uint32_t>(rec);
    ++stats_.wal_appends;
    client::IoResult w = co_await backend_.WriteBytes(
        options_.region_offset + wal_head_, kBlockBytes,
        wal_block_.data());
    if (!w.ok()) {
      write_lock_.Release();
      promise.Set(false);
      co_return;
    }
  }

  memtable_size_bytes_ += key.size() + value.size() + 32;
  memtable_[std::move(key)] = MemValue{tombstone, std::move(value)};

  if (memtable_size_bytes_ >= options_.memtable_bytes) {
    sim::VoidPromise flushed(sim_);
    auto flushed_future = flushed.GetFuture();
    FlushTask(std::move(flushed));
    co_await flushed_future;
  }
  write_lock_.Release();
  promise.Set(true);
}

sim::VoidFuture KvStore::Flush() {
  sim::VoidPromise promise(sim_);
  auto future = promise.GetFuture();
  [](KvStore* self, sim::VoidPromise p) -> sim::Task {
    co_await self->write_lock_.Acquire();
    sim::VoidPromise inner(self->sim_);
    auto inner_future = inner.GetFuture();
    self->FlushTask(std::move(inner));
    co_await inner_future;
    self->write_lock_.Release();
    p.Set(sim::Unit{});
  }(this, std::move(promise));
  return future;
}

sim::Task KvStore::FlushTask(sim::VoidPromise promise) {
  if (memtable_.empty()) {
    promise.Set(sim::Unit{});
    co_return;
  }
  // RocksDB-style write stall: too many L0 tables => wait for the
  // background compaction to catch up before flushing more.
  while (static_cast<int>(l0_.size()) >= options_.l0_stall_trigger &&
         compacting_) {
    sim::VoidPromise waiter(sim_);
    auto waiter_future = waiter.GetFuture();
    compaction_waiters_.push_back(std::move(waiter));
    co_await waiter_future;
  }

  std::vector<KvEntry> entries;
  entries.reserve(memtable_.size());
  for (auto& [k, v] : memtable_) {
    entries.push_back(KvEntry{k, v.value, v.tombstone});
  }
  memtable_.clear();
  memtable_size_bytes_ = 0;

  sim::Promise<TableRef> table_promise(sim_);
  auto table_future = table_promise.GetFuture();
  WriteTable(std::move(entries), std::move(table_promise));
  TableRef table = co_await table_future;
  l0_.push_back(table);
  ++stats_.memtable_flushes;
  stats_.bytes_flushed += static_cast<int64_t>(table->data_bytes);

  // Kick a background compaction (it does not block the writer).
  if (static_cast<int>(l0_.size()) >= options_.l0_compaction_trigger &&
      !compacting_) {
    compacting_ = true;
    sim::VoidPromise compacted(sim_);
    CompactTask(std::move(compacted));
  }
  promise.Set(sim::Unit{});
}

sim::VoidFuture KvStore::WaitCompactionIdle() {
  sim::VoidPromise promise(sim_);
  auto future = promise.GetFuture();
  if (!compacting_) {
    promise.Set(sim::Unit{});
  } else {
    compaction_waiters_.push_back(std::move(promise));
  }
  return future;
}

sim::Task KvStore::WriteTable(std::vector<KvEntry> entries,
                              sim::Promise<TableRef> promise) {
  auto meta = std::make_shared<SSTableMeta>();
  std::vector<uint8_t> image =
      BuildSSTableImage(entries, options_.bloom_bits_per_key, meta.get());
  meta->id = next_table_id_++;
  meta->extent_bytes = AlignUp4K(image.size());
  meta->extent_offset = AllocateExtent(meta->extent_bytes);
  // The extent may recycle a compacted table's blocks: drop stale
  // cache entries before new data becomes visible.
  block_cache_.Invalidate(meta->extent_offset, meta->extent_bytes);

  // Pipeline the flush: keep several large writes in flight, as
  // RocksDB's background flush threads do.
  std::deque<sim::Future<client::IoResult>> inflight;
  for (uint64_t off = 0; off < image.size(); off += kIoChunk) {
    const auto n = static_cast<uint32_t>(
        std::min<uint64_t>(kIoChunk, image.size() - off));
    inflight.push_back(backend_.WriteBytes(meta->extent_offset + off, n,
                                           image.data() + off));
    if (inflight.size() >= 8) {
      client::IoResult r = co_await inflight.front();
      inflight.pop_front();
      if (!r.ok()) REFLEX_PANIC("sstable write failed");
    }
  }
  while (!inflight.empty()) {
    client::IoResult r = co_await inflight.front();
    inflight.pop_front();
    if (!r.ok()) REFLEX_PANIC("sstable write failed");
  }
  promise.Set(std::move(meta));
}

sim::Task KvStore::ReadAllEntries(TableRef table, std::vector<KvEntry>* out,
                                  sim::VoidPromise promise) {
  // Compaction reads bypass the block cache (as RocksDB does) and use
  // large sequential I/Os.
  std::vector<uint8_t> buf(table->data_bytes);
  std::deque<sim::Future<client::IoResult>> inflight;
  for (uint64_t off = 0; off < buf.size(); off += kIoChunk) {
    const auto n = static_cast<uint32_t>(
        std::min<uint64_t>(kIoChunk, buf.size() - off));
    inflight.push_back(backend_.ReadBytes(table->extent_offset + off, n,
                                          buf.data() + off));
    if (inflight.size() >= 8) {
      client::IoResult r = co_await inflight.front();
      inflight.pop_front();
      if (!r.ok()) REFLEX_PANIC("sstable read failed");
    }
  }
  while (!inflight.empty()) {
    client::IoResult r = co_await inflight.front();
    inflight.pop_front();
    if (!r.ok()) REFLEX_PANIC("sstable read failed");
  }
  for (uint64_t b = 0; b + kBlockBytes <= buf.size(); b += kBlockBytes) {
    std::vector<KvEntry> block = ParseBlock(buf.data() + b);
    for (auto& e : block) out->push_back(std::move(e));
  }
  promise.Set(sim::Unit{});
}

sim::Task KvStore::CompactTask(sim::VoidPromise promise) {
  ++stats_.compactions;
  // Merge priority: newer L0 tables override older ones; L0 overrides
  // L1. Insert lowest priority first into an ordered map. The input
  // set is snapshotted: L0 tables flushed while this background
  // compaction runs are left for the next one.
  std::map<std::string, KvEntry> merged;
  std::vector<TableRef> inputs;
  const size_t l0_snapshot = l0_.size();
  for (const TableRef& t : l1_) inputs.push_back(t);
  for (const TableRef& t : l0_) inputs.push_back(t);  // oldest..newest

  int64_t total_entries = 0;
  for (const TableRef& t : inputs) {
    std::vector<KvEntry> entries;
    sim::VoidPromise read_done(sim_);
    auto read_future = read_done.GetFuture();
    ReadAllEntries(t, &entries, std::move(read_done));
    co_await read_future;
    for (auto& e : entries) {
      std::string k = e.key;
      merged[std::move(k)] = std::move(e);
    }
    total_entries += static_cast<int64_t>(entries.size());
    stats_.bytes_compacted += static_cast<int64_t>(t->data_bytes);
  }
  co_await sim::Delay(
      sim_, options_.cpu_per_compaction_entry * total_entries);

  // Split the merged run into ~8MB L1 tables.
  constexpr uint64_t kTargetTableBytes = 8ULL << 20;
  std::vector<TableRef> new_l1;
  std::vector<KvEntry> current;
  uint64_t current_bytes = 0;
  auto flush_current = [&]() -> sim::Future<TableRef> {
    sim::Promise<TableRef> p(sim_);
    auto f = p.GetFuture();
    WriteTable(std::move(current), std::move(p));
    current.clear();
    current_bytes = 0;
    return f;
  };
  for (auto& [k, v] : merged) {
    // This full merge rewrites the bottom level, so tombstones have
    // shadowed every older version and can be dropped for good.
    if (v.tombstone) continue;
    current_bytes += k.size() + v.value.size() + 4;
    current.push_back(KvEntry{k, v.value, false});
    if (current_bytes >= kTargetTableBytes) {
      new_l1.push_back(co_await flush_current());
    }
  }
  if (!current.empty()) new_l1.push_back(co_await flush_current());

  // Retire inputs. Extents are freed now; readers that still hold a
  // TableRef keep the metadata alive, and WriteTable invalidates the
  // block cache before any recycled extent is rewritten.
  for (const TableRef& t : inputs) {
    FreeExtent(t->extent_offset, t->extent_bytes);
  }
  // Keep L0 tables that arrived after the snapshot.
  l0_.erase(l0_.begin(), l0_.begin() + static_cast<long>(l0_snapshot));
  l1_ = std::move(new_l1);
  compacting_ = false;
  for (auto& waiter : compaction_waiters_) waiter.Set(sim::Unit{});
  compaction_waiters_.clear();
  promise.Set(sim::Unit{});
}

sim::Future<GetResult> KvStore::Get(std::string key) {
  sim::Promise<GetResult> promise(sim_);
  auto future = promise.GetFuture();
  GetTask(std::move(key), std::move(promise));
  return future;
}

sim::Task KvStore::GetTask(std::string key,
                           sim::Promise<GetResult> promise) {
  ++stats_.gets;
  co_await sim::Delay(sim_, options_.cpu_per_get);

  GetResult result;
  // Memtable (checked synchronously: a consistent snapshot).
  auto mt = memtable_.find(key);
  if (mt != memtable_.end()) {
    if (!mt->second.tombstone) {
      result.found = true;
      result.value = mt->second.value;
      ++stats_.hits;
    }
    promise.Set(std::move(result));
    co_return;
  }

  // Snapshot table references so compaction cannot pull them away.
  std::vector<TableRef> candidates;
  for (auto it = l0_.rbegin(); it != l0_.rend(); ++it) {
    candidates.push_back(*it);  // newest L0 first
  }
  for (const TableRef& t : l1_) {
    if (key >= t->first_key && key <= t->last_key) candidates.push_back(t);
  }

  for (const TableRef& t : candidates) {
    bool found = false;
    bool tombstone = false;
    std::string value;
    sim::VoidPromise searched(sim_);
    auto searched_future = searched.GetFuture();
    SearchTable(t, key, &found, &tombstone, &value, std::move(searched));
    co_await searched_future;
    if (tombstone) break;  // deleted: newer tables already checked
    if (found) {
      result.found = true;
      result.value = std::move(value);
      ++stats_.hits;
      break;
    }
  }
  promise.Set(std::move(result));
}

sim::Task KvStore::SearchTable(TableRef table, std::string key, bool* found,
                               bool* tombstone_out, std::string* value_out,
                               sim::VoidPromise promise) {
  if (key < table->first_key || key > table->last_key ||
      !table->bloom->MayContain(key)) {
    ++stats_.bloom_skips;
    promise.Set(sim::Unit{});
    co_return;
  }
  const int block = table->FindBlock(key);
  if (block < 0) {
    promise.Set(sim::Unit{});
    co_return;
  }
  ++stats_.block_reads;
  const uint8_t* page = co_await block_cache_.GetPage(
      table->extent_offset + static_cast<uint64_t>(block) * kBlockBytes);
  // SSTable blocks have no replica to fall back to: treat persistent
  // storage failure as fatal.
  REFLEX_CHECK(page != nullptr);
  co_await sim::Delay(sim_, options_.cpu_per_block_search);
  std::vector<KvEntry> entries = ParseBlock(page);
  const KvEntry* e = FindInBlock(entries, key);
  if (e != nullptr) {
    if (e->tombstone) {
      *tombstone_out = true;
    } else {
      *found = true;
      *value_out = e->value;
    }
  }
  promise.Set(sim::Unit{});
}

}  // namespace reflex::apps::kv
