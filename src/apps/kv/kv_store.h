#ifndef REFLEX_APPS_KV_KV_STORE_H_
#define REFLEX_APPS_KV_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/kv/sstable.h"
#include "client/page_cache.h"
#include "client/storage_backend.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::apps::kv {

/** Result of a Get. */
struct GetResult {
  bool found = false;
  std::string value;
};

/**
 * A miniature LSM-tree key-value store in the mold of RocksDB:
 * write-ahead log + memtable, L0 of overlapping SSTables flushed from
 * the memtable, and a sorted, non-overlapping L1 maintained by
 * compaction. Data blocks live on the storage backend (local NVMe,
 * iSCSI or ReFlex block device); index and bloom blocks stay resident,
 * and a bounded block cache stands in for the cgroup-limited page
 * cache of the paper's RocksDB experiment (Figure 7c).
 */
class KvStore {
 public:
  struct Options {
    /** Byte region of the backend owned by this store. */
    uint64_t region_offset = 0;
    uint64_t region_bytes = 2ULL << 30;

    /** WAL ring size, carved from the head of the region. */
    uint64_t wal_bytes = 64ULL << 20;

    /** Memtable flush threshold. */
    uint64_t memtable_bytes = 4ULL << 20;

    /** L0 table count triggering compaction into L1. */
    int l0_compaction_trigger = 4;

    /** L0 table count at which writers stall until compaction ends
     * (RocksDB's level0_stop_writes_trigger). */
    int l0_stall_trigger = 8;

    /** Block cache capacity (4KB blocks). */
    uint32_t block_cache_blocks = 1024;

    int bloom_bits_per_key = 10;

    // Modeled CPU costs.
    sim::TimeNs cpu_per_get = sim::Micros(8.0);
    sim::TimeNs cpu_per_put = sim::Micros(3.0);
    sim::TimeNs cpu_per_block_search = sim::Micros(2.0);
    sim::TimeNs cpu_per_compaction_entry = sim::TimeNs(250);
  };

  struct Stats {
    int64_t puts = 0;
    int64_t deletes = 0;
    int64_t gets = 0;
    int64_t hits = 0;
    int64_t bloom_skips = 0;       // tables skipped by bloom filters
    int64_t block_reads = 0;       // data blocks fetched (incl. cache)
    int64_t memtable_flushes = 0;
    int64_t compactions = 0;
    int64_t bytes_flushed = 0;
    int64_t bytes_compacted = 0;
    int64_t wal_appends = 0;
  };

  KvStore(sim::Simulator& sim, client::StorageBackend& backend,
          Options options);

  /** Inserts or overwrites a key (WAL append + memtable insert). */
  sim::Future<bool> Put(std::string key, std::string value);

  /** Deletes a key by writing a tombstone; dropped at compaction. */
  sim::Future<bool> Delete(std::string key);

  /**
   * Enables/disables the write-ahead log (db_bench's bulkload phase
   * runs with WAL off, making load throughput Flash-flush-limited).
   */
  void set_wal_enabled(bool enabled) { wal_enabled_ = enabled; }
  bool wal_enabled() const { return wal_enabled_; }

  /** Point lookup through memtable, L0 (newest first), then L1. */
  sim::Future<GetResult> Get(std::string key);

  /** Flushes the memtable to an L0 SSTable (if non-empty). */
  sim::VoidFuture Flush();

  /** Resolves once no background compaction is running. */
  sim::VoidFuture WaitCompactionIdle();

  const Stats& stats() const { return stats_; }
  int l0_tables() const { return static_cast<int>(l0_.size()); }
  int l1_tables() const { return static_cast<int>(l1_.size()); }
  uint64_t memtable_entries() const { return memtable_.size(); }

 private:
  using TableRef = std::shared_ptr<SSTableMeta>;

  sim::Task PutTask(std::string key, std::string value, bool tombstone,
                    sim::Promise<bool> promise);
  sim::Task GetTask(std::string key, sim::Promise<GetResult> promise);
  sim::Task FlushTask(sim::VoidPromise promise);

  /** Searches one table; sets *found / *tombstone_out / *value_out. */
  sim::Task SearchTable(TableRef table, std::string key, bool* found,
                        bool* tombstone_out, std::string* value_out,
                        sim::VoidPromise promise);

  /** Writes sorted entries as a new SSTable; returns its metadata. */
  sim::Task WriteTable(std::vector<KvEntry> entries,
                       sim::Promise<TableRef> promise);

  /** Merges L0 + L1 into a fresh L1 (simple full-merge compaction). */
  sim::Task CompactTask(sim::VoidPromise promise);

  /** Reads all entries of a table (sequential block reads). */
  sim::Task ReadAllEntries(TableRef table, std::vector<KvEntry>* out,
                           sim::VoidPromise promise);

  uint64_t AllocateExtent(uint64_t bytes);
  void FreeExtent(uint64_t offset, uint64_t bytes);

  sim::Simulator& sim_;
  client::StorageBackend& backend_;
  Options options_;
  client::PageCache block_cache_;

  struct MemValue {
    bool tombstone = false;
    std::string value;
  };
  std::map<std::string, MemValue> memtable_;
  uint64_t memtable_size_bytes_ = 0;

  std::vector<TableRef> l0_;  // newest last
  std::vector<TableRef> l1_;  // sorted by first_key, non-overlapping
  uint64_t next_table_id_ = 1;

  // WAL state: one 4KB staging block rewritten in place until full.
  bool wal_enabled_ = true;
  uint64_t wal_head_ = 0;
  uint32_t wal_block_used_ = 0;
  std::vector<uint8_t> wal_block_;

  // Extent allocator: bump pointer + first-fit free list.
  uint64_t alloc_cursor_;
  std::vector<std::pair<uint64_t, uint64_t>> free_extents_;

  /** Serializes writers (Put/Flush), like the RocksDB write thread;
   * readers proceed concurrently and compaction runs in background. */
  sim::Semaphore write_lock_;

  /** Background compaction state. */
  bool compacting_ = false;
  std::vector<sim::VoidPromise> compaction_waiters_;

  Stats stats_;
};

}  // namespace reflex::apps::kv

#endif  // REFLEX_APPS_KV_KV_STORE_H_
