#include "apps/kv/db_bench.h"

#include <cstdio>
#include <utility>

#include "sim/logging.h"

namespace reflex::apps::kv {

DbBench::DbBench(sim::Simulator& sim, KvStore& store, Config config)
    : sim_(sim),
      store_(store),
      config_(config),
      rng_(config.seed, "db_bench"),
      writer_cursor_(config.num_keys) {}

std::string DbBench::KeyFor(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llu",
                static_cast<unsigned long long>(i));
  return buf;
}

std::string DbBench::ValueFor(uint64_t i, uint32_t len) {
  std::string v(len, '\0');
  uint64_t x = i * 0x9e3779b97f4a7c15ULL + 1;
  for (uint32_t j = 0; j < len; ++j) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    v[j] = static_cast<char>('a' + (x % 26));
  }
  return v;
}

sim::Future<DbBench::PhaseResult> DbBench::BulkLoad() {
  sim::Promise<PhaseResult> promise(sim_);
  auto future = promise.GetFuture();
  BulkLoadTask(std::move(promise));
  return future;
}

sim::Task DbBench::BulkLoadTask(sim::Promise<PhaseResult> promise) {
  PhaseResult result;
  result.name = "bulkload";
  const sim::TimeNs start = sim_.Now();
  // db_bench's bulkload fills the database with the WAL disabled, so
  // throughput is bounded by Flash flush/compaction bandwidth.
  store_.set_wal_enabled(false);
  for (uint64_t i = 0; i < config_.num_keys; ++i) {
    const sim::TimeNs op_start = sim_.Now();
    const bool ok = co_await store_.Put(
        KeyFor(i), ValueFor(i, config_.value_bytes));
    REFLEX_CHECK(ok);
    result.latency.Record(sim_.Now() - op_start);
    ++result.ops;
  }
  co_await store_.Flush();
  // Include outstanding background compaction: bulkload is complete
  // once the LSM reaches its steady shape (at the paper's 43GB scale
  // this is negligible; at ours it matters for fair accounting).
  co_await store_.WaitCompactionIdle();
  store_.set_wal_enabled(true);
  result.duration = sim_.Now() - start;
  result.ops_per_sec =
      static_cast<double>(result.ops) / sim::ToSeconds(result.duration);
  promise.Set(std::move(result));
}

sim::Future<DbBench::PhaseResult> DbBench::RandomRead() {
  sim::Promise<PhaseResult> promise(sim_);
  auto future = promise.GetFuture();
  ReadPhaseTask(/*with_writer=*/false, std::move(promise));
  return future;
}

sim::Future<DbBench::PhaseResult> DbBench::ReadWhileWriting() {
  sim::Promise<PhaseResult> promise(sim_);
  auto future = promise.GetFuture();
  ReadPhaseTask(/*with_writer=*/true, std::move(promise));
  return future;
}

sim::Task DbBench::ReadPhaseTask(bool with_writer,
                                 sim::Promise<PhaseResult> promise) {
  PhaseResult result;
  result.name = with_writer ? "readwhilewriting" : "randomread";
  const sim::TimeNs start = sim_.Now();

  auto stop_writer = std::make_shared<bool>(false);
  if (with_writer) WriterThread(stop_writer);

  sim::Barrier barrier(sim_, config_.read_threads);
  for (int t = 0; t < config_.read_threads; ++t) {
    ReaderThread(t, &result, &barrier);
  }
  co_await barrier.Done();
  *stop_writer = true;

  result.duration = sim_.Now() - start;
  result.ops_per_sec =
      static_cast<double>(result.ops) / sim::ToSeconds(result.duration);
  promise.Set(std::move(result));
}

sim::Task DbBench::ReaderThread(int id, PhaseResult* result,
                                sim::Barrier* barrier) {
  sim::Rng rng(config_.seed ^ (0x1234 + static_cast<uint64_t>(id)),
               "db_bench_reader");
  for (int64_t i = 0; i < config_.reads_per_thread; ++i) {
    const uint64_t key_index = rng.NextBounded(config_.num_keys);
    const sim::TimeNs op_start = sim_.Now();
    GetResult r = co_await store_.Get(KeyFor(key_index));
    result->latency.Record(sim_.Now() - op_start);
    ++result->ops;
    if (!r.found) {
      ++result->not_found;
    } else if (key_index < config_.num_keys &&
               r.value != ValueFor(key_index, config_.value_bytes)) {
      // Keys overwritten by the RwW writer get fresh values; treat any
      // value with the updated prefix as valid.
      if (r.value.rfind("updated-", 0) != 0) ++result->value_mismatches;
    }
  }
  barrier->Arrive();
}

sim::Task DbBench::WriterThread(std::shared_ptr<bool> stop_flag) {
  sim::Rng rng(config_.seed ^ 0xabcd, "db_bench_writer");
  const double mean_gap_ns = 1e9 / config_.write_rate;
  while (!*stop_flag) {
    co_await sim::Delay(
        sim_, static_cast<sim::TimeNs>(rng.NextExponential(mean_gap_ns)));
    if (*stop_flag) break;
    const uint64_t key_index = rng.NextBounded(config_.num_keys);
    std::string value = "updated-" + ValueFor(key_index,
                                              config_.value_bytes - 8);
    co_await store_.Put(KeyFor(key_index), std::move(value));
  }
}

}  // namespace reflex::apps::kv
