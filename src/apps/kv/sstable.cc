#include "apps/kv/sstable.h"

#include <algorithm>
#include <cstring>

#include "sim/logging.h"

namespace reflex::apps::kv {

namespace {

uint64_t Fnv1a(std::string_view s, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

BloomFilter::BloomFilter(size_t expected_keys, int bits_per_key,
                         int hashes)
    : hashes_(hashes) {
  size_t bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign(bits, false);
}

uint64_t BloomFilter::HashN(std::string_view key, int i) const {
  // Double hashing: h1 + i*h2.
  const uint64_t h1 = Fnv1a(key, 0);
  const uint64_t h2 = Fnv1a(key, 0x9e3779b97f4a7c15ULL) | 1;
  return h1 + static_cast<uint64_t>(i) * h2;
}

void BloomFilter::Add(std::string_view key) {
  for (int i = 0; i < hashes_; ++i) {
    bits_[HashN(key, i) % bits_.size()] = true;
  }
}

bool BloomFilter::MayContain(std::string_view key) const {
  for (int i = 0; i < hashes_; ++i) {
    if (!bits_[HashN(key, i) % bits_.size()]) return false;
  }
  return true;
}

int SSTableMeta::FindBlock(std::string_view key) const {
  if (block_first_keys.empty()) return -1;
  // Last block whose first key is <= key.
  auto it = std::upper_bound(block_first_keys.begin(),
                             block_first_keys.end(), key,
                             [](std::string_view k, const std::string& b) {
                               return k < std::string_view(b);
                             });
  if (it == block_first_keys.begin()) return -1;
  return static_cast<int>(it - block_first_keys.begin()) - 1;
}

std::vector<uint8_t> BuildSSTableImage(const std::vector<KvEntry>& entries,
                                       int bloom_bits_per_key,
                                       SSTableMeta* meta) {
  REFLEX_CHECK(!entries.empty());
  REFLEX_CHECK(meta != nullptr);
  meta->bloom = std::make_unique<BloomFilter>(entries.size(),
                                              bloom_bits_per_key);
  meta->num_entries = entries.size();
  meta->first_key = entries.front().key;
  meta->last_key = entries.back().key;
  meta->block_first_keys.clear();

  std::vector<uint8_t> image;
  size_t block_used = kBlockBytes;  // force a new block immediately
  for (const KvEntry& e : entries) {
    REFLEX_CHECK(e.key.size() < 65535 && e.value.size() < 65534);
    const size_t value_size = e.tombstone ? 0 : e.value.size();
    const size_t rec = 4 + e.key.size() + value_size;
    REFLEX_CHECK(rec <= kBlockBytes);
    if (block_used + rec > kBlockBytes) {
      // Open a new zero-filled block; the zero bytes left in the
      // previous block act as its terminator (klen == 0).
      image.insert(image.end(), kBlockBytes, 0);
      block_used = 0;
      meta->block_first_keys.push_back(e.key);
    }
    uint8_t* out = image.data() + image.size() - kBlockBytes + block_used;
    const auto klen = static_cast<uint16_t>(e.key.size());
    const uint16_t vlen = e.tombstone
                              ? kTombstoneVlen
                              : static_cast<uint16_t>(e.value.size());
    std::memcpy(out, &klen, 2);
    std::memcpy(out + 2, &vlen, 2);
    std::memcpy(out + 4, e.key.data(), klen);
    if (!e.tombstone) {
      std::memcpy(out + 4 + klen, e.value.data(), e.value.size());
    }
    block_used += rec;
    meta->bloom->Add(e.key);
  }
  meta->data_bytes = image.size();
  return image;
}

std::vector<KvEntry> ParseBlock(const uint8_t* block) {
  std::vector<KvEntry> entries;
  size_t pos = 0;
  while (pos + 4 <= kBlockBytes) {
    uint16_t klen, vlen;
    std::memcpy(&klen, block + pos, 2);
    std::memcpy(&vlen, block + pos + 2, 2);
    if (klen == 0) break;
    const uint16_t value_bytes = vlen == kTombstoneVlen ? 0 : vlen;
    if (pos + 4 + klen + value_bytes > kBlockBytes) break;
    KvEntry e;
    e.key.assign(reinterpret_cast<const char*>(block + pos + 4), klen);
    if (vlen == kTombstoneVlen) {
      e.tombstone = true;
    } else {
      e.value.assign(
          reinterpret_cast<const char*>(block + pos + 4 + klen), vlen);
    }
    entries.push_back(std::move(e));
    pos += 4 + klen + value_bytes;
  }
  return entries;
}

const KvEntry* FindInBlock(const std::vector<KvEntry>& entries,
                           std::string_view key) {
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const KvEntry& e, std::string_view k) { return e.key < k; });
  if (it != entries.end() && it->key == key) return &*it;
  return nullptr;
}

}  // namespace reflex::apps::kv
