#include "apps/graph/graph_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "sim/logging.h"

namespace reflex::apps::graph {

namespace {

constexpr uint64_t kAlign = 4096;
constexpr uint32_t kWriteChunk = 256 * 1024;

uint64_t AlignUp(uint64_t v) { return (v + kAlign - 1) / kAlign * kAlign; }

/** Serializes one CSR direction into `image` at `index_off`/`edges_off`. */
void FillCsr(const std::vector<Edge>& edges, uint32_t n, bool reverse,
             std::vector<uint8_t>& image, uint64_t index_off,
             uint64_t edges_off) {
  std::vector<uint64_t> index(n + 1, 0);
  for (const Edge& e : edges) {
    const uint32_t src = reverse ? e.second : e.first;
    ++index[src + 1];
  }
  for (uint32_t v = 0; v < n; ++v) index[v + 1] += index[v];
  std::vector<uint64_t> cursor(index.begin(), index.end() - 1);
  auto* edge_out = reinterpret_cast<uint32_t*>(image.data() + edges_off);
  for (const Edge& e : edges) {
    const uint32_t src = reverse ? e.second : e.first;
    const uint32_t dst = reverse ? e.first : e.second;
    edge_out[cursor[src]++] = dst;
  }
  std::memcpy(image.data() + index_off, index.data(),
              (n + 1) * sizeof(uint64_t));
}

sim::Task WriteImageTask(client::StorageBackend* backend,
                         std::vector<uint8_t> image, uint64_t base_offset,
                         GraphMeta meta, sim::Promise<GraphMeta> promise) {
  for (uint64_t off = 0; off < image.size(); off += kWriteChunk) {
    const auto n = static_cast<uint32_t>(
        std::min<uint64_t>(kWriteChunk, image.size() - off));
    client::IoResult r = co_await backend->WriteBytes(base_offset + off, n,
                                                      image.data() + off);
    if (!r.ok()) {
      REFLEX_PANIC("graph image write failed at offset %llu",
                   static_cast<unsigned long long>(off));
    }
  }
  promise.Set(meta);
}

sim::Task LoadIndexTask(client::StorageBackend* backend, uint64_t offset,
                        uint32_t num_vertices,
                        sim::Promise<std::vector<uint64_t>> promise) {
  const uint64_t bytes = (static_cast<uint64_t>(num_vertices) + 1) * 8;
  std::vector<uint8_t> buf(AlignUp(bytes));
  for (uint64_t off = 0; off < buf.size(); off += kWriteChunk) {
    const auto n = static_cast<uint32_t>(
        std::min<uint64_t>(kWriteChunk, buf.size() - off));
    client::IoResult r =
        co_await backend->ReadBytes(offset + off, n, buf.data() + off);
    if (!r.ok()) REFLEX_PANIC("graph index read failed");
  }
  std::vector<uint64_t> index(num_vertices + 1);
  std::memcpy(index.data(), buf.data(), bytes);
  promise.Set(std::move(index));
}

}  // namespace

sim::Future<GraphMeta> BuildGraphOnFlash(sim::Simulator& sim,
                                         client::StorageBackend& backend,
                                         const std::vector<Edge>& edges,
                                         uint32_t num_vertices,
                                         uint64_t base_offset) {
  REFLEX_CHECK(base_offset % kAlign == 0);
  const uint64_t m = edges.size();
  const uint64_t index_bytes =
      (static_cast<uint64_t>(num_vertices) + 1) * 8;
  const uint64_t edge_bytes = m * 4;

  GraphMeta meta;
  meta.num_vertices = num_vertices;
  meta.num_edges = m;
  uint64_t cursor = 0;
  meta.fwd_index_offset = base_offset + cursor;
  cursor += AlignUp(index_bytes);
  meta.fwd_edges_offset = base_offset + cursor;
  cursor += AlignUp(edge_bytes);
  meta.rev_index_offset = base_offset + cursor;
  cursor += AlignUp(index_bytes);
  meta.rev_edges_offset = base_offset + cursor;
  cursor += AlignUp(edge_bytes);
  meta.total_bytes = cursor;

  std::vector<uint8_t> image(cursor, 0);
  FillCsr(edges, num_vertices, /*reverse=*/false, image,
          meta.fwd_index_offset - base_offset,
          meta.fwd_edges_offset - base_offset);
  FillCsr(edges, num_vertices, /*reverse=*/true, image,
          meta.rev_index_offset - base_offset,
          meta.rev_edges_offset - base_offset);

  sim::Promise<GraphMeta> promise(sim);
  auto future = promise.GetFuture();
  WriteImageTask(&backend, std::move(image), base_offset, meta,
                 std::move(promise));
  return future;
}

sim::Future<std::vector<uint64_t>> LoadIndex(
    sim::Simulator& sim, client::StorageBackend& backend, uint64_t offset,
    uint32_t num_vertices) {
  sim::Promise<std::vector<uint64_t>> promise(sim);
  auto future = promise.GetFuture();
  LoadIndexTask(&backend, offset, num_vertices, std::move(promise));
  return future;
}

}  // namespace reflex::apps::graph
