#ifndef REFLEX_APPS_GRAPH_GRAPH_GEN_H_
#define REFLEX_APPS_GRAPH_GRAPH_GEN_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace reflex::apps::graph {

using Edge = std::pair<uint32_t, uint32_t>;

/**
 * Generates a directed R-MAT graph (Chakrabarti et al.): a synthetic
 * power-law graph standing in for the paper's SOC-LiveJournal1 (see
 * DESIGN.md substitution table). Self-loops are dropped; duplicate
 * edges may remain, as in real crawls.
 */
std::vector<Edge> GenerateRmat(uint32_t num_vertices, uint64_t num_edges,
                               uint64_t seed, double a = 0.57,
                               double b = 0.19, double c = 0.19);

/** Uniform random directed graph (for tests). */
std::vector<Edge> GenerateUniform(uint32_t num_vertices,
                                  uint64_t num_edges, uint64_t seed);

}  // namespace reflex::apps::graph

#endif  // REFLEX_APPS_GRAPH_GRAPH_GEN_H_
