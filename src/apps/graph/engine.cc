#include "apps/graph/engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "sim/logging.h"

namespace reflex::apps::graph {

GraphEngine::GraphEngine(sim::Simulator& sim,
                         client::StorageBackend& backend,
                         const GraphMeta& meta, Options options)
    : sim_(sim), backend_(backend), meta_(meta), options_(options) {
  cache_ = std::make_unique<PageCache>(sim, backend, options.cache_pages,
                                       options.io_slots,
                                       /*readahead_pages=*/8);
}

sim::VoidFuture GraphEngine::Init() {
  sim::VoidPromise promise(sim_);
  auto future = promise.GetFuture();
  InitTask(std::move(promise));
  return future;
}

sim::Task GraphEngine::InitTask(sim::VoidPromise promise) {
  // Indexes stay memory-resident, as in FlashX; edge lists do not.
  // LoadIndex reads through the backend (not the page cache) so the
  // cache stays dedicated to edge pages.
  // Note: these reads are part of engine startup, not algorithm time.
  auto fwd = LoadIndex(sim_, backend_, meta_.fwd_index_offset,
                       meta_.num_vertices);
  fwd_index_ = co_await fwd;
  auto rev = LoadIndex(sim_, backend_, meta_.rev_index_offset,
                       meta_.num_vertices);
  rev_index_ = co_await rev;
  initialized_ = true;
  promise.Set(sim::Unit{});
}

sim::VoidFuture GraphEngine::GatherNeighbors(bool reverse, uint32_t v,
                                             std::vector<uint32_t>* out) {
  sim::VoidPromise promise(sim_);
  auto future = promise.GetFuture();
  GatherTask(reverse, v, out, std::move(promise));
  return future;
}

sim::Task GraphEngine::GatherTask(bool reverse, uint32_t v,
                                  std::vector<uint32_t>* out,
                                  sim::VoidPromise promise) {
  const std::vector<uint64_t>& index = reverse ? rev_index_ : fwd_index_;
  const uint64_t base =
      reverse ? meta_.rev_edges_offset : meta_.fwd_edges_offset;
  const uint64_t begin = index[v];
  const uint64_t end = index[v + 1];
  out->clear();
  out->reserve(end - begin);
  uint64_t byte = base + begin * 4;
  const uint64_t byte_end = base + end * 4;
  while (byte < byte_end) {
    const uint8_t* page = co_await cache_->GetPage(byte);
    // The engine has no redundancy: losing graph storage is fatal.
    REFLEX_CHECK(page != nullptr);
    const uint64_t page_start = byte / PageCache::kPageBytes *
                                PageCache::kPageBytes;
    const uint64_t take_end =
        std::min(byte_end, page_start + PageCache::kPageBytes);
    for (uint64_t b = byte; b < take_end; b += 4) {
      uint32_t value;
      std::memcpy(&value, page + (b - page_start), 4);
      out->push_back(value);
    }
    byte = take_end;
  }
  promise.Set(sim::Unit{});
}

// ---------------------------------------------------------------------
// WCC: label propagation over the undirected view (fwd + rev edges).
// ---------------------------------------------------------------------

sim::Future<GraphEngine::AlgoStats> GraphEngine::RunWcc() {
  REFLEX_CHECK(initialized_);
  sim::Promise<AlgoStats> promise(sim_);
  auto future = promise.GetFuture();
  WccTask(std::move(promise));
  return future;
}

sim::Task GraphEngine::WccTask(sim::Promise<AlgoStats> promise) {
  const sim::TimeNs start = sim_.Now();
  const int64_t misses_before = cache_->stats().misses;
  const uint32_t n = meta_.num_vertices;
  labels_.resize(n);
  for (uint32_t v = 0; v < n; ++v) labels_[v] = v;

  AlgoStats stats;
  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.iterations;
    uint32_t cursor = 0;
    sim::Barrier barrier(sim_, options_.workers);
    for (int w = 0; w < options_.workers; ++w) {
      WccWorker(&cursor, &changed, &barrier, &stats.edges_scanned);
    }
    co_await barrier.Done();
  }

  // detlint: allow(unordered-container) only the distinct count is read;
  // iteration order is never observed.
  std::unordered_set<uint32_t> distinct(labels_.begin(), labels_.end());
  stats.result_value = distinct.size();
  stats.exec_time = sim_.Now() - start;
  stats.flash_reads = cache_->stats().misses - misses_before;
  promise.Set(stats);
}

sim::Task GraphEngine::WccWorker(uint32_t* cursor, bool* changed,
                                 sim::Barrier* barrier, int64_t* edges) {
  const uint32_t n = meta_.num_vertices;
  std::vector<uint32_t> nbrs;
  CpuMeter cpu;
  while (*cursor < n) {
    const uint32_t v = (*cursor)++;
    uint32_t best = labels_[v];
    for (int dir = 0; dir < 2; ++dir) {
      co_await GatherNeighbors(dir == 1, v, &nbrs);
      for (uint32_t u : nbrs) best = std::min(best, labels_[u]);
      *edges += static_cast<int64_t>(nbrs.size());
      cpu.pending += options_.cpu_per_edge *
                     static_cast<sim::TimeNs>(nbrs.size());
    }
    cpu.pending += options_.cpu_per_vertex;
    if (best < labels_[v]) {
      labels_[v] = best;
      *changed = true;
    }
    if (cpu.pending >= ChargeThreshold()) {
      co_await sim::Delay(sim_, cpu.pending);
      cpu.pending = 0;
    }
  }
  if (cpu.pending > 0) co_await sim::Delay(sim_, cpu.pending);
  barrier->Arrive();
}

// ---------------------------------------------------------------------
// PageRank: pull-style over reverse edges.
// ---------------------------------------------------------------------

sim::Future<GraphEngine::AlgoStats> GraphEngine::RunPageRank(
    int iterations, double damping) {
  REFLEX_CHECK(initialized_);
  sim::Promise<AlgoStats> promise(sim_);
  auto future = promise.GetFuture();
  PageRankTask(iterations, damping, std::move(promise));
  return future;
}

sim::Task GraphEngine::PageRankTask(int iterations, double damping,
                                    sim::Promise<AlgoStats> promise) {
  const sim::TimeNs start = sim_.Now();
  const int64_t misses_before = cache_->stats().misses;
  const uint32_t n = meta_.num_vertices;
  ranks_.assign(n, 1.0 / n);
  std::vector<double> next(n, 0.0);

  AlgoStats stats;
  for (int it = 0; it < iterations; ++it) {
    ++stats.iterations;
    uint32_t cursor = 0;
    sim::Barrier barrier(sim_, options_.workers);
    for (int w = 0; w < options_.workers; ++w) {
      PageRankWorker(&cursor, &next, damping, &barrier,
                     &stats.edges_scanned);
    }
    co_await barrier.Done();
    ranks_.swap(next);
  }

  // Scaled checksum of the distribution (stable across runs).
  double sum = 0.0;
  for (double r : ranks_) sum += r;
  stats.result_value = static_cast<uint64_t>(sum * 1e9);
  stats.exec_time = sim_.Now() - start;
  stats.flash_reads = cache_->stats().misses - misses_before;
  promise.Set(stats);
}

sim::Task GraphEngine::PageRankWorker(uint32_t* cursor,
                                      std::vector<double>* next,
                                      double damping, sim::Barrier* barrier,
                                      int64_t* edges) {
  const uint32_t n = meta_.num_vertices;
  std::vector<uint32_t> nbrs;
  CpuMeter cpu;
  while (*cursor < n) {
    const uint32_t v = (*cursor)++;
    co_await GatherNeighbors(/*reverse=*/true, v, &nbrs);
    double acc = 0.0;
    for (uint32_t u : nbrs) {
      const uint64_t out_deg = fwd_index_[u + 1] - fwd_index_[u];
      if (out_deg > 0) acc += ranks_[u] / static_cast<double>(out_deg);
    }
    (*next)[v] = (1.0 - damping) / n + damping * acc;
    *edges += static_cast<int64_t>(nbrs.size());
    cpu.pending += options_.cpu_per_vertex +
                   options_.cpu_per_edge *
                       static_cast<sim::TimeNs>(nbrs.size());
    if (cpu.pending >= ChargeThreshold()) {
      co_await sim::Delay(sim_, cpu.pending);
      cpu.pending = 0;
    }
  }
  if (cpu.pending > 0) co_await sim::Delay(sim_, cpu.pending);
  barrier->Arrive();
}

// ---------------------------------------------------------------------
// BFS: level-synchronous frontier expansion.
// ---------------------------------------------------------------------

sim::Future<GraphEngine::AlgoStats> GraphEngine::RunBfs(uint32_t source) {
  REFLEX_CHECK(initialized_);
  REFLEX_CHECK(source < meta_.num_vertices);
  sim::Promise<AlgoStats> promise(sim_);
  auto future = promise.GetFuture();
  BfsTask(source, std::move(promise));
  return future;
}

sim::Task GraphEngine::BfsTask(uint32_t source,
                               sim::Promise<AlgoStats> promise) {
  const sim::TimeNs start = sim_.Now();
  const int64_t misses_before = cache_->stats().misses;
  bfs_levels_.assign(meta_.num_vertices, -1);
  bfs_levels_[source] = 0;

  AlgoStats stats;
  std::vector<uint32_t> frontier{source};
  uint64_t reached = 1;
  while (!frontier.empty()) {
    ++stats.iterations;
    std::vector<uint32_t> next;
    size_t cursor = 0;
    sim::Barrier barrier(sim_, options_.workers);
    for (int w = 0; w < options_.workers; ++w) {
      BfsWorker(&frontier, &cursor, &next, &barrier, &stats.edges_scanned);
    }
    co_await barrier.Done();
    // Claim newly discovered vertices, dropping duplicates. The next
    // frontier is processed in vertex-id order, which makes adjacency
    // reads quasi-sequential (FlashX's vertically-partitioned layout
    // has the same effect).
    std::vector<uint32_t> dedup;
    dedup.reserve(next.size());
    for (uint32_t v : next) {
      if (bfs_levels_[v] == -1) {
        bfs_levels_[v] = stats.iterations;
        ++reached;
        dedup.push_back(v);
      }
    }
    std::sort(dedup.begin(), dedup.end());
    frontier.swap(dedup);
  }

  stats.result_value = reached;
  stats.exec_time = sim_.Now() - start;
  stats.flash_reads = cache_->stats().misses - misses_before;
  promise.Set(stats);
}

sim::Task GraphEngine::BfsWorker(const std::vector<uint32_t>* frontier,
                                 size_t* cursor,
                                 std::vector<uint32_t>* next,
                                 sim::Barrier* barrier, int64_t* edges) {
  std::vector<uint32_t> nbrs;
  CpuMeter cpu;
  while (*cursor < frontier->size()) {
    const uint32_t v = (*frontier)[(*cursor)++];
    co_await GatherNeighbors(/*reverse=*/false, v, &nbrs);
    for (uint32_t u : nbrs) {
      if (bfs_levels_[u] == -1) next->push_back(u);
    }
    *edges += static_cast<int64_t>(nbrs.size());
    cpu.pending += options_.cpu_per_vertex +
                   options_.cpu_per_edge *
                       static_cast<sim::TimeNs>(nbrs.size());
    if (cpu.pending >= ChargeThreshold()) {
      co_await sim::Delay(sim_, cpu.pending);
      cpu.pending = 0;
    }
  }
  if (cpu.pending > 0) co_await sim::Delay(sim_, cpu.pending);
  barrier->Arrive();
}

// ---------------------------------------------------------------------
// SCC: Kosaraju's two-pass algorithm with iterative DFS and adjacency
// prefetching (lookahead on the vertices about to be visited), so the
// random accesses overlap -- throughput-bound rather than
// latency-bound, as in FlashX. Still the most remote-Flash-sensitive
// benchmark (largest slowdown in the paper's Figure 7b).
// ---------------------------------------------------------------------

sim::Task GraphEngine::PrefetchAdjacency(bool reverse, uint32_t v) {
  const std::vector<uint64_t>& index = reverse ? rev_index_ : fwd_index_;
  if (index[v] == index[v + 1]) co_return;
  const uint64_t base =
      reverse ? meta_.rev_edges_offset : meta_.fwd_edges_offset;
  co_await cache_->GetPage(base + index[v] * 4);
}

sim::Future<GraphEngine::AlgoStats> GraphEngine::RunScc() {
  REFLEX_CHECK(initialized_);
  sim::Promise<AlgoStats> promise(sim_);
  auto future = promise.GetFuture();
  SccTask(std::move(promise));
  return future;
}

sim::Task GraphEngine::SccTask(sim::Promise<AlgoStats> promise) {
  const sim::TimeNs start = sim_.Now();
  const int64_t misses_before = cache_->stats().misses;
  const uint32_t n = meta_.num_vertices;
  AlgoStats stats;
  CpuMeter cpu;

  struct Frame {
    uint32_t v;
    std::vector<uint32_t> nbrs;
    size_t idx = 0;
  };

  // Pass 1: finish order on the forward graph.
  std::vector<bool> visited(n, false);
  std::vector<uint32_t> finish_order;
  finish_order.reserve(n);
  std::vector<Frame> stack;
  for (uint32_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    visited[s] = true;
    stack.push_back(Frame{s, {}, 0});
    co_await GatherNeighbors(false, s, &stack.back().nbrs);
    for (uint32_t u : stack.back().nbrs) {
      if (!visited[u]) PrefetchAdjacency(false, u);
    }
    stats.edges_scanned += static_cast<int64_t>(stack.back().nbrs.size());
    while (!stack.empty()) {
      Frame& top = stack.back();
      cpu.pending += options_.cpu_per_edge;
      if (top.idx < top.nbrs.size()) {
        const uint32_t u = top.nbrs[top.idx++];
        // Look ahead: warm the next siblings' adjacency while this
        // subtree is processed.
        for (size_t j = top.idx; j < std::min(top.idx + 4, top.nbrs.size());
             ++j) {
          if (!visited[top.nbrs[j]]) PrefetchAdjacency(false, top.nbrs[j]);
        }
        if (!visited[u]) {
          visited[u] = true;
          stack.push_back(Frame{u, {}, 0});
          co_await GatherNeighbors(false, u, &stack.back().nbrs);
          for (uint32_t w : stack.back().nbrs) {
            if (!visited[w]) PrefetchAdjacency(false, w);
          }
          stats.edges_scanned +=
              static_cast<int64_t>(stack.back().nbrs.size());
        }
      } else {
        finish_order.push_back(top.v);
        cpu.pending += options_.cpu_per_vertex;
        stack.pop_back();
      }
      if (cpu.pending >= ChargeThreshold()) {
        co_await sim::Delay(sim_, cpu.pending);
        cpu.pending = 0;
      }
    }
  }

  // Pass 2: reverse-graph DFS in reverse finish order.
  scc_ids_.assign(n, -1);
  int32_t num_scc = 0;
  for (auto it = finish_order.rbegin(); it != finish_order.rend(); ++it) {
    if (scc_ids_[*it] != -1) continue;
    const int32_t comp = num_scc++;
    scc_ids_[*it] = comp;
    stack.push_back(Frame{*it, {}, 0});
    co_await GatherNeighbors(true, *it, &stack.back().nbrs);
    for (uint32_t u : stack.back().nbrs) {
      if (scc_ids_[u] == -1) PrefetchAdjacency(true, u);
    }
    stats.edges_scanned += static_cast<int64_t>(stack.back().nbrs.size());
    while (!stack.empty()) {
      Frame& top = stack.back();
      cpu.pending += options_.cpu_per_edge;
      if (top.idx < top.nbrs.size()) {
        const uint32_t u = top.nbrs[top.idx++];
        for (size_t j = top.idx; j < std::min(top.idx + 4, top.nbrs.size());
             ++j) {
          if (scc_ids_[top.nbrs[j]] == -1) {
            PrefetchAdjacency(true, top.nbrs[j]);
          }
        }
        if (scc_ids_[u] == -1) {
          scc_ids_[u] = comp;
          stack.push_back(Frame{u, {}, 0});
          co_await GatherNeighbors(true, u, &stack.back().nbrs);
          for (uint32_t w : stack.back().nbrs) {
            if (scc_ids_[w] == -1) PrefetchAdjacency(true, w);
          }
          stats.edges_scanned +=
              static_cast<int64_t>(stack.back().nbrs.size());
        }
      } else {
        cpu.pending += options_.cpu_per_vertex;
        stack.pop_back();
      }
      if (cpu.pending >= ChargeThreshold()) {
        co_await sim::Delay(sim_, cpu.pending);
        cpu.pending = 0;
      }
    }
  }
  if (cpu.pending > 0) co_await sim::Delay(sim_, cpu.pending);

  stats.iterations = 2;
  stats.result_value = static_cast<uint64_t>(num_scc);
  stats.exec_time = sim_.Now() - start;
  stats.flash_reads = cache_->stats().misses - misses_before;
  promise.Set(stats);
}

}  // namespace reflex::apps::graph
