#ifndef REFLEX_APPS_GRAPH_ENGINE_H_
#define REFLEX_APPS_GRAPH_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/graph/graph_store.h"
#include "client/page_cache.h"
#include "client/storage_backend.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::apps::graph {

using client::PageCache;

/**
 * Out-of-core graph analytics engine in the style of FlashX: vertex
 * state lives in memory, edge lists live on Flash behind a SAFS-like
 * page cache, and algorithms issue many parallel I/Os. Used to
 * reproduce the paper's Figure 7b (WCC / PageRank / BFS / SCC
 * slowdowns of remote vs local Flash).
 */
class GraphEngine {
 public:
  struct Options {
    /** Page-cache capacity (kept small so edges come from Flash). */
    uint32_t cache_pages = 512;

    /** Maximum outstanding Flash reads (SAFS I/O depth). */
    int io_slots = 128;

    /** Parallel worker coroutines for vertex-parallel algorithms. */
    int workers = 32;

    /**
     * Modeled compute cost per edge scanned / vertex processed.
     * FlashX-style engines are compute/memory heavy per edge (vertex
     * program dispatch, message handling), which is why the paper sees
     * only 15-40% slowdown even on iSCSI.
     */
    sim::TimeNs cpu_per_edge = sim::TimeNs(500);
    sim::TimeNs cpu_per_vertex = sim::TimeNs(500);

    /** Accumulated compute is charged in slices of this size. */
    sim::TimeNs cpu_slice = sim::Micros(20);
  };

  /** Outcome of one algorithm run. */
  struct AlgoStats {
    sim::TimeNs exec_time = 0;
    int64_t flash_reads = 0;   // page-cache misses
    int64_t edges_scanned = 0;
    int iterations = 0;
    /** Algorithm-specific scalar (components, vertices reached...). */
    uint64_t result_value = 0;
  };

  GraphEngine(sim::Simulator& sim, client::StorageBackend& backend,
              const GraphMeta& meta, Options options);

  /** Loads the vertex indexes into memory; call before any Run*. */
  sim::VoidFuture Init();

  /** Weakly connected components (label propagation to fixpoint). */
  sim::Future<AlgoStats> RunWcc();

  /** PageRank with the given number of iterations. */
  sim::Future<AlgoStats> RunPageRank(int iterations, double damping = 0.85);

  /** Breadth-first search from `source`; result is vertices reached. */
  sim::Future<AlgoStats> RunBfs(uint32_t source);

  /** Strongly connected components (Kosaraju); result is SCC count. */
  sim::Future<AlgoStats> RunScc();

  // Final vertex state, for validation against reference results.
  const std::vector<uint32_t>& labels() const { return labels_; }
  const std::vector<double>& ranks() const { return ranks_; }
  const std::vector<int32_t>& bfs_levels() const { return bfs_levels_; }
  const std::vector<int32_t>& scc_ids() const { return scc_ids_; }

  const PageCache::Stats& cache_stats() const { return cache_->stats(); }

 private:
  struct CpuMeter {
    sim::TimeNs pending = 0;
  };

  sim::Task InitTask(sim::VoidPromise promise);

  /** Copies v's (forward or reverse) neighbors into *out. */
  sim::VoidFuture GatherNeighbors(bool reverse, uint32_t v,
                                  std::vector<uint32_t>* out);
  sim::Task GatherTask(bool reverse, uint32_t v, std::vector<uint32_t>* out,
                       sim::VoidPromise promise);

  sim::Task WccTask(sim::Promise<AlgoStats> promise);
  sim::Task WccWorker(uint32_t* cursor, bool* changed, sim::Barrier* barrier,
                      int64_t* edges);
  sim::Task PageRankTask(int iterations, double damping,
                         sim::Promise<AlgoStats> promise);
  sim::Task PageRankWorker(uint32_t* cursor, std::vector<double>* next,
                           double damping, sim::Barrier* barrier,
                           int64_t* edges);
  sim::Task BfsTask(uint32_t source, sim::Promise<AlgoStats> promise);
  sim::Task BfsWorker(const std::vector<uint32_t>* frontier,
                      size_t* cursor, std::vector<uint32_t>* next,
                      sim::Barrier* barrier, int64_t* edges);
  sim::Task SccTask(sim::Promise<AlgoStats> promise);
  /** Fire-and-forget adjacency prefetch (DFS lookahead). */
  sim::Task PrefetchAdjacency(bool reverse, uint32_t v);

  /** Charges accumulated compute once it exceeds the slice size. */
  sim::TimeNs ChargeThreshold() const { return options_.cpu_slice; }

  sim::Simulator& sim_;
  client::StorageBackend& backend_;
  GraphMeta meta_;
  Options options_;
  std::unique_ptr<PageCache> cache_;

  std::vector<uint64_t> fwd_index_;
  std::vector<uint64_t> rev_index_;
  bool initialized_ = false;

  std::vector<uint32_t> labels_;
  std::vector<double> ranks_;
  std::vector<int32_t> bfs_levels_;
  std::vector<int32_t> scc_ids_;
};

}  // namespace reflex::apps::graph

#endif  // REFLEX_APPS_GRAPH_ENGINE_H_
