#ifndef REFLEX_APPS_GRAPH_GRAPH_STORE_H_
#define REFLEX_APPS_GRAPH_GRAPH_STORE_H_

#include <cstdint>
#include <vector>

#include "apps/graph/graph_gen.h"
#include "client/storage_backend.h"
#include "sim/task.h"

namespace reflex::apps::graph {

/** On-Flash layout of a CSR graph (forward and reverse adjacency). */
struct GraphMeta {
  uint32_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t fwd_index_offset = 0;  // (n+1) x uint64
  uint64_t fwd_edges_offset = 0;  // m x uint32
  uint64_t rev_index_offset = 0;
  uint64_t rev_edges_offset = 0;
  uint64_t total_bytes = 0;
};

/**
 * Builds CSR + reverse-CSR images of an edge list and writes them to
 * the storage backend at `base_offset` (4KB aligned sections). The
 * returned future resolves when all writes are durable.
 */
sim::Future<GraphMeta> BuildGraphOnFlash(sim::Simulator& sim,
                                         client::StorageBackend& backend,
                                         const std::vector<Edge>& edges,
                                         uint32_t num_vertices,
                                         uint64_t base_offset);

/**
 * Loads an index section ((n+1) uint64 values at `offset`) into
 * memory, as FlashX keeps vertex indexes resident.
 */
sim::Future<std::vector<uint64_t>> LoadIndex(
    sim::Simulator& sim, client::StorageBackend& backend, uint64_t offset,
    uint32_t num_vertices);

}  // namespace reflex::apps::graph

#endif  // REFLEX_APPS_GRAPH_GRAPH_STORE_H_
