#include "apps/graph/graph_gen.h"

#include <bit>

#include "sim/logging.h"
#include "sim/random.h"

namespace reflex::apps::graph {

std::vector<Edge> GenerateRmat(uint32_t num_vertices, uint64_t num_edges,
                               uint64_t seed, double a, double b,
                               double c) {
  REFLEX_CHECK(num_vertices >= 2);
  REFLEX_CHECK(a + b + c < 1.0);
  sim::Rng rng(seed, "rmat");
  const int levels = 64 - std::countl_zero(
                              static_cast<uint64_t>(num_vertices - 1));
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    uint64_t src = 0, dst = 0;
    for (int l = 0; l < levels; ++l) {
      const double p = rng.NextDouble();
      src <<= 1;
      dst <<= 1;
      if (p < a) {
        // top-left quadrant
      } else if (p < a + b) {
        dst |= 1;
      } else if (p < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src >= num_vertices || dst >= num_vertices || src == dst) continue;
    edges.emplace_back(static_cast<uint32_t>(src),
                       static_cast<uint32_t>(dst));
  }
  return edges;
}

std::vector<Edge> GenerateUniform(uint32_t num_vertices,
                                  uint64_t num_edges, uint64_t seed) {
  REFLEX_CHECK(num_vertices >= 2);
  sim::Rng rng(seed, "uniform_graph");
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  while (edges.size() < num_edges) {
    const auto src = static_cast<uint32_t>(rng.NextBounded(num_vertices));
    const auto dst = static_cast<uint32_t>(rng.NextBounded(num_vertices));
    if (src == dst) continue;
    edges.emplace_back(src, dst);
  }
  return edges;
}

}  // namespace reflex::apps::graph
