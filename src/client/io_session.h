#ifndef REFLEX_CLIENT_IO_SESSION_H_
#define REFLEX_CLIENT_IO_SESSION_H_

#include <cstdint>

#include "client/io_result.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * A tenant's block I/O endpoint, independent of how many servers stand
 * behind it. TenantSession (one ReFlex server) and
 * cluster::ClusterSession (sharded, optionally replicated cluster)
 * both implement it, so load generators, the app models and the
 * benches are written once against IoSession& and run unchanged on
 * either path.
 *
 * Lanes generalize connections: a single-server session maps lane k to
 * TCP connection k of its client's pool; a cluster session maps it to
 * connection k of every per-shard pool. -1 lets the session pick
 * (round-robin). Callers that shard work across lanes (closed-loop
 * workers) use num_lanes() to stay in range.
 */
class IoSession {
 public:
  virtual ~IoSession() = default;

  /**
   * Reads `sectors` 512B sectors at logical `lba`; `data` (optional)
   * receives the payload. The future resolves when the application
   * would observe completion (all stack costs included).
   */
  virtual sim::Future<IoResult> Read(uint64_t lba, uint32_t sectors,
                                     uint8_t* data = nullptr,
                                     int lane = -1) = 0;

  /** Writes; see Read(). */
  virtual sim::Future<IoResult> Write(uint64_t lba, uint32_t sectors,
                                      uint8_t* data = nullptr,
                                      int lane = -1) = 0;

  /**
   * The tenant handle this session issues I/O under. For a cluster
   * session, the handle on the first shard (representative: per-shard
   * handles are assigned independently).
   */
  virtual uint32_t tenant_handle() const = 0;

  /** Independent request lanes (see class comment). Always >= 1. */
  virtual int num_lanes() const = 0;

  /** Logical capacity addressable through this session, in sectors. */
  virtual uint64_t capacity_sectors() const = 0;

  /** Logical sector size in bytes (the ReFlex wire sector). */
  virtual uint32_t sector_bytes() const = 0;

  /** Device page granularity in sectors (for aligned access). */
  virtual uint32_t sectors_per_page() const = 0;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_IO_SESSION_H_
