#ifndef REFLEX_CLIENT_BLOCK_DEVICE_H_
#define REFLEX_CLIENT_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "client/io_result.h"
#include "client/reflex_client.h"
#include "client/storage_backend.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * The legacy-application path: a Linux block-device driver that
 * exposes a ReFlex server as /dev/reflexN (paper section 4.2). The
 * driver implements the multi-queue (blk-mq) model: one hardware
 * context per core, each with its own socket to the server and a
 * kernel thread that receives and completes responses. Requests are
 * issued to the server without coalescing.
 *
 * Costs modeled per context: the block-layer (bio + blk-mq) CPU cost,
 * the kernel TCP stack cost, interrupt-coalescing delivery delay, and
 * the completion kthread's serialized receive processing. Each context
 * therefore tops out near 70K messages/s, matching the paper's
 * observation that ~6 contexts are needed to fill a 10GbE link with
 * 4KB requests.
 */
class BlockDevice : public StorageBackend {
 public:
  struct Options {
    /** Number of blk-mq hardware contexts (one per client core). */
    int num_contexts = 6;

    /** Kernel socket stack model for the per-context connection. */
    net::StackCosts stack = net::StackCosts::LinuxEpoll();

    /** bio + blk-mq submission-path CPU cost per request. */
    sim::TimeNs block_submit_cost = sim::Micros(3.0);

    /** blk-mq completion-path CPU cost per request. */
    sim::TimeNs block_complete_cost = sim::Micros(2.0);

    /** Application wakeup after completion (blocking callers). */
    sim::TimeNs app_wakeup = sim::Micros(4.0);

    /** Requests larger than this are split (Linux max_sectors_kb). */
    uint32_t max_request_sectors = 512;  // 256KB

    uint64_t seed = 21;

    /**
     * blk-mq error handling: requeue a chunk that failed with a
     * transient status (kDeviceError / kOutOfResources / kTimedOut /
     * kUnknownOutcome) up to this many times before completing the
     * request with the error. Re-issuing a kUnknownOutcome write is
     * the block layer's call to make, not the client library's: blk-mq
     * owns request ordering, and replaying identical sector contents
     * is idempotent at this layer. 0 (default) disables requeueing.
     */
    int max_requeues = 0;
    sim::TimeNs requeue_delay = sim::Micros(100);

    /** Failure policy forwarded to the underlying client library. */
    ReflexClient::RetryPolicy retry;
  };

  BlockDevice(sim::Simulator& sim, core::ReflexServer& server,
              net::Machine* machine, uint32_t tenant_handle,
              Options options);

  /**
   * Reads `bytes` at `byte_offset`. When `data` is non-null both must
   * be 512-aligned. Resolves when the application would observe the
   * completion.
   */
  sim::Future<IoResult> Read(uint64_t byte_offset, uint32_t bytes,
                             uint8_t* data = nullptr);

  /** Writes; see Read(). */
  sim::Future<IoResult> Write(uint64_t byte_offset, uint32_t bytes,
                              uint8_t* data = nullptr);

  // StorageBackend interface.
  sim::Future<IoResult> ReadBytes(uint64_t offset, uint32_t bytes,
                                  uint8_t* data) override {
    return Read(offset, bytes, data);
  }
  sim::Future<IoResult> WriteBytes(uint64_t offset, uint32_t bytes,
                                   const uint8_t* data) override {
    return Write(offset, bytes, const_cast<uint8_t*>(data));
  }
  uint64_t CapacityBytes() const override;
  const char* name() const override { return "ReFlex (block device)"; }

  int64_t reads_completed() const { return reads_completed_; }
  int64_t writes_completed() const { return writes_completed_; }
  int64_t bytes_read() const { return bytes_read_; }
  int64_t bytes_written() const { return bytes_written_; }
  /** Chunks re-issued after a transient failure. */
  int64_t requeues() const { return requeues_; }

  /** The underlying user-level client (fault counters live there). */
  ReflexClient& client() { return *client_; }

 private:
  struct Context {
    /** Single CPU timeline: submission and completion processing of a
     * context run on the same core, so they serialize together. */
    sim::TimeNs core_free = 0;
  };

  sim::Future<IoResult> SubmitSplit(bool is_read, uint64_t byte_offset,
                                    uint32_t bytes, uint8_t* data);
  sim::Task DoChunk(int ctx_index, bool is_read, uint64_t lba,
                    uint32_t sectors, uint8_t* data, sim::Barrier* barrier,
                    core::ReqStatus* status_out);
  sim::Task JoinChunks(std::shared_ptr<sim::Barrier> barrier,
                       std::shared_ptr<core::ReqStatus> status,
                       sim::TimeNs issue_time,
                       sim::Promise<IoResult> promise);

  sim::Simulator& sim_;
  core::ReflexServer& server_;
  Options options_;
  sim::Rng rng_;
  std::unique_ptr<ReflexClient> client_;
  std::unique_ptr<TenantSession> session_;
  std::vector<Context> contexts_;
  int next_ctx_ = 0;

  int64_t reads_completed_ = 0;
  int64_t writes_completed_ = 0;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
  int64_t requeues_ = 0;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_BLOCK_DEVICE_H_
