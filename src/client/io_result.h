#ifndef REFLEX_CLIENT_IO_RESULT_H_
#define REFLEX_CLIENT_IO_RESULT_H_

#include "core/protocol.h"
#include "sim/time.h"

namespace reflex::client {

/** Completion of one remote (or local) Flash I/O, as seen end-to-end
 * by the application: status plus total latency including client-side
 * stack costs. */
struct IoResult {
  core::ReqStatus status = core::ReqStatus::kOk;
  sim::TimeNs issue_time = 0;
  sim::TimeNs complete_time = 0;

  bool ok() const { return status == core::ReqStatus::kOk; }
  sim::TimeNs Latency() const { return complete_time - issue_time; }
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_IO_RESULT_H_
