#ifndef REFLEX_CLIENT_STORAGE_BACKEND_H_
#define REFLEX_CLIENT_STORAGE_BACKEND_H_

#include <cstdint>

#include "client/flash_service.h"
#include "client/io_result.h"
#include "client/io_session.h"
#include "core/protocol.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * Byte-addressed storage interface used by the applications (FIO, the
 * graph engine, the LSM key-value store). Implemented by the legacy
 * BlockDevice driver (remote ReFlex) and by ServiceStorageAdapter for
 * any FlashService (local NVMe, iSCSI), so each application runs
 * unmodified on every system under comparison -- exactly how the
 * paper's Figure 7 swaps block devices under unchanged binaries.
 */
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /** Reads `bytes` at `offset` (512-aligned when data is non-null). */
  virtual sim::Future<IoResult> ReadBytes(uint64_t offset, uint32_t bytes,
                                          uint8_t* data) = 0;

  /** Writes; see ReadBytes(). */
  virtual sim::Future<IoResult> WriteBytes(uint64_t offset, uint32_t bytes,
                                           const uint8_t* data) = 0;

  /** Usable capacity in bytes. */
  virtual uint64_t CapacityBytes() const = 0;

  virtual const char* name() const = 0;
};

/** Adapts a sector-addressed FlashService to the byte interface. */
class ServiceStorageAdapter : public StorageBackend {
 public:
  ServiceStorageAdapter(FlashService& service, uint64_t capacity_bytes)
      : service_(service), capacity_bytes_(capacity_bytes) {}

  sim::Future<IoResult> ReadBytes(uint64_t offset, uint32_t bytes,
                                  uint8_t* data) override {
    return service_.SubmitIo(IoDesc::Read(offset / core::kSectorBytes,
                                          SectorsFor(offset, bytes), data));
  }

  sim::Future<IoResult> WriteBytes(uint64_t offset, uint32_t bytes,
                                   const uint8_t* data) override {
    return service_.SubmitIo(
        IoDesc::Write(offset / core::kSectorBytes, SectorsFor(offset, bytes),
                      const_cast<uint8_t*>(data)));
  }

  uint64_t CapacityBytes() const override { return capacity_bytes_; }
  const char* name() const override { return service_.name(); }

 private:
  static uint32_t SectorsFor(uint64_t offset, uint32_t bytes) {
    const uint64_t first = offset / core::kSectorBytes;
    const uint64_t end =
        (offset + bytes + core::kSectorBytes - 1) / core::kSectorBytes;
    return static_cast<uint32_t>(end - first);
  }

  FlashService& service_;
  uint64_t capacity_bytes_;
};

/**
 * Byte-addressed backend over any IoSession. The session supplies its
 * own capacity, so the applications (FIO, graph engine, LSM store)
 * run identically on a single server or a sharded cluster.
 */
class SessionStorageBackend : public StorageBackend {
 public:
  explicit SessionStorageBackend(IoSession& session,
                                 const char* name = "ReFlex")
      : session_(session), name_(name) {}

  sim::Future<IoResult> ReadBytes(uint64_t offset, uint32_t bytes,
                                  uint8_t* data) override {
    return session_.Read(offset / core::kSectorBytes,
                         SectorsFor(offset, bytes), data);
  }

  sim::Future<IoResult> WriteBytes(uint64_t offset, uint32_t bytes,
                                   const uint8_t* data) override {
    return session_.Write(offset / core::kSectorBytes,
                          SectorsFor(offset, bytes),
                          const_cast<uint8_t*>(data));
  }

  uint64_t CapacityBytes() const override {
    return session_.capacity_sectors() *
           static_cast<uint64_t>(session_.sector_bytes());
  }

  const char* name() const override { return name_; }

 private:
  static uint32_t SectorsFor(uint64_t offset, uint32_t bytes) {
    const uint64_t first = offset / core::kSectorBytes;
    const uint64_t end =
        (offset + bytes + core::kSectorBytes - 1) / core::kSectorBytes;
    return static_cast<uint32_t>(end - first);
  }

  IoSession& session_;
  const char* name_;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_STORAGE_BACKEND_H_
