#include "client/page_cache.h"

#include <utility>

#include "sim/logging.h"

namespace reflex::client {

PageCache::PageCache(sim::Simulator& sim, client::StorageBackend& backend,
                     uint32_t capacity_pages, int max_outstanding,
                     int readahead_pages, RetryPolicy retry)
    : sim_(sim),
      backend_(backend),
      capacity_pages_(capacity_pages),
      readahead_pages_(readahead_pages),
      retry_(retry),
      io_slots_(sim, max_outstanding) {
  REFLEX_CHECK(capacity_pages >= 1);
  REFLEX_CHECK(readahead_pages >= 0);
  REFLEX_CHECK(retry.max_attempts >= 1);
}

sim::Future<const uint8_t*> PageCache::GetPage(uint64_t byte_offset) {
  const uint64_t page_id = byte_offset / kPageBytes;
  sim::Promise<const uint8_t*> promise(sim_);
  auto future = promise.GetFuture();

  // A hit on a readahead-produced page extends its stream so that
  // steady sequential consumption never stalls.
  auto stream_it = stream_pages_.find(page_id);
  if (stream_it != stream_pages_.end()) {
    stream_pages_.erase(stream_it);
    StartFetch(page_id + static_cast<uint64_t>(readahead_pages_));
  }

  auto it = pages_.find(page_id);
  if (it != pages_.end()) {
    ++stats_.hits;
    Touch(page_id, it->second);
    promise.Set(it->second.data.get());
    return future;
  }

  auto fl = in_flight_.find(page_id);
  if (fl != in_flight_.end()) {
    // A fetch is already outstanding; wait for it (counts as a hit:
    // one Flash access serves all waiters).
    ++stats_.hits;
    fl->second.push_back(std::move(promise));
    return future;
  }

  ++stats_.misses;
  auto& waiters = in_flight_[page_id];
  waiters.push_back(std::move(promise));
  Fetch(page_id);
  // Readahead only on sequential misses (the page following a recent
  // miss), so random access patterns do not flood the device.
  bool sequential = false;
  for (uint64_t recent : recent_misses_) {
    if (page_id == recent + 1) {
      sequential = true;
      break;
    }
  }
  recent_misses_[recent_cursor_] = page_id;
  recent_cursor_ = (recent_cursor_ + 1) % recent_misses_.size();
  if (sequential) {
    for (int i = 1; i <= readahead_pages_; ++i) {
      StartFetch(page_id + static_cast<uint64_t>(i));
    }
  }
  return future;
}

void PageCache::StartFetch(uint64_t page_id) {
  if (pages_.count(page_id) > 0 || in_flight_.count(page_id) > 0) return;
  ++stats_.readaheads;
  stream_pages_.insert(page_id);
  in_flight_.emplace(page_id,
                     std::vector<sim::Promise<const uint8_t*>>());
  Fetch(page_id);
}

sim::Task PageCache::Fetch(uint64_t page_id) {
  co_await io_slots_.Acquire();
  auto data = std::make_unique<uint8_t[]>(kPageBytes);
  client::IoResult r;
  int attempt = 0;
  for (;;) {
    r = co_await backend_.ReadBytes(page_id * kPageBytes, kPageBytes,
                                    data.get());
    ++attempt;
    // If the range was invalidated while this read was outstanding,
    // the buffer may hold pre-invalidation data: re-read. Does not
    // count against the failure-retry budget.
    if (invalidated_in_flight_.erase(page_id) > 0) {
      ++stats_.invalidated_refetches;
      continue;
    }
    if (r.ok() || attempt >= retry_.max_attempts) break;
    ++stats_.fetch_retries;
    co_await sim::Delay(sim_, retry_.backoff);
  }
  io_slots_.Release();
  if (!r.ok()) {
    // Persistent failure: surface it to the waiters instead of
    // panicking the whole simulation; callers decide whether a
    // missing page is fatal.
    ++stats_.fetch_failures;
    auto fl = in_flight_.find(page_id);
    REFLEX_CHECK(fl != in_flight_.end());
    for (auto& waiter : fl->second) waiter.Set(nullptr);
    in_flight_.erase(fl);
    stream_pages_.erase(page_id);
    co_return;
  }

  EvictIfNeeded();
  PageEntry entry;
  entry.data = std::move(data);
  lru_.push_front(page_id);
  entry.lru_it = lru_.begin();
  const uint8_t* raw = entry.data.get();
  pages_.emplace(page_id, std::move(entry));

  auto fl = in_flight_.find(page_id);
  REFLEX_CHECK(fl != in_flight_.end());
  for (auto& waiter : fl->second) waiter.Set(raw);
  in_flight_.erase(fl);
}

void PageCache::Invalidate(uint64_t byte_offset, uint64_t bytes) {
  const uint64_t first = byte_offset / kPageBytes;
  const uint64_t last = (byte_offset + bytes + kPageBytes - 1) / kPageBytes;
  for (uint64_t page = first; page < last; ++page) {
    auto it = pages_.find(page);
    if (it != pages_.end()) {
      lru_.erase(it->second.lru_it);
      pages_.erase(it);
    }
    // A page being fetched right now may complete with data read
    // before this invalidation; flag it so the fetch re-reads instead
    // of inserting stale bytes. Also forget any readahead-stream
    // claim on the range.
    stream_pages_.erase(page);
    if (in_flight_.count(page) > 0) invalidated_in_flight_.insert(page);
  }
}

void PageCache::Touch(uint64_t page_id, PageEntry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(page_id);
  entry.lru_it = lru_.begin();
}

void PageCache::EvictIfNeeded() {
  while (pages_.size() >= capacity_pages_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    pages_.erase(victim);
    stream_pages_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace reflex::client
