#include "client/reflex_client.h"

#include <utility>

#include "sim/logging.h"

namespace reflex::client {

ReflexClient::ReflexClient(sim::Simulator& sim, core::ReflexServer& server,
                           net::Machine* machine, Options options)
    : sim_(sim),
      server_(server),
      machine_(machine),
      options_(options),
      rng_(options.seed, "reflex_client"),
      sampler_(options.trace_sample_every) {
  REFLEX_CHECK(options_.num_connections >= 1);
  for (int i = 0; i < options_.num_connections; ++i) OpenConnection();
}

int ReflexClient::OpenConnection() {
  core::ServerConnection* conn = server_.Connect(
      machine_,
      [this](const core::ResponseMsg& resp) { OnResponse(resp); });
  connections_.push_back(conn);
  return static_cast<int>(connections_.size()) - 1;
}

void ReflexClient::BindAll(uint32_t tenant_handle) {
  for (core::ServerConnection* conn : connections_) {
    server_.BindConnection(conn, tenant_handle);
  }
}

sim::Future<core::ResponseMsg> ReflexClient::Register(
    const core::SloSpec& slo, core::TenantClass cls) {
  core::RequestMsg msg;
  msg.type = core::ReqType::kRegister;
  msg.slo = slo;
  msg.tenant_class = cls;
  msg.cookie = next_cookie_++;
  sim::Promise<core::ResponseMsg> promise(sim_);
  auto future = promise.GetFuture();
  pending_control_.emplace(msg.cookie, std::move(promise));
  core::ServerConnection* conn = connections_[0];
  sim_.ScheduleAfter(
      options_.stack.TxCost(core::kRegisterMsgBytes),
      [conn, msg] { conn->Deliver(msg); });
  return future;
}

sim::Future<core::ResponseMsg> ReflexClient::Unregister(uint32_t handle) {
  core::RequestMsg msg;
  msg.type = core::ReqType::kUnregister;
  msg.handle = handle;
  msg.cookie = next_cookie_++;
  sim::Promise<core::ResponseMsg> promise(sim_);
  auto future = promise.GetFuture();
  pending_control_.emplace(msg.cookie, std::move(promise));
  core::ServerConnection* conn = connections_[0];
  sim_.ScheduleAfter(
      options_.stack.TxCost(core::kRegisterMsgBytes),
      [conn, msg] { conn->Deliver(msg); });
  return future;
}

sim::Future<IoResult> ReflexClient::Read(uint32_t handle, uint64_t lba,
                                         uint32_t sectors, uint8_t* data,
                                         int conn_index) {
  return SubmitIo(core::ReqType::kRead, handle, lba, sectors, data,
                  conn_index);
}

sim::Future<IoResult> ReflexClient::Write(uint32_t handle, uint64_t lba,
                                          uint32_t sectors, uint8_t* data,
                                          int conn_index) {
  return SubmitIo(core::ReqType::kWrite, handle, lba, sectors, data,
                  conn_index);
}

sim::Future<IoResult> ReflexClient::Barrier(uint32_t handle,
                                            int conn_index) {
  return SubmitIo(core::ReqType::kBarrier, handle, 0, 0, nullptr,
                  conn_index);
}

sim::Future<IoResult> ReflexClient::SubmitIo(core::ReqType type,
                                             uint32_t handle, uint64_t lba,
                                             uint32_t sectors, uint8_t* data,
                                             int conn_index) {
  core::RequestMsg msg;
  msg.type = type;
  msg.handle = handle;
  msg.lba = lba;
  msg.sectors = sectors;
  msg.data = data;
  msg.cookie = next_cookie_++;

  std::shared_ptr<obs::TraceSpan> trace;
  if (type != core::ReqType::kBarrier && sampler_.Sample()) {
    trace = std::make_shared<obs::TraceSpan>();
    trace->is_read = type == core::ReqType::kRead;
    trace->tenant = handle;
    trace->Mark(obs::Stage::kClientIssue, sim_.Now());
    msg.trace = trace;
  }

  if (conn_index < 0) {
    conn_index = next_conn_;
    next_conn_ = (next_conn_ + 1) % static_cast<int>(connections_.size());
  }
  core::ServerConnection* conn =
      connections_[static_cast<size_t>(conn_index)];

  sim::Promise<IoResult> promise(sim_);
  auto future = promise.GetFuture();
  const uint32_t payload_bytes =
      type == core::ReqType::kRead ? sectors * core::kSectorBytes : 0;
  pending_.emplace(msg.cookie,
                   PendingOp{std::move(promise), sim_.Now(), payload_bytes,
                             std::move(trace)});

  // Client-side transmit processing, then ship over TCP.
  const uint32_t wire = msg.WireBytes(core::kSectorBytes);
  sim_.ScheduleAfter(options_.stack.TxCost(wire),
                     [conn, msg] { conn->Deliver(msg); });
  return future;
}

void ReflexClient::OnResponse(const core::ResponseMsg& resp) {
  if (resp.type == core::RespType::kRegistered ||
      resp.type == core::RespType::kUnregistered) {
    auto it = pending_control_.find(resp.cookie);
    REFLEX_CHECK(it != pending_control_.end());
    sim::Promise<core::ResponseMsg> promise = std::move(it->second);
    pending_control_.erase(it);
    const sim::TimeNs delay =
        options_.stack.SampleDeliveryDelay(rng_) +
        options_.stack.RxCost(core::kRegisterMsgBytes);
    sim_.ScheduleAfter(delay, [promise, resp]() mutable {
      promise.Set(resp);
    });
    return;
  }

  auto it = pending_.find(resp.cookie);
  REFLEX_CHECK(it != pending_.end());
  PendingOp op = std::move(it->second);
  pending_.erase(it);

  // Client-side receive processing: interrupt/scheduling delay (Linux
  // stacks) plus per-message stack cost and payload copy.
  const sim::TimeNs delay = options_.stack.SampleDeliveryDelay(rng_) +
                            options_.stack.RxCost(op.payload_bytes);
  sim::Promise<IoResult> promise = std::move(op.promise);
  const sim::TimeNs issue_time = op.issue_time;
  const core::ReqStatus status = resp.status;
  sim_.ScheduleAfter(delay, [promise, issue_time, status,
                             trace = std::move(op.trace),
                             this]() mutable {
    IoResult result;
    result.status = status;
    result.issue_time = issue_time;
    result.complete_time = sim_.Now();
    if (trace) {
      trace->Mark(obs::Stage::kClientDone, sim_.Now());
      server_.tracer().Finish(*trace);
    }
    promise.Set(result);
  });
}

}  // namespace reflex::client
