#include "client/reflex_client.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace reflex::client {

TenantSession::~TenantSession() {
  if (owns_handle_) client_.server().UnregisterTenant(handle_);
}

sim::Future<IoResult> TenantSession::Read(uint64_t lba, uint32_t sectors,
                                          uint8_t* data, int conn_index) {
  return client_.SubmitIo(core::ReqType::kRead, handle_, lba, sectors,
                          data, conn_index);
}

sim::Future<IoResult> TenantSession::Write(uint64_t lba, uint32_t sectors,
                                           uint8_t* data, int conn_index) {
  return client_.SubmitIo(core::ReqType::kWrite, handle_, lba, sectors,
                          data, conn_index);
}

sim::Future<IoResult> TenantSession::Barrier(int conn_index) {
  return client_.SubmitIo(core::ReqType::kBarrier, handle_, 0, 0, nullptr,
                          conn_index);
}

int TenantSession::num_lanes() const { return client_.num_connections(); }

uint64_t TenantSession::capacity_sectors() const {
  return client_.server().device().profile().capacity_sectors;
}

uint32_t TenantSession::sector_bytes() const {
  return client_.server().device().profile().sector_bytes;
}

uint32_t TenantSession::sectors_per_page() const {
  return client_.server().device().profile().SectorsPerPage();
}

ReflexClient::ReflexClient(sim::Simulator& sim, core::ReflexServer& server,
                           net::Machine* machine, Options options)
    : sim_(sim),
      server_(server),
      machine_(machine),
      options_(options),
      rng_(options.seed, "reflex_client"),
      sampler_(options.trace_sample_every) {
  REFLEX_CHECK(options_.num_connections >= 1);
  if (retries_enabled()) {
    obs::MetricsRegistry& registry = server_.metrics();
    timeouts_metric_ = registry.GetCounter("client_timeouts");
    retries_metric_ = registry.GetCounter("client_retries");
    failures_metric_ = registry.GetCounter("client_failures");
  }
}

ReflexClient::~ReflexClient() {
  // Unresolved ops still hold watchdog events whose callbacks capture
  // `this`; disarm them so a simulator outliving the client cannot
  // dispatch into a destroyed object.
  for (auto& [cookie, op] : pending_) sim_.Cancel(op.watchdog);
}

int ReflexClient::OpenConnection() {
  core::AcceptResult accepted = server_.Accept(
      machine_, core::kControlHandle,
      [this](const core::ResponseMsg& resp) { OnResponse(resp); });
  REFLEX_CHECK(accepted.conn != nullptr);
  connections_.push_back(accepted.conn);
  conn_timeouts_.push_back(0);
  return static_cast<int>(connections_.size()) - 1;
}

bool ReflexClient::EnsureSessionConnections(uint32_t handle,
                                            core::ReqStatus* status) {
  if (status != nullptr) *status = core::ReqStatus::kOk;
  if (!connections_.empty()) return true;
  for (int i = 0; i < options_.num_connections; ++i) {
    core::AcceptResult accepted = server_.Accept(
        machine_, handle,
        [this](const core::ResponseMsg& resp) { OnResponse(resp); });
    if (accepted.conn == nullptr) {
      if (status != nullptr) *status = accepted.status;
      return false;
    }
    connections_.push_back(accepted.conn);
    conn_timeouts_.push_back(0);
  }
  return true;
}

std::unique_ptr<TenantSession> ReflexClient::OpenSession(
    const core::SloSpec& slo, core::TenantClass cls,
    core::ReqStatus* status) {
  core::Tenant* tenant = server_.RegisterTenant(slo, cls, status);
  if (tenant == nullptr) return nullptr;
  if (!EnsureSessionConnections(tenant->handle(), status)) {
    server_.UnregisterTenant(tenant->handle());
    return nullptr;
  }
  return std::unique_ptr<TenantSession>(
      new TenantSession(*this, tenant->handle(), /*owns_handle=*/true));
}

std::unique_ptr<TenantSession> ReflexClient::AttachSession(
    uint32_t handle, core::ReqStatus* status) {
  if (!EnsureSessionConnections(handle, status)) return nullptr;
  return std::unique_ptr<TenantSession>(
      new TenantSession(*this, handle, /*owns_handle=*/false));
}

sim::Future<core::ResponseMsg> ReflexClient::Register(
    const core::SloSpec& slo, core::TenantClass cls) {
  if (connections_.empty()) OpenConnection();
  core::RequestMsg msg;
  msg.type = core::ReqType::kRegister;
  msg.slo = slo;
  msg.tenant_class = cls;
  msg.cookie = next_cookie_++;
  sim::Promise<core::ResponseMsg> promise(sim_);
  auto future = promise.GetFuture();
  pending_control_.emplace(msg.cookie, std::move(promise));
  core::ServerConnection* conn = connections_[0];
  sim_.ScheduleAfter(
      options_.stack.TxCost(core::kRegisterMsgBytes),
      [conn, msg] { conn->Deliver(msg); });
  return future;
}

sim::Future<core::ResponseMsg> ReflexClient::Unregister(uint32_t handle) {
  if (connections_.empty()) OpenConnection();
  core::RequestMsg msg;
  msg.type = core::ReqType::kUnregister;
  msg.handle = handle;
  msg.cookie = next_cookie_++;
  sim::Promise<core::ResponseMsg> promise(sim_);
  auto future = promise.GetFuture();
  pending_control_.emplace(msg.cookie, std::move(promise));
  core::ServerConnection* conn = connections_[0];
  sim_.ScheduleAfter(
      options_.stack.TxCost(core::kRegisterMsgBytes),
      [conn, msg] { conn->Deliver(msg); });
  return future;
}

sim::Future<IoResult> ReflexClient::SubmitIo(core::ReqType type,
                                             uint32_t handle, uint64_t lba,
                                             uint32_t sectors, uint8_t* data,
                                             int conn_index) {
  core::RequestMsg msg;
  msg.type = type;
  msg.handle = handle;
  msg.lba = lba;
  msg.sectors = sectors;
  msg.data = data;
  msg.cookie = next_cookie_++;
  msg.map_epoch = map_epoch_;

  std::shared_ptr<obs::TraceSpan> trace;
  if (type != core::ReqType::kBarrier && sampler_.Sample()) {
    trace = std::make_shared<obs::TraceSpan>();
    trace->is_read = type == core::ReqType::kRead;
    trace->tenant = handle;
    trace->Mark(obs::Stage::kClientIssue, sim_.Now());
    msg.trace = trace;
  }

  if (conn_index < 0) {
    conn_index = next_conn_;
    next_conn_ = (next_conn_ + 1) % static_cast<int>(connections_.size());
  }
  core::ServerConnection* conn =
      connections_[static_cast<size_t>(conn_index)];

  sim::Promise<IoResult> promise(sim_);
  auto future = promise.GetFuture();
  const uint32_t payload_bytes =
      type == core::ReqType::kRead ? sectors * core::kSectorBytes : 0;
  PendingOp op{std::move(promise), sim_.Now(), payload_bytes,
               std::move(trace)};
  op.type = type;
  op.handle = handle;
  op.lba = lba;
  op.sectors = sectors;
  op.data = data;
  op.conn_index = conn_index;
  pending_.emplace(msg.cookie, std::move(op));

  // Client-side transmit processing, then ship over TCP.
  const uint32_t wire = msg.WireBytes(core::kSectorBytes);
  const sim::TimeNs tx_cost = options_.stack.TxCost(wire);
  sim_.ScheduleAfter(tx_cost, [conn, msg] { conn->Deliver(msg); });
  if (retries_enabled()) ArmTimeout(msg.cookie, /*attempt=*/1, tx_cost);
  return future;
}

sim::TimeNs ReflexClient::BackoffDelay(int attempt) const {
  // attempt is the retransmission ordinal (1 = first retry).
  sim::TimeNs delay = options_.retry.backoff_base;
  for (int i = 1; i < attempt && delay < options_.retry.backoff_cap; ++i) {
    delay *= 2;
  }
  return std::min(delay, options_.retry.backoff_cap);
}

void ReflexClient::ArmTimeout(uint64_t cookie, int attempt,
                              sim::TimeNs extra_delay) {
  auto it = pending_.find(cookie);
  REFLEX_CHECK(it != pending_.end());
  // Disarm the previous attempt's watchdog (a no-op when it already
  // fired, i.e. on the timeout-driven retransmit path) so each op keeps
  // at most one live timeout event in the simulator.
  sim_.Cancel(it->second.watchdog);
  it->second.watchdog = sim_.ScheduleAfter(
      options_.retry.request_timeout + extra_delay,
      [this, cookie, attempt] { OnTimeout(cookie, attempt); });
}

void ReflexClient::OnTimeout(uint64_t cookie, int attempt) {
  auto it = pending_.find(cookie);
  // Completed, or already retransmitted (a newer watchdog is armed).
  if (it == pending_.end() || it->second.attempts != attempt) return;
  PendingOp& op = it->second;
  ++fault_stats_.timeouts;
  if (timeouts_metric_ != nullptr) timeouts_metric_->Increment();

  const int ci = op.conn_index;
  if (++conn_timeouts_[ci] >= options_.retry.reconnect_after_timeouts) {
    ReconnectConnection(ci);
  }

  const bool idempotent = op.type == core::ReqType::kRead;
  if (idempotent && op.attempts <= options_.retry.max_retries) {
    Retransmit(cookie, BackoffDelay(op.attempts));
    return;
  }
  // Writes and barriers are not retransmitted: the request may have
  // executed and only the response been lost. Surface the uncertainty
  // as kUnknownOutcome rather than a definite failure (or fabricated
  // success); reads that exhausted their retries definitely produced
  // no application-visible effect and fail with kTimedOut.
  PendingOp failed = std::move(it->second);
  pending_.erase(it);
  FailPending(std::move(failed), idempotent
                                     ? core::ReqStatus::kTimedOut
                                     : core::ReqStatus::kUnknownOutcome);
}

void ReflexClient::Retransmit(uint64_t cookie, sim::TimeNs delay) {
  auto it = pending_.find(cookie);
  REFLEX_CHECK(it != pending_.end());
  PendingOp& op = it->second;
  ++op.attempts;
  ++fault_stats_.retries;
  if (retries_metric_ != nullptr) retries_metric_->Increment();

  core::RequestMsg msg;
  msg.type = op.type;
  msg.handle = op.handle;
  msg.lba = op.lba;
  msg.sectors = op.sectors;
  msg.data = op.data;
  msg.cookie = cookie;
  // Stamp the *current* epoch: if the map refreshed between attempts,
  // the retransmission routes (and gates) as fresh traffic.
  msg.map_epoch = map_epoch_;
  // The original trace span stays with the pending op; the wire copy
  // is untraced so server stages are not double-marked.

  core::ServerConnection* conn =
      connections_[static_cast<size_t>(op.conn_index)];
  const uint32_t wire = msg.WireBytes(core::kSectorBytes);
  const sim::TimeNs tx_cost = options_.stack.TxCost(wire);
  sim_.ScheduleAfter(delay + tx_cost, [conn, msg] { conn->Deliver(msg); });
  ArmTimeout(cookie, op.attempts, delay + tx_cost);
}

void ReflexClient::FailPending(PendingOp&& op, core::ReqStatus status) {
  sim_.Cancel(op.watchdog);
  ++fault_stats_.failures;
  if (failures_metric_ != nullptr) failures_metric_->Increment();
  IoResult result;
  result.status = status;
  result.issue_time = op.issue_time;
  result.complete_time = sim_.Now();
  // The trace never completed; drop it rather than reporting a
  // partial span as a finished request.
  op.promise.Set(result);
}

void ReflexClient::ReconnectConnection(int conn_index) {
  conn_timeouts_[conn_index] = 0;
  ++fault_stats_.reconnects;
  // Model of a reconnect: the TCP session is re-established in place.
  // Requests lost on the old incarnation are covered by their own
  // timeout watchdogs.
  connections_[static_cast<size_t>(conn_index)]->tcp()->Reopen();
}

void ReflexClient::OnResponse(const core::ResponseMsg& resp) {
  const bool is_control = resp.type == core::RespType::kRegistered ||
                          resp.type == core::RespType::kUnregistered;
  // Every data response carries the serving thread's queue depth;
  // surface it before any resolution/dedup logic so even stale
  // duplicates refresh the load estimate.
  if (!is_control && hint_listener_) hint_listener_(resp.queue_depth_hint);
  if (is_control) {
    auto it = pending_control_.find(resp.cookie);
    REFLEX_CHECK(it != pending_control_.end());
    sim::Promise<core::ResponseMsg> promise = std::move(it->second);
    pending_control_.erase(it);
    const sim::TimeNs delay =
        options_.stack.SampleDeliveryDelay(rng_) +
        options_.stack.RxCost(core::kRegisterMsgBytes);
    sim_.ScheduleAfter(delay, [promise, resp]() mutable {
      promise.Set(resp);
    });
    return;
  }

  auto it = pending_.find(resp.cookie);
  if (it == pending_.end()) {
    // With retries enabled a late duplicate can arrive after the op
    // was resolved by an earlier response or a timeout; drop it.
    // Without retries an unknown cookie is a protocol violation.
    REFLEX_CHECK(retries_enabled());
    ++fault_stats_.stale_responses;
    return;
  }

  if (retries_enabled()) {
    conn_timeouts_[it->second.conn_index] = 0;
    // Transient server-side refusals: retry idempotent reads before
    // surfacing the error.
    if (options_.retry.retry_on_error &&
        it->second.type == core::ReqType::kRead &&
        (resp.status == core::ReqStatus::kDeviceError ||
         resp.status == core::ReqStatus::kOutOfResources) &&
        it->second.attempts <= options_.retry.max_retries) {
      Retransmit(resp.cookie, BackoffDelay(it->second.attempts));
      return;
    }
  }

  PendingOp op = std::move(it->second);
  pending_.erase(it);
  // The op resolved: release its timeout watchdog instead of leaving a
  // dead event queued until it would have fired.
  sim_.Cancel(op.watchdog);

  // Client-side receive processing: interrupt/scheduling delay (Linux
  // stacks) plus per-message stack cost and payload copy.
  const sim::TimeNs delay = options_.stack.SampleDeliveryDelay(rng_) +
                            options_.stack.RxCost(op.payload_bytes);
  sim::Promise<IoResult> promise = std::move(op.promise);
  const sim::TimeNs issue_time = op.issue_time;
  const core::ReqStatus status = resp.status;
  sim_.ScheduleAfter(delay, [promise, issue_time, status,
                             trace = std::move(op.trace),
                             this]() mutable {
    IoResult result;
    result.status = status;
    result.issue_time = issue_time;
    result.complete_time = sim_.Now();
    if (trace) {
      trace->Mark(obs::Stage::kClientDone, sim_.Now());
      server_.tracer().Finish(*trace);
    }
    promise.Set(result);
  });
}

}  // namespace reflex::client
