#ifndef REFLEX_CLIENT_PAGE_CACHE_H_
#define REFLEX_CLIENT_PAGE_CACHE_H_

#include <cstdint>
#include <array>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "client/storage_backend.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::client {

/**
 * A read-through LRU page cache over a storage backend, in the spirit
 * of SAFS (the user-space filesystem FlashX uses): fixed 4KB pages,
 * bounded outstanding I/O, and request deduplication so that
 * concurrent readers of one page trigger a single Flash access.
 */
class PageCache {
 public:
  static constexpr uint32_t kPageBytes = 4096;

  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    int64_t readaheads = 0;
    /** Backend read retries before a fetch succeeded or gave up. */
    int64_t fetch_retries = 0;
    /** Fetches that exhausted retries (waiters received nullptr). */
    int64_t fetch_failures = 0;
    /** Fetches re-issued because the page was invalidated mid-fetch. */
    int64_t invalidated_refetches = 0;
  };

  /** Fetch failure policy: attempts per page before giving up. */
  struct RetryPolicy {
    int max_attempts = 3;
    sim::TimeNs backoff = sim::Micros(200);
  };

  /**
   * @param readahead_pages on a miss of page p, also fetch pages
   *        p+1 .. p+readahead_pages in the background (SAFS-style
   *        sequential readahead; 0 disables).
   */
  PageCache(sim::Simulator& sim, client::StorageBackend& backend,
            uint32_t capacity_pages, int max_outstanding,
            int readahead_pages, RetryPolicy retry);

  PageCache(sim::Simulator& sim, client::StorageBackend& backend,
            uint32_t capacity_pages, int max_outstanding = 64,
            int readahead_pages = 0)
      : PageCache(sim, backend, capacity_pages, max_outstanding,
                  readahead_pages, RetryPolicy()) {}

  /**
   * Returns a pointer to the page containing `byte_offset` (rounded
   * down to a page boundary). The pointer stays valid until the page
   * is evicted -- callers must copy out what they need before the next
   * co_await on the cache. Resolves to nullptr if the backend read
   * failed persistently (after RetryPolicy::max_attempts tries).
   */
  sim::Future<const uint8_t*> GetPage(uint64_t byte_offset);

  /**
   * Drops any cached pages overlapping [byte_offset, byte_offset +
   * bytes). Callers must invalidate before re-using a storage range
   * for new data (e.g. the LSM store recycling a compacted extent).
   */
  void Invalidate(uint64_t byte_offset, uint64_t bytes);

  const Stats& stats() const { return stats_; }
  uint32_t capacity_pages() const { return capacity_pages_; }

 private:
  struct PageEntry {
    std::unique_ptr<uint8_t[]> data;
    std::list<uint64_t>::iterator lru_it;
  };

  sim::Task Fetch(uint64_t page_id);
  void StartFetch(uint64_t page_id);
  void Touch(uint64_t page_id, PageEntry& entry);
  void EvictIfNeeded();

  sim::Simulator& sim_;
  client::StorageBackend& backend_;
  uint32_t capacity_pages_;
  int readahead_pages_;
  RetryPolicy retry_;
  sim::Semaphore io_slots_;
  /** Recent miss pages, for sequential-pattern detection. */
  std::array<uint64_t, 8> recent_misses_{};
  size_t recent_cursor_ = 0;
  /** Pages fetched by readahead; a hit on one extends its stream. */
  std::set<uint64_t> stream_pages_;

  std::map<uint64_t, PageEntry> pages_;
  std::list<uint64_t> lru_;  // front = most recent
  /** Pages currently being fetched: waiters queue behind the fetch. */
  std::map<uint64_t, std::vector<sim::Promise<const uint8_t*>>> in_flight_;
  /**
   * In-flight pages invalidated after their fetch was issued: the
   * outstanding read may return pre-invalidation data, so the fetch
   * re-reads the backend before inserting into the cache.
   */
  std::set<uint64_t> invalidated_in_flight_;
  Stats stats_;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_PAGE_CACHE_H_
