#ifndef REFLEX_CLIENT_LOAD_GENERATOR_H_
#define REFLEX_CLIENT_LOAD_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "client/io_result.h"
#include "client/io_session.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * Workload description for a LoadGenerator. Exactly one of
 * `offered_iops` (open-loop Poisson arrivals, mutilate-style) or
 * `queue_depth` (closed loop) must be set.
 */
struct LoadGenSpec {
  double read_fraction = 1.0;
  uint32_t request_bytes = 4096;

  /** Open-loop offered load (requests/second); 0 disables. */
  double offered_iops = 0.0;

  /**
   * Open-loop arrival process: true = Poisson (exponential gaps),
   * false = uniformly paced (mutilate agents pacing a target rate).
   */
  bool poisson_arrivals = true;

  /** Closed-loop concurrency; 0 disables. */
  int queue_depth = 0;

  /**
   * If > 0, closed-loop mode issues exactly this many operations and
   * finishes (latency-probe mode, e.g. Table 2's QD-1 measurements);
   * the first `warmup_ops` are not recorded.
   */
  int64_t stop_after_ops = 0;
  int64_t warmup_ops = 0;

  /** LBA span; 0 means the server device's full capacity. */
  uint64_t lba_offset = 0;
  uint64_t lba_span_sectors = 0;

  uint64_t seed = 9;
};

/**
 * Generates read/write load against any IoSession (a single ReFlex
 * server or a sharded cluster), mimicking the paper's extended
 * mutilate load generator: many lanes generate throughput while
 * latency is recorded per request; statistics are confined to the
 * measurement window [warm_end, end).
 */
class LoadGenerator {
 public:
  LoadGenerator(sim::Simulator& sim, IoSession& session, LoadGenSpec spec);

  /**
   * Starts generation. In windowed mode (offered_iops or queue_depth
   * with no stop_after_ops), traffic flows until `end` and statistics
   * cover [warm_end, end). In probe mode (stop_after_ops > 0) the
   * window arguments are ignored.
   */
  void Run(sim::TimeNs warm_end, sim::TimeNs end);

  /** Resolves once generation stopped and all requests completed. */
  sim::VoidFuture Done() const { return done_promise_->GetFuture(); }

  const sim::Histogram& read_latency() const { return read_latency_; }
  const sim::Histogram& write_latency() const { return write_latency_; }
  int64_t ops_in_window() const { return ops_in_window_; }
  int64_t errors() const { return errors_; }

  /** Achieved throughput over the measurement window. */
  double AchievedIops() const;

 private:
  sim::Task ClosedLoopWorker(int conn_index);
  sim::Task ProbeWorker();
  void ScheduleNextArrival();
  sim::Task IssueOpenLoopOp(int conn_index);
  std::pair<uint64_t, bool> PickOp();
  void Record(const IoResult& result, bool is_read);
  void MaybeFinish();

  sim::Simulator& sim_;
  IoSession& session_;
  LoadGenSpec spec_;
  sim::Rng rng_;
  uint64_t max_page_ = 0;
  uint32_t sectors_ = 8;

  sim::TimeNs warm_end_ = 0;
  sim::TimeNs end_ = 0;
  double mean_interarrival_ = 0.0;

  int64_t outstanding_ = 0;
  int64_t ops_in_window_ = 0;
  int64_t probe_ops_left_ = 0;
  int64_t probe_recorded_ = 0;
  int64_t errors_ = 0;
  bool generation_done_ = false;
  bool finished_ = false;

  sim::Histogram read_latency_;
  sim::Histogram write_latency_;
  std::unique_ptr<sim::VoidPromise> done_promise_;
  int next_conn_ = 0;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_LOAD_GENERATOR_H_
