#ifndef REFLEX_CLIENT_REFLEX_CLIENT_H_
#define REFLEX_CLIENT_REFLEX_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "client/io_result.h"
#include "core/reflex_server.h"
#include "net/network.h"
#include "net/stack_costs.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * The ReFlex user-level client library (paper section 4.2): opens TCP
 * connections to a ReFlex server and issues read/write requests for
 * logical blocks, bypassing the client's filesystem and block layers.
 *
 * The client's network stack is configurable: StackCosts::IxDataplane()
 * models the paper's "IX client" rows and StackCosts::LinuxEpoll() the
 * "Linux client" rows of Table 2.
 */
class ReflexClient {
 public:
  struct Options {
    net::StackCosts stack = net::StackCosts::IxDataplane();
    /** Number of TCP connections to open up front. */
    int num_connections = 1;
    uint64_t seed = 1;
    /**
     * Trace one in N read/write requests end-to-end (0 = off, 1 =
     * every request). Finished spans land in the server's
     * TraceCollector; see DESIGN.md "Observability".
     */
    uint32_t trace_sample_every = 0;
  };

  ReflexClient(sim::Simulator& sim, core::ReflexServer& server,
               net::Machine* machine, Options options);

  /** Registers a tenant in-band; resolves with the assigned handle. */
  sim::Future<core::ResponseMsg> Register(const core::SloSpec& slo,
                                          core::TenantClass cls);

  /** Unregisters a tenant in-band. */
  sim::Future<core::ResponseMsg> Unregister(uint32_t handle);

  /**
   * Issues a read of `sectors` 512B sectors at `lba` on behalf of
   * `handle`. `data` (optional) receives the payload. The returned
   * future resolves after client-side receive processing, so its
   * latency is the full application-observed round trip.
   */
  sim::Future<IoResult> Read(uint32_t handle, uint64_t lba,
                             uint32_t sectors, uint8_t* data = nullptr,
                             int conn_index = -1);

  /** Issues a write; see Read(). */
  sim::Future<IoResult> Write(uint32_t handle, uint64_t lba,
                              uint32_t sectors, uint8_t* data = nullptr,
                              int conn_index = -1);

  /**
   * Issues an ordering barrier (paper section 4.1 extension): resolves
   * once every I/O of `handle` issued before it has completed on the
   * device; I/Os issued after it are not submitted until then.
   */
  sim::Future<IoResult> Barrier(uint32_t handle, int conn_index = -1);

  /** Opens one more connection; returns its index. */
  int OpenConnection();

  int num_connections() const {
    return static_cast<int>(connections_.size());
  }
  net::Machine* machine() { return machine_; }
  core::ReflexServer& server() { return server_; }
  const Options& options() const { return options_; }

  /** Binds all connections to a tenant's dataplane thread. */
  void BindAll(uint32_t tenant_handle);

 private:
  struct PendingOp {
    sim::Promise<IoResult> promise;
    sim::TimeNs issue_time;
    uint32_t payload_bytes;
    /** Sampled-request trace; null on the untraced path. */
    std::shared_ptr<obs::TraceSpan> trace;
  };

  sim::Future<IoResult> SubmitIo(core::ReqType type, uint32_t handle,
                                 uint64_t lba, uint32_t sectors,
                                 uint8_t* data, int conn_index);
  void OnResponse(const core::ResponseMsg& resp);

  sim::Simulator& sim_;
  core::ReflexServer& server_;
  net::Machine* machine_;
  Options options_;
  sim::Rng rng_;

  std::vector<core::ServerConnection*> connections_;
  int next_conn_ = 0;
  obs::TraceSampler sampler_;

  uint64_t next_cookie_ = 1;
  std::unordered_map<uint64_t, PendingOp> pending_;
  std::unordered_map<uint64_t, sim::Promise<core::ResponseMsg>>
      pending_control_;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_REFLEX_CLIENT_H_
