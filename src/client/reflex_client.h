#ifndef REFLEX_CLIENT_REFLEX_CLIENT_H_
#define REFLEX_CLIENT_REFLEX_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "client/io_result.h"
#include "client/io_session.h"
#include "core/reflex_server.h"
#include "net/network.h"
#include "net/stack_costs.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::client {

class ReflexClient;

/**
 * A tenant's I/O endpoint on one ReflexClient: all reads, writes and
 * barriers are issued through a session, which carries the tenant
 * handle so callers never thread raw handles through their code.
 *
 * Sessions are RAII views over the client's connection pool. The
 * first session opened on a client with an empty pool opens the
 * configured number of connections, accepted by the server directly
 * onto the tenant's dataplane thread (ReflexServer::Accept); later
 * sessions on the same client share that pool, which is how one
 * socket can serve many tenants (Figure 6b). A session returned by
 * ReflexClient::OpenSession() owns its tenant registration and
 * unregisters it on destruction; AttachSession() leaves lifetime
 * with whoever registered the tenant.
 */
class TenantSession : public IoSession {
 public:
  ~TenantSession() override;
  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;

  /**
   * Issues a read of `sectors` 512B sectors at `lba`. `data`
   * (optional) receives the payload. The returned future resolves
   * after client-side receive processing, so its latency is the full
   * application-observed round trip. `conn_index` pins the request to
   * one connection of the pool; -1 round-robins.
   */
  sim::Future<IoResult> Read(uint64_t lba, uint32_t sectors,
                             uint8_t* data = nullptr,
                             int conn_index = -1) override;

  /** Issues a write; see Read(). */
  sim::Future<IoResult> Write(uint64_t lba, uint32_t sectors,
                              uint8_t* data = nullptr,
                              int conn_index = -1) override;

  /**
   * Issues an ordering barrier (paper section 4.1 extension): resolves
   * once every I/O of this tenant issued before it has completed on
   * the device; I/Os issued after it are not submitted until then.
   */
  sim::Future<IoResult> Barrier(int conn_index = -1);

  uint32_t handle() const { return handle_; }
  ReflexClient& client() { return client_; }

  // IoSession: one lane per TCP connection of the shared pool; the
  // device profile supplies geometry.
  uint32_t tenant_handle() const override { return handle_; }
  int num_lanes() const override;
  uint64_t capacity_sectors() const override;
  uint32_t sector_bytes() const override;
  uint32_t sectors_per_page() const override;

 private:
  friend class ReflexClient;
  TenantSession(ReflexClient& client, uint32_t handle, bool owns_handle)
      : client_(client), handle_(handle), owns_handle_(owns_handle) {}

  ReflexClient& client_;
  uint32_t handle_;
  /** True for OpenSession() sessions: destruction unregisters. */
  bool owns_handle_;
};

/**
 * The ReFlex user-level client library (paper section 4.2): opens TCP
 * connections to a ReFlex server and issues read/write requests for
 * logical blocks, bypassing the client's filesystem and block layers.
 *
 * The client's network stack is configurable: StackCosts::IxDataplane()
 * models the paper's "IX client" rows and StackCosts::LinuxEpoll() the
 * "Linux client" rows of Table 2.
 *
 * I/O goes through TenantSession objects (OpenSession/AttachSession);
 * the client owns the connection pool and the retry machinery shared
 * by every session on it.
 */
class ReflexClient {
 public:
  /**
   * Failure-handling policy. Disabled by default (request_timeout ==
   * 0): without timeouts the client behaves exactly as before and
   * panics on unexpected responses, which is the right mode for the
   * fault-free benches. With a timeout set, reads (idempotent) are
   * retransmitted with capped exponential backoff; writes and
   * barriers fail back to the caller with kUnknownOutcome, since the
   * library cannot know whether they executed and must neither
   * retransmit (risking a double-apply) nor report definite failure.
   */
  struct RetryPolicy {
    /** 0 disables timeouts and all retry machinery. */
    sim::TimeNs request_timeout = 0;
    /** Retransmissions per read on timeout or transient error. */
    int max_retries = 0;
    sim::TimeNs backoff_base = sim::Micros(100);
    sim::TimeNs backoff_cap = sim::Millis(5);
    /** Also retry reads on kDeviceError / kOutOfResources replies. */
    bool retry_on_error = true;
    /** Consecutive timeouts on one connection before reconnecting. */
    int reconnect_after_timeouts = 3;
  };

  /** Client-side fault handling outcomes (all zero with retries off). */
  struct FaultStats {
    int64_t timeouts = 0;
    int64_t retries = 0;
    int64_t failures = 0;
    int64_t stale_responses = 0;
    int64_t reconnects = 0;
  };

  struct Options {
    net::StackCosts stack = net::StackCosts::IxDataplane();
    /**
     * Number of TCP connections the first session opens (the pool is
     * shared by every session on this client).
     */
    int num_connections = 1;
    uint64_t seed = 1;
    /**
     * Trace one in N read/write requests end-to-end (0 = off, 1 =
     * every request). Finished spans land in the server's
     * TraceCollector; see DESIGN.md "Observability".
     */
    uint32_t trace_sample_every = 0;
    RetryPolicy retry;
  };

  ReflexClient(sim::Simulator& sim, core::ReflexServer& server,
               net::Machine* machine, Options options);
  ~ReflexClient();
  ReflexClient(const ReflexClient&) = delete;
  ReflexClient& operator=(const ReflexClient&) = delete;

  /**
   * Registers a tenant with the server and returns a session that
   * owns the registration (destroying it unregisters the tenant).
   * Returns null if admission control rejects the SLO or the server
   * refuses the connection; `status` (optional) receives the reason.
   */
  std::unique_ptr<TenantSession> OpenSession(
      const core::SloSpec& slo, core::TenantClass cls,
      core::ReqStatus* status = nullptr);

  /**
   * Opens a session over a tenant registered elsewhere (out-of-band
   * RegisterTenant, or a handle obtained from in-band Register). The
   * session does not own the registration. Returns null if the server
   * refuses the connection (unknown tenant, ACL denial).
   */
  std::unique_ptr<TenantSession> AttachSession(
      uint32_t handle, core::ReqStatus* status = nullptr);

  /** Registers a tenant in-band; resolves with the assigned handle. */
  sim::Future<core::ResponseMsg> Register(const core::SloSpec& slo,
                                          core::TenantClass cls);

  /** Unregisters a tenant in-band. */
  sim::Future<core::ResponseMsg> Unregister(uint32_t handle);

  /**
   * Opens one more control (tenant-unbound) connection; returns its
   * index. Control connections round-robin over the server's dataplane
   * threads until in-band registration binds them; a pool of them can
   * be shared by many AttachSession() tenants (Figure 6b).
   */
  int OpenConnection();

  int num_connections() const {
    return static_cast<int>(connections_.size());
  }
  net::Machine* machine() { return machine_; }
  core::ReflexServer& server() { return server_; }
  const Options& options() const { return options_; }

  const FaultStats& fault_stats() const { return fault_stats_; }

  /**
   * Observer for the queue-depth hint the server piggybacks on every
   * data response (core::ResponseMsg::queue_depth_hint). Invoked
   * synchronously from response receive -- including for stale
   * duplicates, whose hints are just as fresh as any other. Used by
   * ClusterClient to maintain per-shard load estimates for
   * power-of-d-choices read steering.
   */
  void set_hint_listener(std::function<void(uint32_t)> fn) {
    hint_listener_ = std::move(fn);
  }

  /**
   * Shard-map epoch stamped on every outgoing I/O (and retransmission)
   * from now on. Set by ClusterClient whenever its local map copy
   * refreshes; the default bypass sentinel leaves single-server
   * clients out of migration epoch checks entirely.
   */
  void set_map_epoch(uint64_t epoch) { map_epoch_ = epoch; }
  uint64_t map_epoch() const { return map_epoch_; }

 private:
  friend class TenantSession;
  struct PendingOp {
    sim::Promise<IoResult> promise;
    sim::TimeNs issue_time;
    uint32_t payload_bytes;
    /** Sampled-request trace; null on the untraced path. */
    std::shared_ptr<obs::TraceSpan> trace;
    // Retransmission state (populated only with retries enabled).
    core::ReqType type = core::ReqType::kRead;
    uint32_t handle = 0;
    uint64_t lba = 0;
    uint32_t sectors = 0;
    uint8_t* data = nullptr;
    int conn_index = 0;
    int attempts = 1;
    /**
     * Live timeout watchdog for the newest attempt. Cancelled the
     * moment the op resolves, so completed requests no longer leave a
     * dead timeout event in the simulator until it would have fired.
     */
    sim::TimerHandle watchdog = {};
  };

  bool retries_enabled() const {
    return options_.retry.request_timeout > 0;
  }
  /**
   * Opens the session connection pool if it is empty: num_connections
   * connections accepted directly onto `handle`'s dataplane thread.
   */
  bool EnsureSessionConnections(uint32_t handle, core::ReqStatus* status);
  sim::Future<IoResult> SubmitIo(core::ReqType type, uint32_t handle,
                                 uint64_t lba, uint32_t sectors,
                                 uint8_t* data, int conn_index);
  void OnResponse(const core::ResponseMsg& resp);
  /** Capped exponential backoff before retransmission `attempt`. */
  sim::TimeNs BackoffDelay(int attempt) const;
  /** Schedules the timeout watchdog for (cookie, attempt). */
  void ArmTimeout(uint64_t cookie, int attempt, sim::TimeNs extra_delay);
  void OnTimeout(uint64_t cookie, int attempt);
  /** Resends the request for `cookie` after `delay`. */
  void Retransmit(uint64_t cookie, sim::TimeNs delay);
  /** Resolves a pending op with a failure status. */
  void FailPending(PendingOp&& op, core::ReqStatus status);
  /** Re-establishes a reset/suspect connection in place. */
  void ReconnectConnection(int conn_index);

  sim::Simulator& sim_;
  core::ReflexServer& server_;
  net::Machine* machine_;
  Options options_;
  sim::Rng rng_;

  std::vector<core::ServerConnection*> connections_;
  /** Consecutive timeouts per connection (reconnect trigger). */
  std::vector<int> conn_timeouts_;
  int next_conn_ = 0;
  obs::TraceSampler sampler_;

  uint64_t next_cookie_ = 1;
  std::map<uint64_t, PendingOp> pending_;
  std::map<uint64_t, sim::Promise<core::ResponseMsg>>
      pending_control_;

  FaultStats fault_stats_;
  std::function<void(uint32_t)> hint_listener_;
  uint64_t map_epoch_ = core::kMapEpochBypass;
  obs::Counter* timeouts_metric_ = nullptr;
  obs::Counter* retries_metric_ = nullptr;
  obs::Counter* failures_metric_ = nullptr;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_REFLEX_CLIENT_H_
