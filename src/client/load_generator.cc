#include "client/load_generator.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace reflex::client {

LoadGenerator::LoadGenerator(sim::Simulator& sim, IoSession& session,
                             LoadGenSpec spec)
    : sim_(sim),
      session_(session),
      spec_(spec),
      rng_(spec.seed, "load_generator"),
      done_promise_(std::make_unique<sim::VoidPromise>(sim)) {
  sectors_ = std::max<uint32_t>(
      1, spec_.request_bytes / session_.sector_bytes());
  uint64_t span = spec_.lba_span_sectors;
  if (span == 0) span = session_.capacity_sectors() - spec_.lba_offset;
  const uint32_t spp = session_.sectors_per_page();
  REFLEX_CHECK(span >= sectors_);
  max_page_ = (span - sectors_) / spp;
  const bool open_loop = spec_.offered_iops > 0.0;
  const bool closed_loop = spec_.queue_depth > 0;
  REFLEX_CHECK(open_loop != closed_loop);
}

double LoadGenerator::AchievedIops() const {
  if (end_ <= warm_end_) return 0.0;
  return static_cast<double>(ops_in_window_) /
         sim::ToSeconds(end_ - warm_end_);
}

void LoadGenerator::Run(sim::TimeNs warm_end, sim::TimeNs end) {
  warm_end_ = warm_end;
  end_ = end;
  if (spec_.stop_after_ops > 0) {
    REFLEX_CHECK(spec_.queue_depth > 0);
    probe_ops_left_ = spec_.stop_after_ops;
    for (int i = 0; i < spec_.queue_depth; ++i) {
      ++outstanding_;
      ProbeWorker();
    }
    return;
  }
  if (spec_.queue_depth > 0) {
    for (int i = 0; i < spec_.queue_depth; ++i) {
      ++outstanding_;
      ClosedLoopWorker(i % session_.num_lanes());
    }
    return;
  }
  mean_interarrival_ = 1e9 / spec_.offered_iops;
  ScheduleNextArrival();
}

std::pair<uint64_t, bool> LoadGenerator::PickOp() {
  const bool is_read = rng_.NextBernoulli(spec_.read_fraction);
  const uint64_t page = rng_.NextBounded(max_page_ + 1);
  const uint64_t lba =
      spec_.lba_offset + page * session_.sectors_per_page();
  return {lba, is_read};
}

void LoadGenerator::Record(const IoResult& result, bool is_read) {
  if (!result.ok()) {
    ++errors_;
    return;
  }
  if (spec_.stop_after_ops > 0) {
    ++probe_recorded_;
    if (probe_recorded_ <= spec_.warmup_ops) return;
    ++ops_in_window_;
    (is_read ? read_latency_ : write_latency_).Record(result.Latency());
    return;
  }
  if (result.complete_time >= warm_end_ && result.complete_time < end_) {
    ++ops_in_window_;
    if (result.issue_time >= warm_end_) {
      (is_read ? read_latency_ : write_latency_).Record(result.Latency());
    }
  }
}

void LoadGenerator::MaybeFinish() {
  if (!finished_ && generation_done_ && outstanding_ == 0) {
    finished_ = true;
    done_promise_->Set(sim::Unit{});
  }
}

sim::Task LoadGenerator::ClosedLoopWorker(int conn_index) {
  while (sim_.Now() < end_) {
    auto [lba, is_read] = PickOp();
    IoResult result;
    if (is_read) {
      result = co_await session_.Read(lba, sectors_, nullptr, conn_index);
    } else {
      result = co_await session_.Write(lba, sectors_, nullptr, conn_index);
    }
    Record(result, is_read);
  }
  --outstanding_;
  generation_done_ = true;
  MaybeFinish();
}

sim::Task LoadGenerator::ProbeWorker() {
  while (probe_ops_left_ > 0) {
    --probe_ops_left_;
    auto [lba, is_read] = PickOp();
    IoResult result;
    if (is_read) {
      result = co_await session_.Read(lba, sectors_);
    } else {
      result = co_await session_.Write(lba, sectors_);
    }
    Record(result, is_read);
  }
  --outstanding_;
  generation_done_ = true;
  MaybeFinish();
}

void LoadGenerator::ScheduleNextArrival() {
  const auto gap = static_cast<sim::TimeNs>(
      spec_.poisson_arrivals ? rng_.NextExponential(mean_interarrival_)
                             : mean_interarrival_);
  sim_.ScheduleAfter(gap, [this] {
    if (sim_.Now() >= end_) {
      generation_done_ = true;
      MaybeFinish();
      return;
    }
    ++outstanding_;
    IssueOpenLoopOp(next_conn_);
    next_conn_ = (next_conn_ + 1) % session_.num_lanes();
    ScheduleNextArrival();
  });
}

sim::Task LoadGenerator::IssueOpenLoopOp(int conn_index) {
  auto [lba, is_read] = PickOp();
  IoResult result;
  if (is_read) {
    result = co_await session_.Read(lba, sectors_, nullptr, conn_index);
  } else {
    result = co_await session_.Write(lba, sectors_, nullptr, conn_index);
  }
  Record(result, is_read);
  --outstanding_;
  MaybeFinish();
}

}  // namespace reflex::client
