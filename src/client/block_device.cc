#include "client/block_device.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "sim/logging.h"

namespace reflex::client {

BlockDevice::BlockDevice(sim::Simulator& sim, core::ReflexServer& server,
                         net::Machine* machine, uint32_t tenant_handle,
                         Options options)
    : sim_(sim),
      server_(server),
      options_(options),
      rng_(options.seed, "block_device"),
      contexts_(options.num_contexts) {
  REFLEX_CHECK(options_.num_contexts >= 1);
  // One socket per hardware context; the kernel path is modeled here,
  // so the underlying user-level library runs with a null stack.
  ReflexClient::Options client_options;
  client_options.stack = net::StackCosts::Null();
  client_options.num_connections = options_.num_contexts;
  client_options.seed = options_.seed ^ 0xb10c;
  client_options.retry = options_.retry;
  client_ = std::make_unique<ReflexClient>(sim, server, machine,
                                           client_options);
  session_ = client_->AttachSession(tenant_handle);
  REFLEX_CHECK(session_ != nullptr);
}

uint64_t BlockDevice::CapacityBytes() const {
  return server_.device().profile().capacity_sectors * core::kSectorBytes;
}

sim::Future<IoResult> BlockDevice::Read(uint64_t byte_offset, uint32_t bytes,
                                        uint8_t* data) {
  return SubmitSplit(/*is_read=*/true, byte_offset, bytes, data);
}

sim::Future<IoResult> BlockDevice::Write(uint64_t byte_offset,
                                         uint32_t bytes, uint8_t* data) {
  return SubmitSplit(/*is_read=*/false, byte_offset, bytes, data);
}

sim::Future<IoResult> BlockDevice::SubmitSplit(bool is_read,
                                               uint64_t byte_offset,
                                               uint32_t bytes,
                                               uint8_t* data) {
  REFLEX_CHECK(bytes > 0);
  if (data != nullptr) {
    REFLEX_CHECK(byte_offset % core::kSectorBytes == 0);
    REFLEX_CHECK(bytes % core::kSectorBytes == 0);
  }
  const uint64_t first_lba = byte_offset / core::kSectorBytes;
  const uint64_t end_lba =
      (byte_offset + bytes + core::kSectorBytes - 1) / core::kSectorBytes;
  auto total_sectors = static_cast<uint32_t>(end_lba - first_lba);

  // Split into chunks of at most max_request_sectors, one blk-mq
  // context per chunk (round robin).
  auto status = std::make_shared<core::ReqStatus>(core::ReqStatus::kOk);
  int num_chunks = 0;
  {
    uint32_t remaining = total_sectors;
    while (remaining > 0) {
      remaining -= std::min(remaining, options_.max_request_sectors);
      ++num_chunks;
    }
  }
  auto barrier = std::make_shared<sim::Barrier>(sim_, num_chunks);

  uint64_t lba = first_lba;
  uint32_t remaining = total_sectors;
  uint8_t* chunk_data = data;
  while (remaining > 0) {
    const uint32_t chunk = std::min(remaining, options_.max_request_sectors);
    const int ctx = next_ctx_;
    next_ctx_ = (next_ctx_ + 1) % options_.num_contexts;
    DoChunk(ctx, is_read, lba, chunk, chunk_data, barrier.get(),
            status.get());
    lba += chunk;
    remaining -= chunk;
    if (chunk_data != nullptr) {
      chunk_data += static_cast<size_t>(chunk) * core::kSectorBytes;
    }
  }

  sim::Promise<IoResult> promise(sim_);
  auto future = promise.GetFuture();
  JoinChunks(barrier, status, sim_.Now(), std::move(promise));

  if (is_read) {
    ++reads_completed_;
    bytes_read_ += bytes;
  } else {
    ++writes_completed_;
    bytes_written_ += bytes;
  }
  return future;
}

sim::Task BlockDevice::DoChunk(int ctx_index, bool is_read, uint64_t lba,
                               uint32_t sectors, uint8_t* data,
                               sim::Barrier* barrier,
                               core::ReqStatus* status_out) {
  Context& ctx = contexts_[ctx_index];

  // Submission path: bio + blk-mq + kernel TCP tx, serialized on the
  // context's core.
  const uint32_t wire_tx =
      is_read ? core::kRequestHeaderBytes
              : core::kRequestHeaderBytes + sectors * core::kSectorBytes;
  const sim::TimeNs submit_cost =
      options_.block_submit_cost + options_.stack.TxCost(wire_tx);
  const sim::TimeNs submit_start = std::max(sim_.Now(), ctx.core_free);
  ctx.core_free = submit_start + submit_cost;
  co_await sim::Delay(sim_, ctx.core_free - sim_.Now());

  IoResult r;
  if (is_read) {
    r = co_await session_->Read(lba, sectors, data, ctx_index);
  } else {
    r = co_await session_->Write(lba, sectors, data, ctx_index);
  }
  // blk-mq requeue: transient failures (device error, allocation
  // pressure, timeout) put the request back on the hardware context
  // after a delay; permanent errors (bad range, no such tenant) are
  // completed with the error immediately.
  int requeues_left = options_.max_requeues;
  while (!r.ok() && requeues_left > 0 &&
         (r.status == core::ReqStatus::kDeviceError ||
          r.status == core::ReqStatus::kOutOfResources ||
          r.status == core::ReqStatus::kTimedOut ||
          r.status == core::ReqStatus::kUnknownOutcome)) {
    --requeues_left;
    ++requeues_;
    co_await sim::Delay(sim_, options_.requeue_delay);
    if (is_read) {
      r = co_await session_->Read(lba, sectors, data, ctx_index);
    } else {
      r = co_await session_->Write(lba, sectors, data, ctx_index);
    }
  }
  if (!r.ok()) *status_out = r.status;

  // Completion path: interrupt delivery, then the context's completion
  // kthread processes responses serially.
  const uint32_t payload = is_read ? sectors * core::kSectorBytes : 0;
  const sim::TimeNs after_irq =
      sim_.Now() + options_.stack.SampleDeliveryDelay(rng_);
  const sim::TimeNs rx_cost =
      options_.stack.RxCost(payload) + options_.block_complete_cost;
  const sim::TimeNs rx_start = std::max(after_irq, ctx.core_free);
  ctx.core_free = rx_start + rx_cost;
  co_await sim::Delay(sim_, ctx.core_free - sim_.Now());

  barrier->Arrive();
}

sim::Task BlockDevice::JoinChunks(std::shared_ptr<sim::Barrier> barrier,
                                  std::shared_ptr<core::ReqStatus> status,
                                  sim::TimeNs issue_time,
                                  sim::Promise<IoResult> promise) {
  co_await barrier->Done();
  co_await sim::Delay(sim_, options_.app_wakeup);
  IoResult result;
  result.status = *status;
  result.issue_time = issue_time;
  result.complete_time = sim_.Now();
  promise.Set(result);
}

}  // namespace reflex::client
