#ifndef REFLEX_CLIENT_FLASH_SERVICE_H_
#define REFLEX_CLIENT_FLASH_SERVICE_H_

#include <cstdint>

#include "client/io_result.h"
#include "client/io_session.h"
#include "sim/task.h"

namespace reflex::client {

/** Direction of one Flash I/O. */
enum class IoOp : uint8_t { kRead, kWrite };

/**
 * One Flash I/O: direction, sector range and (optional) payload
 * buffer. `lba` and `sectors` are in 512B sectors; `data` receives
 * the payload on reads and supplies it on writes (null models a
 * data-less request, which still moves the full payload over the
 * wire).
 */
struct IoDesc {
  IoOp op = IoOp::kRead;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  uint8_t* data = nullptr;

  bool is_read() const { return op == IoOp::kRead; }

  static IoDesc Read(uint64_t lba, uint32_t sectors,
                     uint8_t* data = nullptr) {
    return IoDesc{IoOp::kRead, lba, sectors, data};
  }
  static IoDesc Write(uint64_t lba, uint32_t sectors,
                      uint8_t* data = nullptr) {
    return IoDesc{IoOp::kWrite, lba, sectors, data};
  }
};

/**
 * Uniform Flash access interface used by the comparison benches
 * (Table 2, Figure 4, Figure 7a): local SPDK, iSCSI, the libaio
 * baseline server and ReFlex all implement it, so one workload driver
 * measures every system.
 */
class FlashService {
 public:
  virtual ~FlashService() = default;

  /**
   * Issues one I/O; the future resolves when the application would
   * observe the completion (all stack costs included).
   */
  virtual sim::Future<IoResult> SubmitIo(const IoDesc& io) = 0;

  /** Human-readable system name for bench output. */
  virtual const char* name() const = 0;
};

/**
 * FlashService adapter over any IoSession -- a single-server
 * TenantSession or a cluster::ClusterSession equally, which is how the
 * comparison benches run one driver against both topologies.
 */
class ReflexService : public FlashService {
 public:
  explicit ReflexService(IoSession& session, const char* name = "ReFlex")
      : session_(session), name_(name) {}

  sim::Future<IoResult> SubmitIo(const IoDesc& io) override {
    return io.is_read() ? session_.Read(io.lba, io.sectors, io.data)
                        : session_.Write(io.lba, io.sectors, io.data);
  }

  const char* name() const override { return name_; }

 private:
  IoSession& session_;
  const char* name_;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_FLASH_SERVICE_H_
