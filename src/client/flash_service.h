#ifndef REFLEX_CLIENT_FLASH_SERVICE_H_
#define REFLEX_CLIENT_FLASH_SERVICE_H_

#include <cstdint>

#include "client/io_result.h"
#include "client/reflex_client.h"
#include "sim/task.h"

namespace reflex::client {

/**
 * Uniform Flash access interface used by the comparison benches
 * (Table 2, Figure 4, Figure 7a): local SPDK, iSCSI, the libaio
 * baseline server and ReFlex all implement it, so one workload driver
 * measures every system.
 */
class FlashService {
 public:
  virtual ~FlashService() = default;

  /**
   * Issues one I/O; the future resolves when the application would
   * observe the completion (all stack costs included).
   */
  virtual sim::Future<IoResult> SubmitIo(bool is_read, uint64_t lba,
                                         uint32_t sectors,
                                         uint8_t* data) = 0;

  /** Human-readable system name for bench output. */
  virtual const char* name() const = 0;
};

/** FlashService adapter over the ReFlex user-level client library. */
class ReflexService : public FlashService {
 public:
  ReflexService(ReflexClient& client, uint32_t tenant_handle,
                const char* name = "ReFlex")
      : client_(client), tenant_(tenant_handle), name_(name) {}

  sim::Future<IoResult> SubmitIo(bool is_read, uint64_t lba,
                                 uint32_t sectors, uint8_t* data) override {
    return is_read ? client_.Read(tenant_, lba, sectors, data)
                   : client_.Write(tenant_, lba, sectors, data);
  }

  const char* name() const override { return name_; }

 private:
  ReflexClient& client_;
  uint32_t tenant_;
  const char* name_;
};

}  // namespace reflex::client

#endif  // REFLEX_CLIENT_FLASH_SERVICE_H_
