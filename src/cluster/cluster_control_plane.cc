#include "cluster/cluster_control_plane.h"

#include <algorithm>

#include "cluster/flash_cluster.h"
#include "cluster/migration.h"
#include "core/reflex_server.h"
#include "sim/logging.h"

namespace reflex::cluster {

const char* AdmitKindName(AdmitResult::Kind kind) {
  switch (kind) {
    case AdmitResult::Kind::kAccepted:
      return "accepted";
    case AdmitResult::Kind::kRejectedCapacity:
      return "rejected_capacity";
    case AdmitResult::Kind::kRejectedShard:
      return "rejected_shard";
    case AdmitResult::Kind::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

ClusterControlPlane::ClusterControlPlane(FlashCluster& cluster)
    : cluster_(cluster) {}

ClusterControlPlane::~ClusterControlPlane() {
  // An autoscaler loop parked on its Delay when the simulation ended
  // never resumes; reclaim the frame (see sim::SelfHandle).
  if (autoscaler_active_ && autoscaler_handle_) {
    autoscaler_active_ = false;
    autoscaler_handle_.destroy();
  }
}

void ClusterControlPlane::StartAutoscaler(MigrationCoordinator& coordinator,
                                          AutoscalerOptions options) {
  REFLEX_CHECK(!autoscaler_running_);
  REFLEX_CHECK(cluster_.num_shards() >= 1);
  autoscaler_coordinator_ = &coordinator;
  autoscaler_options_ = options;
  autoscaler_running_ = true;
  if (active_shards_ == 0) active_shards_ = cluster_.num_shards();
  prev_tokens_spent_.assign(static_cast<size_t>(cluster_.num_shards()), 0.0);
  prev_neg_hits_.assign(static_cast<size_t>(cluster_.num_shards()), 0);
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    prev_tokens_spent_[static_cast<size_t>(i)] =
        cluster_.server(i).shared().tokens_spent_total;
    SampleShardRejects(i);
  }
  AutoscaleLoop();
}

double ClusterControlPlane::SampleShardUtilization(int i, sim::TimeNs dt,
                                                   uint32_t* queue_depth) {
  core::ReflexServer& server = cluster_.server(i);
  const double spent = server.shared().tokens_spent_total;
  const double delta = spent - prev_tokens_spent_[static_cast<size_t>(i)];
  prev_tokens_spent_[static_cast<size_t>(i)] = spent;
  // Utilization = token spend rate over the calibrated device token
  // capacity -- the same currency admission control reserves in, so
  // "0.7 utilized" means 70% of what the token math would sell.
  const double capacity =
      server.calibration().token_capacity_per_sec * sim::ToSeconds(dt);
  uint32_t depth = 0;
  for (int t = 0; t < server.num_active_threads(); ++t) {
    depth = std::max(depth, server.thread(t).QueueDepthHint());
  }
  if (queue_depth != nullptr) *queue_depth = depth;
  return capacity > 0.0 ? delta / capacity : 0.0;
}

int64_t ClusterControlPlane::SampleShardRejects(int i) {
  int64_t hits = 0;
  for (const core::Tenant* t : cluster_.server(i).tenants()) {
    hits += t->neg_limit_hits;
  }
  const int64_t delta = hits - prev_neg_hits_[static_cast<size_t>(i)];
  prev_neg_hits_[static_cast<size_t>(i)] = hits;
  return delta;
}

sim::Task ClusterControlPlane::AutoscaleLoop() {
  co_await sim::SelfHandle(&autoscaler_handle_);
  autoscaler_active_ = true;
  sim::Simulator& sim = cluster_.sim();
  const AutoscalerOptions opts = autoscaler_options_;

  int low_streak = 0;
  while (autoscaler_running_) {
    co_await sim::Delay(sim, opts.period);
    if (!autoscaler_running_) break;
    ++autoscaler_stats_.evaluations;

    const int n = cluster_.num_shards();
    double max_util = 0.0;
    uint32_t max_depth = 0;
    int64_t max_rejects = 0;
    for (int i = 0; i < n; ++i) {
      // Sample every shard (keeps baselines fresh for shards about to
      // join the active set) but only the active prefix drives the
      // decision.
      uint32_t depth = 0;
      const double util = SampleShardUtilization(i, opts.period, &depth);
      const int64_t rejects = SampleShardRejects(i);
      if (i < active_shards_) {
        max_util = std::max(max_util, util);
        max_depth = std::max(max_depth, depth);
        max_rejects = std::max(max_rejects, rejects);
      }
    }

    // The active set never shrinks below the replication factor: every
    // hot stripe must keep R placements on R distinct shards.
    const int floor_active = std::max(
        {1, opts.min_active, cluster_.shard_map().replication()});
    int desired = active_shards_;
    // Rejects are the strongest grow signal: a shard throttling on its
    // token reservation serves a flat rate and keeps its queue short,
    // so the other two signals read "healthy" while offered load
    // bounces. Without this term an over-packed fleet is metastable --
    // it rejects forever and never scales out of the regime.
    if ((max_util > opts.high_utilization ||
         max_depth > opts.high_queue_depth ||
         max_rejects >= opts.high_rejects) &&
        active_shards_ < n) {
      desired = active_shards_ + 1;
      low_streak = 0;
    } else if (max_util < opts.low_utilization &&
               max_depth <= opts.high_queue_depth / 2 &&
               max_rejects == 0 && active_shards_ > floor_active) {
      // Shrinking is damped: only a sustained lull below the low-water
      // mark gives up a server.
      if (++low_streak >= opts.shrink_persistence) {
        desired = active_shards_ - 1;
      }
    } else {
      low_streak = 0;
    }
    desired = std::clamp(desired, floor_active, n);
    if (desired == active_shards_) continue;
    low_streak = 0;
    if (autoscaler_coordinator_->busy()) continue;  // retry next period

    // Re-place the hot range over the resized active set; the plan
    // drops placements already where they belong, so repeated resizes
    // only move what changed.
    ShardMap& map = cluster_.mutable_shard_map();
    const int r = map.replication();
    std::vector<ShardMap::StripeMove> moves;
    const uint64_t end_stripe = std::min(
        opts.hot_first_stripe + opts.hot_stripes, map.num_stripes());
    for (uint64_t s = opts.hot_first_stripe; s < end_stripe; ++s) {
      for (int k = 0; k < r; ++k) {
        moves.push_back(ShardMap::StripeMove{
            s, k,
            static_cast<int>((s + static_cast<uint64_t>(k)) %
                             static_cast<uint64_t>(desired))});
      }
    }
    std::vector<MigrationAssignment> plan = map.PlanStripeMoves(moves);
    bool applied = true;
    if (!plan.empty()) {
      ++autoscaler_stats_.rebalances;
      applied = co_await autoscaler_coordinator_->MigrateAssignments(
          std::move(plan));
      if (!applied) ++autoscaler_stats_.rebalances_failed;

      // The batch's copy traffic polluted this period's signals (its
      // token spend and queue depth look like tenant load, which would
      // bounce the fleet straight back up). Sit out one period and
      // re-baseline every shard before the next decision.
      co_await sim::Delay(sim, opts.period);
      if (!autoscaler_running_) break;
      for (int i = 0; i < n; ++i) {
        SampleShardUtilization(i, opts.period, nullptr);
        SampleShardRejects(i);
      }
    }

    // The active set only changes when the repack actually applied: a
    // size adopted before an aborted migration would never be retried
    // (desired == active next period) and would leave the hot range
    // packed on fewer shards than the fleet believes it has -- an
    // overload trap when load keeps rising.
    if (!applied) continue;
    if (desired > active_shards_) {
      ++autoscaler_stats_.grow_events;
    } else {
      ++autoscaler_stats_.shrink_events;
    }
    active_shards_ = desired;
  }

  autoscaler_handle_ = nullptr;
  autoscaler_active_ = false;
}

core::SloSpec ClusterControlPlane::ShardShare(const core::SloSpec& slo,
                                              int num_shards) {
  REFLEX_CHECK(num_shards >= 1);
  core::SloSpec share = slo;
  const auto n = static_cast<uint64_t>(num_shards);
  share.iops = (slo.iops + n - 1) / n;
  return share;
}

ClusterTenant ClusterControlPlane::RegisterTenant(const core::SloSpec& slo,
                                                  core::TenantClass cls,
                                                  AdmitResult* result) {
  ClusterTenant tenant;
  tenant.cluster_slo = slo;
  tenant.shard_slo = cls == core::TenantClass::kLatencyCritical
                         ? ShardShare(slo, cluster_.num_shards())
                         : slo;
  tenant.cls = cls;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    core::ReqStatus shard_status = core::ReqStatus::kOk;
    core::Tenant* t = cluster_.server(i).RegisterTenant(
        tenant.shard_slo, cls, &shard_status);
    if (t == nullptr) {
      // All-or-nothing: roll back the shards already registered.
      for (int k = 0; k < i; ++k) {
        cluster_.server(k).UnregisterTenant(tenant.handles[k]);
      }
      if (result != nullptr) {
        // kOutOfResources is the token-math verdict "this share does
        // not fit", a cluster-capacity problem; anything else is the
        // specific shard misbehaving.
        result->kind = shard_status == core::ReqStatus::kOutOfResources
                           ? AdmitResult::Kind::kRejectedCapacity
                           : AdmitResult::Kind::kRejectedShard;
        result->shard = i;
        result->status = shard_status;
      }
      ++tenants_rejected_;
      return ClusterTenant{};
    }
    tenant.handles.push_back(t->handle());
  }
  if (result != nullptr) *result = AdmitResult{};
  ++tenants_admitted_;
  active_tenants_.push_back(tenant);
  return tenant;
}

bool ClusterControlPlane::UnregisterTenant(const ClusterTenant& tenant) {
  if (!tenant.valid()) return false;
  REFLEX_CHECK(static_cast<int>(tenant.handles.size()) ==
               cluster_.num_shards());
  bool all_ok = true;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    all_ok &= cluster_.server(i).UnregisterTenant(tenant.handles[i]);
  }
  // Drop the registry entry only when every shard actually released
  // the tenant. If any shard refused, the tenant is still (partially)
  // registered and must stay visible in active_tenants_, otherwise
  // the registry diverges from shard state and the simtest
  // registration probe can no longer catch the leak.
  if (all_ok) {
    for (auto it = active_tenants_.begin(); it != active_tenants_.end();
         ++it) {
      if (it->handles == tenant.handles) {
        active_tenants_.erase(it);
        break;
      }
    }
  }
  return all_ok;
}

obs::MetricsRegistry& ClusterControlPlane::SnapshotMetrics() {
  metrics_.GetGauge("cluster_shards")
      ->Set(static_cast<double>(cluster_.num_shards()));
  metrics_.GetGauge("cluster_tenants_admitted")
      ->Set(static_cast<double>(tenants_admitted_));
  metrics_.GetGauge("cluster_tenants_rejected")
      ->Set(static_cast<double>(tenants_rejected_));

  double rx = 0, tx = 0, errors = 0;
  double device_reads = 0, device_writes = 0, tokens = 0;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    const auto shard = static_cast<int64_t>(i);
    const core::DataplaneStats stats = cluster_.server(i).AggregateStats();
    const flash::FlashDeviceStats& dev = cluster_.device(i).stats();
    const double shard_tokens =
        cluster_.server(i).shared().tokens_spent_total;
    metrics_.GetGauge("shard_requests_rx", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.requests_rx));
    metrics_.GetGauge("shard_responses_tx", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.responses_tx));
    metrics_.GetGauge("shard_error_responses", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.error_responses));
    metrics_.GetGauge("shard_device_reads", obs::Label("shard", shard))
        ->Set(static_cast<double>(dev.reads_completed));
    metrics_.GetGauge("shard_device_writes", obs::Label("shard", shard))
        ->Set(static_cast<double>(dev.writes_completed));
    metrics_.GetGauge("shard_tokens_spent", obs::Label("shard", shard))
        ->Set(shard_tokens);
    rx += static_cast<double>(stats.requests_rx);
    tx += static_cast<double>(stats.responses_tx);
    errors += static_cast<double>(stats.error_responses);
    device_reads += static_cast<double>(dev.reads_completed);
    device_writes += static_cast<double>(dev.writes_completed);
    tokens += shard_tokens;
  }
  metrics_.GetGauge("cluster_requests_rx")->Set(rx);
  metrics_.GetGauge("cluster_responses_tx")->Set(tx);
  metrics_.GetGauge("cluster_error_responses")->Set(errors);
  metrics_.GetGauge("cluster_device_reads")->Set(device_reads);
  metrics_.GetGauge("cluster_device_writes")->Set(device_writes);
  metrics_.GetGauge("cluster_tokens_spent")->Set(tokens);
  return metrics_;
}

}  // namespace reflex::cluster
