#include "cluster/cluster_control_plane.h"

#include "cluster/flash_cluster.h"
#include "core/reflex_server.h"
#include "sim/logging.h"

namespace reflex::cluster {

const char* AdmitKindName(AdmitResult::Kind kind) {
  switch (kind) {
    case AdmitResult::Kind::kAccepted:
      return "accepted";
    case AdmitResult::Kind::kRejectedCapacity:
      return "rejected_capacity";
    case AdmitResult::Kind::kRejectedShard:
      return "rejected_shard";
    case AdmitResult::Kind::kRolledBack:
      return "rolled_back";
  }
  return "unknown";
}

ClusterControlPlane::ClusterControlPlane(FlashCluster& cluster)
    : cluster_(cluster) {}

core::SloSpec ClusterControlPlane::ShardShare(const core::SloSpec& slo,
                                              int num_shards) {
  REFLEX_CHECK(num_shards >= 1);
  core::SloSpec share = slo;
  const auto n = static_cast<uint64_t>(num_shards);
  share.iops = (slo.iops + n - 1) / n;
  return share;
}

ClusterTenant ClusterControlPlane::RegisterTenant(const core::SloSpec& slo,
                                                  core::TenantClass cls,
                                                  AdmitResult* result) {
  ClusterTenant tenant;
  tenant.cluster_slo = slo;
  tenant.shard_slo = cls == core::TenantClass::kLatencyCritical
                         ? ShardShare(slo, cluster_.num_shards())
                         : slo;
  tenant.cls = cls;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    core::ReqStatus shard_status = core::ReqStatus::kOk;
    core::Tenant* t = cluster_.server(i).RegisterTenant(
        tenant.shard_slo, cls, &shard_status);
    if (t == nullptr) {
      // All-or-nothing: roll back the shards already registered.
      for (int k = 0; k < i; ++k) {
        cluster_.server(k).UnregisterTenant(tenant.handles[k]);
      }
      if (result != nullptr) {
        // kOutOfResources is the token-math verdict "this share does
        // not fit", a cluster-capacity problem; anything else is the
        // specific shard misbehaving.
        result->kind = shard_status == core::ReqStatus::kOutOfResources
                           ? AdmitResult::Kind::kRejectedCapacity
                           : AdmitResult::Kind::kRejectedShard;
        result->shard = i;
        result->status = shard_status;
      }
      ++tenants_rejected_;
      return ClusterTenant{};
    }
    tenant.handles.push_back(t->handle());
  }
  if (result != nullptr) *result = AdmitResult{};
  ++tenants_admitted_;
  active_tenants_.push_back(tenant);
  return tenant;
}

bool ClusterControlPlane::UnregisterTenant(const ClusterTenant& tenant) {
  if (!tenant.valid()) return false;
  REFLEX_CHECK(static_cast<int>(tenant.handles.size()) ==
               cluster_.num_shards());
  bool all_ok = true;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    all_ok &= cluster_.server(i).UnregisterTenant(tenant.handles[i]);
  }
  // Drop the registry entry only when every shard actually released
  // the tenant. If any shard refused, the tenant is still (partially)
  // registered and must stay visible in active_tenants_, otherwise
  // the registry diverges from shard state and the simtest
  // registration probe can no longer catch the leak.
  if (all_ok) {
    for (auto it = active_tenants_.begin(); it != active_tenants_.end();
         ++it) {
      if (it->handles == tenant.handles) {
        active_tenants_.erase(it);
        break;
      }
    }
  }
  return all_ok;
}

obs::MetricsRegistry& ClusterControlPlane::SnapshotMetrics() {
  metrics_.GetGauge("cluster_shards")
      ->Set(static_cast<double>(cluster_.num_shards()));
  metrics_.GetGauge("cluster_tenants_admitted")
      ->Set(static_cast<double>(tenants_admitted_));
  metrics_.GetGauge("cluster_tenants_rejected")
      ->Set(static_cast<double>(tenants_rejected_));

  double rx = 0, tx = 0, errors = 0;
  double device_reads = 0, device_writes = 0, tokens = 0;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    const auto shard = static_cast<int64_t>(i);
    const core::DataplaneStats stats = cluster_.server(i).AggregateStats();
    const flash::FlashDeviceStats& dev = cluster_.device(i).stats();
    const double shard_tokens =
        cluster_.server(i).shared().tokens_spent_total;
    metrics_.GetGauge("shard_requests_rx", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.requests_rx));
    metrics_.GetGauge("shard_responses_tx", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.responses_tx));
    metrics_.GetGauge("shard_error_responses", obs::Label("shard", shard))
        ->Set(static_cast<double>(stats.error_responses));
    metrics_.GetGauge("shard_device_reads", obs::Label("shard", shard))
        ->Set(static_cast<double>(dev.reads_completed));
    metrics_.GetGauge("shard_device_writes", obs::Label("shard", shard))
        ->Set(static_cast<double>(dev.writes_completed));
    metrics_.GetGauge("shard_tokens_spent", obs::Label("shard", shard))
        ->Set(shard_tokens);
    rx += static_cast<double>(stats.requests_rx);
    tx += static_cast<double>(stats.responses_tx);
    errors += static_cast<double>(stats.error_responses);
    device_reads += static_cast<double>(dev.reads_completed);
    device_writes += static_cast<double>(dev.writes_completed);
    tokens += shard_tokens;
  }
  metrics_.GetGauge("cluster_requests_rx")->Set(rx);
  metrics_.GetGauge("cluster_responses_tx")->Set(tx);
  metrics_.GetGauge("cluster_error_responses")->Set(errors);
  metrics_.GetGauge("cluster_device_reads")->Set(device_reads);
  metrics_.GetGauge("cluster_device_writes")->Set(device_writes);
  metrics_.GetGauge("cluster_tokens_spent")->Set(tokens);
  return metrics_;
}

}  // namespace reflex::cluster
