#ifndef REFLEX_CLUSTER_SHARD_MAP_H_
#define REFLEX_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <vector>

namespace reflex::cluster {

/** How logical stripes are placed onto shards. */
enum class Placement : uint8_t {
  /** stripe i lives on shard (i mod N); shard LBAs are dense. */
  kStriped,
  /**
   * Rendezvous (highest-random-weight) hashing of the stripe index:
   * placement is stable when shards are listed in any order, and
   * adding a shard only moves ~1/N of the stripes. Shard LBAs are the
   * logical LBAs (thin-provisioned: each shard must be able to back
   * any logical address it wins).
   */
  kHashed,
};

struct ShardMapOptions {
  Placement placement = Placement::kStriped;

  /** Stripe unit in 512B sectors (default 64KB). */
  uint32_t stripe_sectors = 128;

  /** Seed for hashed placement (ignored for striped). */
  uint64_t seed = 0x5eed;

  /**
   * Copies of every stripe (RAIN-style): one primary plus R-1
   * replicas, clamped to the shard count. R=1 reproduces the
   * unreplicated map bit-for-bit -- identical shard LBAs, identical
   * capacity, empty replica lists.
   */
  int replication = 1;
};

/**
 * One placement of a stripe range on one shard: which shard, and the
 * LBA in that shard's address space.
 */
struct ReplicaTarget {
  int shard_index = 0;
  uint32_t shard_id = 0;
  uint64_t shard_lba = 0;
};

/**
 * One shard-local piece of a logical I/O: which shard serves it, the
 * LBA in that shard's address space, and where its payload sits in the
 * caller's buffer (so scatter-gather reassembly is byte-exact).
 */
struct ShardExtent {
  int shard_index = 0;
  uint32_t shard_id = 0;
  uint64_t shard_lba = 0;
  uint32_t sectors = 0;
  /** Offset of this extent's payload in the logical I/O's buffer. */
  uint32_t buffer_offset_sectors = 0;

  /**
   * Replica placements of this extent beyond the primary (ordinals
   * 1..R-1; empty when replication == 1). Each replica holds the same
   * `sectors` run starting at its own shard_lba. Writes go to the
   * primary and every replica; reads may be steered to any of them.
   */
  std::vector<ReplicaTarget> replicas;

  /** All R placements, primary first (for uniform iteration). */
  std::vector<ReplicaTarget> AllTargets() const {
    std::vector<ReplicaTarget> out;
    out.reserve(1 + replicas.size());
    out.push_back(ReplicaTarget{shard_index, shard_id, shard_lba});
    out.insert(out.end(), replicas.begin(), replicas.end());
    return out;
  }
};

/**
 * Deterministic placement of a logical volume across N shards at
 * stripe granularity. Pure routing math -- no I/O, no simulation
 * state -- so clients and the control plane can share one instance
 * and tests can exercise it exhaustively.
 *
 * Shards are kept sorted by id: the map computed from any insertion
 * order is identical, which is what makes independently-constructed
 * clients agree on placement.
 */
class ShardMap {
 public:
  explicit ShardMap(ShardMapOptions options = ShardMapOptions());

  /** Adds a shard (ids must be unique; any insertion order). */
  void AddShard(uint32_t shard_id, uint64_t capacity_sectors);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint32_t shard_id(int index) const { return shards_[index].id; }
  const ShardMapOptions& options() const { return options_; }

  /**
   * Logical volume capacity. Striped: every shard contributes the
   * same whole number of stripes (bounded by the smallest shard).
   * Hashed: identity addressing means every shard must be able to
   * back any logical LBA, so the smallest shard bounds the volume.
   * O(1): recomputed eagerly by AddShard, not on each call -- Split
   * checks it per request on the cluster hot path.
   */
  uint64_t capacity_sectors() const { return capacity_cache_; }

  /** Effective replication factor: options().replication clamped to
   * the shard count (always >= 1 once a shard exists). */
  int replication() const;

  /** Shard index serving logical stripe `stripe` (the primary). */
  int ShardIndexForStripe(uint64_t stripe) const;

  /**
   * All R placements of logical stripe `stripe`, primary first, with
   * shard LBAs of the stripe's first sector. Striped placement puts
   * replica ordinal k on shard (primary + k) mod N, each shard packing
   * its R-way slots densely; hashed placement takes the rendezvous
   * top-R (identity-addressed, like the primary).
   */
  std::vector<ReplicaTarget> ReplicasForStripe(uint64_t stripe) const;

  /**
   * Splits [lba, lba+sectors) into per-shard extents, in logical-LBA
   * order, merging adjacent runs that land contiguously on the same
   * shard. A single-stripe I/O yields exactly one extent; a
   * zero-sector request yields no extents.
   */
  std::vector<ShardExtent> Split(uint64_t lba, uint32_t sectors) const;

 private:
  struct Shard {
    uint32_t id;
    uint64_t capacity_sectors;
  };

  uint64_t ComputeCapacitySectors() const;

  /** All R placements of `stripe`, primary first, with `within`
   * sectors of intra-stripe offset applied to every shard LBA. */
  std::vector<ReplicaTarget> TargetsForStripe(uint64_t stripe,
                                              uint32_t within) const;

  ShardMapOptions options_;
  std::vector<Shard> shards_;
  /** capacity_sectors() of the current shard set (0 when empty). */
  uint64_t capacity_cache_ = 0;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_SHARD_MAP_H_
