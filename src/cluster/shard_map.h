#ifndef REFLEX_CLUSTER_SHARD_MAP_H_
#define REFLEX_CLUSTER_SHARD_MAP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace reflex::cluster {

/** How logical stripes are placed onto shards. */
enum class Placement : uint8_t {
  /** stripe i lives on shard (i mod N); shard LBAs are dense. */
  kStriped,
  /**
   * Rendezvous (highest-random-weight) hashing of the stripe index:
   * placement is stable when shards are listed in any order, and
   * adding a shard only moves ~1/N of the stripes. Shard LBAs are the
   * logical LBAs (thin-provisioned: each shard must be able to back
   * any logical address it wins).
   */
  kHashed,
};

struct ShardMapOptions {
  Placement placement = Placement::kStriped;

  /** Stripe unit in 512B sectors (default 64KB). */
  uint32_t stripe_sectors = 128;

  /** Seed for hashed placement (ignored for striped). */
  uint64_t seed = 0x5eed;

  /**
   * Copies of every stripe (RAIN-style): one primary plus R-1
   * replicas, clamped to the shard count. R=1 reproduces the
   * unreplicated map bit-for-bit -- identical shard LBAs, identical
   * capacity, empty replica lists.
   */
  int replication = 1;

  /**
   * Stripe-slots reserved at the top of every shard's address space as
   * landing space for live migration: a stripe moved onto a shard that
   * is not its base placement lands in one of these slots. Shrinks the
   * logical volume by `migration_slots` stripes per shard (striped) or
   * per volume (hashed). 0 -- the default -- reserves nothing and
   * reproduces the immobile map bit-for-bit.
   */
  uint32_t migration_slots = 0;
};

/**
 * One placement of a stripe range on one shard: which shard, and the
 * LBA in that shard's address space.
 */
struct ReplicaTarget {
  int shard_index = 0;
  uint32_t shard_id = 0;
  uint64_t shard_lba = 0;
};

/**
 * One planned stripe move: replica ordinal `ordinal` of `stripe`
 * relocates from its current placement to a new one. Produced by
 * PlanStripeMoves / PlanRangeMigration (which also reserves the
 * destination slot) and consumed by CommitMigration / AbortMigration.
 */
struct MigrationAssignment {
  uint64_t stripe = 0;
  int ordinal = 0;  // 0 = primary, 1..R-1 = replicas
  /** Current placement (base or a previously-committed override). */
  ReplicaTarget from;
  /** Destination: a reserved migration slot, or the base placement
   * when the stripe is moving back home. */
  ReplicaTarget to;
  /** True when `to` is the stripe's base placement (commit removes
   * the override instead of installing one). */
  bool to_is_base = false;
  /** True when `from` is an override whose slot frees on commit. */
  bool from_is_override = false;
};

/**
 * One shard-local piece of a logical I/O: which shard serves it, the
 * LBA in that shard's address space, and where its payload sits in the
 * caller's buffer (so scatter-gather reassembly is byte-exact).
 */
struct ShardExtent {
  int shard_index = 0;
  uint32_t shard_id = 0;
  uint64_t shard_lba = 0;
  uint32_t sectors = 0;
  /** Offset of this extent's payload in the logical I/O's buffer. */
  uint32_t buffer_offset_sectors = 0;

  /**
   * Replica placements of this extent beyond the primary (ordinals
   * 1..R-1; empty when replication == 1). Each replica holds the same
   * `sectors` run starting at its own shard_lba. Writes go to the
   * primary and every replica; reads may be steered to any of them.
   */
  std::vector<ReplicaTarget> replicas;

  /** All R placements, primary first (for uniform iteration). */
  std::vector<ReplicaTarget> AllTargets() const {
    std::vector<ReplicaTarget> out;
    out.reserve(1 + replicas.size());
    out.push_back(ReplicaTarget{shard_index, shard_id, shard_lba});
    out.insert(out.end(), replicas.begin(), replicas.end());
    return out;
  }
};

/**
 * Deterministic placement of a logical volume across N shards at
 * stripe granularity. Pure routing math -- no I/O, no simulation
 * state -- so clients and the control plane can share one instance
 * and tests can exercise it exhaustively.
 *
 * Shards are kept sorted by id: the map computed from any insertion
 * order is identical, which is what makes independently-constructed
 * clients agree on placement.
 */
class ShardMap {
 public:
  explicit ShardMap(ShardMapOptions options = ShardMapOptions());

  /** Adds a shard (ids must be unique; any insertion order). */
  void AddShard(uint32_t shard_id, uint64_t capacity_sectors);

  int num_shards() const { return static_cast<int>(shards_.size()); }
  uint32_t shard_id(int index) const { return shards_[index].id; }
  const ShardMapOptions& options() const { return options_; }

  /**
   * Logical volume capacity. Striped: every shard contributes the
   * same whole number of stripes (bounded by the smallest shard).
   * Hashed: identity addressing means every shard must be able to
   * back any logical LBA, so the smallest shard bounds the volume.
   * O(1): recomputed eagerly by AddShard, not on each call -- Split
   * checks it per request on the cluster hot path.
   */
  uint64_t capacity_sectors() const { return capacity_cache_; }

  /** Effective replication factor: options().replication clamped to
   * the shard count (always >= 1 once a shard exists). */
  int replication() const;

  /** Shard index serving logical stripe `stripe` (the primary). */
  int ShardIndexForStripe(uint64_t stripe) const;

  /**
   * All R placements of logical stripe `stripe`, primary first, with
   * shard LBAs of the stripe's first sector. Striped placement puts
   * replica ordinal k on shard (primary + k) mod N, each shard packing
   * its R-way slots densely; hashed placement takes the rendezvous
   * top-R (identity-addressed, like the primary).
   */
  std::vector<ReplicaTarget> ReplicasForStripe(uint64_t stripe) const;

  /**
   * Splits [lba, lba+sectors) into per-shard extents, in logical-LBA
   * order, merging adjacent runs that land contiguously on the same
   * shard. A single-stripe I/O yields exactly one extent; a
   * zero-sector request yields no extents.
   */
  std::vector<ShardExtent> Split(uint64_t lba, uint32_t sectors) const;

  // --- Live migration (DESIGN.md section 17) ---

  /**
   * Map epoch: bumped once per committed migration batch. Clients
   * stamp requests with the epoch of the map copy that routed them;
   * a moved range rejects pre-cutover epochs with kWrongShard.
   */
  uint64_t epoch() const { return epoch_; }

  /** Stripes in the logical volume. */
  uint64_t num_stripes() const {
    return capacity_cache_ / options_.stripe_sectors;
  }

  /** Committed placement overrides currently in effect. */
  size_t num_overrides() const { return overrides_.size(); }

  /** Free migration landing slots on shard `shard_index`. */
  uint32_t FreeMigrationSlots(int shard_index) const;

  /** Desired placement of one replica ordinal (PlanStripeMoves input). */
  struct StripeMove {
    uint64_t stripe = 0;
    int ordinal = 0;
    int target_shard_index = 0;
  };

  /**
   * Plans a batch of stripe moves: resolves current placements,
   * reserves destination slots (or targets the base placement when a
   * stripe moves back home) and returns the assignments to copy.
   * Moves that are no-ops, would co-locate two replicas of one stripe,
   * or find no free landing slot are skipped -- the plan is always
   * safe to commit. Reserved slots are held until CommitMigration or
   * AbortMigration.
   */
  std::vector<MigrationAssignment> PlanStripeMoves(
      const std::vector<StripeMove>& desired);

  /**
   * Plans the evacuation of every placement that stripe range
   * [first_stripe, first_stripe+stripe_count) has on shard
   * `source_index` over to shard `target_index`.
   */
  std::vector<MigrationAssignment> PlanRangeMigration(int source_index,
                                                      int target_index,
                                                      uint64_t first_stripe,
                                                      uint64_t stripe_count);

  /**
   * Atomically installs a planned batch: overrides flip (or clear, for
   * moves back to base), slots vacated by superseded overrides free,
   * and the epoch bumps exactly once. Callers must have copied the
   * data before committing.
   */
  void CommitMigration(const std::vector<MigrationAssignment>& assignments);

  /** Releases the slots a planned batch reserved; no epoch change. */
  void AbortMigration(const std::vector<MigrationAssignment>& assignments);

 private:
  struct Shard {
    uint32_t id;
    uint64_t capacity_sectors;
    /** Occupancy of this shard's reserved migration landing slots. */
    std::vector<bool> migration_slot_used;
  };

  uint64_t ComputeCapacitySectors() const;

  /** All R placements of `stripe`, primary first, with `within`
   * sectors of intra-stripe offset applied to every shard LBA.
   * Committed overrides are applied per ordinal. */
  std::vector<ReplicaTarget> TargetsForStripe(uint64_t stripe,
                                              uint32_t within) const;

  /** Placements ignoring overrides (the immobile base map). */
  std::vector<ReplicaTarget> BaseTargetsForStripe(uint64_t stripe,
                                                  uint32_t within) const;

  /** First shard-local LBA of `shard`'s reserved migration region. */
  uint64_t MigrationRegionBase(const Shard& shard) const;

  /** Reserves the lowest free landing slot; false if none free. */
  bool AllocMigrationSlot(int shard_index, uint64_t* slot_lba);
  void FreeMigrationSlot(int shard_index, uint64_t slot_lba);

  ShardMapOptions options_;
  std::vector<Shard> shards_;
  /** capacity_sectors() of the current shard set (0 when empty). */
  uint64_t capacity_cache_ = 0;

  uint64_t epoch_ = 0;
  /** Committed placement overrides, keyed (stripe, ordinal). */
  std::map<std::pair<uint64_t, int>, ReplicaTarget> overrides_;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_SHARD_MAP_H_
