#include "cluster/shard_map.h"

#include <algorithm>

#include "sim/logging.h"

namespace reflex::cluster {
namespace {

/** splitmix64 finalizer: avalanche mix for rendezvous weights. */
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(ShardMapOptions options) : options_(options) {
  REFLEX_CHECK(options_.stripe_sectors > 0);
  REFLEX_CHECK(options_.replication >= 1);
}

int ShardMap::replication() const {
  if (shards_.empty()) return 1;
  return std::min(options_.replication,
                  static_cast<int>(shards_.size()));
}

void ShardMap::AddShard(uint32_t shard_id, uint64_t capacity_sectors) {
  REFLEX_CHECK(capacity_sectors >= options_.stripe_sectors);
  for (const Shard& s : shards_) {
    REFLEX_CHECK(s.id != shard_id);
  }
  // Shards are added before any migration plans: overrides reference
  // shard indices, which inserting in the middle would shift.
  REFLEX_CHECK(overrides_.empty());
  Shard shard{shard_id, capacity_sectors,
              std::vector<bool>(options_.migration_slots, false)};
  // Sorted by id: the map is identical for any insertion order.
  const auto pos = std::upper_bound(
      shards_.begin(), shards_.end(), shard,
      [](const Shard& a, const Shard& b) { return a.id < b.id; });
  shards_.insert(pos, shard);
  capacity_cache_ = ComputeCapacitySectors();
  REFLEX_CHECK(capacity_cache_ > 0);
}

uint64_t ShardMap::ComputeCapacitySectors() const {
  if (shards_.empty()) return 0;
  uint64_t min_capacity = shards_[0].capacity_sectors;
  for (const Shard& s : shards_) {
    min_capacity = std::min(min_capacity, s.capacity_sectors);
  }
  // Migration landing slots come off the top of every shard before the
  // base map is laid out (migration_slots == 0 reserves nothing).
  const uint64_t raw_slots = min_capacity / options_.stripe_sectors;
  REFLEX_CHECK(raw_slots > options_.migration_slots);
  const uint64_t usable_slots = raw_slots - options_.migration_slots;
  if (options_.placement == Placement::kStriped) {
    // Each shard packs R-way replica slots densely, so R copies of
    // every stripe shrink the usable volume by a factor of R (exact
    // at R=1: slots == stripes).
    const uint64_t r = static_cast<uint64_t>(replication());
    const uint64_t slots_per_shard = usable_slots / r;
    return shards_.size() * slots_per_shard * options_.stripe_sectors;
  }
  // Hashed placement addresses shards by logical LBA, so any shard
  // must be able to back the whole volume -- replicas are identity-
  // addressed too and cost no extra logical capacity.
  return usable_slots * options_.stripe_sectors;
}

int ShardMap::ShardIndexForStripe(uint64_t stripe) const {
  REFLEX_CHECK(!shards_.empty());
  // A committed migration override relocates the primary; the map
  // must keep answering "who serves this stripe" consistently with
  // ReplicasForStripe / Split.
  const auto it = overrides_.find({stripe, 0});
  if (it != overrides_.end()) return it->second.shard_index;
  if (options_.placement == Placement::kStriped) {
    return static_cast<int>(stripe % shards_.size());
  }
  // Rendezvous hashing: the shard with the highest mixed weight wins.
  int best = 0;
  uint64_t best_weight = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t weight =
        Mix(Mix(stripe ^ options_.seed) ^ shards_[i].id);
    if (i == 0 || weight > best_weight ||
        (weight == best_weight && shards_[i].id < shards_[best].id)) {
      best = static_cast<int>(i);
      best_weight = weight;
    }
  }
  return best;
}

std::vector<ReplicaTarget> ShardMap::TargetsForStripe(
    uint64_t stripe, uint32_t within) const {
  std::vector<ReplicaTarget> out = BaseTargetsForStripe(stripe, within);
  if (overrides_.empty()) return out;
  for (int k = 0; k < static_cast<int>(out.size()); ++k) {
    const auto it = overrides_.find({stripe, k});
    if (it == overrides_.end()) continue;
    out[static_cast<size_t>(k)] =
        ReplicaTarget{it->second.shard_index, it->second.shard_id,
                      it->second.shard_lba + within};
  }
  return out;
}

std::vector<ReplicaTarget> ShardMap::BaseTargetsForStripe(
    uint64_t stripe, uint32_t within) const {
  REFLEX_CHECK(!shards_.empty());
  const uint64_t n = shards_.size();
  const int r = replication();
  std::vector<ReplicaTarget> out;
  out.reserve(static_cast<size_t>(r));
  if (options_.placement == Placement::kStriped) {
    // Replica ordinal k of stripe s lives on shard (s + k) mod N, in
    // that shard's slot (s / N) at intra-slot position k. Slot index
    // (s/N)*R + k is unique per (shard, stripe, ordinal): two pairs
    // collide only if both the quotient and the ordinal agree, which
    // forces the same stripe.
    const uint64_t primary = stripe % n;
    const uint64_t slot_base =
        (stripe / n) * options_.stripe_sectors * static_cast<uint64_t>(r);
    for (int k = 0; k < r; ++k) {
      const size_t index =
          static_cast<size_t>((primary + static_cast<uint64_t>(k)) % n);
      out.push_back(ReplicaTarget{
          static_cast<int>(index), shards_[index].id,
          slot_base + static_cast<uint64_t>(k) * options_.stripe_sectors +
              within});
    }
    return out;
  }
  // Hashed: the rendezvous top-R shards by (weight desc, id asc) --
  // the same total order whose maximum is the primary, so adding or
  // removing replicas never moves existing ones. Identity-addressed,
  // like the primary.
  std::vector<size_t> order(shards_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<uint64_t> weights(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    weights[i] = Mix(Mix(stripe ^ options_.seed) ^ shards_[i].id);
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weights[a] != weights[b]) return weights[a] > weights[b];
    return shards_[a].id < shards_[b].id;
  });
  for (int k = 0; k < r; ++k) {
    const size_t index = order[static_cast<size_t>(k)];
    out.push_back(ReplicaTarget{static_cast<int>(index), shards_[index].id,
                                stripe * options_.stripe_sectors + within});
  }
  return out;
}

std::vector<ReplicaTarget> ShardMap::ReplicasForStripe(
    uint64_t stripe) const {
  return TargetsForStripe(stripe, /*within=*/0);
}

std::vector<ShardExtent> ShardMap::Split(uint64_t lba,
                                         uint32_t sectors) const {
  // A zero-sector request touches no shard: it splits into no extents
  // (and so completes trivially) rather than tripping an assertion.
  if (sectors == 0) return {};
  REFLEX_CHECK(lba + sectors <= capacity_sectors());
  const uint64_t stripe_sectors = options_.stripe_sectors;

  std::vector<ShardExtent> out;
  uint64_t cur = lba;
  uint32_t remaining = sectors;
  uint32_t buffer_offset = 0;
  while (remaining > 0) {
    const uint64_t stripe = cur / stripe_sectors;
    const uint32_t within = static_cast<uint32_t>(cur % stripe_sectors);
    const uint32_t run = std::min(
        remaining, static_cast<uint32_t>(stripe_sectors - within));
    std::vector<ReplicaTarget> targets = TargetsForStripe(stripe, within);
    const ReplicaTarget& primary = targets[0];
    // Merge with the previous extent only when every placement --
    // primary and each replica ordinal -- continues contiguously on
    // the same shard, so one merged extent still describes one
    // contiguous run per target.
    bool mergeable =
        !out.empty() && out.back().shard_index == primary.shard_index &&
        out.back().shard_lba + out.back().sectors == primary.shard_lba &&
        out.back().replicas.size() == targets.size() - 1;
    for (size_t k = 1; mergeable && k < targets.size(); ++k) {
      const ReplicaTarget& prev = out.back().replicas[k - 1];
      mergeable = prev.shard_index == targets[k].shard_index &&
                  prev.shard_lba + out.back().sectors ==
                      targets[k].shard_lba;
    }
    if (mergeable) {
      out.back().sectors += run;
    } else {
      ShardExtent e;
      e.shard_index = primary.shard_index;
      e.shard_id = primary.shard_id;
      e.shard_lba = primary.shard_lba;
      e.sectors = run;
      e.buffer_offset_sectors = buffer_offset;
      e.replicas.assign(targets.begin() + 1, targets.end());
      out.push_back(std::move(e));
    }
    cur += run;
    remaining -= run;
    buffer_offset += run;
  }
  return out;
}

uint64_t ShardMap::MigrationRegionBase(const Shard& shard) const {
  // Reserved slots sit at the top of the shard's own address space;
  // the base map is bounded by the smallest shard, so the regions of
  // larger shards start even further above any base placement.
  const uint64_t raw_slots = shard.capacity_sectors / options_.stripe_sectors;
  return (raw_slots - options_.migration_slots) * options_.stripe_sectors;
}

uint32_t ShardMap::FreeMigrationSlots(int shard_index) const {
  const Shard& shard = shards_[static_cast<size_t>(shard_index)];
  uint32_t free = 0;
  for (const bool used : shard.migration_slot_used) {
    if (!used) ++free;
  }
  return free;
}

bool ShardMap::AllocMigrationSlot(int shard_index, uint64_t* slot_lba) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  for (size_t j = 0; j < shard.migration_slot_used.size(); ++j) {
    if (shard.migration_slot_used[j]) continue;
    shard.migration_slot_used[j] = true;
    *slot_lba = MigrationRegionBase(shard) + j * options_.stripe_sectors;
    return true;
  }
  return false;
}

void ShardMap::FreeMigrationSlot(int shard_index, uint64_t slot_lba) {
  Shard& shard = shards_[static_cast<size_t>(shard_index)];
  const uint64_t base = MigrationRegionBase(shard);
  REFLEX_CHECK(slot_lba >= base);
  const uint64_t j = (slot_lba - base) / options_.stripe_sectors;
  REFLEX_CHECK(j < shard.migration_slot_used.size());
  REFLEX_CHECK(shard.migration_slot_used[j]);
  shard.migration_slot_used[j] = false;
}

std::vector<MigrationAssignment> ShardMap::PlanStripeMoves(
    const std::vector<StripeMove>& desired) {
  // Plan each stripe's ordinals jointly: R-distinctness must hold for
  // the post-move placement as a whole, not per individual move.
  std::map<uint64_t, std::vector<StripeMove>> by_stripe;
  for (const StripeMove& m : desired) {
    REFLEX_CHECK(m.ordinal >= 0 && m.ordinal < replication());
    REFLEX_CHECK(m.target_shard_index >= 0 &&
                 m.target_shard_index < num_shards());
    by_stripe[m.stripe].push_back(m);
  }
  std::vector<MigrationAssignment> plan;
  for (auto& [stripe, moves] : by_stripe) {
    const std::vector<ReplicaTarget> current =
        TargetsForStripe(stripe, /*within=*/0);
    std::vector<int> post(current.size());
    for (size_t k = 0; k < current.size(); ++k) {
      post[k] = current[k].shard_index;
    }
    for (const StripeMove& m : moves) {
      post[static_cast<size_t>(m.ordinal)] = m.target_shard_index;
    }
    bool distinct = true;
    for (size_t a = 0; distinct && a < post.size(); ++a) {
      for (size_t b = a + 1; b < post.size(); ++b) {
        if (post[a] == post[b]) {
          distinct = false;
          break;
        }
      }
    }
    if (!distinct) continue;  // would co-locate two copies of a stripe
    const std::vector<ReplicaTarget> base =
        BaseTargetsForStripe(stripe, /*within=*/0);
    std::vector<MigrationAssignment> stripe_plan;
    bool ok = true;
    for (const StripeMove& m : moves) {
      const ReplicaTarget& from = current[static_cast<size_t>(m.ordinal)];
      if (from.shard_index == m.target_shard_index) continue;  // no-op
      MigrationAssignment a;
      a.stripe = stripe;
      a.ordinal = m.ordinal;
      a.from = from;
      a.from_is_override = overrides_.count({stripe, m.ordinal}) > 0;
      const ReplicaTarget& home = base[static_cast<size_t>(m.ordinal)];
      if (m.target_shard_index == home.shard_index) {
        // Moving back to the base placement: its slot is permanently
        // owned by this (stripe, ordinal), no reservation needed.
        a.to = home;
        a.to_is_base = true;
      } else {
        uint64_t slot_lba = 0;
        if (!AllocMigrationSlot(m.target_shard_index, &slot_lba)) {
          ok = false;  // target out of landing slots: skip the stripe
          break;
        }
        a.to = ReplicaTarget{
            m.target_shard_index,
            shards_[static_cast<size_t>(m.target_shard_index)].id, slot_lba};
      }
      stripe_plan.push_back(a);
    }
    if (!ok) {
      for (const MigrationAssignment& a : stripe_plan) {
        if (!a.to_is_base) {
          FreeMigrationSlot(a.to.shard_index, a.to.shard_lba);
        }
      }
      continue;
    }
    plan.insert(plan.end(), stripe_plan.begin(), stripe_plan.end());
  }
  return plan;
}

std::vector<MigrationAssignment> ShardMap::PlanRangeMigration(
    int source_index, int target_index, uint64_t first_stripe,
    uint64_t stripe_count) {
  std::vector<StripeMove> desired;
  const uint64_t end =
      std::min(first_stripe + stripe_count, num_stripes());
  for (uint64_t stripe = first_stripe; stripe < end; ++stripe) {
    const std::vector<ReplicaTarget> current =
        TargetsForStripe(stripe, /*within=*/0);
    for (int k = 0; k < static_cast<int>(current.size()); ++k) {
      if (current[static_cast<size_t>(k)].shard_index == source_index) {
        desired.push_back(StripeMove{stripe, k, target_index});
      }
    }
  }
  return PlanStripeMoves(desired);
}

void ShardMap::CommitMigration(
    const std::vector<MigrationAssignment>& assignments) {
  if (assignments.empty()) return;
  for (const MigrationAssignment& a : assignments) {
    if (a.from_is_override) {
      FreeMigrationSlot(a.from.shard_index, a.from.shard_lba);
    }
    if (a.to_is_base) {
      overrides_.erase({a.stripe, a.ordinal});
    } else {
      overrides_[{a.stripe, a.ordinal}] = a.to;
    }
  }
  // One epoch per batch: every assignment cut over atomically.
  ++epoch_;
}

void ShardMap::AbortMigration(
    const std::vector<MigrationAssignment>& assignments) {
  for (const MigrationAssignment& a : assignments) {
    if (!a.to_is_base) {
      FreeMigrationSlot(a.to.shard_index, a.to.shard_lba);
    }
  }
}

}  // namespace reflex::cluster
