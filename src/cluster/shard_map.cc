#include "cluster/shard_map.h"

#include <algorithm>

#include "sim/logging.h"

namespace reflex::cluster {
namespace {

/** splitmix64 finalizer: avalanche mix for rendezvous weights. */
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardMap::ShardMap(ShardMapOptions options) : options_(options) {
  REFLEX_CHECK(options_.stripe_sectors > 0);
}

void ShardMap::AddShard(uint32_t shard_id, uint64_t capacity_sectors) {
  REFLEX_CHECK(capacity_sectors >= options_.stripe_sectors);
  for (const Shard& s : shards_) {
    REFLEX_CHECK(s.id != shard_id);
  }
  Shard shard{shard_id, capacity_sectors};
  // Sorted by id: the map is identical for any insertion order.
  const auto pos = std::upper_bound(
      shards_.begin(), shards_.end(), shard,
      [](const Shard& a, const Shard& b) { return a.id < b.id; });
  shards_.insert(pos, shard);
  capacity_cache_ = ComputeCapacitySectors();
}

uint64_t ShardMap::ComputeCapacitySectors() const {
  if (shards_.empty()) return 0;
  uint64_t min_capacity = shards_[0].capacity_sectors;
  for (const Shard& s : shards_) {
    min_capacity = std::min(min_capacity, s.capacity_sectors);
  }
  const uint64_t stripes_per_shard = min_capacity / options_.stripe_sectors;
  if (options_.placement == Placement::kStriped) {
    return shards_.size() * stripes_per_shard * options_.stripe_sectors;
  }
  // Hashed placement addresses shards by logical LBA, so any shard
  // must be able to back the whole volume.
  return stripes_per_shard * options_.stripe_sectors;
}

int ShardMap::ShardIndexForStripe(uint64_t stripe) const {
  REFLEX_CHECK(!shards_.empty());
  if (options_.placement == Placement::kStriped) {
    return static_cast<int>(stripe % shards_.size());
  }
  // Rendezvous hashing: the shard with the highest mixed weight wins.
  int best = 0;
  uint64_t best_weight = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const uint64_t weight =
        Mix(Mix(stripe ^ options_.seed) ^ shards_[i].id);
    if (i == 0 || weight > best_weight ||
        (weight == best_weight && shards_[i].id < shards_[best].id)) {
      best = static_cast<int>(i);
      best_weight = weight;
    }
  }
  return best;
}

std::vector<ShardExtent> ShardMap::Split(uint64_t lba,
                                         uint32_t sectors) const {
  // A zero-sector request touches no shard: it splits into no extents
  // (and so completes trivially) rather than tripping an assertion.
  if (sectors == 0) return {};
  REFLEX_CHECK(lba + sectors <= capacity_sectors());
  const uint64_t stripe_sectors = options_.stripe_sectors;
  const uint64_t num_shards = shards_.size();

  std::vector<ShardExtent> out;
  uint64_t cur = lba;
  uint32_t remaining = sectors;
  uint32_t buffer_offset = 0;
  while (remaining > 0) {
    const uint64_t stripe = cur / stripe_sectors;
    const uint32_t within = static_cast<uint32_t>(cur % stripe_sectors);
    const uint32_t run = std::min(
        remaining, static_cast<uint32_t>(stripe_sectors - within));
    const int index = ShardIndexForStripe(stripe);
    const uint64_t shard_lba =
        options_.placement == Placement::kStriped
            ? (stripe / num_shards) * stripe_sectors + within
            : cur;
    if (!out.empty() && out.back().shard_index == index &&
        out.back().shard_lba + out.back().sectors == shard_lba) {
      out.back().sectors += run;
    } else {
      out.push_back(ShardExtent{index, shards_[index].id, shard_lba, run,
                                buffer_offset});
    }
    cur += run;
    remaining -= run;
    buffer_offset += run;
  }
  return out;
}

}  // namespace reflex::cluster
