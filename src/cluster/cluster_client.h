#ifndef REFLEX_CLUSTER_CLUSTER_CLIENT_H_
#define REFLEX_CLUSTER_CLUSTER_CLIENT_H_

#include <memory>
#include <vector>

#include "client/flash_service.h"
#include "client/io_result.h"
#include "client/reflex_client.h"
#include "client/storage_backend.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/flash_cluster.h"
#include "sim/histogram.h"
#include "sim/task.h"

namespace reflex::cluster {

class ClusterClient;

/**
 * A tenant's I/O endpoint on a sharded cluster: the session owns one
 * TenantSession per shard and routes each I/O through the cluster's
 * ShardMap. A request contained in one stripe goes to a single shard;
 * one that crosses stripe boundaries is split into per-shard extents,
 * issued in parallel, and completes (scatter-gather) when the slowest
 * extent does -- the returned IoResult carries the first failing
 * status, or kOk if every extent succeeded.
 *
 * Sessions from ClusterClient::OpenSession() own the cluster-wide
 * tenant registration and unregister it on destruction (mirroring
 * client::TenantSession); AttachSession() leaves lifetime with the
 * caller.
 */
class ClusterSession {
 public:
  ~ClusterSession();
  ClusterSession(const ClusterSession&) = delete;
  ClusterSession& operator=(const ClusterSession&) = delete;

  /**
   * Reads `sectors` 512B sectors at logical `lba`. `data` (optional)
   * receives the payload, reassembled byte-exact across shards. The
   * future resolves when the last shard extent completes.
   */
  sim::Future<client::IoResult> Read(uint64_t lba, uint32_t sectors,
                                     uint8_t* data = nullptr);

  /** Writes; see Read(). */
  sim::Future<client::IoResult> Write(uint64_t lba, uint32_t sectors,
                                      uint8_t* data = nullptr);

  const ClusterTenant& tenant() const { return tenant_; }
  ClusterClient& client() { return client_; }
  client::TenantSession& shard_session(int shard) {
    return *shard_sessions_[shard];
  }

  /** Per-shard end-to-end latency of this session's *successful*
   * extents (ns). Failed extents are not recorded: their duration is
   * the failure path, not shard service latency. A multi-extent I/O
   * reports the first failing extent's status (logical-LBA order). */
  const sim::Histogram& shard_latency(int shard) const {
    return shard_latency_[shard];
  }

  int64_t requests_issued() const { return requests_issued_; }
  /** Requests that crossed a stripe boundary and were split. */
  int64_t requests_split() const { return requests_split_; }

 private:
  friend class ClusterClient;
  ClusterSession(ClusterClient& client, ClusterTenant tenant,
                 std::vector<std::unique_ptr<client::TenantSession>> sessions,
                 bool owns_tenant);

  sim::Future<client::IoResult> Submit(client::IoOp op, uint64_t lba,
                                       uint32_t sectors, uint8_t* data);
  sim::Task FanOut(std::vector<ShardExtent> extents, client::IoOp op,
                   uint8_t* data, sim::TimeNs issue_time,
                   sim::Promise<client::IoResult> promise);

  ClusterClient& client_;
  ClusterTenant tenant_;
  std::vector<std::unique_ptr<client::TenantSession>> shard_sessions_;
  std::vector<sim::Histogram> shard_latency_;
  bool owns_tenant_;
  int64_t requests_issued_ = 0;
  int64_t requests_split_ = 0;
};

/**
 * Client-side view of a FlashCluster: one ReflexClient connection pool
 * per shard, all on one client machine. Mirrors the single-server
 * ReflexClient API -- OpenSession registers a tenant cluster-wide (via
 * the ClusterControlPlane's all-or-nothing admission) and returns an
 * owning session; AttachSession opens a session over a tenant
 * registered elsewhere.
 */
class ClusterClient {
 public:
  struct Options {
    /**
     * Per-shard client shape (stack, connections per shard, retry).
     * Shard i's client perturbs the seed so shards draw independent
     * randomness.
     */
    client::ReflexClient::Options client;
  };

  ClusterClient(FlashCluster& cluster, net::Machine* machine,
                Options options = {});

  /**
   * Registers `slo` across every shard and returns a session owning
   * the registration; null (with `status` set) if any shard's
   * admission control rejects its share.
   */
  std::unique_ptr<ClusterSession> OpenSession(
      const core::SloSpec& slo, core::TenantClass cls,
      core::ReqStatus* status = nullptr);

  /** Session over an existing cluster-wide registration (not owned). */
  std::unique_ptr<ClusterSession> AttachSession(
      const ClusterTenant& tenant, core::ReqStatus* status = nullptr);

  FlashCluster& cluster() { return cluster_; }
  client::ReflexClient& shard_client(int shard) { return *clients_[shard]; }
  net::Machine* machine() { return machine_; }

 private:
  std::unique_ptr<ClusterSession> MakeSession(ClusterTenant tenant,
                                              bool owns_tenant,
                                              core::ReqStatus* status);

  FlashCluster& cluster_;
  net::Machine* machine_;
  Options options_;
  std::vector<std::unique_ptr<client::ReflexClient>> clients_;
};

/** FlashService adapter over a ClusterSession: lets every existing
 * workload driver (load generators, apps) run against the sharded
 * cluster unmodified. */
class ClusterFlashService : public client::FlashService {
 public:
  explicit ClusterFlashService(ClusterSession& session,
                               const char* name = "ReFlex cluster")
      : session_(session), name_(name) {}

  sim::Future<client::IoResult> SubmitIo(const client::IoDesc& io) override {
    return io.is_read() ? session_.Read(io.lba, io.sectors, io.data)
                        : session_.Write(io.lba, io.sectors, io.data);
  }

  const char* name() const override { return name_; }

 private:
  ClusterSession& session_;
  const char* name_;
};

/** Byte-addressed StorageBackend over a ClusterSession, so the
 * applications (FIO, graph engine, LSM store) run on the cluster the
 * same way they run on a single server. */
class ShardedStorageBackend : public client::StorageBackend {
 public:
  explicit ShardedStorageBackend(ClusterSession& session)
      : session_(session) {}

  sim::Future<client::IoResult> ReadBytes(uint64_t offset, uint32_t bytes,
                                          uint8_t* data) override {
    return session_.Read(offset / core::kSectorBytes,
                         SectorsFor(offset, bytes), data);
  }

  sim::Future<client::IoResult> WriteBytes(uint64_t offset, uint32_t bytes,
                                           const uint8_t* data) override {
    return session_.Write(offset / core::kSectorBytes,
                          SectorsFor(offset, bytes),
                          const_cast<uint8_t*>(data));
  }

  uint64_t CapacityBytes() const override {
    return session_.client().cluster().capacity_bytes();
  }

  const char* name() const override { return "ReFlex cluster"; }

 private:
  static uint32_t SectorsFor(uint64_t offset, uint32_t bytes) {
    const uint64_t first = offset / core::kSectorBytes;
    const uint64_t end =
        (offset + bytes + core::kSectorBytes - 1) / core::kSectorBytes;
    return static_cast<uint32_t>(end - first);
  }

  ClusterSession& session_;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_CLUSTER_CLIENT_H_
