#ifndef REFLEX_CLUSTER_CLUSTER_CLIENT_H_
#define REFLEX_CLUSTER_CLUSTER_CLIENT_H_

#include <coroutine>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "client/flash_service.h"
#include "client/io_result.h"
#include "client/io_session.h"
#include "client/reflex_client.h"
#include "client/storage_backend.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/flash_cluster.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/task.h"

namespace reflex::cluster {

class ClusterClient;

/**
 * How replicated reads choose among the R copies of an extent
 * (RackSched-style; writes always go to every live replica).
 */
enum class SteeringPolicy : uint8_t {
  /** Always the primary -- reproduces the unreplicated cluster. */
  kPrimaryOnly = 0,
  /** Power-of-two-choices over piggybacked queue-depth hints: sample
   * two distinct replicas, take the shallower queue. */
  kPowerOfTwo = 1,
  /** Scan all R replicas for the shallowest queue. */
  kFullScan = 2,
};

/** Stable name for a SteeringPolicy (scenario JSON, bench output). */
const char* SteeringPolicyName(SteeringPolicy policy);

/** Parses a SteeringPolicyName(); returns false on unknown names. */
bool SteeringPolicyFromName(const std::string& name, SteeringPolicy* out);

/**
 * A tenant's I/O endpoint on a sharded cluster: the session owns one
 * TenantSession per shard and routes each I/O through the cluster's
 * ShardMap. A request contained in one stripe goes to a single shard;
 * one that crosses stripe boundaries is split into per-shard extents,
 * issued in parallel, and completes (scatter-gather) when the slowest
 * extent does -- the returned IoResult carries the first failing
 * status, or kOk if every extent succeeded.
 *
 * With replication (ShardMapOptions::replication > 1) each extent has
 * R placements. Writes go to every replica and succeed if at least
 * one copy lands on a readable (non-dirty) replica -- replicas that
 * failed while another succeeded are marked dirty on the
 * ClusterClient and serve no reads until reinstated. Reads are
 * steered by the client's SteeringPolicy over per-shard queue-depth
 * hints, fail over to untried live replicas on error or timeout, and
 * fail closed (kDeviceError) when every replica of an extent is
 * dirty.
 *
 * Sessions from ClusterClient::OpenSession() own the cluster-wide
 * tenant registration and unregister it on destruction (mirroring
 * client::TenantSession); AttachSession() leaves lifetime with the
 * caller.
 */
class ClusterSession : public client::IoSession {
 public:
  ~ClusterSession() override;
  ClusterSession(const ClusterSession&) = delete;
  ClusterSession& operator=(const ClusterSession&) = delete;

  /**
   * Reads `sectors` 512B sectors at logical `lba`. `data` (optional)
   * receives the payload, reassembled byte-exact across shards. The
   * future resolves when the last shard extent completes. `lane` pins
   * sub-requests to one connection of every per-shard pool; -1 lets
   * each pool round-robin.
   */
  sim::Future<client::IoResult> Read(uint64_t lba, uint32_t sectors,
                                     uint8_t* data = nullptr,
                                     int lane = -1) override;

  /** Writes (to every live replica of each extent); see Read(). */
  sim::Future<client::IoResult> Write(uint64_t lba, uint32_t sectors,
                                      uint8_t* data = nullptr,
                                      int lane = -1) override;

  const ClusterTenant& tenant() const { return tenant_; }
  ClusterClient& client() { return client_; }
  client::TenantSession& shard_session(int shard) {
    return *shard_sessions_[shard];
  }

  // IoSession geometry: the logical volume the shard map exposes.
  uint32_t tenant_handle() const override { return tenant_.handles[0]; }
  int num_lanes() const override;
  uint64_t capacity_sectors() const override;
  uint32_t sector_bytes() const override;
  uint32_t sectors_per_page() const override;

  /** Per-shard end-to-end latency of this session's *successful*
   * sub-requests (ns), attributed to the shard that actually served
   * each one -- a read steered or failed over to a replica lands in
   * the replica's histogram, not the primary's. Failed sub-requests
   * are not recorded: their duration is the failure path, not shard
   * service latency. A multi-extent I/O reports the first failing
   * extent's status (logical-LBA order). */
  const sim::Histogram& shard_latency(int shard) const {
    return shard_latency_[shard];
  }

  /** Successful reads served by `shard` (steering-imbalance metric). */
  int64_t shard_reads_served(int shard) const {
    return shard_reads_served_[shard];
  }

  int64_t requests_issued() const { return requests_issued_; }
  /** Requests that crossed a stripe boundary and were split. */
  int64_t requests_split() const { return requests_split_; }
  /** Read sub-requests that failed over to another replica. */
  int64_t read_failovers() const { return read_failovers_; }
  /** Whole-request reissues after a kWrongShard map refresh. */
  int64_t wrong_shard_retries() const { return wrong_shard_retries_; }

 private:
  friend class ClusterClient;

  /** Bounded refresh-and-reissue budget for requests that race a map
   * flip. Exponential backoff (base below, doubling per attempt) sums
   * to ~3 ms -- comfortably past a migration's drain window. */
  static constexpr int kMaxWrongShardRetries = 6;
  static constexpr sim::TimeNs kWrongShardBackoffBase = sim::Micros(50);

  ClusterSession(ClusterClient& client, ClusterTenant tenant,
                 std::vector<std::unique_ptr<client::TenantSession>> sessions,
                 bool owns_tenant);

  sim::Future<client::IoResult> Submit(client::IoOp op, uint64_t lba,
                                       uint32_t sectors, uint8_t* data,
                                       int lane);
  /** Splits via the client's local map and fans the attempt out. */
  void Dispatch(client::IoOp op, uint64_t lba, uint32_t sectors,
                uint8_t* data, int lane, int attempt, sim::TimeNs issue_time,
                sim::Promise<client::IoResult> promise);
  /**
   * A sub-request came back kWrongShard: the routing map copy predates
   * a migration cutover. Refreshes the map, backs off (doubling per
   * attempt) and reissues the whole logical request; once the budget
   * is spent the kWrongShard surfaces to the caller.
   */
  sim::Task RetryWrongShard(client::IoOp op, uint64_t lba, uint32_t sectors,
                            uint8_t* data, int lane, int attempt,
                            sim::TimeNs issue_time,
                            sim::Promise<client::IoResult> promise);
  sim::Task FanOutRead(std::vector<ShardExtent> extents, uint8_t* data,
                       int lane, client::IoOp op, uint64_t lba,
                       uint32_t sectors, int attempt, sim::TimeNs issue_time,
                       sim::Promise<client::IoResult> promise);
  sim::Task FanOutWrite(std::vector<ShardExtent> extents, uint8_t* data,
                        int lane, client::IoOp op, uint64_t lba,
                        uint32_t sectors, int attempt, sim::TimeNs issue_time,
                        sim::Promise<client::IoResult> promise);

  /** Live (non-dirty) placements of `e`, primary first; empty when
   * every replica is marked dirty (reads then fail closed). */
  std::vector<ReplicaTarget> LiveTargets(const ShardExtent& e) const;

  /** Picks the steered first choice among `candidates` (index into
   * the vector). Draws from steer_rng_ only for power-of-two with
   * more than two candidates, so R=1 consumes no randomness. */
  size_t SteerChoice(const std::vector<ReplicaTarget>& candidates);

  ClusterClient& client_;
  ClusterTenant tenant_;
  /** Live FanOutRead/FanOutWrite/RetryWrongShard frames by id. Each
   * erases itself before finishing; whatever remains at teardown is
   * parked on a sub-I/O (or backoff Delay) that will never resolve and
   * is destroyed by ~ClusterSession. std::map for node stability --
   * the frames park SelfHandle pointers into the mapped values. */
  std::map<uint64_t, std::coroutine_handle<>> io_frames_;
  uint64_t next_frame_id_ = 0;
  std::vector<std::unique_ptr<client::TenantSession>> shard_sessions_;
  std::vector<sim::Histogram> shard_latency_;
  std::vector<int64_t> shard_reads_served_;
  sim::Rng steer_rng_;
  bool owns_tenant_;
  int64_t requests_issued_ = 0;
  int64_t requests_split_ = 0;
  int64_t read_failovers_ = 0;
  int64_t wrong_shard_retries_ = 0;
};

/**
 * Client-side view of a FlashCluster: one ReflexClient connection pool
 * per shard, all on one client machine. Mirrors the single-server
 * ReflexClient API -- OpenSession registers a tenant cluster-wide (via
 * the ClusterControlPlane's all-or-nothing admission) and returns an
 * owning session; AttachSession opens a session over a tenant
 * registered elsewhere.
 *
 * The client also owns the cluster-wide steering state shared by its
 * sessions: per-shard queue-depth hints (piggybacked by servers on
 * every response, decaying toward a prior when stale) and the dirty
 * set of replicas that missed a write and must not serve reads until
 * reinstated.
 */
class ClusterClient {
 public:
  struct Options {
    /**
     * Per-shard client shape (stack, connections per shard, retry).
     * Shard i's client perturbs the seed so shards draw independent
     * randomness.
     */
    client::ReflexClient::Options client;

    /** Read steering over replicas (ignored at replication == 1,
     * where every policy degenerates to the primary). */
    SteeringPolicy steering = SteeringPolicy::kPrimaryOnly;

    /**
     * Hint decay horizon: a shard's queue-depth hint interpolates
     * linearly back to `hint_prior` over this window since the last
     * response from that shard, so a silent (possibly dead) shard
     * neither repels nor attracts reads forever on stale evidence.
     */
    sim::TimeNs hint_stale_after = sim::Micros(500);

    /** Queue depth assumed for shards with no (fresh) hint. */
    double hint_prior = 0.0;
  };

  ClusterClient(FlashCluster& cluster, net::Machine* machine,
                Options options);
  /** Default options (primary-only steering). */
  ClusterClient(FlashCluster& cluster, net::Machine* machine);

  /**
   * Registers `slo` across every shard and returns a session owning
   * the registration; null (with `result` filled) if admission
   * rejects the SLO or post-admission session setup fails and rolls
   * the registration back.
   */
  std::unique_ptr<ClusterSession> OpenSession(
      const core::SloSpec& slo, core::TenantClass cls,
      AdmitResult* result = nullptr);

  /** Session over an existing cluster-wide registration (not owned). */
  std::unique_ptr<ClusterSession> AttachSession(
      const ClusterTenant& tenant, core::ReqStatus* status = nullptr);

  FlashCluster& cluster() { return cluster_; }
  client::ReflexClient& shard_client(int shard) { return *clients_[shard]; }
  net::Machine* machine() { return machine_; }
  const Options& options() const { return options_; }

  /**
   * The client's own routing copy of the cluster ShardMap, taken at
   * construction and on RefreshMap(). Sessions route through this copy
   * -- never the live master -- so a migration commit flips routing
   * only when the client refreshes, exactly like a real deployment
   * where clients cache the map and learn of moves via kWrongShard.
   */
  const ShardMap& local_map() const { return local_map_; }

  /** Re-copies the master map and restamps every shard client with
   * its epoch. Called by sessions on kWrongShard. */
  void RefreshMap();

  /**
   * Current steering estimate of `shard`'s queue depth: the last
   * piggybacked hint, decayed linearly toward Options::hint_prior
   * over Options::hint_stale_after.
   */
  double EffectiveQueueDepth(int shard) const;

  /**
   * Marks `shard` dirty as of `version` (a write version it missed):
   * the shard stops serving this client's reads and replicated writes
   * until ReinstateShard(), modeling a replica awaiting resync.
   */
  void MarkDirty(int shard, uint64_t version);
  bool IsDirty(int shard) const { return dirty_since_[shard] != 0; }
  /** First write version `shard` missed (0 when clean). */
  uint64_t dirty_since_version(int shard) const {
    return dirty_since_[shard];
  }
  /** Declares `shard` resynced (out-of-band) and steerable again. */
  void ReinstateShard(int shard) { dirty_since_[shard] = 0; }

  /** Monotonic stamp for replicated writes (dirty bookkeeping). */
  uint64_t NextWriteVersion() { return next_write_version_++; }

  /**
   * Floods `shard`'s hint with a penalty depth so steering avoids it
   * until a fresh response (or hint decay) rehabilitates it. Called
   * by sessions when a read on the shard times out.
   */
  void PenalizeShard(int shard);

 private:
  friend class ClusterSession;

  /** Penalty depth installed by PenalizeShard: far above any real
   * queue, so every live replica wins a steering comparison. */
  static constexpr double kPenaltyDepth = 1e9;

  struct HintState {
    double depth = 0.0;
    sim::TimeNs at = 0;
    bool seen = false;
  };

  std::unique_ptr<ClusterSession> MakeSession(ClusterTenant tenant,
                                              bool owns_tenant,
                                              AdmitResult* result);
  void ObserveHint(int shard, uint32_t depth);

  FlashCluster& cluster_;
  net::Machine* machine_;
  Options options_;
  ShardMap local_map_;
  std::vector<std::unique_ptr<client::ReflexClient>> clients_;
  std::vector<HintState> hints_;
  /** Per shard: 0 = clean, else the write version it first missed. */
  std::vector<uint64_t> dirty_since_;
  uint64_t next_write_version_ = 1;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_CLUSTER_CLIENT_H_
