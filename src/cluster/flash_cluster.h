#ifndef REFLEX_CLUSTER_FLASH_CLUSTER_H_
#define REFLEX_CLUSTER_FLASH_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/shard_map.h"
#include "core/reflex_server.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace reflex::cluster {

class ClusterControlPlane;

struct FlashClusterOptions {
  int num_shards = 4;

  /** Device model for every shard (each gets its own seeded instance). */
  flash::DeviceProfile profile = flash::DeviceProfile::DeviceA();

  /**
   * Cost-model calibration applied to every shard's scheduler (shards
   * run identical hardware; calibrate one device and share the result,
   * as an operator would).
   */
  flash::CalibrationResult calibration;

  /** Per-shard server shape (threads, QoS config, transport). */
  core::ServerOptions server;

  ShardMapOptions shard_map;

  /** Base seed; shard i's device uses seed + i. */
  uint64_t seed = 42;
};

/**
 * A sharded remote-Flash cluster: N independent ReflexServer instances
 * -- each with its own machine, FlashDevice and control plane -- in
 * one simulation, plus the ShardMap striping one logical volume across
 * them. The cluster is deliberately shared-nothing, matching the
 * paper's deployment model (ReFlex per Flash node, coordination only
 * at tenant registration time); cross-shard logic lives entirely in
 * the ClusterControlPlane and the client library.
 */
class FlashCluster {
 public:
  FlashCluster(sim::Simulator& sim, net::Network& net,
               FlashClusterOptions options);
  ~FlashCluster();

  FlashCluster(const FlashCluster&) = delete;
  FlashCluster& operator=(const FlashCluster&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  core::ReflexServer& server(int shard) { return *shards_[shard]->server; }
  flash::FlashDevice& device(int shard) { return *shards_[shard]->device; }
  net::Machine* machine(int shard) { return shards_[shard]->machine; }

  const ShardMap& shard_map() const { return shard_map_; }
  /** Mutable master map -- migration planning/commit only (the
   * MigrationCoordinator and ShardMap property tests). */
  ShardMap& mutable_shard_map() { return shard_map_; }
  ClusterControlPlane& control_plane() { return *control_plane_; }

  sim::Simulator& sim() { return sim_; }
  uint64_t capacity_bytes() const;

 private:
  struct Shard {
    net::Machine* machine = nullptr;
    std::unique_ptr<flash::FlashDevice> device;
    std::unique_ptr<core::ReflexServer> server;
  };

  sim::Simulator& sim_;
  FlashClusterOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ShardMap shard_map_;
  std::unique_ptr<ClusterControlPlane> control_plane_;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_FLASH_CLUSTER_H_
