#include "cluster/flash_cluster.h"

#include <string>

#include "cluster/cluster_control_plane.h"
#include "core/protocol.h"
#include "sim/logging.h"

namespace reflex::cluster {

FlashCluster::FlashCluster(sim::Simulator& sim, net::Network& net,
                           FlashClusterOptions options)
    : sim_(sim), options_(options), shard_map_(options.shard_map) {
  REFLEX_CHECK(options_.num_shards >= 1);
  REFLEX_CHECK(!options_.calibration.latency_curve.empty());
  for (int i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->machine = net.AddMachine("shard-" + std::to_string(i));
    shard->device = std::make_unique<flash::FlashDevice>(
        sim, options_.profile, options_.seed + static_cast<uint64_t>(i));
    shard->server = std::make_unique<core::ReflexServer>(
        sim, net, shard->machine, *shard->device, options_.calibration,
        options_.server);
    shard_map_.AddShard(static_cast<uint32_t>(i),
                        shard->device->profile().capacity_sectors);
    shards_.push_back(std::move(shard));
  }
  control_plane_ = std::make_unique<ClusterControlPlane>(*this);
}

FlashCluster::~FlashCluster() = default;

uint64_t FlashCluster::capacity_bytes() const {
  return shard_map_.capacity_sectors() * core::kSectorBytes;
}

}  // namespace reflex::cluster
