#ifndef REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_
#define REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_

#include <vector>

#include "core/protocol.h"
#include "core/tenant.h"
#include "obs/metrics.h"

namespace reflex::cluster {

class FlashCluster;

/**
 * A cluster-wide tenant: one per-shard tenant registration on every
 * shard, in shard order. Value type; pass it back to
 * ClusterControlPlane::UnregisterTenant (or let an owning
 * ClusterSession do it).
 */
struct ClusterTenant {
  std::vector<uint32_t> handles;
  core::SloSpec cluster_slo;
  core::SloSpec shard_slo;
  core::TenantClass cls = core::TenantClass::kBestEffort;

  bool valid() const { return !handles.empty(); }
};

/**
 * Typed outcome of cluster-wide admission (RegisterTenant /
 * ClusterClient::OpenSession). Distinguishes "the cluster has no
 * capacity for this SLO" from "one shard refused" -- the replication
 * control plane treats the former as a tenant problem and the latter
 * as a shard-health signal (e.g. a replica that is down or dirty and
 * should be excluded until re-registered).
 */
struct AdmitResult {
  enum class Kind : uint8_t {
    /** Admitted on every shard. */
    kAccepted = 0,
    /** A shard's token math rejected the per-shard share
     * (kOutOfResources): the cluster lacks capacity for the SLO. */
    kRejectedCapacity = 1,
    /** A shard refused for a non-capacity reason (connection refused,
     * ACL, dead replica); `shard` identifies it. */
    kRejectedShard = 2,
    /** Admission succeeded but post-admission setup (per-shard session
     * attach) failed and the registration was rolled back. */
    kRolledBack = 3,
  };

  Kind kind = Kind::kAccepted;
  /** Shard index the failure is attributed to; -1 when not tied to
   * one shard (accepted, or capacity exhausted cluster-wide). */
  int shard = -1;
  /** The underlying per-shard status code. */
  core::ReqStatus status = core::ReqStatus::kOk;

  bool ok() const { return kind == Kind::kAccepted; }
};

/** Stable name for an AdmitResult::Kind (logs, bench JSON). */
const char* AdmitKindName(AdmitResult::Kind kind);

/**
 * Cluster-wide admission control and metrics rollup.
 *
 * Admission splits a tenant's cluster SLO into equal per-shard shares
 * (ceil(iops / N); reads spread uniformly under striping) and admits
 * the tenant only if every shard's token math accepts its share --
 * all-or-nothing, with rollback of the shards already registered, so
 * a rejected tenant leaves no partial reservations behind.
 */
class ClusterControlPlane {
 public:
  explicit ClusterControlPlane(FlashCluster& cluster);

  /**
   * Registers `slo` across every shard. On rejection returns an
   * invalid ClusterTenant, fills `result` (optional) with the typed
   * reason, and unregisters any shards already admitted.
   */
  ClusterTenant RegisterTenant(const core::SloSpec& slo,
                               core::TenantClass cls,
                               AdmitResult* result = nullptr);

  /** Unregisters the tenant from every shard. */
  bool UnregisterTenant(const ClusterTenant& tenant);

  /** Per-shard share of a cluster SLO on an N-shard cluster. */
  static core::SloSpec ShardShare(const core::SloSpec& slo, int num_shards);

  /**
   * Aggregates per-shard dataplane, device and token statistics into
   * cluster rollups (cluster_* totals plus shard_*{shard=i} gauges)
   * and returns the registry.
   */
  obs::MetricsRegistry& SnapshotMetrics();

  obs::MetricsRegistry& metrics() { return metrics_; }

  int64_t tenants_admitted() const { return tenants_admitted_; }
  int64_t tenants_rejected() const { return tenants_rejected_; }

  /**
   * Currently-registered cluster tenants (admitted and not yet
   * unregistered). The simtest invariant probes enumerate these to
   * check that every tenant's per-shard shares sum to at least its
   * cluster grant with only ceil-rounding slack.
   */
  const std::vector<ClusterTenant>& active_tenants() const {
    return active_tenants_;
  }

 private:
  FlashCluster& cluster_;
  obs::MetricsRegistry metrics_;
  int64_t tenants_admitted_ = 0;
  int64_t tenants_rejected_ = 0;
  std::vector<ClusterTenant> active_tenants_;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_
