#ifndef REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_
#define REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_

#include <coroutine>
#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "core/tenant.h"
#include "obs/metrics.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::cluster {

class FlashCluster;
class MigrationCoordinator;

/**
 * A cluster-wide tenant: one per-shard tenant registration on every
 * shard, in shard order. Value type; pass it back to
 * ClusterControlPlane::UnregisterTenant (or let an owning
 * ClusterSession do it).
 */
struct ClusterTenant {
  std::vector<uint32_t> handles;
  core::SloSpec cluster_slo;
  core::SloSpec shard_slo;
  core::TenantClass cls = core::TenantClass::kBestEffort;

  bool valid() const { return !handles.empty(); }
};

/**
 * Typed outcome of cluster-wide admission (RegisterTenant /
 * ClusterClient::OpenSession). Distinguishes "the cluster has no
 * capacity for this SLO" from "one shard refused" -- the replication
 * control plane treats the former as a tenant problem and the latter
 * as a shard-health signal (e.g. a replica that is down or dirty and
 * should be excluded until re-registered).
 */
struct AdmitResult {
  enum class Kind : uint8_t {
    /** Admitted on every shard. */
    kAccepted = 0,
    /** A shard's token math rejected the per-shard share
     * (kOutOfResources): the cluster lacks capacity for the SLO. */
    kRejectedCapacity = 1,
    /** A shard refused for a non-capacity reason (connection refused,
     * ACL, dead replica); `shard` identifies it. */
    kRejectedShard = 2,
    /** Admission succeeded but post-admission setup (per-shard session
     * attach) failed and the registration was rolled back. */
    kRolledBack = 3,
  };

  Kind kind = Kind::kAccepted;
  /** Shard index the failure is attributed to; -1 when not tied to
   * one shard (accepted, or capacity exhausted cluster-wide). */
  int shard = -1;
  /** The underlying per-shard status code. */
  core::ReqStatus status = core::ReqStatus::kOk;

  bool ok() const { return kind == Kind::kAccepted; }
};

/** Stable name for an AdmitResult::Kind (logs, bench JSON). */
const char* AdmitKindName(AdmitResult::Kind kind);

/**
 * Cluster-wide admission control and metrics rollup.
 *
 * Admission splits a tenant's cluster SLO into equal per-shard shares
 * (ceil(iops / N); reads spread uniformly under striping) and admits
 * the tenant only if every shard's token math accepts its share --
 * all-or-nothing, with rollback of the shards already registered, so
 * a rejected tenant leaves no partial reservations behind.
 */
class ClusterControlPlane {
 public:
  /**
   * SLO-aware elastic scaling (DESIGN.md section 17). The autoscaler
   * samples two per-shard load signals each period -- token-spend rate
   * against the calibrated device token capacity, and the dataplane
   * queue-depth hint -- and sizes the *active server set*: the prefix
   * of shards allowed to hold the configured hot stripe range. Growing
   * spreads the hot stripes over one more shard; shrinking packs them
   * back onto fewer. Placement changes are ordinary live migrations
   * through the MigrationCoordinator, so scaling is hitless; the
   * active set never drops below the map's replication factor (every
   * stripe keeps R distinct shards) nor below min_active.
   */
  struct AutoscalerOptions {
    sim::TimeNs period = sim::Millis(2);
    /** Grow when any active shard's token utilization exceeds this. */
    double high_utilization = 0.70;
    /** Shrink when every active shard sits below this. */
    double low_utilization = 0.30;
    /** Consecutive all-below-low periods required before a shrink
     * actually fires. Growing is eager (SLO pressure), shrinking is
     * damped: one quiet sample right after a grow overshoot must not
     * bounce the fleet straight back down. */
    int shrink_persistence = 3;
    /** Grow when any active shard's queue-depth hint exceeds this
     * (catches SLO pressure the token signal lags on). */
    uint32_t high_queue_depth = 64;
    /** Grow whenever any active shard rejected at least this many
     * requests on QoS (neg-limit hits) during the period. Rejects keep
     * both other signals quiet -- served throughput plateaus and the
     * queue stays short -- so without this an overloaded-but-rejecting
     * fleet reads as healthy and never scales out. */
    int64_t high_rejects = 1;
    int min_active = 1;
    /** Hot stripe range the active set serves; replica ordinal k of
     * stripe s is placed on active shard (s + k) mod active. */
    uint64_t hot_first_stripe = 0;
    uint64_t hot_stripes = 64;
  };

  struct AutoscalerStats {
    int64_t evaluations = 0;
    int64_t grow_events = 0;
    int64_t shrink_events = 0;
    /** Migration batches issued (a resize can plan an empty batch). */
    int64_t rebalances = 0;
    int64_t rebalances_failed = 0;
  };

  explicit ClusterControlPlane(FlashCluster& cluster);
  ~ClusterControlPlane();

  /**
   * Registers `slo` across every shard. On rejection returns an
   * invalid ClusterTenant, fills `result` (optional) with the typed
   * reason, and unregisters any shards already admitted.
   */
  ClusterTenant RegisterTenant(const core::SloSpec& slo,
                               core::TenantClass cls,
                               AdmitResult* result = nullptr);

  /** Unregisters the tenant from every shard. */
  bool UnregisterTenant(const ClusterTenant& tenant);

  /** Per-shard share of a cluster SLO on an N-shard cluster. */
  static core::SloSpec ShardShare(const core::SloSpec& slo, int num_shards);

  /**
   * Aggregates per-shard dataplane, device and token statistics into
   * cluster rollups (cluster_* totals plus shard_*{shard=i} gauges)
   * and returns the registry.
   */
  obs::MetricsRegistry& SnapshotMetrics();

  obs::MetricsRegistry& metrics() { return metrics_; }

  int64_t tenants_admitted() const { return tenants_admitted_; }
  int64_t tenants_rejected() const { return tenants_rejected_; }

  /**
   * Currently-registered cluster tenants (admitted and not yet
   * unregistered). The simtest invariant probes enumerate these to
   * check that every tenant's per-shard shares sum to at least its
   * cluster grant with only ceil-rounding slack.
   */
  const std::vector<ClusterTenant>& active_tenants() const {
    return active_tenants_;
  }

  /**
   * Starts the periodic scaling loop. `coordinator` must outlive the
   * loop (call StopAutoscaler -- or end the simulation -- before
   * destroying it). One loop at a time.
   */
  void StartAutoscaler(MigrationCoordinator& coordinator,
                       AutoscalerOptions options);

  /** Stops the loop; it exits at its next wakeup. */
  void StopAutoscaler() { autoscaler_running_ = false; }

  /** Shards currently in the active serving set (always the prefix
   * [0, active_shards) of the shard list). */
  int active_shards() const { return active_shards_; }

  const AutoscalerStats& autoscaler_stats() const {
    return autoscaler_stats_;
  }

 private:
  sim::Task AutoscaleLoop();
  /** Token utilization + max queue-depth hint of shard `i` since the
   * previous sample, `dt` ago. */
  double SampleShardUtilization(int i, sim::TimeNs dt,
                                uint32_t* queue_depth);
  /** QoS rejects (tenant neg-limit hits) on shard `i` since the
   * previous sample. */
  int64_t SampleShardRejects(int i);

  FlashCluster& cluster_;
  obs::MetricsRegistry metrics_;
  int64_t tenants_admitted_ = 0;
  int64_t tenants_rejected_ = 0;
  std::vector<ClusterTenant> active_tenants_;

  // --- Autoscaler state ---
  MigrationCoordinator* autoscaler_coordinator_ = nullptr;
  AutoscalerOptions autoscaler_options_;
  AutoscalerStats autoscaler_stats_;
  bool autoscaler_running_ = false;
  int active_shards_ = 0;
  /** Previous tokens_spent_total sample per shard. */
  std::vector<double> prev_tokens_spent_;
  /** Previous summed tenant neg_limit_hits sample per shard. */
  std::vector<int64_t> prev_neg_hits_;
  /** Loop frame parked on its Delay at teardown (simulation over);
   * destroyed by ~ClusterControlPlane. */
  std::coroutine_handle<> autoscaler_handle_;
  bool autoscaler_active_ = false;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_CLUSTER_CONTROL_PLANE_H_
