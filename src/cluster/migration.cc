#include "cluster/migration.h"

#include <algorithm>
#include <numeric>

#include "core/slo.h"
#include "sim/logging.h"

namespace reflex::cluster {

MigrationCoordinator::MigrationCoordinator(FlashCluster& cluster,
                                           net::Network& net, Options options)
    : cluster_(cluster),
      machine_(net.AddMachine("migrator")),
      options_(options) {
  paths_.resize(static_cast<size_t>(cluster_.num_shards()));
}

MigrationCoordinator::~MigrationCoordinator() {
  // Frames parked mid-await (simulation ended during a migration)
  // would otherwise leak: suspend_never final_suspend means nobody but
  // us can reach them. Workers first -- they reference the barrier in
  // the batch frame and must never outlive it.
  for (auto& [id, handle] : copy_handles_) {
    if (handle) handle.destroy();
  }
  copy_handles_.clear();
  if (batch_active_ && batch_handle_) {
    batch_active_ = false;
    batch_handle_.destroy();
  }
}

sim::Task MigrationCoordinator::CopyWorker(MigrationAssignment a, int gate_id,
                                           uint32_t stripe_sectors,
                                           bool count_recopy,
                                           sim::Barrier* barrier,
                                           bool* any_failed) {
  const uint64_t id = next_copy_id_++;
  co_await sim::SelfHandle(&copy_handles_[id]);
  sim::Simulator& sim = cluster_.sim();
  std::vector<uint8_t> buf(static_cast<size_t>(stripe_sectors) *
                           CopySession(a.from.shard_index)->sector_bytes());
  // Clear the dirty bit before reading: a write that lands during the
  // copy re-dirties the gate and forces another round.
  if (core::RangeGate* gate =
          cluster_.server(a.from.shard_index).FindRangeGate(gate_id)) {
    gate->dirty = false;
  }
  bool copied = false;
  for (int attempt = 0; attempt <= options_.max_copy_retries && !copied;
       ++attempt) {
    if (attempt > 0) {
      co_await sim::Delay(sim, options_.retry.backoff_base);
    }
    client::IoResult r = co_await CopySession(a.from.shard_index)
                             ->Read(a.from.shard_lba, stripe_sectors,
                                    buf.data());
    ++stats_.copy_ios;
    if (!r.ok()) continue;
    client::IoResult w = co_await CopySession(a.to.shard_index)
                             ->Write(a.to.shard_lba, stripe_sectors,
                                     buf.data());
    ++stats_.copy_ios;
    copied = w.ok();
  }
  if (!copied) {
    *any_failed = true;
  } else if (count_recopy) {
    ++stats_.dirty_recopies;
  }
  copy_handles_.erase(id);
  barrier->Arrive();
}

client::TenantSession* MigrationCoordinator::CopySession(int index) {
  ShardPath& path = paths_[static_cast<size_t>(index)];
  if (path.session == nullptr) {
    client::ReflexClient::Options copts;
    copts.num_connections = 1;
    copts.seed = 0xC0117 + static_cast<uint64_t>(index);
    copts.retry = options_.retry;
    path.client = std::make_unique<client::ReflexClient>(
        cluster_.sim(), cluster_.server(index), machine_, copts);
    // Copy traffic rides a best-effort tenant: it only ever gets spare
    // tokens, so a migration cannot break a co-located LC tenant's SLO.
    core::ReqStatus status = core::ReqStatus::kOk;
    path.session = path.client->OpenSession(
        core::SloSpec(), core::TenantClass::kBestEffort, &status);
    REFLEX_CHECK(path.session != nullptr);
  }
  return path.session.get();
}

sim::Future<bool> MigrationCoordinator::MigrateRange(int source, int target,
                                                     uint64_t first_stripe,
                                                     uint64_t count) {
  return MigrateAssignments(cluster_.mutable_shard_map().PlanRangeMigration(
      source, target, first_stripe, count));
}

sim::Future<bool> MigrationCoordinator::MigrateAssignments(
    std::vector<MigrationAssignment> plan) {
  sim::Promise<bool> done(cluster_.sim());
  auto future = done.GetFuture();
  if (plan.empty()) {
    done.Set(false);
    return future;
  }
  if (busy_) {
    // One batch at a time: a second caller (e.g. a scheduled migration
    // racing the autoscaler) is refused, not queued -- its reserved
    // slots are released so the plan leaves no trace.
    cluster_.mutable_shard_map().AbortMigration(plan);
    done.Set(false);
    return future;
  }
  busy_ = true;
  RunBatch(std::move(plan), std::move(done));
  return future;
}

sim::Task MigrationCoordinator::RunBatch(std::vector<MigrationAssignment> plan,
                                         sim::Promise<bool> done) {
  co_await sim::SelfHandle(&batch_handle_);
  batch_active_ = true;

  sim::Simulator& sim = cluster_.sim();
  ShardMap& map = cluster_.mutable_shard_map();
  const uint32_t stripe_sectors = map.options().stripe_sectors;
  ++stats_.migrations_started;

  // Gate every moving placement on its source shard before the first
  // copy I/O: from here on, any client write into the range is either
  // observed (dirty bit + in-flight count) or, later, bounced.
  std::vector<int> gate_ids(plan.size(), -1);
  for (size_t i = 0; i < plan.size(); ++i) {
    gate_ids[i] = cluster_.server(plan[i].from.shard_index)
                      .AddRangeGate(plan[i].from.shard_lba, stripe_sectors);
  }
  auto gate_of = [&](size_t i) -> core::RangeGate* {
    return cluster_.server(plan[i].from.shard_index)
        .FindRangeGate(gate_ids[i]);
  };

  bool failed = false;
  bool draining = false;
  int rounds = 0;
  // Worklist of plan indices to copy this round; round 0 copies
  // everything, later rounds only what client writes dirtied.
  std::vector<size_t> work(plan.size());
  std::iota(work.begin(), work.end(), size_t{0});

  while (!work.empty() && !failed) {
    // Fan the round out copy_concurrency stripes at a time, joining
    // each wave on a barrier before launching the next.
    const auto width =
        static_cast<size_t>(std::max(1, options_.copy_concurrency));
    for (size_t base = 0; base < work.size() && !failed; base += width) {
      const size_t wave = std::min(width, work.size() - base);
      sim::Barrier barrier(sim, static_cast<int64_t>(wave));
      for (size_t j = 0; j < wave; ++j) {
        const size_t idx = work[base + j];
        CopyWorker(plan[idx], gate_ids[idx], stripe_sectors, rounds > 0,
                   &barrier, &failed);
      }
      co_await barrier.Done();
    }
    if (failed) break;

    if (rounds == 0 && before_cutover) {
      // Deterministic race point for tests: a write issued here lands
      // after the initial copy and must still reach the target.
      (void)co_await before_cutover();
    }
    ++rounds;

    // Next worklist: whatever client writes dirtied meanwhile. The
    // drop_forwarded_write mutation pretends nothing did -- those
    // writes are silently lost at cutover, which the simtest oracle
    // must catch as a stale read.
    work.clear();
    if (!options_.mutate_drop_forwarded_write) {
      for (size_t i = 0; i < plan.size(); ++i) {
        core::RangeGate* gate = gate_of(i);
        if (gate != nullptr && gate->dirty) work.push_back(i);
      }
    }
    if (!work.empty() && !draining && rounds <= options_.max_dirty_rounds) {
      continue;  // another concurrent recopy round, writes still flow
    }
    if (!draining) {
      // Convergence (or round budget spent): stop the churn. Writes
      // into the range now bounce with retryable kWrongShard; reads
      // still serve from the source.
      draining = true;
      for (size_t i = 0; i < plan.size(); ++i) {
        if (core::RangeGate* gate = gate_of(i)) {
          gate->state = core::RangeGateState::kDraining;
        }
      }
      // drain_timeout bounds *stall*, not total drain time: on a
      // backlogged source a counted write can sit behind a long token
      // queue, and an absolute deadline would abort every grow attempt
      // exactly when the fleet most needs one. As long as the in-flight
      // count keeps falling the drain is making progress and may
      // continue; only a count frozen for the full timeout (a write
      // that will never complete) fails the batch.
      sim::TimeNs stalled = 0;
      uint32_t last_inflight = 0;
      for (bool first = true;; first = false) {
        uint32_t inflight = 0;
        for (size_t i = 0; i < plan.size(); ++i) {
          core::RangeGate* gate = gate_of(i);
          if (gate != nullptr) inflight += gate->inflight_writes;
        }
        if (inflight == 0) break;
        if (first || inflight < last_inflight) {
          stalled = 0;
        } else if (stalled >= options_.drain_timeout) {
          failed = true;  // a counted write never completed; bail out
          break;
        }
        last_inflight = inflight;
        co_await sim::Delay(sim, options_.drain_poll_interval);
        stalled += options_.drain_poll_interval;
      }
      if (failed) break;
      // One last pass over anything dirtied between the last recopy
      // and the drain taking effect; no new writes can land now.
      work.clear();
      if (!options_.mutate_drop_forwarded_write) {
        for (size_t i = 0; i < plan.size(); ++i) {
          core::RangeGate* gate = gate_of(i);
          if (gate != nullptr && gate->dirty) work.push_back(i);
        }
      }
      continue;
    }
    // Already draining: bounced writes cannot dirty gates, so the
    // rebuilt worklist is empty and the loop exits.
  }

  if (failed) {
    // Abort is always safe: the master map never changed, so no client
    // ever routed to the target. Release gates and reserved slots; the
    // source stays authoritative.
    for (size_t i = 0; i < plan.size(); ++i) {
      cluster_.server(plan[i].from.shard_index).RemoveRangeGate(gate_ids[i]);
    }
    map.AbortMigration(plan);
    ++stats_.migrations_aborted;
  } else {
    // Cutover: one atomic map flip, then the moved ranges reject any
    // request still routed by a pre-cutover map copy.
    map.CommitMigration(plan);
    const uint64_t cutover_epoch = map.epoch();
    for (size_t i = 0; i < plan.size(); ++i) {
      if (options_.mutate_serve_premigration_range) {
        // Mutation: forget the range moved. The source happily serves
        // stale-mapped traffic with pre-migration data.
        cluster_.server(plan[i].from.shard_index)
            .RemoveRangeGate(gate_ids[i]);
        continue;
      }
      if (core::RangeGate* gate = gate_of(i)) {
        gate->state = core::RangeGateState::kMoved;
        gate->min_epoch = cutover_epoch;
        gate->dirty = false;
      }
    }
    ++stats_.migrations_committed;
    stats_.stripes_moved += static_cast<int64_t>(plan.size());
  }

  busy_ = false;
  batch_handle_ = nullptr;
  batch_active_ = false;
  done.Set(!failed);
}

}  // namespace reflex::cluster
