#ifndef REFLEX_CLUSTER_MIGRATION_H_
#define REFLEX_CLUSTER_MIGRATION_H_

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "client/io_result.h"
#include "client/reflex_client.h"
#include "cluster/flash_cluster.h"
#include "cluster/shard_map.h"
#include "net/network.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::cluster {

/**
 * Drives live sector-range migration over a FlashCluster (DESIGN.md
 * section 17). A migration batch is copy-then-forward:
 *
 *  1. Plan: ShardMap::PlanStripeMoves reserves landing slots on the
 *     target shards (the master map is untouched -- clients keep
 *     routing to the source).
 *  2. Gate: every moving placement gets a kCopying range gate on its
 *     source shard. Client writes still land there, but each one
 *     marks the gate dirty and is counted in flight.
 *  3. Copy: the coordinator streams every stripe source -> target
 *     through ordinary dataplane I/O (best-effort class, so copy
 *     traffic cannot eat latency-critical token reservations).
 *  4. Recopy: stripes whose gate went dirty during the copy are
 *     copied again (dirty-tracking is how "dual-written" versions
 *     reach the target without a client-visible write path change).
 *  5. Drain: gates escalate to kDraining -- new writes bounce with
 *     retryable kWrongShard while reads still serve -- and the
 *     coordinator waits for counted in-flight writes to quiesce, then
 *     runs the final dirty recopy.
 *  6. Cutover: ShardMap::CommitMigration flips every override
 *     atomically and bumps the map epoch; gates become kMoved with
 *     min_epoch = the new epoch, so requests routed by a pre-cutover
 *     map copy are bounced (kWrongShard) into a client map refresh,
 *     while fresh traffic -- including later reuse of the same slots
 *     -- passes.
 *
 * Any persistent copy failure aborts instead: gates and reserved
 * slots are released, the master map never changes, and the source
 * stays authoritative -- an abort is always safe because no client
 * ever routed to the target.
 *
 * One batch runs at a time (busy()); the autoscaler serializes its
 * rebalances behind this.
 */
class MigrationCoordinator {
 public:
  struct Options {
    /** Attempts per stripe copy I/O before the batch aborts. */
    int max_copy_retries = 3;
    /** Stripe copies in flight at once. Copy traffic runs at
     * best-effort priority, so on a busy source shard a sequential
     * QD-1 stream stretches a rebalance across tens of milliseconds --
     * exactly when an autoscaler grow most needs it finished. */
    int copy_concurrency = 8;
    /** Dirty-recopy rounds before escalating to drain regardless. */
    int max_dirty_rounds = 3;
    /** Poll interval while waiting for in-flight writes to quiesce. */
    sim::TimeNs drain_poll_interval = sim::Micros(20);
    /** Drain wait budget; exceeding it aborts the batch. */
    sim::TimeNs drain_timeout = sim::Millis(5);
    /** Shape of the coordinator's per-shard copy clients. Timeouts
     * must stay enabled so a dead shard aborts the batch instead of
     * parking it forever. */
    client::ReflexClient::RetryPolicy retry = DefaultRetry();

    static client::ReflexClient::RetryPolicy DefaultRetry() {
      client::ReflexClient::RetryPolicy retry;
      retry.request_timeout = sim::Millis(2);
      retry.max_retries = 3;
      retry.backoff_base = sim::Micros(100);
      return retry;
    }

    // --- Planted-mutation canaries (simtest only; see runner.h) ---
    /** Skip every dirty recopy: a write admitted during the copy is
     * silently lost at cutover. The consistency oracle must catch
     * the resulting stale read. */
    bool mutate_drop_forwarded_write = false;
    /** Remove the gates at cutover instead of escalating to kMoved:
     * the source keeps answering stale-mapped requests with
     * pre-migration data. The oracle must catch it. */
    bool mutate_serve_premigration_range = false;
  };

  struct Stats {
    int64_t migrations_started = 0;
    int64_t migrations_committed = 0;
    int64_t migrations_aborted = 0;
    int64_t stripes_moved = 0;
    int64_t copy_ios = 0;
    int64_t dirty_recopies = 0;
  };

  MigrationCoordinator(FlashCluster& cluster, net::Network& net,
                       Options options);
  MigrationCoordinator(FlashCluster& cluster, net::Network& net)
      : MigrationCoordinator(cluster, net, Options()) {}
  ~MigrationCoordinator();

  MigrationCoordinator(const MigrationCoordinator&) = delete;
  MigrationCoordinator& operator=(const MigrationCoordinator&) = delete;

  /**
   * Test hook: awaited after the initial copy pass, before the
   * dirty-recopy/drain/cutover sequence. Lets the simtest runner race
   * a client write against a migration at a deterministic point.
   */
  std::function<sim::Future<client::IoResult>()> before_cutover;

  /**
   * Migrates every placement stripes [first_stripe, first+count) have
   * on `source` over to `target`. Resolves true on commit, false on
   * abort (including an empty plan). One batch at a time.
   */
  sim::Future<bool> MigrateRange(int source, int target,
                                 uint64_t first_stripe, uint64_t count);

  /** Runs an already-planned batch (autoscaler rebalances). The plan
   * must come from this cluster's master map. */
  sim::Future<bool> MigrateAssignments(std::vector<MigrationAssignment> plan);

  bool busy() const { return busy_; }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  /** Lazily opens the copy session on shard `index`. */
  client::TenantSession* CopySession(int index);

  /** Batch driver coroutine. Its frame -- and the frames of any
   * CopyWorker fan-out still parked on copy I/O -- are tracked
   * (batch_handle_, copy_handles_) so a simulation that ends
   * mid-migration leaves only frames the destructor can reclaim. */
  sim::Task RunBatch(std::vector<MigrationAssignment> plan,
                     sim::Promise<bool> done);

  /** Copies one assignment source -> target (with per-I/O retries),
   * reports failure through `any_failed`, and arrives at `barrier`.
   * Both outparams live in the RunBatch frame, which stays parked on
   * the barrier until every worker of the wave has arrived. */
  sim::Task CopyWorker(MigrationAssignment a, int gate_id,
                       uint32_t stripe_sectors, bool count_recopy,
                       sim::Barrier* barrier, bool* any_failed);

  FlashCluster& cluster_;
  net::Machine* machine_;
  Options options_;
  Stats stats_;
  bool busy_ = false;

  /** Per-shard copy path: a best-effort tenant registered out of band
   * plus a client/session pair, opened on first use. */
  struct ShardPath {
    std::unique_ptr<client::ReflexClient> client;
    std::unique_ptr<client::TenantSession> session;
  };
  std::vector<ShardPath> paths_;

  /** Live RunBatch frame (parked on an await at teardown if the
   * simulation ended mid-migration); destroyed by the destructor. */
  std::coroutine_handle<> batch_handle_;
  bool batch_active_ = false;
  /** Live CopyWorker frames by id; each erases itself before
   * finishing, so whatever remains at teardown is parked on a copy
   * I/O that will never complete. std::map for node stability -- the
   * workers park SelfHandle pointers into the mapped values. */
  std::map<uint64_t, std::coroutine_handle<>> copy_handles_;
  uint64_t next_copy_id_ = 0;
};

}  // namespace reflex::cluster

#endif  // REFLEX_CLUSTER_MIGRATION_H_
