#include "cluster/cluster_client.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace reflex::cluster {

const char* SteeringPolicyName(SteeringPolicy policy) {
  switch (policy) {
    case SteeringPolicy::kPrimaryOnly:
      return "primary_only";
    case SteeringPolicy::kPowerOfTwo:
      return "power_of_two";
    case SteeringPolicy::kFullScan:
      return "full_scan";
  }
  return "unknown";
}

bool SteeringPolicyFromName(const std::string& name, SteeringPolicy* out) {
  if (name == "primary_only") {
    *out = SteeringPolicy::kPrimaryOnly;
  } else if (name == "power_of_two") {
    *out = SteeringPolicy::kPowerOfTwo;
  } else if (name == "full_scan") {
    *out = SteeringPolicy::kFullScan;
  } else {
    return false;
  }
  return true;
}

ClusterSession::ClusterSession(
    ClusterClient& client, ClusterTenant tenant,
    std::vector<std::unique_ptr<client::TenantSession>> sessions,
    bool owns_tenant)
    : client_(client),
      tenant_(std::move(tenant)),
      shard_sessions_(std::move(sessions)),
      shard_latency_(shard_sessions_.size()),
      shard_reads_served_(shard_sessions_.size(), 0),
      steer_rng_(client.options().client.seed, "cluster.steering"),
      owns_tenant_(owns_tenant) {}

ClusterSession::~ClusterSession() {
  // Frames parked mid-await (session destroyed with I/O in flight, or
  // the simulation ended first) never self-destruct: suspend_never
  // final suspend means a frame frees itself only by running to the
  // end of its body. Destroying one here runs its local destructors
  // but not its body, so io_frames_ is not mutated mid-iteration.
  for (auto& [id, handle] : io_frames_) {
    if (handle) handle.destroy();
  }
  io_frames_.clear();
  if (owns_tenant_) {
    // Drop the per-shard sessions first: they do not own the
    // registrations, so the cluster-wide unregister below is the only
    // teardown.
    shard_sessions_.clear();
    client_.cluster().control_plane().UnregisterTenant(tenant_);
  }
}

int ClusterSession::num_lanes() const {
  return shard_sessions_.empty() ? 1 : shard_sessions_[0]->num_lanes();
}

uint64_t ClusterSession::capacity_sectors() const {
  // The local routing copy (migration never changes capacity, so this
  // equals the master's).
  return client_.local_map().capacity_sectors();
}

uint32_t ClusterSession::sector_bytes() const { return core::kSectorBytes; }

uint32_t ClusterSession::sectors_per_page() const {
  return client_.cluster().device(0).profile().SectorsPerPage();
}

sim::Future<client::IoResult> ClusterSession::Read(uint64_t lba,
                                                   uint32_t sectors,
                                                   uint8_t* data, int lane) {
  return Submit(client::IoOp::kRead, lba, sectors, data, lane);
}

sim::Future<client::IoResult> ClusterSession::Write(uint64_t lba,
                                                    uint32_t sectors,
                                                    uint8_t* data,
                                                    int lane) {
  return Submit(client::IoOp::kWrite, lba, sectors, data, lane);
}

sim::Future<client::IoResult> ClusterSession::Submit(client::IoOp op,
                                                     uint64_t lba,
                                                     uint32_t sectors,
                                                     uint8_t* data,
                                                     int lane) {
  ++requests_issued_;
  sim::Simulator& sim = client_.cluster().sim();
  sim::Promise<client::IoResult> promise(sim);
  auto future = promise.GetFuture();
  Dispatch(op, lba, sectors, data, lane, /*attempt=*/0, sim.Now(),
           std::move(promise));
  return future;
}

void ClusterSession::Dispatch(client::IoOp op, uint64_t lba,
                              uint32_t sectors, uint8_t* data, int lane,
                              int attempt, sim::TimeNs issue_time,
                              sim::Promise<client::IoResult> promise) {
  // Route through the client's local map copy: a migration that
  // commits on the master is invisible here until RefreshMap(), which
  // is exactly the staleness kWrongShard exists to catch.
  std::vector<ShardExtent> extents = client_.local_map().Split(lba, sectors);
  if (attempt == 0 && extents.size() > 1) ++requests_split_;
  if (op == client::IoOp::kRead) {
    FanOutRead(std::move(extents), data, lane, op, lba, sectors, attempt,
               issue_time, std::move(promise));
  } else {
    FanOutWrite(std::move(extents), data, lane, op, lba, sectors, attempt,
                issue_time, std::move(promise));
  }
}

sim::Task ClusterSession::RetryWrongShard(
    client::IoOp op, uint64_t lba, uint32_t sectors, uint8_t* data, int lane,
    int attempt, sim::TimeNs issue_time,
    sim::Promise<client::IoResult> promise) {
  const uint64_t frame_id = next_frame_id_++;
  co_await sim::SelfHandle(&io_frames_[frame_id]);
  ++wrong_shard_retries_;
  client_.RefreshMap();
  // Doubling backoff: early retries catch a cutover that already
  // committed (refresh suffices); later ones outwait a drain window
  // that is still bouncing writes.
  co_await sim::Delay(client_.cluster().sim(),
                      kWrongShardBackoffBase << attempt);
  Dispatch(op, lba, sectors, data, lane, attempt + 1, issue_time,
           std::move(promise));
  io_frames_.erase(frame_id);
}

std::vector<ReplicaTarget> ClusterSession::LiveTargets(
    const ShardExtent& e) const {
  std::vector<ReplicaTarget> all = e.AllTargets();
  std::vector<ReplicaTarget> live;
  live.reserve(all.size());
  for (const ReplicaTarget& t : all) {
    if (!client_.IsDirty(t.shard_index)) live.push_back(t);
  }
  // May be empty when every placement is dirty: reads must then fail
  // closed -- a dirty copy has missed a committed write, so serving it
  // would return stale data as if it were current.
  return live;
}

size_t ClusterSession::SteerChoice(
    const std::vector<ReplicaTarget>& candidates) {
  const size_t n = candidates.size();
  if (n == 1) return 0;
  // Shallower estimated queue wins; ties break by shard id so the
  // choice is deterministic for identical hints.
  auto better = [this, &candidates](size_t a, size_t b) {
    const double da = client_.EffectiveQueueDepth(candidates[a].shard_index);
    const double db = client_.EffectiveQueueDepth(candidates[b].shard_index);
    if (da != db) return da < db;
    return candidates[a].shard_id < candidates[b].shard_id;
  };
  switch (client_.options().steering) {
    case SteeringPolicy::kPrimaryOnly:
      return 0;
    case SteeringPolicy::kFullScan: {
      size_t best = 0;
      for (size_t i = 1; i < n; ++i) {
        if (better(i, best)) best = i;
      }
      return best;
    }
    case SteeringPolicy::kPowerOfTwo: {
      if (n <= 2) return better(0, 1) ? 0 : 1;
      // Two distinct uniform draws; the RNG is consumed only on this
      // path, so R<=2 configurations draw nothing and stay
      // bit-identical to their unreplicated runs.
      size_t i = static_cast<size_t>(steer_rng_.NextBounded(n));
      size_t j = static_cast<size_t>(steer_rng_.NextBounded(n - 1));
      if (j >= i) ++j;
      return better(i, j) ? i : j;
    }
  }
  return 0;
}

sim::Task ClusterSession::FanOutRead(std::vector<ShardExtent> extents,
                                     uint8_t* data, int lane,
                                     client::IoOp op, uint64_t lba,
                                     uint32_t sectors, int attempt,
                                     sim::TimeNs issue_time,
                                     sim::Promise<client::IoResult> promise) {
  const uint64_t frame_id = next_frame_id_++;
  co_await sim::SelfHandle(&io_frames_[frame_id]);
  // One in-flight attempt per extent: issue every extent's steered
  // first choice before awaiting any, so replicas work in parallel
  // and the request completes when the slowest extent does.
  struct ExtentState {
    std::vector<ReplicaTarget> candidates;
    std::vector<bool> tried;
    size_t inflight = 0;  // index into candidates
    uint8_t* chunk = nullptr;
    uint32_t sectors = 0;
    /** Every replica dirty: the extent fails without any I/O. */
    bool unreadable = false;
    sim::Future<client::IoResult> future;
  };
  std::vector<ExtentState> states;
  states.reserve(extents.size());
  for (const ShardExtent& e : extents) {
    ExtentState st;
    st.candidates = LiveTargets(e);
    if (st.candidates.empty()) {
      st.unreadable = true;
      states.push_back(std::move(st));
      continue;
    }
    st.tried.assign(st.candidates.size(), false);
    st.chunk = data == nullptr
                   ? nullptr
                   : data + static_cast<size_t>(e.buffer_offset_sectors) *
                                core::kSectorBytes;
    st.sectors = e.sectors;
    st.inflight = SteerChoice(st.candidates);
    st.tried[st.inflight] = true;
    const ReplicaTarget& t = st.candidates[st.inflight];
    st.future = shard_sessions_[t.shard_index]->Read(t.shard_lba, e.sectors,
                                                     st.chunk, lane);
    states.push_back(std::move(st));
  }

  client::IoResult result;
  result.issue_time = issue_time;
  bool saw_wrong_shard = false;
  for (ExtentState& st : states) {
    if (st.unreadable) {
      if (result.ok()) result.status = core::ReqStatus::kDeviceError;
      continue;
    }
    client::IoResult r = co_await st.future;
    int serving = st.candidates[st.inflight].shard_index;
    // Failover: steer away from the failed replica and retry each
    // untried one (shallowest estimated queue first, ties by shard
    // id) until a copy serves the read or the set is exhausted.
    while (!r.ok()) {
      if (r.status == core::ReqStatus::kWrongShard &&
          attempt < kMaxWrongShardRetries) {
        // Stale routing, not a replica fault: every replica in this
        // (old) placement is equally stale, so failover is pointless.
        // The whole request reissues off a refreshed map below. Once
        // the budget is spent it degrades to the ordinary failure
        // path instead.
        saw_wrong_shard = true;
        break;
      }
      if (r.status == core::ReqStatus::kTimedOut) {
        client_.PenalizeShard(serving);
      }
      size_t next = st.candidates.size();
      for (size_t i = 0; i < st.candidates.size(); ++i) {
        if (st.tried[i]) continue;
        if (next == st.candidates.size()) {
          next = i;
          continue;
        }
        const double di =
            client_.EffectiveQueueDepth(st.candidates[i].shard_index);
        const double dn =
            client_.EffectiveQueueDepth(st.candidates[next].shard_index);
        if (di < dn || (di == dn && st.candidates[i].shard_id <
                                        st.candidates[next].shard_id)) {
          next = i;
        }
      }
      if (next == st.candidates.size()) break;  // all replicas tried
      ++read_failovers_;
      st.tried[next] = true;
      st.inflight = next;
      const ReplicaTarget& t = st.candidates[next];
      serving = t.shard_index;
      r = co_await shard_sessions_[t.shard_index]->Read(
          t.shard_lba, st.sectors, st.chunk, lane);
    }
    if (r.ok()) {
      // Attribution follows the shard that actually served this
      // sub-read -- after steering or failover that is not
      // necessarily the primary.
      shard_latency_[serving].Record(r.Latency());
      ++shard_reads_served_[serving];
    } else if (result.ok()) {
      // First failing extent's status wins (extents are awaited in
      // logical-LBA order, so the reported status is deterministic).
      result.status = r.status;
    }
  }
  if (saw_wrong_shard && attempt < kMaxWrongShardRetries) {
    RetryWrongShard(op, lba, sectors, data, lane, attempt, issue_time,
                    std::move(promise));
    io_frames_.erase(frame_id);
    co_return;
  }
  result.complete_time = client_.cluster().sim().Now();
  promise.Set(result);
  io_frames_.erase(frame_id);
}

sim::Task ClusterSession::FanOutWrite(std::vector<ShardExtent> extents,
                                      uint8_t* data, int lane,
                                      client::IoOp op, uint64_t lba,
                                      uint32_t sectors, int attempt,
                                      sim::TimeNs issue_time,
                                      sim::Promise<client::IoResult> promise) {
  const uint64_t frame_id = next_frame_id_++;
  co_await sim::SelfHandle(&io_frames_[frame_id]);
  const uint64_t version = client_.NextWriteVersion();
  // Every replica of every extent -- dirty ones included, so a lagging
  // copy's divergence stays bounded -- is written in parallel; an
  // extent commits when at least one copy lands. Replicas that failed
  // while a sibling succeeded are marked dirty (they now miss
  // `version`) and serve no reads until reinstated.
  struct SubWrite {
    int shard_index = 0;
    sim::Future<client::IoResult> future;
  };
  std::vector<std::vector<SubWrite>> per_extent;
  per_extent.reserve(extents.size());
  for (const ShardExtent& e : extents) {
    uint8_t* chunk =
        data == nullptr
            ? nullptr
            : data + static_cast<size_t>(e.buffer_offset_sectors) *
                         core::kSectorBytes;
    std::vector<ReplicaTarget> targets = e.AllTargets();
    std::vector<SubWrite> subs;
    subs.reserve(targets.size());
    for (const ReplicaTarget& t : targets) {
      SubWrite sw;
      sw.shard_index = t.shard_index;
      sw.future = shard_sessions_[t.shard_index]->Write(t.shard_lba,
                                                        e.sectors, chunk,
                                                        lane);
      subs.push_back(std::move(sw));
    }
    per_extent.push_back(std::move(subs));
  }

  client::IoResult result;
  result.issue_time = issue_time;
  bool saw_wrong_shard = false;
  for (std::vector<SubWrite>& subs : per_extent) {
    int ok_live = 0;
    core::ReqStatus first_fail = core::ReqStatus::kOk;
    std::vector<int> failed_shards;
    for (SubWrite& sw : subs) {
      const client::IoResult r = co_await sw.future;
      if (r.ok()) {
        // Per-shard service latency of the copy this shard wrote.
        shard_latency_[sw.shard_index].Record(r.Latency());
        // Only a copy on a *readable* (non-dirty) replica can commit
        // the extent: a dirty replica serves no reads, so data held
        // only there would make every later read stale.
        if (!client_.IsDirty(sw.shard_index)) ++ok_live;
      } else if (r.status == core::ReqStatus::kWrongShard &&
                 attempt < kMaxWrongShardRetries) {
        // The shard no longer owns this placement (or is draining it).
        // That is stale routing, not a missed write: the shard must
        // NOT be marked dirty -- it still serves every range it does
        // own. The whole request reissues off a refreshed map. Once
        // the retry budget is spent the bounce degrades to the
        // ordinary failure path (fail-closed dirty marking).
        saw_wrong_shard = true;
        if (first_fail == core::ReqStatus::kOk) first_fail = r.status;
      } else {
        if (first_fail == core::ReqStatus::kOk) first_fail = r.status;
        failed_shards.push_back(sw.shard_index);
      }
    }
    if (ok_live == 0) {
      // No readable copy landed: the extent fails and nobody is
      // marked dirty (clean replicas missed nothing *committed*; any
      // copy that did land is a zombie the client never advertises).
      if (result.ok()) {
        result.status = first_fail != core::ReqStatus::kOk
                            ? first_fail
                            : core::ReqStatus::kDeviceError;
      }
    } else {
      for (int shard : failed_shards) client_.MarkDirty(shard, version);
    }
  }
  if (saw_wrong_shard && attempt < kMaxWrongShardRetries) {
    // Reissuing the whole request is idempotent (same payload, every
    // replica rewritten) and the refreshed map routes the bounced
    // extent to its post-migration owner.
    RetryWrongShard(op, lba, sectors, data, lane, attempt, issue_time,
                    std::move(promise));
    io_frames_.erase(frame_id);
    co_return;
  }
  result.complete_time = client_.cluster().sim().Now();
  promise.Set(result);
  io_frames_.erase(frame_id);
}

ClusterClient::ClusterClient(FlashCluster& cluster, net::Machine* machine)
    : ClusterClient(cluster, machine, Options{}) {}

ClusterClient::ClusterClient(FlashCluster& cluster, net::Machine* machine,
                             Options options)
    : cluster_(cluster),
      machine_(machine),
      options_(options),
      local_map_(cluster.shard_map()) {
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    client::ReflexClient::Options shard_options = options_.client;
    shard_options.seed =
        options_.client.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    clients_.push_back(std::make_unique<client::ReflexClient>(
        cluster_.sim(), cluster_.server(i), machine_, shard_options));
    clients_.back()->set_hint_listener(
        [this, i](uint32_t depth) { ObserveHint(i, depth); });
    // All cluster traffic is epoch-stamped from the start, so a range
    // that later migrates away can tell this client's pre-cutover
    // routing from fresh routing.
    clients_.back()->set_map_epoch(local_map_.epoch());
  }
  hints_.resize(static_cast<size_t>(cluster_.num_shards()));
  dirty_since_.assign(static_cast<size_t>(cluster_.num_shards()), 0);
}

void ClusterClient::RefreshMap() {
  local_map_ = cluster_.shard_map();
  for (auto& client : clients_) {
    client->set_map_epoch(local_map_.epoch());
  }
}

void ClusterClient::ObserveHint(int shard, uint32_t depth) {
  HintState& h = hints_[static_cast<size_t>(shard)];
  h.depth = static_cast<double>(depth);
  h.at = cluster_.sim().Now();
  h.seen = true;
}

double ClusterClient::EffectiveQueueDepth(int shard) const {
  const HintState& h = hints_[static_cast<size_t>(shard)];
  if (!h.seen) return options_.hint_prior;
  const sim::TimeNs age = cluster_.sim().Now() - h.at;
  if (age >= options_.hint_stale_after) return options_.hint_prior;
  // Linear decay from the observed depth back to the prior: fresh
  // hints dominate, stale ones fade instead of pinning a dead shard's
  // last-known load forever.
  const double f = static_cast<double>(age) /
                   static_cast<double>(options_.hint_stale_after);
  return h.depth + (options_.hint_prior - h.depth) * f;
}

void ClusterClient::MarkDirty(int shard, uint64_t version) {
  uint64_t& since = dirty_since_[static_cast<size_t>(shard)];
  if (since == 0) since = version;
}

void ClusterClient::PenalizeShard(int shard) {
  HintState& h = hints_[static_cast<size_t>(shard)];
  h.depth = kPenaltyDepth;
  h.at = cluster_.sim().Now();
  h.seen = true;
}

std::unique_ptr<ClusterSession> ClusterClient::OpenSession(
    const core::SloSpec& slo, core::TenantClass cls, AdmitResult* result) {
  AdmitResult local;
  if (result == nullptr) result = &local;
  ClusterTenant tenant =
      cluster_.control_plane().RegisterTenant(slo, cls, result);
  if (!tenant.valid()) return nullptr;
  // MakeSession rolls the registration back if any shard refuses the
  // connection after admission.
  return MakeSession(std::move(tenant), /*owns_tenant=*/true, result);
}

std::unique_ptr<ClusterSession> ClusterClient::AttachSession(
    const ClusterTenant& tenant, core::ReqStatus* status) {
  if (!tenant.valid()) return nullptr;
  AdmitResult result;
  auto session = MakeSession(tenant, /*owns_tenant=*/false, &result);
  if (status != nullptr) *status = result.status;
  return session;
}

std::unique_ptr<ClusterSession> ClusterClient::MakeSession(
    ClusterTenant tenant, bool owns_tenant, AdmitResult* result) {
  REFLEX_CHECK(static_cast<int>(tenant.handles.size()) ==
               cluster_.num_shards());
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    core::ReqStatus shard_status = core::ReqStatus::kOk;
    auto s = clients_[i]->AttachSession(tenant.handles[i], &shard_status);
    if (s == nullptr) {
      if (owns_tenant) {
        cluster_.control_plane().UnregisterTenant(tenant);
      }
      if (result != nullptr) {
        result->kind = owns_tenant ? AdmitResult::Kind::kRolledBack
                                   : AdmitResult::Kind::kRejectedShard;
        result->shard = i;
        result->status = shard_status;
      }
      return nullptr;
    }
    sessions.push_back(std::move(s));
  }
  if (result != nullptr) *result = AdmitResult{};
  return std::unique_ptr<ClusterSession>(new ClusterSession(
      *this, std::move(tenant), std::move(sessions), owns_tenant));
}

}  // namespace reflex::cluster
