#include "cluster/cluster_client.h"

#include <utility>

#include "sim/logging.h"

namespace reflex::cluster {

ClusterSession::ClusterSession(
    ClusterClient& client, ClusterTenant tenant,
    std::vector<std::unique_ptr<client::TenantSession>> sessions,
    bool owns_tenant)
    : client_(client),
      tenant_(std::move(tenant)),
      shard_sessions_(std::move(sessions)),
      shard_latency_(shard_sessions_.size()),
      owns_tenant_(owns_tenant) {}

ClusterSession::~ClusterSession() {
  if (owns_tenant_) {
    // Drop the per-shard sessions first: they do not own the
    // registrations, so the cluster-wide unregister below is the only
    // teardown.
    shard_sessions_.clear();
    client_.cluster().control_plane().UnregisterTenant(tenant_);
  }
}

sim::Future<client::IoResult> ClusterSession::Read(uint64_t lba,
                                                   uint32_t sectors,
                                                   uint8_t* data) {
  return Submit(client::IoOp::kRead, lba, sectors, data);
}

sim::Future<client::IoResult> ClusterSession::Write(uint64_t lba,
                                                    uint32_t sectors,
                                                    uint8_t* data) {
  return Submit(client::IoOp::kWrite, lba, sectors, data);
}

sim::Future<client::IoResult> ClusterSession::Submit(client::IoOp op,
                                                     uint64_t lba,
                                                     uint32_t sectors,
                                                     uint8_t* data) {
  std::vector<ShardExtent> extents =
      client_.cluster().shard_map().Split(lba, sectors);
  ++requests_issued_;
  if (extents.size() > 1) ++requests_split_;
  sim::Simulator& sim = client_.cluster().sim();

  sim::Promise<client::IoResult> promise(sim);
  auto future = promise.GetFuture();
  FanOut(std::move(extents), op, data, sim.Now(), std::move(promise));
  return future;
}

sim::Task ClusterSession::FanOut(std::vector<ShardExtent> extents,
                                 client::IoOp op, uint8_t* data,
                                 sim::TimeNs issue_time,
                                 sim::Promise<client::IoResult> promise) {
  // Issue every extent before awaiting any: the shards work in
  // parallel and the request completes when the slowest extent does.
  std::vector<sim::Future<client::IoResult>> futures;
  futures.reserve(extents.size());
  for (const ShardExtent& e : extents) {
    uint8_t* chunk =
        data == nullptr
            ? nullptr
            : data + static_cast<size_t>(e.buffer_offset_sectors) *
                         core::kSectorBytes;
    client::TenantSession& s = *shard_sessions_[e.shard_index];
    futures.push_back(op == client::IoOp::kRead
                          ? s.Read(e.shard_lba, e.sectors, chunk)
                          : s.Write(e.shard_lba, e.sectors, chunk));
  }

  client::IoResult result;
  result.issue_time = issue_time;
  for (size_t i = 0; i < futures.size(); ++i) {
    const client::IoResult r = co_await futures[i];
    // Per-shard latency histograms measure service latency, so only
    // successful extents are recorded: a failed extent's duration is
    // the failure path (watchdog expiry, retry exhaustion) and would
    // skew the per-shard tail those histograms exist to compare.
    if (r.ok()) {
      shard_latency_[extents[i].shard_index].Record(r.Latency());
    }
    // First failing extent's status wins; later failures don't
    // overwrite it (extents are awaited in logical-LBA order, so the
    // reported status is deterministic for any mix of failures).
    if (result.ok() && !r.ok()) result.status = r.status;
  }
  result.complete_time = client_.cluster().sim().Now();
  promise.Set(result);
}

ClusterClient::ClusterClient(FlashCluster& cluster, net::Machine* machine,
                             Options options)
    : cluster_(cluster), machine_(machine), options_(options) {
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    client::ReflexClient::Options shard_options = options_.client;
    shard_options.seed =
        options_.client.seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    clients_.push_back(std::make_unique<client::ReflexClient>(
        cluster_.sim(), cluster_.server(i), machine_, shard_options));
  }
}

std::unique_ptr<ClusterSession> ClusterClient::OpenSession(
    const core::SloSpec& slo, core::TenantClass cls,
    core::ReqStatus* status) {
  ClusterTenant tenant =
      cluster_.control_plane().RegisterTenant(slo, cls, status);
  if (!tenant.valid()) return nullptr;
  // MakeSession rolls the registration back if any shard refuses the
  // connection after admission.
  return MakeSession(std::move(tenant), /*owns_tenant=*/true, status);
}

std::unique_ptr<ClusterSession> ClusterClient::AttachSession(
    const ClusterTenant& tenant, core::ReqStatus* status) {
  if (!tenant.valid()) return nullptr;
  return MakeSession(tenant, /*owns_tenant=*/false, status);
}

std::unique_ptr<ClusterSession> ClusterClient::MakeSession(
    ClusterTenant tenant, bool owns_tenant, core::ReqStatus* status) {
  REFLEX_CHECK(static_cast<int>(tenant.handles.size()) ==
               cluster_.num_shards());
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  for (int i = 0; i < cluster_.num_shards(); ++i) {
    auto s = clients_[i]->AttachSession(tenant.handles[i], status);
    if (s == nullptr) {
      if (owns_tenant) {
        cluster_.control_plane().UnregisterTenant(tenant);
      }
      return nullptr;
    }
    sessions.push_back(std::move(s));
  }
  return std::unique_ptr<ClusterSession>(new ClusterSession(
      *this, std::move(tenant), std::move(sessions), owns_tenant));
}

}  // namespace reflex::cluster
