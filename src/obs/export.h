#ifndef REFLEX_OBS_EXPORT_H_
#define REFLEX_OBS_EXPORT_H_

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace reflex::obs {

/**
 * JSON document for a registry snapshot:
 *   {"metrics":[{"name":...,"labels":{...},"kind":"counter","value":...},
 *               {...,"kind":"histogram","count":...,"mean":...,...}]}
 */
std::string RegistryToJson(const MetricsRegistry& registry);

/**
 * CSV for a registry snapshot, one metric (or histogram statistic
 * column set) per line:
 *   name,labels,kind,value_or_count,mean,p50,p95,p99,max
 * Counters/gauges leave the histogram columns empty.
 */
std::string RegistryToCsv(const MetricsRegistry& registry);

/**
 * JSON document for a latency-breakdown table:
 *   {"experiment":...,"label":...,"spans":N,
 *    "total_mean_us":...,"total_p95_us":...,"stage_sum_us":...,
 *    "stages":[{"interval":...,"stage":...,"count":...,...}]}
 */
std::string BreakdownToJson(const BreakdownTable& table,
                            const std::string& experiment,
                            const std::string& label);

/**
 * CSV rows for a latency-breakdown table, prefixed so they can be
 * grepped out of mixed bench output:
 *   breakdown,<experiment>,<label>,<interval>,<count>,<mean_us>,
 *   <p95_us>,<mean_per_span_us>,<share_pct>
 * plus one "total" row carrying spans/total_mean/total_p95/stage_sum.
 */
std::string BreakdownToCsv(const BreakdownTable& table,
                           const std::string& experiment,
                           const std::string& label);

/** Writes `content` to `path`; returns false (and warns) on failure. */
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace reflex::obs

#endif  // REFLEX_OBS_EXPORT_H_
