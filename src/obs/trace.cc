#include "obs/trace.h"

namespace reflex::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClientIssue: return "client_issue";
    case Stage::kServerRx:    return "server_rx";
    case Stage::kParsed:      return "parsed";
    case Stage::kEnqueued:    return "enqueued";
    case Stage::kGranted:     return "granted";
    case Stage::kSubmitted:   return "submitted";
    case Stage::kFlashDone:   return "flash_done";
    case Stage::kTxQueued:    return "tx_queued";
    case Stage::kClientDone:  return "client_done";
    case Stage::kNumStages:   break;
  }
  return "?";
}

const char* IntervalName(Stage stage) {
  switch (stage) {
    case Stage::kClientIssue: return "-";
    case Stage::kServerRx:    return "net_in";      // client stack + wire
    case Stage::kParsed:      return "parse";       // batch wait + rx CPU
    case Stage::kEnqueued:    return "enqueue";     // pricing + queue insert
    case Stage::kGranted:     return "token_wait";  // QoS queueing delay
    case Stage::kSubmitted:   return "submit";      // NVMe command build
    case Stage::kFlashDone:   return "flash";       // device service time
    case Stage::kTxQueued:    return "complete";    // completion CPU + batch
    case Stage::kClientDone:  return "net_out";     // wire + client stack
    case Stage::kNumStages:   break;
  }
  return "?";
}

TraceCollector::TraceCollector() { interval_sum_ns_.fill(0.0); }

void TraceCollector::Finish(const TraceSpan& span) {
  if (!span.Has(Stage::kClientIssue) || !span.Has(Stage::kClientDone) ||
      span.At(Stage::kClientIssue) < min_issue_) {
    ++dropped_;
    return;
  }
  // Walk stages in pipeline order; each marked stage closes the
  // interval since the previous marked stage. Stages a request skipped
  // (e.g. kSubmitted for an error reply) contribute nothing, and their
  // elapsed time collapses into the next marked stage, so the per-span
  // interval sum is always exactly Total().
  sim::TimeNs prev = span.At(Stage::kClientIssue);
  for (int i = 1; i < kNumStages; ++i) {
    const auto stage = static_cast<Stage>(i);
    if (!span.Has(stage)) continue;
    const sim::TimeNs delta = span.At(stage) - prev;
    intervals_[static_cast<size_t>(i)].Record(delta);
    interval_sum_ns_[static_cast<size_t>(i)] +=
        static_cast<double>(delta);
    prev = span.At(stage);
  }
  total_.Record(span.Total());
  ++finished_;
}

BreakdownTable TraceCollector::Table() const {
  BreakdownTable table;
  table.spans = finished_;
  table.total_mean_us = total_.Mean() / 1e3;
  table.total_p95_us = static_cast<double>(total_.Percentile(0.95)) / 1e3;
  if (finished_ == 0) return table;
  const double total_sum_ns =
      total_.Mean() * static_cast<double>(total_.Count());
  for (int i = 1; i < kNumStages; ++i) {
    const sim::Histogram& h = intervals_[static_cast<size_t>(i)];
    if (h.Count() == 0) continue;
    BreakdownRow row;
    row.interval = IntervalName(static_cast<Stage>(i));
    row.stage = StageName(static_cast<Stage>(i));
    row.count = h.Count();
    row.mean_us = h.Mean() / 1e3;
    row.p95_us = static_cast<double>(h.Percentile(0.95)) / 1e3;
    row.mean_per_span_us = interval_sum_ns_[static_cast<size_t>(i)] /
                           static_cast<double>(finished_) / 1e3;
    row.share_pct = total_sum_ns > 0.0
                        ? 100.0 * interval_sum_ns_[static_cast<size_t>(i)] /
                              total_sum_ns
                        : 0.0;
    table.stage_sum_us += row.mean_per_span_us;
    table.rows.push_back(std::move(row));
  }
  return table;
}

void TraceCollector::Reset(sim::TimeNs min_issue) {
  for (auto& h : intervals_) h.Reset();
  interval_sum_ns_.fill(0.0);
  total_.Reset();
  finished_ = 0;
  dropped_ = 0;
  min_issue_ = min_issue;
}

}  // namespace reflex::obs
