#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

#include "sim/logging.h"

namespace reflex::obs {

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> kv) {
  for (const auto& [k, v] : kv) Set(k, v);
}

bool NaturalLess(const std::string& a, const std::string& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const bool da = std::isdigit(static_cast<unsigned char>(a[i])) != 0;
    const bool db = std::isdigit(static_cast<unsigned char>(b[j])) != 0;
    if (da && db) {
      // Compare the two digit runs as numbers: strip leading zeros,
      // then a longer run is larger, then byte order decides. Shorter
      // zero-padding breaks exact-value ties ("02" < "2") so distinct
      // renderings stay distinct keys.
      const size_t ia = i, jb = j;
      while (i < a.size() && a[i] == '0') ++i;
      while (j < b.size() && b[j] == '0') ++j;
      size_t ea = i, eb = j;
      while (ea < a.size() && std::isdigit(static_cast<unsigned char>(a[ea]))) {
        ++ea;
      }
      while (eb < b.size() && std::isdigit(static_cast<unsigned char>(b[eb]))) {
        ++eb;
      }
      if (ea - i != eb - j) return ea - i < eb - j;
      for (; i < ea; ++i, ++j) {
        if (a[i] != b[j]) return a[i] < b[j];
      }
      if (i - ia != j - jb) return i - ia > j - jb;  // more zeros first
    } else {
      if (a[i] != b[j]) return a[i] < b[j];
      ++i;
      ++j;
    }
  }
  return a.size() - i < b.size() - j;
}

bool LabelSet::operator<(const LabelSet& other) const {
  const size_t n = std::min(entries_.size(), other.entries_.size());
  for (size_t k = 0; k < n; ++k) {
    if (entries_[k].first != other.entries_[k].first) {
      return NaturalLess(entries_[k].first, other.entries_[k].first);
    }
    if (entries_[k].second != other.entries_[k].second) {
      return NaturalLess(entries_[k].second, other.entries_[k].second);
    }
  }
  return entries_.size() < other.entries_.size();
}

void LabelSet::Set(const std::string& key, const std::string& value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const auto& entry, const std::string& k) { return entry.first < k; });
  if (it != entries_.end() && it->first == key) {
    it->second = value;
  } else {
    entries_.insert(it, {key, value});
  }
}

std::string LabelSet::Render() const {
  if (entries_.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ",";
    out += entries_[i].first + "=" + entries_[i].second;
  }
  out += "}";
  return out;
}

LabelSet Label(const std::string& key, int64_t value) {
  LabelSet labels;
  labels.Set(key, std::to_string(value));
  return labels;
}

LabelSet Label(const std::string& key, const std::string& value) {
  LabelSet labels;
  labels.Set(key, value);
  return labels;
}

MetricsRegistry::Slot* MetricsRegistry::Find(const Key& key,
                                             MetricKind kind) {
  auto it = metrics_.find(key);
  if (it != metrics_.end()) {
    REFLEX_CHECK(it->second.kind == kind);
    return &it->second;
  }
  Slot slot;
  slot.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      slot.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      slot.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      slot.histogram = std::make_unique<sim::Histogram>();
      break;
  }
  auto [inserted, ok] = metrics_.emplace(key, std::move(slot));
  REFLEX_CHECK(ok);
  return &inserted->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  return Find({name, labels}, MetricKind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  return Find({name, labels}, MetricKind::kGauge)->gauge.get();
}

sim::Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                              const LabelSet& labels) {
  return Find({name, labels}, MetricKind::kHistogram)->histogram.get();
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Snapshot() const {
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [key, slot] : metrics_) {
    Entry e;
    e.name = key.first;
    e.labels = key.second;
    e.kind = slot.kind;
    e.counter = slot.counter.get();
    e.gauge = slot.gauge.get();
    e.histogram = slot.histogram.get();
    out.push_back(std::move(e));
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  for (auto& [key, slot] : metrics_) {
    switch (slot.kind) {
      case MetricKind::kCounter:
        slot.counter->Reset();
        break;
      case MetricKind::kGauge:
        slot.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        slot.histogram->Reset();
        break;
    }
  }
}

}  // namespace reflex::obs
