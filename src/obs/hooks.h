#ifndef REFLEX_OBS_HOOKS_H_
#define REFLEX_OBS_HOOKS_H_

#include "obs/metrics.h"

namespace reflex::obs {

/**
 * Cached metric handles for one QosScheduler (one dataplane thread).
 * Subsystems hold these structs by value with null handles when
 * observability is off; every hot-path update is guarded by a single
 * pointer test. Registration happens once, at thread construction.
 */
struct SchedulerMetrics {
  Counter* tokens_generated = nullptr;
  Counter* tokens_spent = nullptr;
  Counter* tokens_donated = nullptr;
  Counter* tokens_claimed = nullptr;
  Counter* neg_limit_hits = nullptr;
  Counter* rounds = nullptr;
  Counter* requests_submitted = nullptr;
  /** Gap between consecutive scheduling rounds (ns). */
  sim::Histogram* round_gap_ns = nullptr;

  bool enabled() const { return rounds != nullptr; }

  static SchedulerMetrics ForThread(MetricsRegistry& registry, int thread) {
    const LabelSet labels = Label("thread", thread);
    SchedulerMetrics m;
    m.tokens_generated = registry.GetCounter("sched_tokens_generated", labels);
    m.tokens_spent = registry.GetCounter("sched_tokens_spent", labels);
    m.tokens_donated = registry.GetCounter("sched_tokens_donated", labels);
    m.tokens_claimed = registry.GetCounter("sched_tokens_claimed", labels);
    m.neg_limit_hits = registry.GetCounter("sched_neg_limit_hits", labels);
    m.rounds = registry.GetCounter("sched_rounds", labels);
    m.requests_submitted =
        registry.GetCounter("sched_requests_submitted", labels);
    m.round_gap_ns = registry.GetHistogram("sched_round_gap_ns", labels);
    return m;
  }
};

/** Cached metric handles for one FlashDevice. */
struct FlashMetrics {
  /** Commands in flight across all hardware queue pairs. */
  Gauge* queue_depth = nullptr;
  Gauge* flush_backlog_chunks = nullptr;
  Counter* gc_stalls = nullptr;
  Counter* queue_full_rejections = nullptr;
  Counter* reads_completed = nullptr;
  Counter* writes_completed = nullptr;
  /** Injected media errors (nonzero only with a FaultPlan attached). */
  Counter* read_errors = nullptr;
  Counter* write_errors = nullptr;
  /** Device service time split by op (submit -> completion, ns). */
  sim::Histogram* read_service_ns = nullptr;
  sim::Histogram* write_service_ns = nullptr;

  bool enabled() const { return queue_depth != nullptr; }

  static FlashMetrics ForDevice(MetricsRegistry& registry) {
    FlashMetrics m;
    m.queue_depth = registry.GetGauge("flash_queue_depth");
    m.flush_backlog_chunks = registry.GetGauge("flash_flush_backlog_chunks");
    m.gc_stalls = registry.GetCounter("flash_gc_stalls");
    m.queue_full_rejections =
        registry.GetCounter("flash_queue_full_rejections");
    m.reads_completed = registry.GetCounter("flash_reads_completed");
    m.writes_completed = registry.GetCounter("flash_writes_completed");
    m.read_errors = registry.GetCounter("flash_read_errors");
    m.write_errors = registry.GetCounter("flash_write_errors");
    m.read_service_ns = registry.GetHistogram("flash_read_service_ns");
    m.write_service_ns = registry.GetHistogram("flash_write_service_ns");
    return m;
  }
};

/** Cached metric handles for the simulated network fabric. */
struct NetMetrics {
  Counter* messages = nullptr;
  Counter* wire_bytes = nullptr;
  /** NIC-to-NIC time of one message: serialization + propagation +
   * switch + NIC latency + link queueing (the wire share of net_in /
   * net_out; endpoint stack time is charged by the endpoints). */
  sim::Histogram* wire_ns = nullptr;
  /** Fault outcomes (nonzero only with a FaultPlan attached). */
  Counter* dropped_messages = nullptr;
  Counter* connection_resets = nullptr;

  bool enabled() const { return messages != nullptr; }

  static NetMetrics ForFabric(MetricsRegistry& registry) {
    NetMetrics m;
    m.messages = registry.GetCounter("net_messages");
    m.wire_bytes = registry.GetCounter("net_wire_bytes");
    m.wire_ns = registry.GetHistogram("net_wire_ns");
    m.dropped_messages = registry.GetCounter("net_dropped_messages");
    m.connection_resets = registry.GetCounter("net_connection_resets");
    return m;
  }
};

}  // namespace reflex::obs

#endif  // REFLEX_OBS_HOOKS_H_
