#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace reflex::obs {
namespace {

/** Minimal JSON string escaping (quotes and backslashes only: metric
 * names and labels are generated identifiers, never arbitrary text). */
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string LabelsJson(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels.entries()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  out += "}";
  return out;
}

std::string HistogramJson(const sim::Histogram& h) {
  std::string out;
  out += "\"count\":" + std::to_string(h.Count());
  out += ",\"mean\":" + FormatDouble(h.Mean());
  out += ",\"min\":" + std::to_string(h.Min());
  out += ",\"p50\":" + std::to_string(h.Percentile(0.50));
  out += ",\"p95\":" + std::to_string(h.Percentile(0.95));
  out += ",\"p99\":" + std::to_string(h.Percentile(0.99));
  out += ",\"max\":" + std::to_string(h.Max());
  return out;
}

}  // namespace

std::string RegistryToJson(const MetricsRegistry& registry) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricsRegistry::Entry& e : registry.Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\"";
    out += ",\"labels\":" + LabelsJson(e.labels);
    switch (e.kind) {
      case MetricKind::kCounter:
        out += ",\"kind\":\"counter\",\"value\":" +
               FormatDouble(e.counter->value());
        break;
      case MetricKind::kGauge:
        out += ",\"kind\":\"gauge\",\"value\":" +
               FormatDouble(e.gauge->value());
        break;
      case MetricKind::kHistogram:
        out += ",\"kind\":\"histogram\"," + HistogramJson(*e.histogram);
        break;
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string RegistryToCsv(const MetricsRegistry& registry) {
  std::string out = "name,labels,kind,value_or_count,mean,p50,p95,p99,max\n";
  for (const MetricsRegistry::Entry& e : registry.Snapshot()) {
    out += e.name + "," + e.labels.Render() + ",";
    char buf[256];
    switch (e.kind) {
      case MetricKind::kCounter:
        std::snprintf(buf, sizeof(buf), "counter,%.6g,,,,,\n",
                      e.counter->value());
        break;
      case MetricKind::kGauge:
        std::snprintf(buf, sizeof(buf), "gauge,%.6g,,,,,\n",
                      e.gauge->value());
        break;
      case MetricKind::kHistogram: {
        const sim::Histogram& h = *e.histogram;
        std::snprintf(buf, sizeof(buf),
                      "histogram,%" PRId64 ",%.6g,%" PRId64 ",%" PRId64
                      ",%" PRId64 ",%" PRId64 "\n",
                      h.Count(), h.Mean(), h.Percentile(0.50),
                      h.Percentile(0.95), h.Percentile(0.99), h.Max());
        break;
      }
    }
    out += buf;
  }
  return out;
}

std::string BreakdownToJson(const BreakdownTable& table,
                            const std::string& experiment,
                            const std::string& label) {
  std::string out = "{";
  out += "\"experiment\":\"" + JsonEscape(experiment) + "\"";
  out += ",\"label\":\"" + JsonEscape(label) + "\"";
  out += ",\"spans\":" + std::to_string(table.spans);
  out += ",\"total_mean_us\":" + FormatDouble(table.total_mean_us);
  out += ",\"total_p95_us\":" + FormatDouble(table.total_p95_us);
  out += ",\"stage_sum_us\":" + FormatDouble(table.stage_sum_us);
  out += ",\"stages\":[";
  bool first = true;
  for (const BreakdownRow& row : table.rows) {
    if (!first) out += ",";
    first = false;
    out += "{\"interval\":\"" + JsonEscape(row.interval) + "\"";
    out += ",\"stage\":\"" + JsonEscape(row.stage) + "\"";
    out += ",\"count\":" + std::to_string(row.count);
    out += ",\"mean_us\":" + FormatDouble(row.mean_us);
    out += ",\"p95_us\":" + FormatDouble(row.p95_us);
    out += ",\"mean_per_span_us\":" + FormatDouble(row.mean_per_span_us);
    out += ",\"share_pct\":" + FormatDouble(row.share_pct);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string BreakdownToCsv(const BreakdownTable& table,
                           const std::string& experiment,
                           const std::string& label) {
  std::string out;
  char buf[256];
  for (const BreakdownRow& row : table.rows) {
    std::snprintf(buf, sizeof(buf),
                  "breakdown,%s,%s,%s,%" PRId64 ",%.3f,%.3f,%.3f,%.2f\n",
                  experiment.c_str(), label.c_str(), row.interval.c_str(),
                  row.count, row.mean_us, row.p95_us, row.mean_per_span_us,
                  row.share_pct);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "breakdown,%s,%s,total,%" PRId64 ",%.3f,%.3f,%.3f,100.00\n",
                experiment.c_str(), label.c_str(), table.spans,
                table.total_mean_us, table.total_p95_us, table.stage_sum_us);
  out += buf;
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace reflex::obs
