#ifndef REFLEX_OBS_TRACE_H_
#define REFLEX_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/histogram.h"
#include "sim/time.h"

namespace reflex::obs {

/**
 * Lifecycle stages of one traced request, in pipeline order. A stage
 * timestamp is the simulated time at which the request *entered* that
 * stage; the duration attributed to a stage is the gap since the
 * previous marked stage, so per-request stage durations telescope to
 * exactly the end-to-end latency (the reconciliation property the
 * benches assert).
 */
enum class Stage : uint8_t {
  kClientIssue = 0,  // application submits (client library entry)
  kServerRx,         // last frame of the request reached the server NIC
  kParsed,           // dataplane parsed + access-checked the request
  kEnqueued,         // priced and queued in the tenant's software queue
  kGranted,          // QoS scheduler admitted it (token spend)
  kSubmitted,        // NVMe command handed to the Flash device
  kFlashDone,        // Flash completion arrived at the dataplane
  kTxQueued,         // response handed to the server TCP stack
  kClientDone,       // client application observed the completion
  kNumStages,
};

inline constexpr int kNumStages = static_cast<int>(Stage::kNumStages);

/** Short machine-readable stage name ("server_rx", "flash", ...). */
const char* StageName(Stage stage);

/**
 * Human-oriented name of the *interval ending at* a stage, i.e. what
 * the time between the previous stage and this one was spent on
 * ("net_in" for kClientIssue->kServerRx, "token_wait" for
 * kEnqueued->kGranted, ...).
 */
const char* IntervalName(Stage stage);

/**
 * Per-request trace record: absolute timestamps for each stage the
 * request passed through (-1 = not reached / not applicable, e.g.
 * barriers never reach kSubmitted). Allocated only for sampled
 * requests and threaded through RequestMsg/PendingIo, so the untraced
 * hot path pays one pointer test per stage.
 */
struct TraceSpan {
  std::array<sim::TimeNs, kNumStages> ts;
  bool is_read = true;
  uint32_t tenant = 0;

  TraceSpan() { ts.fill(-1); }

  void Mark(Stage stage, sim::TimeNs now) {
    ts[static_cast<size_t>(stage)] = now;
  }
  sim::TimeNs At(Stage stage) const {
    return ts[static_cast<size_t>(stage)];
  }
  bool Has(Stage stage) const { return At(stage) >= 0; }

  /** End-to-end latency; -1 if the span never completed. */
  sim::TimeNs Total() const {
    return Has(Stage::kClientIssue) && Has(Stage::kClientDone)
               ? At(Stage::kClientDone) - At(Stage::kClientIssue)
               : -1;
  }
};

/**
 * Deterministic 1-in-N sampler (default 1/64, the rate the paper-scale
 * polling loop can absorb without perturbing the measurement). N == 0
 * disables tracing entirely; N == 1 traces every request.
 */
class TraceSampler {
 public:
  explicit TraceSampler(uint32_t every = 0) : every_(every) {}

  bool Sample() {
    if (every_ == 0) return false;
    return (counter_++ % every_) == 0;
  }

  uint32_t every() const { return every_; }

 private:
  uint32_t every_;
  uint64_t counter_ = 0;
};

/** One row of the exported latency-breakdown table. */
struct BreakdownRow {
  std::string interval;   // e.g. "flash" (kSubmitted -> kFlashDone)
  std::string stage;      // stage the interval ends at, e.g. "flash_done"
  int64_t count = 0;      // spans that passed through this interval
  double mean_us = 0.0;   // mean over spans that have the interval
  double p95_us = 0.0;
  /** Sum of this interval across ALL finished spans / span count: the
   * column whose per-stage values sum exactly to total_mean_us. */
  double mean_per_span_us = 0.0;
  double share_pct = 0.0;  // of total end-to-end time
};

/** The full exported table plus end-to-end statistics. */
struct BreakdownTable {
  std::vector<BreakdownRow> rows;
  int64_t spans = 0;
  double total_mean_us = 0.0;
  double total_p95_us = 0.0;
  /** Sum over rows of mean_per_span_us (== total_mean_us by
   * construction, modulo floating point). */
  double stage_sum_us = 0.0;
};

/**
 * Aggregates finished TraceSpans into per-interval histograms. One
 * collector per server; spans are handed in by the client library once
 * the application observes the completion.
 */
class TraceCollector {
 public:
  TraceCollector();

  /** Accounts one finished span. Spans missing kClientIssue or
   * kClientDone -- or issued before the measurement window (see
   * Reset) -- are counted as dropped and otherwise ignored. */
  void Finish(const TraceSpan& span);

  int64_t finished() const { return finished_; }
  int64_t dropped() const { return dropped_; }

  /** End-to-end latency histogram over finished spans (ns). */
  const sim::Histogram& total() const { return total_; }

  /** Interval histogram (ns) for the interval ending at `stage`. */
  const sim::Histogram& interval(Stage stage) const {
    return intervals_[static_cast<size_t>(stage)];
  }

  /** Builds the per-stage latency-breakdown table. */
  BreakdownTable Table() const;

  /**
   * Discards everything (e.g. at the end of a warmup window). Spans
   * issued (kClientIssue) before `min_issue` are subsequently dropped,
   * which aligns the trace population with load generators that only
   * record requests issued inside the measurement window.
   */
  void Reset(sim::TimeNs min_issue = 0);

 private:
  // Interval histograms are indexed by the stage the interval ends at;
  // index 0 (kClientIssue) is unused.
  std::array<sim::Histogram, kNumStages> intervals_;
  std::array<double, kNumStages> interval_sum_ns_;
  sim::Histogram total_;
  int64_t finished_ = 0;
  int64_t dropped_ = 0;
  sim::TimeNs min_issue_ = 0;
};

}  // namespace reflex::obs

#endif  // REFLEX_OBS_TRACE_H_
