#ifndef REFLEX_OBS_METRICS_H_
#define REFLEX_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/histogram.h"

namespace reflex::obs {

/**
 * Natural (numeric-aware) string ordering: runs of digits compare as
 * numbers, everything else byte-wise, so "tenant=9" sorts before
 * "tenant=10". Exports walk metrics in this order; without it, row
 * order changes the moment a numeric label reaches two digits.
 */
bool NaturalLess(const std::string& a, const std::string& b);

/**
 * Label set attached to a metric instance, e.g. {thread=0, tenant=3}.
 * Stored sorted by key so that the same logical labels always produce
 * the same metric identity regardless of construction order.
 */
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv);

  void Set(const std::string& key, const std::string& value);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  bool empty() const { return entries_.empty(); }

  /** Canonical "{k1=v1,k2=v2}" rendering ("" when empty). */
  std::string Render() const;

  /** Natural order: numeric label values sort numerically. */
  bool operator<(const LabelSet& other) const;
  bool operator==(const LabelSet& other) const {
    return entries_ == other.entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/** Helper: a LabelSet with one int-valued label (thread/tenant ids). */
LabelSet Label(const std::string& key, int64_t value);
LabelSet Label(const std::string& key, const std::string& value);

/** Monotonically increasing counter. */
class Counter {
 public:
  void Add(double n = 1.0) { value_ += n; }
  void Increment() { value_ += 1.0; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/** Point-in-time gauge. */
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double n) { value_ += n; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/** Metric kinds, for export. */
enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/**
 * Registry of named counters, gauges and histograms with label sets
 * (per-thread, per-tenant). Get* registers on first use and returns a
 * stable pointer, so hot paths look a metric up once at setup time and
 * then touch only the cached handle. Single registry per server; not
 * thread-safe (the simulation's dataplane "threads" are coroutines on
 * one OS thread -- registration happens at construction time anyway).
 */
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const LabelSet& labels = {});
  sim::Histogram* GetHistogram(const std::string& name,
                               const LabelSet& labels = {});

  /** One registered metric, for export iteration. */
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricKind kind;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const sim::Histogram* histogram = nullptr;
  };

  /** All metrics, sorted by (name, labels). */
  std::vector<Entry> Snapshot() const;

  size_t size() const { return metrics_.size(); }

  /** Zeroes every counter/gauge and clears every histogram. */
  void ResetAll();

 private:
  struct Slot {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<sim::Histogram> histogram;
  };
  using Key = std::pair<std::string, LabelSet>;

  Slot* Find(const Key& key, MetricKind kind);

  std::map<Key, Slot> metrics_;
};

}  // namespace reflex::obs

#endif  // REFLEX_OBS_METRICS_H_
