#ifndef REFLEX_FLASH_DEVICE_PROFILE_H_
#define REFLEX_FLASH_DEVICE_PROFILE_H_

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace reflex::flash {

/**
 * Parameters of a simulated NVMe Flash device.
 *
 * The model is a set of `num_dies` independent FIFO service stations
 * ("dies"). A 4KB read occupies one die for one service quantum; a 4KB
 * write is acknowledged once it lands in the device DRAM write buffer
 * but its flush occupies `write_cost` die quanta, which is how writes
 * steal read bandwidth and inflate read tail latency (the interference
 * the ReFlex paper's Figure 1 characterizes).
 *
 * When the device has seen no write activity for `readonly_window`,
 * reads are serviced at the faster `read_service_readonly` quantum,
 * reproducing the paper's observation that some devices deliver
 * substantially higher IOPS for 100%-read loads (C(read, r=100%) =
 * 0.5 tokens for their device A).
 */
struct DeviceProfile {
  std::string name;

  /** Number of independent die service stations. */
  int num_dies = 80;

  /** Die occupancy of a 4KB read under mixed (r < 100%) load. */
  sim::TimeNs read_service_mixed = sim::Micros(61);

  /** Die occupancy of a 4KB read under read-only load. */
  sim::TimeNs read_service_readonly = sim::Micros(30.5);

  /**
   * Pipelined controller/NAND latency added to every read completion
   * but not occupying a die: real devices overlap sensing, transfer
   * and ECC, so per-die occupancy is shorter than end-to-end latency
   * (this is how a 35-die model delivers both ~78us unloaded reads and
   * ~1M read-only IOPS, like the paper's device A).
   */
  sim::TimeNs read_pipeline_latency = sim::Micros(40);

  /** Lognormal sigma applied to die service quanta. */
  double service_sigma = 0.18;

  /**
   * Fixed per-command overhead (submission queue fetch, controller,
   * completion posting). Applied once per command, not per chunk.
   */
  sim::TimeNs fixed_op_overhead = sim::Micros(6);

  /** Die quanta consumed by flushing one 4KB write (the "write cost"). */
  double write_cost = 10.0;

  /** Latency of acknowledging a write into the DRAM buffer. */
  sim::TimeNs write_buffer_latency = sim::Micros(10);

  /** Lognormal sigma for the buffer-insert latency. */
  double write_buffer_sigma = 0.22;

  /** DRAM write buffer capacity in 4KB entries. */
  int write_buffer_slots = 512;

  /** Quiet period after which the device enters read-only service. */
  sim::TimeNs readonly_window = sim::Millis(1);

  /** Duration of a garbage-collection die stall. */
  sim::TimeNs gc_pause = sim::Millis(2);

  /** Probability of a GC stall per flushed 4KB chunk. */
  double gc_prob_per_flush_chunk = 0.001;

  /** Number of NVMe hardware submission/completion queue pairs. */
  int num_hw_queues = 64;

  /** Depth of each hardware queue. */
  int hw_queue_depth = 1024;

  /** Logical sector size in bytes. */
  uint32_t sector_bytes = 512;

  /** Flash page / striping granularity in bytes (cost quantum). */
  uint32_t page_bytes = 4096;

  /** Device capacity in sectors. Default 800 GiB. */
  uint64_t capacity_sectors = (800ULL << 30) / 512;

  /** Sectors per 4KB page. */
  uint32_t SectorsPerPage() const { return page_bytes / sector_bytes; }

  /**
   * Ideal token capacity under mixed load (tokens/second), where one
   * token is the die time of one 4KB mixed-mode read. The real
   * saturation point is slightly lower due to service-time jitter.
   */
  double MixedTokenCapacityPerSec() const {
    return static_cast<double>(num_dies) /
           sim::ToSeconds(read_service_mixed);
  }

  /** The three devices characterized in the paper (Figures 1 and 3). */
  static DeviceProfile DeviceA();
  static DeviceProfile DeviceB();
  static DeviceProfile DeviceC();

  /** Looks up a profile by name ("A", "B", "C"). */
  static DeviceProfile ByName(const std::string& name);
};

}  // namespace reflex::flash

#endif  // REFLEX_FLASH_DEVICE_PROFILE_H_
