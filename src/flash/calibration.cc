#include "flash/calibration.h"

#include <algorithm>
#include <cmath>

#include "flash/flash_device.h"
#include "sim/histogram.h"
#include "sim/logging.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace reflex::flash {

namespace {

/**
 * Callback-driven workload runner used for calibration probes and the
 * Figure 1 / Figure 3 benches. Issues 4KB-aligned random I/Os with a
 * given read ratio, either closed-loop (fixed queue depth) or
 * open-loop (Poisson arrivals). Read latency and throughput are
 * recorded only inside the measurement window [warm_end, end).
 */
class ProbeRunner {
 public:
  ProbeRunner(sim::Simulator& sim, FlashDevice& device, double read_ratio,
              uint32_t request_bytes, uint64_t seed)
      : sim_(sim),
        device_(device),
        rng_(seed, "calibration_probe"),
        read_ratio_(read_ratio),
        sectors_(std::max<uint32_t>(
            1, request_bytes / device.profile().sector_bytes)) {
    qp_ = device_.AllocQueuePair();
    REFLEX_CHECK(qp_ != nullptr);
    const uint64_t pages = device_.profile().capacity_sectors /
                           device_.profile().SectorsPerPage();
    const uint64_t span_pages =
        (sectors_ + device_.profile().SectorsPerPage() - 1) /
        device_.profile().SectorsPerPage();
    REFLEX_CHECK(pages > span_pages);
    max_page_ = pages - span_pages;
  }

  ~ProbeRunner() { device_.FreeQueuePair(qp_); }

  void RunClosedLoop(int queue_depth, sim::TimeNs warm_end, sim::TimeNs end) {
    warm_end_ = warm_end;
    end_ = end;
    closed_loop_ = true;
    for (int i = 0; i < queue_depth; ++i) IssueOne();
    DrainAll();
  }

  void RunOpenLoop(double offered_iops, sim::TimeNs warm_end,
                   sim::TimeNs end) {
    warm_end_ = warm_end;
    end_ = end;
    closed_loop_ = false;
    REFLEX_CHECK(offered_iops > 0.0);
    mean_interarrival_ = 1e9 / offered_iops;
    ScheduleNextArrival();
    DrainAll();
  }

  double MeasuredIops() const {
    return static_cast<double>(ops_in_window_) /
           sim::ToSeconds(end_ - warm_end_);
  }

  const sim::Histogram& read_latency() const { return read_latency_; }
  int64_t dropped() const { return dropped_; }

 private:
  void ScheduleNextArrival() {
    const auto gap =
        static_cast<sim::TimeNs>(rng_.NextExponential(mean_interarrival_));
    sim_.ScheduleAfter(gap, [this] {
      if (sim_.Now() >= end_) return;
      IssueOne();
      ScheduleNextArrival();
    });
  }

  void IssueOne() {
    FlashCommand cmd;
    const bool is_read = rng_.NextBernoulli(read_ratio_);
    cmd.op = is_read ? FlashOp::kRead : FlashOp::kWrite;
    const uint64_t page = rng_.NextBounded(max_page_ + 1);
    cmd.lba = page * device_.profile().SectorsPerPage();
    cmd.sectors = sectors_;
    ++outstanding_;
    const bool ok =
        device_.Submit(qp_, cmd, [this, is_read](const FlashCompletion& c) {
          OnComplete(c, is_read);
        });
    if (!ok) {
      --outstanding_;
      ++dropped_;
    }
  }

  void OnComplete(const FlashCompletion& c, bool is_read) {
    --outstanding_;
    if (c.complete_time >= warm_end_ && c.complete_time < end_) {
      ++ops_in_window_;
      if (is_read && c.submit_time >= warm_end_) {
        read_latency_.Record(c.Latency());
      }
    }
    if (closed_loop_ && sim_.Now() < end_) IssueOne();
  }

  void DrainAll() {
    while (sim_.Now() < end_ || outstanding_ > 0) {
      sim_.RunUntil(std::max(end_, sim_.Now() + sim::Millis(1)));
      if (sim_.Now() >= end_ && outstanding_ == 0) break;
      if (sim_.PendingEvents() == 0 && outstanding_ > 0) {
        REFLEX_PANIC("calibration probe stalled with %d outstanding I/Os",
                     outstanding_);
      }
    }
  }

  sim::Simulator& sim_;
  FlashDevice& device_;
  sim::Rng rng_;
  double read_ratio_;
  uint32_t sectors_;
  uint64_t max_page_ = 0;
  QueuePair* qp_ = nullptr;

  bool closed_loop_ = true;
  double mean_interarrival_ = 0.0;
  sim::TimeNs warm_end_ = 0;
  sim::TimeNs end_ = 0;
  int outstanding_ = 0;
  int64_t ops_in_window_ = 0;
  int64_t dropped_ = 0;
  sim::Histogram read_latency_;
};

}  // namespace

double CalibrationResult::MaxTokenRateForSlo(sim::TimeNs latency_slo) const {
  REFLEX_CHECK(!latency_curve.empty());
  if (latency_curve.front().read_p95 > latency_slo) {
    // Even the lightest measured load violates the SLO; scale down
    // proportionally as a conservative guess.
    const auto& p = latency_curve.front();
    return p.token_rate * static_cast<double>(latency_slo) /
           static_cast<double>(p.read_p95);
  }
  for (size_t i = 1; i < latency_curve.size(); ++i) {
    const auto& lo = latency_curve[i - 1];
    const auto& hi = latency_curve[i];
    if (hi.read_p95 > latency_slo) {
      const double span = static_cast<double>(hi.read_p95 - lo.read_p95);
      if (span <= 0.0) return lo.token_rate;
      const double f = static_cast<double>(latency_slo - lo.read_p95) / span;
      return lo.token_rate + f * (hi.token_rate - lo.token_rate);
    }
  }
  return latency_curve.back().token_rate;
}

sim::TimeNs CalibrationResult::LatencyAtTokenRate(double token_rate) const {
  REFLEX_CHECK(!latency_curve.empty());
  if (token_rate <= latency_curve.front().token_rate) {
    return latency_curve.front().read_p95;
  }
  for (size_t i = 1; i < latency_curve.size(); ++i) {
    const auto& lo = latency_curve[i - 1];
    const auto& hi = latency_curve[i];
    if (token_rate <= hi.token_rate) {
      const double f =
          (token_rate - lo.token_rate) / (hi.token_rate - lo.token_rate);
      return lo.read_p95 +
             static_cast<sim::TimeNs>(
                 f * static_cast<double>(hi.read_p95 - lo.read_p95));
    }
  }
  return latency_curve.back().read_p95;
}

CalibrationResult CannedCalibrationA() {
  CalibrationResult c;
  c.write_cost = 10.0;
  c.read_cost_readonly = 0.5;
  c.token_capacity_per_sec = 547000.0;
  c.latency_curve = {
      {54696.4, 28945.0, sim::Micros(145), sim::Micros(113)},
      {109392.7, 58120.0, sim::Micros(162), sim::Micros(121)},
      {164089.1, 86995.0, sim::Micros(178), sim::Micros(126)},
      {218785.5, 115525.0, sim::Micros(199), sim::Micros(137)},
      {273481.9, 144005.0, sim::Micros(223), sim::Micros(150)},
      {328178.2, 172470.0, sim::Micros(260), sim::Micros(166)},
      {355526.4, 186700.0, sim::Micros(291), sim::Micros(179)},
      {382874.6, 201237.5, sim::Micros(348), sim::Micros(199)},
      {410222.8, 215507.5, sim::Micros(397), sim::Micros(210)},
      {437571.0, 229790.0, sim::Micros(614), sim::Micros(248)},
      {464919.2, 244222.5, sim::Micros(909), sim::Micros(287)},
      {492267.4, 258982.5, sim::Micros(1622), sim::Micros(404)},
      {508676.3, 267547.5, sim::Micros(2015), sim::Micros(505)},
      {525085.2, 276207.5, sim::Micros(2785), sim::Micros(755)},
      {536024.5, 282335.0, sim::Micros(3113), sim::Micros(924)},
  };
  return c;
}

double MeasureSaturationIops(sim::Simulator& sim, FlashDevice& device,
                             double read_ratio, uint32_t request_bytes,
                             const CalibrationConfig& config) {
  ProbeRunner probe(sim, device, read_ratio, request_bytes,
                    config.seed ^ 0x5a7e);
  const sim::TimeNs start = sim.Now();
  probe.RunClosedLoop(
      config.saturation_queue_depth, start + config.warmup_duration,
      start + config.warmup_duration + config.measure_duration);
  return probe.MeasuredIops();
}

LatencyPoint MeasureOpenLoopPoint(sim::Simulator& sim, FlashDevice& device,
                                  double offered_iops, double read_ratio,
                                  uint32_t request_bytes,
                                  const CalibrationConfig& config) {
  ProbeRunner probe(sim, device, read_ratio, request_bytes,
                    config.seed ^ 0x07e4);
  const sim::TimeNs start = sim.Now();
  probe.RunOpenLoop(offered_iops, start + config.warmup_duration,
                    start + config.warmup_duration + config.measure_duration);
  LatencyPoint point;
  point.iops = probe.MeasuredIops();
  point.read_p95 = probe.read_latency().Percentile(0.95);
  point.read_mean = static_cast<sim::TimeNs>(probe.read_latency().Mean());
  return point;
}

CalibrationResult Calibrate(sim::Simulator& sim, FlashDevice& device,
                            const CalibrationConfig& config) {
  CalibrationResult result;

  // Step 1: saturation throughput per mixed read ratio.
  const std::vector<double>& ratios = config.mixed_read_ratios;
  REFLEX_CHECK(ratios.size() >= 2);
  std::vector<double> saturation_iops;
  saturation_iops.reserve(ratios.size());
  for (double r : ratios) {
    saturation_iops.push_back(
        MeasureSaturationIops(sim, device, r, config.request_bytes, config));
  }

  // Step 2: least-squares fit of (token capacity T, write cost w) from
  //   K_r * r * 1 + K_r * (1 - r) * w = T   for each mixed ratio r.
  double saa = 0, sa = 0, sb = 0, sab = 0;
  const double n = static_cast<double>(ratios.size());
  for (size_t i = 0; i < ratios.size(); ++i) {
    const double a = saturation_iops[i] * (1.0 - ratios[i]);
    const double b = saturation_iops[i] * ratios[i];
    saa += a * a;
    sa += a;
    sb += b;
    sab += a * b;
  }
  const double denom = saa - sa * sa / n;
  REFLEX_CHECK(denom > 0.0);
  result.write_cost = (sa * sb / n - sab) / denom;
  result.token_capacity_per_sec = (sa * result.write_cost + sb) / n;

  // Step 3: read-only saturation gives C(read, r = 100%).
  const double k100 =
      MeasureSaturationIops(sim, device, 1.0, config.request_bytes, config);
  REFLEX_CHECK(k100 > 0.0);
  result.read_cost_readonly = result.token_capacity_per_sec / k100;

  // Step 4: p95-vs-token-rate curve at the configured mixed ratio.
  const double r = config.curve_read_ratio;
  const double tokens_per_io = r + (1.0 - r) * result.write_cost;
  for (double f : config.curve_fractions) {
    const double token_rate = f * result.token_capacity_per_sec;
    const double offered_iops = token_rate / tokens_per_io;
    LatencyPoint point = MeasureOpenLoopPoint(sim, device, offered_iops, r,
                                              config.request_bytes, config);
    point.token_rate = token_rate;
    result.latency_curve.push_back(point);
  }

  return result;
}

}  // namespace reflex::flash
