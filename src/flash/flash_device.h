#ifndef REFLEX_FLASH_FLASH_DEVICE_H_
#define REFLEX_FLASH_FLASH_DEVICE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "flash/device_profile.h"
#include "obs/hooks.h"
#include "sim/fault.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace reflex::flash {

/** NVMe command opcode subset used by this model. */
enum class FlashOp : uint8_t { kRead = 0, kWrite = 1 };

/** Completion status. */
enum class FlashStatus : uint8_t {
  kOk = 0,
  kInvalidLba = 1,
  kQueueFull = 2,
  kMediaError = 3,  // uncorrectable error (injected by a FaultPlan)
};

/** One NVMe command. */
struct FlashCommand {
  FlashOp op = FlashOp::kRead;
  uint64_t lba = 0;        // starting sector
  uint32_t sectors = 8;    // length in sectors (8 = 4KB)
  /**
   * Optional data pointer (read destination / write source) of
   * sectors * sector_bytes bytes. Null means timing-only (load
   * generators); the backing store is untouched.
   */
  uint8_t* data = nullptr;
  /** Opaque caller context, echoed in the completion. */
  uint64_t cookie = 0;
};

/** Completion record delivered to the submitter's callback. */
struct FlashCompletion {
  FlashStatus status = FlashStatus::kOk;
  uint64_t cookie = 0;
  sim::TimeNs submit_time = 0;
  sim::TimeNs complete_time = 0;

  sim::TimeNs Latency() const { return complete_time - submit_time; }
};

using FlashCallback = std::function<void(const FlashCompletion&)>;

class FlashDevice;

/**
 * An NVMe submission/completion queue pair. Each ReFlex dataplane
 * thread owns one exclusively (the paper's execution model); the
 * device arbitrates across pairs in simple round-robin, which is
 * exactly why a software QoS scheduler is needed.
 */
class QueuePair {
 public:
  int id() const { return id_; }
  int Outstanding() const { return outstanding_; }
  int Depth() const { return depth_; }

 private:
  friend class FlashDevice;
  QueuePair(FlashDevice* dev, int id, int depth)
      : dev_(dev), id_(id), depth_(depth) {}

  FlashDevice* dev_;
  int id_;
  int depth_;
  int outstanding_ = 0;
};

/** Aggregate device counters. */
struct FlashDeviceStats {
  int64_t reads_completed = 0;
  int64_t writes_completed = 0;
  int64_t read_sectors = 0;
  int64_t write_sectors = 0;
  int64_t gc_stalls = 0;
  int64_t queue_full_rejections = 0;
  // Injected-fault outcomes (always zero without an attached FaultPlan).
  int64_t read_errors = 0;
  int64_t write_errors = 0;
  int64_t latency_spikes = 0;
};

/**
 * Simulated NVMe Flash device (see DeviceProfile for the model).
 *
 * Submissions are asynchronous: Submit() returns immediately and the
 * callback fires at the simulated completion time. Payload data, when
 * provided, is stored in / read from a sparse in-memory page store so
 * that applications (the LSM key-value store, the graph engine) can
 * keep real data on the simulated device.
 */
class FlashDevice {
 public:
  FlashDevice(sim::Simulator& sim, DeviceProfile profile, uint64_t seed);

  const DeviceProfile& profile() const { return profile_; }

  /**
   * Allocates a hardware queue pair. Returns nullptr when the device's
   * queue pairs are exhausted (the paper: "the number of queues is
   * limited, e.g. 64 in high-end devices").
   */
  QueuePair* AllocQueuePair();

  /** Releases a queue pair. Requires no outstanding commands. */
  void FreeQueuePair(QueuePair* qp);

  /**
   * Submits a command on the given queue pair. Returns false (and does
   * not invoke the callback) if the queue is full or the LBA range is
   * invalid -- mirroring a real driver's submission failure.
   */
  bool Submit(QueuePair* qp, const FlashCommand& cmd, FlashCallback cb);

  /** True if the device currently services reads in read-only mode. */
  bool InReadOnlyMode() const;

  /** Mean die utilization in [0,1] at `now` (approximate). */
  double DieUtilization() const;

  /** Number of 4KB flush chunks waiting for or occupying dies. */
  int64_t FlushBacklogChunks() const { return flush_backlog_chunks_; }

  const FlashDeviceStats& stats() const { return stats_; }

  /** Per-op latency histograms (ns), aggregated over device lifetime. */
  const sim::Histogram& read_latency() const { return read_latency_; }
  const sim::Histogram& write_latency() const { return write_latency_; }

  /** Registers device counters/gauges/histograms with `registry`. */
  void AttachMetrics(obs::MetricsRegistry& registry) {
    metrics_ = obs::FlashMetrics::ForDevice(registry);
  }

  /**
   * Attaches a fault-injection plan (null detaches). The device
   * consults kFlashReadError / kFlashWriteError / kFlashLatencySpike
   * per command (scoped to the die of the command's first page) and
   * kFlashBrownout as a device-wide service-time multiplier. The plan
   * draws from its own RNG stream, so an attached-but-idle plan leaves
   * the device's timing bit-identical.
   */
  void SetFaultPlan(sim::FaultPlan* plan) { fault_ = plan; }

 private:
  struct InFlight {
    FlashCommand cmd;
    FlashCallback cb;
    QueuePair* qp;
    sim::TimeNs submit_time;
    int chunks_remaining;
  };

  struct PendingWrite {
    std::shared_ptr<InFlight> op;
  };

  void StartRead(const std::shared_ptr<InFlight>& op);
  void AdmitWrite(const std::shared_ptr<InFlight>& op);
  int BufferPagesFor(const FlashCommand& cmd) const;
  void Complete(const std::shared_ptr<InFlight>& op, FlashStatus status);
  /** Occupies the die owning `page` and returns the completion time. */
  sim::TimeNs OccupyDie(uint64_t page, sim::TimeNs service);
  sim::TimeNs ReadServiceQuantum();
  /** Applies the brownout slowdown to a die service quantum. */
  sim::TimeNs FaultScaled(sim::TimeNs service) const;
  void CopyToStore(const FlashCommand& cmd);
  void CopyFromStore(const FlashCommand& cmd);
  uint8_t* PageAt(uint64_t page_index, bool create);

  sim::Simulator& sim_;
  DeviceProfile profile_;
  sim::Rng rng_;
  sim::FaultPlan* fault_ = nullptr;

  std::vector<std::unique_ptr<QueuePair>> queue_pairs_;
  std::vector<sim::TimeNs> die_free_;  // per-die next-free time
  int next_flush_die_ = 0;

  int write_buffer_free_;
  std::deque<PendingWrite> pending_writes_;
  int64_t flush_backlog_chunks_ = 0;

  sim::TimeNs last_write_time_ = -(1LL << 62);

  using Page = std::array<uint8_t, 4096>;
  // detlint: allow(unordered-container) hot-path page store: lookup/insert
  // only, never iterated, so hash layout can never reach event order.
  std::unordered_map<uint64_t, std::unique_ptr<Page>> store_;

  FlashDeviceStats stats_;
  sim::Histogram read_latency_;
  sim::Histogram write_latency_;
  obs::FlashMetrics metrics_;
};

}  // namespace reflex::flash

#endif  // REFLEX_FLASH_FLASH_DEVICE_H_
