#ifndef REFLEX_FLASH_CALIBRATION_H_
#define REFLEX_FLASH_CALIBRATION_H_

#include <cstdint>
#include <vector>

#include "flash/device_profile.h"
#include "sim/time.h"

namespace reflex::sim {
class Simulator;
}

namespace reflex::flash {

class FlashDevice;

/** One point of the measured latency-vs-load curve. */
struct LatencyPoint {
  double token_rate = 0.0;     // weighted tokens/second offered
  double iops = 0.0;           // raw IOPS achieved
  sim::TimeNs read_p95 = 0;    // tail read latency at this load
  sim::TimeNs read_mean = 0;
};

/**
 * Output of device calibration (paper section 3.2.1).
 *
 * Costs are in tokens, where one token is the cost of a 4KB random
 * read under mixed (r < 100%) load. The latency curve is measured in
 * token units, so it is (approximately) workload-independent -- the
 * collapse demonstrated by the paper's Figure 3.
 */
struct CalibrationResult {
  /** C(write, r < 100%): 10 / 20 / 16 for the paper's devices A/B/C. */
  double write_cost = 10.0;

  /** C(read, r = 100%): 0.5 for the paper's device A. */
  double read_cost_readonly = 1.0;

  /** Weighted tokens/second the device sustains at saturation. */
  double token_capacity_per_sec = 0.0;

  /** Measured p95-read-latency vs token-rate curve, ascending rate. */
  std::vector<LatencyPoint> latency_curve;

  /**
   * Largest token rate whose measured p95 read latency stays within
   * `latency_slo` (linear interpolation between measured points).
   * This is the scheduler's token generation rate for the strictest
   * SLO (e.g. 420K tokens/s for 500us on device A).
   */
  double MaxTokenRateForSlo(sim::TimeNs latency_slo) const;

  /** Interpolated p95 read latency at a given token rate. */
  sim::TimeNs LatencyAtTokenRate(double token_rate) const;
};

/**
 * The calibration of device A as the full calibrator recovers it,
 * returned as a constant. Tests and the simtest harness use it to skip
 * the (slow, seed-sensitive) calibration phase while still exercising
 * the real cost model and admission math.
 */
CalibrationResult CannedCalibrationA();

/** Knobs for the calibration run. */
struct CalibrationConfig {
  /** Read ratios used for the mixed-load cost fit. */
  std::vector<double> mixed_read_ratios = {0.50, 0.75, 0.90, 0.95, 0.99};

  /** Request size for calibration I/Os (the token quantum). */
  uint32_t request_bytes = 4096;

  /** Measurement window per sweep point. */
  sim::TimeNs measure_duration = sim::Millis(300);

  /** Warmup discarded before each measurement window. */
  sim::TimeNs warmup_duration = sim::Millis(100);

  /** Closed-loop queue depth used to find saturation throughput. */
  int saturation_queue_depth = 512;

  /** Load fractions (of measured capacity) for the latency curve. */
  std::vector<double> curve_fractions = {0.1, 0.2, 0.3, 0.4,  0.5,  0.6,
                                         0.7, 0.8, 0.85, 0.9, 0.95, 0.98};

  /** Read ratio at which the latency curve is measured. */
  double curve_read_ratio = 0.90;

  uint64_t seed = 42;
};

/**
 * Calibrates a device: finds per-ratio saturation throughput with a
 * closed-loop probe, least-squares fits the write cost and read-only
 * discount, then measures the p95-vs-token-rate curve with an
 * open-loop (Poisson) generator. Uses random-LBA writes, which the
 * paper notes conservatively triggers worst-case garbage collection.
 *
 * The calibrator treats the device as a black box: it never reads the
 * DeviceProfile constants it is trying to recover (tests verify the
 * fit recovers them).
 */
CalibrationResult Calibrate(sim::Simulator& sim, FlashDevice& device,
                            const CalibrationConfig& config);

/**
 * Measures saturation IOPS for one workload mix on an idle device
 * (closed-loop at config.saturation_queue_depth). Exposed separately
 * for tests and for the Figure 1 / Figure 3 benches.
 */
double MeasureSaturationIops(sim::Simulator& sim, FlashDevice& device,
                             double read_ratio, uint32_t request_bytes,
                             const CalibrationConfig& config);

/**
 * Runs one open-loop measurement point: offered `iops` with the given
 * mix and size; returns achieved IOPS and read-latency stats.
 */
LatencyPoint MeasureOpenLoopPoint(sim::Simulator& sim, FlashDevice& device,
                                  double offered_iops, double read_ratio,
                                  uint32_t request_bytes,
                                  const CalibrationConfig& config);

}  // namespace reflex::flash

#endif  // REFLEX_FLASH_CALIBRATION_H_
