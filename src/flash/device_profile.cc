#include "flash/device_profile.h"

#include "sim/logging.h"

namespace reflex::flash {

DeviceProfile DeviceProfile::DeviceA() {
  DeviceProfile p;
  p.name = "A";
  p.num_dies = 35;
  p.read_service_mixed = sim::Micros(61);     // ~574K tokens/s capacity
  p.read_service_readonly = sim::Micros(30.5);  // C(read, r=100%) = 0.5
  p.write_cost = 10.0;                        // C(write) = 10 tokens
  return p;
}

DeviceProfile DeviceProfile::DeviceB() {
  // Older / smaller device: ~300K tokens/s, no read-only discount,
  // writes 20x reads (the most write-hostile device in Figure 3).
  DeviceProfile p;
  p.name = "B";
  p.num_dies = 18;
  p.read_service_mixed = sim::Micros(61);
  p.read_service_readonly = sim::Micros(61);  // C(read, r=100%) = 1
  p.write_cost = 20.0;
  p.write_buffer_slots = 256;
  p.capacity_sectors = (400ULL << 30) / 512;
  return p;
}

DeviceProfile DeviceProfile::DeviceC() {
  // Largest device: ~800K tokens/s, partial read-only discount,
  // writes 16x reads.
  DeviceProfile p;
  p.name = "C";
  p.num_dies = 49;
  p.read_service_mixed = sim::Micros(61);
  p.read_service_readonly = sim::Micros(43);  // C(read, r=100%) ~ 0.7
  p.write_cost = 16.0;
  p.write_buffer_slots = 1024;
  p.capacity_sectors = (1600ULL << 30) / 512;
  return p;
}

DeviceProfile DeviceProfile::ByName(const std::string& name) {
  if (name == "A") return DeviceA();
  if (name == "B") return DeviceB();
  if (name == "C") return DeviceC();
  REFLEX_FATAL("unknown device profile '%s' (expected A, B, or C)",
               name.c_str());
}

}  // namespace reflex::flash
