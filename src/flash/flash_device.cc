#include "flash/flash_device.h"

#include <algorithm>
#include <cstring>

#include "sim/logging.h"

namespace reflex::flash {

FlashDevice::FlashDevice(sim::Simulator& sim, DeviceProfile profile,
                         uint64_t seed)
    : sim_(sim),
      profile_(std::move(profile)),
      rng_(seed, "flash_device"),
      write_buffer_free_(profile_.write_buffer_slots) {
  REFLEX_CHECK(profile_.num_dies > 0);
  REFLEX_CHECK(profile_.write_cost >= 1.0);
  REFLEX_CHECK(profile_.page_bytes % profile_.sector_bytes == 0);
  die_free_.assign(profile_.num_dies, 0);
}

QueuePair* FlashDevice::AllocQueuePair() {
  // Reuse a freed slot first so repeated alloc/free cycles do not
  // exhaust the hardware limit.
  for (size_t i = 0; i < queue_pairs_.size(); ++i) {
    if (queue_pairs_[i] == nullptr) {
      queue_pairs_[i].reset(
          new QueuePair(this, static_cast<int>(i), profile_.hw_queue_depth));
      return queue_pairs_[i].get();
    }
  }
  if (static_cast<int>(queue_pairs_.size()) >= profile_.num_hw_queues) {
    return nullptr;
  }
  int id = static_cast<int>(queue_pairs_.size());
  queue_pairs_.emplace_back(new QueuePair(this, id, profile_.hw_queue_depth));
  return queue_pairs_.back().get();
}

void FlashDevice::FreeQueuePair(QueuePair* qp) {
  REFLEX_CHECK(qp != nullptr && qp->dev_ == this);
  REFLEX_CHECK(qp->outstanding_ == 0);
  // Queue pair ids stay stable; just mark the slot reusable by reset.
  for (auto& owned : queue_pairs_) {
    if (owned.get() == qp) {
      owned.reset();
      return;
    }
  }
  REFLEX_PANIC("queue pair not owned by this device");
}

bool FlashDevice::Submit(QueuePair* qp, const FlashCommand& cmd,
                         FlashCallback cb) {
  REFLEX_CHECK(qp != nullptr && qp->dev_ == this);
  if (qp->outstanding_ >= qp->depth_) {
    ++stats_.queue_full_rejections;
    if (metrics_.enabled()) metrics_.queue_full_rejections->Increment();
    return false;
  }
  if (cmd.sectors == 0 ||
      cmd.lba + cmd.sectors > profile_.capacity_sectors) {
    return false;
  }
  ++qp->outstanding_;
  if (metrics_.enabled()) metrics_.queue_depth->Add(1);

  auto op = std::make_shared<InFlight>();
  op->cmd = cmd;
  op->cb = std::move(cb);
  op->qp = qp;
  op->submit_time = sim_.Now();
  op->chunks_remaining = 0;

  if (cmd.op == FlashOp::kRead) {
    if (cmd.data != nullptr) CopyFromStore(cmd);
    StartRead(op);
  } else {
    if (fault_ != nullptr &&
        fault_->Roll(sim::FaultKind::kFlashWriteError,
                     (cmd.lba / profile_.SectorsPerPage()) %
                         die_free_.size())) {
      // Media error during programming: the data never reaches the
      // store; fail at the normal buffer-ack latency.
      ++stats_.write_errors;
      if (metrics_.enabled()) metrics_.write_errors->Increment();
      sim_.ScheduleAfter(
          profile_.write_buffer_latency + profile_.fixed_op_overhead / 4,
          [this, op] { Complete(op, FlashStatus::kMediaError); });
      return true;
    }
    if (cmd.data != nullptr) CopyToStore(cmd);
    last_write_time_ = sim_.Now();
    const int pages = BufferPagesFor(cmd);
    if (write_buffer_free_ >= pages && pending_writes_.empty()) {
      write_buffer_free_ -= pages;
      AdmitWrite(op);
    } else {
      pending_writes_.push_back(PendingWrite{op});
    }
  }
  return true;
}

int FlashDevice::BufferPagesFor(const FlashCommand& cmd) const {
  // Buffer slots are 4KB pages; a command larger than the whole buffer
  // is admitted once the buffer is completely free.
  const uint32_t spp = profile_.SectorsPerPage();
  const uint64_t first_page = cmd.lba / spp;
  const uint64_t last_page = (cmd.lba + cmd.sectors - 1) / spp;
  const auto pages = static_cast<int>(last_page - first_page + 1);
  return std::min(pages, profile_.write_buffer_slots);
}

sim::TimeNs FlashDevice::ReadServiceQuantum() {
  const sim::TimeNs base = InReadOnlyMode() ? profile_.read_service_readonly
                                            : profile_.read_service_mixed;
  return static_cast<sim::TimeNs>(rng_.NextLognormal(
      static_cast<double>(base), profile_.service_sigma));
}

sim::TimeNs FlashDevice::FaultScaled(sim::TimeNs service) const {
  if (fault_ != nullptr &&
      fault_->WindowActive(sim::FaultKind::kFlashBrownout)) {
    return static_cast<sim::TimeNs>(static_cast<double>(service) *
                                    fault_->brownout_slowdown());
  }
  return service;
}

sim::TimeNs FlashDevice::OccupyDie(uint64_t die, sim::TimeNs service) {
  const int d = static_cast<int>(die % die_free_.size());
  const sim::TimeNs start = std::max(sim_.Now(), die_free_[d]);
  const sim::TimeNs done = start + service;
  die_free_[d] = done;
  return done;
}

void FlashDevice::StartRead(const std::shared_ptr<InFlight>& op) {
  const uint32_t spp = profile_.SectorsPerPage();
  const uint64_t first_page = op->cmd.lba / spp;
  const uint64_t last_page = (op->cmd.lba + op->cmd.sectors - 1) / spp;
  sim::TimeNs done = sim_.Now();
  for (uint64_t page = first_page; page <= last_page; ++page) {
    done = std::max(done, OccupyDie(page, FaultScaled(ReadServiceQuantum())));
  }
  done += profile_.read_pipeline_latency + profile_.fixed_op_overhead;
  FlashStatus status = FlashStatus::kOk;
  if (fault_ != nullptr) {
    const uint64_t die = first_page % die_free_.size();
    if (fault_->Roll(sim::FaultKind::kFlashReadError, die)) {
      // Uncorrectable read: the dies were still occupied (the
      // controller retried internally), but the data is lost.
      status = FlashStatus::kMediaError;
      ++stats_.read_errors;
      if (metrics_.enabled()) metrics_.read_errors->Increment();
    }
    if (fault_->Roll(sim::FaultKind::kFlashLatencySpike, die)) {
      done += fault_->latency_spike();
      ++stats_.latency_spikes;
    }
  }
  sim_.ScheduleAt(done, [this, op, status] { Complete(op, status); });
}

void FlashDevice::AdmitWrite(const std::shared_ptr<InFlight>& op) {
  // Acknowledge once the data is in the DRAM buffer.
  const sim::TimeNs ack_latency =
      static_cast<sim::TimeNs>(rng_.NextLognormal(
          static_cast<double>(profile_.write_buffer_latency),
          profile_.write_buffer_sigma)) +
      profile_.fixed_op_overhead / 4;
  sim_.ScheduleAfter(ack_latency,
                     [this, op] { Complete(op, FlashStatus::kOk); });

  // Background flush: pages * write_cost die quanta, spread round-robin
  // over dies. The buffer slot frees when the last quantum finishes.
  const uint32_t spp = profile_.SectorsPerPage();
  const uint64_t first_page = op->cmd.lba / spp;
  const uint64_t last_page = (op->cmd.lba + op->cmd.sectors - 1) / spp;
  const double quanta_needed =
      static_cast<double>(last_page - first_page + 1) * profile_.write_cost;
  const int whole = static_cast<int>(quanta_needed);
  const double frac = quanta_needed - whole;

  sim::TimeNs flush_done = sim_.Now();
  int chunks = 0;
  for (int i = 0; i < whole; ++i) {
    sim::TimeNs q = static_cast<sim::TimeNs>(
        rng_.NextLognormal(static_cast<double>(profile_.read_service_mixed),
                           profile_.service_sigma));
    const int die = next_flush_die_++;
    if (next_flush_die_ >= profile_.num_dies) next_flush_die_ = 0;
    if (rng_.NextBernoulli(profile_.gc_prob_per_flush_chunk)) {
      q += profile_.gc_pause;
      ++stats_.gc_stalls;
      if (metrics_.enabled()) metrics_.gc_stalls->Increment();
    }
    flush_done = std::max(flush_done, OccupyDie(die, FaultScaled(q)));
    ++chunks;
  }
  if (frac > 1e-9) {
    const sim::TimeNs q = static_cast<sim::TimeNs>(
        frac * static_cast<double>(profile_.read_service_mixed));
    const int die = next_flush_die_++;
    if (next_flush_die_ >= profile_.num_dies) next_flush_die_ = 0;
    flush_done = std::max(flush_done, OccupyDie(die, FaultScaled(q)));
    ++chunks;
  }
  flush_backlog_chunks_ += chunks;
  if (metrics_.enabled()) {
    metrics_.flush_backlog_chunks->Set(flush_backlog_chunks_);
  }

  const int pages_held = BufferPagesFor(op->cmd);
  sim_.ScheduleAt(flush_done, [this, chunks, pages_held] {
    flush_backlog_chunks_ -= chunks;
    if (metrics_.enabled()) {
      metrics_.flush_backlog_chunks->Set(flush_backlog_chunks_);
    }
    write_buffer_free_ += pages_held;
    while (!pending_writes_.empty()) {
      auto next = pending_writes_.front().op;
      const int needed = BufferPagesFor(next->cmd);
      if (write_buffer_free_ < needed) break;
      write_buffer_free_ -= needed;
      pending_writes_.pop_front();
      AdmitWrite(next);
    }
  });
}

void FlashDevice::Complete(const std::shared_ptr<InFlight>& op,
                           FlashStatus status) {
  --op->qp->outstanding_;
  FlashCompletion completion;
  completion.status = status;
  completion.cookie = op->cmd.cookie;
  completion.submit_time = op->submit_time;
  completion.complete_time = sim_.Now();
  // Failed commands are accounted in read_errors/write_errors at the
  // injection site; success counters and latency distributions track
  // only served I/O.
  if (status == FlashStatus::kOk) {
    if (op->cmd.op == FlashOp::kRead) {
      ++stats_.reads_completed;
      stats_.read_sectors += op->cmd.sectors;
      read_latency_.Record(completion.Latency());
    } else {
      ++stats_.writes_completed;
      stats_.write_sectors += op->cmd.sectors;
      write_latency_.Record(completion.Latency());
    }
  }
  if (metrics_.enabled()) {
    metrics_.queue_depth->Add(-1);
    if (status == FlashStatus::kOk) {
      if (op->cmd.op == FlashOp::kRead) {
        metrics_.reads_completed->Increment();
        metrics_.read_service_ns->Record(completion.Latency());
      } else {
        metrics_.writes_completed->Increment();
        metrics_.write_service_ns->Record(completion.Latency());
      }
    }
  }
  if (op->cb) op->cb(completion);
}

bool FlashDevice::InReadOnlyMode() const {
  return flush_backlog_chunks_ == 0 &&
         sim_.Now() - last_write_time_ > profile_.readonly_window;
}

double FlashDevice::DieUtilization() const {
  const sim::TimeNs now = sim_.Now();
  int busy = 0;
  for (sim::TimeNs t : die_free_) {
    if (t > now) ++busy;
  }
  return static_cast<double>(busy) / static_cast<double>(die_free_.size());
}

uint8_t* FlashDevice::PageAt(uint64_t page_index, bool create) {
  auto it = store_.find(page_index);
  if (it != store_.end()) return it->second->data();
  if (!create) return nullptr;
  auto page = std::make_unique<Page>();
  page->fill(0);
  uint8_t* raw = page->data();
  store_.emplace(page_index, std::move(page));
  return raw;
}

void FlashDevice::CopyToStore(const FlashCommand& cmd) {
  const uint32_t sector = profile_.sector_bytes;
  const uint32_t page_bytes = profile_.page_bytes;
  uint64_t byte_off = cmd.lba * sector;
  uint64_t remaining = static_cast<uint64_t>(cmd.sectors) * sector;
  const uint8_t* src = cmd.data;
  while (remaining > 0) {
    const uint64_t page = byte_off / page_bytes;
    const uint64_t in_page = byte_off % page_bytes;
    const uint64_t n = std::min<uint64_t>(remaining, page_bytes - in_page);
    std::memcpy(PageAt(page, /*create=*/true) + in_page, src, n);
    src += n;
    byte_off += n;
    remaining -= n;
  }
}

void FlashDevice::CopyFromStore(const FlashCommand& cmd) {
  const uint32_t sector = profile_.sector_bytes;
  const uint32_t page_bytes = profile_.page_bytes;
  uint64_t byte_off = cmd.lba * sector;
  uint64_t remaining = static_cast<uint64_t>(cmd.sectors) * sector;
  uint8_t* dst = cmd.data;
  while (remaining > 0) {
    const uint64_t page = byte_off / page_bytes;
    const uint64_t in_page = byte_off % page_bytes;
    const uint64_t n = std::min<uint64_t>(remaining, page_bytes - in_page);
    const uint8_t* src = PageAt(page, /*create=*/false);
    if (src == nullptr) {
      std::memset(dst, 0, n);  // unwritten Flash reads as zeroes
    } else {
      std::memcpy(dst, src + in_page, n);
    }
    dst += n;
    byte_off += n;
    remaining -= n;
  }
}

}  // namespace reflex::flash
