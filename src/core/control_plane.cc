#include "core/control_plane.h"

#include <algorithm>
#include <limits>

#include "core/reflex_server.h"
#include "sim/logging.h"

namespace reflex::core {

ControlPlane::ControlPlane(ReflexServer& server) : server_(server) {}

ControlPlane::~ControlPlane() {
  if (monitor_handle_) monitor_handle_.destroy();
}

Tenant* ControlPlane::TryRegister(const SloSpec& slo, TenantClass cls,
                                  ReqStatus* status) {
  auto set_status = [status](ReqStatus s) {
    if (status != nullptr) *status = s;
  };

  if (cls == TenantClass::kLatencyCritical) {
    if (slo.iops == 0 || slo.latency <= 0 || slo.read_fraction < 0.0 ||
        slo.read_fraction > 1.0) {
      set_status(ReqStatus::kOutOfResources);
      return nullptr;
    }
    // Admission control: with the new tenant included, the strictest
    // latency SLO determines the device token cap; all LC reservations
    // must fit within it.
    sim::TimeNs strictest = slo.latency;
    double lc_rate_sum =
        server_.cost_model().TokenRateForSlo(slo);
    for (Tenant* t : server_.tenants()) {
      if (!t->active() || !t->IsLatencyCritical()) continue;
      strictest = std::min(strictest, t->slo().latency);
      lc_rate_sum += t->token_rate();
    }
    const double cap =
        server_.calibration().MaxTokenRateForSlo(strictest);
    if (lc_rate_sum > cap) {
      set_status(ReqStatus::kOutOfResources);
      return nullptr;
    }
  }

  Tenant* tenant = server_.CreateTenant(slo, cls);
  const int thread_idx = PickThreadForTenant();
  server_.thread(thread_idx).AdoptTenant(tenant);
  RecomputeRates();
  set_status(ReqStatus::kOk);
  return tenant;
}

void ControlPlane::Unregister(Tenant* tenant) {
  REFLEX_CHECK(tenant != nullptr);
  if (!tenant->active()) return;
  tenant->set_active(false);
  server_.thread(tenant->thread_index()).DropTenant(tenant);
  RecomputeRates();
}

void ControlPlane::OnNegLimit(Tenant& tenant) {
  ++neg_limit_notifications_;
  // Persistent bursting indicates an SLO that needs renegotiation
  // (paper section 3.2.2). Flag after a burst of notifications.
  if (tenant.neg_limit_hits == 100) {
    flagged_tenants_.push_back(tenant.handle());
  }
}

void ControlPlane::RecomputeRates() {
  // Token cap: the rate the device sustains at the strictest LC SLO;
  // without LC tenants, BE traffic may use full device capacity.
  sim::TimeNs strictest = std::numeric_limits<sim::TimeNs>::max();
  double lc_rate_sum = 0.0;
  int num_be = 0;
  for (Tenant* t : server_.tenants()) {
    if (!t->active()) continue;
    if (t->IsLatencyCritical()) {
      strictest = std::min(strictest, t->slo().latency);
      const double rate = server_.cost_model().TokenRateForSlo(t->slo());
      t->set_token_rate(rate);
      lc_rate_sum += rate;
    } else {
      ++num_be;
    }
  }
  if (strictest == std::numeric_limits<sim::TimeNs>::max()) {
    strictest_slo_ = 0;
    scheduler_token_rate_ = server_.calibration().token_capacity_per_sec;
  } else {
    strictest_slo_ = strictest;
    scheduler_token_rate_ =
        server_.calibration().MaxTokenRateForSlo(strictest);
  }
  double be_share =
      num_be > 0
          ? std::max(0.0, scheduler_token_rate_ - lc_rate_sum) / num_be
          : 0.0;
  // Shed best-effort load while the device is browned out or errors
  // are elevated: LC reservations are untouched, BE tenants are
  // throttled to a trickle until the fault clears.
  if (be_shed_active()) be_share *= server_.options().be_shed_factor;
  for (Tenant* t : server_.tenants()) {
    if (t->active() && !t->IsLatencyCritical()) t->set_token_rate(be_share);
  }
}

void ControlPlane::OnBrownout(bool active) {
  brownout_depth_ += active ? 1 : -1;
  if (brownout_depth_ < 0) brownout_depth_ = 0;
  RecomputeRates();
}

double ControlPlane::TenantErrorRate(uint32_t handle) const {
  auto it = tenant_error_rates_.find(handle);
  return it == tenant_error_rates_.end() ? 0.0 : it->second;
}

int ControlPlane::PickThreadForTenant() const {
  // Least-loaded active thread: fewest LC tenants first (LC load
  // dominates), then fewest tenants overall. O(threads) so that
  // registering thousands of tenants stays cheap.
  int best = 0;
  int best_lc = std::numeric_limits<int>::max();
  int best_count = std::numeric_limits<int>::max();
  for (int i = 0; i < server_.num_active_threads(); ++i) {
    const QosScheduler& sched = server_.thread(i).scheduler();
    const int lc = sched.NumLcTenants();
    const int count = sched.NumTenants();
    if (lc < best_lc || (lc == best_lc && count < best_count)) {
      best = i;
      best_lc = lc;
      best_count = count;
    }
  }
  return best;
}

bool ControlPlane::ScaleTo(int n) {
  if (n < 1 || n > server_.options().max_threads) return false;
  while (server_.num_active_threads() < n) {
    server_.AddThreadInternal();
  }
  if (server_.num_active_threads() > n) {
    // Shrink: move tenants off the highest-index threads, then stop
    // them. Threads are not destroyed (stats remain readable).
    for (int i = n; i < server_.num_active_threads(); ++i) {
      DataplaneThread& victim = server_.thread(i);
      for (Tenant* t : server_.tenants()) {
        if (t->active() && t->thread_index() == i) {
          victim.scheduler().RemoveTenant(t);
          const int target = i % n;
          server_.thread(target).AdoptTenant(t);
        }
      }
      victim.Shutdown();
    }
    server_.active_threads_ = n;
    server_.shared().num_threads = n;
    // Marks collected under the old thread count are meaningless for
    // the new quorum; start a fresh epoch (the grow path resets in
    // AddThreadInternal).
    server_.shared().ResetMarks();
  }
  RebalanceTenants();
  if (monitor_running_) ResetMonitorBaselines();
  return true;
}

void ControlPlane::RebalanceTenants() {
  const int n = server_.num_active_threads();
  if (n <= 1) return;
  // Greedy rebalance: assign tenants (largest reservation first) to
  // the least-loaded thread. Mirrors the connection rebalancing the
  // paper inherits from IX, at tenant granularity.
  std::vector<Tenant*> active;
  for (Tenant* t : server_.tenants()) {
    if (t->active()) active.push_back(t);
  }
  std::sort(active.begin(), active.end(), [](Tenant* a, Tenant* b) {
    if (a->token_rate() != b->token_rate()) {
      return a->token_rate() > b->token_rate();
    }
    return a->handle() < b->handle();
  });
  std::vector<double> load(n, 0.0);
  for (Tenant* t : active) {
    int best = 0;
    for (int i = 1; i < n; ++i) {
      if (load[i] < load[best]) best = i;
    }
    load[best] += std::max(t->token_rate(), 1.0);
    if (t->thread_index() != best) {
      server_.thread(t->thread_index()).scheduler().RemoveTenant(t);
      server_.thread(best).AdoptTenant(t);
    }
  }
}

void ControlPlane::StartMonitor() {
  if (monitor_running_) return;
  monitor_running_ = true;
  MonitorLoop();
}

void ControlPlane::ResetMonitorBaselines() {
  const int n = server_.num_threads();
  last_busy_ns_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    last_busy_ns_[i] = server_.thread(i).stats().busy_ns;
  }
  last_monitor_time_ = server_.sim().Now();
}

void ControlPlane::UpdateErrorRates(sim::TimeNs window) {
  const double window_sec = sim::ToSeconds(window);
  int64_t total_errors = 0;
  int64_t total_responses = 0;
  for (int i = 0; i < server_.num_threads(); ++i) {
    const DataplaneStats& s = server_.thread(i).stats();
    total_errors += s.error_responses;
    total_responses += s.responses_tx;
  }
  for (Tenant* t : server_.tenants()) {
    int64_t& last = last_tenant_errors_[t->handle()];
    const int64_t delta = t->errors - last;
    last = t->errors;
    tenant_error_rates_[t->handle()] =
        window_sec > 0.0 ? static_cast<double>(delta) / window_sec : 0.0;
  }
  const int64_t err_delta = total_errors - last_total_errors_;
  const int64_t resp_delta = total_responses - last_total_responses_;
  last_total_errors_ = total_errors;
  last_total_responses_ = total_responses;
  if (resp_delta <= 0) return;
  const double fraction =
      static_cast<double>(err_delta) / static_cast<double>(resp_delta);
  const double threshold = server_.options().error_shed_fraction;
  // Hysteresis: engage above the threshold, disengage below half of
  // it, so the shed decision does not flap around the boundary.
  if (!error_shed_ && fraction > threshold) {
    error_shed_ = true;
    RecomputeRates();
  } else if (error_shed_ && fraction < threshold / 2.0) {
    error_shed_ = false;
    RecomputeRates();
  }
}

sim::Task ControlPlane::MonitorLoop() {
  co_await sim::SelfHandle(&monitor_handle_);
  sim::Simulator& sim = server_.sim();
  ResetMonitorBaselines();
  for (;;) {
    co_await sim::Delay(sim, server_.options().monitor_interval);
    const sim::TimeNs now = sim.Now();
    const sim::TimeNs window = now - last_monitor_time_;
    last_monitor_time_ = now;
    if (window <= 0) continue;
    const int n = server_.num_active_threads();
    if (last_busy_ns_.size() < static_cast<size_t>(server_.num_threads())) {
      last_busy_ns_.resize(server_.num_threads(), 0);
    }
    UpdateErrorRates(window);
    double max_util = 0.0;
    double total_util = 0.0;
    for (int i = 0; i < n; ++i) {
      const sim::TimeNs busy = server_.thread(i).stats().busy_ns;
      const double util =
          static_cast<double>(busy - last_busy_ns_[i]) /
          static_cast<double>(window);
      last_busy_ns_[i] = busy;
      max_util = std::max(max_util, util);
      total_util += util;
    }
    if (max_util > server_.options().scale_up_utilization &&
        n < server_.options().max_threads) {
      ScaleTo(n + 1);
    } else if (n > 1 &&
               total_util / n < server_.options().scale_down_utilization) {
      ScaleTo(n - 1);
    }
  }
}

}  // namespace reflex::core
