#ifndef REFLEX_CORE_PROTOCOL_H_
#define REFLEX_CORE_PROTOCOL_H_

#include <cstdint>
#include <memory>

#include "core/slo.h"
#include "obs/trace.h"

namespace reflex::core {

/**
 * Request types of the ReFlex wire protocol (paper Table 1). The
 * simulation passes parsed request structs around instead of raw
 * bytes, but message sizes on the wire follow these constants so
 * network serialization time and bandwidth are accounted exactly.
 */
enum class ReqType : uint8_t {
  kRegister = 0,    // register a tenant with an SLO
  kUnregister = 1,  // unregister a tenant
  kRead = 2,        // read logical blocks
  kWrite = 3,       // write logical blocks
  /**
   * Ordering barrier (the extension sketched in paper section 4.1):
   * every I/O of the tenant enqueued before the barrier must complete
   * on the device before any I/O enqueued after it is submitted. The
   * barrier's own response is sent once the preceding I/Os finished.
   */
  kBarrier = 4,
};

/** Response / event-condition types (paper Table 1). */
enum class RespType : uint8_t {
  kRegistered = 0,
  kUnregistered = 1,
  kResponse = 2,     // NVMe read completed (with data)
  kWritten = 3,      // NVMe write completed
  kBarrierDone = 4,  // all earlier I/Os of the tenant completed
};

/** Completion status codes carried in responses. */
enum class ReqStatus : uint8_t {
  kOk = 0,
  kAccessDenied = 1,
  kNoSuchTenant = 2,
  kOutOfResources = 3,  // registration rejected (inadmissible SLO)
  kInvalidRange = 4,
  kDeviceError = 5,
  /**
   * Synthesized locally by the client when no response arrived within
   * its request timeout (never carried on the wire). Reads have no
   * side effects, so a timed-out read definitely did not take effect
   * from the application's point of view.
   */
  kTimedOut = 6,
  /**
   * Synthesized locally by the client for a write or barrier whose
   * response never arrived (never carried on the wire). Unlike
   * kTimedOut, the request MAY have executed on the server -- the
   * library cannot know, must not retransmit (double-apply), and must
   * not fabricate success. Callers decide: re-read to discover the
   * outcome, or re-issue if their update is idempotent.
   */
  kUnknownOutcome = 7,
  /**
   * The shard no longer owns the requested sector range: the range was
   * migrated away and the client's shard map is older than the cutover
   * epoch. Retryable -- the client refreshes its map copy and reissues
   * against the new owner. Carried on the wire (it is a server
   * decision), but synthesized only by migration range gates.
   */
  kWrongShard = 8,
};

/**
 * Sentinel map epoch meaning "not stamped": requests from single-server
 * clients (no shard map) bypass migration epoch checks entirely.
 */
inline constexpr uint64_t kMapEpochBypass = ~uint64_t{0};

/** Logical sector size used by the ReFlex block protocol. */
inline constexpr uint32_t kSectorBytes = 512;

/**
 * Fixed per-request header size on the wire. Together with the TCP/IP
 * framing this gives the paper's "38 bytes per 4KB request" overhead:
 * 24 bytes of ReFlex header plus a share of the TCP segment framing.
 */
inline constexpr uint32_t kRequestHeaderBytes = 24;
inline constexpr uint32_t kResponseHeaderBytes = 24;
inline constexpr uint32_t kRegisterMsgBytes = 64;

/**
 * A parsed ReFlex request as carried through the simulation. For
 * kRead/kWrite, `handle` identifies the tenant; `data` optionally
 * points at the client's buffer (null for timing-only load).
 */
struct RequestMsg {
  ReqType type = ReqType::kRead;
  uint32_t handle = 0;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  uint64_t cookie = 0;
  uint8_t* data = nullptr;

  /**
   * Shard-map epoch the client held when it routed this request. Range
   * gates on a migrated-away range reject requests stamped with an
   * epoch older than the cutover (kWrongShard) so stale routing can
   * never read or write pre-migration sectors. Like queue_depth_hint,
   * it rides in reserved bytes of the fixed 24-byte request header, so
   * it adds no wire bytes and cannot perturb network timing. Defaults
   * to the bypass sentinel: single-server clients are unaffected.
   */
  uint64_t map_epoch = kMapEpochBypass;

  // kRegister payload.
  SloSpec slo;
  TenantClass tenant_class = TenantClass::kBestEffort;

  /**
   * Latency-breakdown trace span for sampled requests (null for the
   * untraced fast path). Rides along with the parsed message through
   * the dataplane; each layer timestamps its stage. Models the
   * request-id correlation a real deployment would do out of band, so
   * it contributes no wire bytes.
   */
  std::shared_ptr<obs::TraceSpan> trace;

  /** Bytes this message occupies on the wire (excl. TCP framing). */
  uint32_t WireBytes(uint32_t sector_bytes) const {
    switch (type) {
      case ReqType::kRegister:
      case ReqType::kUnregister:
        return kRegisterMsgBytes;
      case ReqType::kRead:
      case ReqType::kBarrier:
        return kRequestHeaderBytes;
      case ReqType::kWrite:
        return kRequestHeaderBytes + sectors * sector_bytes;
    }
    return kRequestHeaderBytes;
  }
};

/** A parsed ReFlex response. */
struct ResponseMsg {
  RespType type = RespType::kResponse;
  ReqStatus status = ReqStatus::kOk;
  uint32_t handle = 0;
  uint64_t cookie = 0;
  uint32_t sectors = 0;

  /**
   * Queue-depth hint piggybacked by the serving dataplane thread on
   * every response (RackSched-style): requests queued or in flight on
   * that thread at transmit time. Clients steering reads across
   * replicas use it for power-of-d choices. Rides in reserved bytes of
   * the 24-byte response header, so it adds no wire bytes and cannot
   * perturb network timing.
   */
  uint32_t queue_depth_hint = 0;

  uint32_t WireBytes(uint32_t sector_bytes) const {
    switch (type) {
      case RespType::kRegistered:
      case RespType::kUnregistered:
        return kRegisterMsgBytes;
      case RespType::kResponse:
        return kResponseHeaderBytes +
               (status == ReqStatus::kOk ? sectors * sector_bytes : 0);
      case RespType::kWritten:
      case RespType::kBarrierDone:
        return kResponseHeaderBytes;
    }
    return kResponseHeaderBytes;
  }
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_PROTOCOL_H_
