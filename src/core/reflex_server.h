#ifndef REFLEX_CORE_REFLEX_SERVER_H_
#define REFLEX_CORE_REFLEX_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/access_control.h"
#include "core/control_plane.h"
#include "core/cost_model.h"
#include "core/dataplane.h"
#include "core/protocol.h"
#include "core/qos_scheduler.h"
#include "core/tenant.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace reflex::core {

/** Construction options for a ReFlex server. */
struct ServerOptions {
  /** Initial number of dataplane threads (cores). */
  int num_threads = 1;

  /** Upper bound for control-plane thread scaling. */
  int max_threads = 12;

  /** Enables the periodic load monitor / auto-scaler. */
  bool auto_scale = false;
  sim::TimeNs monitor_interval = sim::Millis(10);
  double scale_up_utilization = 0.90;
  double scale_down_utilization = 0.20;

  DataplaneConfig dataplane;
  QosScheduler::Config qos;

  /** Enforce ACLs strictly (deny-by-default). */
  bool strict_acl = false;

  /**
   * Network transport for client connections. TCP is the paper's
   * conservative default; UDP is the lighter option it names as
   * future work -- less protocol processing per message, smaller
   * per-frame headers and almost no per-connection state.
   */
  net::Transport transport = net::Transport::kTcp;

  /**
   * Multiplier applied to the best-effort token share while the
   * control plane sheds load (device brownout or elevated error
   * rate). 0.1 keeps BE tenants barely alive so their queues drain
   * once the fault clears.
   */
  double be_shed_factor = 0.1;

  /**
   * Fraction of non-kOk responses (per monitor window) above which
   * the control plane starts shedding BE load; shedding stops once
   * the rate falls below half this threshold (hysteresis).
   */
  double error_shed_fraction = 0.05;
};

/** Tenant handle reserved for control (tenant-unbound) connections. */
inline constexpr uint32_t kControlHandle = 0;

/**
 * Lifecycle of a migration range gate (DESIGN.md section 17). A gate
 * covers one shard-local sector range that is being migrated away:
 *
 *  - kCopying: the shard still owns the range. Reads and writes are
 *    admitted; each admitted write marks the gate dirty (the copied
 *    image is stale) and is counted in flight until its response is
 *    on the wire.
 *  - kDraining: cutover is imminent. New writes are refused with
 *    kWrongShard (clients back off and retry; the map flips before
 *    their retry budget runs out), reads still serve. The coordinator
 *    waits for in-flight writes to quiesce, recopies dirty stripes,
 *    then commits the map flip.
 *  - kMoved: the range now lives elsewhere. Requests stamped with a
 *    map epoch older than `min_epoch` get kWrongShard so stale routing
 *    can never touch pre-migration sectors; fresh epochs pass (the
 *    underlying sectors may have been reused for new placements).
 */
enum class RangeGateState : uint8_t { kCopying = 0, kDraining = 1, kMoved = 2 };

/** One migration gate over a shard-local sector range. */
struct RangeGate {
  uint64_t first_lba = 0;
  uint64_t sectors = 0;
  RangeGateState state = RangeGateState::kCopying;
  /** kMoved only: requests with map_epoch >= min_epoch pass. */
  uint64_t min_epoch = 0;
  /** A write landed in the range since the last copy pass. */
  bool dirty = false;
  /** Writes admitted under kCopying whose response is not yet sent. */
  int64_t inflight_writes = 0;

  bool Overlaps(uint64_t lba, uint32_t len) const {
    return lba < first_lba + sectors && lba + len > first_lba;
  }
};

/**
 * Result of ReflexServer::Accept(): the bound connection on success,
 * or a typed refusal (unknown/inactive tenant, ACL denial) with
 * `conn` null.
 */
struct AcceptResult {
  ServerConnection* conn = nullptr;
  ReqStatus status = ReqStatus::kOk;
};

/**
 * The ReFlex remote-Flash server: dataplane threads with exclusive
 * NVMe queue pairs, the QoS scheduler, access control, and the local
 * control plane, attached to one machine on the simulated network and
 * one Flash device.
 *
 * Two usage styles:
 *  - in-band: clients open control connections (Accept with
 *    kControlHandle) and send kRegister/kRead/kWrite protocol messages
 *    (what real ReFlex clients do);
 *  - out-of-band: benches pre-register tenants through RegisterTenant()
 *    and accept connections bound to the tenant's dataplane thread.
 */
class ReflexServer {
 public:
  ReflexServer(sim::Simulator& sim, net::Network& net,
               net::Machine* machine, flash::FlashDevice& device,
               const flash::CalibrationResult& calibration,
               ServerOptions options = ServerOptions());
  ~ReflexServer();

  ReflexServer(const ReflexServer&) = delete;
  ReflexServer& operator=(const ReflexServer&) = delete;

  // --- Tenant management (out-of-band path) ---
  Tenant* RegisterTenant(const SloSpec& slo, TenantClass cls,
                         ReqStatus* status = nullptr);
  bool UnregisterTenant(uint32_t handle);
  Tenant* FindTenant(uint32_t handle);

  // --- Connections ---
  /**
   * Accepts a connection from `client` on behalf of `tenant_handle`,
   * validating that the tenant exists, is active and that the ACL
   * permits the client; the connection lands directly on the tenant's
   * dataplane thread. kControlHandle accepts a tenant-unbound control
   * connection on a round-robin thread instead (no validation beyond
   * the machine; registration rights are checked in-band at kRegister
   * time). `on_response` fires when a response message has fully
   * arrived at the client NIC (the client library adds its stack
   * costs on top). Refusals are typed in the result, never silent
   * unbound connections.
   */
  AcceptResult Accept(net::Machine* client, uint32_t tenant_handle,
                      std::function<void(const ResponseMsg&)> on_response);

  int NumConnections() const { return static_cast<int>(connections_.size()); }

  // --- Accessors ---
  sim::Simulator& sim() { return sim_; }
  net::Network& network() { return net_; }
  net::Machine* machine() { return machine_; }
  flash::FlashDevice& device() { return device_; }
  const flash::CalibrationResult& calibration() const { return calibration_; }
  const RequestCostModel& cost_model() const { return cost_model_; }
  AccessControl& acl() { return acl_; }
  ControlPlane& control_plane() { return *control_plane_; }
  SchedulerShared& shared() { return shared_; }
  const ServerOptions& options() const { return options_; }

  /**
   * Attaches a fault-injection plan (null detaches). Dataplane threads
   * roll kServerDeviceError / kServerOutOfResources per request, and
   * kFlashBrownout windows notify the control plane so it can shed
   * best-effort load for the duration. The flash device and network
   * must be wired separately (they are independent subsystems).
   */
  void SetFaultPlan(sim::FaultPlan* plan);
  sim::FaultPlan* fault_plan() const { return fault_plan_; }

  int num_threads() const { return static_cast<int>(threads_.size()); }
  int num_active_threads() const { return active_threads_; }
  DataplaneThread& thread(int i) { return *threads_[i]; }

  /** Sum of per-thread stats. */
  DataplaneStats AggregateStats() const;

  // --- Observability ---
  /** Metric registry shared by the scheduler, device and network. */
  obs::MetricsRegistry& metrics() { return metrics_; }

  /** Sink for finished per-request trace spans. */
  obs::TraceCollector& tracer() { return tracer_; }

  /**
   * Publishes point-in-time state that is not maintained incrementally
   * -- per-thread cycle accounting and per-tenant counters/gauges --
   * into the registry, then returns it. Call before exporting.
   */
  obs::MetricsRegistry& SnapshotMetrics();

  /** All registered tenants (including unregistered zombies). */
  const std::vector<Tenant*>& tenants() const { return tenant_list_; }

  // --- Migration range gates (driven by cluster::MigrationCoordinator) ---
  /** Installs a kCopying gate over [first_lba, first_lba+sectors). */
  int AddRangeGate(uint64_t first_lba, uint64_t sectors);
  /** Returns the gate, or null if already removed. */
  RangeGate* FindRangeGate(int id);
  void RemoveRangeGate(int id);
  bool HasRangeGates() const { return !range_gates_.empty(); }

  /**
   * Gate admission for one parsed request (dataplane parse step).
   * Returns kOk or kWrongShard; on an admitted write under a kCopying
   * gate, marks the gate dirty, bumps its in-flight count and stores
   * the gate id in *counted_gate (else -1). Requests stamped with the
   * bypass epoch skip gating entirely (single-server clients and the
   * migration coordinator's own copy traffic).
   */
  ReqStatus CheckRangeGates(const RequestMsg& msg, int* counted_gate);

  /** Decrements the in-flight count of a still-installed gate. */
  void OnGatedIoDone(int gate_id);

 private:
  friend class ControlPlane;
  friend class DataplaneThread;

  /** Creates and starts one more dataplane thread. */
  DataplaneThread* AddThreadInternal();

  /** Allocates a tenant object (no admission check; control plane). */
  Tenant* CreateTenant(const SloSpec& slo, TenantClass cls);

  /** In-band protocol handling (called by dataplane threads). */
  ResponseMsg HandleRegisterMsg(ServerConnection* conn,
                                const RequestMsg& msg);

  sim::Simulator& sim_;
  net::Network& net_;
  net::Machine* machine_;
  flash::FlashDevice& device_;
  flash::CalibrationResult calibration_;
  ServerOptions options_;
  RequestCostModel cost_model_;
  SchedulerShared shared_;
  AccessControl acl_;

  // Declared before threads_: dataplane threads cache metric handles
  // out of the registry at construction time.
  obs::MetricsRegistry metrics_;
  obs::TraceCollector tracer_;

  std::vector<std::unique_ptr<DataplaneThread>> threads_;
  int active_threads_ = 0;

  uint32_t next_handle_ = 1;
  std::map<uint32_t, std::unique_ptr<Tenant>> tenants_;
  std::vector<Tenant*> tenant_list_;

  std::vector<std::unique_ptr<ServerConnection>> connections_;
  size_t next_conn_thread_ = 0;

  std::unique_ptr<ControlPlane> control_plane_;
  sim::FaultPlan* fault_plan_ = nullptr;
  bool brownout_listener_added_ = false;

  int next_gate_id_ = 0;
  std::map<int, RangeGate> range_gates_;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_REFLEX_SERVER_H_
