#include "core/cost_model.h"

#include <cmath>

namespace reflex::core {

void ReadRatioTracker::Decay(sim::TimeNs now) const {
  if (now <= last_update_) return;
  const double dt = static_cast<double>(now - last_update_);
  const double factor =
      std::exp2(-dt / static_cast<double>(half_life_));
  reads_ *= factor;
  writes_ *= factor;
  last_update_ = now;
}

void ReadRatioTracker::Observe(sim::TimeNs now, bool is_read,
                               double weight) {
  Decay(now);
  if (is_read) {
    reads_ += weight;
  } else {
    writes_ += weight;
  }
}

double ReadRatioTracker::ReadFraction(sim::TimeNs now) const {
  Decay(now);
  const double total = reads_ + writes_;
  if (total < 1e-9) return 1.0;
  return reads_ / total;
}

}  // namespace reflex::core
