#include "core/qos_policy.h"

#include <algorithm>
#include <cmath>

#include "core/protocol.h"
#include "core/qos_scheduler.h"
#include "sim/logging.h"

namespace reflex::core {

const char* QosPolicyKindName(QosPolicyKind kind) {
  switch (kind) {
    case QosPolicyKind::kTokenBucket:
      return "token_bucket";
    case QosPolicyKind::kQwin:
      return "qwin";
    case QosPolicyKind::kAdaptiveBe:
      return "adaptive_be";
  }
  return "unknown";
}

bool QosPolicyKindFromName(const std::string& name, QosPolicyKind* out) {
  REFLEX_CHECK(out != nullptr);
  if (name == "token_bucket") {
    *out = QosPolicyKind::kTokenBucket;
  } else if (name == "qwin") {
    *out = QosPolicyKind::kQwin;
  } else if (name == "adaptive_be") {
    *out = QosPolicyKind::kAdaptiveBe;
  } else {
    return false;
  }
  return true;
}

// --- TokenBucketPolicy (Algorithm 1) ---

double TokenBucketPolicy::GenerateTokens(Tenant& t, double dt) {
  const double gen = t.token_rate() * dt;
  TokensOf(t) += gen;
  ctx_.shared->tokens_generated_total += gen;
  if (ctx_.metrics->enabled()) ctx_.metrics->tokens_generated->Add(gen);
  return gen;
}

void TokenBucketPolicy::AccrueLc(Tenant& t, sim::TimeNs /*now*/, double dt) {
  const double gen = GenerateTokens(t, dt);
  GrantHistoryOf(t)[GrantCursorOf(t)] = gen;
  GrantCursorOf(t) = (GrantCursorOf(t) + 1) % 3;

  if (TokensOf(t) < ctx_.config->neg_limit) {
    ++t.neg_limit_hits;
    if (ctx_.metrics->enabled()) ctx_.metrics->neg_limit_hits->Increment();
    if (*ctx_.on_neg_limit) (*ctx_.on_neg_limit)(t);
  }
}

bool TokenBucketPolicy::AdmitLc(const Tenant& t,
                                const PendingIo& /*io*/) const {
  return TokensOf(t) > ctx_.config->neg_limit;
}

void TokenBucketPolicy::FinishLc(Tenant& t) {
  const double* hist = GrantHistoryOf(t);
  const double pos_limit = hist[0] + hist[1] + hist[2];
  if (TokensOf(t) > pos_limit) {
    // Alg. 1 lines 13-15: only the *excess above POS_LIMIT* is
    // donated (scaled by donate_fraction); the tenant keeps its full
    // burst allowance. Donating a fraction of the whole balance --
    // the previous behavior -- pulled the balance below POS_LIMIT
    // and eroded the very burst headroom POS_LIMIT exists to
    // protect (pinned by QosSchedulerTest.LcDonatesOnlyExcess...).
    const double spill =
        (TokensOf(t) - pos_limit) * ctx_.config->donate_fraction;
    ctx_.shared->global_bucket.Donate(spill);
    TokensOf(t) -= spill;
    ctx_.shared->tokens_donated_total += spill;
    if (ctx_.metrics->enabled()) ctx_.metrics->tokens_donated->Add(spill);
  }
}

void TokenBucketPolicy::AccrueBe(Tenant& t, sim::TimeNs /*now*/, double dt) {
  GenerateTokens(t, dt);
  const double deficit = QueuedCostOf(t) - TokensOf(t);
  if (deficit > 0.0) {
    const double claimed = ctx_.shared->global_bucket.TryClaim(deficit);
    TokensOf(t) += claimed;
    ctx_.shared->tokens_claimed_total += claimed;
    if (ctx_.metrics->enabled()) ctx_.metrics->tokens_claimed->Add(claimed);
  }
}

bool TokenBucketPolicy::AdmitBe(const Tenant& t, const PendingIo& io) const {
  return TokensOf(t) >= io.cost;
}

void TokenBucketPolicy::FinishBe(Tenant& t) {
  if (TokensOf(t) > 0.0 && t.queue_depth() == 0) {
    // DRR-style: idle BE tenants may not hoard tokens.
    ctx_.shared->global_bucket.Donate(TokensOf(t));
    ctx_.shared->tokens_donated_total += TokensOf(t);
    if (ctx_.metrics->enabled()) {
      ctx_.metrics->tokens_donated->Add(TokensOf(t));
    }
    TokensOf(t) = 0.0;
  }
}

// --- QwinPolicy (window-sized quotas for LC tenants) ---

sim::TimeNs QwinPolicy::WindowLength(const Tenant& t) const {
  if (t.slo().latency <= 0) return ctx_.config->qwin_default_window;
  const double ns = ctx_.config->qwin_window_fraction *
                    static_cast<double>(t.slo().latency);
  return std::max<sim::TimeNs>(1, std::llround(ns));
}

void QwinPolicy::AccrueLc(Tenant& t, sim::TimeNs now, double /*dt*/) {
  Window& w = windows_[t.handle()];
  if (now < w.end) return;  // current window still open

  // Window rollover. Unspent quota is donated, not carried: carrying
  // it over would let an idle tenant accumulate a burst that defeats
  // the window sizing (QWin's anti-hoarding rule).
  const double leftover = TokensOf(t);
  if (leftover > 0.0) {
    ctx_.shared->global_bucket.Donate(leftover);
    ctx_.shared->tokens_donated_total += leftover;
    if (ctx_.metrics->enabled()) ctx_.metrics->tokens_donated->Add(leftover);
    TokensOf(t) = 0.0;
  }

  // Quota for the new window: enough to drain the observed backlog
  // plus the reserved share for the window, capped at burst_cap
  // shares. A negative balance (debt from the previous window's
  // overdraw) is paid back out of the new quota automatically since
  // the grant lands on top of it.
  const sim::TimeNs len = WindowLength(t);
  const double share = t.token_rate() * sim::ToSeconds(len);
  const double quota =
      std::min(QueuedCostOf(t) + share, ctx_.config->qwin_burst_cap * share);
  TokensOf(t) += quota;
  ctx_.shared->tokens_generated_total += quota;
  if (ctx_.metrics->enabled()) ctx_.metrics->tokens_generated->Add(quota);

  // Track the per-window grant so diagnostics (tenant grant history)
  // stay meaningful under this policy too.
  GrantHistoryOf(t)[GrantCursorOf(t)] = quota;
  GrantCursorOf(t) = (GrantCursorOf(t) + 1) % 3;

  w.end = now + len;
  ++windows_opened_;
}

bool QwinPolicy::AdmitLc(const Tenant& t, const PendingIo& /*io*/) const {
  // Admit while window quota remains; the last request of a window may
  // overdraw by at most one request cost, repaid from the next quota.
  return TokensOf(t) > 0.0;
}

void QwinPolicy::FinishLc(Tenant& /*t*/) {
  // No per-round donation: unspent quota is reclaimed at window close.
}

void QwinPolicy::OnRemoveTenant(Tenant& t) { windows_.erase(t.handle()); }

// --- AdaptiveBePolicy (measured-rate BE inflight cap) ---

void AdaptiveBePolicy::BeginRound(sim::TimeNs /*now*/, double dt,
                                  const std::vector<Tenant*>& /*lc*/,
                                  const std::vector<Tenant*>& be) {
  int64_t completed_total = 0;
  int64_t inflight_bytes = 0;
  for (const Tenant* t : be) {
    completed_total += t->completed_bytes;
    inflight_bytes += t->inflight_bytes;
  }
  const int64_t delta = completed_total - last_completed_total_;
  last_completed_total_ = completed_total;
  if (dt > 0.0 && delta >= 0) {
    const double inst = static_cast<double>(delta) / dt;
    rate_ = rate_primed_
                ? rate_ + ctx_.config->adaptive_rate_alpha * (inst - rate_)
                : inst;
    rate_primed_ = true;
  }
  const double cap =
      rate_ * sim::ToSeconds(ctx_.config->adaptive_drain_target);
  cap_bytes_ = std::max(ctx_.config->adaptive_min_cap_bytes,
                        static_cast<int64_t>(std::llround(cap)));
  inflight_be_bytes_ = inflight_bytes;
}

bool AdaptiveBePolicy::AdmitBe(const Tenant& t, const PendingIo& io) const {
  if (!TokenBucketPolicy::AdmitBe(t, io)) return false;
  if (io.msg.type == ReqType::kBarrier) return true;
  const int64_t bytes = static_cast<int64_t>(io.msg.sectors) * kSectorBytes;
  return inflight_be_bytes_ + bytes <= cap_bytes_;
}

void AdaptiveBePolicy::OnSubmit(Tenant& t, const PendingIo& io) {
  if (t.IsLatencyCritical() || io.msg.type == ReqType::kBarrier) return;
  inflight_be_bytes_ += static_cast<int64_t>(io.msg.sectors) * kSectorBytes;
}

void AdaptiveBePolicy::OnAddTenant(Tenant& t) {
  // Fold the joining tenant's history into the baseline so the next
  // round's completed-bytes delta reflects only new completions.
  if (!t.IsLatencyCritical()) last_completed_total_ += t.completed_bytes;
}

void AdaptiveBePolicy::OnRemoveTenant(Tenant& t) {
  if (!t.IsLatencyCritical()) last_completed_total_ -= t.completed_bytes;
}

std::unique_ptr<QosPolicy> MakeQosPolicy(const QosPolicyContext& ctx) {
  REFLEX_CHECK(ctx.shared != nullptr);
  REFLEX_CHECK(ctx.config != nullptr);
  REFLEX_CHECK(ctx.metrics != nullptr);
  REFLEX_CHECK(ctx.on_neg_limit != nullptr);
  switch (ctx.config->policy) {
    case QosPolicyKind::kQwin:
      return std::make_unique<QwinPolicy>(ctx);
    case QosPolicyKind::kAdaptiveBe:
      return std::make_unique<AdaptiveBePolicy>(ctx);
    case QosPolicyKind::kTokenBucket:
      break;
  }
  return std::make_unique<TokenBucketPolicy>(ctx);
}

}  // namespace reflex::core
