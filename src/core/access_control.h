#ifndef REFLEX_CORE_ACCESS_CONTROL_H_
#define REFLEX_CORE_ACCESS_CONTROL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace reflex::core {

/**
 * An NVMe namespace: a host-side logical-block range. ReFlex checks
 * tenant permissions at namespace granularity (paper section 4.1,
 * "Security model").
 */
struct BlockNamespace {
  uint32_t id = 0;
  uint64_t start_lba = 0;
  uint64_t sectors = 0;

  bool Contains(uint64_t lba, uint32_t count) const {
    return lba >= start_lba && lba + count <= start_lba + sectors;
  }
};

/**
 * Access-control lists at the granularity of tenants and connections:
 * (1) may a client machine open a connection to a tenant, and (2) does
 * a tenant have read/write permission on a namespace.
 *
 * By default the ACL is permissive (open lab deployment); calling
 * SetStrict(true) denies everything that has not been granted.
 */
class AccessControl {
 public:
  void SetStrict(bool strict) { strict_ = strict; }
  bool strict() const { return strict_; }

  /** Defines a namespace over [start_lba, start_lba + sectors). */
  void AddNamespace(uint32_t ns_id, uint64_t start_lba, uint64_t sectors) {
    namespaces_[ns_id] = BlockNamespace{ns_id, start_lba, sectors};
  }

  /** Grants a tenant read and/or write rights on a namespace. */
  void GrantTenant(uint32_t tenant_handle, uint32_t ns_id, bool read,
                   bool write) {
    auto& g = tenant_grants_[tenant_handle];
    if (read) g.read_ns.insert(ns_id);
    if (write) g.write_ns.insert(ns_id);
  }

  /** Allows a client machine to open connections to a tenant. */
  void AllowClient(const std::string& client_name, uint32_t tenant_handle) {
    client_grants_[client_name].insert(tenant_handle);
  }

  /** Connection-open check. */
  bool CheckConnect(const std::string& client_name,
                    uint32_t tenant_handle) const {
    if (!strict_) return true;
    auto it = client_grants_.find(client_name);
    return it != client_grants_.end() &&
           it->second.count(tenant_handle) > 0;
  }

  /**
   * I/O check: the request must fall inside a namespace on which the
   * tenant holds the matching permission.
   */
  ReqStatus CheckIo(uint32_t tenant_handle, ReqType type, uint64_t lba,
                    uint32_t sectors) const {
    if (!strict_) return ReqStatus::kOk;
    auto it = tenant_grants_.find(tenant_handle);
    if (it == tenant_grants_.end()) return ReqStatus::kAccessDenied;
    const auto& allowed = (type == ReqType::kRead) ? it->second.read_ns
                                                   : it->second.write_ns;
    // Probes namespaces in ascending id order (std::set): the check
    // result is order-independent, but the probe sequence must not
    // depend on hash layout for the simulation to stay bit-identical.
    for (uint32_t ns_id : allowed) {
      auto ns = namespaces_.find(ns_id);
      if (ns != namespaces_.end() && ns->second.Contains(lba, sectors)) {
        return ReqStatus::kOk;
      }
    }
    return ReqStatus::kAccessDenied;
  }

 private:
  struct TenantGrants {
    std::set<uint32_t> read_ns;
    std::set<uint32_t> write_ns;
  };

  bool strict_ = false;
  std::map<uint32_t, BlockNamespace> namespaces_;
  std::map<uint32_t, TenantGrants> tenant_grants_;
  std::map<std::string, std::set<uint32_t>> client_grants_;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_ACCESS_CONTROL_H_
