#ifndef REFLEX_CORE_TOKEN_BUCKET_H_
#define REFLEX_CORE_TOKEN_BUCKET_H_

#include <atomic>
#include <cmath>
#include <cstdint>

namespace reflex::core {

/**
 * Global token bucket shared by all dataplane threads (paper section
 * 3.2.2). LC tenants with spare tokens donate into it; BE tenants
 * claim from it. Implemented with lock-free atomic read-modify-write
 * so that threads never serialize on a lock -- the code is genuinely
 * thread-safe (exercised under std::thread in tests) even though the
 * discrete-event simulation itself is single-threaded.
 *
 * Tokens are stored in fixed point (micro-tokens) because fractional
 * tokens are common: a scheduling round often generates less than one
 * token (paper: "a typical round may generate only a fraction of a
 * token").
 */
class GlobalTokenBucket {
 public:
  GlobalTokenBucket() : micro_tokens_(0) {}

  /** Adds `tokens` (>= 0) to the bucket. */
  void Donate(double tokens) {
    if (tokens <= 0.0) return;
    micro_tokens_.fetch_add(ToMicro(tokens), std::memory_order_relaxed);
  }

  /**
   * Atomically claims up to `want` tokens; returns the amount claimed
   * (possibly 0, never negative, never more than the bucket held).
   */
  double TryClaim(double want) {
    if (want <= 0.0) return 0.0;
    const int64_t want_micro = ToMicro(want);
    int64_t available = micro_tokens_.load(std::memory_order_relaxed);
    for (;;) {
      if (available <= 0) return 0.0;
      const int64_t take = available < want_micro ? available : want_micro;
      if (micro_tokens_.compare_exchange_weak(available, available - take,
                                              std::memory_order_relaxed)) {
        return FromMicro(take);
      }
    }
  }

  /**
   * Empties the bucket (the periodic anti-hoarding reset) and returns
   * the number of tokens discarded, so callers can keep conservation
   * accounting (tokens leave the system only through an explicit
   * spend, a reset, or a tenant retiring).
   */
  double Reset() {
    return FromMicro(micro_tokens_.exchange(0, std::memory_order_relaxed));
  }

  double Tokens() const {
    return FromMicro(micro_tokens_.load(std::memory_order_relaxed));
  }

 private:
  static int64_t ToMicro(double tokens) {
    // llround, not truncation: donations like 0.29 tokens land a hair
    // below an integer micro-token count (0.29 * 1e6 ==
    // 289999.99999999994), and truncating every sub-token donation
    // toward zero silently bleeds tokens out of the system -- about
    // one token per million fractional donations, which a long-running
    // scheduler performs continuously.
    return std::llround(tokens * 1e6);
  }
  static double FromMicro(int64_t micro) {
    return static_cast<double>(micro) / 1e6;
  }

  std::atomic<int64_t> micro_tokens_;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_TOKEN_BUCKET_H_
