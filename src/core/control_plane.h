#ifndef REFLEX_CORE_CONTROL_PLANE_H_
#define REFLEX_CORE_CONTROL_PLANE_H_

#include <coroutine>
#include <cstdint>
#include <map>
#include <vector>

#include "core/protocol.h"
#include "core/slo.h"
#include "core/tenant.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::core {

class ReflexServer;

/**
 * The local control plane (paper section 4.3). Responsibilities:
 *
 *  - admission control for new latency-critical tenants, using the
 *    calibrated latency-vs-token-rate curve of the device;
 *  - recomputing token generation rates for LC and BE tenants whenever
 *    a tenant registers or terminates;
 *  - handling NEG_LIMIT notifications from the scheduler (tenants that
 *    persistently burst above their SLO need renegotiation);
 *  - monitoring thread load and scaling the number of dataplane
 *    threads up/down, rebalancing tenants across threads.
 */
class ControlPlane {
 public:
  explicit ControlPlane(ReflexServer& server);
  ~ControlPlane();

  /**
   * Admission-checks and registers a tenant. For LC tenants the SLO is
   * admissible iff the sum of all LC token reservations (including the
   * new one) fits within the device's token rate at the strictest
   * latency SLO. Returns nullptr with *status = kOutOfResources on
   * rejection.
   */
  Tenant* TryRegister(const SloSpec& slo, TenantClass cls,
                      ReqStatus* status = nullptr);

  /** Unregisters a tenant and recomputes rates. */
  void Unregister(Tenant* tenant);

  /** Scheduler callback: an LC tenant hit its token deficit limit. */
  void OnNegLimit(Tenant& tenant);

  /**
   * Recomputes the device token cap (strictest LC SLO) and the per-
   * tenant token rates; called on registration changes and by tests.
   */
  void RecomputeRates();

  /** Current device-wide token generation cap (tokens/sec). */
  double scheduler_token_rate() const { return scheduler_token_rate_; }

  /** Strictest LC latency SLO, or 0 when no LC tenant exists. */
  sim::TimeNs strictest_slo() const { return strictest_slo_; }

  /** Total NEG_LIMIT notifications received (renegotiation signal). */
  int64_t neg_limit_notifications() const {
    return neg_limit_notifications_;
  }

  /** Tenants flagged for SLO renegotiation (persistent bursting). */
  const std::vector<uint32_t>& flagged_tenants() const {
    return flagged_tenants_;
  }

  /**
   * Grows or shrinks the active dataplane thread count and rebalances
   * tenants. Returns false if n is out of [1, max_threads].
   */
  bool ScaleTo(int n);

  /** Spreads tenants across active threads, balancing token load. */
  void RebalanceTenants();

  /**
   * Starts the periodic monitor that right-sizes the thread count
   * based on measured thread utilization (IX-style, section 4.3).
   */
  void StartMonitor();

  /**
   * Fault-plan notification: a device brownout window opened (active)
   * or closed. While any brownout is open the control plane sheds
   * best-effort load (token share scaled by be_shed_factor) so LC
   * tenants keep their reservations on the degraded device.
   */
  void OnBrownout(bool active);

  /** True while BE load is being shed (brownout or error rate). */
  bool be_shed_active() const {
    return brownout_depth_ > 0 || error_shed_;
  }

  /**
   * Errors/sec for `handle` over the last monitor window (0 when the
   * monitor is not running or the tenant is unknown).
   */
  double TenantErrorRate(uint32_t handle) const;

 private:
  sim::Task MonitorLoop();
  int PickThreadForTenant() const;

  /**
   * Re-anchors the per-thread busy_ns baselines at the current stats.
   * Must be called when the active thread set changes (ScaleTo):
   * utilization deltas computed against baselines from a different
   * thread configuration misattribute a whole lifetime of busy time
   * to one window and trigger spurious scaling.
   */
  void ResetMonitorBaselines();

  /** Updates per-tenant error rates and the shed decision. */
  void UpdateErrorRates(sim::TimeNs window);

  ReflexServer& server_;
  double scheduler_token_rate_ = 0.0;
  sim::TimeNs strictest_slo_ = 0;
  int64_t neg_limit_notifications_ = 0;
  std::vector<uint32_t> flagged_tenants_;
  bool monitor_running_ = false;
  /** MonitorLoop frame. The loop never finishes (it is parked on its
   * Delay when the simulation ends), so the destructor must destroy
   * the suspended frame or it leaks. */
  std::coroutine_handle<> monitor_handle_;

  // Utilization snapshot state for the monitor.
  std::vector<sim::TimeNs> last_busy_ns_;
  sim::TimeNs last_monitor_time_ = 0;

  // Fault handling state.
  int brownout_depth_ = 0;
  bool error_shed_ = false;
  std::map<uint32_t, int64_t> last_tenant_errors_;
  std::map<uint32_t, double> tenant_error_rates_;
  int64_t last_total_errors_ = 0;
  int64_t last_total_responses_ = 0;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_CONTROL_PLANE_H_
