#include "core/dataplane.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/reflex_server.h"
#include "sim/fault.h"
#include "sim/logging.h"

namespace reflex::core {

void ServerConnection::Deliver(const RequestMsg& msg) {
  DataplaneThread* thread = thread_;
  ServerConnection* self = this;
  tcp_->SendToServer(msg.WireBytes(kSectorBytes),
                     [thread, self, msg] { thread->EnqueueRx(self, msg); });
}

DataplaneThread::DataplaneThread(sim::Simulator& sim, ReflexServer& server,
                                 int index, flash::FlashDevice& device,
                                 SchedulerShared& shared,
                                 const RequestCostModel& cost_model,
                                 const DataplaneConfig& config,
                                 QosScheduler::Config qos_config)
    : sim_(sim),
      server_(server),
      index_(index),
      device_(device),
      qp_(device.AllocQueuePair()),
      config_(config),
      scheduler_(shared, cost_model, qos_config) {
  if (qp_ == nullptr) {
    REFLEX_FATAL("device out of hardware queue pairs for thread %d", index);
  }
  if (server.options().transport == net::Transport::kUdp) {
    // Datagram processing skips stream reassembly, ACK generation and
    // congestion-control bookkeeping: roughly half the per-message
    // protocol cost (section 4.1: a lighter transport improves both
    // tail latency and throughput).
    config_.tcp_rx_per_msg /= 2;
    config_.tcp_tx_per_msg /= 2;
  }
  scheduler_.set_neg_limit_callback(
      [this](Tenant& t) { server_.control_plane().OnNegLimit(t); });
  scheduler_.set_metrics(
      obs::SchedulerMetrics::ForThread(server.metrics(), index));
}

DataplaneThread::~DataplaneThread() {
  if (loop_active_ && loop_handle_) {
    // The loop is parked on its wake future or a Delay whose resume
    // event will never run (the server is being torn down and the
    // simulation will not advance past it). Destroy the suspended
    // frame explicitly; with suspend_never at final_suspend the frame
    // only self-destructs when the body finishes, which a parked loop
    // never does. Any already-queued resume for this frame is dead --
    // the simulator must not run again after the server is destroyed.
    loop_active_ = false;
    loop_handle_.destroy();
  }
  if (qp_ != nullptr && qp_->Outstanding() == 0) {
    device_.FreeQueuePair(qp_);
  }
}

void DataplaneThread::Start() {
  REFLEX_CHECK(!running_);
  running_ = true;
  if (!ever_started_) {
    ever_started_ = true;
    start_time_ = sim_.Now();
  }
  // If Shutdown was followed by Start before the old coroutine
  // observed running_ == false, that loop simply keeps going; only
  // spawn a fresh one once the previous loop has fully unwound.
  if (!loop_active_) RunLoop();
}

void DataplaneThread::Shutdown() {
  running_ = false;
  // Release the idle-reschedule timer instead of letting it fire into
  // a stopped thread. Wake() deliberately does NOT cancel it: an armed
  // timer keeps its original deadline across wake/sleep transitions,
  // and re-arming on the next idle period would shift polling-round
  // timing (and with it every exported latency figure).
  if (resched_armed_) {
    sim_.Cancel(resched_timer_);
    resched_armed_ = false;
  }
  Wake();
}

void DataplaneThread::EnqueueRx(ServerConnection* conn,
                                const RequestMsg& msg) {
  const sim::TimeNs now = sim_.Now();
  if (msg.trace) msg.trace->Mark(obs::Stage::kServerRx, now);
  rx_ring_.push_back(RxItem{conn, msg, now});
  Wake();
}

void DataplaneThread::AdoptTenant(Tenant* tenant) {
  scheduler_.AddTenant(tenant);
  tenant->set_thread_index(index_);
}

void DataplaneThread::DropTenant(Tenant* tenant) {
  scheduler_.RemoveTenant(tenant);
  for (PendingIo& io : tenant->TakeQueue()) {
    FailIo(io, ReqStatus::kNoSuchTenant);
  }
}

void DataplaneThread::Wake() {
  if (idle_ && wake_promise_.has_value()) {
    idle_ = false;
    wake_promise_->Set(sim::Unit{});
    wake_promise_.reset();
  }
}

void DataplaneThread::ArmRescheduleTimer() {
  if (resched_armed_) return;
  resched_armed_ = true;
  resched_timer_ = sim_.ScheduleAfter(config_.idle_resched_delay, [this] {
    resched_armed_ = false;
    if (running_) Wake();
  });
}

double DataplaneThread::LlcFactor() const {
  const int64_t per_conn =
      server_.options().transport == net::Transport::kTcp
          ? net::TcpConnection::kStateBytes
          : net::TcpConnection::kUdpStateBytes;
  const int64_t state_bytes =
      static_cast<int64_t>(server_.NumConnections()) * per_conn;
  if (state_bytes <= config_.llc_bytes) return 0.0;
  return 1.0 - static_cast<double>(config_.llc_bytes) /
                   static_cast<double>(state_bytes);
}

sim::Task DataplaneThread::RunLoop() {
  loop_active_ = true;
  co_await sim::SelfHandle(&loop_handle_);
  while (running_) {
    if (rx_ring_.empty() && cq_ring_.empty()) {
      // Nothing to poll. A real dataplane would spin; we sleep until a
      // packet or completion arrives (equivalent timing, no wasted
      // simulation events). If tenants still have queued demand that
      // is waiting for tokens, re-run the scheduler soon.
      if (scheduler_.HasPendingDemand()) ArmRescheduleTimer();
      idle_ = true;
      wake_promise_.emplace(sim_);
      co_await wake_promise_->GetFuture();
      if (!running_) break;
    }

    // --- Gather this iteration's batch (adaptive, capped at 64) ---
    const int nrx = std::min<int>(static_cast<int>(rx_ring_.size()),
                                  config_.max_batch);
    const int ncq = std::min<int>(static_cast<int>(cq_ring_.size()),
                                  config_.max_batch);
    std::vector<RxItem> rx_batch;
    rx_batch.reserve(nrx);
    for (int i = 0; i < nrx; ++i) {
      rx_batch.push_back(std::move(rx_ring_.front()));
      rx_ring_.pop_front();
    }
    std::vector<CqItem> cq_batch;
    cq_batch.reserve(ncq);
    for (int i = 0; i < ncq; ++i) {
      cq_batch.push_back(std::move(cq_ring_.front()));
      cq_ring_.pop_front();
    }

    // --- Charge this iteration's CPU time ---
    const auto llc_extra = static_cast<sim::TimeNs>(
        LlcFactor() *
        static_cast<double>(config_.llc_miss_penalty_per_msg));
    sim::TimeNs tcp_cost = 0;
    sim::TimeNs flash_cost = 0;
    sim::TimeNs parse_cost = 0;
    tcp_cost += nrx * (config_.tcp_rx_per_msg + llc_extra);
    parse_cost += nrx * config_.parse_per_msg;
    flash_cost += nrx * config_.submit_per_req;
    flash_cost += ncq * config_.completion_per_req;
    tcp_cost += ncq * (config_.tcp_tx_per_msg + llc_extra);
    sim::TimeNs sched_cost = nrx * config_.sched_admission_per_req;
    if (scheduler_.NumTenants() > 0) {
      sched_cost += config_.sched_round_base +
                    scheduler_.NumTenants() * config_.sched_per_tenant;
    }
    const sim::TimeNs total =
        config_.poll_fixed + tcp_cost + parse_cost + flash_cost + sched_cost;
    co_await sim::Delay(sim_, total);

    stats_.busy_ns += total;
    stats_.tcp_ns += tcp_cost;
    stats_.sched_ns += sched_cost;
    stats_.flash_ns += flash_cost;
    ++stats_.iterations;
    stats_.batch_sum += nrx + ncq;

    // --- Act: parse + enqueue requests ---
    const sim::TimeNs now = sim_.Now();
    for (RxItem& item : rx_batch) {
      ++stats_.requests_rx;
      RequestMsg& msg = item.msg;
      if (msg.trace) msg.trace->Mark(obs::Stage::kParsed, now);
      if (msg.type == ReqType::kRegister ||
          msg.type == ReqType::kUnregister) {
        HandleControlMsg(item.conn, msg);
        continue;
      }
      Tenant* tenant = server_.FindTenant(msg.handle);
      if (tenant == nullptr || !tenant->active()) {
        ResponseMsg resp;
        resp.type = msg.type == ReqType::kRead ? RespType::kResponse
                                               : RespType::kWritten;
        resp.status = ReqStatus::kNoSuchTenant;
        resp.handle = msg.handle;
        resp.cookie = msg.cookie;
        SendResponse(item.conn, resp);
        continue;
      }
      ReqStatus acl = ReqStatus::kOk;
      if (msg.type != ReqType::kBarrier) {
        acl = server_.acl().CheckIo(msg.handle, msg.type, msg.lba,
                                    msg.sectors);
        if (acl == ReqStatus::kOk &&
            (msg.sectors == 0 ||
             msg.lba + msg.sectors > device_.profile().capacity_sectors)) {
          acl = ReqStatus::kInvalidRange;
        }
      }
      if (acl != ReqStatus::kOk) {
        ResponseMsg resp;
        resp.type = msg.type == ReqType::kRead ? RespType::kResponse
                                               : RespType::kWritten;
        resp.status = acl;
        resp.handle = msg.handle;
        resp.cookie = msg.cookie;
        SendResponse(item.conn, resp);
        continue;
      }
      // Server-level fault injection: a request that passed admission
      // may still be refused, modeling dataplane allocation failures
      // and device errors detected before submission.
      if (server_.fault_plan() != nullptr && msg.type != ReqType::kBarrier) {
        sim::FaultPlan& plan = *server_.fault_plan();
        ReqStatus forced = ReqStatus::kOk;
        if (plan.Roll(sim::FaultKind::kServerDeviceError)) {
          forced = ReqStatus::kDeviceError;
        } else if (plan.Roll(sim::FaultKind::kServerOutOfResources)) {
          forced = ReqStatus::kOutOfResources;
        }
        if (forced != ReqStatus::kOk) {
          ResponseMsg resp;
          resp.type = msg.type == ReqType::kRead ? RespType::kResponse
                                                 : RespType::kWritten;
          resp.status = forced;
          resp.handle = msg.handle;
          resp.cookie = msg.cookie;
          SendResponse(item.conn, resp);
          continue;
        }
      }
      // Migration range gates: a range being copied away tracks
      // concurrent writes (dirty marking + in-flight accounting); a
      // moved range bounces stale-epoch requests so the client
      // refreshes its map and reissues against the new owner.
      int gate_id = -1;
      if (msg.type != ReqType::kBarrier && server_.HasRangeGates()) {
        const ReqStatus gs = server_.CheckRangeGates(msg, &gate_id);
        if (gs != ReqStatus::kOk) {
          ResponseMsg resp;
          resp.type = msg.type == ReqType::kRead ? RespType::kResponse
                                                 : RespType::kWritten;
          resp.status = gs;
          resp.handle = msg.handle;
          resp.cookie = msg.cookie;
          SendResponse(item.conn, resp);
          continue;
        }
      }
      PendingIo io;
      io.msg = msg;
      io.conn = item.conn;
      io.gate_id = gate_id;
      // Route to the tenant's owning thread (tenants may have been
      // rebalanced after the connection was opened).
      DataplaneThread& owner = server_.thread(tenant->thread_index());
      owner.scheduler_.Enqueue(now, tenant, std::move(io));
      if (&owner != this) owner.Wake();
    }

    // --- QoS scheduling round (Algorithm 1) ---
    if (scheduler_.NumTenants() > 0) {
      ++stats_.sched_rounds;
      scheduler_.RunRound(now, [this](Tenant& t, PendingIo&& io) {
        SubmitToFlash(t, std::move(io));
      });
    }

    // --- Completions: build and transmit responses ---
    for (CqItem& item : cq_batch) {
      Tenant* tenant = item.tenant;
      // An I/O counts as completed (for barriers) once its response is
      // on the wire, so barrier acks can never overtake it.
      --tenant->inflight;
      const int64_t bytes =
          static_cast<int64_t>(item.io.msg.sectors) * kSectorBytes;
      tenant->inflight_bytes -= bytes;
      tenant->completed_bytes += bytes;
      const bool is_read = item.io.msg.type == ReqType::kRead;
      if (is_read) {
        ++tenant->completed_reads;
      } else {
        ++tenant->completed_writes;
      }
      ResponseMsg resp;
      resp.type = is_read ? RespType::kResponse : RespType::kWritten;
      resp.status = item.completion.status == flash::FlashStatus::kOk
                        ? ReqStatus::kOk
                        : ReqStatus::kDeviceError;
      resp.handle = tenant->handle();
      resp.cookie = item.io.msg.cookie;
      resp.sectors = item.io.msg.sectors;
      item.io.MarkStage(obs::Stage::kTxQueued, sim_.Now());
      SendResponse(item.io.conn, resp);
      if (item.io.gate_id >= 0) server_.OnGatedIoDone(item.io.gate_id);
    }
  }
  // Falling off the end self-destroys the frame (final_suspend is
  // suspend_never); clear the handle so the destructor cannot
  // double-destroy it.
  loop_handle_ = nullptr;
  loop_active_ = false;
}

void DataplaneThread::HandleControlMsg(ServerConnection* conn,
                                       const RequestMsg& msg) {
  SendResponse(conn, server_.HandleRegisterMsg(conn, msg));
}

void DataplaneThread::SubmitToFlash(Tenant& tenant, PendingIo&& io) {
  if (io.msg.type == ReqType::kBarrier) {
    // The scheduler releases a barrier only once the tenant has no
    // in-flight I/O; acknowledge it to the client.
    ResponseMsg resp;
    resp.type = RespType::kBarrierDone;
    resp.status = ReqStatus::kOk;
    resp.handle = tenant.handle();
    resp.cookie = io.msg.cookie;
    io.MarkStage(obs::Stage::kTxQueued, sim_.Now());
    SendResponse(io.conn, resp);
    return;
  }
  ++stats_.flash_submitted;
  io.MarkStage(obs::Stage::kSubmitted, sim_.Now());
  flash::FlashCommand cmd;
  cmd.op = io.msg.type == ReqType::kRead ? flash::FlashOp::kRead
                                         : flash::FlashOp::kWrite;
  cmd.lba = io.msg.lba;
  cmd.sectors = io.msg.sectors;
  cmd.data = io.msg.data;
  cmd.cookie = io.msg.cookie;
  Tenant* tenant_ptr = &tenant;
  ++tenant.inflight;
  tenant.inflight_bytes +=
      static_cast<int64_t>(cmd.sectors) * kSectorBytes;
  auto shared_io = std::make_shared<PendingIo>(std::move(io));
  const bool ok = device_.Submit(
      qp_, cmd,
      [this, tenant_ptr, shared_io](const flash::FlashCompletion& c) {
        shared_io->MarkStage(obs::Stage::kFlashDone, sim_.Now());
        cq_ring_.push_back(CqItem{tenant_ptr, std::move(*shared_io), c});
        Wake();
      });
  if (!ok) {
    // Ranges were validated at parse time, so a failed submission
    // means the hardware queue pair is full.
    --tenant.inflight;
    tenant.inflight_bytes -=
        static_cast<int64_t>(cmd.sectors) * kSectorBytes;
    FailIo(*shared_io, ReqStatus::kOutOfResources);
  }
}

uint32_t DataplaneThread::QueueDepthHint() const {
  // Everything a newly-arriving request would queue behind on this
  // thread: unparsed receives, scheduler-queued requests, device
  // submissions in flight and completions awaiting TX.
  uint64_t depth = rx_ring_.size() + cq_ring_.size();
  depth += static_cast<uint64_t>(scheduler_.QueuedRequests());
  if (qp_ != nullptr) depth += static_cast<uint64_t>(qp_->Outstanding());
  return static_cast<uint32_t>(depth);
}

void DataplaneThread::SendResponse(ServerConnection* conn,
                                   const ResponseMsg& resp) {
  ++stats_.responses_tx;
  if (resp.status != ReqStatus::kOk) {
    ++stats_.error_responses;
    Tenant* tenant = server_.FindTenant(resp.handle);
    if (tenant != nullptr) ++tenant->errors;
  }
  ServerConnection* c = conn;
  ResponseMsg r = resp;
  r.queue_depth_hint = QueueDepthHint();
  conn->tcp()->SendToClient(resp.WireBytes(kSectorBytes), [c, r] {
    if (c->on_response) c->on_response(r);
  });
}

void DataplaneThread::FailIo(const PendingIo& io, ReqStatus status) {
  ResponseMsg resp;
  resp.type = io.msg.type == ReqType::kRead ? RespType::kResponse
                                            : RespType::kWritten;
  resp.status = status;
  resp.handle = io.msg.handle;
  resp.cookie = io.msg.cookie;
  io.MarkStage(obs::Stage::kTxQueued, sim_.Now());
  SendResponse(io.conn, resp);
  if (io.gate_id >= 0) server_.OnGatedIoDone(io.gate_id);
}

}  // namespace reflex::core
