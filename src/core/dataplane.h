#ifndef REFLEX_CORE_DATAPLANE_H_
#define REFLEX_CORE_DATAPLANE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "core/protocol.h"
#include "core/qos_scheduler.h"
#include "core/tenant.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/task.h"
#include "sim/time.h"

namespace reflex::core {

class ReflexServer;
class DataplaneThread;

/**
 * Server-side endpoint of one client TCP connection. Requests arriving
 * on the connection are processed by the dataplane thread the
 * connection is bound to (the thread of its tenant).
 */
class ServerConnection {
 public:
  net::TcpConnection* tcp() { return tcp_.get(); }
  DataplaneThread* thread() const { return thread_; }
  const std::string& client_name() const { return client_name_; }

  /**
   * Client-side delivery hook: invoked when a response message has
   * fully arrived at the *client* NIC. The client library layers its
   * own stack costs on top before surfacing the completion.
   */
  std::function<void(const ResponseMsg&)> on_response;

  /**
   * Ingress path used by client libraries: ships `msg` over the
   * simulated TCP connection and enqueues it at the server dataplane
   * when the last frame arrives.
   */
  void Deliver(const RequestMsg& msg);

 private:
  friend class ReflexServer;
  friend class DataplaneThread;

  ServerConnection(std::unique_ptr<net::TcpConnection> tcp,
                   DataplaneThread* thread, std::string client_name)
      : tcp_(std::move(tcp)),
        thread_(thread),
        client_name_(std::move(client_name)) {}

  std::unique_ptr<net::TcpConnection> tcp_;
  DataplaneThread* thread_;
  std::string client_name_;
};

/**
 * CPU cost constants of the ReFlex dataplane (calibrated in DESIGN.md
 * section 5 to reproduce 850K IOPS/core, ~20% of cycles in TCP, and
 * 2-8% in QoS scheduling).
 */
struct DataplaneConfig {
  /** Fixed cost of one polling iteration that found work. */
  sim::TimeNs poll_fixed = sim::TimeNs(600);

  /** TCP/IP receive processing per message. */
  sim::TimeNs tcp_rx_per_msg = sim::TimeNs(130);

  /** Message parse + access-control + protocol handling per request
   * (libix event dispatch plus the user-level server code). */
  sim::TimeNs parse_per_msg = sim::TimeNs(380);

  /** Per-request QoS admission check (token spend). */
  sim::TimeNs sched_admission_per_req = sim::TimeNs(50);

  /** Per-request NVMe submission (command build + doorbell). */
  sim::TimeNs submit_per_req = sim::TimeNs(150);

  /** NVMe completion handling per request. */
  sim::TimeNs completion_per_req = sim::TimeNs(300);

  /** TCP/IP transmit processing per response. */
  sim::TimeNs tcp_tx_per_msg = sim::TimeNs(130);

  /** QoS scheduling round: fixed + per-tenant cost. */
  sim::TimeNs sched_round_base = sim::TimeNs(300);
  sim::TimeNs sched_per_tenant = sim::TimeNs(60);

  /** Adaptive batching cap (paper: 64). */
  int max_batch = 64;

  /**
   * When demand waits for tokens and the thread would otherwise idle,
   * re-run the scheduler after this delay. The control plane bounds it
   * to 5% of the strictest SLO (section 3.2.2).
   */
  sim::TimeNs idle_resched_delay = sim::Micros(5);

  /**
   * LLC pressure model (Figure 6c): effective last-level-cache budget
   * for connection state on this thread, and the extra per-message
   * cost when all state misses.
   */
  int64_t llc_bytes = int64_t{7} * 1024 * 1024;
  sim::TimeNs llc_miss_penalty_per_msg = sim::TimeNs(350);
};

/** Cycle-accounting counters for one dataplane thread (section 5.3). */
struct DataplaneStats {
  int64_t iterations = 0;
  int64_t requests_rx = 0;
  int64_t responses_tx = 0;
  /** Responses sent with a non-kOk status (any cause). */
  int64_t error_responses = 0;
  int64_t sched_rounds = 0;
  int64_t flash_submitted = 0;
  sim::TimeNs busy_ns = 0;
  sim::TimeNs tcp_ns = 0;
  sim::TimeNs sched_ns = 0;
  sim::TimeNs flash_ns = 0;  // submit + completion handling
  int64_t batch_sum = 0;     // for mean batch size
};

/**
 * One ReFlex dataplane thread (paper Figure 2): a pinned core with
 * exclusive NIC and NVMe queue pairs, running the two-step
 * run-to-completion loop with adaptive batching, polling, zero-copy
 * and the QoS scheduler.
 */
class DataplaneThread {
 public:
  DataplaneThread(sim::Simulator& sim, ReflexServer& server, int index,
                  flash::FlashDevice& device, SchedulerShared& shared,
                  const RequestCostModel& cost_model,
                  const DataplaneConfig& config,
                  QosScheduler::Config qos_config);
  ~DataplaneThread();

  DataplaneThread(const DataplaneThread&) = delete;
  DataplaneThread& operator=(const DataplaneThread&) = delete;

  /**
   * Starts the polling loop. Restartable: a thread stopped by
   * Shutdown() (control-plane scale-down) can be started again when
   * the server scales back up.
   */
  void Start();

  /** Stops the loop (the thread finishes its current iteration). */
  void Shutdown();

  /** True between Start() and Shutdown(). */
  bool running() const { return running_; }

  int index() const { return index_; }
  QosScheduler& scheduler() { return scheduler_; }
  const DataplaneStats& stats() const { return stats_; }
  const DataplaneConfig& config() const { return config_; }

  /** Network ingress: called when a request arrives at the server NIC. */
  void EnqueueRx(ServerConnection* conn, const RequestMsg& msg);

  /** Moves a tenant (and its queued requests) onto this thread. */
  void AdoptTenant(Tenant* tenant);

  /** Unbinds a tenant; its queued requests are failed back to clients. */
  void DropTenant(Tenant* tenant);

  /** CPU utilization over the thread lifetime. */
  double Utilization(sim::TimeNs now) const {
    return now > start_time_
               ? static_cast<double>(stats_.busy_ns) /
                     static_cast<double>(now - start_time_)
               : 0.0;
  }

  /** Load estimate piggybacked on every response (ResponseMsg::
   * queue_depth_hint): requests queued or in flight on this thread.
   * Also sampled by the cluster autoscaler as its SLO-pressure
   * signal. */
  uint32_t QueueDepthHint() const;

 private:
  struct RxItem {
    ServerConnection* conn;
    RequestMsg msg;
    /** NIC arrival time (trace stage kServerRx). */
    sim::TimeNs rx_time;
  };
  struct CqItem {
    Tenant* tenant;
    PendingIo io;
    flash::FlashCompletion completion;
  };

  sim::Task RunLoop();
  void Wake();
  void ArmRescheduleTimer();
  double LlcFactor() const;
  void HandleControlMsg(ServerConnection* conn, const RequestMsg& msg);
  void SubmitToFlash(Tenant& tenant, PendingIo&& io);
  void SendResponse(ServerConnection* conn, const ResponseMsg& resp);
  void FailIo(const PendingIo& io, ReqStatus status);

  sim::Simulator& sim_;
  ReflexServer& server_;
  int index_;
  flash::FlashDevice& device_;
  flash::QueuePair* qp_;
  DataplaneConfig config_;
  QosScheduler scheduler_;
  DataplaneStats stats_;

  std::deque<RxItem> rx_ring_;
  std::deque<CqItem> cq_ring_;

  bool running_ = false;
  /** True while a RunLoop coroutine is alive (it may outlive running_
   * by one iteration after Shutdown). */
  bool loop_active_ = false;
  /**
   * The live RunLoop coroutine's own frame handle (captured via
   * sim::SelfHandle, cleared when the loop finishes normally). At
   * destruction the loop is usually still suspended on its wake future
   * or a Delay whose resume event will never run -- the destructor
   * destroys the frame through this handle so it cannot leak.
   */
  std::coroutine_handle<> loop_handle_;
  bool ever_started_ = false;
  bool idle_ = false;
  bool resched_armed_ = false;
  /** Live idle-reschedule timer (valid while resched_armed_). Cancelled
   * on Shutdown() only; see the comment there for why Wake() keeps it. */
  sim::TimerHandle resched_timer_;
  std::optional<sim::VoidPromise> wake_promise_;
  sim::TimeNs start_time_ = 0;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_DATAPLANE_H_
