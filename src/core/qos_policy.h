#ifndef REFLEX_CORE_QOS_POLICY_H_
#define REFLEX_CORE_QOS_POLICY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/tenant.h"
#include "obs/hooks.h"
#include "sim/time.h"

namespace reflex::core {

struct SchedulerShared;

/** Selects the tail-SLO enforcement algorithm run by QosScheduler. */
enum class QosPolicyKind : uint8_t {
  /** ReFlex Algorithm 1: per-tenant token buckets with NEG_LIMIT
   * bursting, POS_LIMIT donation and a global best-effort bucket. */
  kTokenBucket = 0,
  /**
   * QWin-style window enforcement: each LC tenant's SLO is divided
   * into time windows and the per-window quota is sized from the
   * observed queue backlog and the reserved service rate, instead of
   * dripping tokens continuously. Best-effort tenants keep the
   * token-bucket mechanics (fair share + global-bucket claims).
   */
  kQwin = 1,
  /**
   * Algorithm 1 for LC tenants plus bufferbloat control for BE
   * tenants: BE inflight bytes are capped by the service rate
   * measured per round (EWMA) times a drain target, instead of
   * relying on static limits to keep device queues shallow.
   */
  kAdaptiveBe = 2,
};

const char* QosPolicyKindName(QosPolicyKind kind);

/** Parses a policy name ("token_bucket", "qwin", "adaptive_be").
 * Returns false (and leaves *out alone) for unknown names. */
bool QosPolicyKindFromName(const std::string& name, QosPolicyKind* out);

/**
 * Per-thread QoS scheduler configuration. Algorithm-agnostic knobs
 * (enforce) live beside per-policy parameters; each policy reads only
 * its own block. Exposed as QosScheduler::Config for compatibility.
 */
struct QosConfig {
  /** Token deficit at which an LC tenant is rate-limited. */
  double neg_limit = -50.0;

  /** Fraction of surplus above POS_LIMIT donated to the bucket. */
  double donate_fraction = 0.9;

  /**
   * When false, the scheduler becomes a pass-through FIFO (requests
   * submit immediately, no rate limiting) -- the "I/O sched
   * disabled" configuration of the paper's Figure 5.
   */
  bool enforce = true;

  /** Which enforcement algorithm runs when `enforce` is true. */
  QosPolicyKind policy = QosPolicyKind::kTokenBucket;

  // --- kQwin parameters ---
  /** Window length as a fraction of the tenant's latency SLO. */
  double qwin_window_fraction = 0.5;

  /** Window length for tenants without a latency SLO. */
  sim::TimeNs qwin_default_window = sim::Micros(500);

  /** Per-window quota cap, as a multiple of the reserved share. */
  double qwin_burst_cap = 2.0;

  // --- kAdaptiveBe parameters ---
  /** Target drain time for best-effort bytes queued at the device. */
  sim::TimeNs adaptive_drain_target = sim::Micros(500);

  /** EWMA smoothing for the measured BE service rate (0..1]. */
  double adaptive_rate_alpha = 0.2;

  /** Inflight floor so BE progress never stalls while the rate
   * estimate warms up from zero. */
  int64_t adaptive_min_cap_bytes = 64 * 1024;
};

/** Invoked when an LC tenant hits NEG_LIMIT (SLO renegotiation). */
using NegLimitFn = std::function<void(Tenant&)>;

/**
 * State a policy is allowed to touch, owned by its QosScheduler. The
 * pointers target scheduler members, so late wiring (set_metrics,
 * set_neg_limit_callback) is visible to the policy without re-binding.
 */
struct QosPolicyContext {
  SchedulerShared* shared = nullptr;
  const QosConfig* config = nullptr;
  const obs::SchedulerMetrics* metrics = nullptr;
  const NegLimitFn* on_neg_limit = nullptr;
};

/**
 * One tail-SLO enforcement algorithm, driven by QosScheduler once per
 * scheduling round. The scheduler owns the mechanism that is common to
 * every algorithm -- tenant lists, request pricing, barrier ordering,
 * spend accounting, the round-robin rotation and the end-of-round
 * global-bucket reset epoch -- and delegates the per-round policy
 * decisions to these hooks:
 *
 *   BeginRound        once per round, before any tenant is served
 *   AccrueLc/AccrueBe per tenant: token/quota generation (and, for BE,
 *                     the global-bucket claim)
 *   AdmitLc/AdmitBe   per queued request: may the front submit?
 *   FinishLc/FinishBe per tenant, after its service loop: donation /
 *                     spill / anti-hoarding reset
 *   OnSubmit          after a request was granted (spend already
 *                     booked), for policies tracking inflight state
 *
 * Invariant contract: every token credited to a tenant balance MUST be
 * recorded in shared->tokens_generated_total, and every token removed
 * other than by a spend MUST flow through the global bucket (donate)
 * or the discard/retire counters -- the simtest conservation probes
 * hold for every policy, not just the token bucket.
 */
class QosPolicy {
 public:
  explicit QosPolicy(const QosPolicyContext& ctx) : ctx_(ctx) {}
  virtual ~QosPolicy() = default;

  QosPolicy(const QosPolicy&) = delete;
  QosPolicy& operator=(const QosPolicy&) = delete;

  virtual QosPolicyKind kind() const = 0;
  const char* name() const { return QosPolicyKindName(kind()); }

  /** Round prologue; `lc` / `be` are the tenants bound to this
   * scheduler thread, in service order. */
  virtual void BeginRound(sim::TimeNs /*now*/, double /*dt*/,
                          const std::vector<Tenant*>& /*lc*/,
                          const std::vector<Tenant*>& /*be*/) {}

  virtual void AccrueLc(Tenant& t, sim::TimeNs now, double dt) = 0;
  virtual bool AdmitLc(const Tenant& t, const PendingIo& io) const = 0;
  virtual void FinishLc(Tenant& /*t*/) {}

  virtual void AccrueBe(Tenant& t, sim::TimeNs now, double dt) = 0;
  virtual bool AdmitBe(const Tenant& t, const PendingIo& io) const = 0;
  virtual void FinishBe(Tenant& /*t*/) {}

  /** A request of tenant `t` was granted and handed to the device. */
  virtual void OnSubmit(Tenant& /*t*/, const PendingIo& /*io*/) {}

  /** Tenant (un)binding: maintain per-tenant policy state. */
  virtual void OnAddTenant(Tenant& /*t*/) {}
  virtual void OnRemoveTenant(Tenant& /*t*/) {}

 protected:
  // Tenant scheduler state is private to the scheduler/policy pair;
  // friendship does not extend to subclasses, so the base class
  // brokers access for every policy implementation.
  static double& TokensOf(Tenant& t) { return t.tokens_; }
  static double TokensOf(const Tenant& t) { return t.tokens_; }
  static double QueuedCostOf(const Tenant& t) { return t.queued_cost_; }
  static double* GrantHistoryOf(Tenant& t) { return t.grant_history_; }
  static int& GrantCursorOf(Tenant& t) { return t.grant_cursor_; }

  QosPolicyContext ctx_;
};

/**
 * ReFlex Algorithm 1 (the paper's scheduler), bit-for-bit the behavior
 * QosScheduler had before the policy split: LC tenants burst to
 * NEG_LIMIT and donate surplus above POS_LIMIT; BE tenants run
 * deficit-round-robin over their fair share plus global-bucket claims.
 */
class TokenBucketPolicy : public QosPolicy {
 public:
  explicit TokenBucketPolicy(const QosPolicyContext& ctx)
      : QosPolicy(ctx) {}

  QosPolicyKind kind() const override {
    return QosPolicyKind::kTokenBucket;
  }

  void AccrueLc(Tenant& t, sim::TimeNs now, double dt) override;
  bool AdmitLc(const Tenant& t, const PendingIo& io) const override;
  void FinishLc(Tenant& t) override;

  void AccrueBe(Tenant& t, sim::TimeNs now, double dt) override;
  bool AdmitBe(const Tenant& t, const PendingIo& io) const override;
  void FinishBe(Tenant& t) override;

 protected:
  /** Shared accrual: rate * dt into the balance + conservation ledger. */
  double GenerateTokens(Tenant& t, double dt);
};

/**
 * QWin-style window-based enforcement (PAPERS.md: "QWin: Enforcing
 * Tail Latency SLO at Shared Storage Backend"). Each LC tenant's SLO
 * is divided into windows of `qwin_window_fraction * slo.latency`; at
 * every window open the quota is sized from observed queue state:
 *
 *   quota = min(backlog + share, qwin_burst_cap * share)
 *   share = token_rate * window_seconds
 *
 * so a backlogged tenant gets exactly the budget needed to drain
 * within the window (bounded by the burst cap), while an idle tenant
 * cannot hoard: unspent quota is donated to the global bucket when
 * the window closes. Best-effort tenants inherit the token-bucket
 * mechanics unchanged.
 */
class QwinPolicy : public TokenBucketPolicy {
 public:
  explicit QwinPolicy(const QosPolicyContext& ctx)
      : TokenBucketPolicy(ctx) {}

  QosPolicyKind kind() const override { return QosPolicyKind::kQwin; }

  void AccrueLc(Tenant& t, sim::TimeNs now, double dt) override;
  bool AdmitLc(const Tenant& t, const PendingIo& io) const override;
  void FinishLc(Tenant& t) override;
  void OnRemoveTenant(Tenant& t) override;

  /** Windows opened so far (test/bench visibility). */
  int64_t windows_opened() const { return windows_opened_; }

 private:
  struct Window {
    sim::TimeNs end = 0;
  };

  sim::TimeNs WindowLength(const Tenant& t) const;

  // Keyed by tenant handle; std::map for deterministic iteration.
  std::map<uint32_t, Window> windows_;
  int64_t windows_opened_ = 0;
};

/**
 * Algorithm 1 with adaptive best-effort queue-depth control
 * (PAPERS.md: "Managing Bufferbloat in Cloud Storage Systems"). The
 * policy measures the best-effort service rate from completed bytes
 * per round (EWMA-smoothed) and admits BE requests only while
 *
 *   inflight BE bytes + request bytes <= max(min_cap, rate * target)
 *
 * so BE inflight tracks what the device actually drains within the
 * target, instead of a static limit that bloats device queues under
 * load shifts. LC behavior is identical to TokenBucketPolicy.
 */
class AdaptiveBePolicy : public TokenBucketPolicy {
 public:
  explicit AdaptiveBePolicy(const QosPolicyContext& ctx)
      : TokenBucketPolicy(ctx) {}

  QosPolicyKind kind() const override {
    return QosPolicyKind::kAdaptiveBe;
  }

  void BeginRound(sim::TimeNs now, double dt,
                  const std::vector<Tenant*>& lc,
                  const std::vector<Tenant*>& be) override;
  bool AdmitBe(const Tenant& t, const PendingIo& io) const override;
  void OnSubmit(Tenant& t, const PendingIo& io) override;
  void OnAddTenant(Tenant& t) override;
  void OnRemoveTenant(Tenant& t) override;

  /** Current BE inflight cap / measured rate (test/bench visibility). */
  int64_t cap_bytes() const { return cap_bytes_; }
  double service_rate_bytes_per_sec() const { return rate_; }

 private:
  /** EWMA of BE bytes completed per second. */
  double rate_ = 0.0;
  bool rate_primed_ = false;
  int64_t cap_bytes_ = 0;
  /** Sum of BE tenants' completed_bytes at the last round. */
  int64_t last_completed_total_ = 0;
  /** BE bytes at the device, snapshotted per round and advanced by
   * OnSubmit within the round. */
  int64_t inflight_be_bytes_ = 0;
};

/** Builds the policy selected by ctx.config->policy. */
std::unique_ptr<QosPolicy> MakeQosPolicy(const QosPolicyContext& ctx);

}  // namespace reflex::core

#endif  // REFLEX_CORE_QOS_POLICY_H_
