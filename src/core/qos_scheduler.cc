#include "core/qos_scheduler.h"

#include <algorithm>

#include "sim/logging.h"

namespace reflex::core {

QosScheduler::QosScheduler(SchedulerShared& shared,
                           const RequestCostModel& cost_model, Config config)
    : shared_(shared), cost_model_(cost_model), config_(config) {
  policy_ = MakeQosPolicy(
      QosPolicyContext{&shared_, &config_, &metrics_, &on_neg_limit_});
}

void QosScheduler::AddTenant(Tenant* tenant) {
  REFLEX_CHECK(tenant != nullptr);
  if (tenant->IsLatencyCritical()) {
    lc_tenants_.push_back(tenant);
  } else {
    be_tenants_.push_back(tenant);
  }
  policy_->OnAddTenant(*tenant);
}

void QosScheduler::RemoveTenant(Tenant* tenant) {
  auto erase_from = [tenant](std::vector<Tenant*>& v) {
    auto it = std::find(v.begin(), v.end(), tenant);
    if (it == v.end()) return false;
    v.erase(it);
    return true;
  };
  // A retiring tenant takes its balance with it; record the amount so
  // the token-conservation ledger still closes.
  shared_.tokens_retired_total += tenant->tokens_;
  tenant->tokens_ = 0.0;
  if (!erase_from(lc_tenants_)) {
    auto it = std::find(be_tenants_.begin(), be_tenants_.end(), tenant);
    REFLEX_CHECK(it != be_tenants_.end());
    const size_t idx = static_cast<size_t>(it - be_tenants_.begin());
    be_tenants_.erase(it);
    // Erasing below the cursor shifts every later tenant down one
    // slot; keep the cursor pointing at the same next-to-serve tenant
    // so the round-robin rotation is unaffected by removals.
    if (idx < be_cursor_) --be_cursor_;
    if (be_cursor_ >= be_tenants_.size()) be_cursor_ = 0;
  }
  policy_->OnRemoveTenant(*tenant);
}

void QosScheduler::Enqueue(sim::TimeNs now, Tenant* tenant, PendingIo io) {
  REFLEX_CHECK(tenant != nullptr);
  if (io.msg.type == ReqType::kBarrier) {
    io.cost = 0.0;  // barriers consume ordering, not device bandwidth
  } else {
    const bool is_read = io.msg.type == ReqType::kRead;
    const uint32_t bytes = io.msg.sectors * kSectorBytes;
    io.cost = cost_model_.TokensFor(
        is_read ? flash::FlashOp::kRead : flash::FlashOp::kWrite, bytes,
        shared_.read_ratio.IsReadOnly(now));
  }
  io.enqueue_time = now;
  io.MarkStage(obs::Stage::kEnqueued, now);
  tenant->queue_.push_back(std::move(io));
  tenant->queued_cost_ += tenant->queue_.back().cost;
}

bool QosScheduler::HasPendingDemand() const {
  for (const Tenant* t : lc_tenants_) {
    if (!t->queue_.empty()) return true;
  }
  for (const Tenant* t : be_tenants_) {
    if (!t->queue_.empty()) return true;
  }
  return false;
}

int64_t QosScheduler::QueuedRequests() const {
  int64_t queued = 0;
  for (const Tenant* t : lc_tenants_) {
    queued += static_cast<int64_t>(t->queue_.size());
  }
  for (const Tenant* t : be_tenants_) {
    queued += static_cast<int64_t>(t->queue_.size());
  }
  return queued;
}

bool QosScheduler::FrontBlockedByBarrier(const Tenant& t) {
  return !t.queue_.empty() &&
         t.queue_.front().msg.type == ReqType::kBarrier && t.inflight > 0;
}

void QosScheduler::SubmitFront(sim::TimeNs now, Tenant& t,
                               const SubmitFn& submit) {
  PendingIo io = std::move(t.queue_.front());
  t.queue_.pop_front();
  t.queued_cost_ -= io.cost;
  if (t.queued_cost_ < 0.0) t.queued_cost_ = 0.0;
  if (!config_.enforce) {
    // Pass-through mode generates no tokens in RunRound, but spend
    // accounting below still runs (the spent counters feed exported
    // utilization metrics). Grant the exact cost here so the balance
    // nets to zero and the conservation ledger (generated == spent +
    // retired + ...) closes instead of the balance drifting
    // unboundedly negative and being "retired" at unregistration.
    // Ledger-only: the tokens_generated *metric* stays untouched so
    // enforcement-off exports are unchanged.
    t.tokens_ += io.cost;
    shared_.tokens_generated_total += io.cost;
  }
  t.tokens_ -= io.cost;
  t.tokens_spent += io.cost;
  shared_.tokens_spent_total += io.cost;
  io.MarkStage(obs::Stage::kGranted, now);
  if (metrics_.enabled()) {
    metrics_.tokens_spent->Add(io.cost);
    metrics_.requests_submitted->Increment();
  }
  if (io.msg.type != ReqType::kBarrier) {
    const bool is_read = io.msg.type == ReqType::kRead;
    shared_.read_ratio.Observe(now, is_read);
    if (is_read) {
      ++t.submitted_reads;
    } else {
      ++t.submitted_writes;
    }
  }
  policy_->OnSubmit(t, io);
  submit(t, std::move(io));
}

int QosScheduler::RunRound(sim::TimeNs now, const SubmitFn& submit) {
  if (!has_run_) {
    prev_round_time_ = now;
    has_run_ = true;
  }
  const sim::TimeNs gap = now - prev_round_time_;
  const double dt = sim::ToSeconds(gap);
  prev_round_time_ = now;
  int submitted = 0;
  if (metrics_.enabled()) {
    metrics_.rounds->Increment();
    metrics_.round_gap_ns->Record(gap);
  }

  if (!config_.enforce) {
    // Pass-through mode: no rate limiting, submit everything
    // (barriers still gate: they are correctness, not QoS).
    for (Tenant* tp : lc_tenants_) {
      while (!tp->queue_.empty() && !FrontBlockedByBarrier(*tp)) {
        SubmitFront(now, *tp, submit);
        ++submitted;
      }
    }
    for (Tenant* tp : be_tenants_) {
      while (!tp->queue_.empty() && !FrontBlockedByBarrier(*tp)) {
        SubmitFront(now, *tp, submit);
        ++submitted;
      }
    }
    MarkRoundComplete();
    return submitted;
  }

  policy_->BeginRound(now, dt, lc_tenants_, be_tenants_);

  // --- Latency-critical tenants (Alg. 1 lines 4-12) ---
  for (Tenant* tp : lc_tenants_) {
    Tenant& t = *tp;
    policy_->AccrueLc(t, now, dt);
    while (!t.queue_.empty() && policy_->AdmitLc(t, t.queue_.front()) &&
           !FrontBlockedByBarrier(t)) {
      SubmitFront(now, t, submit);
      ++submitted;
    }
    policy_->FinishLc(t);
  }

  // --- Best-effort tenants, round-robin (Alg. 1 lines 13-21) ---
  const size_t n = be_tenants_.size();
  for (size_t k = 0; k < n; ++k) {
    Tenant& t = *be_tenants_[(be_cursor_ + k) % n];
    policy_->AccrueBe(t, now, dt);
    while (!t.queue_.empty() && policy_->AdmitBe(t, t.queue_.front()) &&
           !FrontBlockedByBarrier(t)) {
      SubmitFront(now, t, submit);
      ++submitted;
    }
    policy_->FinishBe(t);
  }
  if (n > 0) be_cursor_ = (be_cursor_ + 1) % n;

  MarkRoundComplete();
  return submitted;
}

void QosScheduler::MarkRoundComplete() {
  // Alg. 1 lines 22-23: once every thread has completed at least one
  // round, the last thread resets the global bucket. Lock-free: each
  // thread marks once per epoch; the thread that completes the set
  // performs the reset and advances the epoch.
  const uint64_t epoch = shared_.reset_epoch.load(std::memory_order_acquire);
  if (local_epoch_ != epoch) {
    local_epoch_ = epoch;
    marked_this_epoch_ = false;
  }
  if (marked_this_epoch_) return;
  marked_this_epoch_ = true;
  const int marked =
      shared_.threads_marked.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (marked >= shared_.num_threads) {
    shared_.tokens_discarded_total += shared_.global_bucket.Reset();
    shared_.threads_marked.store(0, std::memory_order_release);
    shared_.reset_epoch.fetch_add(1, std::memory_order_acq_rel);
  }
}

}  // namespace reflex::core
