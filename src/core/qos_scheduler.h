#ifndef REFLEX_CORE_QOS_SCHEDULER_H_
#define REFLEX_CORE_QOS_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/qos_policy.h"
#include "core/tenant.h"
#include "core/token_bucket.h"
#include "obs/hooks.h"
#include "sim/time.h"

namespace reflex::core {

/**
 * Scheduler state shared across all dataplane threads serving one
 * Flash device: the global token bucket, the device-wide read-ratio
 * tracker, and the bucket-reset coordination ("the last thread resets
 * the global bucket", section 4.1). One instance per device.
 */
struct SchedulerShared {
  GlobalTokenBucket global_bucket;
  ReadRatioTracker read_ratio;

  /** Number of threads participating in bucket-reset coordination. */
  int num_threads = 1;

  /** Threads that completed >= 1 round since the last reset. */
  std::atomic<int> threads_marked{0};
  std::atomic<uint64_t> reset_epoch{0};

  /**
   * Discards all marks and starts a fresh epoch. Must be called
   * whenever num_threads changes (scale up or down): marks collected
   * under the old thread count would otherwise trigger the global
   * bucket reset too early or hold it back past the new quorum.
   */
  void ResetMarks() {
    threads_marked.store(0, std::memory_order_release);
    reset_epoch.fetch_add(1, std::memory_order_acq_rel);
  }

  /** Cumulative tokens spent across all threads (Figure 6a metric). */
  double tokens_spent_total = 0.0;

  /**
   * Conservation ledger (simtest invariant probes). Every token enters
   * the system through generation and leaves through a spend, a bucket
   * reset, or a tenant retiring with a non-zero balance; transfers
   * (donate/claim) move tokens between tenant balances and the global
   * bucket without creating or destroying any. The invariant
   *
   *   generated == spent + discarded + retired
   *               + sum(active tenant balances) + bucket balance
   *
   * holds to within fixed-point rounding and is checked by
   * simtest::CheckServerInvariants after every harness run -- for
   * every QosPolicy, including pass-through mode.
   */
  double tokens_generated_total = 0.0;
  double tokens_donated_total = 0.0;
  double tokens_claimed_total = 0.0;
  /** Tokens thrown away by the periodic global-bucket reset. */
  double tokens_discarded_total = 0.0;
  /** Balances (positive or negative) of unregistered tenants. */
  double tokens_retired_total = 0.0;
};

/**
 * Per-thread QoS scheduler. The scheduler owns the mechanism shared by
 * every enforcement algorithm -- tenant binding, request pricing and
 * queueing, barrier ordering, spend accounting, the best-effort
 * round-robin rotation and the end-of-round global-bucket reset epoch
 * -- and delegates per-round policy decisions (token/quota accrual,
 * admission, donation) to a QosPolicy selected by Config::policy.
 *
 * The default TokenBucketPolicy implements Algorithm 1 of the paper:
 * latency-critical tenants are served first with burst limits
 * (NEG_LIMIT) and donation of surplus above POS_LIMIT; best-effort
 * tenants are served deficit-round-robin style from their fair share
 * plus the global token bucket.
 */
class QosScheduler {
 public:
  /** See QosConfig (core/qos_policy.h) for the knobs. */
  using Config = QosConfig;

  /** Submits one admissible request to the Flash device. */
  using SubmitFn = std::function<void(Tenant&, PendingIo&&)>;

  QosScheduler(SchedulerShared& shared, const RequestCostModel& cost_model,
               Config config);

  QosScheduler(SchedulerShared& shared, const RequestCostModel& cost_model)
      : QosScheduler(shared, cost_model, Config{}) {}

  /** Binds / unbinds a tenant to this thread's scheduler. */
  void AddTenant(Tenant* tenant);
  void RemoveTenant(Tenant* tenant);

  /**
   * Prices and queues a request in its tenant's software queue.
   * `now` is needed to consult the device read-ratio tracker.
   */
  void Enqueue(sim::TimeNs now, Tenant* tenant, PendingIo io);

  /**
   * Runs one scheduling round under the configured policy. Returns the
   * number of requests submitted via `submit`.
   */
  int RunRound(sim::TimeNs now, const SubmitFn& submit);

  /** True if any tenant on this thread has queued requests. */
  bool HasPendingDemand() const;

  /** Requests queued across every tenant bound to this thread. */
  int64_t QueuedRequests() const;

  /** Number of tenants bound to this scheduler. */
  int NumTenants() const {
    return static_cast<int>(lc_tenants_.size() + be_tenants_.size());
  }
  int NumLcTenants() const { return static_cast<int>(lc_tenants_.size()); }
  int NumBeTenants() const { return static_cast<int>(be_tenants_.size()); }

  void set_neg_limit_callback(NegLimitFn fn) {
    on_neg_limit_ = std::move(fn);
  }

  /** Attaches cached metric handles (all-null struct disables). */
  void set_metrics(const obs::SchedulerMetrics& metrics) {
    metrics_ = metrics;
  }

  const RequestCostModel& cost_model() const { return cost_model_; }

  /** The enforcement policy this scheduler runs (diagnostics/tests). */
  const QosPolicy& policy() const { return *policy_; }
  QosPolicy& policy() { return *policy_; }

 private:
  /** True if t's queue head is a barrier still waiting on in-flight
   * I/Os (paper section 4.1's ordering extension). */
  static bool FrontBlockedByBarrier(const Tenant& t);
  void SubmitFront(sim::TimeNs now, Tenant& t, const SubmitFn& submit);
  void MarkRoundComplete();

  SchedulerShared& shared_;
  const RequestCostModel& cost_model_;
  Config config_;
  obs::SchedulerMetrics metrics_;
  NegLimitFn on_neg_limit_;

  /** Built from config_.policy; holds pointers into this scheduler
   * (shared_, config_, metrics_, on_neg_limit_), so it must be
   * declared after them and die first. */
  std::unique_ptr<QosPolicy> policy_;

  std::vector<Tenant*> lc_tenants_;
  std::vector<Tenant*> be_tenants_;
  size_t be_cursor_ = 0;

  sim::TimeNs prev_round_time_ = 0;
  bool has_run_ = false;
  uint64_t local_epoch_ = 0;
  bool marked_this_epoch_ = false;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_QOS_SCHEDULER_H_
