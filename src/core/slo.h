#ifndef REFLEX_CORE_SLO_H_
#define REFLEX_CORE_SLO_H_

#include <cstdint>

#include "sim/time.h"

namespace reflex::core {

/**
 * Tenant class (paper section 3.2): latency-critical tenants have
 * guaranteed tail-latency and IOPS allocations; best-effort tenants
 * opportunistically use whatever throughput is left.
 */
enum class TenantClass : uint8_t {
  kLatencyCritical = 0,
  kBestEffort = 1,
};

/**
 * A service-level objective, e.g. "50K IOPS with 200us p95 read tail
 * latency at an 80% read ratio" (the paper's example). Only meaningful
 * for latency-critical tenants; best-effort tenants leave it default.
 */
struct SloSpec {
  /** Guaranteed IOPS at the declared mix and request size. */
  uint32_t iops = 0;

  /** Fraction of requests that are reads, in [0, 1]. */
  double read_fraction = 1.0;

  /** Tail read latency bound. */
  sim::TimeNs latency = 0;

  /** Percentile at which `latency` applies (the paper uses p95). */
  double percentile = 0.95;

  /** Declared request size used to weight the token reservation. */
  uint32_t request_bytes = 4096;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_SLO_H_
