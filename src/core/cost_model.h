#ifndef REFLEX_CORE_COST_MODEL_H_
#define REFLEX_CORE_COST_MODEL_H_

#include <cstdint>

#include "core/slo.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "sim/time.h"

namespace reflex::core {

/**
 * Tracks the device-wide read/write request mix over a sliding
 * exponential window. The QoS scheduler uses the current ratio r to
 * price reads (r = 100% gets the calibrated read-only discount).
 */
class ReadRatioTracker {
 public:
  /** half_life: how fast history decays. */
  explicit ReadRatioTracker(sim::TimeNs half_life = sim::Millis(1))
      : half_life_(half_life) {}

  void Observe(sim::TimeNs now, bool is_read, double weight = 1.0);

  /**
   * Current read fraction in [0, 1]. An idle or never-written device
   * reports 1.0 (read-only).
   */
  double ReadFraction(sim::TimeNs now) const;

  /** True when the recent mix is effectively read-only. */
  bool IsReadOnly(sim::TimeNs now) const {
    return ReadFraction(now) >= 0.9995;
  }

 private:
  void Decay(sim::TimeNs now) const;

  sim::TimeNs half_life_;
  mutable sim::TimeNs last_update_ = 0;
  mutable double reads_ = 0.0;
  mutable double writes_ = 0.0;
};

/**
 * The request cost model of paper section 3.2.1:
 *
 *   cost = ceil(I/O size / 4KB) * C(I/O type, r)
 *
 * with C in tokens, where one token is the cost of a 4KB random read
 * under mixed load. Constructed from a device CalibrationResult.
 */
class RequestCostModel {
 public:
  RequestCostModel(double write_cost, double read_cost_readonly,
                   uint32_t page_bytes = 4096)
      : write_cost_(write_cost),
        read_cost_readonly_(read_cost_readonly),
        page_bytes_(page_bytes) {}

  static RequestCostModel FromCalibration(
      const flash::CalibrationResult& calibration,
      uint32_t page_bytes = 4096) {
    return RequestCostModel(calibration.write_cost,
                            calibration.read_cost_readonly, page_bytes);
  }

  /** Cost in tokens of one request given the current device mix. */
  double TokensFor(flash::FlashOp op, uint32_t bytes,
                   bool device_read_only) const {
    const double pages = static_cast<double>(PagesFor(bytes));
    if (op == flash::FlashOp::kWrite) return pages * write_cost_;
    return pages * (device_read_only ? read_cost_readonly_ : 1.0);
  }

  /**
   * Token rate reserving an SLO (paper example: 100K IOPS at 80% reads
   * and write cost 10 reserves 280K tokens/s). Reads are priced at the
   * conservative mixed-load cost of 1 token.
   */
  double TokenRateForSlo(const SloSpec& slo) const {
    const double pages = static_cast<double>(PagesFor(slo.request_bytes));
    const double per_io =
        slo.read_fraction * 1.0 + (1.0 - slo.read_fraction) * write_cost_;
    return static_cast<double>(slo.iops) * per_io * pages;
  }

  double write_cost() const { return write_cost_; }
  double read_cost_readonly() const { return read_cost_readonly_; }

  uint32_t PagesFor(uint32_t bytes) const {
    if (bytes == 0) return 1;
    return (bytes + page_bytes_ - 1) / page_bytes_;
  }

 private:
  double write_cost_;
  double read_cost_readonly_;
  uint32_t page_bytes_;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_COST_MODEL_H_
