#include "core/reflex_server.h"

#include <utility>

#include "sim/logging.h"

namespace reflex::core {

ReflexServer::ReflexServer(sim::Simulator& sim, net::Network& net,
                           net::Machine* machine,
                           flash::FlashDevice& device,
                           const flash::CalibrationResult& calibration,
                           ServerOptions options)
    : sim_(sim),
      net_(net),
      machine_(machine),
      device_(device),
      calibration_(calibration),
      options_(options),
      cost_model_(RequestCostModel::FromCalibration(calibration,
                                                    device.profile()
                                                        .page_bytes)) {
  REFLEX_CHECK(machine_ != nullptr);
  if (options_.num_threads < 1 ||
      options_.num_threads > options_.max_threads) {
    REFLEX_FATAL("num_threads=%d out of range [1, %d]",
                 options_.num_threads, options_.max_threads);
  }
  device_.AttachMetrics(metrics_);
  net_.AttachMetrics(metrics_);
  control_plane_ = std::make_unique<ControlPlane>(*this);
  shared_.num_threads = 0;
  for (int i = 0; i < options_.num_threads; ++i) AddThreadInternal();
  if (options_.auto_scale) control_plane_->StartMonitor();
}

ReflexServer::~ReflexServer() {
  for (auto& t : threads_) t->Shutdown();
}

DataplaneThread* ReflexServer::AddThreadInternal() {
  // Scale-down only stops threads; the objects (and their hardware
  // queue pairs) stay in threads_. Scaling back up must restart the
  // first stopped thread rather than append a new one -- otherwise
  // active_threads_ stops matching the live index range and the
  // round-robin in Accept / PickThreadForTenant routes connections
  // to a shut-down thread.
  if (active_threads_ < static_cast<int>(threads_.size())) {
    DataplaneThread* thread = threads_[active_threads_].get();
    ++active_threads_;
    shared_.num_threads = active_threads_;
    shared_.ResetMarks();
    thread->Start();
    return thread;
  }
  const int index = static_cast<int>(threads_.size());
  threads_.emplace_back(std::make_unique<DataplaneThread>(
      sim_, *this, index, device_, shared_, cost_model_,
      options_.dataplane, options_.qos));
  ++active_threads_;
  shared_.num_threads = active_threads_;
  shared_.ResetMarks();
  threads_.back()->Start();
  return threads_.back().get();
}

void ReflexServer::SetFaultPlan(sim::FaultPlan* plan) {
  fault_plan_ = plan;
  if (plan == nullptr || brownout_listener_added_) return;
  brownout_listener_added_ = true;
  plan->AddWindowListener(
      [this](sim::FaultKind kind, uint64_t /*id*/, bool active) {
        if (kind != sim::FaultKind::kFlashBrownout) return;
        control_plane_->OnBrownout(active);
      });
}

Tenant* ReflexServer::CreateTenant(const SloSpec& slo, TenantClass cls) {
  const uint32_t handle = next_handle_++;
  auto tenant = std::make_unique<Tenant>(handle, cls, slo);
  Tenant* raw = tenant.get();
  tenants_.emplace(handle, std::move(tenant));
  tenant_list_.push_back(raw);
  return raw;
}

Tenant* ReflexServer::RegisterTenant(const SloSpec& slo, TenantClass cls,
                                     ReqStatus* status) {
  return control_plane_->TryRegister(slo, cls, status);
}

bool ReflexServer::UnregisterTenant(uint32_t handle) {
  Tenant* tenant = FindTenant(handle);
  if (tenant == nullptr || !tenant->active()) return false;
  control_plane_->Unregister(tenant);
  return true;
}

Tenant* ReflexServer::FindTenant(uint32_t handle) {
  auto it = tenants_.find(handle);
  return it == tenants_.end() ? nullptr : it->second.get();
}

AcceptResult ReflexServer::Accept(
    net::Machine* client, uint32_t tenant_handle,
    std::function<void(const ResponseMsg&)> on_response) {
  REFLEX_CHECK(client != nullptr);
  AcceptResult result;
  DataplaneThread* thread = nullptr;
  if (tenant_handle == kControlHandle) {
    // Control connections stay tenant-unbound on a round-robin thread
    // until in-band registration binds them.
    thread =
        threads_[next_conn_thread_ % static_cast<size_t>(active_threads_)]
            .get();
    ++next_conn_thread_;
  } else {
    Tenant* tenant = FindTenant(tenant_handle);
    if (tenant == nullptr || !tenant->active()) {
      result.status = ReqStatus::kNoSuchTenant;
      return result;
    }
    if (!acl_.CheckConnect(client->name(), tenant_handle)) {
      result.status = ReqStatus::kAccessDenied;
      return result;
    }
    thread = threads_[tenant->thread_index()].get();
  }
  auto tcp = std::make_unique<net::TcpConnection>(net_, client, machine_,
                                                  options_.transport);
  auto conn = std::unique_ptr<ServerConnection>(
      new ServerConnection(std::move(tcp), thread, client->name()));
  conn->on_response = std::move(on_response);
  connections_.push_back(std::move(conn));
  result.conn = connections_.back().get();
  return result;
}

ResponseMsg ReflexServer::HandleRegisterMsg(ServerConnection* conn,
                                            const RequestMsg& msg) {
  ResponseMsg resp;
  resp.cookie = msg.cookie;
  if (msg.type == ReqType::kRegister) {
    resp.type = RespType::kRegistered;
    ReqStatus status = ReqStatus::kOk;
    Tenant* tenant = nullptr;
    // Tenant handle 0 denotes the right to register new tenants.
    if (!acl_.CheckConnect(conn->client_name(), /*tenant_handle=*/0)) {
      status = ReqStatus::kAccessDenied;
    } else {
      tenant = control_plane_->TryRegister(msg.slo, msg.tenant_class,
                                           &status);
    }
    resp.status = status;
    if (tenant != nullptr) {
      resp.handle = tenant->handle();
      conn->thread_ = threads_[tenant->thread_index()].get();
    }
  } else {
    resp.type = RespType::kUnregistered;
    resp.handle = msg.handle;
    Tenant* tenant = FindTenant(msg.handle);
    if (tenant == nullptr || !tenant->active()) {
      resp.status = ReqStatus::kNoSuchTenant;
    } else {
      control_plane_->Unregister(tenant);
      resp.status = ReqStatus::kOk;
    }
  }
  return resp;
}

obs::MetricsRegistry& ReflexServer::SnapshotMetrics() {
  for (const auto& t : threads_) {
    const DataplaneStats& s = t->stats();
    const obs::LabelSet labels = obs::Label("thread", t->index());
    metrics_.GetGauge("thread_iterations", labels)->Set(s.iterations);
    metrics_.GetGauge("thread_requests_rx", labels)->Set(s.requests_rx);
    metrics_.GetGauge("thread_responses_tx", labels)->Set(s.responses_tx);
    metrics_.GetGauge("thread_error_responses", labels)
        ->Set(s.error_responses);
    metrics_.GetGauge("thread_busy_ns", labels)->Set(s.busy_ns);
    metrics_.GetGauge("thread_tcp_ns", labels)->Set(s.tcp_ns);
    metrics_.GetGauge("thread_sched_ns", labels)->Set(s.sched_ns);
    metrics_.GetGauge("thread_flash_ns", labels)->Set(s.flash_ns);
  }
  for (const Tenant* t : tenant_list_) {
    const obs::LabelSet labels = obs::Label(
        "tenant", static_cast<int64_t>(t->handle()));
    metrics_.GetGauge("tenant_submitted_reads", labels)
        ->Set(t->submitted_reads);
    metrics_.GetGauge("tenant_submitted_writes", labels)
        ->Set(t->submitted_writes);
    metrics_.GetGauge("tenant_neg_limit_hits", labels)
        ->Set(t->neg_limit_hits);
    metrics_.GetGauge("tenant_tokens_spent", labels)
        ->Set(static_cast<int64_t>(t->tokens_spent));
    metrics_.GetGauge("tenant_queue_depth", labels)
        ->Set(static_cast<int64_t>(t->queue_depth()));
    metrics_.GetGauge("tenant_errors", labels)->Set(t->errors);
  }
  if (fault_plan_ != nullptr) {
    for (int k = 0; k < sim::kNumFaultKinds; ++k) {
      const auto kind = static_cast<sim::FaultKind>(k);
      metrics_
          .GetGauge("faults_injected",
                    obs::Label("kind", sim::FaultKindName(kind)))
          ->Set(fault_plan_->injected(kind));
    }
  }
  return metrics_;
}

int ReflexServer::AddRangeGate(uint64_t first_lba, uint64_t sectors) {
  const int id = next_gate_id_++;
  RangeGate gate;
  gate.first_lba = first_lba;
  gate.sectors = sectors;
  // A re-migration supersedes whatever gate an earlier migration left
  // on this range: fold the old epoch floor into the new gate (clients
  // older than that cutover must still bounce -- the lba may hold a
  // different stripe's bytes now) and drop the old gate. Without this,
  // gates stack up on a range that moves away, back, and away again,
  // and the oldest kMoved gate answers first with a floor low enough
  // to wave stale clients through to freed data.
  for (auto it = range_gates_.begin(); it != range_gates_.end();) {
    if (it->second.Overlaps(first_lba, sectors)) {
      gate.min_epoch = std::max(gate.min_epoch, it->second.min_epoch);
      it = range_gates_.erase(it);
    } else {
      ++it;
    }
  }
  range_gates_.emplace(id, gate);
  return id;
}

RangeGate* ReflexServer::FindRangeGate(int id) {
  auto it = range_gates_.find(id);
  return it == range_gates_.end() ? nullptr : &it->second;
}

void ReflexServer::RemoveRangeGate(int id) { range_gates_.erase(id); }

ReqStatus ReflexServer::CheckRangeGates(const RequestMsg& msg,
                                        int* counted_gate) {
  *counted_gate = -1;
  if (msg.map_epoch == kMapEpochBypass) return ReqStatus::kOk;
  for (auto& [id, gate] : range_gates_) {
    if (!gate.Overlaps(msg.lba, msg.sectors)) continue;
    // The epoch floor applies in every state: a client older than the
    // last cutover that moved this range is routing blind (the lba may
    // belong to a different stripe by now), so it bounces even while a
    // fresh migration is copying the range again.
    if (msg.map_epoch < gate.min_epoch) return ReqStatus::kWrongShard;
    switch (gate.state) {
      case RangeGateState::kCopying:
        if (msg.type == ReqType::kWrite) {
          gate.dirty = true;
          ++gate.inflight_writes;
          *counted_gate = id;
        }
        return ReqStatus::kOk;
      case RangeGateState::kDraining:
        // Reads still serve (no write can commit under drain); writes
        // bounce so the range quiesces. The client's bounded retry
        // straddles the map flip.
        return msg.type == ReqType::kWrite ? ReqStatus::kWrongShard
                                           : ReqStatus::kOk;
      case RangeGateState::kMoved:
        return ReqStatus::kOk;  // floor already checked above
    }
  }
  return ReqStatus::kOk;
}

void ReflexServer::OnGatedIoDone(int gate_id) {
  RangeGate* gate = FindRangeGate(gate_id);
  if (gate == nullptr) return;
  REFLEX_CHECK(gate->inflight_writes > 0);
  --gate->inflight_writes;
}

DataplaneStats ReflexServer::AggregateStats() const {
  DataplaneStats agg;
  for (const auto& t : threads_) {
    const DataplaneStats& s = t->stats();
    agg.iterations += s.iterations;
    agg.requests_rx += s.requests_rx;
    agg.responses_tx += s.responses_tx;
    agg.error_responses += s.error_responses;
    agg.sched_rounds += s.sched_rounds;
    agg.flash_submitted += s.flash_submitted;
    agg.busy_ns += s.busy_ns;
    agg.tcp_ns += s.tcp_ns;
    agg.sched_ns += s.sched_ns;
    agg.flash_ns += s.flash_ns;
    agg.batch_sum += s.batch_sum;
  }
  return agg;
}

}  // namespace reflex::core
