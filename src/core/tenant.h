#ifndef REFLEX_CORE_TENANT_H_
#define REFLEX_CORE_TENANT_H_

#include <cstdint>
#include <deque>
#include <string>

#include "core/protocol.h"
#include "core/slo.h"
#include "sim/time.h"

namespace reflex::core {

class ServerConnection;

/** A read/write request queued in a tenant's software queue. */
struct PendingIo {
  RequestMsg msg;
  ServerConnection* conn = nullptr;
  sim::TimeNs enqueue_time = 0;
  /** Token cost, priced at enqueue time (section 3.2.1). */
  double cost = 0.0;
  /**
   * Migration range gate this write was counted against at admission
   * (-1 for ungated requests). The gate's in-flight counter must be
   * decremented exactly once, on completion or failure, so a draining
   * migration knows when the range has quiesced.
   */
  int gate_id = -1;

  /** Trace span of a sampled request (null on the untraced path). */
  obs::TraceSpan* trace() const { return msg.trace.get(); }

  /** Timestamps `stage` if this request is being traced. */
  void MarkStage(obs::Stage stage, sim::TimeNs now) const {
    if (msg.trace) msg.trace->Mark(stage, now);
  }
};

/**
 * A tenant: the logical unit of SLO accounting (paper section 3.2).
 * One tenant may be shared by thousands of connections; each tenant is
 * served by exactly one dataplane thread (the paper's stated
 * implementation limit).
 */
class Tenant {
 public:
  Tenant(uint32_t handle, TenantClass cls, const SloSpec& slo)
      : handle_(handle), cls_(cls), slo_(slo) {}

  uint32_t handle() const { return handle_; }
  TenantClass cls() const { return cls_; }
  bool IsLatencyCritical() const {
    return cls_ == TenantClass::kLatencyCritical;
  }
  const SloSpec& slo() const { return slo_; }

  /** Dataplane thread index this tenant is bound to. */
  int thread_index() const { return thread_index_; }
  void set_thread_index(int idx) { thread_index_ = idx; }

  /**
   * Token generation rate (tokens/sec). For LC tenants this is the
   * SLO reservation; for BE tenants the fair share of unallocated
   * throughput. Maintained by the control plane.
   */
  double token_rate() const { return token_rate_; }
  void set_token_rate(double rate) { token_rate_ = rate; }

  /** Sum of priced costs of queued requests ("demand" in Alg. 1). */
  double queued_cost() const { return queued_cost_; }
  size_t queue_depth() const { return queue_.size(); }

  /** Current token balance (test/diagnostic visibility). */
  double tokens() const { return tokens_; }

  /** False once the tenant has been unregistered. */
  bool active() const { return active_; }
  void set_active(bool active) { active_ = active; }

  /** Removes and returns all queued requests (unregistration path). */
  std::deque<PendingIo> TakeQueue() {
    queued_cost_ = 0.0;
    std::deque<PendingIo> q;
    q.swap(queue_);
    return q;
  }

  // --- Counters (server side) ---
  int64_t submitted_reads = 0;
  int64_t submitted_writes = 0;
  int64_t completed_reads = 0;
  int64_t completed_writes = 0;
  int64_t neg_limit_hits = 0;
  double tokens_spent = 0.0;
  /** I/Os submitted to the device and not yet completed (barriers). */
  int64_t inflight = 0;
  /** Payload bytes submitted to the device and not yet completed
   * (AdaptiveBePolicy's bufferbloat control). */
  int64_t inflight_bytes = 0;
  /** Total payload bytes of completed device I/Os. */
  int64_t completed_bytes = 0;
  /** Non-kOk responses sent on behalf of this tenant. */
  int64_t errors = 0;

 private:
  friend class QosScheduler;
  friend class QosPolicy;

  uint32_t handle_;
  TenantClass cls_;
  SloSpec slo_;
  int thread_index_ = -1;
  double token_rate_ = 0.0;
  bool active_ = true;

  // Scheduler state (owned by the tenant's thread scheduler).
  double tokens_ = 0.0;
  std::deque<PendingIo> queue_;
  double queued_cost_ = 0.0;
  /** Tokens granted in the last 3 rounds: POS_LIMIT (section 3.2.2). */
  double grant_history_[3] = {0.0, 0.0, 0.0};
  int grant_cursor_ = 0;
};

}  // namespace reflex::core

#endif  // REFLEX_CORE_TENANT_H_
