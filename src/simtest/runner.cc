#include "simtest/runner.h"

#include <algorithm>
#include <memory>
#include <string>

#include "cluster/cluster_client.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/flash_cluster.h"
#include "flash/calibration.h"
#include "net/network.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace reflex::simtest {
namespace {

using client::IoResult;

constexpr sim::TimeNs kDeadline = sim::Seconds(30);
constexpr sim::TimeNs kPollStep = sim::Micros(50);

/**
 * One tenant's closed-loop driver: exactly one outstanding op, fresh
 * payload buffer per op. Buffers are never freed or reused during the
 * run: request payloads travel through the simulated stack by
 * pointer, and a timed-out ("unknown outcome") write may still read
 * its payload when it finally applies -- recycling the memory would
 * turn such zombies into payload corruption the oracle would
 * (rightly!) flag.
 */
struct TenantDriver {
  const TenantSpec* spec = nullptr;
  std::unique_ptr<cluster::ClusterSession> session;
  sim::Rng rng;
  int64_t issued = 0;
  int64_t resolved = 0;

  // In-flight op state.
  bool busy = false;
  bool is_read = false;
  uint64_t version = 0;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  uint8_t* buffer = nullptr;
  sim::Future<IoResult> future;
  /** Manual fan-out path (kSkipOneSubWrite): per-extent futures. */
  std::vector<sim::Future<IoResult>> extent_futures;

  TenantDriver(const TenantSpec* s, uint64_t seed, int index)
      : spec(s), rng(seed, "simtest.tenant." + std::to_string(index)) {}
};

}  // namespace

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "none";
    case Mutation::kSkipOneSubWrite:
      return "skip_one_sub_write";
    case Mutation::kForgeTokens:
      return "forge_tokens";
  }
  return "none";
}

Mutation MutationFromName(const std::string& name) {
  if (name == "skip_one_sub_write") return Mutation::kSkipOneSubWrite;
  if (name == "forge_tokens") return Mutation::kForgeTokens;
  return Mutation::kNone;
}

RunReport RunScenario(const ScenarioSpec& spec_in, Mutation mutation,
                      int64_t max_ops) {
  ScenarioSpec spec = spec_in;
  if (mutation == Mutation::kForgeTokens) spec.enforce_qos = true;

  sim::Simulator sim;
  net::Network net(sim);

  cluster::FlashClusterOptions options;
  options.num_shards = spec.num_shards;
  options.calibration = flash::CannedCalibrationA();
  options.server.qos.enforce = spec.enforce_qos;
  options.server.qos.policy = spec.policy;
  options.shard_map.placement = spec.rendezvous
                                    ? cluster::Placement::kHashed
                                    : cluster::Placement::kStriped;
  options.shard_map.stripe_sectors = spec.stripe_sectors;
  options.seed = spec.seed;
  cluster::FlashCluster cluster(sim, net, options);

  sim::FaultPlan plan(sim, spec.seed ^ 0xFA5EEDULL);
  net.SetFaultPlan(&plan);
  for (int i = 0; i < cluster.num_shards(); ++i) {
    cluster.device(i).SetFaultPlan(&plan);
    cluster.server(i).SetFaultPlan(&plan);
  }
  for (const FaultProbSpec& p : spec.probabilities) {
    plan.SetProbability(p.kind, p.probability);
  }
  for (const FaultWindowSpec& w : spec.windows) {
    plan.ScheduleWindow(w.kind, w.start, w.duration);
  }

  net::Machine* client_machine = net.AddMachine("simtest-client");
  cluster::ClusterClient::Options copts;
  copts.client.retry.request_timeout = sim::Millis(2);
  copts.client.retry.max_retries = 5;
  copts.client.retry.backoff_base = sim::Micros(100);
  copts.client.retry.reconnect_after_timeouts = 2;
  cluster::ClusterClient client(cluster, client_machine, copts);

  std::vector<std::unique_ptr<TenantDriver>> drivers;
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const TenantSpec& t = spec.tenants[i];
    auto driver =
        std::make_unique<TenantDriver>(&t, spec.seed, static_cast<int>(i));
    if (t.latency_critical) {
      core::SloSpec slo;
      slo.iops = t.slo_iops;
      slo.read_fraction = t.slo_read_fraction;
      slo.latency = t.slo_latency;
      driver->session =
          client.OpenSession(slo, core::TenantClass::kLatencyCritical);
    }
    if (driver->session == nullptr) {
      // Inadmissible LC SLO (or BE by construction): run best-effort.
      // Deterministic: admission depends only on the spec.
      driver->session = client.OpenSession(core::SloSpec{},
                                           core::TenantClass::kBestEffort);
    }
    drivers.push_back(std::move(driver));
  }

  ConsistencyOracle oracle;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> buffers;
  const int64_t budget =
      max_ops >= 0 ? std::min(max_ops, spec.TotalOps()) : spec.TotalOps();
  int64_t total_issued = 0;
  bool skip_mutation_pending = mutation == Mutation::kSkipOneSubWrite;
  bool tokens_forged = false;

  auto issue_for = [&](int index) {
    TenantDriver& d = *drivers[index];
    const TenantSpec& t = *d.spec;
    d.is_read = d.rng.NextBernoulli(t.read_fraction);
    d.sectors =
        1 + static_cast<uint32_t>(d.rng.NextBounded(t.max_io_sectors));
    d.lba = t.lba_base + d.rng.NextBounded(t.lba_span - d.sectors + 1);
    buffers.push_back(std::make_unique<std::vector<uint8_t>>(
        static_cast<size_t>(d.sectors) * core::kSectorBytes, 0));
    d.buffer = buffers.back()->data();
    d.extent_futures.clear();
    d.busy = true;
    ++d.issued;
    ++total_issued;

    if (d.is_read) {
      d.future = d.session->Read(d.lba, d.sectors, d.buffer);
      return;
    }
    d.version = oracle.BeginWrite(index, d.lba, d.sectors, sim.Now());
    ConsistencyOracle::StampPayload(d.buffer, d.version, d.lba, d.sectors);
    if (skip_mutation_pending) {
      std::vector<cluster::ShardExtent> extents =
          cluster.shard_map().Split(d.lba, d.sectors);
      if (extents.size() >= 2) {
        // Planted bug: issue every extent except the last, then
        // report the write as fully successful.
        skip_mutation_pending = false;
        extents.pop_back();
        for (const cluster::ShardExtent& e : extents) {
          d.extent_futures.push_back(
              d.session->shard_session(e.shard_index)
                  .Write(e.shard_lba, e.sectors,
                         d.buffer +
                             static_cast<size_t>(e.buffer_offset_sectors) *
                                 core::kSectorBytes));
        }
        return;
      }
    }
    d.future = d.session->Write(d.lba, d.sectors, d.buffer);
  };

  auto complete_op = [&](TenantDriver& d, const IoResult& result) {
    d.busy = false;
    ++d.resolved;
    if (d.is_read) {
      // Validate against a window extended to "now": a retransmitted
      // duplicate of this read may legally refresh the payload buffer
      // between the future resolving and this poll observing it.
      IoResult observed = result;
      observed.complete_time = std::max(observed.complete_time, sim.Now());
      oracle.EndRead(d.lba, d.sectors, d.buffer, observed);
    } else {
      oracle.EndWrite(d.version, result);
    }
  };

  while (sim.Now() < kDeadline) {
    bool idle = true;
    for (size_t i = 0; i < drivers.size(); ++i) {
      TenantDriver& d = *drivers[i];
      if (d.busy) {
        if (!d.extent_futures.empty()) {
          bool all_ready = true;
          for (const auto& f : d.extent_futures) all_ready &= f.Ready();
          if (all_ready) {
            IoResult combined;
            combined.issue_time = d.extent_futures.front().Get().issue_time;
            for (const auto& f : d.extent_futures) {
              const IoResult& r = f.Get();
              combined.issue_time =
                  std::min(combined.issue_time, r.issue_time);
              combined.complete_time =
                  std::max(combined.complete_time, r.complete_time);
              if (combined.ok() && !r.ok()) combined.status = r.status;
            }
            complete_op(d, combined);
          }
        } else if (d.future.Ready()) {
          complete_op(d, d.future.Get());
        }
      }
      if (!d.busy && d.issued < d.spec->ops && total_issued < budget) {
        issue_for(static_cast<int>(i));
      }
      if (d.busy) idle = false;
    }
    if (mutation == Mutation::kForgeTokens && !tokens_forged &&
        total_issued * 2 >= budget) {
      // Planted bug: tokens appear out of thin air, bypassing the
      // generation ledger.
      tokens_forged = true;
      cluster.server(0).shared().global_bucket.Donate(50.0);
    }
    if (idle && total_issued >= budget) break;
    sim.RunUntil(sim.Now() + kPollStep);
  }

  RunReport report;
  report.completed = total_issued >= budget;
  for (const auto& d : drivers) {
    report.ops_executed += d->resolved;
    if (d->busy) report.completed = false;
  }
  report.reads_checked = oracle.reads_checked();
  report.writes_tracked = oracle.writes_tracked();
  report.data_violations = oracle.violations();
  report.invariant_violations = CheckClusterInvariants(cluster);
  return report;
}

}  // namespace reflex::simtest
