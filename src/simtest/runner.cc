#include "simtest/runner.h"

#include <algorithm>
#include <memory>
#include <string>

#include "cluster/cluster_client.h"
#include "cluster/cluster_control_plane.h"
#include "cluster/flash_cluster.h"
#include "cluster/migration.h"
#include "flash/calibration.h"
#include "net/network.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace reflex::simtest {
namespace {

using client::IoResult;

constexpr sim::TimeNs kDeadline = sim::Seconds(30);
constexpr sim::TimeNs kPollStep = sim::Micros(50);

/**
 * One tenant's closed-loop driver: exactly one outstanding op, fresh
 * payload buffer per op. Buffers are never freed or reused during the
 * run: request payloads travel through the simulated stack by
 * pointer, and a timed-out ("unknown outcome") write may still read
 * its payload when it finally applies -- recycling the memory would
 * turn such zombies into payload corruption the oracle would
 * (rightly!) flag.
 */
struct TenantDriver {
  const TenantSpec* spec = nullptr;
  std::unique_ptr<cluster::ClusterSession> session;
  sim::Rng rng;
  int64_t issued = 0;
  int64_t resolved = 0;

  // In-flight op state.
  bool busy = false;
  bool is_read = false;
  uint64_t version = 0;
  uint64_t lba = 0;
  uint32_t sectors = 0;
  uint8_t* buffer = nullptr;
  sim::Future<IoResult> future;
  /** Manual fan-out path (mutations): per-sub-write futures. */
  std::vector<sim::Future<IoResult>> extent_futures;

  /** kServeStaleReplica probe: after the planted write "succeeds",
   * the skipped replica is read directly and oracle-checked against
   * the extent's logical LBA. */
  bool probe_pending = false;
  bool probe_inflight = false;
  cluster::ReplicaTarget probe_target;
  uint64_t probe_lba = 0;
  uint32_t probe_sectors = 0;
  uint8_t* probe_buffer = nullptr;
  sim::Future<IoResult> probe_future;

  TenantDriver(const TenantSpec* s, uint64_t seed, int index)
      : spec(s), rng(seed, "simtest.tenant." + std::to_string(index)) {}
};

}  // namespace

const char* MutationName(Mutation m) {
  switch (m) {
    case Mutation::kNone:
      return "none";
    case Mutation::kSkipOneSubWrite:
      return "skip_one_sub_write";
    case Mutation::kForgeTokens:
      return "forge_tokens";
    case Mutation::kServeStaleReplica:
      return "serve_stale_replica";
    case Mutation::kDropForwardedWrite:
      return "drop_forwarded_write";
    case Mutation::kServePremigrationRange:
      return "serve_premigration_range";
  }
  return "none";
}

Mutation MutationFromName(const std::string& name) {
  if (name == "skip_one_sub_write") return Mutation::kSkipOneSubWrite;
  if (name == "forge_tokens") return Mutation::kForgeTokens;
  if (name == "serve_stale_replica") return Mutation::kServeStaleReplica;
  if (name == "drop_forwarded_write") return Mutation::kDropForwardedWrite;
  if (name == "serve_premigration_range") {
    return Mutation::kServePremigrationRange;
  }
  return Mutation::kNone;
}

RunReport RunScenario(const ScenarioSpec& spec_in, Mutation mutation,
                      int64_t max_ops) {
  ScenarioSpec spec = spec_in;
  if (mutation == Mutation::kForgeTokens) spec.enforce_qos = true;
  if (mutation == Mutation::kServeStaleReplica) {
    // The planted bug needs a replica to skip, hosted on a shard other
    // than the primary.
    spec.num_shards = std::max(spec.num_shards, 2);
    spec.replication = std::max(spec.replication, 2);
  }
  const bool migration_canary = mutation == Mutation::kDropForwardedWrite ||
                                mutation == Mutation::kServePremigrationRange;
  if (migration_canary) {
    // The canary drives its own deterministic write/migrate/read
    // sequence against stripe 0 (shard 0 under striped placement), so
    // the scenario is pinned: no competing workload over the probe
    // range, no faults that could abort the migration, no replica
    // that could mask the missing copy.
    spec.num_shards = std::max(spec.num_shards, 2);
    spec.rendezvous = false;
    spec.replication = 1;
    spec.steering = cluster::SteeringPolicy::kPrimaryOnly;
    spec.migrate = true;
    spec.migrate_source = 0;
    spec.migrate_target = 1;
    spec.migrate_first_stripe = 0;
    spec.migrate_stripe_count = 4;
    spec.autoscale = false;
    spec.kill_replica = false;
    spec.probabilities.clear();
    spec.windows.clear();
    for (TenantSpec& t : spec.tenants) t.ops = 0;
  }

  sim::Simulator sim;
  net::Network net(sim);

  cluster::FlashClusterOptions options;
  options.num_shards = spec.num_shards;
  options.calibration = flash::CannedCalibrationA();
  options.server.qos.enforce = spec.enforce_qos;
  options.server.qos.policy = spec.policy;
  options.shard_map.placement = spec.rendezvous
                                    ? cluster::Placement::kHashed
                                    : cluster::Placement::kStriped;
  options.shard_map.stripe_sectors = spec.stripe_sectors;
  options.shard_map.replication = spec.replication;
  // Reserve landing slots only when this scenario can migrate: slot
  // reservation shrinks the logical volume, and seeds without
  // migration must keep their exact pre-migration capacity and map.
  const bool wants_migration =
      (spec.migrate || spec.autoscale) && spec.num_shards >= 2;
  if (wants_migration) options.shard_map.migration_slots = 64;
  options.seed = spec.seed;
  cluster::FlashCluster cluster(sim, net, options);

  sim::FaultPlan plan(sim, spec.seed ^ 0xFA5EEDULL);
  net.SetFaultPlan(&plan);
  for (int i = 0; i < cluster.num_shards(); ++i) {
    cluster.device(i).SetFaultPlan(&plan);
    cluster.server(i).SetFaultPlan(&plan);
  }
  for (const FaultProbSpec& p : spec.probabilities) {
    plan.SetProbability(p.kind, p.probability);
  }
  for (const FaultWindowSpec& w : spec.windows) {
    plan.ScheduleWindow(w.kind, w.start, w.duration);
  }
  // Kill one replica mid-run: the shard machine's link flaps, so every
  // send through it is dropped for the window. Only armed when the
  // effective replication leaves a survivor for every stripe --
  // otherwise the window would just stall the workload.
  if (spec.kill_replica &&
      std::min(spec.replication, spec.num_shards) > 1) {
    const int kill_shard = spec.kill_shard % spec.num_shards;
    plan.ScheduleWindow(
        sim::FaultKind::kNetLinkFlap, spec.kill_start, spec.kill_duration,
        static_cast<uint64_t>(cluster.machine(kill_shard)->id()));
  }

  net::Machine* client_machine = net.AddMachine("simtest-client");
  cluster::ClusterClient::Options copts;
  copts.steering = spec.steering;
  copts.client.retry.request_timeout = sim::Millis(2);
  copts.client.retry.max_retries = 5;
  copts.client.retry.backoff_base = sim::Micros(100);
  copts.client.retry.reconnect_after_timeouts = 2;
  cluster::ClusterClient client(cluster, client_machine, copts);

  std::vector<std::unique_ptr<TenantDriver>> drivers;
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const TenantSpec& t = spec.tenants[i];
    auto driver =
        std::make_unique<TenantDriver>(&t, spec.seed, static_cast<int>(i));
    if (t.latency_critical) {
      core::SloSpec slo;
      slo.iops = t.slo_iops;
      slo.read_fraction = t.slo_read_fraction;
      slo.latency = t.slo_latency;
      driver->session =
          client.OpenSession(slo, core::TenantClass::kLatencyCritical);
    }
    if (driver->session == nullptr) {
      // Inadmissible LC SLO (or BE by construction): run best-effort.
      // Deterministic: admission depends only on the spec.
      driver->session = client.OpenSession(core::SloSpec{},
                                           core::TenantClass::kBestEffort);
    }
    drivers.push_back(std::move(driver));
  }

  // Live-migration machinery, only for scenarios that can move data:
  // everything else runs the exact event sequence it always did.
  std::unique_ptr<cluster::MigrationCoordinator> coordinator;
  const bool do_migrate = wants_migration && spec.migrate &&
                          cluster.shard_map().num_stripes() > 0;
  const bool do_autoscale = wants_migration && spec.autoscale;
  if (do_migrate || do_autoscale) {
    cluster::MigrationCoordinator::Options mopts;
    mopts.mutate_drop_forwarded_write =
        mutation == Mutation::kDropForwardedWrite;
    mopts.mutate_serve_premigration_range =
        mutation == Mutation::kServePremigrationRange;
    coordinator = std::make_unique<cluster::MigrationCoordinator>(
        cluster, net, mopts);
  }
  if (do_autoscale) {
    cluster::ClusterControlPlane::AutoscalerOptions aopts;
    aopts.period = sim::Millis(2);
    aopts.hot_first_stripe = 0;
    aopts.hot_stripes =
        std::min<uint64_t>(32, cluster.shard_map().num_stripes());
    cluster.control_plane().StartAutoscaler(*coordinator, aopts);
  }

  ConsistencyOracle oracle;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> buffers;
  const int64_t budget =
      max_ops >= 0 ? std::min(max_ops, spec.TotalOps()) : spec.TotalOps();
  int64_t total_issued = 0;
  bool skip_mutation_pending = mutation == Mutation::kSkipOneSubWrite;
  bool stale_mutation_pending = mutation == Mutation::kServeStaleReplica;
  bool tokens_forged = false;

  auto issue_for = [&](int index) {
    TenantDriver& d = *drivers[index];
    const TenantSpec& t = *d.spec;
    d.is_read = d.rng.NextBernoulli(t.read_fraction);
    d.sectors =
        1 + static_cast<uint32_t>(d.rng.NextBounded(t.max_io_sectors));
    d.lba = t.lba_base + d.rng.NextBounded(t.lba_span - d.sectors + 1);
    buffers.push_back(std::make_unique<std::vector<uint8_t>>(
        static_cast<size_t>(d.sectors) * core::kSectorBytes, 0));
    d.buffer = buffers.back()->data();
    d.extent_futures.clear();
    d.busy = true;
    ++d.issued;
    ++total_issued;

    if (d.is_read) {
      d.future = d.session->Read(d.lba, d.sectors, d.buffer);
      return;
    }
    d.version = oracle.BeginWrite(index, d.lba, d.sectors, sim.Now());
    ConsistencyOracle::StampPayload(d.buffer, d.version, d.lba, d.sectors);
    if (skip_mutation_pending) {
      std::vector<cluster::ShardExtent> extents =
          cluster.shard_map().Split(d.lba, d.sectors);
      if (extents.size() >= 2) {
        // Planted bug: issue every extent except the last (to all of
        // its replica placements, so the skipped *extent* is the only
        // defect), then report the write as fully successful.
        skip_mutation_pending = false;
        extents.pop_back();
        for (const cluster::ShardExtent& e : extents) {
          for (const cluster::ReplicaTarget& target : e.AllTargets()) {
            d.extent_futures.push_back(
                d.session->shard_session(target.shard_index)
                    .Write(target.shard_lba, e.sectors,
                           d.buffer +
                               static_cast<size_t>(e.buffer_offset_sectors) *
                                   core::kSectorBytes));
          }
        }
        return;
      }
    }
    if (stale_mutation_pending) {
      std::vector<cluster::ShardExtent> extents =
          cluster.shard_map().Split(d.lba, d.sectors);
      if (!extents.empty() && !extents.front().replicas.empty()) {
        // Planted bug: write every placement except the first extent's
        // last replica, report full success, and remember the skipped
        // replica for a direct probe read once the write resolves.
        stale_mutation_pending = false;
        for (size_t ei = 0; ei < extents.size(); ++ei) {
          const cluster::ShardExtent& e = extents[ei];
          const std::vector<cluster::ReplicaTarget> targets =
              e.AllTargets();
          for (size_t ti = 0; ti < targets.size(); ++ti) {
            if (ei == 0 && ti + 1 == targets.size()) continue;  // skipped
            d.extent_futures.push_back(
                d.session->shard_session(targets[ti].shard_index)
                    .Write(targets[ti].shard_lba, e.sectors,
                           d.buffer +
                               static_cast<size_t>(e.buffer_offset_sectors) *
                                   core::kSectorBytes));
          }
        }
        d.probe_pending = true;
        d.probe_target = extents.front().AllTargets().back();
        d.probe_lba = d.lba;  // extent 0 starts at the logical LBA
        d.probe_sectors = extents.front().sectors;
        return;
      }
    }
    d.future = d.session->Write(d.lba, d.sectors, d.buffer);
  };

  auto complete_op = [&](TenantDriver& d, const IoResult& result) {
    d.busy = false;
    ++d.resolved;
    if (d.is_read) {
      // Validate against a window extended to "now": a retransmitted
      // duplicate of this read may legally refresh the payload buffer
      // between the future resolving and this poll observing it.
      IoResult observed = result;
      observed.complete_time = std::max(observed.complete_time, sim.Now());
      oracle.EndRead(d.lba, d.sectors, d.buffer, observed);
    } else {
      oracle.EndWrite(d.version, result);
    }
  };

  // Reads the replica skipped by kServeStaleReplica, bypassing
  // steering: whatever that shard returns is oracle-checked against
  // the logical LBA the planted write claimed to have committed.
  auto start_probe = [&](TenantDriver& d) {
    d.probe_pending = false;
    d.probe_inflight = true;
    d.busy = true;
    buffers.push_back(std::make_unique<std::vector<uint8_t>>(
        static_cast<size_t>(d.probe_sectors) * core::kSectorBytes, 0));
    d.probe_buffer = buffers.back()->data();
    d.probe_future =
        d.session->shard_session(d.probe_target.shard_index)
            .Read(d.probe_target.shard_lba, d.probe_sectors,
                  d.probe_buffer);
  };

  // Scheduled migration: clamp the drawn endpoints to the realized
  // topology (source != target) and race it against the workload and
  // fault plan from migrate_start on.
  bool migrate_started = false;
  sim::Future<bool> migrate_future;
  auto start_migration = [&]() {
    migrate_started = true;
    const uint64_t stripes = cluster.shard_map().num_stripes();
    const int src = spec.migrate_source % cluster.num_shards();
    int dst = spec.migrate_target % cluster.num_shards();
    if (dst == src) dst = (src + 1) % cluster.num_shards();
    migrate_future =
        coordinator->MigrateRange(src, dst, spec.migrate_first_stripe % stripes,
                                  spec.migrate_stripe_count);
  };

  // Migration-canary probe (see the Mutation docs): write v1 to stripe
  // 0, migrate it -- v2 is written at the coordinator's before-cutover
  // point (kDropForwardedWrite) or stale-mapped after the cutover
  // (kServePremigrationRange) -- then read stripe 0 back and let the
  // oracle judge which version survived.
  int canary_stage = migration_canary ? 1 : 0;
  uint64_t canary_version = 0;
  const uint32_t canary_sectors = spec.stripe_sectors;
  uint8_t* canary_buffer = nullptr;
  sim::Future<IoResult> canary_future;
  sim::Future<IoResult> canary_hook_future;
  bool canary_hook_pending = false;
  auto canary_stamped_buffer = [&]() {
    buffers.push_back(std::make_unique<std::vector<uint8_t>>(
        static_cast<size_t>(canary_sectors) * core::kSectorBytes, 0));
    uint8_t* buf = buffers.back()->data();
    canary_version = oracle.BeginWrite(0, 0, canary_sectors, sim.Now());
    ConsistencyOracle::StampPayload(buf, canary_version, 0, canary_sectors);
    return buf;
  };

  while (sim.Now() < kDeadline) {
    bool idle = true;
    for (size_t i = 0; i < drivers.size(); ++i) {
      TenantDriver& d = *drivers[i];
      if (d.busy) {
        if (d.probe_inflight) {
          if (d.probe_future.Ready()) {
            IoResult observed = d.probe_future.Get();
            observed.complete_time =
                std::max(observed.complete_time, sim.Now());
            oracle.EndRead(d.probe_lba, d.probe_sectors, d.probe_buffer,
                           observed);
            d.probe_inflight = false;
            d.busy = false;
          }
        } else if (!d.extent_futures.empty()) {
          bool all_ready = true;
          for (const auto& f : d.extent_futures) all_ready &= f.Ready();
          if (all_ready) {
            IoResult combined;
            combined.issue_time = d.extent_futures.front().Get().issue_time;
            for (const auto& f : d.extent_futures) {
              const IoResult& r = f.Get();
              combined.issue_time =
                  std::min(combined.issue_time, r.issue_time);
              combined.complete_time =
                  std::max(combined.complete_time, r.complete_time);
              if (combined.ok() && !r.ok()) combined.status = r.status;
            }
            complete_op(d, combined);
            if (d.probe_pending) start_probe(d);
          }
        } else if (d.future.Ready()) {
          complete_op(d, d.future.Get());
        }
      }
      if (!d.busy && d.issued < d.spec->ops && total_issued < budget) {
        issue_for(static_cast<int>(i));
      }
      if (d.busy) idle = false;
    }
    if (mutation == Mutation::kForgeTokens && !tokens_forged &&
        total_issued * 2 >= budget) {
      // Planted bug: tokens appear out of thin air, bypassing the
      // generation ledger.
      tokens_forged = true;
      cluster.server(0).shared().global_bucket.Donate(50.0);
    }

    if (do_migrate && !migration_canary && !migrate_started &&
        !coordinator->busy() &&
        (sim.Now() >= spec.migrate_start ||
         (idle && total_issued >= budget))) {
      // Fire at the drawn time; if the workload drains first, fire
      // anyway so every migrating seed exercises copy-and-cutover.
      // Deferred (next poll tick) while an autoscaler rebalance batch
      // holds the coordinator -- one batch runs at a time.
      start_migration();
    }

    if (canary_stage == 1) {
      canary_buffer = canary_stamped_buffer();
      canary_future =
          drivers[0]->session->Write(0, canary_sectors, canary_buffer);
      canary_stage = 2;
    } else if (canary_stage == 2 && canary_future.Ready()) {
      oracle.EndWrite(canary_version, canary_future.Get());
      if (mutation == Mutation::kDropForwardedWrite) {
        coordinator->before_cutover = [&]() {
          uint8_t* buf = canary_stamped_buffer();
          canary_hook_future =
              drivers[0]->session->Write(0, canary_sectors, buf);
          canary_hook_pending = true;
          return canary_hook_future;
        };
      }
      start_migration();
      canary_stage = 3;
    } else if (canary_stage == 3) {
      if (canary_hook_pending && canary_hook_future.Ready()) {
        oracle.EndWrite(canary_version, canary_hook_future.Get());
        canary_hook_pending = false;
      }
      if (migrate_future.Ready() && !canary_hook_pending) {
        if (mutation == Mutation::kServePremigrationRange) {
          // The client's local map still predates the cutover, so this
          // write carries the stale epoch. Correct servers bounce it
          // into a refresh-and-retry; the mutated one absorbs it.
          canary_buffer = canary_stamped_buffer();
          canary_future =
              drivers[0]->session->Write(0, canary_sectors, canary_buffer);
          canary_stage = 4;
        } else {
          canary_stage = 5;
        }
      }
    } else if (canary_stage == 4 && canary_future.Ready()) {
      oracle.EndWrite(canary_version, canary_future.Get());
      canary_stage = 5;
    } else if (canary_stage == 5) {
      client.RefreshMap();
      buffers.push_back(std::make_unique<std::vector<uint8_t>>(
          static_cast<size_t>(canary_sectors) * core::kSectorBytes, 0));
      canary_buffer = buffers.back()->data();
      canary_future =
          drivers[0]->session->Read(0, canary_sectors, canary_buffer);
      canary_stage = 6;
    } else if (canary_stage == 6 && canary_future.Ready()) {
      IoResult observed = canary_future.Get();
      observed.complete_time = std::max(observed.complete_time, sim.Now());
      oracle.EndRead(0, canary_sectors, canary_buffer, observed);
      canary_stage = 0;
    }
    if (canary_stage != 0) idle = false;

    const bool migration_quiet =
        !migrate_started || migrate_future.Ready();
    if (idle && total_issued >= budget && migration_quiet) break;
    sim.RunUntil(sim.Now() + kPollStep);
  }

  if (do_autoscale) cluster.control_plane().StopAutoscaler();

  RunReport report;
  report.completed = total_issued >= budget;
  for (const auto& d : drivers) {
    report.ops_executed += d->resolved;
    if (d->busy) report.completed = false;
  }
  if (migration_canary && canary_stage != 0) report.completed = false;
  if (coordinator != nullptr) {
    report.migrations_started = coordinator->stats().migrations_started;
    report.migrations_committed = coordinator->stats().migrations_committed;
    report.migrations_aborted = coordinator->stats().migrations_aborted;
  }
  if (do_autoscale) {
    report.autoscaler_rebalances =
        cluster.control_plane().autoscaler_stats().rebalances;
  }
  for (const auto& d : drivers) {
    report.wrong_shard_retries += d->session->wrong_shard_retries();
  }
  report.reads_checked = oracle.reads_checked();
  report.writes_tracked = oracle.writes_tracked();
  report.data_violations = oracle.violations();
  report.invariant_violations = CheckClusterInvariants(cluster);
  return report;
}

}  // namespace reflex::simtest
