#ifndef REFLEX_SIMTEST_INVARIANTS_H_
#define REFLEX_SIMTEST_INVARIANTS_H_

#include <string>
#include <vector>

#include "cluster/flash_cluster.h"
#include "core/reflex_server.h"

namespace reflex::simtest {

/** One violated structural invariant, with the numbers that broke it. */
struct InvariantViolation {
  std::string name;
  std::string detail;
};

/**
 * Checks one server's QoS-scheduler invariants:
 *
 *  - token conservation: tokens_generated == tokens_spent +
 *    tokens_discarded + tokens_retired + sum(active tenant balances) +
 *    global bucket balance, within fixed-point rounding. Skipped when
 *    the scheduler runs in pass-through mode (enforce == false), which
 *    deliberately spends without generating.
 *  - bucket flow: tokens_donated == tokens_claimed + tokens_discarded
 *    + bucket balance (the bucket's only inflow is donation).
 *  - admission: the sum of active LC token reservations does not
 *    exceed the calibrated device rate at the strictest LC SLO.
 */
std::vector<InvariantViolation> CheckServerInvariants(
    core::ReflexServer& server);

/**
 * Checks cluster-wide invariants: every shard's server invariants,
 * plus, for each active cluster tenant, that its per-shard shares sum
 * back to at least the cluster grant with only ceil-rounding slack
 * (share * N in [grant, grant + N)) and that every shard holds an
 * active registration for it.
 */
std::vector<InvariantViolation> CheckClusterInvariants(
    cluster::FlashCluster& cluster);

}  // namespace reflex::simtest

#endif  // REFLEX_SIMTEST_INVARIANTS_H_
