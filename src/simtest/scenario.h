#ifndef REFLEX_SIMTEST_SCENARIO_H_
#define REFLEX_SIMTEST_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_client.h"
#include "core/qos_policy.h"
#include "sim/fault.h"
#include "sim/time.h"

namespace reflex::simtest {

/**
 * One fuzzed tenant: class, SLO (LC only), workload mix and a private
 * LBA range. Ranges are disjoint across tenants so the consistency
 * oracle never has to reason about cross-tenant write conflicts --
 * any write observed outside the writer's range is itself a bug.
 */
struct TenantSpec {
  bool latency_critical = false;

  // SLO, used only when latency_critical.
  uint32_t slo_iops = 0;
  double slo_read_fraction = 1.0;
  sim::TimeNs slo_latency = 0;

  // Workload shape.
  double read_fraction = 0.5;
  uint32_t max_io_sectors = 8;
  int64_t ops = 100;

  // Private LBA window [lba_base, lba_base + lba_span).
  uint64_t lba_base = 0;
  uint64_t lba_span = 0;
};

/** Steady-state fault probability, active for the whole run. */
struct FaultProbSpec {
  sim::FaultKind kind = sim::FaultKind::kNetDrop;
  double probability = 0.0;
};

/** A scheduled fault window [start, start + duration). */
struct FaultWindowSpec {
  sim::FaultKind kind = sim::FaultKind::kNetDrop;
  sim::TimeNs start = 0;
  sim::TimeNs duration = 0;
};

/**
 * A complete stress scenario, derived deterministically from one
 * 64-bit seed: cluster topology (shard count, placement, stripe
 * width), QoS mode, tenant mix and fault schedule. Replaying a failure
 * needs only {seed, op budget} -- everything else regenerates.
 */
struct ScenarioSpec {
  uint64_t seed = 0;

  // Topology.
  int num_shards = 1;
  bool rendezvous = false;  // striped when false
  uint32_t stripe_sectors = 8;

  bool enforce_qos = true;

  /** Enforcement algorithm (meaningful only when enforce_qos). The
   * fuzzer draws it so the invariant probes exercise every policy. */
  core::QosPolicyKind policy = core::QosPolicyKind::kTokenBucket;

  // Replication and read steering. Drawn at the END of the seed
  // expansion so every pre-replication field of a given seed is
  // unchanged. The shard map clamps replication to num_shards.
  int replication = 1;
  cluster::SteeringPolicy steering = cluster::SteeringPolicy::kPrimaryOnly;

  /** Kill one replica mid-run (drawn always, applied by the runner
   * only when the clamped replication and shard count allow a
   * survivor): shard `kill_shard`'s machine link flaps for
   * [kill_start, kill_start + kill_duration). */
  bool kill_replica = false;
  int kill_shard = 0;
  sim::TimeNs kill_start = 0;
  sim::TimeNs kill_duration = 0;

  // Live migration and autoscaling. Drawn after the replication
  // fields (same stream-alignment rule: every draw is unconditional,
  // so seeds predating these fields expand to identical scenarios).
  // The runner applies them only when num_shards >= 2; migrations are
  // raced against the fault plan and the regular workload.
  /** Schedule one MigrateRange at migrate_start. */
  bool migrate = false;
  int migrate_source = 0;
  int migrate_target = 0;
  uint64_t migrate_first_stripe = 0;
  uint64_t migrate_stripe_count = 1;
  sim::TimeNs migrate_start = 0;
  /** Run the SLO-aware autoscaler for the whole scenario. */
  bool autoscale = false;

  std::vector<TenantSpec> tenants;
  std::vector<FaultProbSpec> probabilities;
  std::vector<FaultWindowSpec> windows;

  int64_t TotalOps() const {
    int64_t total = 0;
    for (const TenantSpec& t : tenants) total += t.ops;
    return total;
  }
};

/**
 * Expands `seed` into a scenario. Pure function of the seed: the same
 * seed always yields the same spec, on any host.
 */
ScenarioSpec GenerateScenario(uint64_t seed);

/** Serializes a spec for the repro artifact (human-readable JSON). */
std::string ScenarioToJson(const ScenarioSpec& spec);

}  // namespace reflex::simtest

#endif  // REFLEX_SIMTEST_SCENARIO_H_
