#ifndef REFLEX_SIMTEST_RUNNER_H_
#define REFLEX_SIMTEST_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simtest/invariants.h"
#include "simtest/oracle.h"
#include "simtest/scenario.h"

namespace reflex::simtest {

/**
 * Deliberate bug injections, used to demonstrate that the oracle and
 * the invariant probes actually catch the failure classes they claim
 * to (a harness that never fires is worse than none).
 */
enum class Mutation {
  kNone = 0,
  /**
   * The first cross-shard write is fanned out by hand with its last
   * extent silently skipped, then reported as fully successful -- a
   * torn write the oracle must flag as a stale read of the skipped
   * sectors.
   */
  kSkipOneSubWrite,
  /**
   * Midway through the run, 50 tokens are donated into shard 0's
   * global bucket without being generated -- the conservation ledger
   * must no longer close. Forces enforce_qos on.
   */
  kForgeTokens,
  /**
   * The first replicated write is fanned out by hand with one replica
   * placement silently skipped, reported as fully successful, and the
   * skipped replica is then read directly -- the oracle must flag the
   * probe as a stale read. Forces num_shards >= 2 and replication >= 2
   * so a replica exists to skip.
   */
  kServeStaleReplica,
  /**
   * Migration canary: the coordinator skips every dirty recopy, so a
   * write raced into the copy window (issued by the canary probe at
   * the coordinator's before-cutover point) is silently dropped at
   * cutover. The post-migration probe read must surface it as a stale
   * read. Forces a deterministic migration scenario (striped, R=1,
   * fault-free, shard 0 -> 1) with the regular workload quiesced.
   */
  kDropForwardedWrite,
  /**
   * Migration canary: the coordinator removes the range gates at
   * cutover instead of escalating them to kMoved, so the source keeps
   * accepting stale-mapped writes for the migrated range. The canary's
   * post-cutover stale write then lands on the source, and the
   * refreshed probe read of the target must flag the loss as a stale
   * read. Same forced scenario as kDropForwardedWrite.
   */
  kServePremigrationRange,
};

const char* MutationName(Mutation m);
Mutation MutationFromName(const std::string& name);

/** Outcome of one scenario run. */
struct RunReport {
  /** Every issued op's future resolved before the sim deadline. */
  bool completed = false;
  int64_t ops_executed = 0;
  int64_t reads_checked = 0;
  int64_t writes_tracked = 0;
  /** Live-migration activity (zero for scenarios that drew none). */
  int64_t migrations_started = 0;
  int64_t migrations_committed = 0;
  int64_t migrations_aborted = 0;
  int64_t autoscaler_rebalances = 0;
  /** Cluster-client kWrongShard refresh-and-retry loops taken. */
  int64_t wrong_shard_retries = 0;
  std::vector<DataViolation> data_violations;
  std::vector<InvariantViolation> invariant_violations;

  bool ok() const {
    return completed && data_violations.empty() &&
           invariant_violations.empty();
  }
};

/**
 * Builds the cluster + fault plan + client fleet described by `spec`,
 * drives every tenant's workload (one outstanding op per tenant,
 * oracle-checked), then runs the invariant probes over every shard and
 * the cluster control plane.
 *
 * `max_ops` >= 0 caps the total number of ops issued across all
 * tenants, in deterministic issue order -- the shrinking knob: a
 * violation that reproduces at a smaller cap is the same bug with a
 * shorter trace. -1 means the spec's full budget.
 */
RunReport RunScenario(const ScenarioSpec& spec,
                      Mutation mutation = Mutation::kNone,
                      int64_t max_ops = -1);

}  // namespace reflex::simtest

#endif  // REFLEX_SIMTEST_RUNNER_H_
