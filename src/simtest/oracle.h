#ifndef REFLEX_SIMTEST_ORACLE_H_
#define REFLEX_SIMTEST_ORACLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "client/io_result.h"
#include "core/protocol.h"
#include "sim/time.h"

namespace reflex::simtest {

/**
 * One observed consistency violation: what the client read versus
 * what the shadow state allowed at that point.
 */
struct DataViolation {
  std::string kind;  // "stale_read", "unknown_version", "misdirected"
  sim::TimeNs time = 0;
  uint64_t lba = 0;          // the offending sector
  uint64_t observed = 0;     // version stamp found in the payload
  uint64_t expected = 0;     // newest acceptable committed version
  std::string detail;
};

/**
 * Client-side consistency oracle: a shadow per-sector version map fed
 * from completion callbacks.
 *
 * Every write stamps its payload with a unique version id (and the
 * absolute LBA of each sector, to catch misdirected I/O). On
 * completion the oracle either *commits* the version (status kOk) or
 * parks it in the sector's *zombie* set (error or kUnknownOutcome: the
 * write may still apply at the device at any later time -- e.g. it is
 * sitting in a QoS queue while the client's timeout fired). A read
 * completing with window [issue, done] must return, for each sector,
 * a version that
 *
 *  - was the committed version at some instant of the window (the
 *    last commit at or before `issue`, or any commit inside it), or
 *  - belongs to the sector's zombie set (a lost-response or timed-out
 *    write that may have applied -- including *after* later committed
 *    writes, since a zombie request can sit queued server-side
 *    arbitrarily long), or
 *  - is an in-flight write overlapping the window, or
 *  - is version 0 (never written) when no write had definitely
 *    committed before `issue` -- the device returns zeros for
 *    unwritten sectors.
 *
 * Anything else is flagged: a *stale read* when the observed version
 * is an old committed one (a lost update or a torn cross-shard write
 * that reported success), an *unknown version* when the stamp was
 * never issued by this oracle, a *misdirection* when the embedded LBA
 * does not match the sector read. The rules are deliberately
 * permissive toward genuine races -- retransmitted idempotent reads
 * and unknown-outcome writes can never produce a false positive --
 * while still catching single dropped sub-I/Os of a cross-shard
 * write, because a write that *reported success* commits all its
 * sectors unconditionally.
 */
class ConsistencyOracle {
 public:
  /** Version stamp meaning "sector never written". */
  static constexpr uint64_t kUnwritten = 0;

  /**
   * Fills `data` (sectors * 512 bytes) with the stamp pattern for
   * `version`: each sector repeats a 16-byte {version, absolute lba}
   * record.
   */
  static void StampPayload(uint8_t* data, uint64_t version, uint64_t lba,
                           uint32_t sectors);

  /** Reads the version stamp of sector 0 of `data`. */
  static uint64_t ReadStamp(const uint8_t* data);

  /**
   * Registers a write of [lba, lba+sectors) issued at `now`; returns
   * the version id the caller must stamp into the payload before
   * submitting. Versions encode (tenant, sequence) and are unique.
   */
  uint64_t BeginWrite(int tenant, uint64_t lba, uint32_t sectors,
                      sim::TimeNs now);

  /**
   * Completes a write: kOk commits `version` on all its sectors;
   * anything else (error, timeout, unknown outcome) makes it a zombie
   * that stays acceptable forever.
   */
  void EndWrite(uint64_t version, const client::IoResult& result);

  /**
   * Validates a completed read of [lba, lba+sectors): `data` is the
   * payload as the application sees it, [issue, done] the observed
   * window. Non-kOk reads are ignored (no payload contract).
   */
  void EndRead(uint64_t lba, uint32_t sectors, const uint8_t* data,
               const client::IoResult& result);

  bool ok() const { return violations_.empty(); }
  const std::vector<DataViolation>& violations() const {
    return violations_;
  }

  int64_t reads_checked() const { return reads_checked_; }
  int64_t writes_tracked() const { return writes_tracked_; }

 private:
  struct Commit {
    uint64_t version = 0;
    sim::TimeNs issue = 0;
    sim::TimeNs done = 0;
  };
  struct SectorState {
    std::vector<Commit> commits;    // ascending completion time
    std::vector<uint64_t> zombies;  // may apply at any time, forever
  };
  struct PendingWrite {
    uint64_t lba = 0;
    uint32_t sectors = 0;
    sim::TimeNs issue = 0;
  };

  bool Acceptable(const SectorState* state, uint64_t lba, uint64_t version,
                  sim::TimeNs issue, sim::TimeNs done,
                  uint64_t* newest_committed) const;

  std::map<uint64_t, SectorState> sectors_;
  std::map<uint64_t, PendingWrite> pending_;
  std::map<int, uint64_t> next_seq_;
  std::vector<DataViolation> violations_;
  int64_t reads_checked_ = 0;
  int64_t writes_tracked_ = 0;
};

}  // namespace reflex::simtest

#endif  // REFLEX_SIMTEST_ORACLE_H_
