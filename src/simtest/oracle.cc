#include "simtest/oracle.h"

#include <cstring>
#include <sstream>

namespace reflex::simtest {
namespace {

struct StampRecord {
  uint64_t version;
  uint64_t lba;
};

constexpr uint32_t kRecordsPerSector =
    core::kSectorBytes / sizeof(StampRecord);

}  // namespace

void ConsistencyOracle::StampPayload(uint8_t* data, uint64_t version,
                                     uint64_t lba, uint32_t sectors) {
  for (uint32_t s = 0; s < sectors; ++s) {
    StampRecord record{version, lba + s};
    uint8_t* sector = data + static_cast<size_t>(s) * core::kSectorBytes;
    for (uint32_t r = 0; r < kRecordsPerSector; ++r) {
      std::memcpy(sector + r * sizeof(StampRecord), &record,
                  sizeof(StampRecord));
    }
  }
}

uint64_t ConsistencyOracle::ReadStamp(const uint8_t* data) {
  uint64_t version = 0;
  std::memcpy(&version, data, sizeof(version));
  return version;
}

uint64_t ConsistencyOracle::BeginWrite(int tenant, uint64_t lba,
                                       uint32_t sectors, sim::TimeNs now) {
  const uint64_t seq = ++next_seq_[tenant];
  const uint64_t version =
      (static_cast<uint64_t>(tenant + 1) << 48) | seq;
  pending_[version] = PendingWrite{lba, sectors, now};
  ++writes_tracked_;
  return version;
}

void ConsistencyOracle::EndWrite(uint64_t version,
                                 const client::IoResult& result) {
  auto it = pending_.find(version);
  if (it == pending_.end()) return;
  const PendingWrite w = it->second;
  pending_.erase(it);
  for (uint32_t s = 0; s < w.sectors; ++s) {
    SectorState& state = sectors_[w.lba + s];
    if (result.ok()) {
      // Completions of one sector are serialized (per-tenant QD1 over
      // disjoint ranges), so appending keeps commits time-ordered.
      state.commits.push_back(
          Commit{version, w.issue, result.complete_time});
    } else {
      // Failed or unknown-outcome: the request may still be queued
      // server-side and can apply at ANY later time, even after later
      // successful writes. Acceptable forever.
      state.zombies.push_back(version);
    }
  }
}

bool ConsistencyOracle::Acceptable(const SectorState* state, uint64_t lba,
                                   uint64_t version, sim::TimeNs issue,
                                   sim::TimeNs done,
                                   uint64_t* newest_committed) const {
  *newest_committed = kUnwritten;
  // In-flight write covering this sector, overlapping the window.
  if (version != kUnwritten) {
    auto pending = pending_.find(version);
    if (pending != pending_.end() && pending->second.issue <= done &&
        lba >= pending->second.lba &&
        lba < pending->second.lba + pending->second.sectors) {
      return true;
    }
  }
  if (state == nullptr) return version == kUnwritten;

  // Last commit definitely applied before the read was issued.
  int last_before = -1;
  for (size_t i = 0; i < state->commits.size(); ++i) {
    if (state->commits[i].done <= issue) {
      last_before = static_cast<int>(i);
    }
  }
  if (last_before >= 0) {
    *newest_committed = state->commits.back().version;
  }
  if (last_before < 0 && version == kUnwritten) return true;
  for (size_t i = last_before < 0 ? 0 : static_cast<size_t>(last_before);
       i < state->commits.size(); ++i) {
    // Commits after last_before are acceptable if their write could
    // have applied by the end of the read window.
    if (state->commits[i].version == version &&
        (static_cast<int>(i) == last_before ||
         state->commits[i].issue <= done)) {
      return true;
    }
  }
  for (uint64_t zombie : state->zombies) {
    if (zombie == version) return true;
  }
  return false;
}

void ConsistencyOracle::EndRead(uint64_t lba, uint32_t sectors,
                                const uint8_t* data,
                                const client::IoResult& result) {
  if (!result.ok()) return;  // failed reads carry no payload contract
  ++reads_checked_;
  for (uint32_t s = 0; s < sectors; ++s) {
    const uint64_t sector_lba = lba + s;
    const uint8_t* sector =
        data + static_cast<size_t>(s) * core::kSectorBytes;
    StampRecord record{};
    std::memcpy(&record, sector, sizeof(record));

    if (record.version != kUnwritten && record.lba != sector_lba) {
      DataViolation v;
      v.kind = "misdirected";
      v.time = result.complete_time;
      v.lba = sector_lba;
      v.observed = record.version;
      std::ostringstream detail;
      detail << "sector " << sector_lba << " holds data stamped for lba "
             << record.lba;
      v.detail = detail.str();
      violations_.push_back(v);
      continue;
    }

    auto it = sectors_.find(sector_lba);
    const SectorState* state = it == sectors_.end() ? nullptr : &it->second;
    uint64_t newest = kUnwritten;
    if (Acceptable(state, sector_lba, record.version, result.issue_time,
                   result.complete_time, &newest)) {
      continue;
    }

    DataViolation v;
    v.time = result.complete_time;
    v.lba = sector_lba;
    v.observed = record.version;
    v.expected = newest;
    bool known = false;
    if (state != nullptr) {
      for (const Commit& c : state->commits) {
        known |= c.version == record.version;
      }
    }
    if (record.version == kUnwritten || known) {
      v.kind = "stale_read";
      std::ostringstream detail;
      detail << "read window [" << result.issue_time << ", "
             << result.complete_time << "] ns returned version "
             << record.version << " but " << newest
             << " had committed (lost update or torn write)";
      v.detail = detail.str();
    } else {
      v.kind = "unknown_version";
      v.detail = "payload stamped with a version this oracle never issued";
    }
    violations_.push_back(v);
  }
}

}  // namespace reflex::simtest
