// Seed-sweep driver: expands and runs N seeded stress scenarios; on
// the first failure, shrinks the op budget by bisection and writes a
// deterministic repro artifact (replayable with simtest_repro).
//
//   simtest_sweep [--seeds N] [--start S] [--mutation NAME]
//                 [--max-ops M] [--out PATH] [--policy NAME]
//                 [--replication R] [--migrate]
//
// --policy overrides the QoS policy every seed would otherwise draw
// (token_bucket, qwin, adaptive_be) and forces enforcement on, so a
// sweep can pin coverage of one enforcement algorithm. --replication
// likewise overrides the drawn replication factor (e.g. to force a
// replicated sweep), and --migrate forces every seed to schedule its
// drawn live migration (raced against the drawn fault plan). All
// overrides are applied post-expansion (the RNG stream is untouched)
// and recorded in the repro artifact ("forced_policy" /
// "forced_replication" / "forced_migration") so replays regenerate
// the identical scenario.
//
// Exit status: 0 when every seed passed, 1 on a (shrunken, persisted)
// failure, 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "simtest/repro.h"
#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace {

using namespace reflex;  // NOLINT(build/namespaces)

/** --policy override; applied identically to every expanded seed. */
bool g_force_policy = false;
core::QosPolicyKind g_policy = core::QosPolicyKind::kTokenBucket;

/** --replication override; applied identically to every seed. */
bool g_force_replication = false;
int g_replication = 1;

/** --migrate override: every seed schedules its drawn migration. */
bool g_force_migration = false;

simtest::ScenarioSpec Expand(uint64_t seed) {
  simtest::ScenarioSpec spec = simtest::GenerateScenario(seed);
  if (g_force_policy) {
    // Override after expansion: the RNG stream (and so every other
    // field of the scenario) is untouched, only the policy differs.
    spec.policy = g_policy;
    spec.enforce_qos = true;
  }
  if (g_force_replication) {
    spec.replication = g_replication;
  }
  if (g_force_migration) {
    spec.migrate = true;
  }
  return spec;
}

simtest::RunReport Run(uint64_t seed, simtest::Mutation mutation,
                       int64_t max_ops) {
  return simtest::RunScenario(Expand(seed), mutation, max_ops);
}

/**
 * Bisects for the smallest op budget that still fails. Failure is not
 * guaranteed monotone in the budget (dropping ops can change every
 * later draw), so the result is re-validated and the original budget
 * is kept when shrinking went astray.
 */
int64_t Shrink(uint64_t seed, simtest::Mutation mutation, int64_t failing) {
  int64_t lo = 1;
  int64_t hi = failing;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    if (!Run(seed, mutation, mid).ok()) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return Run(seed, mutation, lo).ok() ? failing : lo;
}

void PrintViolations(const simtest::RunReport& report) {
  if (!report.completed) {
    std::fprintf(stderr, "  stall: not every issued op resolved\n");
  }
  for (const auto& v : report.data_violations) {
    std::fprintf(stderr, "  data: %s lba=%llu %s\n", v.kind.c_str(),
                 static_cast<unsigned long long>(v.lba), v.detail.c_str());
  }
  for (const auto& v : report.invariant_violations) {
    std::fprintf(stderr, "  invariant: %s %s\n", v.name.c_str(),
                 v.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  int64_t seeds = 10;
  uint64_t start = 1;
  int64_t max_ops = -1;
  simtest::Mutation mutation = simtest::Mutation::kNone;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seeds") {
      seeds = std::strtoll(value(), nullptr, 10);
    } else if (arg == "--start") {
      start = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--max-ops") {
      max_ops = std::strtoll(value(), nullptr, 10);
    } else if (arg == "--mutation") {
      mutation = simtest::MutationFromName(value());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--policy") {
      const char* name = value();
      if (!core::QosPolicyKindFromName(name, &g_policy)) {
        std::fprintf(stderr,
                     "unknown policy '%s' (token_bucket, qwin, "
                     "adaptive_be)\n",
                     name);
        return 2;
      }
      g_force_policy = true;
    } else if (arg == "--replication") {
      g_replication = static_cast<int>(std::strtol(value(), nullptr, 10));
      if (g_replication < 1) {
        std::fprintf(stderr, "--replication must be >= 1\n");
        return 2;
      }
      g_force_replication = true;
    } else if (arg == "--migrate") {
      g_force_migration = true;
    } else {
      std::fprintf(stderr,
                   "usage: simtest_sweep [--seeds N] [--start S] "
                   "[--mutation NAME] [--max-ops M] [--out PATH] "
                   "[--policy NAME] [--replication R] [--migrate]\n");
      return 2;
    }
  }

  for (int64_t i = 0; i < seeds; ++i) {
    const uint64_t seed = start + static_cast<uint64_t>(i);
    const simtest::ScenarioSpec spec = Expand(seed);
    const int64_t budget = max_ops >= 0 ? max_ops : spec.TotalOps();
    simtest::RunReport report =
        simtest::RunScenario(spec, mutation, budget);
    if (report.ok()) {
      std::printf("seed %llu: ok (%lld ops, %lld reads checked)\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<long long>(report.ops_executed),
                  static_cast<long long>(report.reads_checked));
      continue;
    }

    std::fprintf(stderr, "seed %llu: FAILED at %lld ops\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<long long>(budget));
    PrintViolations(report);

    const int64_t shrunk = Shrink(seed, mutation, budget);
    if (shrunk < budget) {
      report = simtest::RunScenario(spec, mutation, shrunk);
      std::fprintf(stderr, "  shrunk to %lld ops\n",
                   static_cast<long long>(shrunk));
    }

    const std::string path =
        out_path.empty()
            ? "simtest_repro_" + std::to_string(seed) + ".json"
            : out_path;
    const std::string json =
        simtest::ReproToJson(spec, report, mutation, shrunk, g_force_policy,
                             g_force_replication, g_force_migration);
    if (!simtest::WriteRepro(path, json)) {
      std::fprintf(stderr, "  (could not write %s)\n", path.c_str());
    } else {
      std::fprintf(stderr, "  repro written to %s -- replay with:\n"
                           "    simtest_repro %s\n",
                   path.c_str(), path.c_str());
    }
    return 1;
  }
  std::printf("%lld seeds passed\n", static_cast<long long>(seeds));
  return 0;
}
