#include "simtest/repro.h"

#include <cstdlib>
#include <sstream>

#include "obs/export.h"

namespace reflex::simtest {
namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/**
 * Finds `"key": <value>` at any depth and returns the raw value text
 * up to the next ',', '}' or newline. Empty string when absent.
 */
std::string FindField(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return "";
  size_t start = pos + needle.size();
  while (start < json.size() && json[start] == ' ') ++start;
  size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != '\n') {
    ++end;
  }
  std::string value = json.substr(start, end - start);
  // Strip surrounding quotes for string values.
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

}  // namespace

std::string ReproToJson(const ScenarioSpec& spec, const RunReport& report,
                        Mutation mutation, int64_t max_ops,
                        bool force_policy, bool force_replication,
                        bool force_migration) {
  std::ostringstream out;
  out << "{\n";
  // The replay key comes first: simtest_repro reads only these fields.
  out << "\"seed\": " << spec.seed << ",\n";
  out << "\"max_ops\": " << max_ops << ",\n";
  out << "\"mutation\": \"" << MutationName(mutation) << "\",\n";
  if (force_policy) {
    out << "\"forced_policy\": \"" << core::QosPolicyKindName(spec.policy)
        << "\",\n";
  }
  if (force_replication) {
    out << "\"forced_replication\": " << spec.replication << ",\n";
  }
  if (force_migration) {
    out << "\"forced_migration\": true,\n";
  }
  out << "\"completed\": " << (report.completed ? "true" : "false")
      << ",\n";
  out << "\"ops_executed\": " << report.ops_executed << ",\n";
  out << "\"reads_checked\": " << report.reads_checked << ",\n";
  out << "\"writes_tracked\": " << report.writes_tracked << ",\n";
  out << "\"scenario\": " << ScenarioToJson(spec) << ",\n";

  out << "\"data_violations\": [\n";
  for (size_t i = 0; i < report.data_violations.size(); ++i) {
    const DataViolation& v = report.data_violations[i];
    out << "  {\"kind\": \"" << v.kind << "\", \"time_ns\": " << v.time
        << ", \"lba\": " << v.lba << ", \"observed\": " << v.observed
        << ", \"expected\": " << v.expected << ", \"detail\": \""
        << Escape(v.detail) << "\"}"
        << (i + 1 < report.data_violations.size() ? "," : "") << "\n";
  }
  out << "],\n";
  out << "\"invariant_violations\": [\n";
  for (size_t i = 0; i < report.invariant_violations.size(); ++i) {
    const InvariantViolation& v = report.invariant_violations[i];
    out << "  {\"name\": \"" << v.name << "\", \"detail\": \""
        << Escape(v.detail) << "\"}"
        << (i + 1 < report.invariant_violations.size() ? "," : "") << "\n";
  }
  out << "]\n";
  out << "}\n";
  return out.str();
}

bool ParseRepro(const std::string& json, ReproSpec* out) {
  const std::string seed = FindField(json, "seed");
  if (seed.empty()) return false;
  out->seed = std::strtoull(seed.c_str(), nullptr, 10);
  const std::string max_ops = FindField(json, "max_ops");
  out->max_ops =
      max_ops.empty() ? -1 : std::strtoll(max_ops.c_str(), nullptr, 10);
  out->mutation = MutationFromName(FindField(json, "mutation"));
  const std::string forced = FindField(json, "forced_policy");
  out->force_policy =
      !forced.empty() && core::QosPolicyKindFromName(forced, &out->policy);
  const std::string forced_r = FindField(json, "forced_replication");
  out->force_replication = !forced_r.empty();
  if (out->force_replication) {
    out->replication =
        static_cast<int>(std::strtol(forced_r.c_str(), nullptr, 10));
  }
  out->force_migration = FindField(json, "forced_migration") == "true";
  return true;
}

bool WriteRepro(const std::string& path, const std::string& content) {
  return obs::WriteFile(path, content);
}

}  // namespace reflex::simtest
