#include "simtest/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <utility>

#include "cluster/cluster_control_plane.h"
#include "cluster/shard_map.h"

namespace reflex::simtest {
namespace {

void Add(std::vector<InvariantViolation>& out, const std::string& name,
         const std::ostringstream& detail) {
  out.push_back(InvariantViolation{name, detail.str()});
}

}  // namespace

std::vector<InvariantViolation> CheckServerInvariants(
    core::ReflexServer& server) {
  std::vector<InvariantViolation> out;
  const core::SchedulerShared& shared = server.shared();

  // The conservation ledger holds for every policy *and* for
  // pass-through mode: enforcement off generates a matching grant per
  // submitted request, so the equation closes there too (previously
  // this probe had to be gated on qos.enforce).
  double active_balances = 0.0;
  for (const core::Tenant* t : server.tenants()) {
    if (t->active()) active_balances += t->tokens();
  }
  const double bucket = shared.global_bucket.Tokens();
  const double accounted = shared.tokens_spent_total +
                           shared.tokens_discarded_total +
                           shared.tokens_retired_total + active_balances +
                           bucket;
  // Fixed-point micro-token rounding plus double summation noise.
  const double tol = 1.0 + 1e-9 * std::abs(shared.tokens_generated_total);
  if (std::abs(shared.tokens_generated_total - accounted) > tol) {
    std::ostringstream detail;
    detail << "generated=" << shared.tokens_generated_total
           << " != spent=" << shared.tokens_spent_total
           << " + discarded=" << shared.tokens_discarded_total
           << " + retired=" << shared.tokens_retired_total
           << " + balances=" << active_balances << " + bucket=" << bucket
           << " (delta="
           << shared.tokens_generated_total - accounted << ")";
    Add(out, "token_conservation", detail);
  }

  const double bucket_accounted = shared.tokens_claimed_total +
                                  shared.tokens_discarded_total + bucket;
  if (std::abs(shared.tokens_donated_total - bucket_accounted) > tol) {
    std::ostringstream detail;
    detail << "donated=" << shared.tokens_donated_total
           << " != claimed=" << shared.tokens_claimed_total
           << " + discarded=" << shared.tokens_discarded_total
           << " + bucket=" << bucket;
    Add(out, "bucket_flow", detail);
  }

  // Admission: active LC reservations fit the calibrated rate at the
  // strictest LC SLO (mirrors ControlPlane::RecomputeRates).
  sim::TimeNs strictest = 0;
  double lc_rate_sum = 0.0;
  for (const core::Tenant* t : server.tenants()) {
    if (!t->active() || !t->IsLatencyCritical()) continue;
    if (strictest == 0 || t->slo().latency < strictest) {
      strictest = t->slo().latency;
    }
    lc_rate_sum += server.cost_model().TokenRateForSlo(t->slo());
  }
  if (strictest > 0) {
    const double cap = server.calibration().MaxTokenRateForSlo(strictest);
    if (lc_rate_sum > cap * (1.0 + 1e-9)) {
      std::ostringstream detail;
      detail << "sum of LC reservations " << lc_rate_sum
             << " tokens/s exceeds calibrated capacity " << cap
             << " at strictest SLO " << strictest / 1000 << "us";
      Add(out, "admitted_capacity", detail);
    }
  }
  return out;
}

std::vector<InvariantViolation> CheckClusterInvariants(
    cluster::FlashCluster& cluster) {
  std::vector<InvariantViolation> out;
  for (int i = 0; i < cluster.num_shards(); ++i) {
    for (InvariantViolation& v : CheckServerInvariants(cluster.server(i))) {
      v.name = "shard" + std::to_string(i) + "." + v.name;
      out.push_back(std::move(v));
    }
  }

  const auto& tenants = cluster.control_plane().active_tenants();
  const uint64_t n = static_cast<uint64_t>(cluster.num_shards());
  for (size_t k = 0; k < tenants.size(); ++k) {
    const cluster::ClusterTenant& t = tenants[k];
    if (t.handles.size() != n) {
      std::ostringstream detail;
      detail << "cluster tenant " << k << " holds " << t.handles.size()
             << " shard handles on a " << n << "-shard cluster";
      Add(out, "shard_handles", detail);
      continue;
    }
    if (t.cls == core::TenantClass::kLatencyCritical) {
      const uint64_t granted = t.shard_slo.iops * n;
      if (granted < t.cluster_slo.iops ||
          granted >= t.cluster_slo.iops + n) {
        std::ostringstream detail;
        detail << "cluster tenant " << k << ": shard shares sum to "
               << granted << " IOPS for a cluster grant of "
               << t.cluster_slo.iops << " (ceil slack < " << n
               << " allowed)";
        Add(out, "share_sum", detail);
      }
    }
    for (uint64_t s = 0; s < n; ++s) {
      core::Tenant* shard_tenant =
          cluster.server(static_cast<int>(s)).FindTenant(t.handles[s]);
      if (shard_tenant == nullptr || !shard_tenant->active() ||
          shard_tenant->cls() != t.cls) {
        std::ostringstream detail;
        detail << "cluster tenant " << k << " handle " << t.handles[s]
               << " is missing/inactive/misclassed on shard " << s;
        Add(out, "shard_registration", detail);
      }
    }
  }

  // Replica-layout well-formedness over a sample of stripes: every
  // stripe must have exactly R placements on R distinct shards with
  // the primary agreeing with ShardIndexForStripe, and no two
  // placements may share a (shard, shard LBA) slot -- a collision
  // would silently alias two stripes' data.
  const cluster::ShardMap& map = cluster.shard_map();
  if (map.num_shards() > 0 && map.capacity_sectors() > 0) {
    const int r = map.replication();
    const uint64_t num_stripes =
        map.capacity_sectors() / map.options().stripe_sectors;
    const uint64_t sample = std::min<uint64_t>(num_stripes, 256);
    std::map<std::pair<int, uint64_t>, uint64_t> slot_owner;
    for (uint64_t stripe = 0; stripe < sample; ++stripe) {
      const auto targets = map.ReplicasForStripe(stripe);
      if (static_cast<int>(targets.size()) != r) {
        std::ostringstream detail;
        detail << "stripe " << stripe << " has " << targets.size()
               << " placements, expected replication " << r;
        Add(out, "replica_count", detail);
        continue;
      }
      if (targets[0].shard_index != map.ShardIndexForStripe(stripe)) {
        std::ostringstream detail;
        detail << "stripe " << stripe << " primary placement on shard "
               << targets[0].shard_index << " != ShardIndexForStripe "
               << map.ShardIndexForStripe(stripe);
        Add(out, "replica_primary", detail);
      }
      for (size_t a = 0; a < targets.size(); ++a) {
        for (size_t b = a + 1; b < targets.size(); ++b) {
          if (targets[a].shard_index == targets[b].shard_index) {
            std::ostringstream detail;
            detail << "stripe " << stripe << " places ordinals " << a
                   << " and " << b << " on the same shard "
                   << targets[a].shard_index;
            Add(out, "replica_distinct", detail);
          }
        }
        const auto slot =
            std::make_pair(targets[a].shard_index, targets[a].shard_lba);
        auto [it, inserted] = slot_owner.emplace(slot, stripe);
        if (!inserted && it->second != stripe) {
          std::ostringstream detail;
          detail << "stripes " << it->second << " and " << stripe
                 << " collide on shard " << slot.first << " LBA "
                 << slot.second;
          Add(out, "replica_slot_collision", detail);
        }
      }
    }
  }
  return out;
}

}  // namespace reflex::simtest
