// Deterministic replay of a simtest failure.
//
//   simtest_repro <repro.json>
//   simtest_repro --seed S [--max-ops M] [--mutation NAME]
//                 [--policy NAME] [--replication R] [--migrate]
//
// --policy / --replication / --migrate (or "forced_policy" /
// "forced_replication" / "forced_migration" fields in the artifact)
// re-apply a sweep's overrides to the regenerated scenario.
//
// Regenerates the scenario from the seed, re-runs it under the same
// mutation and op budget, and prints the verdict. Exit status: 0 when
// the run is clean (failure did NOT reproduce), 1 when it reproduced,
// 2 on usage errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "simtest/repro.h"
#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace {

using namespace reflex;  // NOLINT(build/namespaces)

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  simtest::ReproSpec repro;
  bool have_seed = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      repro.seed = std::strtoull(value(), nullptr, 10);
      have_seed = true;
    } else if (arg == "--max-ops") {
      repro.max_ops = std::strtoll(value(), nullptr, 10);
    } else if (arg == "--mutation") {
      repro.mutation = simtest::MutationFromName(value());
    } else if (arg == "--policy") {
      const char* name = value();
      if (!core::QosPolicyKindFromName(name, &repro.policy)) {
        std::fprintf(stderr,
                     "unknown policy '%s' (token_bucket, qwin, "
                     "adaptive_be)\n",
                     name);
        return 2;
      }
      repro.force_policy = true;
    } else if (arg == "--replication") {
      repro.replication =
          static_cast<int>(std::strtol(value(), nullptr, 10));
      if (repro.replication < 1) {
        std::fprintf(stderr, "--replication must be >= 1\n");
        return 2;
      }
      repro.force_replication = true;
    } else if (arg == "--migrate") {
      repro.force_migration = true;
    } else if (!arg.empty() && arg[0] != '-') {
      std::string json;
      if (!ReadFile(arg, &json)) {
        std::fprintf(stderr, "cannot read %s\n", arg.c_str());
        return 2;
      }
      if (!simtest::ParseRepro(json, &repro)) {
        std::fprintf(stderr, "%s is not a simtest repro artifact\n",
                     arg.c_str());
        return 2;
      }
      have_seed = true;
    } else {
      std::fprintf(stderr,
                   "usage: simtest_repro <repro.json> | --seed S "
                   "[--max-ops M] [--mutation NAME] [--policy NAME] "
                   "[--replication R] [--migrate]\n");
      return 2;
    }
  }
  if (!have_seed) {
    std::fprintf(stderr,
                 "usage: simtest_repro <repro.json> | --seed S "
                 "[--max-ops M] [--mutation NAME] [--policy NAME] "
                 "[--replication R] [--migrate]\n");
    return 2;
  }

  simtest::ScenarioSpec spec = simtest::GenerateScenario(repro.seed);
  if (repro.force_policy) {
    // Same override the sweep applied: post-expansion, so the RNG
    // stream -- and with it the rest of the scenario -- is identical.
    spec.policy = repro.policy;
    spec.enforce_qos = true;
  }
  if (repro.force_replication) {
    spec.replication = repro.replication;
  }
  if (repro.force_migration) {
    spec.migrate = true;
  }
  std::printf(
      "replaying seed=%llu max_ops=%lld mutation=%s policy=%s%s "
      "replication=%d%s migrate=%s%s\n",
      static_cast<unsigned long long>(repro.seed),
      static_cast<long long>(repro.max_ops),
      simtest::MutationName(repro.mutation),
      core::QosPolicyKindName(spec.policy),
      repro.force_policy ? " (forced)" : "", spec.replication,
      repro.force_replication ? " (forced)" : "",
      spec.migrate ? "true" : "false",
      repro.force_migration ? " (forced)" : "");
  const simtest::RunReport report =
      simtest::RunScenario(spec, repro.mutation, repro.max_ops);

  std::printf("ops=%lld reads_checked=%lld writes_tracked=%lld\n",
              static_cast<long long>(report.ops_executed),
              static_cast<long long>(report.reads_checked),
              static_cast<long long>(report.writes_tracked));
  if (report.ok()) {
    std::printf("clean: failure did not reproduce\n");
    return 0;
  }
  if (!report.completed) {
    std::printf("violation: run stalled (unresolved ops at deadline)\n");
  }
  for (const auto& v : report.data_violations) {
    std::printf("violation: data %s lba=%llu observed=%llu expected=%llu %s\n",
                v.kind.c_str(), static_cast<unsigned long long>(v.lba),
                static_cast<unsigned long long>(v.observed),
                static_cast<unsigned long long>(v.expected),
                v.detail.c_str());
  }
  for (const auto& v : report.invariant_violations) {
    std::printf("violation: invariant %s %s\n", v.name.c_str(),
                v.detail.c_str());
  }
  return 1;
}
