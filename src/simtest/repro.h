#ifndef REFLEX_SIMTEST_REPRO_H_
#define REFLEX_SIMTEST_REPRO_H_

#include <string>

#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace reflex::simtest {

/**
 * Everything needed to replay a failure deterministically. The
 * scenario regenerates from the seed; max_ops is the shrunken op
 * budget; the mutation (if any) re-plants the same bug.
 */
struct ReproSpec {
  uint64_t seed = 0;
  int64_t max_ops = -1;
  Mutation mutation = Mutation::kNone;

  /**
   * When true, the sweep overrode the scenario's drawn QoS policy
   * (and forced enforcement on); replay must apply the same override
   * or the regenerated scenario diverges from the failing run.
   */
  bool force_policy = false;
  core::QosPolicyKind policy = core::QosPolicyKind::kTokenBucket;

  /**
   * When true, the sweep overrode the scenario's drawn replication
   * factor (post-expansion, like force_policy); replay must apply the
   * same override.
   */
  bool force_replication = false;
  int replication = 1;

  /**
   * When true, the sweep forced `migrate` on for every seed (the
   * drawn schedule parameters are kept); replay must apply the same
   * override.
   */
  bool force_migration = false;
};

/**
 * Serializes a failing run as a self-contained JSON artifact: the
 * replay key (seed, max_ops, mutation, optional forced policy and
 * replication), the expanded topology + fault schedule for human
 * eyes, and the first violating operation. When `force_policy` /
 * `force_replication` is set, `spec` already carries the overridden
 * value and a "forced_policy" / "forced_replication" field records
 * the override for replay.
 */
std::string ReproToJson(const ScenarioSpec& spec, const RunReport& report,
                        Mutation mutation, int64_t max_ops,
                        bool force_policy = false,
                        bool force_replication = false,
                        bool force_migration = false);

/**
 * Extracts the replay key back out of a repro artifact. A minimal
 * field scanner (looks for "seed", "max_ops", "mutation",
 * "forced_policy", "forced_replication", "forced_migration" at the
 * top level), not a
 * general JSON parser -- the artifact is always written by
 * ReproToJson. Returns false if `seed` is missing. (The "forced_*"
 * keys are distinct from the scenario's descriptive "qos_policy" and
 * "replication" keys, which the scanner must not match.)
 */
bool ParseRepro(const std::string& json, ReproSpec* out);

/** Writes `content` to `path`; returns false on I/O error. */
bool WriteRepro(const std::string& path, const std::string& content);

}  // namespace reflex::simtest

#endif  // REFLEX_SIMTEST_REPRO_H_
