#include "simtest/scenario.h"

#include <sstream>

#include "sim/random.h"

namespace reflex::simtest {
namespace {

/** Tenants get disjoint 4K-sector windows; 4 tenants * 24-sector I/Os
 * stay far below the smallest possible cluster volume. */
constexpr uint64_t kTenantSpanSectors = 4096;

}  // namespace

ScenarioSpec GenerateScenario(uint64_t seed) {
  // A named stream: scenario expansion never shares draws with any
  // component inside the simulation itself.
  sim::Rng rng(seed, "simtest.scenario");

  ScenarioSpec spec;
  spec.seed = seed;
  spec.num_shards = 1 + static_cast<int>(rng.NextBounded(4));
  spec.rendezvous = rng.NextBernoulli(0.5);
  spec.stripe_sectors = 4u << rng.NextBounded(3);  // 4, 8 or 16
  spec.enforce_qos = rng.NextBernoulli(0.8);
  // Drawn even when enforce_qos is false so the stream consumption --
  // and with it every later draw -- is the same for both QoS modes.
  spec.policy = static_cast<core::QosPolicyKind>(rng.NextBounded(3));

  const int num_tenants = 1 + static_cast<int>(rng.NextBounded(4));
  int num_lc = 0;
  for (int i = 0; i < num_tenants; ++i) {
    TenantSpec t;
    // At most two LC tenants with modest reservations, so the
    // scenario is (almost) always admissible; the runner downgrades
    // any rejected LC tenant to best-effort deterministically.
    t.latency_critical = num_lc < 2 && rng.NextBernoulli(0.5);
    if (t.latency_critical) {
      ++num_lc;
      t.slo_iops = 5000 + static_cast<uint32_t>(rng.NextBounded(15000));
      t.slo_read_fraction = 0.5 + 0.5 * rng.NextDouble();
      t.slo_latency =
          sim::Micros(500 + 250 * static_cast<int64_t>(rng.NextBounded(7)));
    }
    t.read_fraction = 0.1 + 0.8 * rng.NextDouble();
    t.max_io_sectors = 1 + static_cast<uint32_t>(rng.NextBounded(24));
    t.ops = 60 + static_cast<int64_t>(rng.NextBounded(140));
    t.lba_base = static_cast<uint64_t>(i) * kTenantSpanSectors;
    t.lba_span = kTenantSpanSectors;
    spec.tenants.push_back(t);
  }

  // Fault schedule: each hazard is armed independently, with rates
  // low enough that retries keep the workload progressing.
  if (rng.NextBernoulli(0.4)) {
    spec.probabilities.push_back(
        {sim::FaultKind::kNetDrop, 0.02 + 0.08 * rng.NextDouble()});
  }
  if (rng.NextBernoulli(0.3)) {
    spec.probabilities.push_back(
        {sim::FaultKind::kFlashLatencySpike, 0.02 + 0.08 * rng.NextDouble()});
  }
  auto window_at = [&rng](sim::FaultKind kind) {
    FaultWindowSpec w;
    w.kind = kind;
    w.start = sim::Millis(1 + static_cast<int64_t>(rng.NextBounded(5)));
    w.duration = sim::Millis(1 + static_cast<int64_t>(rng.NextBounded(3)));
    return w;
  };
  if (rng.NextBernoulli(0.3)) {
    spec.windows.push_back(window_at(sim::FaultKind::kServerDeviceError));
  }
  if (rng.NextBernoulli(0.3)) {
    spec.windows.push_back(window_at(sim::FaultKind::kFlashBrownout));
  }
  if (rng.NextBernoulli(0.25)) {
    spec.windows.push_back(window_at(sim::FaultKind::kNetReset));
  }
  if (rng.NextBernoulli(0.2)) {
    spec.windows.push_back(window_at(sim::FaultKind::kFlashReadError));
  }
  if (rng.NextBernoulli(0.2)) {
    spec.windows.push_back(window_at(sim::FaultKind::kFlashWriteError));
  }

  // Replication draws come last so the expansion above is unchanged
  // for every seed that predates them. Every draw is unconditional:
  // kill parameters are consumed even when kill_replica is false (or
  // the topology ends up unreplicated) to keep the stream aligned.
  spec.replication = 1 + static_cast<int>(rng.NextBounded(3));
  spec.steering =
      static_cast<cluster::SteeringPolicy>(rng.NextBounded(3));
  spec.kill_replica = rng.NextBernoulli(0.25);
  spec.kill_shard =
      static_cast<int>(rng.NextBounded(4)) % spec.num_shards;
  spec.kill_start =
      sim::Millis(1 + static_cast<int64_t>(rng.NextBounded(5)));
  spec.kill_duration =
      sim::Millis(1 + static_cast<int64_t>(rng.NextBounded(3)));

  // Migration draws come after the replication draws, unconditional
  // for the same stream-alignment reason. The runner clamps shard
  // indices and stripe ranges to the realized topology.
  spec.migrate = rng.NextBernoulli(0.35);
  spec.migrate_source = static_cast<int>(rng.NextBounded(4));
  spec.migrate_target = static_cast<int>(rng.NextBounded(4));
  spec.migrate_first_stripe = rng.NextBounded(64);
  spec.migrate_stripe_count = 1 + rng.NextBounded(16);
  spec.migrate_start =
      sim::Millis(1 + static_cast<int64_t>(rng.NextBounded(6)));
  spec.autoscale = rng.NextBernoulli(0.25);
  return spec;
}

std::string ScenarioToJson(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"seed\": " << spec.seed << ",\n";
  out << "  \"num_shards\": " << spec.num_shards << ",\n";
  out << "  \"placement\": \""
      << (spec.rendezvous ? "rendezvous" : "striped") << "\",\n";
  out << "  \"stripe_sectors\": " << spec.stripe_sectors << ",\n";
  out << "  \"enforce_qos\": " << (spec.enforce_qos ? "true" : "false")
      << ",\n";
  out << "  \"qos_policy\": \"" << core::QosPolicyKindName(spec.policy)
      << "\",\n";
  out << "  \"replication\": " << spec.replication << ",\n";
  out << "  \"steering\": \""
      << cluster::SteeringPolicyName(spec.steering) << "\",\n";
  out << "  \"kill_replica\": " << (spec.kill_replica ? "true" : "false")
      << ",\n";
  out << "  \"kill_shard\": " << spec.kill_shard << ",\n";
  out << "  \"kill_start_us\": " << spec.kill_start / 1000 << ",\n";
  out << "  \"kill_duration_us\": " << spec.kill_duration / 1000 << ",\n";
  out << "  \"migrate\": " << (spec.migrate ? "true" : "false") << ",\n";
  out << "  \"migrate_source\": " << spec.migrate_source << ",\n";
  out << "  \"migrate_target\": " << spec.migrate_target << ",\n";
  out << "  \"migrate_first_stripe\": " << spec.migrate_first_stripe
      << ",\n";
  out << "  \"migrate_stripe_count\": " << spec.migrate_stripe_count
      << ",\n";
  out << "  \"migrate_start_us\": " << spec.migrate_start / 1000 << ",\n";
  out << "  \"autoscale\": " << (spec.autoscale ? "true" : "false")
      << ",\n";
  out << "  \"tenants\": [\n";
  for (size_t i = 0; i < spec.tenants.size(); ++i) {
    const TenantSpec& t = spec.tenants[i];
    out << "    {\"class\": \"" << (t.latency_critical ? "LC" : "BE")
        << "\"";
    if (t.latency_critical) {
      out << ", \"slo_iops\": " << t.slo_iops
          << ", \"slo_read_fraction\": " << t.slo_read_fraction
          << ", \"slo_latency_us\": " << t.slo_latency / 1000;
    }
    out << ", \"read_fraction\": " << t.read_fraction
        << ", \"max_io_sectors\": " << t.max_io_sectors
        << ", \"ops\": " << t.ops << ", \"lba_base\": " << t.lba_base
        << ", \"lba_span\": " << t.lba_span << "}"
        << (i + 1 < spec.tenants.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"fault_probabilities\": [\n";
  for (size_t i = 0; i < spec.probabilities.size(); ++i) {
    const FaultProbSpec& p = spec.probabilities[i];
    out << "    {\"kind\": \"" << sim::FaultKindName(p.kind)
        << "\", \"probability\": " << p.probability << "}"
        << (i + 1 < spec.probabilities.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"fault_windows\": [\n";
  for (size_t i = 0; i < spec.windows.size(); ++i) {
    const FaultWindowSpec& w = spec.windows[i];
    out << "    {\"kind\": \"" << sim::FaultKindName(w.kind)
        << "\", \"start_us\": " << w.start / 1000
        << ", \"duration_us\": " << w.duration / 1000 << "}"
        << (i + 1 < spec.windows.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}";
  return out.str();
}

}  // namespace reflex::simtest
