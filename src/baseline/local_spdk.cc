#include "baseline/local_spdk.h"

#include <algorithm>
#include <utility>

#include "sim/logging.h"

namespace reflex::baseline {

LocalSpdkService::LocalSpdkService(sim::Simulator& sim,
                                   flash::FlashDevice& device,
                                   Options options)
    : sim_(sim), device_(device), options_(options) {
  REFLEX_CHECK(options_.num_threads >= 1);
  for (int i = 0; i < options_.num_threads; ++i) {
    flash::QueuePair* qp = device_.AllocQueuePair();
    REFLEX_CHECK(qp != nullptr);
    qps_.push_back(qp);
    core_free_.push_back(0);
  }
}

LocalSpdkService::~LocalSpdkService() {
  for (flash::QueuePair* qp : qps_) {
    if (qp->Outstanding() == 0) device_.FreeQueuePair(qp);
  }
}

sim::Future<client::IoResult> LocalSpdkService::SubmitIo(
    const client::IoDesc& io) {
  sim::Promise<client::IoResult> promise(sim_);
  auto future = promise.GetFuture();
  const int thread = next_thread_;
  next_thread_ = (next_thread_ + 1) % options_.num_threads;
  DoIo(thread, io.is_read(), io.lba, io.sectors, io.data,
       std::move(promise));
  return future;
}

sim::Task LocalSpdkService::DoIo(int thread, bool is_read, uint64_t lba,
                                 uint32_t sectors, uint8_t* data,
                                 sim::Promise<client::IoResult> promise) {
  const sim::TimeNs issue_time = sim_.Now();

  // Submission half of the polling loop, serialized on this thread's
  // core (half the per-request CPU on each side of the device I/O).
  const sim::TimeNs submit_cpu = options_.cpu_per_req / 2;
  const sim::TimeNs submit_start = std::max(sim_.Now(), core_free_[thread]);
  core_free_[thread] = submit_start + submit_cpu;
  co_await sim::Delay(sim_, core_free_[thread] - sim_.Now());

  flash::FlashCommand cmd;
  cmd.op = is_read ? flash::FlashOp::kRead : flash::FlashOp::kWrite;
  cmd.lba = lba;
  cmd.sectors = sectors;
  cmd.data = data;
  sim::Promise<client::IoResult> device_done(sim_);
  auto device_future = device_done.GetFuture();
  const bool ok = device_.Submit(
      qps_[thread], cmd,
      [this, device_done](const flash::FlashCompletion& c) mutable {
        client::IoResult r;
        r.status = c.status == flash::FlashStatus::kOk
                       ? core::ReqStatus::kOk
                       : core::ReqStatus::kDeviceError;
        r.complete_time = sim_.Now();
        device_done.Set(r);
      });
  if (!ok) {
    client::IoResult r;
    r.status = core::ReqStatus::kOutOfResources;
    r.issue_time = issue_time;
    r.complete_time = sim_.Now();
    promise.Set(r);
    co_return;
  }
  client::IoResult result = co_await device_future;

  // Completion half of the polling loop.
  const sim::TimeNs complete_cpu = options_.cpu_per_req - submit_cpu;
  const sim::TimeNs complete_start =
      std::max(sim_.Now(), core_free_[thread]);
  core_free_[thread] = complete_start + complete_cpu;
  co_await sim::Delay(sim_, core_free_[thread] - sim_.Now());

  result.issue_time = issue_time;
  result.complete_time = sim_.Now();
  promise.Set(result);
}

}  // namespace reflex::baseline
