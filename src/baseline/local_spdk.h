#ifndef REFLEX_BASELINE_LOCAL_SPDK_H_
#define REFLEX_BASELINE_LOCAL_SPDK_H_

#include <cstdint>
#include <vector>

#include "client/flash_service.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::baseline {

/**
 * Local Flash access through SPDK-style user-space NVMe queues: no
 * kernel, no network -- the best case the paper compares against
 * (Table 2 "Local", Figure 4 "Local-nT"). Each thread polls its own
 * queue pair; the per-request CPU cost reproduces the paper's
 * observation that one core sustains ~870K IOPS and two cores saturate
 * a 1M IOPS device.
 */
class LocalSpdkService : public client::FlashService {
 public:
  struct Options {
    int num_threads = 1;

    /** Polling-mode driver CPU per request (submit + completion). */
    sim::TimeNs cpu_per_req = sim::TimeNs(1150);

    uint64_t seed = 33;
  };

  LocalSpdkService(sim::Simulator& sim, flash::FlashDevice& device,
                   Options options);
  ~LocalSpdkService() override;

  sim::Future<client::IoResult> SubmitIo(const client::IoDesc& io) override;

  const char* name() const override { return "Local (SPDK)"; }

 private:
  sim::Task DoIo(int thread, bool is_read, uint64_t lba, uint32_t sectors,
                 uint8_t* data, sim::Promise<client::IoResult> promise);

  sim::Simulator& sim_;
  flash::FlashDevice& device_;
  Options options_;
  std::vector<flash::QueuePair*> qps_;
  std::vector<sim::TimeNs> core_free_;
  int next_thread_ = 0;
};

}  // namespace reflex::baseline

#endif  // REFLEX_BASELINE_LOCAL_SPDK_H_
