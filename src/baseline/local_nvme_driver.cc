#include "baseline/local_nvme_driver.h"

#include <algorithm>
#include <utility>

#include "core/protocol.h"
#include "sim/logging.h"

namespace reflex::baseline {

LocalNvmeDriver::LocalNvmeDriver(sim::Simulator& sim,
                                 flash::FlashDevice& device,
                                 Options options)
    : sim_(sim),
      device_(device),
      options_(options),
      rng_(options.seed, "local_nvme_driver"),
      contexts_(options.num_contexts) {
  REFLEX_CHECK(options_.num_contexts >= 1);
  for (auto& ctx : contexts_) {
    ctx.qp = device_.AllocQueuePair();
    REFLEX_CHECK(ctx.qp != nullptr);
  }
}

LocalNvmeDriver::~LocalNvmeDriver() {
  for (auto& ctx : contexts_) {
    if (ctx.qp->Outstanding() == 0) device_.FreeQueuePair(ctx.qp);
  }
}

sim::Future<client::IoResult> LocalNvmeDriver::SubmitIo(
    const client::IoDesc& io) {
  sim::Promise<client::IoResult> promise(sim_);
  auto future = promise.GetFuture();
  const int ctx = next_ctx_;
  next_ctx_ = (next_ctx_ + 1) % options_.num_contexts;
  DoIo(ctx, io.is_read(), io.lba, io.sectors, io.data, std::move(promise));
  return future;
}

sim::Task LocalNvmeDriver::DoIo(int ctx_index, bool is_read, uint64_t lba,
                                uint32_t sectors, uint8_t* data,
                                sim::Promise<client::IoResult> promise) {
  const sim::TimeNs issue_time = sim_.Now();
  Context& ctx = contexts_[ctx_index];

  const sim::TimeNs submit_start = std::max(sim_.Now(), ctx.submit_free);
  ctx.submit_free = submit_start + options_.submit_cost;
  co_await sim::Delay(sim_, ctx.submit_free - sim_.Now());

  flash::FlashCommand cmd;
  cmd.op = is_read ? flash::FlashOp::kRead : flash::FlashOp::kWrite;
  cmd.lba = lba;
  cmd.sectors = sectors;
  cmd.data = data;
  sim::Promise<core::ReqStatus> device_done(sim_);
  auto device_future = device_done.GetFuture();
  const bool ok = device_.Submit(
      ctx.qp, cmd, [device_done](const flash::FlashCompletion& c) mutable {
        device_done.Set(c.status == flash::FlashStatus::kOk
                            ? core::ReqStatus::kOk
                            : core::ReqStatus::kDeviceError);
      });
  core::ReqStatus status = core::ReqStatus::kOutOfResources;
  if (ok) status = co_await device_future;

  // Interrupt delivery + serialized completion processing.
  const auto irq = static_cast<sim::TimeNs>(
      rng_.NextDouble() * static_cast<double>(options_.irq_coalesce_max));
  const sim::TimeNs rx_start =
      std::max(sim_.Now() + irq, ctx.complete_free);
  ctx.complete_free = rx_start + options_.complete_cost;
  co_await sim::Delay(sim_, ctx.complete_free - sim_.Now());

  client::IoResult result;
  result.status = status;
  result.issue_time = issue_time;
  result.complete_time = sim_.Now();
  promise.Set(result);
}

}  // namespace reflex::baseline
