#ifndef REFLEX_BASELINE_LOCAL_NVME_DRIVER_H_
#define REFLEX_BASELINE_LOCAL_NVME_DRIVER_H_

#include <cstdint>
#include <vector>

#include "client/flash_service.h"
#include "flash/flash_device.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::baseline {

/**
 * The local kernel NVMe block driver: what legacy applications use
 * when Flash is local (Figure 7 "Local"). Models the Linux block layer
 * (blk-mq contexts, one per core), interrupt-driven completions and
 * per-request kernel CPU costs. Slower per-core than SPDK polling but
 * scales with contexts until the device saturates.
 */
class LocalNvmeDriver : public client::FlashService {
 public:
  struct Options {
    /** blk-mq hardware contexts (application threads). */
    int num_contexts = 5;

    /** Submission-path kernel cost (syscall + bio + blk-mq + doorbell). */
    sim::TimeNs submit_cost = sim::Micros(4.5);

    /** Completion-path kernel cost (irq handler + blk-mq + wake). */
    sim::TimeNs complete_cost = sim::Micros(5.0);

    /** Interrupt coalescing window (matches the testbed's 20us). */
    sim::TimeNs irq_coalesce_max = sim::Micros(20);

    uint64_t seed = 77;
  };

  LocalNvmeDriver(sim::Simulator& sim, flash::FlashDevice& device,
                  Options options);
  ~LocalNvmeDriver() override;

  sim::Future<client::IoResult> SubmitIo(const client::IoDesc& io) override;

  const char* name() const override { return "Local (kernel NVMe)"; }

 private:
  struct Context {
    flash::QueuePair* qp = nullptr;
    sim::TimeNs submit_free = 0;
    sim::TimeNs complete_free = 0;
  };

  sim::Task DoIo(int ctx_index, bool is_read, uint64_t lba,
                 uint32_t sectors, uint8_t* data,
                 sim::Promise<client::IoResult> promise);

  sim::Simulator& sim_;
  flash::FlashDevice& device_;
  Options options_;
  sim::Rng rng_;
  std::vector<Context> contexts_;
  int next_ctx_ = 0;
};

}  // namespace reflex::baseline

#endif  // REFLEX_BASELINE_LOCAL_NVME_DRIVER_H_
