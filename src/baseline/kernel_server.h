#ifndef REFLEX_BASELINE_KERNEL_SERVER_H_
#define REFLEX_BASELINE_KERNEL_SERVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "client/flash_service.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "net/stack_costs.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::baseline {

/**
 * Cost parameters of a Linux-based remote storage system: a server
 * process using the kernel network stack, and a client-side access
 * path. Two presets reproduce the paper's software baselines:
 *
 *  - Libaio(): the "lightweight remote storage server that maximizes
 *    performance on Linux" -- libevent for connection handling and
 *    libaio for asynchronous Flash access (~75K IOPS/core);
 *  - Iscsi(): Linux open-iscsi + LIO -- heavyweight PDU processing and
 *    extra data copies on both sides (~70K IOPS/core, 2.8x unloaded
 *    read latency).
 */
struct BaselineCosts {
  /** Server kernel network stack (incl. interrupt coalescing). */
  net::StackCosts server_stack = net::StackCosts::LinuxEpoll();

  /** Event-loop dispatch per request (libevent). */
  sim::TimeNs server_dispatch = sim::TimeNs(900);

  /** Asynchronous submit / completion-reap per request (libaio). */
  sim::TimeNs server_submit = sim::TimeNs(1400);
  sim::TimeNs server_reap = sim::TimeNs(1200);

  /** Storage-protocol processing per request (iSCSI PDU handling). */
  sim::TimeNs server_protocol_rx = 0;
  sim::TimeNs server_protocol_tx = 0;

  /** Extra data copies beyond the socket copy (iSCSI SCSI buffers). */
  double server_extra_copy_ns_per_byte = 0.0;

  /** Client network stack. */
  net::StackCosts client_stack = net::StackCosts::IxDataplane();

  /** Extra client-side per-request costs (SCSI midlayer, block). */
  sim::TimeNs client_submit_extra = 0;
  sim::TimeNs client_complete_extra = 0;
  double client_extra_copy_ns_per_byte = 0.0;

  int server_threads = 1;

  /** The libaio+libevent baseline with a configurable client stack. */
  static BaselineCosts Libaio(net::StackCosts client_stack,
                              int server_threads = 1);

  /** Linux iSCSI (kernel initiator + LIO-style target). */
  static BaselineCosts Iscsi(int server_threads = 1);
};

/**
 * A remote Flash service over the Linux kernel stack: requests travel
 * client -> TCP -> server event loop -> Flash -> back. Server threads
 * are FIFO CPU resources, so per-core IOPS ceilings and queueing
 * latency under load emerge naturally (Figure 4 "Libaio-nT").
 */
class KernelStorageServer : public client::FlashService {
 public:
  KernelStorageServer(sim::Simulator& sim, net::Network& net,
                      net::Machine* client_machine,
                      net::Machine* server_machine,
                      flash::FlashDevice& device, BaselineCosts costs,
                      int num_connections, const char* name,
                      uint64_t seed = 55);
  ~KernelStorageServer() override;

  sim::Future<client::IoResult> SubmitIo(const client::IoDesc& io) override;

  const char* name() const override { return name_; }

 private:
  sim::Task DoIo(int conn_index, bool is_read, uint64_t lba,
                 uint32_t sectors, uint8_t* data,
                 sim::Promise<client::IoResult> promise);

  sim::Simulator& sim_;
  flash::FlashDevice& device_;
  BaselineCosts costs_;
  const char* name_;
  sim::Rng rng_;
  flash::QueuePair* qp_;
  std::vector<std::unique_ptr<net::TcpConnection>> conns_;
  std::vector<sim::TimeNs> server_core_free_;
  int next_conn_ = 0;
};

}  // namespace reflex::baseline

#endif  // REFLEX_BASELINE_KERNEL_SERVER_H_
