#include "baseline/kernel_server.h"

#include <algorithm>
#include <utility>

#include "core/protocol.h"
#include "sim/logging.h"

namespace reflex::baseline {

BaselineCosts BaselineCosts::Libaio(net::StackCosts client_stack,
                                    int server_threads) {
  BaselineCosts c;
  c.server_stack = net::StackCosts::LinuxEpoll();
  c.server_dispatch = sim::Micros(2.0);
  c.server_submit = sim::Micros(2.2);
  c.server_reap = sim::Micros(2.0);
  c.client_stack = client_stack;
  c.server_threads = server_threads;
  return c;
}

BaselineCosts BaselineCosts::Iscsi(int server_threads) {
  BaselineCosts c;
  c.server_stack = net::StackCosts::LinuxEpoll();
  c.server_dispatch = sim::Micros(0.9);
  c.server_submit = sim::Micros(1.4);
  c.server_reap = sim::Micros(1.2);
  c.server_protocol_rx = sim::Micros(1.5);
  c.server_protocol_tx = sim::Micros(1.5);
  c.server_extra_copy_ns_per_byte = 0.1;
  // Kernel initiator: SCSI midlayer + block layer + blocking caller.
  c.client_stack = net::StackCosts::LinuxBlocking();
  c.client_submit_extra = sim::Micros(20);
  c.client_complete_extra = sim::Micros(35);
  c.client_extra_copy_ns_per_byte = 0.1;
  c.server_threads = server_threads;
  return c;
}

KernelStorageServer::KernelStorageServer(
    sim::Simulator& sim, net::Network& net, net::Machine* client_machine,
    net::Machine* server_machine, flash::FlashDevice& device,
    BaselineCosts costs, int num_connections, const char* name,
    uint64_t seed)
    : sim_(sim),
      device_(device),
      costs_(costs),
      name_(name),
      rng_(seed, "kernel_server"),
      qp_(device.AllocQueuePair()),
      server_core_free_(costs.server_threads, 0) {
  REFLEX_CHECK(qp_ != nullptr);
  REFLEX_CHECK(num_connections >= 1);
  REFLEX_CHECK(costs_.server_threads >= 1);
  for (int i = 0; i < num_connections; ++i) {
    conns_.emplace_back(std::make_unique<net::TcpConnection>(
        net, client_machine, server_machine));
  }
}

KernelStorageServer::~KernelStorageServer() {
  if (qp_->Outstanding() == 0) device_.FreeQueuePair(qp_);
}

sim::Future<client::IoResult> KernelStorageServer::SubmitIo(
    const client::IoDesc& io) {
  sim::Promise<client::IoResult> promise(sim_);
  auto future = promise.GetFuture();
  const int conn = next_conn_;
  next_conn_ = (next_conn_ + 1) % static_cast<int>(conns_.size());
  DoIo(conn, io.is_read(), io.lba, io.sectors, io.data,
       std::move(promise));
  return future;
}

sim::Task KernelStorageServer::DoIo(int conn_index, bool is_read,
                                    uint64_t lba, uint32_t sectors,
                                    uint8_t* data,
                                    sim::Promise<client::IoResult> promise) {
  const sim::TimeNs issue_time = sim_.Now();
  const uint32_t bytes = sectors * core::kSectorBytes;
  const uint32_t payload_in = is_read ? 0 : bytes;   // client -> server
  const uint32_t payload_out = is_read ? bytes : 0;  // server -> client
  net::TcpConnection& conn = *conns_[conn_index];

  // --- Client submit path ---
  co_await sim::Delay(
      sim_, costs_.client_stack.TxCost(core::kRequestHeaderBytes +
                                       payload_in) +
                costs_.client_submit_extra +
                static_cast<sim::TimeNs>(
                    costs_.client_extra_copy_ns_per_byte * payload_in));

  // --- Request over the wire ---
  sim::VoidPromise at_server(sim_);
  conn.SendToServer(core::kRequestHeaderBytes + payload_in,
                    [at_server]() mutable { at_server.Set(sim::Unit{}); });
  co_await at_server.GetFuture();

  // --- Server receive/submit path (interrupts + core FIFO) ---
  const int core = conn_index % costs_.server_threads;
  const sim::TimeNs after_irq =
      sim_.Now() + costs_.server_stack.SampleDeliveryDelay(rng_);
  const sim::TimeNs rx_cpu =
      costs_.server_stack.RxCost(payload_in) + costs_.server_dispatch +
      costs_.server_protocol_rx + costs_.server_submit +
      static_cast<sim::TimeNs>(costs_.server_extra_copy_ns_per_byte *
                               payload_in);
  const sim::TimeNs rx_start =
      std::max(after_irq, server_core_free_[core]);
  server_core_free_[core] = rx_start + rx_cpu;
  co_await sim::Delay(sim_, server_core_free_[core] - sim_.Now());

  // --- Flash access ---
  flash::FlashCommand cmd;
  cmd.op = is_read ? flash::FlashOp::kRead : flash::FlashOp::kWrite;
  cmd.lba = lba;
  cmd.sectors = sectors;
  cmd.data = data;
  sim::Promise<core::ReqStatus> device_done(sim_);
  auto device_future = device_done.GetFuture();
  const bool ok = device_.Submit(
      qp_, cmd, [device_done](const flash::FlashCompletion& c) mutable {
        device_done.Set(c.status == flash::FlashStatus::kOk
                            ? core::ReqStatus::kOk
                            : core::ReqStatus::kDeviceError);
      });
  core::ReqStatus status = core::ReqStatus::kOutOfResources;
  if (ok) status = co_await device_future;

  // --- Server completion/transmit path ---
  const sim::TimeNs tx_cpu =
      costs_.server_reap + costs_.server_protocol_tx +
      costs_.server_stack.TxCost(payload_out) +
      static_cast<sim::TimeNs>(costs_.server_extra_copy_ns_per_byte *
                               payload_out);
  const sim::TimeNs tx_start = std::max(sim_.Now(), server_core_free_[core]);
  server_core_free_[core] = tx_start + tx_cpu;
  co_await sim::Delay(sim_, server_core_free_[core] - sim_.Now());

  // --- Response over the wire ---
  sim::VoidPromise at_client(sim_);
  conn.SendToClient(core::kResponseHeaderBytes + payload_out,
                    [at_client]() mutable { at_client.Set(sim::Unit{}); });
  co_await at_client.GetFuture();

  // --- Client completion path ---
  co_await sim::Delay(
      sim_, costs_.client_stack.SampleDeliveryDelay(rng_) +
                costs_.client_stack.RxCost(payload_out) +
                costs_.client_complete_extra +
                static_cast<sim::TimeNs>(
                    costs_.client_extra_copy_ns_per_byte * payload_out));

  client::IoResult result;
  result.status = status;
  result.issue_time = issue_time;
  result.complete_time = sim_.Now();
  promise.Set(result);
}

}  // namespace reflex::baseline
