// Multi-tenant QoS demo: a latency-critical database tenant shares a
// ReFlex server with a greedy best-effort analytics tenant. Shows (1)
// admission control, (2) SLO enforcement under interference, (3)
// work-conserving use of spare bandwidth, and (4) strict access
// control between tenants.
//
//   ./build/examples/multi_tenant_qos

#include <cstdio>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "core/reflex_server.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace reflex;

namespace {

// Calibration of device A (measured values; see bench/fig3_cost_models
// to regenerate from scratch).
flash::CalibrationResult DeviceACalibration() {
  flash::CalibrationResult c;
  c.write_cost = 10.0;
  c.read_cost_readonly = 0.5;
  c.token_capacity_per_sec = 547000.0;
  c.latency_curve = {
      {54696.4, 28945.0, sim::Micros(145), sim::Micros(113)},
      {218785.5, 115525.0, sim::Micros(199), sim::Micros(137)},
      {328178.2, 172470.0, sim::Micros(260), sim::Micros(166)},
      {410222.8, 215507.5, sim::Micros(397), sim::Micros(210)},
      {437571.0, 229790.0, sim::Micros(614), sim::Micros(248)},
      {492267.4, 258982.5, sim::Micros(1622), sim::Micros(404)},
      {525085.2, 276207.5, sim::Micros(2785), sim::Micros(755)},
  };
  return c;
}

}  // namespace

int main() {
  sim::Simulator sim;
  net::Network network(sim);
  net::Machine* server_machine = network.AddMachine("flash-server");
  net::Machine* db_machine = network.AddMachine("db-host");
  net::Machine* analytics_machine = network.AddMachine("analytics-host");

  flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(), 42);
  core::ServerOptions options;
  // Deeper burst allowance for 10-token writes (see bench/fig5_qos).
  options.qos.neg_limit = -150.0;
  core::ReflexServer server(sim, network, server_machine, device,
                            DeviceACalibration(), options);

  // --- Admission control in action ---
  core::SloSpec greedy;
  greedy.iops = 900000;  // far beyond what the device can guarantee
  greedy.read_fraction = 0.5;
  greedy.latency = sim::Micros(500);
  core::ReqStatus status;
  if (server.RegisterTenant(greedy, core::TenantClass::kLatencyCritical,
                            &status) == nullptr) {
    std::printf("admission control rejected 900K IOPS @ 50%% read "
                "(status %d) -- the 500us cap is ~423K tokens/s\n",
                static_cast<int>(status));
  }

  // The database tenant: 80K IOPS, 90% read, p95 <= 1ms.
  core::SloSpec db_slo;
  db_slo.iops = 80000;
  db_slo.read_fraction = 0.9;
  db_slo.latency = sim::Millis(1);
  core::Tenant* db = server.RegisterTenant(
      db_slo, core::TenantClass::kLatencyCritical, &status);
  std::printf("database tenant admitted: reserves %.0fK tokens/s of the "
              "%.0fK cap\n",
              db->token_rate() / 1e3,
              server.control_plane().scheduler_token_rate() / 1e3);

  // The analytics tenant: best effort, write-heavy.
  core::Tenant* analytics =
      server.RegisterTenant(core::SloSpec{}, core::TenantClass::kBestEffort);
  std::printf("analytics tenant admitted as best-effort (fair share of "
              "leftover bandwidth)\n\n");

  // --- Namespaces and ACLs: the tenants cannot touch each other ---
  server.acl().SetStrict(true);
  server.acl().AddNamespace(1, 0, 1ULL << 30);           // db: first 512GB
  server.acl().AddNamespace(2, 1ULL << 30, 400ULL << 20);
  server.acl().GrantTenant(db->handle(), 1, true, true);
  server.acl().GrantTenant(analytics->handle(), 2, true, true);
  server.acl().AllowClient("db-host", db->handle());
  server.acl().AllowClient("analytics-host", analytics->handle());

  // --- Load: the database runs 72K paced IOPS; analytics hammers ---
  client::ReflexClient::Options db_copts;
  db_copts.num_connections = 8;
  client::ReflexClient db_client(sim, server, db_machine, db_copts);
  auto db_session = db_client.AttachSession(db->handle());
  client::LoadGenSpec db_spec;
  db_spec.offered_iops = 72000;
  db_spec.poisson_arrivals = false;
  db_spec.read_fraction = 0.9;
  db_spec.lba_span_sectors = 1ULL << 30;
  client::LoadGenerator db_load(sim, *db_session, db_spec);

  client::ReflexClient::Options an_copts;
  an_copts.num_connections = 8;
  an_copts.seed = 2;
  client::ReflexClient an_client(sim, server, analytics_machine, an_copts);
  auto an_session = an_client.AttachSession(analytics->handle());
  client::LoadGenSpec an_spec;
  an_spec.queue_depth = 32;       // as fast as it can go
  an_spec.read_fraction = 0.8;    // scan-heavy analytics mix
  an_spec.lba_offset = 1ULL << 30;
  an_spec.lba_span_sectors = 400ULL << 20;
  an_spec.seed = 3;
  client::LoadGenerator an_load(sim, *an_session, an_spec);

  db_load.Run(sim::Millis(100), sim::Millis(400));
  an_load.Run(sim::Millis(100), sim::Millis(400));
  auto db_done = db_load.Done();
  auto an_done = an_load.Done();
  while (!db_done.Ready() || !an_done.Ready()) {
    sim.RunUntil(sim.Now() + sim::Millis(5));
  }

  std::printf("under greedy best-effort interference:\n");
  std::printf("  database : %7.0f IOPS, p95 read %6.1f us  (SLO: 1000 us)\n",
              db_load.AchievedIops(),
              db_load.read_latency().Percentile(0.95) / 1e3);
  std::printf("  analytics: %7.0f IOPS, p95 read %6.1f us  (best effort)\n",
              an_load.AchievedIops(),
              an_load.read_latency().Percentile(0.95) / 1e3);

  // --- Cross-tenant access is denied ---
  auto trespass = db_session->Read((1ULL << 30) + 8, 8);
  while (!trespass.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
  std::printf("\ndatabase tenant reading analytics' namespace: %s\n",
              trespass.Get().status == core::ReqStatus::kAccessDenied
                  ? "DENIED by ACL (as expected)"
                  : "allowed (?!)");
  return 0;
}
