// Legacy-application demo: an unmodified "application" (here, the
// mini-LSM key-value store) runs on top of the ReFlex remote block
// device driver -- the /dev/reflexN path of paper section 4.2 -- with
// no ReFlex-specific code in the application itself.
//
//   ./build/examples/legacy_block_app

#include <cstdio>

#include "apps/kv/db_bench.h"
#include "apps/kv/kv_store.h"
#include "client/block_device.h"
#include "core/reflex_server.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace reflex;

namespace {

flash::CalibrationResult DeviceACalibration() {
  flash::CalibrationResult c;
  c.write_cost = 10.0;
  c.read_cost_readonly = 0.5;
  c.token_capacity_per_sec = 547000.0;
  c.latency_curve = {
      {54696.4, 28945.0, sim::Micros(145), sim::Micros(113)},
      {328178.2, 172470.0, sim::Micros(260), sim::Micros(166)},
      {437571.0, 229790.0, sim::Micros(614), sim::Micros(248)},
      {525085.2, 276207.5, sim::Micros(2785), sim::Micros(755)},
  };
  return c;
}

}  // namespace

int main() {
  sim::Simulator sim;
  net::Network network(sim);
  net::Machine* server_machine = network.AddMachine("flash-server");
  net::Machine* app_machine = network.AddMachine("app-host");

  flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(), 42);
  core::ReflexServer server(sim, network, server_machine, device,
                            DeviceACalibration());

  // A best-effort tenant backs the block device.
  core::Tenant* tenant = server.RegisterTenant(
      core::SloSpec{}, core::TenantClass::kBestEffort);

  // The legacy path: a blk-mq block device with 6 hardware contexts
  // (one kernel socket + completion thread per context).
  client::BlockDevice bdev(sim, server, app_machine, tenant->handle(),
                           client::BlockDevice::Options{});
  std::printf("mounted %s: %.0f GB across the network\n", bdev.name(),
              static_cast<double>(bdev.CapacityBytes()) / (1ULL << 30));

  // The unmodified application: an LSM key-value store that thinks it
  // is talking to a local disk.
  apps::kv::KvStore::Options kv_options;
  kv_options.region_bytes = 8ULL << 30;
  kv_options.memtable_bytes = 1ULL << 20;
  apps::kv::KvStore store(sim, bdev, kv_options);

  std::printf("loading 10000 keys through the WAL + memtable + "
              "SSTables...\n");
  for (int i = 0; i < 10000; ++i) {
    auto put = store.Put(apps::kv::DbBench::KeyFor(i),
                         apps::kv::DbBench::ValueFor(i, 256));
    while (!put.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
  }
  auto flush = store.Flush();
  while (!flush.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
  std::printf("  %d L0 + %d L1 SSTables on remote Flash; %lld flushes, "
              "%lld compactions\n",
              store.l0_tables(), store.l1_tables(),
              static_cast<long long>(store.stats().memtable_flushes),
              static_cast<long long>(store.stats().compactions));

  // Point lookups with validation.
  int found = 0, correct = 0;
  sim::Histogram lat;
  for (int i = 0; i < 500; ++i) {
    const int key = (i * 37) % 10000;
    const sim::TimeNs t0 = sim.Now();
    auto get = store.Get(apps::kv::DbBench::KeyFor(key));
    // Step the simulator finely so the recorded latency is exact.
    while (!get.Ready()) sim.RunUntil(sim.Now() + sim::Micros(2));
    lat.Record(sim.Now() - t0);
    if (get.Get().found) {
      ++found;
      if (get.Get().value == apps::kv::DbBench::ValueFor(key, 256)) {
        ++correct;
      }
    }
  }
  std::printf("lookups over remote Flash: %d/500 found, %d verified; "
              "%s\n", found, correct, lat.SummaryUs().c_str());
  std::printf("bloom filters skipped %lld table probes; block cache "
              "read %lld data blocks\n",
              static_cast<long long>(store.stats().bloom_skips),
              static_cast<long long>(store.stats().block_reads));
  return 0;
}
