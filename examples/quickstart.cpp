// Quickstart: bring up a simulated datacenter with one ReFlex server,
// register a latency-critical tenant, and issue remote Flash I/O
// through the user-level client library.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "client/reflex_client.h"
#include "core/reflex_server.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "sim/simulator.h"

using namespace reflex;

int main() {
  // --- 1. The world: a simulator, a network, two machines ---
  sim::Simulator sim;
  net::Network network(sim);
  net::Machine* server_machine = network.AddMachine("flash-server");
  net::Machine* client_machine = network.AddMachine("app-server");

  // --- 2. A Flash device, calibrated for the QoS cost model ---
  flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(),
                            /*seed=*/42);
  std::printf("calibrating device A (paper section 3.2.1)...\n");
  flash::CalibrationConfig cal_cfg;
  cal_cfg.measure_duration = sim::Millis(150);
  cal_cfg.mixed_read_ratios = {0.5, 0.9, 0.99};
  flash::CalibrationResult calibration =
      flash::Calibrate(sim, device, cal_cfg);
  std::printf("  C(write) = %.1f tokens, C(read, r=100%%) = %.2f tokens, "
              "capacity = %.0fK tokens/s\n",
              calibration.write_cost, calibration.read_cost_readonly,
              calibration.token_capacity_per_sec / 1e3);

  // --- 3. The ReFlex server: dataplane + QoS scheduler ---
  core::ServerOptions options;
  options.num_threads = 1;
  core::ReflexServer server(sim, network, server_machine, device,
                            calibration, options);

  // --- 4. A client on the app server (IX-style dataplane stack) ---
  client::ReflexClient::Options copts;
  copts.stack = net::StackCosts::IxDataplane();
  client::ReflexClient client(sim, server, client_machine, copts);

  // --- 5. Open a tenant session with an SLO: 50K IOPS, 80% reads,
  //        p95 read latency <= 500us. OpenSession registers the
  //        tenant, opens the connection pool, and unregisters again
  //        when the session is destroyed (RAII). ---
  core::SloSpec slo;
  slo.iops = 50000;
  slo.read_fraction = 0.8;
  slo.latency = sim::Micros(500);
  core::ReqStatus status;
  auto session =
      client.OpenSession(slo, core::TenantClass::kLatencyCritical, &status);
  if (session == nullptr) {
    std::printf("tenant inadmissible!\n");
    return 1;
  }
  core::Tenant* tenant = server.FindTenant(session->handle());
  std::printf("registered LC tenant %u: 50K IOPS @ 80%% read, "
              "500us p95 (reserves %.0fK tokens/s)\n",
              session->handle(), tenant->token_rate() / 1e3);

  // --- 6. Write a block, read it back, and time both ---
  std::vector<uint8_t> out(4096);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(i & 0xff);
  }
  auto write_future = session->Write(/*lba=*/2048, /*sectors=*/8,
                                     out.data());
  while (!write_future.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
  std::printf("remote write: %s, latency %.1f us\n",
              write_future.Get().ok() ? "OK" : "FAILED",
              sim::ToMicros(write_future.Get().Latency()));

  std::vector<uint8_t> in(4096, 0);
  auto read_future = session->Read(2048, 8, in.data());
  while (!read_future.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
  std::printf("remote read:  %s, latency %.1f us, data %s\n",
              read_future.Get().ok() ? "OK" : "FAILED",
              sim::ToMicros(read_future.Get().Latency()),
              in == out ? "verified" : "MISMATCH");

  // --- 7. A short latency probe: 200 QD-1 random reads ---
  sim::Histogram hist;
  sim::Rng rng(7, "quickstart");
  for (int i = 0; i < 200; ++i) {
    auto f = session->Read(rng.NextBounded(1000000) * 8, 8);
    while (!f.Ready()) sim.RunUntil(sim.Now() + sim::Millis(1));
    hist.Record(f.Get().Latency());
  }
  std::printf("unloaded 4KB reads over TCP: %s\n", hist.SummaryUs().c_str());
  std::printf("(paper Table 2: ~99us avg / ~113us p95 -- remote Flash "
              "~= local Flash + 21us)\n");
  return 0;
}
