#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace detlint {
namespace {

namespace fs = std::filesystem;

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp" ||
         ext == ".cxx";
}

/** JSON string escaping for the --format=json report. */
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int RunDetlint(const std::vector<std::string>& paths, const RunOptions& opts,
               std::ostream& out, std::ostream& err) {
  // Expand the argument list into a sorted list of source files so the
  // report order never depends on directory-entry order.
  std::vector<std::string> files;
  for (const std::string& arg : paths) {
    std::error_code ec;
    const fs::path p(arg);
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path().string());
        }
      }
      if (ec) {
        err << "detlint: error walking '" << arg << "': " << ec.message()
            << "\n";
        return kExitError;
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p.string());
    } else {
      err << "detlint: no such file or directory: '" << arg << "'\n";
      return kExitError;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<FileReport> reports;
  int total_findings = 0;
  int total_suppressed = 0;
  int total_allowlisted = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      err << "detlint: cannot read '" << file << "'\n";
      return kExitError;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();
    FileReport r = LintSource(file, src, opts.allowlist, opts.analyzers);
    total_findings += static_cast<int>(r.findings.size());
    total_suppressed += static_cast<int>(r.suppressed.size());
    total_allowlisted += r.allowlisted;
    reports.push_back(std::move(r));
  }

  if (opts.json) {
    out << "{\n  \"files\": " << files.size()
        << ",\n  \"violations\": " << total_findings
        << ",\n  \"suppressed\": " << total_suppressed
        << ",\n  \"allowlisted\": " << total_allowlisted
        << ",\n  \"findings\": [";
    bool first = true;
    for (const FileReport& r : reports) {
      for (const Finding& f : r.findings) {
        if (!first) out << ",";
        first = false;
        out << "\n    {\"file\": \"" << JsonEscape(r.path)
            << "\", \"line\": " << f.line << ", \"rule\": \"" << f.rule
            << "\", \"analyzer\": \"" << AnalyzerForRule(f.rule)
            << "\", \"message\": \"" << JsonEscape(f.message) << "\"}";
      }
    }
    out << (first ? "]" : "\n  ]") << "\n}\n";
  } else {
    for (const FileReport& r : reports) {
      for (const Finding& f : r.findings) {
        out << r.path << ":" << f.line << ": [" << f.rule << "] "
            << f.message << "\n";
      }
    }
    out << "detlint: " << files.size() << " file"
        << (files.size() == 1 ? "" : "s") << ", " << total_findings
        << " violation" << (total_findings == 1 ? "" : "s") << ", "
        << total_suppressed << " suppressed, " << total_allowlisted
        << " allowlisted\n";
  }
  return total_findings == 0 ? kExitClean : kExitViolations;
}

}  // namespace detlint
