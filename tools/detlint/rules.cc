// Shared lint driver plus the determinism rule family. The driver in
// LintSource runs the selected analyzers over one lexed file, then
// applies the shared suppression/allowlist machinery; each analyzer is
// one function appending Findings (see detlint.h internal::).

#include <algorithm>
#include <array>
#include <cctype>
#include <set>
#include <string>

#include "detlint.h"

namespace detlint {
namespace {

using TokenVec = std::vector<Token>;

bool IsIdent(const TokenVec& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kIdent &&
         toks[i].text == text;
}

bool IsPunct(const TokenVec& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
         toks[i].text == text;
}

bool InSet(std::string_view text, const std::set<std::string>& set) {
  return set.count(std::string(text)) > 0;
}

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kWallClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock"};

const std::set<std::string> kWallClockCalls = {
    "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime",       "mktime",        "ctime",        "asctime"};

const std::set<std::string> kRngTypes = {
    "random_device", "mt19937",       "mt19937_64",    "default_random_engine",
    "minstd_rand",   "minstd_rand0",  "knuth_b",       "ranlux24",
    "ranlux48",      "ranlux24_base", "ranlux48_base"};

const std::set<std::string> kRngCalls = {"rand",    "srand",   "rand_r",
                                         "drand48", "lrand48", "mrand48",
                                         "random"};

/** Associative templates whose first argument must not be a pointer. */
const std::set<std::string> kKeyedTemplates = {
    "map",           "multimap",           "set",
    "multiset",      "unordered_map",      "unordered_set",
    "unordered_multimap", "unordered_multiset", "less",
    "greater",       "hash"};

/**
 * From the `<` at `open`, returns the index one past the matching `>`,
 * or toks.size() if unbalanced. Angle depth only counts at zero
 * paren/bracket depth so function types in template args survive.
 */
size_t SkipTemplateArgs(const TokenVec& toks, size_t open) {
  int angle = 0;
  int paren = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") ++paren;
    if (t == ")" || t == "]" || t == "}") --paren;
    if (paren != 0) continue;
    if (t == "<") ++angle;
    if (t == ">") {
      --angle;
      if (angle == 0) return i + 1;
    }
  }
  return toks.size();
}

/** True if the first template argument of `<` at `open` names a pointer. */
bool FirstTemplateArgIsPointer(const TokenVec& toks, size_t open) {
  int angle = 0;
  int paren = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") ++paren;
    if (t == ")" || t == "]" || t == "}") --paren;
    if (paren != 0) continue;
    if (t == "<") ++angle;
    if (t == ">") {
      --angle;
      if (angle == 0) return false;
    }
    if (t == "," && angle == 1) return false;
    if (t == "*" && angle >= 1) return true;
  }
  return false;
}

/** Previous token is a member access (`.` or `->`). */
bool AfterMemberAccess(const TokenVec& toks, size_t i) {
  return i > 0 && toks[i - 1].kind == Token::Kind::kPunct &&
         (toks[i - 1].text == "." || toks[i - 1].text == "->");
}

/**
 * True when token i is qualified by a namespace other than std
 * (`foo::name`); unqualified and `std::name` return false.
 */
bool NonStdQualified(const TokenVec& toks, size_t i) {
  if (i < 1 || !IsPunct(toks, i - 1, "::")) return false;
  return !(i >= 2 && IsIdent(toks, i - 2, "std"));
}

std::string Trim(std::string s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/**
 * Parses `detlint: allow(rule1,rule2) reason` directives out of
 * comments. Malformed directives land in `malformed` (line, message).
 */
std::vector<Suppression> ParseSuppressions(
    const std::vector<Comment>& comments,
    std::vector<std::pair<int, std::string>>* malformed) {
  std::vector<Suppression> out;
  for (const Comment& c : comments) {
    const size_t at = c.text.find("detlint:");
    if (at == std::string::npos) continue;
    std::string rest = Trim(c.text.substr(at + 8));
    if (rest.compare(0, 5, "allow") != 0) {
      malformed->push_back(
          {c.line, "unrecognized detlint directive (expected "
                   "'detlint: allow(<rule>) <reason>')"});
      continue;
    }
    rest = Trim(rest.substr(5));
    if (rest.empty() || rest[0] != '(') {
      malformed->push_back(
          {c.line, "detlint allow directive missing '(<rule>)'"});
      continue;
    }
    const size_t close = rest.find(')');
    if (close == std::string::npos) {
      malformed->push_back({c.line, "detlint allow directive missing ')'"});
      continue;
    }
    Suppression s;
    s.line = c.line;
    s.target_line = c.line;
    std::string rules = rest.substr(1, close - 1);
    std::string cur;
    for (char ch : rules + ",") {
      if (ch == ',' || ch == ' ' || ch == '\t') {
        if (!cur.empty()) s.rules.push_back(cur);
        cur.clear();
      } else {
        cur += ch;
      }
    }
    s.reason = Trim(rest.substr(close + 1));
    out.push_back(std::move(s));
  }
  return out;
}

void Add(std::vector<Finding>* findings, const std::string& rule, int line,
         std::string message) {
  findings->push_back(Finding{rule, line, std::move(message)});
}

}  // namespace

// ------------------------------------------------------------- registry

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"wall-clock", "determinism",
       "no wall-clock reads (std::chrono clocks, time(), gettimeofday, "
       "clock_gettime); use sim::Simulator::Now()"},
      {"ambient-rng", "determinism",
       "no ambient randomness (std::rand, std::random_device, std::mt19937 "
       "& friends); use seeded sim::Rng streams"},
      {"unordered-container", "determinism",
       "no std::unordered_map/unordered_set; use std::map/std::set or "
       "suppress with a written reason"},
      {"unordered-iter", "determinism",
       "no range-for or .begin() iteration over unordered containers"},
      {"pointer-key", "determinism",
       "no pointer-valued keys in associative containers or "
       "std::less/greater/hash over pointers"},
      {"bare-suppression", "determinism",
       "every detlint suppression must carry a written reason"},
      {"coawait-ternary", "coroutine",
       "no co_await combined with a conditional expression (GCC-12 "
       "materializes temporaries from both ternary operands); use if/else"},
      {"coro-ref-param", "coroutine",
       "no reference parameters on sim::Task coroutines; pass by value or "
       "pointer, or suppress with a written lifetime argument"},
      {"coro-lambda-capture", "coroutine",
       "no capturing-lambda coroutines; captures die with the lambda "
       "temporary at the first suspension"},
      {"coro-untracked-loop", "coroutine",
       "infinite-loop tasks must register via `co_await sim::SelfHandle` "
       "so an owner can destroy the frame at teardown"},
      {"coro-selfhandle-clear", "coroutine",
       "a registered SelfHandle slot must be cleared before the coroutine "
       "returns normally (the frame self-destructs; the handle dangles)"},
      {"coro-manual-resume", "coroutine",
       "no coroutine_handle::resume() outside the simulator event queue; "
       "use sim.ScheduleAfter(0, [h] { h.resume(); })"},
  };
  return kCatalog;
}

const std::vector<std::string>& AnalyzerNames() {
  static const std::vector<std::string> kNames = {"determinism", "coroutine"};
  return kNames;
}

std::string AnalyzerForRule(const std::string& rule) {
  for (const RuleInfo& r : RuleCatalog()) {
    if (r.id == rule) return r.analyzer;
  }
  return "";
}

// -------------------------------------------- determinism rule family

namespace internal {

void RunDeterminismRules(const AnalyzerInput& in,
                         std::vector<Finding>* findings) {
  const TokenVec& toks = in.lex.tokens;
  std::vector<Finding>& all = *findings;

  // ---- Pass A: declarations. Collects unordered container variable
  // and alias names, and emits unordered-container / pointer-key
  // findings at the declaration sites.
  std::set<std::string> unordered_vars;
  std::set<std::string> unordered_aliases;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = toks[i].text;

    if (InSet(name, kUnorderedContainers) && !AfterMemberAccess(toks, i) &&
        !NonStdQualified(toks, i)) {
      Add(&all, "unordered-container", toks[i].line,
          "'std::" + name +
              "' is hash-ordered; use std::map/std::set (or suppress with "
              "a reason if lookup-only and never iterated)");
      if (IsPunct(toks, i + 1, "<")) {
        const size_t after = SkipTemplateArgs(toks, i + 1);
        // `std::unordered_map<...> name` declares a trackable variable.
        if (after < toks.size() &&
            toks[after].kind == Token::Kind::kIdent) {
          unordered_vars.insert(toks[after].text);
        }
        // Alias form: using A = std::unordered_map<...>;
        size_t base = i;
        if (i >= 2 && IsPunct(toks, i - 1, "::") &&
            IsIdent(toks, i - 2, "std")) {
          base = i - 2;
        }
        if (base >= 2 && IsPunct(toks, base - 1, "=") &&
            toks[base - 2].kind == Token::Kind::kIdent && base >= 3 &&
            IsIdent(toks, base - 3, "using")) {
          unordered_aliases.insert(toks[base - 2].text);
        }
      }
    }

    // Variables declared via an unordered alias: `PageMap pages_;`
    if (InSet(name, unordered_aliases) &&
        i + 1 < toks.size() && toks[i + 1].kind == Token::Kind::kIdent) {
      unordered_vars.insert(toks[i + 1].text);
    }

    if (InSet(name, kKeyedTemplates) && IsPunct(toks, i + 1, "<") &&
        !AfterMemberAccess(toks, i) && !NonStdQualified(toks, i) &&
        FirstTemplateArgIsPointer(toks, i + 1)) {
      Add(&all, "pointer-key", toks[i].line,
          "pointer-valued key in 'std::" + name +
              "': addresses differ across runs (ASLR); key by a stable "
              "id instead");
    }
  }

  // ---- Pass B: uses.
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& name = toks[i].text;

    // wall-clock: chrono clock types anywhere.
    if (InSet(name, kWallClockTypes) && !AfterMemberAccess(toks, i)) {
      Add(&all, "wall-clock",
          toks[i].line,
          "wall-clock 'std::chrono::" + name +
              "': simulated time must come from sim::Simulator::Now()");
      continue;
    }
    // wall-clock: C time calls.
    if (InSet(name, kWallClockCalls) && IsPunct(toks, i + 1, "(") &&
        !AfterMemberAccess(toks, i) && !NonStdQualified(toks, i)) {
      Add(&all, "wall-clock", toks[i].line,
          "wall-clock call '" + name +
              "()': simulated time must come from sim::Simulator::Now()");
      continue;
    }
    // wall-clock: bare/std-qualified time(). A preceding identifier
    // other than `return` means this is a declaration (`int time()`),
    // not a call -- calls follow punctuation or `return`.
    const bool decl_like =
        i > 0 && toks[i - 1].kind == Token::Kind::kIdent &&
        toks[i - 1].text != "return";
    if (name == "time" && IsPunct(toks, i + 1, "(") && !decl_like &&
        !AfterMemberAccess(toks, i) && !NonStdQualified(toks, i)) {
      Add(&all, "wall-clock", toks[i].line,
          "wall-clock call 'time()': simulated time must come from "
          "sim::Simulator::Now()");
      continue;
    }

    // ambient-rng: engine/device types anywhere.
    if (InSet(name, kRngTypes) && !AfterMemberAccess(toks, i) &&
        !NonStdQualified(toks, i)) {
      Add(&all, "ambient-rng", toks[i].line,
          "ambient randomness 'std::" + name +
              "': draw from a seeded sim::Rng stream instead");
      continue;
    }
    // ambient-rng: C rand calls.
    if (InSet(name, kRngCalls) && IsPunct(toks, i + 1, "(") &&
        !AfterMemberAccess(toks, i) && !NonStdQualified(toks, i)) {
      Add(&all, "ambient-rng", toks[i].line,
          "ambient randomness '" + name +
              "()': draw from a seeded sim::Rng stream instead");
      continue;
    }

    // unordered-iter: `var.begin()` family on a tracked variable.
    if (InSet(name, unordered_vars) && i + 2 < toks.size() &&
        toks[i + 1].kind == Token::Kind::kPunct &&
        (toks[i + 1].text == "." || toks[i + 1].text == "->") &&
        toks[i + 2].kind == Token::Kind::kIdent &&
        (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin" ||
         toks[i + 2].text == "rbegin" || toks[i + 2].text == "crbegin") &&
        IsPunct(toks, i + 3, "(")) {
      Add(&all, "unordered-iter", toks[i].line,
          "iteration over unordered container '" + name +
              "': order depends on hash layout; convert to std::map/"
              "std::set or iterate sorted keys");
    }

    // unordered-iter: range-for whose range names a tracked variable.
    if (name == "for" && IsPunct(toks, i + 1, "(")) {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < toks.size(); ++j) {
        if (toks[j].kind != Token::Kind::kPunct) continue;
        if (toks[j].text == "(") ++depth;
        if (toks[j].text == ")") {
          --depth;
          if (depth == 0) {
            close = j;
            break;
          }
        }
        if (toks[j].text == ":" && depth == 1 && colon == 0) colon = j;
      }
      if (colon != 0 && close != 0) {
        for (size_t j = colon + 1; j < close; ++j) {
          if (toks[j].kind == Token::Kind::kIdent &&
              InSet(toks[j].text, unordered_vars)) {
            Add(&all, "unordered-iter", toks[j].line,
                "range-for over unordered container '" + toks[j].text +
                    "': order depends on hash layout; convert to "
                    "std::map/std::set or iterate sorted keys");
            break;
          }
        }
      }
    }
  }
}

}  // namespace internal

// --------------------------------------------------------------- driver

FileReport LintSource(const std::string& path, std::string_view src,
                      const std::vector<AllowEntry>& allowlist,
                      const std::set<std::string>& analyzers) {
  FileReport report;
  report.path = path;
  const LexResult lex = Lex(src);
  const TokenVec& toks = lex.tokens;
  const std::vector<FunctionContext> functions = BuildFunctionContexts(lex);
  const internal::AnalyzerInput input{path, lex, functions};

  const auto enabled = [&](const char* name) {
    return analyzers.empty() || analyzers.count(name) > 0;
  };

  std::vector<Finding> all;
  if (enabled("determinism")) internal::RunDeterminismRules(input, &all);
  if (enabled("coroutine")) internal::RunCoroutineRules(input, &all);

  // ---- Suppressions (shared across analyzers). bare-suppression
  // findings belong to the determinism family.
  std::vector<std::pair<int, std::string>> malformed;
  std::vector<Suppression> sups = ParseSuppressions(lex.comments, &malformed);
  if (enabled("determinism")) {
    for (const auto& [line, message] : malformed) {
      Add(&all, "bare-suppression", line, message);
    }
    for (const Suppression& s : sups) {
      if (s.reason.empty()) {
        Add(&all, "bare-suppression", s.line,
            "suppression without a reason: write why this site cannot "
            "affect event order");
      }
    }
  }

  // A directive on a comment-only line targets the first code line
  // below it (stacked comment blocks reach past each other).
  std::vector<int> token_lines;
  token_lines.reserve(toks.size());
  for (const Token& t : toks) token_lines.push_back(t.line);
  std::sort(token_lines.begin(), token_lines.end());
  auto has_code = [&](int line) {
    return std::binary_search(token_lines.begin(), token_lines.end(), line);
  };
  auto next_code_line = [&](int line) {
    auto it = std::upper_bound(token_lines.begin(), token_lines.end(), line);
    return it == token_lines.end() ? -1 : *it;
  };
  for (Suppression& s : sups) {
    s.target_line = has_code(s.line) ? s.line : next_code_line(s.line);
  }

  auto suppressed_by = [&](const Finding& f) -> const Suppression* {
    if (f.rule == "bare-suppression") return nullptr;
    for (const Suppression& s : sups) {
      if (s.reason.empty() || s.target_line != f.line) continue;
      for (const std::string& r : s.rules) {
        if (r == f.rule || r == "all") return &s;
      }
    }
    return nullptr;
  };
  auto allowlisted = [&](const Finding& f) {
    for (const AllowEntry& a : allowlist) {
      if ((a.rule == f.rule || a.rule == "*") &&
          path.find(a.path_substring) != std::string::npos) {
        return true;
      }
    }
    return false;
  };

  std::stable_sort(all.begin(), all.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  for (Finding& f : all) {
    if (suppressed_by(f) != nullptr) {
      report.suppressed.push_back(std::move(f));
    } else if (allowlisted(f)) {
      ++report.allowlisted;
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

bool ParseAllowlist(std::string_view text, std::vector<AllowEntry>* out,
                    std::string* error) {
  int lineno = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    std::string line(text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos));
    ++lineno;
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;
    const size_t space = line.find_first_of(" \t");
    if (space == std::string::npos) {
      if (error != nullptr) {
        *error = "allowlist line " + std::to_string(lineno) +
                 ": expected '<rule-or-*> <path-substring>'";
      }
      return false;
    }
    AllowEntry e;
    e.rule = line.substr(0, space);
    e.path_substring = Trim(line.substr(space + 1));
    bool known = e.rule == "*";
    for (const RuleInfo& r : RuleCatalog()) known |= r.id == e.rule;
    if (!known) {
      if (error != nullptr) {
        *error = "allowlist line " + std::to_string(lineno) +
                 ": unknown rule '" + e.rule + "'";
      }
      return false;
    }
    out->push_back(std::move(e));
  }
  return true;
}

}  // namespace detlint
