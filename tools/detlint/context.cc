// Lightweight function/coroutine context builder shared by every
// analyzer. Token-driven recovery of (a) function definitions whose
// declared return type is [sim::]Task and (b) lambda expressions --
// the two shapes coroutine-lifetime rules need to anchor on. It is
// deliberately not a parser: the goal is reliable anchors in this
// codebase's idiom, with conservative bail-outs everywhere else.

#include <string>
#include <vector>

#include "detlint.h"

namespace detlint {
namespace {

using TokenVec = std::vector<Token>;

bool IsPunct(const TokenVec& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
         toks[i].text == text;
}

bool IsIdent(const TokenVec& toks, size_t i) {
  return i < toks.size() && toks[i].kind == Token::Kind::kIdent;
}

/** Index of the `}` matching the `{` at `open`, or toks.size(). */
size_t MatchBrace(const TokenVec& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/** Index of the `)` matching the `(` at `open`, or toks.size(). */
size_t MatchParen(const TokenVec& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "(") ++depth;
    if (toks[i].text == ")") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/** Index of the `]` matching the `[` at `open`, or toks.size(). */
size_t MatchBracket(const TokenVec& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    if (toks[i].text == "[") ++depth;
    if (toks[i].text == "]") {
      --depth;
      if (depth == 0) return i;
    }
  }
  return toks.size();
}

/**
 * Splits the parameter list in (open, close) at top-level commas and
 * classifies each parameter. Reference detection counts `&` tokens at
 * zero paren/bracket/brace depth and zero template-angle depth, so
 * `std::vector<int>& v` and `int&& x` are references while a function
 * pointer's inner `int&` is not.
 */
std::vector<Param> ParseParams(const TokenVec& toks, size_t open,
                               size_t close) {
  std::vector<Param> params;
  size_t start = open + 1;
  int paren = 0;
  int angle = 0;
  auto flush = [&](size_t end) {
    if (end <= start) return;
    Param p;
    p.line = toks[start].line;
    int inner_paren = 0;
    int inner_angle = 0;
    for (size_t i = start; i < end; ++i) {
      const Token& t = toks[i];
      if (!p.text.empty()) p.text += ' ';
      p.text += t.text.empty() ? "\"\"" : t.text;
      if (t.kind != Token::Kind::kPunct) continue;
      if (t.text == "(" || t.text == "[" || t.text == "{") ++inner_paren;
      if (t.text == ")" || t.text == "]" || t.text == "}") --inner_paren;
      if (inner_paren != 0) continue;
      if (t.text == "<") ++inner_angle;
      if (t.text == ">" && inner_angle > 0) --inner_angle;
      if (t.text == "&" && inner_angle == 0) p.is_reference = true;
    }
    params.push_back(std::move(p));
  };
  for (size_t i = open + 1; i < close; ++i) {
    const Token& t = toks[i];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++paren;
    if (t.text == ")" || t.text == "]" || t.text == "}") --paren;
    if (paren != 0) continue;
    if (t.text == "<") ++angle;
    if (t.text == ">" && angle > 0) --angle;
    if (t.text == "," && angle == 0) {
      flush(i);
      start = i + 1;
    }
  }
  flush(close);
  return params;
}

void ScanBody(const TokenVec& toks, FunctionContext* ctx) {
  for (size_t i = ctx->body_begin; i < ctx->body_end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "co_await" || t == "co_return" || t == "co_yield") {
      ctx->is_coroutine = true;
    }
    if (t == "SelfHandle") ctx->registers_self_handle = true;
  }
}

/**
 * Tries to read a function definition whose return type names Task at
 * token `i` (the `Task` identifier). On success appends a context and
 * returns the index to continue scanning from (just after the body's
 * opening brace, so nested lambdas are still discovered); otherwise
 * returns i.
 */
size_t TryFunction(const TokenVec& toks, size_t i,
                   std::vector<FunctionContext>* out) {
  // Declarator: one or more identifiers joined by `::` (e.g.
  // `ClusterSession :: FanOutRead`), ending directly before `(`.
  size_t j = i + 1;
  std::string name;
  while (IsIdent(toks, j)) {
    name = toks[j].text;
    if (IsPunct(toks, j + 1, "::")) {
      j += 2;
      continue;
    }
    j += 1;
    break;
  }
  if (name.empty() || !IsPunct(toks, j, "(")) return i;
  const size_t close = MatchParen(toks, j);
  if (close >= toks.size()) return i;
  // After the parameter list: qualifiers until `{` (definition) or
  // `;`/`=` (declaration -- skip) or anything surprising (bail).
  size_t k = close + 1;
  while (k < toks.size()) {
    const Token& t = toks[k];
    if (t.kind == Token::Kind::kIdent &&
        (t.text == "const" || t.text == "noexcept" || t.text == "override" ||
         t.text == "final" || t.text == "mutable")) {
      // noexcept(...) -- skip its operand too.
      if (IsPunct(toks, k + 1, "(")) {
        k = MatchParen(toks, k + 1) + 1;
      } else {
        ++k;
      }
      continue;
    }
    break;
  }
  if (!IsPunct(toks, k, "{")) return i;
  FunctionContext ctx;
  ctx.name = name;
  ctx.line = toks[i].line;
  ctx.returns_task = true;
  ctx.params = ParseParams(toks, j, close);
  ctx.body_begin = k;
  ctx.body_end = MatchBrace(toks, k);
  ScanBody(toks, &ctx);
  out->push_back(std::move(ctx));
  return k;  // descend into the body so nested lambdas are found
}

/**
 * Tries to read a lambda expression at token `i` (the `[`). Appends a
 * context on success and returns the index of the lambda body's `{`
 * (scanning continues inside); otherwise returns i.
 */
size_t TryLambda(const TokenVec& toks, size_t i,
                 std::vector<FunctionContext>* out) {
  // A `[` after an identifier / `)` / `]` is a subscript, not a
  // lambda-introducer -- except after expression-starting keywords
  // (`return [x] { ... }`).
  if (i > 0) {
    const Token& prev = toks[i - 1];
    const bool keyword =
        prev.kind == Token::Kind::kIdent &&
        (prev.text == "return" || prev.text == "co_return" ||
         prev.text == "co_await" || prev.text == "co_yield" ||
         prev.text == "else" || prev.text == "case");
    if ((prev.kind == Token::Kind::kIdent && !keyword) ||
        (prev.kind == Token::Kind::kPunct &&
         (prev.text == ")" || prev.text == "]"))) {
      return i;
    }
  }
  const size_t close_bracket = MatchBracket(toks, i);
  if (close_bracket >= toks.size()) return i;
  FunctionContext ctx;
  ctx.is_lambda = true;
  ctx.line = toks[i].line;
  ctx.has_capture = close_bracket > i + 1;
  size_t k = close_bracket + 1;
  if (IsPunct(toks, k, "(")) {
    const size_t close = MatchParen(toks, k);
    if (close >= toks.size()) return i;
    ctx.params = ParseParams(toks, k, close);
    k = close + 1;
  }
  // Specifiers and an optional trailing return type, up to the body.
  // `-> sim::Task {` / `-> Task {` marks a Task-returning lambda.
  while (k < toks.size() && !IsPunct(toks, k, "{")) {
    if (IsPunct(toks, k, ";") || IsPunct(toks, k, ")") ||
        IsPunct(toks, k, ",") || IsPunct(toks, k, "}")) {
      return i;  // not a lambda after all (e.g. an attribute / array)
    }
    if (toks[k].kind == Token::Kind::kIdent && toks[k].text == "Task") {
      ctx.returns_task = true;
    }
    ++k;
  }
  if (k >= toks.size()) return i;
  ctx.body_begin = k;
  ctx.body_end = MatchBrace(toks, k);
  ScanBody(toks, &ctx);
  out->push_back(std::move(ctx));
  return k;
}

}  // namespace

std::vector<FunctionContext> BuildFunctionContexts(const LexResult& lex) {
  const TokenVec& toks = lex.tokens;
  std::vector<FunctionContext> out;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Token::Kind::kIdent && t.text == "Task") {
      // Skip member access (x.Task) and non-sim qualification other
      // than `sim::Task` / `::Task` handled implicitly: the name
      // heuristic only needs the return type position.
      i = TryFunction(toks, i, &out);
      continue;
    }
    if (t.kind == Token::Kind::kPunct && t.text == "[") {
      i = TryLambda(toks, i, &out);
      continue;
    }
  }
  return out;
}

}  // namespace detlint
