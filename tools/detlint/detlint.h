#ifndef REFLEX_TOOLS_DETLINT_DETLINT_H_
#define REFLEX_TOOLS_DETLINT_DETLINT_H_

#include <iosfwd>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/**
 * detlint: the simulation-hygiene lint framework.
 *
 * One shared token-level front end (lexer + a lightweight function/
 * coroutine context builder) feeds a registry of analyzers, each a
 * family of rules with its own id namespace. Suppressions, allowlists,
 * report formats and exit codes are shared across analyzers, so a new
 * rule family costs one source file and a catalog entry.
 *
 * Analyzer `determinism` -- the original detlint rulebook (DESIGN.md
 * section 13). The whole reproduction rests on bit-identical replay:
 * simtest expands seeds into scenarios, diffs golden exports and
 * bisects repro artifacts. One stray wall-clock read, ambient RNG
 * draw, or hash-order-dependent iteration silently invalidates all of
 * it.
 *
 *   wall-clock            no std::chrono::{system,steady,high_resolution}
 *                         _clock, time(), gettimeofday, clock_gettime, ...
 *   ambient-rng           no std::rand/srand, std::random_device,
 *                         std::mt19937 & friends -- all randomness flows
 *                         through seeded sim::Rng streams
 *   unordered-container   no std::unordered_map/unordered_set (& multi
 *                         variants): hash layout must never be able to
 *                         reach event order; use std::map/std::set or
 *                         suppress with a written reason
 *   unordered-iter        no range-for or .begin() iteration over a
 *                         variable declared as an unordered container
 *                         (fires even where the declaration itself was
 *                         suppressed or allowlisted)
 *   pointer-key           no pointer-valued keys in associative
 *                         containers and no std::less/greater/hash over
 *                         pointer types: addresses differ run to run
 *   bare-suppression      every `// detlint: allow(<rule>)` must carry a
 *                         written reason; bare or malformed directives
 *                         are themselves violations and suppress nothing
 *
 * Analyzer `coroutine` (corolint) -- the coroutine-lifetime rulebook
 * (DESIGN.md section 18). Every simulation process is a detached
 * C++20 coroutine over sim::Task; each rule below encodes a bug class
 * this repo actually shipped:
 *
 *   coawait-ternary       no co_await combined with a conditional
 *                         expression (`co_await (c ? a : b)` or
 *                         `c ? co_await a : co_await b`): GCC-12
 *                         materializes temporaries from BOTH operands
 *                         of the ternary, silently issuing phantom
 *                         I/Os; rewrite as if/else
 *   coro-ref-param        no reference parameters on sim::Task
 *                         coroutines: the frame may suspend and outlive
 *                         the referent; pass by value or pointer, or
 *                         suppress with a written lifetime argument
 *   coro-lambda-capture   no capturing-lambda coroutines: captures live
 *                         in the lambda object, which is usually a
 *                         temporary dead by the first suspension
 *   coro-untracked-loop   an infinite-loop task (`for(;;)`/`while(true)`
 *                         around a co_await) must register its frame
 *                         via `co_await sim::SelfHandle(...)` so an
 *                         owner can destroy it at teardown
 *   coro-selfhandle-clear a coroutine that registers a SelfHandle slot
 *                         must clear (assign null / erase) that slot
 *                         before returning normally: with suspend_never
 *                         final_suspend the frame self-destructs and
 *                         the stored handle dangles
 *   coro-manual-resume    no coroutine_handle::resume() outside the
 *                         simulator event queue: resume through
 *                         ScheduleAfter/ScheduleAt to keep stack depth
 *                         bounded and event order deterministic
 *
 * Suppressions: `// detlint: allow(rule1,rule2) <reason>` on the same
 * line as the violation, or on a comment line directly above it
 * (stacked comment blocks apply to the first code line below). Rule
 * ids are mandatory and analyzer-qualified only by their names; a
 * reasonless directive is itself a violation. Allowlist files carry
 * `<rule-or-*> <path-substring>` pairs for whole-file exemptions
 * (e.g. generated code).
 */
namespace detlint {

// ---------------------------------------------------------------- lexer

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;  // without the // or block delimiters
  int line;          // line the comment starts on
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/**
 * Tokenizes C++ source: identifiers, numbers (with digit separators),
 * punctuation (`::` and `->` fused), string/char literals (including
 * raw strings), comments captured separately. Preprocessor directive
 * lines (including continuations) produce no tokens, so `#include
 * <unordered_map>` never trips the container rules.
 */
LexResult Lex(std::string_view src);

// ------------------------------------------------------------- contexts

/** One declared parameter of a function or lambda. */
struct Param {
  std::string text;  // tokens joined with single spaces
  int line;          // line of the parameter's first token
  bool is_reference = false;  // `&` or `&&` at the top declarator level
};

/**
 * A function definition or lambda expression recovered by the
 * lightweight context builder. Token indices refer to the LexResult
 * the contexts were built from; [body_begin, body_end] brackets the
 * `{` and matching `}` of the body.
 */
struct FunctionContext {
  std::string name;  // last declarator identifier ("" for lambdas)
  int line = 0;      // line the definition starts on
  bool is_lambda = false;
  bool has_capture = false;   // lambda with a non-empty capture list
  bool returns_task = false;  // declared return type [sim::]Task
  bool is_coroutine = false;  // body contains co_await/co_return/co_yield
  bool registers_self_handle = false;  // body mentions SelfHandle
  std::vector<Param> params;
  size_t body_begin = 0;
  size_t body_end = 0;
};

/**
 * Recovers every `[sim::]Task`-returning function definition and every
 * lambda expression from the token stream. Purely token-driven (no
 * type information): good enough to anchor coroutine-lifetime rules,
 * not a parser. Lambdas nested inside functions appear as their own
 * contexts; their token ranges overlap the enclosing body.
 */
std::vector<FunctionContext> BuildFunctionContexts(const LexResult& lex);

// ------------------------------------------------------------- findings

struct Finding {
  std::string rule;
  int line;
  std::string message;
};

/** Parsed `detlint: allow(...)` directive. */
struct Suppression {
  std::vector<std::string> rules;
  std::string reason;  // empty => bare (a violation, suppresses nothing)
  int line;            // comment line
  int target_line;     // code line the directive applies to
};

/** One `<rule-or-*> <path-substring>` allowlist entry. */
struct AllowEntry {
  std::string rule;
  std::string path_substring;
};

/**
 * Parses allowlist text (one entry per line, `#` comments). Returns
 * false and sets `error` on a malformed line.
 */
bool ParseAllowlist(std::string_view text, std::vector<AllowEntry>* out,
                    std::string* error);

struct FileReport {
  std::string path;
  std::vector<Finding> findings;    // unsuppressed violations
  std::vector<Finding> suppressed;  // violations silenced with a reason
  int allowlisted = 0;              // violations silenced by allowlist
};

/**
 * Lints one in-memory source file. `analyzers` selects which rule
 * families run (names from AnalyzerNames()); empty means all.
 */
FileReport LintSource(const std::string& path, std::string_view src,
                      const std::vector<AllowEntry>& allowlist,
                      const std::set<std::string>& analyzers = {});

// ------------------------------------------------------------- registry

/** Catalog entry: rule id, owning analyzer, one-line description. */
struct RuleInfo {
  std::string id;
  std::string analyzer;
  std::string description;
};

/** All rules across all analyzers, in report order. */
const std::vector<RuleInfo>& RuleCatalog();

/** Registered analyzer names, in registration order. */
const std::vector<std::string>& AnalyzerNames();

/** Analyzer owning `rule`, or "" if the rule id is unknown. */
std::string AnalyzerForRule(const std::string& rule);

// --------------------------------------------------------------- driver

struct RunOptions {
  std::vector<AllowEntry> allowlist;
  bool json = false;
  /** Analyzers to run; empty = all registered analyzers. */
  std::set<std::string> analyzers;
};

inline constexpr int kExitClean = 0;
inline constexpr int kExitViolations = 1;
inline constexpr int kExitError = 2;

/**
 * Lints every .h/.hpp/.cc/.cpp/.cxx file under `paths` (files taken
 * as-is, directories walked recursively in sorted order), writes the
 * report to `out` and errors to `err`. Returns kExitClean,
 * kExitViolations or kExitError.
 */
int RunDetlint(const std::vector<std::string>& paths, const RunOptions& opts,
               std::ostream& out, std::ostream& err);

// ----------------------------------------------- analyzer implementation
// Internal interface between the shared driver and the rule families.
namespace internal {

struct AnalyzerInput {
  const std::string& path;
  const LexResult& lex;
  const std::vector<FunctionContext>& functions;
};

/** Appends the determinism family's findings for one file. */
void RunDeterminismRules(const AnalyzerInput& in,
                         std::vector<Finding>* findings);

/** Appends the coroutine-lifetime (corolint) findings for one file. */
void RunCoroutineRules(const AnalyzerInput& in,
                       std::vector<Finding>* findings);

}  // namespace internal

}  // namespace detlint

#endif  // REFLEX_TOOLS_DETLINT_DETLINT_H_
