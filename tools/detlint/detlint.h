#ifndef REFLEX_TOOLS_DETLINT_DETLINT_H_
#define REFLEX_TOOLS_DETLINT_DETLINT_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/**
 * detlint: the determinism & simulation-hygiene linter.
 *
 * The whole reproduction rests on bit-identical replay: simtest expands
 * seeds into scenarios, diffs golden exports and bisects repro
 * artifacts. One stray wall-clock read, ambient RNG draw, or
 * hash-order-dependent iteration silently invalidates all of it.
 * detlint tokenizes every file under src/ and machine-checks the
 * determinism rulebook (DESIGN.md section 13):
 *
 *   wall-clock            no std::chrono::{system,steady,high_resolution}
 *                         _clock, time(), gettimeofday, clock_gettime, ...
 *   ambient-rng           no std::rand/srand, std::random_device,
 *                         std::mt19937 & friends -- all randomness flows
 *                         through seeded sim::Rng streams
 *   unordered-container   no std::unordered_map/unordered_set (& multi
 *                         variants): hash layout must never be able to
 *                         reach event order; use std::map/std::set or
 *                         suppress with a written reason
 *   unordered-iter        no range-for or .begin() iteration over a
 *                         variable declared as an unordered container
 *                         (fires even where the declaration itself was
 *                         suppressed or allowlisted)
 *   pointer-key           no pointer-valued keys in associative
 *                         containers and no std::less/greater/hash over
 *                         pointer types: addresses differ run to run
 *   bare-suppression      every `// detlint: allow(<rule>)` must carry a
 *                         written reason; bare or malformed directives
 *                         are themselves violations and suppress nothing
 *
 * Suppressions: `// detlint: allow(rule1,rule2) <reason>` on the same
 * line as the violation, or on a comment line directly above it
 * (stacked comment blocks apply to the first code line below).
 * Allowlist files carry `<rule-or-*> <path-substring>` pairs for
 * whole-file exemptions (e.g. generated code).
 */
namespace detlint {

// ---------------------------------------------------------------- lexer

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kString, kChar };
  Kind kind;
  std::string text;
  int line;
};

struct Comment {
  std::string text;  // without the // or block delimiters
  int line;          // line the comment starts on
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/**
 * Tokenizes C++ source: identifiers, numbers (with digit separators),
 * punctuation (`::` and `->` fused), string/char literals (including
 * raw strings), comments captured separately. Preprocessor directive
 * lines (including continuations) produce no tokens, so `#include
 * <unordered_map>` never trips the container rules.
 */
LexResult Lex(std::string_view src);

// ------------------------------------------------------------- findings

struct Finding {
  std::string rule;
  int line;
  std::string message;
};

/** Parsed `detlint: allow(...)` directive. */
struct Suppression {
  std::vector<std::string> rules;
  std::string reason;  // empty => bare (a violation, suppresses nothing)
  int line;            // comment line
  int target_line;     // code line the directive applies to
};

/** One `<rule-or-*> <path-substring>` allowlist entry. */
struct AllowEntry {
  std::string rule;
  std::string path_substring;
};

/**
 * Parses allowlist text (one entry per line, `#` comments). Returns
 * false and sets `error` on a malformed line.
 */
bool ParseAllowlist(std::string_view text, std::vector<AllowEntry>* out,
                    std::string* error);

struct FileReport {
  std::string path;
  std::vector<Finding> findings;    // unsuppressed violations
  std::vector<Finding> suppressed;  // violations silenced with a reason
  int allowlisted = 0;              // violations silenced by allowlist
};

/** Lints one in-memory source file against the full rulebook. */
FileReport LintSource(const std::string& path, std::string_view src,
                      const std::vector<AllowEntry>& allowlist);

/** Rule ids with one-line descriptions, in report order. */
const std::vector<std::pair<std::string, std::string>>& RuleCatalog();

// --------------------------------------------------------------- driver

struct RunOptions {
  std::vector<AllowEntry> allowlist;
  bool json = false;
};

inline constexpr int kExitClean = 0;
inline constexpr int kExitViolations = 1;
inline constexpr int kExitError = 2;

/**
 * Lints every .h/.hpp/.cc/.cpp/.cxx file under `paths` (files taken
 * as-is, directories walked recursively in sorted order), writes the
 * report to `out` and errors to `err`. Returns kExitClean,
 * kExitViolations or kExitError.
 */
int RunDetlint(const std::vector<std::string>& paths, const RunOptions& opts,
               std::ostream& out, std::ostream& err);

}  // namespace detlint

#endif  // REFLEX_TOOLS_DETLINT_DETLINT_H_
