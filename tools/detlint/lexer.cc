#include "detlint.h"

#include <cctype>

namespace detlint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

LexResult Lex(std::string_view src) {
  LexResult out;
  const size_t n = src.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (src[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < n) {
    const char c = src[i];

    if (c == '\n' || c == ' ' || c == '\t' || c == '\r' || c == '\v' ||
        c == '\f') {
      advance(1);
      continue;
    }

    // Preprocessor directive: swallow the whole logical line (with
    // backslash continuations). Emits no tokens.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (src[i] == '\n') break;
        advance(1);
      }
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const int start_line = line;
      advance(2);
      std::string text;
      while (i < n && src[i] != '\n') {
        text += src[i];
        advance(1);
      }
      out.comments.push_back(Comment{text, start_line});
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const int start_line = line;
      advance(2);
      std::string text;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        text += src[i];
        advance(1);
      }
      advance(2);  // closing */
      out.comments.push_back(Comment{text, start_line});
      continue;
    }

    // Identifier (or raw-string prefix).
    if (IsIdentStart(c)) {
      const int start_line = line;
      std::string text;
      while (i < n && IsIdentChar(src[i])) {
        text += src[i];
        advance(1);
      }
      // Raw string literal: R"delim( ... )delim" with optional
      // encoding prefix. The prefix identifier is part of the literal,
      // not a real identifier.
      if (i < n && src[i] == '"' &&
          (text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
           text == "LR")) {
        advance(1);  // opening quote
        std::string delim;
        while (i < n && src[i] != '(') {
          delim += src[i];
          advance(1);
        }
        advance(1);  // (
        const std::string closer = ")" + delim + "\"";
        while (i < n && src.compare(i, closer.size(), closer) != 0) {
          advance(1);
        }
        advance(closer.size());
        out.tokens.push_back(Token{Token::Kind::kString, "", start_line});
        continue;
      }
      // Ordinary string with encoding prefix (u8"x", L"x", ...): the
      // prefix identifier glues to the literal; fall through and let
      // the next loop iteration lex the quote as a plain string.
      out.tokens.push_back(Token{Token::Kind::kIdent, text, start_line});
      continue;
    }

    // Number (handles hex/float/exponent chars and digit separators).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      const int start_line = line;
      std::string text;
      while (i < n) {
        const char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          // ok
        } else if (d == '\'' && i + 1 < n && IsIdentChar(src[i + 1])) {
          // digit separator
        } else if ((d == '+' || d == '-') && !text.empty() &&
                   (text.back() == 'e' || text.back() == 'E' ||
                    text.back() == 'p' || text.back() == 'P')) {
          // exponent sign
        } else {
          break;
        }
        text += d;
        advance(1);
      }
      out.tokens.push_back(Token{Token::Kind::kNumber, text, start_line});
      continue;
    }

    // String literal.
    if (c == '"') {
      const int start_line = line;
      advance(1);
      while (i < n && src[i] != '"') {
        if (src[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      advance(1);
      out.tokens.push_back(Token{Token::Kind::kString, "", start_line});
      continue;
    }

    // Char literal.
    if (c == '\'') {
      const int start_line = line;
      advance(1);
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\' && i + 1 < n) advance(1);
        advance(1);
      }
      advance(1);
      out.tokens.push_back(Token{Token::Kind::kChar, "", start_line});
      continue;
    }

    // Punctuation: fuse `::` and `->`, everything else single-char.
    {
      const int start_line = line;
      std::string text(1, c);
      if (c == ':' && i + 1 < n && src[i + 1] == ':') {
        text = "::";
        advance(2);
      } else if (c == '-' && i + 1 < n && src[i + 1] == '>') {
        text = "->";
        advance(2);
      } else {
        advance(1);
      }
      out.tokens.push_back(Token{Token::Kind::kPunct, text, start_line});
    }
  }
  return out;
}

}  // namespace detlint
