#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "detlint.h"

namespace {

void PrintUsage(std::ostream& out) {
  out << "usage: detlint [options] <path>...\n"
         "\n"
         "Multi-analyzer simulation-hygiene linter. Analyzer\n"
         "'determinism' enforces the determinism rulebook (DESIGN.md\n"
         "section 13); analyzer 'coroutine' (corolint) enforces the\n"
         "coroutine ownership rulebook (DESIGN.md section 18).\n"
         "Directories are walked recursively.\n"
         "\n"
         "options:\n"
         "  --analyzer NAME    run only this analyzer (repeatable;\n"
         "                     default: all)\n"
         "  --allowlist FILE   whole-file exemptions, one\n"
         "                     '<rule-or-*> <path-substring>' per line\n"
         "  --format text|json report format (default text)\n"
         "  --list-rules       print the rule catalog and exit\n"
         "  -h, --help         this message\n"
         "\n"
         "exit status: 0 clean, 1 violations found, 2 usage or I/O "
         "error\n";
}

}  // namespace

int main(int argc, char** argv) {
  detlint::RunOptions opts;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      PrintUsage(std::cout);
      return detlint::kExitClean;
    }
    if (arg == "--list-rules") {
      for (const detlint::RuleInfo& r : detlint::RuleCatalog()) {
        std::cout << r.id << " [" << r.analyzer << "]: " << r.description
                  << "\n";
      }
      return detlint::kExitClean;
    }
    if (arg == "--analyzer") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --analyzer requires a name\n";
        return detlint::kExitError;
      }
      const std::string name = argv[++i];
      bool known = false;
      for (const std::string& a : detlint::AnalyzerNames()) {
        known |= a == name;
      }
      if (!known) {
        std::cerr << "detlint: unknown analyzer '" << name << "' (have:";
        for (const std::string& a : detlint::AnalyzerNames()) {
          std::cerr << " " << a;
        }
        std::cerr << ")\n";
        return detlint::kExitError;
      }
      opts.analyzers.insert(name);
      continue;
    }
    if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --allowlist requires a file argument\n";
        return detlint::kExitError;
      }
      const std::string file = argv[++i];
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::cerr << "detlint: cannot read allowlist '" << file << "'\n";
        return detlint::kExitError;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string error;
      if (!detlint::ParseAllowlist(buf.str(), &opts.allowlist, &error)) {
        std::cerr << "detlint: " << file << ": " << error << "\n";
        return detlint::kExitError;
      }
      continue;
    }
    if (arg == "--format") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --format requires 'text' or 'json'\n";
        return detlint::kExitError;
      }
      const std::string fmt = argv[++i];
      if (fmt == "json") {
        opts.json = true;
      } else if (fmt == "text") {
        opts.json = false;
      } else {
        std::cerr << "detlint: unknown format '" << fmt << "'\n";
        return detlint::kExitError;
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option '" << arg << "'\n";
      PrintUsage(std::cerr);
      return detlint::kExitError;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) {
    std::cerr << "detlint: no paths given\n";
    PrintUsage(std::cerr);
    return detlint::kExitError;
  }
  return detlint::RunDetlint(paths, opts, std::cout, std::cerr);
}
