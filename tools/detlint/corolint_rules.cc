// corolint: the coroutine-lifetime analyzer. Six rules, each encoding
// a bug class this repository actually shipped (see detlint.h and
// DESIGN.md section 18 for the rulebook and the incidents behind it).

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "detlint.h"

namespace detlint {
namespace internal {
namespace {

using TokenVec = std::vector<Token>;

bool IsPunct(const TokenVec& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kPunct &&
         toks[i].text == text;
}

bool IsIdent(const TokenVec& toks, size_t i, std::string_view text) {
  return i < toks.size() && toks[i].kind == Token::Kind::kIdent &&
         toks[i].text == text;
}

void Add(std::vector<Finding>* findings, const char* rule, int line,
         std::string message) {
  // One finding per (rule, line): the two ternary detectors can both
  // match pathological one-liners.
  for (const Finding& f : *findings) {
    if (f.line == line && f.rule == rule) return;
  }
  findings->push_back(Finding{rule, line, std::move(message)});
}

/** Index one past the matching close for the open paren/bracket/brace
 * at `open`, or toks.size(). */
size_t SkipBalanced(const TokenVec& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Token::Kind::kPunct) continue;
    const std::string& t = toks[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    if (t == ")" || t == "]" || t == "}") {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return toks.size();
}

// ------------------------------------------------- rule: coawait-ternary

/**
 * Form A -- co_await on a conditional expression: from the co_await,
 * walk its operand. A `?` reached through grouping parentheses only
 * (never through a call's argument list) means the awaited expression
 * is a ternary: GCC-12 materializes temporaries from both operands, so
 * `co_await (use_write ? session->Write(..) : session->Read(..))`
 * issued a phantom write per read (PR 8). A `?` inside a call's
 * arguments (`co_await Delay(sim, c ? a : b)`) is fine.
 */
void CheckAwaitOperand(const TokenVec& toks, size_t i,
                       std::vector<Finding>* findings) {
  std::vector<bool> group_stack;  // true = grouping paren, false = call
  for (size_t j = i + 1; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "(") {
      bool group = true;
      if (j > i + 1) {
        const Token& prev = toks[j - 1];
        if (prev.kind == Token::Kind::kIdent ||
            (prev.kind == Token::Kind::kPunct &&
             (prev.text == ")" || prev.text == "]" || prev.text == ">"))) {
          group = false;  // function/constructor call or cast
        }
      }
      group_stack.push_back(group);
      continue;
    }
    if (t.text == "[" || t.text == "{") {
      group_stack.push_back(false);
      continue;
    }
    if (t.text == ")" || t.text == "]" || t.text == "}") {
      if (group_stack.empty()) return;  // enclosing expression closed
      group_stack.pop_back();
      continue;
    }
    if (!group_stack.empty() &&
        !std::all_of(group_stack.begin(), group_stack.end(),
                     [](bool g) { return g; })) {
      continue;  // inside a call's arguments: not the awaited operand
    }
    if (t.text == ";" || t.text == ",") return;
    if (t.text == ":") return;  // arm boundary of an enclosing ternary
    if (t.text == "?") {
      Add(findings, "coawait-ternary", toks[i].line,
          "co_await on a conditional expression: GCC-12 materializes "
          "temporaries from BOTH ternary operands (phantom I/O, PR 8 "
          "pitfall); rewrite as if/else");
      return;
    }
  }
}

/**
 * Form B -- co_await inside a ternary's arms: for a `?` at token q,
 * scan the conditional expression's extent; a co_await at the same
 * parenthesis depth as the `?` sits in one of its arms
 * (`c ? co_await A(..) : co_await B(..)`). Same temporary-
 * materialization hazard, one refactor away from form A.
 */
void CheckTernaryArms(const TokenVec& toks, size_t q,
                      std::vector<Finding>* findings) {
  int depth = 0;
  for (size_t j = q + 1; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.kind == Token::Kind::kIdent) {
      if (t.text == "co_await" && depth == 0) {
        Add(findings, "coawait-ternary", toks[j].line,
            "co_await in a conditional expression's arm: GCC-12 "
            "materializes temporaries from BOTH ternary operands "
            "(phantom I/O, PR 8 pitfall); rewrite as if/else");
        return;
      }
      continue;
    }
    if (t.kind != Token::Kind::kPunct) continue;
    if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
    if (t.text == ")" || t.text == "]" || t.text == "}") {
      --depth;
      if (depth < 0) return;  // conditional expression ended
    }
    if (depth == 0 && (t.text == ";" || t.text == ",")) return;
  }
}

void RuleCoawaitTernary(const TokenVec& toks, std::vector<Finding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind == Token::Kind::kIdent && toks[i].text == "co_await") {
      CheckAwaitOperand(toks, i, findings);
    }
    if (toks[i].kind == Token::Kind::kPunct && toks[i].text == "?") {
      CheckTernaryArms(toks, i, findings);
    }
  }
}

// ------------------------------------------------- rule: coro-ref-param

void RuleRefParam(const FunctionContext& ctx, std::vector<Finding>* findings) {
  if (!ctx.returns_task || !ctx.is_coroutine) return;
  for (const Param& p : ctx.params) {
    if (!p.is_reference) continue;
    Add(findings, "coro-ref-param", p.line,
        "coroutine parameter '" + p.text +
            "' taken by reference: the frame suspends and may outlive "
            "the referent; pass by value or pointer, or suppress with a "
            "written lifetime argument");
  }
}

// --------------------------------------------- rule: coro-lambda-capture

void RuleLambdaCapture(const FunctionContext& ctx,
                       std::vector<Finding>* findings) {
  if (!ctx.is_lambda || !ctx.returns_task || !ctx.is_coroutine) return;
  if (!ctx.has_capture) return;
  Add(findings, "coro-lambda-capture", ctx.line,
      "capturing-lambda coroutine: captures live in the lambda object, "
      "which is typically a temporary destroyed before the first "
      "resume; pass state as coroutine parameters instead");
}

// --------------------------------------------- rule: coro-untracked-loop

/**
 * True if tokens [begin, end) contain `break` outside any nested
 * for/while/do/switch (those consume their own breaks).
 */
bool HasTopLevelBreak(const TokenVec& toks, size_t begin, size_t end) {
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    const std::string& t = toks[i].text;
    if (t == "break") return true;
    if (t == "for" || t == "while" || t == "do" || t == "switch") {
      // Skip the nested construct: its condition parens (if any) and
      // its brace body. Single-statement bodies end at `;`.
      size_t j = i + 1;
      if (IsPunct(toks, j, "(")) j = SkipBalanced(toks, j);
      if (IsPunct(toks, j, "{")) {
        i = SkipBalanced(toks, j) - 1;
      } else {
        while (j < end && !IsPunct(toks, j, ";")) ++j;
        i = j;
      }
    }
  }
  return false;
}

bool ContainsIdent(const TokenVec& toks, size_t begin, size_t end,
                   std::string_view name) {
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind == Token::Kind::kIdent && toks[i].text == name) {
      return true;
    }
  }
  return false;
}

/**
 * Finds infinite loops -- `for (;;)` or `while (true)` / `while (1)`
 * with no top-level break and no co_return -- inside [begin, end).
 * Returns each loop's header index and body range.
 */
struct InfiniteLoop {
  size_t header;
  size_t body_begin;
  size_t body_end;
};

std::vector<InfiniteLoop> FindInfiniteLoops(const TokenVec& toks,
                                            size_t begin, size_t end) {
  std::vector<InfiniteLoop> out;
  for (size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Token::Kind::kIdent) continue;
    bool head = false;
    size_t after_cond = 0;
    if (toks[i].text == "for" && IsPunct(toks, i + 1, "(") &&
        IsPunct(toks, i + 2, ";") && IsPunct(toks, i + 3, ";") &&
        IsPunct(toks, i + 4, ")")) {
      head = true;
      after_cond = i + 5;
    } else if (toks[i].text == "while" && IsPunct(toks, i + 1, "(") &&
               (IsIdent(toks, i + 2, "true") ||
                (i + 2 < toks.size() &&
                 toks[i + 2].kind == Token::Kind::kNumber &&
                 toks[i + 2].text == "1")) &&
               IsPunct(toks, i + 3, ")")) {
      head = true;
      after_cond = i + 4;
    }
    if (!head) continue;
    size_t body_begin = after_cond;
    size_t body_end;
    if (IsPunct(toks, body_begin, "{")) {
      body_end = SkipBalanced(toks, body_begin);
    } else {
      body_end = body_begin;
      while (body_end < end && !IsPunct(toks, body_end, ";")) ++body_end;
    }
    if (HasTopLevelBreak(toks, body_begin, body_end)) continue;
    if (ContainsIdent(toks, body_begin, body_end, "co_return")) continue;
    if (ContainsIdent(toks, body_begin, body_end, "return")) continue;
    out.push_back(InfiniteLoop{i, body_begin, body_end});
  }
  return out;
}

void RuleUntrackedLoop(const TokenVec& toks, const FunctionContext& ctx,
                       std::vector<Finding>* findings) {
  if (!ctx.returns_task || !ctx.is_coroutine) return;
  if (ctx.registers_self_handle) return;
  for (const InfiniteLoop& loop :
       FindInfiniteLoops(toks, ctx.body_begin, ctx.body_end)) {
    if (!ContainsIdent(toks, loop.body_begin, loop.body_end, "co_await")) {
      continue;
    }
    Add(findings, "coro-untracked-loop", toks[loop.header].line,
        "infinite-loop coroutine never registers `co_await "
        "sim::SelfHandle(...)`: when the simulation ends mid-await the "
        "frame is unreachable and leaks past teardown (LSan stays "
        "silent while the handle is stored); register the frame so its "
        "owner can destroy() it");
  }
}

// ------------------------------------------- rule: coro-selfhandle-clear

void RuleSelfHandleClear(const TokenVec& toks, const FunctionContext& ctx,
                         std::vector<Finding>* findings) {
  if (!ctx.returns_task || !ctx.is_coroutine) return;
  if (!ctx.registers_self_handle) return;
  // A coroutine that cannot finish normally (it parks forever in an
  // infinite loop with no break/return) never self-destructs, so its
  // slot never dangles.
  if (!FindInfiniteLoops(toks, ctx.body_begin, ctx.body_end).empty()) return;
  // Locate `SelfHandle ( & <slot-expr> )` and extract the slot's base
  // identifier: the last identifier outside subscripts, so
  // `&copy_handles_[id]` -> copy_handles_ and `&o->slot_` -> slot_.
  for (size_t i = ctx.body_begin; i < ctx.body_end; ++i) {
    if (!(toks[i].kind == Token::Kind::kIdent &&
          toks[i].text == "SelfHandle")) {
      continue;
    }
    if (!IsPunct(toks, i + 1, "(")) continue;
    const size_t close = SkipBalanced(toks, i + 1) - 1;
    std::string base;
    int bracket = 0;
    for (size_t j = i + 2; j < close; ++j) {
      if (toks[j].kind == Token::Kind::kPunct) {
        if (toks[j].text == "[") ++bracket;
        if (toks[j].text == "]") --bracket;
        continue;
      }
      if (toks[j].kind == Token::Kind::kIdent && bracket == 0) {
        base = toks[j].text;
      }
    }
    if (base.empty()) continue;
    // The slot must be cleared somewhere after registration: either
    // `<base> = ...` (assignment, not `==`) or `<base>.erase(...)`.
    bool cleared = false;
    for (size_t j = close + 1; j + 1 < ctx.body_end; ++j) {
      if (!(toks[j].kind == Token::Kind::kIdent && toks[j].text == base)) {
        continue;
      }
      if (IsPunct(toks, j + 1, "=") && !IsPunct(toks, j + 2, "=")) {
        cleared = true;
        break;
      }
      if ((IsPunct(toks, j + 1, ".") || IsPunct(toks, j + 1, "->")) &&
          IsIdent(toks, j + 2, "erase")) {
        cleared = true;
        break;
      }
    }
    if (!cleared) {
      Add(findings, "coro-selfhandle-clear", toks[i].line,
          "SelfHandle slot '" + base +
              "' is never cleared before the coroutine returns: with "
              "suspend_never final_suspend the frame self-destructs on "
              "normal return and the stored handle dangles (owner "
              "would destroy() freed memory); null the slot or erase "
              "its entry on every exit path");
    }
  }
}

// --------------------------------------------- rule: coro-manual-resume

void RuleManualResume(const TokenVec& toks,
                      const std::vector<FunctionContext>& functions,
                      std::vector<Finding>* findings) {
  for (size_t i = 0; i < toks.size(); ++i) {
    if (!(toks[i].kind == Token::Kind::kIdent && toks[i].text == "resume")) {
      continue;
    }
    if (i == 0 || toks[i - 1].kind != Token::Kind::kPunct ||
        (toks[i - 1].text != "." && toks[i - 1].text != "->")) {
      continue;
    }
    if (!IsPunct(toks, i + 1, "(")) continue;
    // Sanctioned form: the resume happens inside a lambda handed to
    // ScheduleAfter/ScheduleAt, i.e. the event queue performs it. Find
    // the innermost lambda containing this token and look just before
    // its introducer; a resume outside any lambda is checked against
    // its own statement.
    size_t anchor = i;
    const FunctionContext* innermost = nullptr;
    for (const FunctionContext& ctx : functions) {
      if (!ctx.is_lambda) continue;
      if (ctx.body_begin < i && i < ctx.body_end) {
        if (innermost == nullptr || ctx.body_begin > innermost->body_begin) {
          innermost = &ctx;
        }
      }
    }
    if (innermost != nullptr) anchor = innermost->body_begin;
    bool scheduled = false;
    for (size_t j = anchor; j-- > 0;) {
      if (toks[j].kind == Token::Kind::kPunct &&
          (toks[j].text == ";" || toks[j].text == "}")) {
        break;
      }
      if (toks[j].kind == Token::Kind::kIdent &&
          (toks[j].text == "ScheduleAfter" || toks[j].text == "ScheduleAt")) {
        scheduled = true;
        break;
      }
    }
    if (!scheduled) {
      Add(findings, "coro-manual-resume", toks[i].line,
          "coroutine resumed outside the simulator event queue: direct "
          ".resume() grows the stack and bypasses deterministic (time, "
          "seq) ordering; schedule it -- sim.ScheduleAfter(0, [h] { "
          "h.resume(); })");
    }
  }
}

}  // namespace

void RunCoroutineRules(const AnalyzerInput& in,
                       std::vector<Finding>* findings) {
  const TokenVec& toks = in.lex.tokens;
  RuleCoawaitTernary(toks, findings);
  for (const FunctionContext& ctx : in.functions) {
    RuleRefParam(ctx, findings);
    RuleLambdaCapture(ctx, findings);
    RuleUntrackedLoop(toks, ctx, findings);
    RuleSelfHandleClear(toks, ctx, findings);
  }
  RuleManualResume(toks, in.functions, findings);
}

}  // namespace internal
}  // namespace detlint
