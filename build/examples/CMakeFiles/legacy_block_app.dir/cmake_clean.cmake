file(REMOVE_RECURSE
  "CMakeFiles/legacy_block_app.dir/legacy_block_app.cpp.o"
  "CMakeFiles/legacy_block_app.dir/legacy_block_app.cpp.o.d"
  "legacy_block_app"
  "legacy_block_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_block_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
