# Empty dependencies file for legacy_block_app.
# This may be replaced when dependencies are built.
