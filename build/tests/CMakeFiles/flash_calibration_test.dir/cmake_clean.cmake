file(REMOVE_RECURSE
  "CMakeFiles/flash_calibration_test.dir/flash/calibration_test.cc.o"
  "CMakeFiles/flash_calibration_test.dir/flash/calibration_test.cc.o.d"
  "flash_calibration_test"
  "flash_calibration_test.pdb"
  "flash_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
