# Empty dependencies file for flash_calibration_test.
# This may be replaced when dependencies are built.
