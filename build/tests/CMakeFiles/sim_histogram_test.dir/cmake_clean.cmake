file(REMOVE_RECURSE
  "CMakeFiles/sim_histogram_test.dir/sim/histogram_test.cc.o"
  "CMakeFiles/sim_histogram_test.dir/sim/histogram_test.cc.o.d"
  "sim_histogram_test"
  "sim_histogram_test.pdb"
  "sim_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
