file(REMOVE_RECURSE
  "CMakeFiles/client_page_cache_test.dir/client/page_cache_test.cc.o"
  "CMakeFiles/client_page_cache_test.dir/client/page_cache_test.cc.o.d"
  "client_page_cache_test"
  "client_page_cache_test.pdb"
  "client_page_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_page_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
