file(REMOVE_RECURSE
  "CMakeFiles/apps_kv_test.dir/apps/kv_test.cc.o"
  "CMakeFiles/apps_kv_test.dir/apps/kv_test.cc.o.d"
  "apps_kv_test"
  "apps_kv_test.pdb"
  "apps_kv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_kv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
