
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flash/flash_modes_test.cc" "tests/CMakeFiles/flash_modes_test.dir/flash/flash_modes_test.cc.o" "gcc" "tests/CMakeFiles/flash_modes_test.dir/flash/flash_modes_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/reflex_apps_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/reflex_baseline_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/reflex_client_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reflex_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reflex_net_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/reflex_flash_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reflex_sim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
