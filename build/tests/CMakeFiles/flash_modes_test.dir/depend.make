# Empty dependencies file for flash_modes_test.
# This may be replaced when dependencies are built.
