file(REMOVE_RECURSE
  "CMakeFiles/flash_modes_test.dir/flash/flash_modes_test.cc.o"
  "CMakeFiles/flash_modes_test.dir/flash/flash_modes_test.cc.o.d"
  "flash_modes_test"
  "flash_modes_test.pdb"
  "flash_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
