file(REMOVE_RECURSE
  "CMakeFiles/core_qos_scheduler_test.dir/core/qos_scheduler_test.cc.o"
  "CMakeFiles/core_qos_scheduler_test.dir/core/qos_scheduler_test.cc.o.d"
  "core_qos_scheduler_test"
  "core_qos_scheduler_test.pdb"
  "core_qos_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qos_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
