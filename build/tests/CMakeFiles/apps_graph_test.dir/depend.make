# Empty dependencies file for apps_graph_test.
# This may be replaced when dependencies are built.
