file(REMOVE_RECURSE
  "CMakeFiles/apps_graph_test.dir/apps/graph_test.cc.o"
  "CMakeFiles/apps_graph_test.dir/apps/graph_test.cc.o.d"
  "apps_graph_test"
  "apps_graph_test.pdb"
  "apps_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
