file(REMOVE_RECURSE
  "CMakeFiles/apps_fio_test.dir/apps/fio_test.cc.o"
  "CMakeFiles/apps_fio_test.dir/apps/fio_test.cc.o.d"
  "apps_fio_test"
  "apps_fio_test.pdb"
  "apps_fio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_fio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
