# Empty dependencies file for client_block_device_test.
# This may be replaced when dependencies are built.
