file(REMOVE_RECURSE
  "CMakeFiles/client_block_device_test.dir/client/block_device_test.cc.o"
  "CMakeFiles/client_block_device_test.dir/client/block_device_test.cc.o.d"
  "client_block_device_test"
  "client_block_device_test.pdb"
  "client_block_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/client_block_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
