# Empty dependencies file for core_control_plane_test.
# This may be replaced when dependencies are built.
