file(REMOVE_RECURSE
  "CMakeFiles/core_control_plane_test.dir/core/control_plane_test.cc.o"
  "CMakeFiles/core_control_plane_test.dir/core/control_plane_test.cc.o.d"
  "core_control_plane_test"
  "core_control_plane_test.pdb"
  "core_control_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_control_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
