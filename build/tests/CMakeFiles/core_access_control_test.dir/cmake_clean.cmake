file(REMOVE_RECURSE
  "CMakeFiles/core_access_control_test.dir/core/access_control_test.cc.o"
  "CMakeFiles/core_access_control_test.dir/core/access_control_test.cc.o.d"
  "core_access_control_test"
  "core_access_control_test.pdb"
  "core_access_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_access_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
