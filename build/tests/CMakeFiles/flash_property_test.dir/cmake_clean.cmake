file(REMOVE_RECURSE
  "CMakeFiles/flash_property_test.dir/flash/flash_property_test.cc.o"
  "CMakeFiles/flash_property_test.dir/flash/flash_property_test.cc.o.d"
  "flash_property_test"
  "flash_property_test.pdb"
  "flash_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
