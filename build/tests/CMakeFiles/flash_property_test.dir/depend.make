# Empty dependencies file for flash_property_test.
# This may be replaced when dependencies are built.
