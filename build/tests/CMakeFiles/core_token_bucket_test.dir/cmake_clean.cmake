file(REMOVE_RECURSE
  "CMakeFiles/core_token_bucket_test.dir/core/token_bucket_test.cc.o"
  "CMakeFiles/core_token_bucket_test.dir/core/token_bucket_test.cc.o.d"
  "core_token_bucket_test"
  "core_token_bucket_test.pdb"
  "core_token_bucket_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_token_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
