# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_simulator_test[1]_include.cmake")
include("/root/repo/build/tests/sim_random_test[1]_include.cmake")
include("/root/repo/build/tests/sim_histogram_test[1]_include.cmake")
include("/root/repo/build/tests/sim_task_test[1]_include.cmake")
include("/root/repo/build/tests/flash_device_test[1]_include.cmake")
include("/root/repo/build/tests/flash_calibration_test[1]_include.cmake")
include("/root/repo/build/tests/net_network_test[1]_include.cmake")
include("/root/repo/build/tests/core_token_bucket_test[1]_include.cmake")
include("/root/repo/build/tests/core_cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/core_qos_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/core_access_control_test[1]_include.cmake")
include("/root/repo/build/tests/core_server_integration_test[1]_include.cmake")
include("/root/repo/build/tests/client_page_cache_test[1]_include.cmake")
include("/root/repo/build/tests/client_block_device_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/apps_fio_test[1]_include.cmake")
include("/root/repo/build/tests/apps_graph_test[1]_include.cmake")
include("/root/repo/build/tests/apps_kv_test[1]_include.cmake")
include("/root/repo/build/tests/flash_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_scheduler_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_control_plane_test[1]_include.cmake")
include("/root/repo/build/tests/core_e2e_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_barrier_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stats_test[1]_include.cmake")
include("/root/repo/build/tests/core_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/flash_modes_test[1]_include.cmake")
