file(REMOVE_RECURSE
  "CMakeFiles/reflex_sim_lib.dir/histogram.cc.o"
  "CMakeFiles/reflex_sim_lib.dir/histogram.cc.o.d"
  "CMakeFiles/reflex_sim_lib.dir/logging.cc.o"
  "CMakeFiles/reflex_sim_lib.dir/logging.cc.o.d"
  "CMakeFiles/reflex_sim_lib.dir/random.cc.o"
  "CMakeFiles/reflex_sim_lib.dir/random.cc.o.d"
  "CMakeFiles/reflex_sim_lib.dir/simulator.cc.o"
  "CMakeFiles/reflex_sim_lib.dir/simulator.cc.o.d"
  "libreflex_sim_lib.a"
  "libreflex_sim_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_sim_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
