# Empty dependencies file for reflex_sim_lib.
# This may be replaced when dependencies are built.
