file(REMOVE_RECURSE
  "libreflex_sim_lib.a"
)
