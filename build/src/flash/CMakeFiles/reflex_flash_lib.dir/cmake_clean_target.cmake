file(REMOVE_RECURSE
  "libreflex_flash_lib.a"
)
