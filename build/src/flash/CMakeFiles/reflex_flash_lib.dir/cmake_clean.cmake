file(REMOVE_RECURSE
  "CMakeFiles/reflex_flash_lib.dir/calibration.cc.o"
  "CMakeFiles/reflex_flash_lib.dir/calibration.cc.o.d"
  "CMakeFiles/reflex_flash_lib.dir/device_profile.cc.o"
  "CMakeFiles/reflex_flash_lib.dir/device_profile.cc.o.d"
  "CMakeFiles/reflex_flash_lib.dir/flash_device.cc.o"
  "CMakeFiles/reflex_flash_lib.dir/flash_device.cc.o.d"
  "libreflex_flash_lib.a"
  "libreflex_flash_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_flash_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
