# Empty compiler generated dependencies file for reflex_flash_lib.
# This may be replaced when dependencies are built.
