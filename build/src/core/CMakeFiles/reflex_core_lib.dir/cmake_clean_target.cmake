file(REMOVE_RECURSE
  "libreflex_core_lib.a"
)
