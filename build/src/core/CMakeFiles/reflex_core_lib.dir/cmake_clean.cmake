file(REMOVE_RECURSE
  "CMakeFiles/reflex_core_lib.dir/control_plane.cc.o"
  "CMakeFiles/reflex_core_lib.dir/control_plane.cc.o.d"
  "CMakeFiles/reflex_core_lib.dir/cost_model.cc.o"
  "CMakeFiles/reflex_core_lib.dir/cost_model.cc.o.d"
  "CMakeFiles/reflex_core_lib.dir/dataplane.cc.o"
  "CMakeFiles/reflex_core_lib.dir/dataplane.cc.o.d"
  "CMakeFiles/reflex_core_lib.dir/qos_scheduler.cc.o"
  "CMakeFiles/reflex_core_lib.dir/qos_scheduler.cc.o.d"
  "CMakeFiles/reflex_core_lib.dir/reflex_server.cc.o"
  "CMakeFiles/reflex_core_lib.dir/reflex_server.cc.o.d"
  "libreflex_core_lib.a"
  "libreflex_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
