# Empty compiler generated dependencies file for reflex_core_lib.
# This may be replaced when dependencies are built.
