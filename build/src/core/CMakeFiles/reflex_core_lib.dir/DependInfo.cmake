
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/control_plane.cc" "src/core/CMakeFiles/reflex_core_lib.dir/control_plane.cc.o" "gcc" "src/core/CMakeFiles/reflex_core_lib.dir/control_plane.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/reflex_core_lib.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/reflex_core_lib.dir/cost_model.cc.o.d"
  "/root/repo/src/core/dataplane.cc" "src/core/CMakeFiles/reflex_core_lib.dir/dataplane.cc.o" "gcc" "src/core/CMakeFiles/reflex_core_lib.dir/dataplane.cc.o.d"
  "/root/repo/src/core/qos_scheduler.cc" "src/core/CMakeFiles/reflex_core_lib.dir/qos_scheduler.cc.o" "gcc" "src/core/CMakeFiles/reflex_core_lib.dir/qos_scheduler.cc.o.d"
  "/root/repo/src/core/reflex_server.cc" "src/core/CMakeFiles/reflex_core_lib.dir/reflex_server.cc.o" "gcc" "src/core/CMakeFiles/reflex_core_lib.dir/reflex_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/reflex_flash_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reflex_net_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reflex_sim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
