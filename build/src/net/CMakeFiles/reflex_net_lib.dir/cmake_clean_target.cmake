file(REMOVE_RECURSE
  "libreflex_net_lib.a"
)
