# Empty dependencies file for reflex_net_lib.
# This may be replaced when dependencies are built.
