file(REMOVE_RECURSE
  "CMakeFiles/reflex_net_lib.dir/network.cc.o"
  "CMakeFiles/reflex_net_lib.dir/network.cc.o.d"
  "libreflex_net_lib.a"
  "libreflex_net_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_net_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
