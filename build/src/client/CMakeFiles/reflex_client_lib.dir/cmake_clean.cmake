file(REMOVE_RECURSE
  "CMakeFiles/reflex_client_lib.dir/block_device.cc.o"
  "CMakeFiles/reflex_client_lib.dir/block_device.cc.o.d"
  "CMakeFiles/reflex_client_lib.dir/load_generator.cc.o"
  "CMakeFiles/reflex_client_lib.dir/load_generator.cc.o.d"
  "CMakeFiles/reflex_client_lib.dir/page_cache.cc.o"
  "CMakeFiles/reflex_client_lib.dir/page_cache.cc.o.d"
  "CMakeFiles/reflex_client_lib.dir/reflex_client.cc.o"
  "CMakeFiles/reflex_client_lib.dir/reflex_client.cc.o.d"
  "libreflex_client_lib.a"
  "libreflex_client_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_client_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
