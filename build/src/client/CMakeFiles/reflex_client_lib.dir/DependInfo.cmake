
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/block_device.cc" "src/client/CMakeFiles/reflex_client_lib.dir/block_device.cc.o" "gcc" "src/client/CMakeFiles/reflex_client_lib.dir/block_device.cc.o.d"
  "/root/repo/src/client/load_generator.cc" "src/client/CMakeFiles/reflex_client_lib.dir/load_generator.cc.o" "gcc" "src/client/CMakeFiles/reflex_client_lib.dir/load_generator.cc.o.d"
  "/root/repo/src/client/page_cache.cc" "src/client/CMakeFiles/reflex_client_lib.dir/page_cache.cc.o" "gcc" "src/client/CMakeFiles/reflex_client_lib.dir/page_cache.cc.o.d"
  "/root/repo/src/client/reflex_client.cc" "src/client/CMakeFiles/reflex_client_lib.dir/reflex_client.cc.o" "gcc" "src/client/CMakeFiles/reflex_client_lib.dir/reflex_client.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reflex_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/reflex_flash_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reflex_net_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reflex_sim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
