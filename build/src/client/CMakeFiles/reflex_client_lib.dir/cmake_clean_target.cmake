file(REMOVE_RECURSE
  "libreflex_client_lib.a"
)
