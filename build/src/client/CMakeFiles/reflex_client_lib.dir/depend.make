# Empty dependencies file for reflex_client_lib.
# This may be replaced when dependencies are built.
