# Empty compiler generated dependencies file for reflex_baseline_lib.
# This may be replaced when dependencies are built.
