
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/kernel_server.cc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/kernel_server.cc.o" "gcc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/kernel_server.cc.o.d"
  "/root/repo/src/baseline/local_nvme_driver.cc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/local_nvme_driver.cc.o" "gcc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/local_nvme_driver.cc.o.d"
  "/root/repo/src/baseline/local_spdk.cc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/local_spdk.cc.o" "gcc" "src/baseline/CMakeFiles/reflex_baseline_lib.dir/local_spdk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/reflex_client_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reflex_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/reflex_flash_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reflex_net_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reflex_sim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
