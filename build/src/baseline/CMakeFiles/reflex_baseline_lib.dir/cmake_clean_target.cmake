file(REMOVE_RECURSE
  "libreflex_baseline_lib.a"
)
