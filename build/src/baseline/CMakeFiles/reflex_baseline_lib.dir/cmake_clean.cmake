file(REMOVE_RECURSE
  "CMakeFiles/reflex_baseline_lib.dir/kernel_server.cc.o"
  "CMakeFiles/reflex_baseline_lib.dir/kernel_server.cc.o.d"
  "CMakeFiles/reflex_baseline_lib.dir/local_nvme_driver.cc.o"
  "CMakeFiles/reflex_baseline_lib.dir/local_nvme_driver.cc.o.d"
  "CMakeFiles/reflex_baseline_lib.dir/local_spdk.cc.o"
  "CMakeFiles/reflex_baseline_lib.dir/local_spdk.cc.o.d"
  "libreflex_baseline_lib.a"
  "libreflex_baseline_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_baseline_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
