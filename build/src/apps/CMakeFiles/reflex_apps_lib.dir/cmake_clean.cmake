file(REMOVE_RECURSE
  "CMakeFiles/reflex_apps_lib.dir/fio/fio.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/fio/fio.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/graph/engine.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/graph/engine.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/graph/graph_gen.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/graph/graph_gen.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/graph/graph_store.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/graph/graph_store.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/kv/db_bench.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/kv/db_bench.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/kv/kv_store.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/kv/kv_store.cc.o.d"
  "CMakeFiles/reflex_apps_lib.dir/kv/sstable.cc.o"
  "CMakeFiles/reflex_apps_lib.dir/kv/sstable.cc.o.d"
  "libreflex_apps_lib.a"
  "libreflex_apps_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reflex_apps_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
