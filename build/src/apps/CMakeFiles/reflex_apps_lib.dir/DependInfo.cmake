
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fio/fio.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/fio/fio.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/fio/fio.cc.o.d"
  "/root/repo/src/apps/graph/engine.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/engine.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/engine.cc.o.d"
  "/root/repo/src/apps/graph/graph_gen.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/graph_gen.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/graph_gen.cc.o.d"
  "/root/repo/src/apps/graph/graph_store.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/graph_store.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/graph/graph_store.cc.o.d"
  "/root/repo/src/apps/kv/db_bench.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/db_bench.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/db_bench.cc.o.d"
  "/root/repo/src/apps/kv/kv_store.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/kv_store.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/kv_store.cc.o.d"
  "/root/repo/src/apps/kv/sstable.cc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/sstable.cc.o" "gcc" "src/apps/CMakeFiles/reflex_apps_lib.dir/kv/sstable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/client/CMakeFiles/reflex_client_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reflex_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/reflex_flash_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/reflex_net_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reflex_sim_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
