file(REMOVE_RECURSE
  "libreflex_apps_lib.a"
)
