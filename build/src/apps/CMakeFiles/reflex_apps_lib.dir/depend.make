# Empty dependencies file for reflex_apps_lib.
# This may be replaced when dependencies are built.
