# Empty dependencies file for fig7c_rocksdb.
# This may be replaced when dependencies are built.
