file(REMOVE_RECURSE
  "CMakeFiles/fig7c_rocksdb.dir/fig7c_rocksdb.cc.o"
  "CMakeFiles/fig7c_rocksdb.dir/fig7c_rocksdb.cc.o.d"
  "fig7c_rocksdb"
  "fig7c_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7c_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
