# Empty dependencies file for fig6a_core_scaling.
# This may be replaced when dependencies are built.
