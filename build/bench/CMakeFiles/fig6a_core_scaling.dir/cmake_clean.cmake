file(REMOVE_RECURSE
  "CMakeFiles/fig6a_core_scaling.dir/fig6a_core_scaling.cc.o"
  "CMakeFiles/fig6a_core_scaling.dir/fig6a_core_scaling.cc.o.d"
  "fig6a_core_scaling"
  "fig6a_core_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_core_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
