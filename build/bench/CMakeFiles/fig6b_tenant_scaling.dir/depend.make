# Empty dependencies file for fig6b_tenant_scaling.
# This may be replaced when dependencies are built.
