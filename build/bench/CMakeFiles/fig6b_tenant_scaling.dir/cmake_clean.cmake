file(REMOVE_RECURSE
  "CMakeFiles/fig6b_tenant_scaling.dir/fig6b_tenant_scaling.cc.o"
  "CMakeFiles/fig6b_tenant_scaling.dir/fig6b_tenant_scaling.cc.o.d"
  "fig6b_tenant_scaling"
  "fig6b_tenant_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_tenant_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
