# Empty compiler generated dependencies file for fig6c_conn_scaling.
# This may be replaced when dependencies are built.
