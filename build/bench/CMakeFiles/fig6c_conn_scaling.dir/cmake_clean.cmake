file(REMOVE_RECURSE
  "CMakeFiles/fig6c_conn_scaling.dir/fig6c_conn_scaling.cc.o"
  "CMakeFiles/fig6c_conn_scaling.dir/fig6c_conn_scaling.cc.o.d"
  "fig6c_conn_scaling"
  "fig6c_conn_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6c_conn_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
