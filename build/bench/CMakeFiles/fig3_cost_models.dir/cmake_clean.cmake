file(REMOVE_RECURSE
  "CMakeFiles/fig3_cost_models.dir/fig3_cost_models.cc.o"
  "CMakeFiles/fig3_cost_models.dir/fig3_cost_models.cc.o.d"
  "fig3_cost_models"
  "fig3_cost_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cost_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
