# Empty compiler generated dependencies file for fig3_cost_models.
# This may be replaced when dependencies are built.
