file(REMOVE_RECURSE
  "CMakeFiles/table2_unloaded_latency.dir/table2_unloaded_latency.cc.o"
  "CMakeFiles/table2_unloaded_latency.dir/table2_unloaded_latency.cc.o.d"
  "table2_unloaded_latency"
  "table2_unloaded_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_unloaded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
