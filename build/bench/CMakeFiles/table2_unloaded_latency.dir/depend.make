# Empty dependencies file for table2_unloaded_latency.
# This may be replaced when dependencies are built.
