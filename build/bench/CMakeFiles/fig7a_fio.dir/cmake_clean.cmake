file(REMOVE_RECURSE
  "CMakeFiles/fig7a_fio.dir/fig7a_fio.cc.o"
  "CMakeFiles/fig7a_fio.dir/fig7a_fio.cc.o.d"
  "fig7a_fio"
  "fig7a_fio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_fio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
