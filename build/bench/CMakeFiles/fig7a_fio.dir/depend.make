# Empty dependencies file for fig7a_fio.
# This may be replaced when dependencies are built.
