file(REMOVE_RECURSE
  "CMakeFiles/ablation_neg_limit.dir/ablation_neg_limit.cc.o"
  "CMakeFiles/ablation_neg_limit.dir/ablation_neg_limit.cc.o.d"
  "ablation_neg_limit"
  "ablation_neg_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_neg_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
