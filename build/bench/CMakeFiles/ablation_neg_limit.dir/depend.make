# Empty dependencies file for ablation_neg_limit.
# This may be replaced when dependencies are built.
