# Empty compiler generated dependencies file for fig7b_flashx.
# This may be replaced when dependencies are built.
