file(REMOVE_RECURSE
  "CMakeFiles/fig7b_flashx.dir/fig7b_flashx.cc.o"
  "CMakeFiles/fig7b_flashx.dir/fig7b_flashx.cc.o.d"
  "fig7b_flashx"
  "fig7b_flashx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_flashx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
