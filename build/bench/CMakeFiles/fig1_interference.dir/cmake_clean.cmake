file(REMOVE_RECURSE
  "CMakeFiles/fig1_interference.dir/fig1_interference.cc.o"
  "CMakeFiles/fig1_interference.dir/fig1_interference.cc.o.d"
  "fig1_interference"
  "fig1_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
