// Reproduces Figure 4: p95 latency vs throughput for 1KB read-only
// requests -- Local (SPDK), ReFlex, and the libaio/libevent baseline,
// each with 1 and 2 server threads.
//
// Paper: one ReFlex core serves up to 850K IOPS; two cores saturate
// the device's 1M IOPS with negligible latency over local access. The
// libaio server manages only ~75K IOPS/core at higher latency. Also
// prints ReFlex's cycle breakdown (section 5.3: ~20% TCP, 2-8% QoS
// scheduling).

#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/kernel_server.h"
#include "baseline/local_spdk.h"
#include "bench/common.h"
#include "client/flash_service.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

void PrintCurve(const char* name, const std::vector<bench::LoadPoint>& pts) {
  for (const bench::LoadPoint& p : pts) {
    std::printf("%-12s %12.0f %12.0f %12.1f %12.1f\n", name,
                p.offered_iops, p.achieved_iops,
                sim::ToMicros(p.read_p95), sim::ToMicros(p.read_mean));
  }
  std::printf("\n");
}

std::vector<double> Sweep(double max_iops) {
  return {0.1 * max_iops, 0.25 * max_iops, 0.4 * max_iops, 0.55 * max_iops,
          0.7 * max_iops, 0.8 * max_iops,  0.9 * max_iops, 0.97 * max_iops};
}

void RunLocal(int threads) {
  bench::BenchWorld world;
  baseline::LocalSpdkService::Options o;
  o.num_threads = threads;
  baseline::LocalSpdkService local(world.sim, world.device, o);
  const double cap = threads == 1 ? 850000.0 : 1140000.0;
  std::vector<bench::LoadPoint> pts;
  for (double offered : Sweep(cap)) {
    pts.push_back(
        bench::MeasureOpenLoop(world, {&local}, offered, 1.0, 2));
  }
  char name[32];
  std::snprintf(name, sizeof(name), "Local-%dT", threads);
  PrintCurve(name, pts);
}

void RunReflex(int threads) {
  core::ServerOptions options;
  options.num_threads = threads;
  bench::BenchWorld world(options);

  // One BE tenant per dataplane thread (a tenant is served by exactly
  // one thread; the paper scales tenants with threads).
  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::ReflexService>> services;
  std::vector<client::FlashService*> svc_ptrs;
  for (int t = 0; t < threads; ++t) {
    core::Tenant* tenant = world.server->RegisterTenant(
        core::SloSpec{}, core::TenantClass::kBestEffort);
    client::ReflexClient::Options copts;
    copts.stack = net::StackCosts::IxDataplane();
    copts.num_connections = 8;
    copts.seed = 100 + t;
    // 1/64 sampling: enough spans for a stable breakdown at ~1M IOPS
    // without perturbing the measurement (tracing charges no simulated
    // CPU time, so achieved IOPS is unchanged; see DESIGN.md).
    copts.trace_sample_every = 64;
    clients.push_back(std::make_unique<client::ReflexClient>(
        world.sim, *world.server,
        world.client_machines[t % world.client_machines.size()], copts));
    sessions.push_back(clients.back()->AttachSession(tenant->handle()));
    services.push_back(
        std::make_unique<client::ReflexService>(*sessions.back()));
    svc_ptrs.push_back(services.back().get());
  }

  const double cap = threads == 1 ? 880000.0 : 1140000.0;
  std::vector<bench::LoadPoint> pts;
  core::DataplaneStats before;
  for (double offered : Sweep(cap)) {
    before = world.server->AggregateStats();  // snapshot before last point
    world.server->tracer().Reset();  // breakdown covers the last point
    pts.push_back(bench::MeasureOpenLoop(world, svc_ptrs, offered, 1.0, 2));
  }
  char name[32];
  std::snprintf(name, sizeof(name), "ReFlex-%dT", threads);
  PrintCurve(name, pts);

  // Cycle breakdown over the highest-load point only (section 5.3
  // quotes shares "at high load").
  const core::DataplaneStats after = world.server->AggregateStats();
  const double busy = static_cast<double>(after.busy_ns - before.busy_ns);
  std::printf(
      "# %s cycle breakdown at peak load: TCP %.1f%%, QoS sched %.1f%%, "
      "flash submit/completion %.1f%% of busy cycles; mean batch %.1f "
      "(paper: ~20%% TCP, 2-8%% sched, batching bounded at 64)\n\n",
      name, 100.0 * (after.tcp_ns - before.tcp_ns) / busy,
      100.0 * (after.sched_ns - before.sched_ns) / busy,
      100.0 * (after.flash_ns - before.flash_ns) / busy,
      static_cast<double>(after.batch_sum - before.batch_sum) /
          static_cast<double>(after.iterations - before.iterations));

  // Per-stage latency breakdown at the same peak-load point, from the
  // 1/64-sampled trace spans.
  char label[32];
  std::snprintf(label, sizeof(label), "reflex_%dt_peak", threads);
  bench::DumpBreakdown(*world.server, "fig4_throughput", label);
  std::printf("\n");
}

void RunLibaio(int threads) {
  bench::BenchWorld world;
  baseline::KernelStorageServer libaio(
      world.sim, world.net, world.client_machines[0], world.server_machine,
      world.device,
      baseline::BaselineCosts::Libaio(net::StackCosts::IxDataplane(),
                                      threads),
      threads * 32, "libaio");
  const double cap = threads * 78000.0;
  std::vector<bench::LoadPoint> pts;
  for (double offered : Sweep(cap)) {
    pts.push_back(
        bench::MeasureOpenLoop(world, {&libaio}, offered, 1.0, 2));
  }
  char name[32];
  std::snprintf(name, sizeof(name), "Libaio-%dT", threads);
  PrintCurve(name, pts);
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 4 - tail latency vs throughput, 1KB read-only",
      "ReFlex ~850K IOPS/core vs libaio ~75K IOPS/core");
  std::printf("%-12s %12s %12s %12s %12s\n", "system", "offered",
              "achieved", "p95_us", "mean_us");
  reflex::RunLocal(1);
  reflex::RunLocal(2);
  reflex::RunReflex(1);
  reflex::RunReflex(2);
  reflex::RunLibaio(1);
  reflex::RunLibaio(2);
  std::printf(
      "Check: ReFlex-1T tracks Local-1T closely and saturates near\n"
      "850K IOPS; ReFlex-2T reaches the device's ~1.1M read-only IOPS;\n"
      "Libaio saturates >10x lower per core.\n");
  return 0;
}
