// Ablation of Algorithm 1's burst parameters: NEG_LIMIT (the paper
// empirically uses -50 tokens "to limit the number of expensive write
// requests in a burst"). Sweep the limit with a fig5-style tenant mix
// and watch the trade-off: too shallow starves bursty LC tenants
// (their reads queue behind token-starved writes); too deep lets LC
// bursts push the device past the SLO operating point and hurts
// everyone's tail.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

void RunPoint(double neg_limit) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.neg_limit = neg_limit;
  bench::BenchWorld world(options);

  // LC tenant with 80/20 mix (bursty 10-token writes), Poisson load.
  core::SloSpec slo;
  slo.iops = 76000;
  slo.read_fraction = 0.8;
  slo.latency = sim::Micros(500);
  core::Tenant* lc = world.server->RegisterTenant(
      slo, core::TenantClass::kLatencyCritical);
  // A greedy BE tenant keeps the device at the cap.
  core::Tenant* be = world.server->RegisterTenant(
      core::SloSpec{}, core::TenantClass::kBestEffort);

  client::ReflexClient::Options copts;
  copts.num_connections = 8;
  client::ReflexClient lc_client(world.sim, *world.server,
                                 world.client_machines[0], copts);
  auto lc_session = lc_client.AttachSession(lc->handle());
  client::LoadGenSpec lc_spec;
  lc_spec.offered_iops = 70000;
  lc_spec.read_fraction = 0.8;
  client::LoadGenerator lc_load(world.sim, *lc_session, lc_spec);

  client::ReflexClient::Options be_copts;
  be_copts.num_connections = 8;
  be_copts.seed = 2;
  client::ReflexClient be_client(world.sim, *world.server,
                                 world.client_machines[1], be_copts);
  auto be_session = be_client.AttachSession(be->handle());
  client::LoadGenSpec be_spec;
  be_spec.queue_depth = 32;
  be_spec.read_fraction = 0.95;
  be_spec.seed = 3;
  client::LoadGenerator be_load(world.sim, *be_session, be_spec);

  lc_load.Run(sim::Millis(100), sim::Millis(500));
  be_load.Run(sim::Millis(100), sim::Millis(500));
  world.Await(lc_load.Done(), sim::Seconds(60));
  world.Await(be_load.Done(), sim::Seconds(60));

  std::printf("%10.0f %12.0f %14.1f %12.0f %14.1f %12lld\n", neg_limit,
              lc_load.AchievedIops(),
              lc_load.read_latency().Percentile(0.95) / 1e3,
              be_load.AchievedIops(),
              be_load.read_latency().Percentile(0.95) / 1e3,
              static_cast<long long>(lc->neg_limit_hits));
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Ablation - NEG_LIMIT burst allowance (paper: -50, empirical)",
      "LC tail vs burst depth with a greedy BE tenant at the cap");
  std::printf("%10s %12s %14s %12s %14s %12s\n", "neg_limit", "lc_iops",
              "lc_p95_us", "be_iops", "be_p95_us", "neg_hits");
  for (double limit : {-0.0, -10.0, -50.0, -150.0, -500.0, -2000.0}) {
    reflex::RunPoint(limit);
  }
  std::printf(
      "\nCheck: shallow limits inflate the LC tail (reads queue behind\n"
      "token-starved writes); very deep limits trade BE latency and can\n"
      "push the device past the SLO point. The sweet spot sits in the\n"
      "-50..-150 range for this device's 10-token writes.\n");
  return 0;
}
