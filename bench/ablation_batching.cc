// Ablation D2: adaptive batching. The paper caps the adaptive batch at
// 64 "to avoid excessive latencies" and credits batching with
// amortizing per-iteration overheads. This bench sweeps the batch cap
// (1 = no batching) and measures single-core peak throughput and p95
// latency at moderate load for 1KB reads.
//
// Expected: cap 1 loses a large fraction of peak IOPS (per-iteration
// costs paid per request); very large caps buy little extra throughput
// but hurt tail latency under load, which is why 64 is a good balance.

#include <cstdio>

#include "bench/common.h"
#include "client/flash_service.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

void RunPoint(int max_batch) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.dataplane.max_batch = max_batch;
  bench::BenchWorld world(options);

  core::Tenant* tenant = world.server->RegisterTenant(
      core::SloSpec{}, core::TenantClass::kBestEffort);
  client::ReflexClient::Options copts;
  copts.stack = net::StackCosts::IxDataplane();
  copts.num_connections = 16;
  client::ReflexClient client(world.sim, *world.server,
                              world.client_machines[0], copts);
  auto session = client.AttachSession(tenant->handle());
  client::ReflexService service(*session);

  // Peak: heavy open-loop overload, count what gets through.
  bench::LoadPoint peak = bench::MeasureOpenLoop(
      world, {&service}, 1200000.0, 1.0, 2, sim::Millis(50),
      sim::Millis(200));
  // Moderate load: 300K IOPS, look at the tail.
  bench::LoadPoint moderate = bench::MeasureOpenLoop(
      world, {&service}, 300000.0, 1.0, 2, sim::Millis(50),
      sim::Millis(200));

  std::printf("%9d %14.0f %18.1f %18.1f\n", max_batch, peak.achieved_iops,
              sim::ToMicros(moderate.read_p95),
              sim::ToMicros(peak.read_p95));
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Ablation D2 - adaptive batching cap (paper: 64)",
      "peak single-core IOPS and p95 latency vs batch cap");
  std::printf("%9s %14s %18s %18s\n", "batch_cap", "peak_iops",
              "p95_us_at_300K", "p95_us_at_peak");
  for (int cap : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    reflex::RunPoint(cap);
  }
  std::printf(
      "\nCheck: no batching (cap 1) sacrifices a large share of peak\n"
      "IOPS; caps beyond 64 add little throughput while increasing the\n"
      "tail under overload -- the paper's 64 balances both.\n");
  return 0;
}
