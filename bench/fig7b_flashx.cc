// Reproduces Figure 7b: FlashX-style out-of-core graph analytics on
// local vs remote Flash. Four algorithms (WCC, PageRank, BFS, SCC) run
// over a synthetic R-MAT graph whose edge lists live on Flash behind a
// SAFS-like page cache (see DESIGN.md for the SOC-LiveJournal1
// substitution).
//
// Paper: ReFlex slows execution by only 1% (WCC) to 3.8% (BFS)
// relative to local Flash; iSCSI costs 15% (PR) to 40% (BFS/SCC).

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/graph/engine.h"
#include "apps/graph/graph_gen.h"
#include "apps/graph/graph_store.h"
#include "baseline/kernel_server.h"
#include "baseline/local_nvme_driver.h"
#include "bench/common.h"
#include "client/block_device.h"
#include "client/storage_backend.h"

namespace reflex {
namespace {

constexpr uint32_t kVertices = 100000;
constexpr uint64_t kEdges = 1600000;

struct AlgoTimes {
  double wcc_ms = 0, pr_ms = 0, bfs_ms = 0, scc_ms = 0;
};

AlgoTimes RunAll(bench::BenchWorld& world, client::StorageBackend& backend,
                 const std::vector<apps::graph::Edge>& edges) {
  auto meta_future = apps::graph::BuildGraphOnFlash(
      world.sim, backend, edges, kVertices, /*base=*/1ULL << 30);
  apps::graph::GraphMeta meta = world.Await(meta_future, sim::Seconds(300));

  apps::graph::GraphEngine::Options options;  // engine defaults
  apps::graph::GraphEngine engine(world.sim, backend, meta, options);
  world.Await(engine.Init(), sim::Seconds(300));

  AlgoTimes t;
  auto wcc = world.Await(engine.RunWcc(), sim::Seconds(600));
  t.wcc_ms = sim::ToMillis(wcc.exec_time);
  auto pr = world.Await(engine.RunPageRank(10), sim::Seconds(600));
  t.pr_ms = sim::ToMillis(pr.exec_time);
  auto bfs = world.Await(engine.RunBfs(0), sim::Seconds(600));
  t.bfs_ms = sim::ToMillis(bfs.exec_time);
  auto scc = world.Await(engine.RunScc(), sim::Seconds(1200));
  t.scc_ms = sim::ToMillis(scc.exec_time);

  std::printf(
      "#   results: wcc_components=%llu pr_checksum=%llu bfs_reached=%llu "
      "scc_count=%llu\n",
      static_cast<unsigned long long>(wcc.result_value),
      static_cast<unsigned long long>(pr.result_value),
      static_cast<unsigned long long>(bfs.result_value),
      static_cast<unsigned long long>(scc.result_value));
  return t;
}

void Run() {
  const std::vector<apps::graph::Edge> edges =
      apps::graph::GenerateRmat(kVertices, kEdges, 2026);

  AlgoTimes local_t;
  {
    bench::BenchWorld world;
    baseline::LocalNvmeDriver::Options o;
    o.num_contexts = 5;
    baseline::LocalNvmeDriver local(world.sim, world.device, o);
    client::ServiceStorageAdapter backend(local, 64ULL << 30);
    std::printf("# Local (kernel NVMe driver)\n");
    local_t = RunAll(world, backend, edges);
  }
  AlgoTimes iscsi_t;
  {
    bench::BenchWorld world;
    baseline::KernelStorageServer iscsi(
        world.sim, world.net, world.client_machines[0],
        world.server_machine, world.device,
        baseline::BaselineCosts::Iscsi(), 12, "iSCSI");
    client::ServiceStorageAdapter backend(iscsi, 64ULL << 30);
    std::printf("# iSCSI\n");
    iscsi_t = RunAll(world, backend, edges);
  }
  AlgoTimes reflex_t;
  {
    bench::BenchWorld world;
    core::Tenant* tenant = world.server->RegisterTenant(
        core::SloSpec{}, core::TenantClass::kBestEffort);
    client::BlockDevice bdev(world.sim, *world.server,
                             world.client_machines[0], tenant->handle(),
                             client::BlockDevice::Options{});
    std::printf("# ReFlex (remote block device)\n");
    reflex_t = RunAll(world, bdev, edges);
  }

  auto print_row = [&](const char* algo, double local_ms, double iscsi_ms,
                       double reflex_ms, double paper_iscsi,
                       double paper_reflex) {
    std::printf(
        "%-6s %10.1f %10.1f %10.1f | slowdown: iSCSI %.2fx (paper "
        "~%.2fx), ReFlex %.2fx (paper ~%.2fx)\n",
        algo, local_ms, iscsi_ms, reflex_ms, iscsi_ms / local_ms,
        paper_iscsi, reflex_ms / local_ms, paper_reflex);
  };
  std::printf("\n%-6s %10s %10s %10s\n", "algo", "local_ms", "iscsi_ms",
              "reflex_ms");
  print_row("WCC", local_t.wcc_ms, iscsi_t.wcc_ms, reflex_t.wcc_ms, 1.25,
            1.01);
  print_row("PR", local_t.pr_ms, iscsi_t.pr_ms, reflex_t.pr_ms, 1.15,
            1.02);
  print_row("BFS", local_t.bfs_ms, iscsi_t.bfs_ms, reflex_t.bfs_ms, 1.40,
            1.04);
  print_row("SCC", local_t.scc_ms, iscsi_t.scc_ms, reflex_t.scc_ms, 1.40,
            1.03);
  std::printf(
      "\nCheck: ReFlex within a few percent of local for every\n"
      "algorithm; iSCSI 15-40%% slower, worst for the random-access\n"
      "BFS/SCC.\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 7b - FlashX-style graph analytics slowdown vs local",
      "WCC / PageRank / BFS / SCC on local, iSCSI and ReFlex");
  reflex::Run();
  return 0;
}
