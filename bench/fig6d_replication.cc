// Replicated rack-scale front end: read tail latency and failover
// re-convergence on an R-way replicated striped cluster (the
// replication + power-of-d steering extension of the paper's
// multi-server deployment, section 5).
//
// Each (N shards, R replicas) config runs four latency-critical
// tenants with Zipfian skew across tenants (offered rate of tenant k
// proportional to 1/(k+1)) and Zipfian stripe popularity within each
// tenant. Reads are steered power-of-two over piggybacked per-shard
// queue-depth hints; writes fan out to every replica. Mid-run one
// replica's machine link is cut for 50ms: writes keep committing on
// the survivors (marking the dead replica dirty), reads steer away
// after the first timeouts, and the binned read p95 must re-converge
// to the 500us SLO before the window ends. The dead shard is
// reinstated (operator resync, out of band) 20ms after the link
// returns.
//
// Emits BENCH_replication.json: per config the steady p95/p99.9, the
// re-convergence time after the kill, and the steering-imbalance
// ratio (max/min reads served per shard).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cluster/cluster_client.h"
#include "sim/fault.h"

namespace reflex {
namespace {

constexpr sim::TimeNs kSloP95 = sim::Micros(500);
constexpr sim::TimeNs kWarmup = sim::Millis(50);
constexpr sim::TimeNs kMeasure = sim::Millis(400);
constexpr sim::TimeNs kKillOffset = sim::Millis(100);  // into measurement
constexpr sim::TimeNs kKillDuration = sim::Millis(50);
constexpr sim::TimeNs kBin = sim::Millis(10);
constexpr int kNumBins = static_cast<int>(kMeasure / kBin);
constexpr int kNumTenants = 4;
constexpr double kPerShardIops = 50000.0;
constexpr double kReadFraction = 0.99;
constexpr double kZipfTheta = 0.99;

struct ConfigResult {
  int shards = 0;
  int replication = 0;
  double achieved_iops = 0.0;
  double p95_us = 0.0;
  double p999_us = 0.0;
  double recovery_ms = 0.0;   // binned p95 back within SLO, from kill
  double imbalance = 0.0;     // max/min reads served across shards
  int64_t reads_failed = 0;
  int64_t writes_failed = 0;
  bool killed = false;
  bool ok = false;
};

/**
 * Open-loop Poisson driver for one tenant session: Zipfian stripe
 * popularity, reads steered by the session, read latency recorded
 * both overall and into 10ms timeline bins for the re-convergence
 * measurement.
 */
class TenantDriver {
 public:
  TenantDriver(sim::Simulator& sim, cluster::ClusterSession& session,
               double iops, uint64_t num_stripes, uint32_t stripe_sectors,
               uint64_t seed, uint64_t salt)
      : sim_(sim),
        session_(session),
        rng_(seed, "fig6d_replication"),
        mean_gap_(1e9 / iops),
        num_stripes_(num_stripes),
        stripe_sectors_(stripe_sectors),
        salt_(salt),
        bins_(kNumBins) {}

  void Start(sim::TimeNs warm_end, sim::TimeNs end) {
    warm_end_ = warm_end;
    end_ = end;
    ScheduleNext();
  }

  bool Idle() const { return outstanding_ == 0; }
  int64_t ops_in_window() const { return ops_in_window_; }
  int64_t reads_failed() const { return reads_failed_; }
  int64_t writes_failed() const { return writes_failed_; }
  const sim::Histogram& read_hist() const { return read_hist_; }
  const sim::Histogram& bin(int i) const { return bins_[i]; }

 private:
  void ScheduleNext() {
    const auto gap =
        static_cast<sim::TimeNs>(rng_.NextExponential(mean_gap_));
    sim_.ScheduleAfter(gap, [this] {
      if (sim_.Now() >= end_) return;
      ++outstanding_;
      IssueOne();
      ScheduleNext();
    });
  }

  sim::Task IssueOne() {
    // Zipf popularity over stripes, scrambled by a per-tenant salt:
    // each tenant has its own hot set (Fisher-scramble of the rank),
    // so the skew stresses the steering without four tenants piling
    // onto the same few flash dies.
    const uint64_t rank = rng_.NextZipf(num_stripes_, kZipfTheta);
    const uint64_t stripe = (rank * 2654435761ULL + salt_) % num_stripes_;
    const uint64_t lba =
        stripe * stripe_sectors_ +
        rng_.NextBounded(stripe_sectors_ / 8) * 8;
    const bool is_read = rng_.NextBernoulli(kReadFraction);
    // Branch with if/else, NOT `co_await (is_read ? Read : Write)`:
    // under GCC 12 the conditional inside a co_await materializes
    // BOTH operand futures, silently issuing a write alongside every
    // read (10 extra tokens per op, which throttles the tenant to a
    // fraction of its reservation).
    client::IoResult r;
    if (is_read) {
      r = co_await session_.Read(lba, 8);
    } else {
      r = co_await session_.Write(lba, 8);
    }
    --outstanding_;
    if (!r.ok()) {
      (is_read ? reads_failed_ : writes_failed_) += 1;
      co_return;
    }
    if (r.complete_time < warm_end_ || r.complete_time >= end_) co_return;
    ++ops_in_window_;
    if (is_read && r.issue_time >= warm_end_) {
      read_hist_.Record(r.Latency());
      const int b = static_cast<int>((r.complete_time - warm_end_) / kBin);
      if (b >= 0 && b < kNumBins) bins_[b].Record(r.Latency());
    }
  }

  sim::Simulator& sim_;
  cluster::ClusterSession& session_;
  sim::Rng rng_;
  double mean_gap_;
  uint64_t num_stripes_;
  uint32_t stripe_sectors_;
  uint64_t salt_;
  sim::TimeNs warm_end_ = 0;
  sim::TimeNs end_ = 0;
  int64_t outstanding_ = 0;
  int64_t ops_in_window_ = 0;
  int64_t reads_failed_ = 0;
  int64_t writes_failed_ = 0;
  sim::Histogram read_hist_;
  std::vector<sim::Histogram> bins_;
};

struct Tenant {
  std::unique_ptr<cluster::ClusterClient> client;
  std::unique_ptr<cluster::ClusterSession> session;
  std::unique_ptr<TenantDriver> driver;
};

ConfigResult RunConfig(int num_shards, int replication) {
  sim::Simulator sim;
  net::Network net(sim);

  cluster::FlashClusterOptions options;
  options.num_shards = num_shards;
  options.calibration = bench::CalibrationA();
  options.shard_map.replication = replication;
  // Mixed LC load: the default burst allowance cannot absorb runs of
  // 10-token writes without queueing the tenant's reads behind them
  // (same knob and rationale as fig5_qos).
  options.server.qos.neg_limit = -150.0;
  cluster::FlashCluster flash_cluster(sim, net, options);

  const uint32_t stripe_sectors =
      flash_cluster.shard_map().options().stripe_sectors;
  const uint64_t num_stripes =
      flash_cluster.shard_map().capacity_sectors() / stripe_sectors;

  // Zipfian tenant skew: tenant k's offered rate is proportional to
  // 1/(k+1); together they offer kPerShardIops per shard.
  double weight_sum = 0.0;
  for (int k = 0; k < kNumTenants; ++k) weight_sum += 1.0 / (k + 1);
  const double total_iops = num_shards * kPerShardIops;

  std::vector<Tenant> tenants;
  std::vector<double> rates;
  for (int k = 0; k < kNumTenants; ++k) {
    const double rate = total_iops * (1.0 / (k + 1)) / weight_sum;
    rates.push_back(rate);

    // The reservation needs headroom over the offered rate (an
    // open-loop tenant offered exactly its token reservation queues
    // without bound) and must cover the write fan-out: every write
    // spends write tokens on R shards, not one, so the registered
    // mix over-weights writes by the replication factor.
    //
    // Replicated configs additionally provision for failover: when a
    // replica dies, its read load redistributes across the N-1
    // survivors, so each shard must reserve N/(N-1) of its steady
    // share or the survivors run a token deficit for the whole kill
    // window (queues blow past the client timeout and retransmits
    // amplify the overload).
    const bool plans_kill = std::min(replication, num_shards) > 1;
    const double failover_headroom =
        plans_kill ? static_cast<double>(num_shards) / (num_shards - 1) : 1.0;
    core::SloSpec slo;
    slo.iops = static_cast<uint32_t>(rate * 1.3 * failover_headroom);
    slo.read_fraction = 1.0 - (1.0 - kReadFraction) * replication;
    slo.latency = kSloP95;
    cluster::AdmitResult admit;
    cluster::ClusterTenant tenant =
        flash_cluster.control_plane().RegisterTenant(
            slo, core::TenantClass::kLatencyCritical, &admit);
    if (!tenant.valid()) {
      std::fprintf(stderr,
                   "tenant %d inadmissible at N=%d R=%d: %s (shard %d)\n",
                   k, num_shards, replication,
                   cluster::AdmitKindName(admit.kind), admit.shard);
      std::abort();
    }

    Tenant t;
    cluster::ClusterClient::Options copts;
    copts.client.stack = net::StackCosts::IxDataplane();
    copts.client.num_connections = 2;
    copts.client.seed = 1000 + k;
    copts.client.retry.request_timeout = sim::Millis(2);
    copts.client.retry.max_retries = 5;
    copts.client.retry.backoff_base = sim::Micros(100);
    copts.client.retry.reconnect_after_timeouts = 2;
    copts.steering = cluster::SteeringPolicy::kPowerOfTwo;
    t.client = std::make_unique<cluster::ClusterClient>(
        flash_cluster, net.AddMachine("client-" + std::to_string(k)),
        copts);
    t.session = t.client->AttachSession(tenant);
    if (t.session == nullptr) {
      std::fprintf(stderr, "cluster session refused\n");
      std::abort();
    }
    t.driver = std::make_unique<TenantDriver>(
        sim, *t.session, rate, num_stripes, stripe_sectors, 7000 + k,
        1 + static_cast<uint64_t>(k) * 7919);
    tenants.push_back(std::move(t));
  }

  // Kill one replica mid-run: its machine link drops for the window,
  // so in-flight and new sub-I/Os to it are lost until it returns.
  ConfigResult result;
  result.shards = num_shards;
  result.replication = replication;
  result.killed = std::min(replication, num_shards) > 1;
  const int kill_shard = num_shards - 1;
  const sim::TimeNs kill_start = kWarmup + kKillOffset;
  sim::FaultPlan plan(sim, 77);
  net.SetFaultPlan(&plan);
  if (result.killed) {
    plan.ScheduleWindow(
        sim::FaultKind::kNetLinkFlap, kill_start, kKillDuration,
        static_cast<uint64_t>(flash_cluster.machine(kill_shard)->id()));
    // Reinstate once the link is back and the operator has resynced
    // the missed writes out of band; until then the dirty mark keeps
    // reads off the stale copy.
    sim.ScheduleAfter(kill_start + kKillDuration + sim::Millis(20),
                      [&tenants, kill_shard] {
                        for (Tenant& t : tenants) {
                          t.client->ReinstateShard(kill_shard);
                        }
                      });
  }

  const sim::TimeNs end = kWarmup + kMeasure;
  for (Tenant& t : tenants) t.driver->Start(kWarmup, end);
  auto idle = [&tenants] {
    for (const Tenant& t : tenants) {
      if (!t.driver->Idle()) return false;
    }
    return true;
  };
  while ((sim.Now() < end || !idle()) && sim.Now() < end + sim::Seconds(5)) {
    sim.RunUntil(sim.Now() + sim::Millis(1));
  }

  // Aggregate: overall read tail, per-bin p95 timeline, per-shard
  // reads served.
  sim::Histogram all_reads;
  int64_t ops = 0;
  for (const Tenant& t : tenants) {
    all_reads.Merge(t.driver->read_hist());
    ops += t.driver->ops_in_window();
    result.reads_failed += t.driver->reads_failed();
    result.writes_failed += t.driver->writes_failed();
  }
  result.achieved_iops = static_cast<double>(ops) / sim::ToSeconds(kMeasure);
  result.p95_us = all_reads.Percentile(0.95) / 1e3;
  result.p999_us = all_reads.Percentile(0.999) / 1e3;

  const int kill_bin = static_cast<int>(kKillOffset / kBin);
  int last_over = -1;
  for (int b = 0; b < kNumBins; ++b) {
    sim::Histogram merged;
    for (const Tenant& t : tenants) merged.Merge(t.driver->bin(b));
    const bool over =
        merged.Count() > 0 && merged.Percentile(0.95) > kSloP95;
    if (over && b >= kill_bin) last_over = b;
  }
  result.recovery_ms =
      result.killed && last_over >= 0
          ? sim::ToSeconds((last_over + 1) * kBin - kKillOffset) * 1e3
          : 0.0;

  int64_t served_min = 0;
  int64_t served_max = 0;
  for (int s = 0; s < num_shards; ++s) {
    int64_t served = 0;
    for (const Tenant& t : tenants) served += t.session->shard_reads_served(s);
    served_min = s == 0 ? served : std::min(served_min, served);
    served_max = std::max(served_max, served);
  }
  result.imbalance =
      served_min > 0 ? static_cast<double>(served_max) / served_min : 1e9;

  // Pass: no failed I/O, steady tail within SLO, and -- when a
  // replica was killed -- the binned p95 back within SLO before the
  // measurement ends, with steering spreading reads across shards.
  const double window_ms =
      sim::ToSeconds(kMeasure - kKillOffset) * 1e3;
  result.ok = result.reads_failed == 0 && result.writes_failed == 0 &&
              result.recovery_ms < window_ms &&
              (!result.killed || result.imbalance <= 3.0);
  return result;
}

}  // namespace
}  // namespace reflex

int main() {
  using reflex::ConfigResult;
  reflex::bench::Banner(
      "Figure 6d (replicated) - R-way replication with power-of-two "
      "steering",
      "reads steer around a killed replica; p95 re-converges to SLO");
  std::printf("%7s %5s %14s %8s %9s %12s %10s %7s\n", "shards", "repl",
              "achieved_iops", "p95_us", "p999_us", "recovery_ms",
              "imbalance", "ok");

  std::vector<ConfigResult> results;
  bool all_ok = true;
  // (4,1) is the unreplicated baseline (no kill window: with a single
  // copy a dead shard simply loses its data, as pre-replication).
  for (auto [n, r] : {std::pair<int, int>{4, 1}, {2, 2}, {4, 2}, {4, 3}}) {
    const ConfigResult res = reflex::RunConfig(n, r);
    std::printf("%7d %5d %14.0f %8.1f %9.1f %12.1f %10.2f %7s\n",
                res.shards, res.replication, res.achieved_iops, res.p95_us,
                res.p999_us, res.recovery_ms, res.imbalance,
                res.ok ? "yes" : "NO");
    all_ok = all_ok && res.ok;
    results.push_back(res);
  }

  std::string doc = "{\"bench\":\"fig6d_replication\",\"slo_p95_us\":500,";
  doc += "\"kill_ms\":" + std::to_string(
             static_cast<long long>(reflex::kKillDuration / 1000000));
  doc += ",\"configs\":[";
  char buf[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"shards\":%d,\"replication\":%d,\"achieved_iops\":%.0f,"
        "\"p95_us\":%.1f,\"p999_us\":%.1f,\"recovery_ms\":%.1f,"
        "\"imbalance\":%.2f,\"reads_failed\":%lld,\"writes_failed\":%lld,"
        "\"killed\":%s,\"ok\":%s}",
        i == 0 ? "" : ",", r.shards, r.replication, r.achieved_iops,
        r.p95_us, r.p999_us, r.recovery_ms, r.imbalance,
        static_cast<long long>(r.reads_failed),
        static_cast<long long>(r.writes_failed),
        r.killed ? "true" : "false", r.ok ? "true" : "false");
    doc += buf;
  }
  doc += "]}\n";
  reflex::obs::WriteFile("BENCH_replication.json", doc);
  std::printf("\nwrote BENCH_replication.json\n");

  std::printf(
      "Check: every config completes with zero failed I/Os; killed-\n"
      "replica configs re-converge to the 500us p95 SLO before the\n"
      "window ends and steer reads within a 3x shard imbalance.\n");
  return all_ok ? 0 : 1;
}
