#ifndef REFLEX_BENCH_COMMON_H_
#define REFLEX_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "client/flash_service.h"
#include "core/reflex_server.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "net/network.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/task.h"

namespace reflex::bench {

/** Prints the standard bench banner with the experiment mapping. */
inline void Banner(const char* experiment, const char* paper_summary) {
  std::printf("==============================================================\n");
  std::printf("ReFlex reproduction: %s\n", experiment);
  std::printf("Paper reference: %s\n", paper_summary);
  std::printf("==============================================================\n");
}

/**
 * The calibration used by all server benches: the synthetic fit for
 * device A. Identical to what flash::Calibrate recovers (verified by
 * flash/calibration_test.cc and regenerated live by fig3_cost_models)
 * but instant, keeping every bench's runtime in the measurement
 * itself.
 */
inline flash::CalibrationResult CalibrationA() {
  flash::CalibrationResult c;
  c.write_cost = 10.0;
  c.read_cost_readonly = 0.5;
  c.token_capacity_per_sec = 547000.0;
  c.latency_curve = {
      {54696.4, 28945.0, sim::Micros(145), sim::Micros(113)},
      {109392.7, 58120.0, sim::Micros(162), sim::Micros(121)},
      {164089.1, 86995.0, sim::Micros(178), sim::Micros(126)},
      {218785.5, 115525.0, sim::Micros(199), sim::Micros(137)},
      {273481.9, 144005.0, sim::Micros(223), sim::Micros(150)},
      {328178.2, 172470.0, sim::Micros(260), sim::Micros(166)},
      {355526.4, 186700.0, sim::Micros(291), sim::Micros(179)},
      {382874.6, 201237.5, sim::Micros(348), sim::Micros(199)},
      {410222.8, 215507.5, sim::Micros(397), sim::Micros(210)},
      {437571.0, 229790.0, sim::Micros(614), sim::Micros(248)},
      {464919.2, 244222.5, sim::Micros(909), sim::Micros(287)},
      {492267.4, 258982.5, sim::Micros(1622), sim::Micros(404)},
      {508676.3, 267547.5, sim::Micros(2015), sim::Micros(505)},
      {525085.2, 276207.5, sim::Micros(2785), sim::Micros(755)},
      {536024.5, 282335.0, sim::Micros(3113), sim::Micros(924)},
  };
  return c;
}

/** A complete ReFlex deployment for benches. */
struct BenchWorld {
  explicit BenchWorld(core::ServerOptions options = core::ServerOptions(),
                      int num_client_machines = 4, uint64_t seed = 42)
      : net(sim), device(sim, flash::DeviceProfile::DeviceA(), seed) {
    server_machine = net.AddMachine("reflex-server");
    for (int i = 0; i < num_client_machines; ++i) {
      client_machines.push_back(
          net.AddMachine("client-" + std::to_string(i)));
    }
    server = std::make_unique<core::ReflexServer>(
        sim, net, server_machine, device, CalibrationA(), options);
  }

  /** Steps the simulator until the future resolves. */
  template <typename T>
  T Await(sim::Future<T> future, sim::TimeNs deadline = sim::Seconds(600)) {
    while (!future.Ready() && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + sim::Millis(1));
    }
    if (!future.Ready()) {
      std::fprintf(stderr, "bench deadline exceeded\n");
      std::abort();
    }
    return future.Get();
  }

  void RunFor(sim::TimeNs duration) { sim.RunUntil(sim.Now() + duration); }

  sim::Simulator sim;
  net::Network net;
  flash::FlashDevice device;
  net::Machine* server_machine = nullptr;
  std::vector<net::Machine*> client_machines;
  std::unique_ptr<core::ReflexServer> server;
};

/**
 * Dumps a server's latency-breakdown table in machine-readable form:
 * grep-able CSV rows on stdout, and -- when REFLEX_OBS_DIR is set --
 * a <dir>/<experiment>_<label>.json file with the same table plus the
 * full metrics-registry snapshot.
 */
inline void DumpBreakdown(core::ReflexServer& server,
                          const obs::BreakdownTable& table,
                          const std::string& experiment,
                          const std::string& label) {
  std::printf("%s",
              obs::BreakdownToCsv(table, experiment, label).c_str());
  if (const char* dir = std::getenv("REFLEX_OBS_DIR")) {
    std::string doc = obs::BreakdownToJson(table, experiment, label);
    // Merge breakdown + registry into one document.
    doc.pop_back();  // trailing '}'
    doc += ",\"registry\":";
    doc += obs::RegistryToJson(server.SnapshotMetrics());
    doc += "}";
    obs::WriteFile(std::string(dir) + "/" + experiment + "_" + label +
                       ".json",
                   doc);
  }
}

/** Convenience overload over the collector's current table. */
inline void DumpBreakdown(core::ReflexServer& server,
                          const std::string& experiment,
                          const std::string& label) {
  DumpBreakdown(server, server.tracer().Table(), experiment, label);
}

/**
 * Reconciliation check for the breakdown table: the per-stage interval
 * means must sum to the end-to-end mean (they telescope per span, so
 * any gap indicates a missed stage). Prints and returns the relative
 * error against `e2e_mean_us` (an independently measured end-to-end
 * mean; pass table.total_mean_us to check only internal consistency).
 */
inline double CheckBreakdownReconciles(const obs::BreakdownTable& table,
                                       double e2e_mean_us,
                                       const char* what) {
  const double err =
      e2e_mean_us > 0.0
          ? std::abs(table.stage_sum_us - e2e_mean_us) / e2e_mean_us
          : 0.0;
  std::printf(
      "reconcile,%s: stage_sum=%.3f us vs e2e_mean=%.3f us "
      "(%.3f%% error, %lld spans)\n",
      what, table.stage_sum_us, e2e_mean_us, err * 100.0,
      static_cast<long long>(table.spans));
  return err;
}

/**
 * QD-1 latency probe over any FlashService: issues `samples` random
 * 4KB I/Os one at a time and returns the latency histogram (the
 * methodology of the paper's Table 2 and of mutilate's latency agent).
 */
inline sim::Histogram ProbeLatency(BenchWorld& world,
                                   client::FlashService& service,
                                   bool is_read, int samples,
                                   uint64_t seed = 7) {
  sim::Histogram hist;
  sim::Rng rng(seed, "bench_probe");
  for (int i = 0; i < samples; ++i) {
    const uint64_t lba = rng.NextBounded(4000000) * 8;
    auto f = service.SubmitIo(is_read ? client::IoDesc::Read(lba, 8)
                                      : client::IoDesc::Write(lba, 8));
    hist.Record(world.Await(std::move(f)).Latency());
  }
  return hist;
}

/** Closed-loop saturation driver over a FlashService. */
inline sim::Task SaturationWorker(sim::Simulator& sim,
                                  client::FlashService& service,
                                  sim::TimeNs end, uint32_t sectors,
                                  double read_fraction, int64_t* completed,
                                  uint64_t salt) {
  sim::Rng rng(salt, "bench_saturate");
  while (sim.Now() < end) {
    const uint64_t lba = rng.NextBounded(4000000) * 8;
    const bool is_read = rng.NextBernoulli(read_fraction);
    co_await service.SubmitIo(is_read
                                  ? client::IoDesc::Read(lba, sectors)
                                  : client::IoDesc::Write(lba, sectors));
    ++*completed;
  }
}

/** One measured point of a latency-throughput curve. */
struct LoadPoint {
  double offered_iops = 0.0;
  double achieved_iops = 0.0;
  sim::TimeNs read_p95 = 0;
  sim::TimeNs read_mean = 0;
};

namespace internal {

/** Open-loop Poisson generator over a set of FlashServices. */
class OpenLoopDriver {
 public:
  OpenLoopDriver(sim::Simulator& sim, std::vector<client::FlashService*> svcs,
                 double offered_iops, double read_fraction,
                 uint32_t sectors, uint64_t seed)
      : sim_(sim),
        services_(std::move(svcs)),
        read_fraction_(read_fraction),
        sectors_(sectors),
        rng_(seed, "open_loop_driver"),
        mean_gap_(1e9 / offered_iops) {}

  LoadPoint Measure(sim::TimeNs warmup, sim::TimeNs duration) {
    warm_end_ = sim_.Now() + warmup;
    end_ = warm_end_ + duration;
    ScheduleNext();
    while ((sim_.Now() < end_ || outstanding_ > 0) &&
           sim_.Now() < end_ + sim::Seconds(5)) {
      sim_.RunUntil(sim_.Now() + sim::Millis(1));
    }
    LoadPoint point;
    point.offered_iops = 1e9 / mean_gap_;
    point.achieved_iops =
        static_cast<double>(ops_in_window_) / sim::ToSeconds(end_ - warm_end_);
    point.read_p95 = hist_.Percentile(0.95);
    point.read_mean = static_cast<sim::TimeNs>(hist_.Mean());
    return point;
  }

 private:
  void ScheduleNext() {
    const auto gap = static_cast<sim::TimeNs>(
        rng_.NextExponential(mean_gap_));
    sim_.ScheduleAfter(gap, [this] {
      if (sim_.Now() >= end_) return;
      ++outstanding_;
      IssueOne(services_[next_service_]);
      next_service_ = (next_service_ + 1) % services_.size();
      ScheduleNext();
    });
  }

  sim::Task IssueOne(client::FlashService* service) {
    const bool is_read = rng_.NextBernoulli(read_fraction_);
    const uint64_t lba = rng_.NextBounded(4000000) * 8;
    client::IoResult r = co_await service->SubmitIo(
        is_read ? client::IoDesc::Read(lba, sectors_)
                : client::IoDesc::Write(lba, sectors_));
    --outstanding_;
    if (r.ok() && r.complete_time >= warm_end_ && r.complete_time < end_) {
      ++ops_in_window_;
      if (is_read && r.issue_time >= warm_end_) hist_.Record(r.Latency());
    }
  }

  sim::Simulator& sim_;
  std::vector<client::FlashService*> services_;
  double read_fraction_;
  uint32_t sectors_;
  sim::Rng rng_;
  double mean_gap_;
  sim::TimeNs warm_end_ = 0;
  sim::TimeNs end_ = 0;
  size_t next_service_ = 0;
  int64_t outstanding_ = 0;
  int64_t ops_in_window_ = 0;
  sim::Histogram hist_;
};

}  // namespace internal

/**
 * Measures one open-loop point: `offered_iops` spread round-robin over
 * the given services (Poisson arrivals). Returns achieved throughput
 * and read-latency stats over the window.
 */
inline LoadPoint MeasureOpenLoop(sim::Simulator& sim,
                                 std::vector<client::FlashService*> services,
                                 double offered_iops, double read_fraction,
                                 uint32_t sectors,
                                 sim::TimeNs warmup = sim::Millis(50),
                                 sim::TimeNs duration = sim::Millis(250),
                                 uint64_t seed = 9) {
  internal::OpenLoopDriver driver(sim, std::move(services), offered_iops,
                                  read_fraction, sectors, seed);
  return driver.Measure(warmup, duration);
}

/** Convenience overload over a BenchWorld's simulator. */
inline LoadPoint MeasureOpenLoop(BenchWorld& world,
                                 std::vector<client::FlashService*> services,
                                 double offered_iops, double read_fraction,
                                 uint32_t sectors,
                                 sim::TimeNs warmup = sim::Millis(50),
                                 sim::TimeNs duration = sim::Millis(250),
                                 uint64_t seed = 9) {
  return MeasureOpenLoop(world.sim, std::move(services), offered_iops,
                         read_fraction, sectors, warmup, duration, seed);
}

}  // namespace reflex::bench

#endif  // REFLEX_BENCH_COMMON_H_
