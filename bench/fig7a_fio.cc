// Reproduces Figure 7a: FIO p95 latency vs throughput for 4KB random
// reads through the legacy block-device path -- local kernel NVMe
// driver, Linux iSCSI, and the ReFlex remote block-device driver.
//
// Paper: local reaches ~3000 MB/s with 5 threads; ReFlex scales
// linearly with client threads until it saturates the 10GbE link
// (~1200 MB/s) at ~2x lower latency than iSCSI; iSCSI tops out ~4x
// below ReFlex.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/fio/fio.h"
#include "baseline/kernel_server.h"
#include "baseline/local_nvme_driver.h"
#include "bench/common.h"
#include "client/block_device.h"
#include "client/storage_backend.h"

namespace reflex {
namespace {

void RunCurve(const char* name, bench::BenchWorld& world,
              client::StorageBackend& backend, int threads) {
  std::printf("# %s (%d threads)\n", name, threads);
  for (int qd : {1, 2, 4, 8, 16, 32, 64}) {
    apps::fio::FioJob job;
    job.num_threads = threads;
    job.queue_depth = qd;
    job.block_bytes = 4096;
    job.read_fraction = 1.0;
    job.seed = 42 + qd;
    apps::fio::FioRunner runner(world.sim, backend, job);
    runner.Run(world.sim.Now() + sim::Millis(50),
               world.sim.Now() + sim::Millis(300));
    world.Await(runner.Done(), sim::Seconds(120));
    const apps::fio::FioResult& r = runner.result();
    std::printf("%-10s %4d %12.0f %12.1f %12.1f %12.1f\n", name, qd,
                r.iops, r.iops * 4096 / 1e6,
                r.read_latency.Percentile(0.95) / 1e3,
                r.read_latency.Mean() / 1e3);
  }
  std::printf("\n");
}

void Run() {
  std::printf("%-10s %4s %12s %12s %12s %12s\n", "system", "qd", "iops",
              "MB_per_s", "p95_us", "mean_us");
  {
    bench::BenchWorld world;
    baseline::LocalNvmeDriver::Options o;
    o.num_contexts = 5;  // paper: 5 FIO threads saturate local
    baseline::LocalNvmeDriver local(world.sim, world.device, o);
    client::ServiceStorageAdapter backend(
        local, world.device.profile().capacity_sectors * 512ULL);
    RunCurve("Local", world, backend, 5);
  }
  {
    bench::BenchWorld world;
    baseline::KernelStorageServer iscsi(
        world.sim, world.net, world.client_machines[0],
        world.server_machine, world.device,
        baseline::BaselineCosts::Iscsi(), 12, "iSCSI");
    client::ServiceStorageAdapter backend(
        iscsi, world.device.profile().capacity_sectors * 512ULL);
    RunCurve("iSCSI", world, backend, 3);  // paper: 3 iSCSI threads
  }
  {
    bench::BenchWorld world;
    core::Tenant* tenant = world.server->RegisterTenant(
        core::SloSpec{}, core::TenantClass::kBestEffort);
    client::BlockDevice::Options o;
    o.num_contexts = 6;  // paper: 6 threads to fill 10GbE
    client::BlockDevice bdev(world.sim, *world.server,
                             world.client_machines[0], tenant->handle(),
                             o);
    RunCurve("ReFlex", world, bdev, 6);
  }
  std::printf(
      "Check: Local >> ReFlex > iSCSI in throughput; ReFlex plateaus\n"
      "at the 10GbE line rate (~1200-1250 MB/s) with ~2x lower p95\n"
      "than iSCSI; iSCSI saturates ~4x below ReFlex.\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 7a - FIO 4KB random reads over block devices",
      "p95 latency vs throughput: local NVMe vs iSCSI vs ReFlex");
  reflex::Run();
  return 0;
}
