// Extension bench (paper section 4.1): "Both tail latency and
// throughput will improve when we implement UDP or other,
// lighter-weight transport protocols." Compare the shipped TCP
// dataplane against the UDP option: unloaded 4KB read latency and
// single-core peak 1KB read throughput.

#include <cstdio>

#include "bench/common.h"
#include "client/flash_service.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

void RunTransport(net::Transport transport, const char* name) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.transport = transport;
  bench::BenchWorld world(options);

  core::SloSpec slo;
  slo.iops = 50000;
  slo.read_fraction = 1.0;
  slo.latency = sim::Millis(2);
  core::Tenant* lc = world.server->RegisterTenant(
      slo, core::TenantClass::kLatencyCritical);
  client::ReflexClient::Options copts;
  copts.stack = net::StackCosts::IxDataplane();
  copts.num_connections = 16;
  client::ReflexClient client(world.sim, *world.server,
                              world.client_machines[0], copts);
  auto lc_session = client.AttachSession(lc->handle());
  client::ReflexService lc_service(*lc_session);

  sim::Histogram unloaded =
      bench::ProbeLatency(world, lc_service, true, 400);

  core::Tenant* be = world.server->RegisterTenant(
      core::SloSpec{}, core::TenantClass::kBestEffort);
  // Second tenant over the same client: shares the connection pool.
  auto be_session = client.AttachSession(be->handle());
  client::ReflexService be_service(*be_session);
  bench::LoadPoint peak = bench::MeasureOpenLoop(
      world, {&be_service}, 1300000.0, 1.0, 2, sim::Millis(50),
      sim::Millis(200));

  std::printf("%-6s %14.1f %14.1f %16.0f\n", name, unloaded.Mean() / 1e3,
              unloaded.Percentile(0.95) / 1e3, peak.achieved_iops);
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Extension - lighter transport (paper section 4.1)",
      "TCP (shipped, conservative) vs UDP: latency and peak IOPS");
  std::printf("%-6s %14s %14s %16s\n", "proto", "rd_avg_us", "rd_p95_us",
              "peak_1KB_iops");
  reflex::RunTransport(reflex::net::Transport::kTcp, "TCP");
  reflex::RunTransport(reflex::net::Transport::kUdp, "UDP");
  std::printf(
      "\nCheck: UDP improves both unloaded latency (less protocol\n"
      "processing per message, smaller headers) and peak per-core\n"
      "IOPS, confirming the paper's expectation that TCP is a lower\n"
      "bound on ReFlex performance.\n");
  return 0;
}
