// Elastic cluster under a diurnal load curve (DESIGN.md section 17):
// SLO-aware autoscaling versus a static fleet.
//
// A 24-hour day is compressed to 20ms per hour. One latency-critical
// tenant offers an open-loop Poisson load that follows the classic
// diurnal cosine (trough at 4am, peak at 4pm) over a 64-stripe hot
// range. Two modes run the identical trace:
//
//  - static:    all 4 shards serve the hot range all day (the paper's
//               fixed provisioning -- peak capacity held 24/7);
//  - autoscale: the control plane's scaling loop watches per-shard
//               token utilization and queue-depth hints and resizes
//               the active server set, repacking the hot range with
//               live copy-then-forward migrations (hitless: every
//               resize races the offered load).
//
// Emits BENCH_autoscale.json: per mode the hourly timeline of servers
// in use, offered load and binned read p95, plus the day-average
// server count and scaling-event counts. Pass: no failed I/O in
// either mode, every hourly p95 within the 500us SLO, the autoscaler
// both grew and shrank, and its day-average fleet is meaningfully
// smaller than the static one.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "cluster/cluster_client.h"
#include "cluster/migration.h"

namespace reflex {
namespace {

constexpr sim::TimeNs kSloP95 = sim::Micros(500);
constexpr sim::TimeNs kHour = sim::Millis(20);  // 24h day in 480ms
constexpr int kHours = 24;
constexpr int kNumShards = 4;
constexpr uint64_t kHotStripes = 64;
constexpr uint32_t kStripeSectors = 8;  // cluster default
constexpr double kTroughIops = 12000.0;
constexpr double kPeakIops = 280000.0;
constexpr double kReadFraction = 0.95;
constexpr double kTroughHour = 4.0;  // quietest at 4am, busiest at 4pm

/** Offered IOPS at simulated time `now` on the diurnal cosine. */
double RateAt(sim::TimeNs now) {
  const double hour = static_cast<double>(now) / kHour;
  const double f =
      0.5 * (1.0 - std::cos(2.0 * M_PI * (hour - kTroughHour) / 24.0));
  return kTroughIops + f * (kPeakIops - kTroughIops);
}

struct HourBin {
  double offered_iops = 0.0;
  double avg_servers = 0.0;
  double p95_us = 0.0;
  int64_t reads = 0;
  int64_t failed = 0;
};

struct ModeResult {
  std::string mode;
  double avg_servers = 0.0;
  double p95_us = 0.0;
  double p999_us = 0.0;
  int64_t ops = 0;
  int64_t reads_failed = 0;
  int64_t writes_failed = 0;
  int64_t grow_events = 0;
  int64_t shrink_events = 0;
  int64_t rebalances = 0;
  int64_t rebalances_failed = 0;
  int64_t migrations_committed = 0;
  int64_t migrations_aborted = 0;
  int hours_over_slo = 0;
  std::vector<HourBin> hours;
  bool ok = false;
};

/**
 * Semi-open Poisson driver with a time-varying rate: each gap is drawn
 * from the exponential for the instantaneous diurnal rate, addresses
 * are uniform over the hot stripe range, and read latency lands both
 * in the day-wide histogram and the arrival hour's bin.
 *
 * Arrivals join a client-side FIFO served by at most kMaxInflight
 * concurrent requests (a real front-end's connection pool). Latency is
 * measured from *arrival*, so client-side queueing still shows up in
 * the SLO check -- but the server never sees more than kMaxInflight
 * requests from this tenant at once. A fully open loop turns any
 * latency excursion past the retransmit timeout into a 6x arrival
 * multiplier that outruns the tenant's reserved token rate forever: a
 * metastable congestion collapse no amount of scaling recovers from,
 * and one no flow-controlled client exhibits.
 */
class DiurnalDriver {
 public:
  static constexpr int kMaxInflight = 128;

  DiurnalDriver(sim::Simulator& sim, cluster::ClusterSession& session,
                uint64_t seed)
      : sim_(sim),
        session_(session),
        rng_(seed, "fig_diurnal_autoscale"),
        bins_(kHours) {}

  void Start(sim::TimeNs end) {
    end_ = end;
    ScheduleNext();
  }

  bool Idle() const { return inflight_ == 0 && queue_.empty(); }
  int64_t ops() const { return ops_; }
  int64_t reads_failed() const { return reads_failed_; }
  int64_t writes_failed() const { return writes_failed_; }
  const sim::Histogram& read_hist() const { return read_hist_; }
  const sim::Histogram& bin(int h) const { return bins_[h]; }
  int64_t fails_in_hour(int h) const { return fails_per_hour_[h]; }

 private:
  struct PendingOp {
    sim::TimeNs arrival = 0;
    uint64_t lba = 0;
    bool is_read = true;
  };

  void ScheduleNext() {
    const auto gap = static_cast<sim::TimeNs>(
        rng_.NextExponential(1e9 / RateAt(sim_.Now())));
    sim_.ScheduleAfter(gap, [this] {
      if (sim_.Now() >= end_) return;
      PendingOp op;
      op.arrival = sim_.Now();
      op.lba = rng_.NextBounded(kHotStripes) * kStripeSectors;
      op.is_read = rng_.NextBernoulli(kReadFraction);
      queue_.push_back(op);
      Pump();
      ScheduleNext();
    });
  }

  void Pump() {
    while (inflight_ < kMaxInflight && !queue_.empty()) {
      const PendingOp op = queue_.front();
      queue_.pop_front();
      ++inflight_;
      IssueOne(op);
    }
  }

  sim::Task IssueOne(PendingOp op) {
    // if/else, not `co_await (c ? Read : Write)` -- the conditional
    // materializes both futures under GCC 12 (see fig6d_replication).
    client::IoResult r;
    if (op.is_read) {
      r = co_await session_.Read(op.lba, kStripeSectors);
    } else {
      r = co_await session_.Write(op.lba, kStripeSectors);
    }
    --inflight_;
    Pump();
    const int h = static_cast<int>(op.arrival / kHour);
    if (!r.ok()) {
      (op.is_read ? reads_failed_ : writes_failed_) += 1;
      if (h >= 0 && h < kHours) fails_per_hour_[h] += 1;
      co_return;
    }
    if (r.complete_time >= end_) co_return;
    ++ops_;
    if (op.is_read) {
      // Arrival-to-completion: client-side queue wait counts against
      // the SLO (no coordinated omission).
      const sim::TimeNs latency = r.complete_time - op.arrival;
      read_hist_.Record(latency);
      if (h >= 0 && h < kHours) bins_[h].Record(latency);
    }
  }

  sim::Simulator& sim_;
  cluster::ClusterSession& session_;
  sim::Rng rng_;
  sim::TimeNs end_ = 0;
  std::deque<PendingOp> queue_;
  int inflight_ = 0;
  int64_t ops_ = 0;
  int64_t reads_failed_ = 0;
  int64_t writes_failed_ = 0;
  sim::Histogram read_hist_;
  std::vector<sim::Histogram> bins_;
  std::vector<int64_t> fails_per_hour_ = std::vector<int64_t>(kHours, 0);
};

ModeResult RunMode(bool autoscale) {
  sim::Simulator sim;
  net::Network net(sim);

  cluster::FlashClusterOptions options;
  options.num_shards = kNumShards;
  options.calibration = bench::CalibrationA();
  // Landing slots for the repack: packing all 64 hot stripes onto one
  // shard parks 48 overrides there.
  options.shard_map.migration_slots = 64;
  // Same burst-allowance rationale as fig5_qos/fig6d: runs of 10-token
  // writes must not queue the tenant's reads.
  options.server.qos.neg_limit = -150.0;
  cluster::FlashCluster flash_cluster(sim, net, options);
  cluster::MigrationCoordinator coordinator(flash_cluster, net);

  // Admission covers the 4pm peak with open-loop headroom; capacity is
  // reserved all day in both modes -- the autoscaler saves *servers*,
  // not reservations.
  core::SloSpec slo;
  slo.iops = static_cast<uint32_t>(kPeakIops * 1.3);
  slo.read_fraction = kReadFraction;
  slo.latency = kSloP95;
  cluster::AdmitResult admit;
  cluster::ClusterTenant tenant = flash_cluster.control_plane().RegisterTenant(
      slo, core::TenantClass::kLatencyCritical, &admit);
  if (!tenant.valid()) {
    std::fprintf(stderr, "diurnal tenant inadmissible: %s (shard %d)\n",
                 cluster::AdmitKindName(admit.kind), admit.shard);
    std::abort();
  }

  cluster::ClusterClient::Options copts;
  copts.client.stack = net::StackCosts::IxDataplane();
  copts.client.num_connections = 4;
  copts.client.seed = 4242;
  copts.client.retry.request_timeout = sim::Millis(2);
  copts.client.retry.max_retries = 5;
  copts.client.retry.backoff_base = sim::Micros(100);
  copts.client.retry.reconnect_after_timeouts = 2;
  cluster::ClusterClient client(flash_cluster, net.AddMachine("client-0"),
                                copts);
  auto session = client.AttachSession(tenant);
  if (session == nullptr) {
    std::fprintf(stderr, "cluster session refused\n");
    std::abort();
  }

  if (autoscale) {
    cluster::ClusterControlPlane::AutoscalerOptions aopts;
    aopts.period = sim::Millis(2);
    // Thresholds in token-utilization terms (capacity 547k tokens/s,
    // ~2 tokens per op at this size and read mix): grow past ~33k
    // ops/s on any active shard, shrink below ~22k ops/s on all of
    // them (damped by shrink_persistence against flapping in the
    // band right after a grow).
    aopts.high_utilization = 0.12;
    aopts.low_utilization = 0.08;
    aopts.hot_first_stripe = 0;
    aopts.hot_stripes = kHotStripes;
    flash_cluster.control_plane().StartAutoscaler(coordinator, aopts);
  }

  // Sample the active-set size once per simulated millisecond into the
  // current hour's accumulator (a static fleet reads as a flat N).
  std::vector<double> server_sum(kHours, 0.0);
  std::vector<int> server_samples(kHours, 0);
  const sim::TimeNs day_end = static_cast<sim::TimeNs>(kHours) * kHour;
  std::function<void()> sample = [&] {
    const int h = static_cast<int>(sim.Now() / kHour);
    if (h >= 0 && h < kHours) {
      server_sum[h] += autoscale
                           ? flash_cluster.control_plane().active_shards()
                           : kNumShards;
      server_samples[h] += 1;
    }
    if (sim.Now() + sim::Millis(1) < day_end) {
      sim.ScheduleAfter(sim::Millis(1), sample);
    }
  };
  sim.ScheduleAfter(sim::Millis(1), sample);

  DiurnalDriver driver(sim, *session, 90210);
  driver.Start(day_end);
  while ((sim.Now() < day_end || !driver.Idle()) &&
         sim.Now() < day_end + sim::Seconds(5)) {
    sim.RunUntil(sim.Now() + sim::Millis(1));
  }
  if (autoscale) flash_cluster.control_plane().StopAutoscaler();

  ModeResult result;
  result.mode = autoscale ? "autoscale" : "static";
  result.ops = driver.ops();
  result.reads_failed = driver.reads_failed();
  result.writes_failed = driver.writes_failed();
  result.p95_us = driver.read_hist().Percentile(0.95) / 1e3;
  result.p999_us = driver.read_hist().Percentile(0.999) / 1e3;
  const auto& stats = flash_cluster.control_plane().autoscaler_stats();
  result.grow_events = stats.grow_events;
  result.shrink_events = stats.shrink_events;
  result.rebalances = stats.rebalances;
  result.rebalances_failed = stats.rebalances_failed;
  result.migrations_committed = coordinator.stats().migrations_committed;
  result.migrations_aborted = coordinator.stats().migrations_aborted;

  double server_total = 0.0;
  int samples_total = 0;
  for (int h = 0; h < kHours; ++h) {
    HourBin bin;
    bin.offered_iops = RateAt(h * kHour + kHour / 2);
    bin.avg_servers = server_samples[h] > 0
                          ? server_sum[h] / server_samples[h]
                          : kNumShards;
    bin.reads = driver.bin(h).Count();
    bin.failed = driver.fails_in_hour(h);
    bin.p95_us = bin.reads > 0 ? driver.bin(h).Percentile(0.95) / 1e3 : 0.0;
    if (bin.reads > 0 && bin.p95_us > sim::ToSeconds(kSloP95) * 1e6) {
      ++result.hours_over_slo;
    }
    server_total += server_sum[h];
    samples_total += server_samples[h];
    result.hours.push_back(bin);
  }
  result.avg_servers =
      samples_total > 0 ? server_total / samples_total : kNumShards;

  result.ok = result.reads_failed == 0 && result.writes_failed == 0 &&
              result.hours_over_slo == 0;
  if (autoscale) {
    // The whole point: scale down through the night, back up for the
    // day, and bank a meaningfully smaller average fleet -- hitless.
    result.ok = result.ok && result.grow_events >= 1 &&
                result.shrink_events >= 1 &&
                result.avg_servers <= 0.8 * kNumShards;
  }
  return result;
}

}  // namespace
}  // namespace reflex

int main() {
  using reflex::HourBin;
  using reflex::ModeResult;
  reflex::bench::Banner(
      "Elastic cluster - SLO-aware autoscaling over a diurnal day",
      "live migration resizes the active set; static fleets hold peak "
      "capacity 24/7");

  std::vector<ModeResult> results;
  bool all_ok = true;
  for (bool autoscale : {false, true}) {
    ModeResult res = reflex::RunMode(autoscale);
    std::printf(
        "\nmode=%s avg_servers=%.2f p95=%.1fus p999=%.1fus ops=%lld "
        "failed=%lld/%lld grow=%lld shrink=%lld rebalances=%lld "
        "(failed %lld) committed=%lld aborted=%lld hours_over_slo=%d %s\n",
        res.mode.c_str(), res.avg_servers, res.p95_us, res.p999_us,
        static_cast<long long>(res.ops),
        static_cast<long long>(res.reads_failed),
        static_cast<long long>(res.writes_failed),
        static_cast<long long>(res.grow_events),
        static_cast<long long>(res.shrink_events),
        static_cast<long long>(res.rebalances),
        static_cast<long long>(res.rebalances_failed),
        static_cast<long long>(res.migrations_committed),
        static_cast<long long>(res.migrations_aborted), res.hours_over_slo,
        res.ok ? "ok" : "NOT-OK");
    std::printf("%5s %13s %9s %8s %7s %7s\n", "hour", "offered_iops",
                "servers", "p95_us", "reads", "failed");
    for (int h = 0; h < reflex::kHours; ++h) {
      const HourBin& bin = res.hours[static_cast<size_t>(h)];
      std::printf("%5d %13.0f %9.2f %8.1f %7lld %7lld\n", h,
                  bin.offered_iops, bin.avg_servers, bin.p95_us,
                  static_cast<long long>(bin.reads),
                  static_cast<long long>(bin.failed));
    }
    all_ok = all_ok && res.ok;
    results.push_back(std::move(res));
  }

  std::string doc = "{\"bench\":\"fig_diurnal_autoscale\",";
  doc += "\"slo_p95_us\":500,\"hours\":24,\"hour_ms\":20,\"shards\":4,";
  doc += "\"modes\":[";
  char buf[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    std::snprintf(
        buf, sizeof buf,
        "%s{\"mode\":\"%s\",\"avg_servers\":%.2f,\"p95_us\":%.1f,"
        "\"p999_us\":%.1f,\"ops\":%lld,\"reads_failed\":%lld,"
        "\"writes_failed\":%lld,\"grow_events\":%lld,"
        "\"shrink_events\":%lld,\"rebalances\":%lld,"
        "\"hours_over_slo\":%d,\"ok\":%s,\"hourly\":[",
        i == 0 ? "" : ",", r.mode.c_str(), r.avg_servers, r.p95_us,
        r.p999_us, static_cast<long long>(r.ops),
        static_cast<long long>(r.reads_failed),
        static_cast<long long>(r.writes_failed),
        static_cast<long long>(r.grow_events),
        static_cast<long long>(r.shrink_events),
        static_cast<long long>(r.rebalances), r.hours_over_slo,
        r.ok ? "true" : "false");
    doc += buf;
    for (size_t h = 0; h < r.hours.size(); ++h) {
      const HourBin& bin = r.hours[h];
      std::snprintf(buf, sizeof buf,
                    "%s{\"hour\":%zu,\"offered_iops\":%.0f,"
                    "\"servers\":%.2f,\"p95_us\":%.1f,\"reads\":%lld}",
                    h == 0 ? "" : ",", h, bin.offered_iops,
                    bin.avg_servers, bin.p95_us,
                    static_cast<long long>(bin.reads));
      doc += buf;
    }
    doc += "]}";
  }
  doc += "]}\n";
  reflex::obs::WriteFile("BENCH_autoscale.json", doc);
  std::printf("\nwrote BENCH_autoscale.json\n");

  std::printf(
      "Check: both modes finish the compressed day with zero failed\n"
      "I/Os and every hourly read p95 within the 500us SLO; the\n"
      "autoscaler grows and shrinks the active set and averages well\n"
      "under the static fleet of 4.\n");
  return all_ok ? 0 : 1;
}
