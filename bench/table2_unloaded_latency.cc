// Reproduces Table 2: unloaded latency for 4KB random I/Os (QD 1),
// including round-trip network latency for client and server.
//
// Paper values (us, avg / p95):
//   Local (SPDK)            reads  78 /  90   writes  11 /  17
//   iSCSI                   reads 211 / 251   writes 155 / 215
//   Libaio (Linux client)   reads 183 / 205   writes 180 / 205
//   Libaio (IX client)      reads 121 / 139   writes 117 / 144
//   ReFlex (Linux client)   reads 117 / 135   writes  58 /  64
//   ReFlex (IX client)      reads  99 / 113   writes  31 /  34
//   (NVMe-over-Fabrics, quoted: ~8us over local on faster hardware.)

#include <cstdio>
#include <memory>

#include "baseline/kernel_server.h"
#include "baseline/local_spdk.h"
#include "bench/common.h"
#include "client/flash_service.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

struct Row {
  const char* name;
  double paper_read_avg, paper_read_p95;
  double paper_write_avg, paper_write_p95;
};

void Measure(bench::BenchWorld& world, client::FlashService& service,
             const Row& row, int samples) {
  sim::Histogram reads =
      bench::ProbeLatency(world, service, /*is_read=*/true, samples);
  sim::Histogram writes =
      bench::ProbeLatency(world, service, /*is_read=*/false, samples);
  std::printf(
      "%-24s %6.0f %6.0f  (paper %3.0f/%3.0f) | %6.0f %6.0f  "
      "(paper %3.0f/%3.0f)\n",
      row.name, reads.Mean() / 1e3, reads.Percentile(0.95) / 1e3,
      row.paper_read_avg, row.paper_read_p95, writes.Mean() / 1e3,
      writes.Percentile(0.95) / 1e3, row.paper_write_avg,
      row.paper_write_p95);
}

void Run() {
  bench::Banner("Table 2 - unloaded Flash latency (4KB random, QD1)",
                "avg and p95 for local, iSCSI, libaio and ReFlex paths");
  const int kSamples = 500;

  bench::BenchWorld world;
  net::Machine* client = world.client_machines[0];

  std::printf("%-24s %6s %6s %18s | %6s %6s\n", "system", "rd_avg",
              "rd_p95", "", "wr_avg", "wr_p95");

  {
    baseline::LocalSpdkService local(world.sim, world.device,
                                     baseline::LocalSpdkService::Options{});
    Measure(world, local, {"Local (SPDK)", 78, 90, 11, 17}, kSamples);
  }
  {
    baseline::KernelStorageServer iscsi(
        world.sim, world.net, client, world.server_machine, world.device,
        baseline::BaselineCosts::Iscsi(), 4, "iSCSI");
    Measure(world, iscsi, {"iSCSI", 211, 251, 155, 215}, kSamples);
  }
  {
    baseline::KernelStorageServer libaio_linux(
        world.sim, world.net, client, world.server_machine, world.device,
        baseline::BaselineCosts::Libaio(net::StackCosts::LinuxBlocking()),
        4, "Libaio (Linux client)");
    Measure(world, libaio_linux, {"Libaio (Linux client)", 183, 205, 180, 205},
            kSamples);
  }
  {
    baseline::KernelStorageServer libaio_ix(
        world.sim, world.net, client, world.server_machine, world.device,
        baseline::BaselineCosts::Libaio(net::StackCosts::IxDataplane()), 4,
        "Libaio (IX client)");
    Measure(world, libaio_ix, {"Libaio (IX client)", 121, 139, 117, 144},
            kSamples);
  }

  // ReFlex: LC tenants sized so a QD-1 probe is never token-paced.
  core::SloSpec read_slo;
  read_slo.iops = 50000;
  read_slo.read_fraction = 1.0;
  read_slo.latency = sim::Millis(2);
  core::Tenant* read_tenant = world.server->RegisterTenant(
      read_slo, core::TenantClass::kLatencyCritical);
  core::SloSpec write_slo;
  write_slo.iops = 45000;
  write_slo.read_fraction = 0.0;
  write_slo.latency = sim::Millis(2);
  core::Tenant* write_tenant = world.server->RegisterTenant(
      write_slo, core::TenantClass::kLatencyCritical);

  auto measure_reflex = [&](net::StackCosts stack, const Row& row,
                            const char* label) {
    client::ReflexClient::Options copts;
    copts.stack = stack;
    copts.num_connections = 1;
    // QD-1 probes: trace every request so the per-stage breakdown
    // covers exactly the probe population.
    copts.trace_sample_every = 1;
    client::ReflexClient rc(world.sim, *world.server, client, copts);
    // Both tenants share the one-connection pool opened by the first
    // session (the dataplane reroutes by tenant handle per request).
    auto rd_session = rc.AttachSession(read_tenant->handle());
    auto wr_session = rc.AttachSession(write_tenant->handle());
    client::ReflexService rd(*rd_session);
    client::ReflexService wr(*wr_session);
    world.server->tracer().Reset();
    sim::Histogram reads = bench::ProbeLatency(world, rd, true, kSamples);
    const obs::BreakdownTable read_table = world.server->tracer().Table();
    world.server->tracer().Reset();
    sim::Histogram writes = bench::ProbeLatency(world, wr, false, kSamples);
    const obs::BreakdownTable write_table = world.server->tracer().Table();
    std::printf(
        "%-24s %6.0f %6.0f  (paper %3.0f/%3.0f) | %6.0f %6.0f  "
        "(paper %3.0f/%3.0f)\n",
        row.name, reads.Mean() / 1e3, reads.Percentile(0.95) / 1e3,
        row.paper_read_avg, row.paper_read_p95, writes.Mean() / 1e3,
        writes.Percentile(0.95) / 1e3, row.paper_write_avg,
        row.paper_write_p95);
    const std::string rd_label = std::string(label) + "_reads";
    const std::string wr_label = std::string(label) + "_writes";
    bench::DumpBreakdown(*world.server, read_table, "table2", rd_label);
    bench::DumpBreakdown(*world.server, write_table, "table2", wr_label);
    bench::CheckBreakdownReconciles(read_table, reads.Mean() / 1e3,
                                    rd_label.c_str());
    bench::CheckBreakdownReconciles(write_table, writes.Mean() / 1e3,
                                    wr_label.c_str());
  };
  measure_reflex(net::StackCosts::LinuxEpoll(),
                 {"ReFlex (Linux client)", 117, 135, 58, 64},
                 "reflex_linux");
  measure_reflex(net::StackCosts::IxDataplane(),
                 {"ReFlex (IX client)", 99, 113, 31, 34}, "reflex_ix");

  std::printf(
      "\nNVMe-over-Fabrics (hardware-accelerated, quoted from [45]):\n"
      "~8us over local Flash on a 40GbE Chelsio NIC + 3.6GHz Haswell --\n"
      "not simulated; included for context as in the paper.\n"
      "\nCheck: ReFlex(IX) adds ~21us to local reads and ~20us to local\n"
      "writes; iSCSI is ~2.8x local read latency.\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::Run();
  return 0;
}
