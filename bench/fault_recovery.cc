// Fault-injection recovery bench: drives a latency-critical tenant at
// a fixed rate through three fault scenarios -- flash media errors,
// a whole-device brownout, and a connection reset -- and reports the
// LC read p95 per 20ms bucket so the SLO reconvergence after each
// fault clears is visible, plus the retry/timeout/error counters the
// fault path maintains in the obs registry.
//
// Faults are injected through sim::FaultPlan (deterministic, seeded);
// the client runs with its RetryPolicy enabled, so reads ride through
// transient errors, writes fail fast with kUnknownOutcome, and reset
// connections are reopened after consecutive timeouts.
//
// Expected: each scenario's p95 is inside the 1ms SLO before the fault
// window [200ms, 300ms), degrades or goes dark during it, and is back
// inside the SLO in the final 100ms. No REFLEX_PANIC anywhere: every
// fault surfaces as a counted, retried or failed request.

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/reflex_client.h"
#include "sim/fault.h"

namespace reflex {
namespace {

using sim::FaultKind;
using sim::Micros;
using sim::Millis;

constexpr sim::TimeNs kRunEnd = Millis(600);
constexpr sim::TimeNs kFaultStart = Millis(200);
constexpr sim::TimeNs kFaultDuration = Millis(100);
constexpr sim::TimeNs kBucket = Millis(20);
constexpr sim::TimeNs kSloP95 = Millis(1);
constexpr double kLcOfferedIops = 50000.0;

/** Per-20ms-bucket latency/error accounting for the LC tenant. */
struct Timeline {
  std::vector<sim::Histogram> lat;
  std::vector<int64_t> errors;

  Timeline()
      : lat(static_cast<size_t>(kRunEnd / kBucket)),
        errors(static_cast<size_t>(kRunEnd / kBucket), 0) {}

  size_t BucketFor(sim::TimeNs t) const {
    const size_t b = static_cast<size_t>(t / kBucket);
    return b < lat.size() ? b : lat.size() - 1;
  }
  void Record(const client::IoResult& r) {
    const size_t b = BucketFor(r.complete_time);
    if (r.ok()) {
      lat[b].Record(r.Latency());
    } else {
      ++errors[b];
    }
  }
};

/**
 * Open-loop paced read load for the LC tenant, recorded per bucket.
 * Pacing (not Poisson) keeps every scenario's arrival sequence
 * identical, so timelines are comparable across fault classes.
 */
class LcDriver {
 public:
  LcDriver(bench::BenchWorld& world, client::TenantSession& session)
      : world_(world),
        session_(session),
        rng_(17, "fault_recovery_lc"),
        gap_(static_cast<sim::TimeNs>(1e9 / kLcOfferedIops)) {}

  void Start() { ScheduleNext(); }
  const Timeline& timeline() const { return timeline_; }
  int64_t outstanding() const { return outstanding_; }

 private:
  void ScheduleNext() {
    world_.sim.ScheduleAfter(gap_, [this] {
      if (world_.sim.Now() < kRunEnd) {
        ++outstanding_;
        IssueOne();
        ScheduleNext();
      }
    });
  }
  sim::Task IssueOne() {
    const uint64_t lba = rng_.NextBounded(4000000) * 8;
    client::IoResult r = co_await session_.Read(lba, 8);
    --outstanding_;
    timeline_.Record(r);
  }

  bench::BenchWorld& world_;
  client::TenantSession& session_;
  sim::Rng rng_;
  sim::TimeNs gap_;
  int64_t outstanding_ = 0;
  Timeline timeline_;
};

/** Closed-loop best-effort load with per-bucket completion counts. */
class BeDriver {
 public:
  BeDriver(bench::BenchWorld& world, client::TenantSession& session)
      : world_(world), session_(session),
        completed_per_bucket_(static_cast<size_t>(kRunEnd / kBucket), 0) {}

  void Start(int workers) {
    for (int i = 0; i < workers; ++i) Worker(1000 + i);
  }
  int64_t outstanding() const { return outstanding_; }
  const std::vector<int64_t>& completed_per_bucket() const {
    return completed_per_bucket_;
  }

 private:
  sim::Task Worker(uint64_t salt) {
    sim::Rng rng(salt, "fault_recovery_be");
    ++outstanding_;
    while (world_.sim.Now() < kRunEnd) {
      const uint64_t lba = rng.NextBounded(4000000) * 8;
      client::IoResult r =
          rng.NextBernoulli(0.5)
              ? co_await session_.Read(lba, 8)
              : co_await session_.Write(lba, 8);
      if (r.ok()) {
        size_t b = static_cast<size_t>(r.complete_time / kBucket);
        if (b >= completed_per_bucket_.size()) {
          b = completed_per_bucket_.size() - 1;
        }
        ++completed_per_bucket_[b];
      }
    }
    --outstanding_;
  }

  bench::BenchWorld& world_;
  client::TenantSession& session_;
  int64_t outstanding_ = 0;
  std::vector<int64_t> completed_per_bucket_;
};

client::ReflexClient::Options RetryingClient(uint64_t seed) {
  client::ReflexClient::Options copts;
  copts.num_connections = 8;
  copts.seed = seed;
  // Timeout above the worst transient queueing a fault can cause
  // (brownout backlog peaks around 20 ms): retries must be triggered
  // by lost or refused requests, never by a slow-but-alive server.
  // A timeout below the in-fault latency turns every request into
  // max_retries wire copies, and that amplified load exceeds the LC
  // token reservation forever -- the queue then never drains even
  // after the fault clears.
  copts.retry.request_timeout = Millis(30);
  copts.retry.max_retries = 4;
  copts.retry.backoff_base = Micros(200);
  copts.retry.reconnect_after_timeouts = 2;
  return copts;
}

double RegistryCounter(core::ReflexServer& server, const char* name) {
  return server.metrics().GetCounter(name)->value();
}

/** p95 over the final 100ms of the run (fault cleared at 300ms). */
sim::TimeNs RecoveredP95(const Timeline& t) {
  sim::Histogram tail;
  const size_t first = static_cast<size_t>((kRunEnd - Millis(100)) / kBucket);
  for (size_t b = first; b < t.lat.size(); ++b) tail.Merge(t.lat[b]);
  return tail.Percentile(0.95);
}

void PrintTimeline(const Timeline& t) {
  std::printf("  %-8s %12s %10s %8s\n", "t_ms", "p95_read_us", "errors",
              "in_slo");
  for (size_t b = 0; b < t.lat.size(); ++b) {
    const int64_t ms = (b * kBucket) / 1000000;
    if (t.lat[b].Count() == 0) {
      std::printf("  %-8lld %12s %10lld %8s\n",
                  static_cast<long long>(ms), "-",
                  static_cast<long long>(t.errors[b]), "-");
      continue;
    }
    const sim::TimeNs p95 = t.lat[b].Percentile(0.95);
    std::printf("  %-8lld %12.1f %10lld %8s\n",
                static_cast<long long>(ms), p95 / 1e3,
                static_cast<long long>(t.errors[b]),
                p95 <= kSloP95 ? "yes" : "NO");
  }
}

void PrintFaultCounters(bench::BenchWorld& world,
                        const client::ReflexClient& lc_client,
                        sim::FaultPlan& plan) {
  std::printf("  obs counters: client_timeouts=%.0f client_retries=%.0f "
              "client_failures=%.0f\n",
              RegistryCounter(*world.server, "client_timeouts"),
              RegistryCounter(*world.server, "client_retries"),
              RegistryCounter(*world.server, "client_failures"));
  std::printf("  net: dropped=%" PRId64 " resets=%" PRId64
              "  flash: read_err=%" PRId64 " write_err=%" PRId64
              " spikes=%" PRId64 "\n",
              world.net.dropped_messages(), world.net.connection_resets(),
              world.device.stats().read_errors,
              world.device.stats().write_errors,
              world.device.stats().latency_spikes);
  std::printf("  client fault stats: reconnects=%" PRId64
              " stale_responses=%" PRId64 "\n",
              lc_client.fault_stats().reconnects,
              lc_client.fault_stats().stale_responses);
  std::printf("  faults injected:");
  for (int k = 0; k < sim::kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (plan.injected(kind) > 0) {
      std::printf(" %s=%" PRId64, sim::FaultKindName(kind),
                  plan.injected(kind));
    }
  }
  std::printf("\n");
}

enum class Scenario { kDeviceError, kBrownout, kConnReset };

const char* ScenarioName(Scenario s) {
  switch (s) {
    case Scenario::kDeviceError: return "device_error";
    case Scenario::kBrownout: return "brownout";
    case Scenario::kConnReset: return "connection_reset";
  }
  return "?";
}

bool RunScenario(Scenario scenario) {
  core::ServerOptions options;
  options.num_threads = 1;
  bench::BenchWorld world(options, /*num_client_machines=*/2);

  sim::FaultPlan plan(world.sim, 77);
  world.device.SetFaultPlan(&plan);
  world.net.SetFaultPlan(&plan);
  world.server->SetFaultPlan(&plan);

  core::ReqStatus status;
  core::Tenant* lc = world.server->RegisterTenant(
      // Reservation well above the 50K offered load: retried reads
      // during an error window cost extra tokens (up to ~2x), and the
      // headroom keeps the amplified demand inside the reservation so
      // the scheduler queue stays bounded.
      {150000, 1.0, kSloP95, 0.95, 4096},
      core::TenantClass::kLatencyCritical, &status);
  if (lc == nullptr) {
    std::fprintf(stderr, "LC tenant inadmissible\n");
    std::abort();
  }
  core::Tenant* be =
      world.server->RegisterTenant({}, core::TenantClass::kBestEffort);

  client::ReflexClient lc_client(world.sim, *world.server,
                                 world.client_machines[0],
                                 RetryingClient(501));
  auto lc_session = lc_client.AttachSession(lc->handle());
  client::ReflexClient be_client(world.sim, *world.server,
                                 world.client_machines[1],
                                 RetryingClient(502));
  auto be_session = be_client.AttachSession(be->handle());

  switch (scenario) {
    case Scenario::kDeviceError:
      // Media errors on a fifth of the dies: reads landing there fail
      // with kDeviceError until the window closes; the client retries
      // them (random LBAs usually re-land on a healthy die).
      for (uint64_t die = 0; die < 16; ++die) {
        plan.ScheduleWindow(FaultKind::kFlashReadError, kFaultStart,
                            kFaultDuration, die);
      }
      break;
    case Scenario::kBrownout:
      // Whole-device slowdown; the control plane sheds BE load for the
      // duration so the LC tenant keeps its reservation.
      plan.set_brownout_slowdown(8.0);
      plan.ScheduleWindow(FaultKind::kFlashBrownout, kFaultStart,
                          kFaultDuration);
      break;
    case Scenario::kConnReset:
      // Every connection the LC client machine transmits on during the
      // window is reset; the library notices via consecutive timeouts
      // and reopens.
      plan.ScheduleWindow(FaultKind::kNetReset, kFaultStart, Millis(1),
                          static_cast<uint64_t>(
                              world.client_machines[0]->id()));
      break;
  }

  LcDriver lc_load(world, *lc_session);
  BeDriver be_load(world, *be_session);
  // 4 closed-loop BE workers: enough to make brownout shedding
  // visible, but intrinsically bounded below the leftover token share
  // so the device runs with latency headroom (a BE pool that soaks the
  // whole cap pins the LC p95 exactly at its SLO by construction).
  lc_load.Start();
  be_load.Start(/*workers=*/4);

  while ((world.sim.Now() < kRunEnd || lc_load.outstanding() > 0 ||
          be_load.outstanding() > 0) &&
         world.sim.Now() < kRunEnd + sim::Seconds(5)) {
    world.sim.RunUntil(world.sim.Now() + Millis(1));
  }

  std::printf("Scenario %s (fault window [%lld ms, %lld ms)):\n",
              ScenarioName(scenario),
              static_cast<long long>(kFaultStart / 1000000),
              static_cast<long long>((kFaultStart + kFaultDuration) /
                                     1000000));
  PrintTimeline(lc_load.timeline());

  if (scenario == Scenario::kBrownout) {
    // BE throughput in thirds: nominal / shed / recovered.
    const auto& per_bucket = be_load.completed_per_bucket();
    const size_t third = per_bucket.size() / 3;
    int64_t phases[3] = {0, 0, 0};
    for (size_t b = 0; b < per_bucket.size(); ++b) {
      phases[b < third ? 0 : (b < 2 * third ? 1 : 2)] += per_bucket[b];
    }
    std::printf("  BE completions: before=%" PRId64 " during=%" PRId64
                " after=%" PRId64 " (shed while browned out)\n",
                phases[0], phases[1], phases[2]);
  }

  PrintFaultCounters(world, lc_client, plan);

  const sim::TimeNs recovered = RecoveredP95(lc_load.timeline());
  const bool ok = recovered > 0 && recovered <= kSloP95;
  std::printf("  recovery: p95 over final 100ms = %.1f us (SLO %.0f us) "
              "=> %s\n\n",
              recovered / 1e3, kSloP95 / 1e3,
              ok ? "RECOVERED" : "STILL DEGRADED");
  return ok;
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Fault injection & recovery (device errors, brownout, conn reset)",
      "LC p95 returns to SLO after each fault class clears; every fault "
      "is counted, none panics");
  bool all_ok = true;
  all_ok &= reflex::RunScenario(reflex::Scenario::kDeviceError);
  all_ok &= reflex::RunScenario(reflex::Scenario::kBrownout);
  all_ok &= reflex::RunScenario(reflex::Scenario::kConnReset);
  std::printf("Check: all three scenarios end RECOVERED; errors stay\n"
              "confined to the fault window; retries/timeouts explain\n"
              "every lost request.\n");
  return all_ok ? 0 : 1;
}
