// Reproduces Figure 3: request cost models for devices A, B and C.
//
// For each device the calibrator (paper section 3.2.1) measures
// saturation throughput across read/write mixes, least-squares fits
// C(write) and C(read, r=100%), and measures the p95-vs-weighted-
// token-rate curve. Plotting latency against *weighted* IOPS collapses
// all mixes and request sizes onto one curve per device -- which is
// what makes a single token rate enforceable by the QoS scheduler.
//
// Paper values: C(write) = 10 / 20 / 16 tokens for devices A / B / C;
// C(read, r=100%) = 0.5 for device A.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex {
namespace {

struct Workload {
  double read_ratio;
  uint32_t bytes;
};

void RunDevice(const std::string& name, double paper_write_cost,
               double paper_read_cost_ro) {
  sim::Simulator sim;
  flash::FlashDevice device(sim, flash::DeviceProfile::ByName(name), 42);

  flash::CalibrationConfig cfg;
  cfg.measure_duration = sim::Millis(250);
  cfg.warmup_duration = sim::Millis(60);
  flash::CalibrationResult calib = flash::Calibrate(sim, device, cfg);

  std::printf("--- Device %s ---\n", name.c_str());
  std::printf("  fitted C(write, r<100%%)  = %6.2f tokens (paper: %.0f)\n",
              calib.write_cost, paper_write_cost);
  std::printf("  fitted C(read,  r=100%%)  = %6.2f tokens (paper: %.2f)\n",
              calib.read_cost_readonly, paper_read_cost_ro);
  std::printf("  token capacity            = %6.0fK tokens/s\n",
              calib.token_capacity_per_sec / 1e3);

  // The collapse: measure several workloads and express load in
  // weighted tokens/s using the fitted costs.
  const std::vector<Workload> workloads = {
      {1.00, 1024}, {1.00, 32768}, {1.00, 4096}, {0.99, 4096},
      {0.95, 4096}, {0.90, 4096},  {0.75, 4096}, {0.50, 4096},
  };
  const std::vector<double> fractions = {0.2, 0.4, 0.6, 0.8, 0.9, 0.97};

  std::printf("  %-14s %16s %14s %12s\n", "workload", "ktokens_per_s",
              "achieved_iops", "p95_read_us");
  for (const Workload& w : workloads) {
    const double pages = (w.bytes + 4095) / 4096;
    const double read_cost =
        w.read_ratio >= 1.0 ? calib.read_cost_readonly : 1.0;
    const double tokens_per_io =
        pages * (w.read_ratio * read_cost +
                 (1.0 - w.read_ratio) * calib.write_cost);
    for (double f : fractions) {
      const double token_rate = f * calib.token_capacity_per_sec;
      const double offered = token_rate / tokens_per_io;
      flash::LatencyPoint p = flash::MeasureOpenLoopPoint(
          sim, device, offered, w.read_ratio, w.bytes, cfg);
      char label[32];
      std::snprintf(label, sizeof(label), "%3.0f%%rd(%uKB)",
                    w.read_ratio * 100, w.bytes / 1024);
      std::printf("  %-14s %16.0f %14.0f %12.1f\n", label,
                  token_rate / 1e3, p.iops, sim::ToMicros(p.read_p95));
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 3 - request cost models (devices A, B, C)",
      "latency collapses onto one curve in weighted-token space");
  reflex::RunDevice("A", 10.0, 0.5);
  reflex::RunDevice("B", 20.0, 1.0);
  reflex::RunDevice("C", 16.0, 0.714);
  std::printf(
      "Check: within each device, all workloads share one latency wall\n"
      "in token space (the collapse that justifies the linear model).\n");
  return 0;
}
