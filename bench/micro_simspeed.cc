// Event-engine speed tracker (ROADMAP: engine rework): replays two
// canonical event patterns -- a fig5-style open-loop QoS workload with
// request timeout watchdogs, and a simtest-style mixed-horizon churn --
// on both the production timer-wheel engine and an in-file replica of
// the original binary-heap engine, then emits BENCH_simspeed.json so
// the events/sec trajectory is tracked per PR.
//
// The heap baseline reproduces the seed implementation's cost profile
// (one std::function per event, O(log n) sift per pop) but via
// std::pop_heap on a vector, without the const_cast move-from-top() UB
// the seed engine had. It has no cancellation, so watchdog timers stay
// queued until they fire and check a completion flag -- exactly the
// dead-event pattern the client library used before TimerHandle.

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "obs/export.h"
#include "sim/logging.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace reflex::bench {
namespace {

/** Replica of the pre-wheel engine: (time, seq) binary heap. */
class HeapEngine {
 public:
  static constexpr bool kCancels = false;
  struct Handle {};

  sim::TimeNs Now() const { return now_; }

  template <typename F>
  Handle ScheduleAt(sim::TimeNs t, F&& fn) {
    heap_.push_back(Event{t, next_seq_++, std::forward<F>(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    if (heap_.size() > peak_) peak_ = heap_.size();
    return Handle{};
  }

  template <typename F>
  Handle ScheduleAfter(sim::TimeNs delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  bool Cancel(Handle&) { return false; }

  void Run() {
    while (!heap_.empty()) PopOne();
  }

  int64_t EventsProcessed() const { return processed_; }
  size_t PeakPendingEvents() const { return peak_; }

 private:
  struct Event {
    sim::TimeNs time;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void PopOne() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }

  sim::TimeNs now_ = 0;
  uint64_t next_seq_ = 0;
  int64_t processed_ = 0;
  size_t peak_ = 0;
  std::vector<Event> heap_;
};

/** The production hierarchical timer wheel behind the same surface. */
class WheelEngine {
 public:
  static constexpr bool kCancels = true;
  using Handle = sim::TimerHandle;

  sim::TimeNs Now() const { return sim_.Now(); }

  template <typename F>
  Handle ScheduleAt(sim::TimeNs t, F&& fn) {
    return sim_.ScheduleAt(t, std::forward<F>(fn));
  }

  template <typename F>
  Handle ScheduleAfter(sim::TimeNs delay, F&& fn) {
    return sim_.ScheduleAfter(delay, std::forward<F>(fn));
  }

  bool Cancel(Handle& h) { return sim_.Cancel(h); }
  void Run() { sim_.Run(); }
  int64_t EventsProcessed() const { return sim_.EventsProcessed(); }
  size_t PeakPendingEvents() const { return sim_.PeakPendingEvents(); }

 private:
  sim::Simulator sim_;
};

struct ScenarioResult {
  int64_t events = 0;
  int64_t completed = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  size_t peak_pending = 0;
};

/**
 * Times `body` kRepeats times and keeps the fastest run: wall-time
 * noise on a shared machine is strictly additive, so the minimum is
 * the noise-robust estimate of what the replay actually costs.
 */
template <typename Fn>
ScenarioResult Timed(Fn&& body) {
  constexpr int kRepeats = 3;
  ScenarioResult best;
  for (int i = 0; i < kRepeats; ++i) {
    const auto start = std::chrono::steady_clock::now();
    ScenarioResult r = body();
    const auto end = std::chrono::steady_clock::now();
    r.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    r.events_per_sec =
        r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3)
                        : 0.0;
    if (i == 0 || r.wall_ms < best.wall_ms) best = r;
  }
  return best;
}

/**
 * Fig5-shaped workload (the canonical scenario): sixteen open-loop
 * tenants issuing requests with exponential gaps, as in the paper's
 * multi-tenant QoS regime. Each request is a three-hop chain (client
 * tx, device service, client rx/completion) guarded by a 100ms timeout
 * watchdog that is cancelled at completion -- the dominant event
 * pattern of every QoS bench once client retries are armed. On the
 * heap engine the watchdogs cannot be cancelled and sit in the queue
 * until expiry (every one of them, since each tenant's issue span is
 * shorter than the timeout), which is exactly what made the seed
 * engine's pending set deep.
 *
 * All random draws happen before the clock starts: the timed region
 * measures the event engine, not the RNG. Determinism makes both
 * engines consume the precomputed values in the same order.
 */
template <typename Engine>
ScenarioResult RunFig5OpenLoop(int64_t requests_per_tenant) {
  constexpr int kTenants = 16;
  const int64_t total = requests_per_tenant * kTenants;
  sim::Rng rng(42, "simspeed_fig5");
  std::vector<sim::TimeNs> gaps(static_cast<size_t>(total));
  std::vector<sim::TimeNs> services(static_cast<size_t>(total));
  for (int64_t i = 0; i < total; ++i) {
    gaps[static_cast<size_t>(i)] =
        static_cast<sim::TimeNs>(rng.NextExponential(/*mean ns=*/1500.0));
    services[static_cast<size_t>(i)] =
        sim::Micros(80) +
        static_cast<sim::TimeNs>(rng.NextBounded(sim::Micros(220)));
  }
  return Timed([&] {
    Engine eng;
    std::vector<uint8_t> done(static_cast<size_t>(total), 0);
    std::vector<typename Engine::Handle> watchdogs(
        static_cast<size_t>(total));
    int64_t completed = 0;
    int64_t timeouts = 0;
    int64_t next_id = 0;
    int64_t next_gap = 0;

    const auto issue = [&](int64_t id) {
      const sim::TimeNs service = services[static_cast<size_t>(id)];
      // Client tx hop, then device service, then completion.
      eng.ScheduleAfter(sim::Micros(2), [&eng, &done, &watchdogs,
                                         &completed, service, id] {
        eng.ScheduleAfter(service, [&eng, &done, &watchdogs, &completed,
                                    id] {
          eng.ScheduleAfter(sim::Micros(1), [&eng, &done, &watchdogs,
                                             &completed, id] {
            done[static_cast<size_t>(id)] = 1;
            ++completed;
            if constexpr (Engine::kCancels) {
              eng.Cancel(watchdogs[static_cast<size_t>(id)]);
            }
          });
        });
      });
      watchdogs[static_cast<size_t>(id)] =
          eng.ScheduleAfter(sim::Millis(100), [&done, &timeouts, id] {
            if (done[static_cast<size_t>(id)] == 0) ++timeouts;
          });
    };

    // One self-rescheduling generator per tenant, as in fig5_qos.
    std::function<void(int64_t)> generate = [&](int64_t left) {
      if (left == 0) return;
      const sim::TimeNs gap = gaps[static_cast<size_t>(next_gap++)];
      eng.ScheduleAfter(gap, [&, left] {
        issue(next_id++);
        generate(left - 1);
      });
    };
    for (int t = 0; t < kTenants; ++t) generate(requests_per_tenant);
    eng.Run();

    REFLEX_CHECK(completed == total);
    REFLEX_CHECK(timeouts == 0);
    ScenarioResult r;
    r.events = eng.EventsProcessed();
    r.completed = completed;
    r.peak_pending = eng.PeakPendingEvents();
    return r;
  });
}

/**
 * Simtest-shaped churn: a fixed window of outstanding events, each
 * rescheduling a successor at a horizon drawn from the simtest mix --
 * mostly sub-microsecond dataplane steps, some millisecond timers,
 * a tail of hundred-millisecond background work. Exercises cascade
 * traffic across every wheel level with a deep steady-state pending
 * set (the heap's worst case: every pop sifts the full depth). As in
 * the fig5 scenario, horizons are drawn before the clock starts.
 */
template <typename Engine>
ScenarioResult RunSimtestMixed(int64_t total_events, int window) {
  sim::Rng rng(7, "simspeed_mixed");
  std::vector<sim::TimeNs> horizons(static_cast<size_t>(total_events));
  for (int64_t i = 0; i < total_events; ++i) {
    const uint64_t r = rng.NextBounded(100);
    sim::TimeNs h;
    if (r < 55) {
      h = static_cast<sim::TimeNs>(rng.NextBounded(800));
    } else if (r < 85) {
      h = static_cast<sim::TimeNs>(rng.NextBounded(sim::Millis(2)));
    } else {
      h = static_cast<sim::TimeNs>(rng.NextBounded(sim::Millis(100)));
    }
    horizons[static_cast<size_t>(i)] = h;
  }
  return Timed([&] {
    Engine eng;
    int64_t fired = 0;
    int64_t budget = total_events;
    int64_t next_horizon = 0;

    std::function<void()> hop = [&] {
      ++fired;
      if (budget > 0) {
        --budget;
        eng.ScheduleAfter(horizons[static_cast<size_t>(next_horizon++)], hop);
      }
    };
    for (int i = 0; i < window && budget > 0; ++i) {
      --budget;
      eng.ScheduleAfter(horizons[static_cast<size_t>(next_horizon++)], hop);
    }
    eng.Run();

    ScenarioResult r;
    r.events = eng.EventsProcessed();
    r.completed = fired;
    r.peak_pending = eng.PeakPendingEvents();
    return r;
  });
}

std::string ResultJson(const ScenarioResult& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"events\":%" PRId64 ",\"completed\":%" PRId64
                ",\"wall_ms\":%.3f,\"events_per_sec\":%.0f,"
                "\"peak_pending\":%zu}",
                r.events, r.completed, r.wall_ms, r.events_per_sec,
                r.peak_pending);
  return buf;
}

void PrintScenario(const char* name, const ScenarioResult& base,
                   const ScenarioResult& wheel, double speedup) {
  std::printf(
      "%-16s heap:  %9" PRId64 " ev %8.1f ms %12.0f ev/s peak %7zu\n",
      name, base.events, base.wall_ms, base.events_per_sec,
      base.peak_pending);
  std::printf(
      "%-16s wheel: %9" PRId64 " ev %8.1f ms %12.0f ev/s peak %7zu "
      "-> %.2fx\n",
      "", wheel.events, wheel.wall_ms, wheel.events_per_sec,
      wheel.peak_pending, speedup);
}

}  // namespace
}  // namespace reflex::bench

int main(int argc, char** argv) {
  using namespace reflex;
  // One knob: a size multiplier (default 1) so CI can shrink or soak
  // runs can grow the replay without code changes.
  const int64_t scale = argc > 1 ? std::atoll(argv[1]) : 1;
  REFLEX_CHECK(scale >= 1);

  std::printf("micro_simspeed: event-engine replay, scale=%" PRId64 "\n",
              scale);

  const int64_t fig5_requests = 50000 * scale;  // per tenant, 16 tenants
  bench::ScenarioResult fig5_heap =
      bench::RunFig5OpenLoop<bench::HeapEngine>(fig5_requests);
  bench::ScenarioResult fig5_wheel =
      bench::RunFig5OpenLoop<bench::WheelEngine>(fig5_requests);
  REFLEX_CHECK(fig5_heap.completed == fig5_wheel.completed);
  const double fig5_speedup =
      fig5_wheel.events_per_sec / fig5_heap.events_per_sec;
  bench::PrintScenario("fig5_open_loop", fig5_heap, fig5_wheel,
                       fig5_speedup);

  const int64_t mixed_events = 1500000 * scale;
  const int mixed_window = 20000;
  bench::ScenarioResult mixed_heap =
      bench::RunSimtestMixed<bench::HeapEngine>(mixed_events, mixed_window);
  bench::ScenarioResult mixed_wheel =
      bench::RunSimtestMixed<bench::WheelEngine>(mixed_events, mixed_window);
  REFLEX_CHECK(mixed_heap.completed == mixed_wheel.completed);
  const double mixed_speedup =
      mixed_wheel.events_per_sec / mixed_heap.events_per_sec;
  bench::PrintScenario("simtest_mixed", mixed_heap, mixed_wheel,
                       mixed_speedup);

  // fig5_open_loop is the canonical scenario: it replays the pattern
  // the engine rework targets (multi-tenant QoS with cancellable
  // watchdogs). simtest_mixed tracks cascade-heavy churn separately.
  std::printf("canonical_speedup,%.2f\n", fig5_speedup);

  std::string doc = "{\"bench\":\"micro_simspeed\",\"scale\":";
  doc += std::to_string(scale);
  doc += ",\"canonical\":\"fig5_open_loop\"";
  doc += ",\"scenarios\":{\"fig5_open_loop\":{\"heap\":";
  doc += bench::ResultJson(fig5_heap);
  doc += ",\"wheel\":";
  doc += bench::ResultJson(fig5_wheel);
  char num[64];
  std::snprintf(num, sizeof num, ",\"speedup\":%.2f}", fig5_speedup);
  doc += num;
  doc += ",\"simtest_mixed\":{\"heap\":";
  doc += bench::ResultJson(mixed_heap);
  doc += ",\"wheel\":";
  doc += bench::ResultJson(mixed_wheel);
  std::snprintf(num, sizeof num, ",\"speedup\":%.2f}", mixed_speedup);
  doc += num;
  std::snprintf(num, sizeof num, "},\"canonical_speedup\":%.2f}\n",
                fig5_speedup);
  doc += num;
  obs::WriteFile("BENCH_simspeed.json", doc);
  std::printf("wrote BENCH_simspeed.json\n");
  return 0;
}
