// Reproduces Figure 6b: tenant scaling. Each tenant issues 100 1KB
// read IOPS over its own connection; servers with 1, 2 and 4 cores.
//
// Paper: one ReFlex core supports ~2,500 tenants before per-tenant
// management (the per-round scheduler walk) saturates the core; 2
// cores ~5,000; 4 cores approach 10K tenants / the device's 1M
// read-only IOPS limit.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

double RunPoint(int cores, int num_tenants) {
  core::ServerOptions options;
  options.num_threads = cores;
  bench::BenchWorld world(options, /*num_client_machines=*/8);

  // Group tenants into a few clients per machine to bound memory;
  // every tenant still gets its own TCP connection, as in the paper.
  const int kTenantsPerClient = 250;
  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;

  int made = 0;
  while (made < num_tenants) {
    const int batch = std::min(kTenantsPerClient, num_tenants - made);
    client::ReflexClient::Options copts;
    copts.stack = net::StackCosts::IxDataplane();
    copts.num_connections = batch;
    copts.seed = 4000 + made;
    auto client = std::make_unique<client::ReflexClient>(
        world.sim, *world.server,
        world.client_machines[(made / kTenantsPerClient) %
                              world.client_machines.size()],
        copts);
    // Every tenant gets its own TCP connection, as in the paper, but
    // the connections are shared (tenant-unbound): the dataplane
    // routes each request by its tenant handle. Open them explicitly
    // so the sessions below attach to this shared pool instead of
    // opening tenant-bound connections.
    for (int i = 0; i < batch; ++i) client->OpenConnection();
    for (int i = 0; i < batch; ++i) {
      core::Tenant* t = world.server->RegisterTenant(
          core::SloSpec{}, core::TenantClass::kBestEffort);
      client::LoadGenSpec spec;
      spec.offered_iops = 100;
      spec.read_fraction = 1.0;
      spec.request_bytes = 1024;
      spec.seed = 5000 + made + i;
      sessions.push_back(client->AttachSession(t->handle()));
      generators.push_back(std::make_unique<client::LoadGenerator>(
          world.sim, *sessions.back(), spec));
    }
    clients.push_back(std::move(client));
    made += batch;
  }

  const sim::TimeNs warm = sim::Millis(60);
  const sim::TimeNs end = sim::Millis(260);
  for (auto& g : generators) g->Run(warm, end);
  for (auto& g : generators) world.Await(g->Done(), sim::Seconds(120));

  double total = 0;
  for (auto& g : generators) total += g->AchievedIops();
  return total;
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 6b - tenant scaling (100 x 1KB read IOPS per tenant)",
      "1 core ~2.5K tenants, 2 cores ~5K, 4 cores ~10K");
  std::printf("%8s %8s %14s %14s\n", "tenants", "cores", "offered_iops",
              "achieved_iops");
  const std::vector<int> tenant_counts = {100,  250,  500,  1000, 1500,
                                          2500, 4000, 6000, 8000, 10000};
  for (int cores : {1, 2, 4}) {
    for (int n : tenant_counts) {
      // Skip hopeless oversubscription to bound runtime.
      if (cores == 1 && n > 6000) continue;
      const double achieved = reflex::RunPoint(cores, n);
      std::printf("%8d %8d %14.0f %14.0f\n", n, cores, n * 100.0,
                  achieved);
    }
    std::printf("\n");
  }
  std::printf(
      "Check: achieved == offered until the per-core tenant limit\n"
      "(~2,500 tenants/core), then flattens; the 4-core server tracks\n"
      "offered load to ~10K tenants (~1M IOPS, the device limit).\n");
  return 0;
}
