// Reproduces Figure 1: the impact of read/write interference on Flash.
// p95 read latency vs total IOPS for workloads with read ratios from
// 50% to 100% (4KB random I/Os, device A).
//
// Expected shape (paper): the read-only curve sustains ~1M IOPS before
// the latency wall; every write-containing curve hits the wall at
// progressively lower IOPS (99% read ~500K, 50% read ~100K), because a
// write costs ~10x a read in device resources.

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "flash/calibration.h"
#include "flash/flash_device.h"
#include "sim/simulator.h"

namespace reflex {
namespace {

void Run() {
  bench::Banner("Figure 1 - read/write interference (device A)",
                "p95 read latency vs total IOPS per read ratio");

  const std::vector<double> ratios = {1.00, 0.99, 0.95, 0.90, 0.75, 0.50};
  const std::vector<double> fractions = {0.1, 0.2, 0.3, 0.4,  0.5,  0.6,
                                         0.7, 0.8, 0.9, 0.95, 0.98};

  flash::CalibrationConfig cfg;
  cfg.measure_duration = sim::Millis(250);
  cfg.warmup_duration = sim::Millis(60);

  std::printf("%-8s %12s %12s %12s %12s\n", "read%", "offered_iops",
              "achieved", "p95_read_us", "mean_read_us");
  for (double r : ratios) {
    // Fresh device per curve so curves are independent.
    sim::Simulator sim;
    flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(), 42);
    const double saturation =
        flash::MeasureSaturationIops(sim, device, r, 4096, cfg);
    for (double f : fractions) {
      const double offered = f * saturation;
      flash::LatencyPoint p = flash::MeasureOpenLoopPoint(
          sim, device, offered, r, 4096, cfg);
      std::printf("%-8.0f %12.0f %12.0f %12.1f %12.1f\n", r * 100,
                  offered, p.iops, sim::ToMicros(p.read_p95),
                  sim::ToMicros(p.read_mean));
    }
    std::printf("# read%%=%.0f saturation: %.0f IOPS\n\n", r * 100,
                saturation);
  }
  std::printf(
      "Paper check: read-only saturates ~1M IOPS; 99%% read ~500K;\n"
      "50%% read ~100K. Tail latency rises with load for every mix.\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::Run();
  return 0;
}
