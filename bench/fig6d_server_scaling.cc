// Server scaling on a sharded cluster: aggregate IOPS vs number of
// ReFlex servers (the multi-server deployment of paper section 5, "a
// ReFlex instance per Flash device, scaled out across machines").
//
// A logical volume is striped (64KB stripes) over N independent ReFlex
// servers, each with its own Flash device, QoS scheduler and control
// plane. One latency-critical tenant reserves N x 150K IOPS (100%
// read, 4KB) at a 500us p95 SLO cluster-wide -- the ClusterControlPlane
// splits the reservation into equal per-shard shares -- and four client
// machines drive the offered load open-loop through ClusterClient
// sessions. Because the shards are shared-nothing, aggregate IOPS
// should scale near-linearly with N while every shard's p95 stays
// within the 500us SLO.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "cluster/cluster_client.h"

namespace reflex {
namespace {

constexpr double kPerShardIops = 150000.0;
constexpr sim::TimeNs kSloP95 = sim::Micros(500);

struct Driver {
  std::unique_ptr<cluster::ClusterClient> client;
  std::unique_ptr<cluster::ClusterSession> session;
  std::unique_ptr<client::ReflexService> service;
};

double RunPoint(int num_shards, double* worst_shard_p95_us) {
  sim::Simulator sim;
  net::Network net(sim);

  cluster::FlashClusterOptions options;
  options.num_shards = num_shards;
  options.calibration = bench::CalibrationA();
  cluster::FlashCluster flash_cluster(sim, net, options);

  // One cluster-wide LC reservation covering the whole offered load;
  // admission splits it into 150K IOPS per shard.
  core::SloSpec slo;
  slo.iops = static_cast<uint32_t>(num_shards * kPerShardIops);
  slo.read_fraction = 1.0;
  slo.latency = kSloP95;
  cluster::ClusterTenant tenant =
      flash_cluster.control_plane().RegisterTenant(
          slo, core::TenantClass::kLatencyCritical);
  if (!tenant.valid()) {
    std::fprintf(stderr, "cluster tenant inadmissible at N=%d\n",
                 num_shards);
    std::abort();
  }

  // Four client machines, each with its own per-shard connection pools
  // and session over the shared tenant.
  std::vector<Driver> drivers;
  std::vector<client::FlashService*> services;
  for (int i = 0; i < 4; ++i) {
    Driver d;
    cluster::ClusterClient::Options copts;
    copts.client.stack = net::StackCosts::IxDataplane();
    copts.client.num_connections = 2;
    copts.client.seed = 1000 + i;
    d.client = std::make_unique<cluster::ClusterClient>(
        flash_cluster, net.AddMachine("client-" + std::to_string(i)),
        copts);
    d.session = d.client->AttachSession(tenant);
    if (d.session == nullptr) {
      std::fprintf(stderr, "cluster session refused\n");
      std::abort();
    }
    d.service =
        std::make_unique<client::ReflexService>(*d.session, "ReFlex cluster");
    drivers.push_back(std::move(d));
    services.push_back(drivers.back().service.get());
  }

  // 4KB reads, stripe-aligned (64KB stripes), offered at the full
  // reservation.
  bench::LoadPoint point = bench::MeasureOpenLoop(
      sim, services, num_shards * kPerShardIops, /*read_fraction=*/1.0,
      /*sectors=*/8);

  // Worst per-shard p95 across every driver's scatter-gather extents:
  // the SLO must hold on each shard, not just in aggregate.
  *worst_shard_p95_us = 0.0;
  for (int s = 0; s < num_shards; ++s) {
    sim::Histogram merged;
    for (const Driver& d : drivers) {
      merged.Merge(d.session->shard_latency(s));
    }
    *worst_shard_p95_us = std::max(
        *worst_shard_p95_us, merged.Percentile(0.95) / 1e3);
  }

  flash_cluster.control_plane().UnregisterTenant(tenant);
  return point.achieved_iops;
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 6d - server scaling (striped multi-server cluster)",
      "aggregate IOPS scales near-linearly; per-shard p95 within SLO");
  std::printf("%8s %16s %14s %18s %10s\n", "servers", "achieved_iops",
              "scaling_x", "worst_shard_p95_us", "slo_ok");

  double base_iops = 0.0;
  double ratio_at_4 = 0.0;
  bool slo_held = true;
  for (int n : {1, 2, 4}) {
    double worst_p95_us = 0.0;
    const double iops = reflex::RunPoint(n, &worst_p95_us);
    if (n == 1) base_iops = iops;
    const double ratio = iops / base_iops;
    if (n == 4) ratio_at_4 = ratio;
    const bool ok = worst_p95_us <= reflex::kSloP95 / 1e3;
    slo_held = slo_held && ok;
    std::printf("%8d %16.0f %14.2f %18.1f %10s\n", n, iops, ratio,
                worst_p95_us, ok ? "yes" : "NO");
  }

  std::printf(
      "\nCheck: 4-server aggregate read IOPS >= 3.5x the 1-server\n"
      "cluster (measured %.2fx) with every shard's p95 within the\n"
      "500us SLO (%s). Shards are shared-nothing, so the only\n"
      "cross-server coupling is tenant admission.\n",
      ratio_at_4, slo_held ? "held" : "VIOLATED");
  return ratio_at_4 >= 3.5 && slo_held ? 0 : 1;
}
