// Micro-benchmarks (google-benchmark) for the hot paths that bound
// ReFlex's per-request cost: the QoS scheduling round (Algorithm 1),
// the global token bucket, the latency histogram, the event queue and
// the Flash device model. These are real wall-clock measurements of
// this implementation, complementing the simulated-time experiments.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/cost_model.h"
#include "core/qos_scheduler.h"
#include "core/tenant.h"
#include "core/token_bucket.h"
#include "flash/flash_device.h"
#include "sim/histogram.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace reflex {
namespace {

void BM_QosSchedulerRound(benchmark::State& state) {
  const int num_tenants = static_cast<int>(state.range(0));
  core::SchedulerShared shared;
  shared.read_ratio.Observe(0, false, 1000.0);
  core::RequestCostModel cost_model(10.0, 0.5);
  core::QosScheduler sched(shared, cost_model);
  std::vector<std::unique_ptr<core::Tenant>> tenants;
  for (int i = 0; i < num_tenants; ++i) {
    auto t = std::make_unique<core::Tenant>(
        i + 1,
        i % 2 == 0 ? core::TenantClass::kLatencyCritical
                   : core::TenantClass::kBestEffort,
        core::SloSpec{});
    t->set_token_rate(1e6);
    sched.AddTenant(t.get());
    tenants.push_back(std::move(t));
  }
  sim::TimeNs now = 0;
  int64_t submitted = 0;
  auto submit = [&](core::Tenant&, core::PendingIo&&) { ++submitted; };
  core::PendingIo io;
  io.msg.type = core::ReqType::kRead;
  io.msg.sectors = 8;
  int spin = 0;
  for (auto _ : state) {
    // Keep one tenant fed so rounds do some submission work.
    sched.Enqueue(now, tenants[spin % tenants.size()].get(), io);
    spin++;
    now += 1000;
    benchmark::DoNotOptimize(sched.RunRound(now, submit));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tenants"] = num_tenants;
}
BENCHMARK(BM_QosSchedulerRound)->Arg(1)->Arg(16)->Arg(256)->Arg(2048);

void BM_GlobalTokenBucket(benchmark::State& state) {
  core::GlobalTokenBucket bucket;
  for (auto _ : state) {
    bucket.Donate(2.5);
    benchmark::DoNotOptimize(bucket.TryClaim(1.5));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_GlobalTokenBucket);

void BM_HistogramRecord(benchmark::State& state) {
  sim::Histogram hist;
  sim::Rng rng(1);
  for (auto _ : state) {
    hist.Record(static_cast<int64_t>(rng.NextExponential(100000.0)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  sim::Histogram hist;
  sim::Rng rng(1);
  for (int i = 0; i < 1000000; ++i) {
    hist.Record(static_cast<int64_t>(rng.NextExponential(100000.0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.Percentile(0.95));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.ScheduleAt(i, [&counter] { ++counter; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_FlashDeviceModel(benchmark::State& state) {
  // Cost of simulating one 4KB read through the die model.
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    flash::FlashDevice device(sim, flash::DeviceProfile::DeviceA(), 1);
    flash::QueuePair* qp = device.AllocQueuePair();
    sim::Rng rng(2);
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      flash::FlashCommand cmd;
      cmd.op = flash::FlashOp::kRead;
      cmd.lba = rng.NextBounded(1000000) * 8;
      cmd.sectors = 8;
      device.Submit(qp, cmd, nullptr);
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_FlashDeviceModel);

void BM_RngLognormal(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextLognormal(140000.0, 0.08));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngLognormal);

}  // namespace
}  // namespace reflex

BENCHMARK_MAIN();
