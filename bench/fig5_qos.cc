// Reproduces Figure 5: tail latency and IOPS for 4 tenants sharing a
// single-threaded ReFlex server, with the QoS scheduler disabled and
// enabled, in two scenarios.
//
// Tenants (as in the paper):
//   A: latency-critical, 120K IOPS @ 100% read, p95 <= 500us
//   B: latency-critical,  70K IOPS @  80% read, p95 <= 500us
//   C: best-effort, 95% read
//   D: best-effort, 25% read
//
// Scenario 1: A and B drive their full reservations. Scenario 2: B
// only drives 45K IOPS, and the BE tenants pick up its unused tokens
// (work conservation through the global token bucket).
//
// Expected: without the scheduler every tenant sees >2ms p95 because
// of write interference; with it, A and B meet both SLOs while C and D
// split the leftover throughput (D lower than C: its writes cost 10x).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

struct TenantSetup {
  const char* name;
  core::TenantClass cls;
  core::SloSpec slo;        // LC only
  double offered_iops;      // open loop (LC); 0 => closed loop QD32 (BE)
  double read_fraction;
  core::Tenant* tenant = nullptr;
  std::unique_ptr<client::ReflexClient> client;
  std::unique_ptr<client::TenantSession> session;
  std::unique_ptr<client::LoadGenerator> generator;
};

void RunScenario(int scenario, bool sched_enabled) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.enforce = sched_enabled;
  // NEG_LIMIT is an empirical knob (the paper uses -50 on its device);
  // our device needs a slightly deeper burst allowance to absorb runs
  // of 10-token writes from tenant B without queueing its reads.
  options.qos.neg_limit = -150.0;
  bench::BenchWorld world(options);

  const double b_offered = scenario == 1 ? 70000.0 : 45000.0;

  // SLOs carry ~8% headroom over the offered load: a token bucket
  // drained at exactly its fill rate is a critically-loaded queue
  // whose delay grows without bound, so any real SLO reservation must
  // exceed the expected demand (mutilate's Poisson arrivals make this
  // visible; see EXPERIMENTS.md).
  std::vector<TenantSetup> setups;
  {
    TenantSetup a;
    a.name = "A(LC,100%rd)";
    a.cls = core::TenantClass::kLatencyCritical;
    a.slo = {130000, 1.0, sim::Micros(500), 0.95, 4096};
    a.offered_iops = 120000;
    a.read_fraction = 1.0;
    setups.push_back(std::move(a));
  }
  {
    TenantSetup b;
    b.name = "B(LC,80%rd)";
    b.cls = core::TenantClass::kLatencyCritical;
    b.slo = {76000, 0.8, sim::Micros(500), 0.95, 4096};
    b.offered_iops = b_offered;
    b.read_fraction = 0.8;
    setups.push_back(std::move(b));
  }
  {
    TenantSetup c;
    c.name = "C(BE,95%rd)";
    c.cls = core::TenantClass::kBestEffort;
    c.offered_iops = 0;
    c.read_fraction = 0.95;
    setups.push_back(std::move(c));
  }
  {
    TenantSetup d;
    d.name = "D(BE,25%rd)";
    d.cls = core::TenantClass::kBestEffort;
    d.offered_iops = 0;
    d.read_fraction = 0.25;
    setups.push_back(std::move(d));
  }

  int idx = 0;
  for (TenantSetup& s : setups) {
    core::ReqStatus status;
    s.tenant = world.server->RegisterTenant(s.slo, s.cls, &status);
    if (s.tenant == nullptr) {
      std::fprintf(stderr, "tenant %s inadmissible!\n", s.name);
      std::abort();
    }
    client::ReflexClient::Options copts;
    copts.stack = net::StackCosts::IxDataplane();
    copts.num_connections = 8;
    copts.seed = 500 + idx;
    // Trace every request: the latency-breakdown table below must
    // reconcile with the generator histograms, so both populations
    // need to be (nearly) the same.
    copts.trace_sample_every = 1;
    s.client = std::make_unique<client::ReflexClient>(
        world.sim, *world.server,
        world.client_machines[idx % world.client_machines.size()], copts);
    s.session = s.client->AttachSession(s.tenant->handle());

    client::LoadGenSpec spec;
    spec.read_fraction = s.read_fraction;
    spec.request_bytes = 4096;
    if (s.offered_iops > 0) {
      spec.offered_iops = s.offered_iops;
      // LC load is paced (mutilate agents driving a fixed rate).
      spec.poisson_arrivals = false;
    } else {
      spec.queue_depth = 32;
    }
    spec.seed = 900 + idx;
    s.generator = std::make_unique<client::LoadGenerator>(
        world.sim, *s.session, spec);
    ++idx;
  }

  const sim::TimeNs warm = sim::Millis(150);
  const sim::TimeNs end = sim::Millis(650);
  // Align the trace population with the measurement window: count
  // only spans issued after warmup, and capture the table at `end`
  // (the generators keep draining past it).
  obs::BreakdownTable window_table;
  world.sim.ScheduleAt(warm, [&world, warm] {
    world.server->tracer().Reset(/*min_issue=*/warm);
  });
  world.sim.ScheduleAt(end, [&world, &window_table] {
    window_table = world.server->tracer().Table();
  });
  for (TenantSetup& s : setups) s.generator->Run(warm, end);
  for (TenantSetup& s : setups) {
    world.Await(s.generator->Done(), sim::Seconds(120));
  }

  std::printf("Scenario %d, I/O sched %s:\n", scenario,
              sched_enabled ? "ENABLED" : "DISABLED");
  std::printf("  %-14s %12s %12s %10s\n", "tenant", "iops",
              "p95_read_us", "SLO_us");
  for (TenantSetup& s : setups) {
    const bool lc = s.cls == core::TenantClass::kLatencyCritical;
    std::printf("  %-14s %12.0f %12.1f %10s\n", s.name,
                s.generator->AchievedIops(),
                s.generator->read_latency().Percentile(0.95) / 1e3,
                lc ? "500" : "-");
  }

  // Machine-readable per-stage latency breakdown from the trace spans,
  // reconciled against the independently measured end-to-end mean
  // (merged over all tenants, reads and writes).
  char label[32];
  std::snprintf(label, sizeof(label), "s%d_%s", scenario,
                sched_enabled ? "on" : "off");
  sim::Histogram merged;
  for (TenantSetup& s : setups) {
    merged.Merge(s.generator->read_latency());
    merged.Merge(s.generator->write_latency());
  }
  bench::DumpBreakdown(*world.server, window_table, "fig5_qos", label);
  bench::CheckBreakdownReconciles(window_table, merged.Mean() / 1e3, label);
  std::printf("\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 5 - QoS scheduling and isolation (4 tenants, 1 thread)",
      "LC tenants meet 500us/IOPS SLOs only with the scheduler on");
  reflex::RunScenario(1, false);
  reflex::RunScenario(1, true);
  reflex::RunScenario(2, false);
  reflex::RunScenario(2, true);
  std::printf(
      "Check: sched ON => A ~120K IOPS and B at its offered load, both\n"
      "p95 <= 500us; C > D (writes cost 10x). Scenario 2: C and D gain\n"
      "B's unused tokens. Sched OFF => p95 >> 2ms for everyone.\n");
  return 0;
}
