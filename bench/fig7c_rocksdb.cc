// Reproduces Figure 7c: RocksDB-style key-value store performance on
// local vs remote Flash, via the mini-LSM store and db_bench-style
// workloads (see DESIGN.md for the RocksDB substitution).
//
// Paper: bulkload (BL) is nearly identical everywhere (the Flash
// itself limits write throughput); randomread (RR) and
// readwhilewriting (RwW) slow by 32% / 27% on iSCSI but <4% on ReFlex.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/kv/db_bench.h"
#include "apps/kv/kv_store.h"
#include "baseline/kernel_server.h"
#include "baseline/local_nvme_driver.h"
#include "bench/common.h"
#include "client/block_device.h"
#include "client/storage_backend.h"

namespace reflex {
namespace {

struct PhaseTimes {
  double bl_s = 0, rr_s = 0, rww_s = 0;
};

PhaseTimes RunAll(bench::BenchWorld& world,
                  client::StorageBackend& backend) {
  apps::kv::KvStore::Options kv_options;
  kv_options.region_offset = 0;
  kv_options.region_bytes = 8ULL << 30;
  kv_options.memtable_bytes = 2ULL << 20;
  kv_options.block_cache_blocks = 1024;  // small cache: Flash-bound
  apps::kv::KvStore store(world.sim, backend, kv_options);

  apps::kv::DbBench::Config cfg;
  cfg.num_keys = 60000;
  cfg.value_bytes = 400;
  cfg.read_threads = 8;
  cfg.reads_per_thread = 3000;
  cfg.write_rate = 3000;
  apps::kv::DbBench bench(world.sim, store, cfg);

  PhaseTimes t;
  auto bl = world.Await(bench.BulkLoad(), sim::Seconds(1200));
  t.bl_s = sim::ToSeconds(bl.duration);
  auto rr = world.Await(bench.RandomRead(), sim::Seconds(1200));
  t.rr_s = sim::ToSeconds(rr.duration);
  auto rww = world.Await(bench.ReadWhileWriting(), sim::Seconds(1200));
  t.rww_s = sim::ToSeconds(rww.duration);
  std::printf(
      "#   BL %.0f ops/s; RR %.0f ops/s (p95 %.0fus, miss=%lld); RwW "
      "%.0f ops/s (p95 %.0fus)\n",
      bl.ops_per_sec, rr.ops_per_sec, rr.latency.Percentile(0.95) / 1e3,
      static_cast<long long>(rr.not_found), rww.ops_per_sec,
      rww.latency.Percentile(0.95) / 1e3);
  return t;
}

void Run() {
  PhaseTimes local_t;
  {
    bench::BenchWorld world;
    baseline::LocalNvmeDriver::Options o;
    o.num_contexts = 5;
    baseline::LocalNvmeDriver local(world.sim, world.device, o);
    client::ServiceStorageAdapter backend(local, 16ULL << 30);
    std::printf("# Local (kernel NVMe driver)\n");
    local_t = RunAll(world, backend);
  }
  PhaseTimes iscsi_t;
  {
    bench::BenchWorld world;
    baseline::KernelStorageServer iscsi(
        world.sim, world.net, world.client_machines[0],
        world.server_machine, world.device,
        baseline::BaselineCosts::Iscsi(), 12, "iSCSI");
    client::ServiceStorageAdapter backend(iscsi, 16ULL << 30);
    std::printf("# iSCSI\n");
    iscsi_t = RunAll(world, backend);
  }
  PhaseTimes reflex_t;
  {
    bench::BenchWorld world;
    core::Tenant* tenant = world.server->RegisterTenant(
        core::SloSpec{}, core::TenantClass::kBestEffort);
    client::BlockDevice bdev(world.sim, *world.server,
                             world.client_machines[0], tenant->handle(),
                             client::BlockDevice::Options{});
    std::printf("# ReFlex (remote block device)\n");
    reflex_t = RunAll(world, bdev);
  }

  auto print_row = [](const char* phase, double local_s, double iscsi_s,
                      double reflex_s, double paper_iscsi,
                      double paper_reflex) {
    std::printf(
        "%-4s %10.3f %10.3f %10.3f | slowdown: iSCSI %.2fx (paper "
        "~%.2fx), ReFlex %.2fx (paper ~%.2fx)\n",
        phase, local_s, iscsi_s, reflex_s, iscsi_s / local_s, paper_iscsi,
        reflex_s / local_s, paper_reflex);
  };
  std::printf("\n%-4s %10s %10s %10s\n", "test", "local_s", "iscsi_s",
              "reflex_s");
  print_row("BL", local_t.bl_s, iscsi_t.bl_s, reflex_t.bl_s, 1.02, 1.00);
  print_row("RR", local_t.rr_s, iscsi_t.rr_s, reflex_t.rr_s, 1.32, 1.04);
  print_row("RwW", local_t.rww_s, iscsi_t.rww_s, reflex_t.rww_s, 1.27,
            1.04);
  std::printf(
      "\nCheck: BL nearly identical across systems (Flash-limited\n"
      "writes); RR and RwW ~30%% slower on iSCSI but <4%% on ReFlex.\n");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 7c - RocksDB-style LSM store slowdown vs local",
      "bulkload / randomread / readwhilewriting");
  reflex::Run();
  return 0;
}
