// Compares the three QoS enforcement policies on the Figure 5
// scenario-1 workload: 2 latency-critical tenants at their full
// reservations plus 2 best-effort tenants at closed-loop QD32.
//
//   token_bucket  ReFlex Algorithm 1 (the paper's scheduler)
//   qwin          per-window LC quotas from observed backlog
//   adaptive_be   Algorithm 1 + BE inflight-bytes cap from the
//                 measured service rate
//
// For each policy: per-LC-tenant achieved IOPS, p95/p99.9 read
// latency and SLO violations (reads above the latency SLO), and
// per-BE-tenant goodput. Emits BENCH_qospolicy.json for CI trend
// tracking.
//
// Expected: all three policies keep the LC tenants within SLO; they
// differ in BE goodput and LC tail (adaptive_be trades a little BE
// goodput for a shallower device queue; qwin admits LC bursts in
// window-sized quanta).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "core/qos_policy.h"

namespace reflex {
namespace {

struct TenantSetup {
  const char* name;
  core::TenantClass cls;
  core::SloSpec slo;        // LC only
  double offered_iops;      // open loop (LC); 0 => closed loop QD32 (BE)
  double read_fraction;
  core::Tenant* tenant = nullptr;
  std::unique_ptr<client::ReflexClient> client;
  std::unique_ptr<client::TenantSession> session;
  std::unique_ptr<client::LoadGenerator> generator;
};

struct TenantResult {
  std::string name;
  bool lc = false;
  double iops = 0.0;
  double p95_read_us = 0.0;
  double p999_read_us = 0.0;
  int64_t reads = 0;
  int64_t slo_violations = 0;
  double goodput_mbps = 0.0;  // BE only: achieved bytes through
};

struct PolicyResult {
  std::string policy;
  std::vector<TenantResult> tenants;
  double be_goodput_mbps = 0.0;
};

constexpr int64_t kRequestBytes = 4096;

PolicyResult RunPolicy(core::QosPolicyKind kind) {
  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.enforce = true;
  options.qos.policy = kind;
  // Same empirical burst allowance as fig5_qos (see the comment
  // there): our device needs deeper bursts than the paper's -50.
  options.qos.neg_limit = -150.0;
  bench::BenchWorld world(options);

  std::vector<TenantSetup> setups;
  {
    TenantSetup a;
    a.name = "A(LC,100%rd)";
    a.cls = core::TenantClass::kLatencyCritical;
    a.slo = {130000, 1.0, sim::Micros(500), 0.95, 4096};
    a.offered_iops = 120000;
    a.read_fraction = 1.0;
    setups.push_back(std::move(a));
  }
  {
    TenantSetup b;
    b.name = "B(LC,80%rd)";
    b.cls = core::TenantClass::kLatencyCritical;
    b.slo = {76000, 0.8, sim::Micros(500), 0.95, 4096};
    b.offered_iops = 70000;
    b.read_fraction = 0.8;
    setups.push_back(std::move(b));
  }
  {
    TenantSetup c;
    c.name = "C(BE,95%rd)";
    c.cls = core::TenantClass::kBestEffort;
    c.offered_iops = 0;
    c.read_fraction = 0.95;
    setups.push_back(std::move(c));
  }
  {
    TenantSetup d;
    d.name = "D(BE,25%rd)";
    d.cls = core::TenantClass::kBestEffort;
    d.offered_iops = 0;
    d.read_fraction = 0.25;
    setups.push_back(std::move(d));
  }

  int idx = 0;
  for (TenantSetup& s : setups) {
    core::ReqStatus status;
    s.tenant = world.server->RegisterTenant(s.slo, s.cls, &status);
    if (s.tenant == nullptr) {
      std::fprintf(stderr, "tenant %s inadmissible!\n", s.name);
      std::abort();
    }
    client::ReflexClient::Options copts;
    copts.stack = net::StackCosts::IxDataplane();
    copts.num_connections = 8;
    copts.seed = 500 + idx;
    s.client = std::make_unique<client::ReflexClient>(
        world.sim, *world.server,
        world.client_machines[idx % world.client_machines.size()], copts);
    s.session = s.client->AttachSession(s.tenant->handle());

    client::LoadGenSpec spec;
    spec.read_fraction = s.read_fraction;
    spec.request_bytes = kRequestBytes;
    if (s.offered_iops > 0) {
      spec.offered_iops = s.offered_iops;
      spec.poisson_arrivals = false;
    } else {
      spec.queue_depth = 32;
    }
    spec.seed = 900 + idx;
    s.generator = std::make_unique<client::LoadGenerator>(
        world.sim, *s.session, spec);
    ++idx;
  }

  const sim::TimeNs warm = sim::Millis(150);
  const sim::TimeNs end = sim::Millis(650);
  for (TenantSetup& s : setups) s.generator->Run(warm, end);
  for (TenantSetup& s : setups) {
    world.Await(s.generator->Done(), sim::Seconds(120));
  }

  PolicyResult result;
  result.policy = core::QosPolicyKindName(kind);
  for (TenantSetup& s : setups) {
    TenantResult t;
    t.name = s.name;
    t.lc = s.cls == core::TenantClass::kLatencyCritical;
    t.iops = s.generator->AchievedIops();
    const sim::Histogram& reads = s.generator->read_latency();
    t.reads = reads.Count();
    t.p95_read_us = reads.Percentile(0.95) / 1e3;
    t.p999_read_us = reads.Percentile(0.999) / 1e3;
    if (t.lc) {
      t.slo_violations = reads.CountAbove(s.slo.latency);
    } else {
      t.goodput_mbps = t.iops * kRequestBytes / 1e6;
      result.be_goodput_mbps += t.goodput_mbps;
    }
    result.tenants.push_back(std::move(t));
  }
  return result;
}

void PrintPolicy(const PolicyResult& r) {
  std::printf("Policy %s:\n", r.policy.c_str());
  std::printf("  %-14s %10s %12s %13s %14s %14s\n", "tenant", "iops",
              "p95_read_us", "p999_read_us", "slo_violations",
              "goodput_MBps");
  for (const TenantResult& t : r.tenants) {
    std::printf("  %-14s %10.0f %12.1f %13.1f ", t.name.c_str(), t.iops,
                t.p95_read_us, t.p999_read_us);
    if (t.lc) {
      std::printf("%7lld/%-6lld %14s\n",
                  static_cast<long long>(t.slo_violations),
                  static_cast<long long>(t.reads), "-");
    } else {
      std::printf("%14s %14.1f\n", "-", t.goodput_mbps);
    }
  }
  std::printf("  BE goodput total: %.1f MB/s\n\n", r.be_goodput_mbps);
}

std::string PolicyJson(const PolicyResult& r) {
  char buf[256];
  std::string doc = "{\"tenants\":[";
  for (size_t i = 0; i < r.tenants.size(); ++i) {
    const TenantResult& t = r.tenants[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"class\":\"%s\",\"iops\":%.0f,"
                  "\"p95_read_us\":%.1f,\"p999_read_us\":%.1f",
                  i > 0 ? "," : "", t.name.c_str(), t.lc ? "LC" : "BE",
                  t.iops, t.p95_read_us, t.p999_read_us);
    doc += buf;
    if (t.lc) {
      std::snprintf(buf, sizeof buf,
                    ",\"slo_violations\":%lld,\"reads\":%lld}",
                    static_cast<long long>(t.slo_violations),
                    static_cast<long long>(t.reads));
    } else {
      std::snprintf(buf, sizeof buf, ",\"goodput_mbps\":%.1f}",
                    t.goodput_mbps);
    }
    doc += buf;
  }
  std::snprintf(buf, sizeof buf, "],\"be_goodput_mbps\":%.1f}",
                r.be_goodput_mbps);
  doc += buf;
  return doc;
}

}  // namespace
}  // namespace reflex

int main() {
  using namespace reflex;
  bench::Banner(
      "QoS policy comparison (fig5 scenario 1, 4 tenants, 1 thread)",
      "token_bucket vs qwin vs adaptive_be under identical load");

  std::vector<PolicyResult> results;
  for (core::QosPolicyKind kind :
       {core::QosPolicyKind::kTokenBucket, core::QosPolicyKind::kQwin,
        core::QosPolicyKind::kAdaptiveBe}) {
    results.push_back(RunPolicy(kind));
    PrintPolicy(results.back());
  }

  std::string doc = "{\"bench\":\"qos_policy_compare\",\"policies\":{";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) doc += ",";
    doc += "\"" + results[i].policy + "\":" + PolicyJson(results[i]);
  }
  doc += "}}\n";
  obs::WriteFile("BENCH_qospolicy.json", doc);
  std::printf("wrote BENCH_qospolicy.json\n");

  std::printf(
      "Check: every policy keeps A and B within the 500us p95 SLO;\n"
      "policies differ in BE goodput and LC tail (see the table).\n");
  return 0;
}
