// Reproduces Figure 6a: multi-core scaling of the QoS scheduler.
//
// Each added core serves one latency-critical tenant with an SLO of
// 20K IOPS (90% read, 4KB) at a 2ms p95 read SLO; two best-effort
// tenants (80% read) consume whatever is left. The paper shows LC
// IOPS scaling linearly to 12 cores with no scheduler bottleneck, BE
// IOPS shrinking as LC tenants claim bandwidth, and total token usage
// pinned at the device cap (~570K tokens/s) once any LC tenant exists.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

struct Gen {
  std::unique_ptr<client::ReflexClient> client;
  std::unique_ptr<client::TenantSession> session;
  std::unique_ptr<client::LoadGenerator> generator;
};

Gen MakeGen(bench::BenchWorld& world, core::Tenant* tenant,
            client::LoadGenSpec spec, int idx) {
  Gen g;
  client::ReflexClient::Options copts;
  copts.stack = net::StackCosts::IxDataplane();
  copts.num_connections = 4;
  copts.seed = 1000 + idx;
  g.client = std::make_unique<client::ReflexClient>(
      world.sim, *world.server,
      world.client_machines[idx % world.client_machines.size()], copts);
  g.session = g.client->AttachSession(tenant->handle());
  g.generator = std::make_unique<client::LoadGenerator>(
      world.sim, *g.session, spec);
  return g;
}

void RunPoint(int num_lc) {
  core::ServerOptions options;
  options.num_threads = std::max(2, num_lc);
  options.max_threads = 12;
  bench::BenchWorld world(options);

  std::vector<Gen> gens;
  int idx = 0;
  double lc_slo_iops = 0;

  for (int i = 0; i < num_lc; ++i) {
    core::SloSpec slo;
    // 10% reservation headroom over the offered 20K IOPS; with it, 12
    // tenants (12 x 41.8K = 501.6K tokens/s) are exactly the most the
    // 2ms cap (~508K tokens/s) admits -- the paper's "up to 12 such
    // tenants" limit.
    slo.iops = 22000;
    slo.read_fraction = 0.9;
    slo.latency = sim::Millis(2);
    core::Tenant* t = world.server->RegisterTenant(
        slo, core::TenantClass::kLatencyCritical);
    if (t == nullptr) {
      std::fprintf(stderr, "LC tenant %d inadmissible\n", i);
      std::abort();
    }
    client::LoadGenSpec spec;
    spec.offered_iops = 20000;
    spec.poisson_arrivals = false;  // paced agents, as in mutilate
    spec.read_fraction = 0.9;
    spec.seed = 2000 + i;
    gens.push_back(MakeGen(world, t, spec, idx++));
    lc_slo_iops += 20000;
  }
  std::vector<size_t> be_indices;
  for (int i = 0; i < 2; ++i) {
    core::Tenant* t = world.server->RegisterTenant(
        core::SloSpec{}, core::TenantClass::kBestEffort);
    client::LoadGenSpec spec;
    spec.queue_depth = 64;
    spec.read_fraction = 0.8;
    spec.seed = 3000 + i;
    be_indices.push_back(gens.size());
    gens.push_back(MakeGen(world, t, spec, idx++));
  }

  const double tokens_before = world.server->shared().tokens_spent_total;
  const sim::TimeNs warm = sim::Millis(100);
  const sim::TimeNs end = sim::Millis(500);
  for (Gen& g : gens) g.generator->Run(warm, end);
  for (Gen& g : gens) world.Await(g.generator->Done(), sim::Seconds(60));
  const double window_s = sim::ToSeconds(end - warm);

  double lc_iops = 0, be_iops = 0;
  double lc_worst_p95 = 0;
  for (size_t i = 0; i < gens.size(); ++i) {
    const double iops = gens[i].generator->AchievedIops();
    const bool is_be = i == be_indices[0] || i == be_indices[1];
    if (is_be) {
      be_iops += iops;
    } else {
      lc_iops += iops;
      lc_worst_p95 = std::max(
          lc_worst_p95,
          gens[i].generator->read_latency().Percentile(0.95) / 1e3);
    }
  }
  // Token usage over the whole run (close to the window under steady
  // state; the paper plots exactly this rate).
  const double token_rate =
      (world.server->shared().tokens_spent_total - tokens_before) /
      sim::ToSeconds(world.sim.Now()) ;

  std::printf("%6d %14.0f %14.0f %16.0f %14.1f %12.0f\n", num_lc, lc_iops,
              be_iops, token_rate / 1e3, lc_worst_p95,
              lc_slo_iops);
  (void)window_s;
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 6a - multi-core scaling (1 LC tenant per core + 2 BE)",
      "LC IOPS scale linearly to 12 cores; tokens pinned at the cap");
  std::printf("%6s %14s %14s %16s %14s %12s\n", "cores", "lc_iops",
              "be_iops", "ktokens_per_s", "lc_p95_us", "lc_slo_iops");
  for (int cores = 0; cores <= 12; ++cores) {
    reflex::RunPoint(cores);
  }
  std::printf(
      "\nCheck: lc_iops == 20K x cores (linear, no scheduler\n"
      "bottleneck); be_iops decreases as cores grow; token rate ~570K\n"
      "tokens/s once LC tenants exist (slightly higher with BE only);\n"
      "lc_p95 stays below the 2000us SLO.\n");
  return 0;
}
