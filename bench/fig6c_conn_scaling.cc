// Reproduces Figure 6c: TCP connection scaling for a single tenant on
// a single ReFlex core, at 100 / 500 / 1000 IOPS per connection (1KB
// reads).
//
// Paper: at 100 IOPS/conn one core serves ~5K connections; beyond
// that, per-connection TCP state no longer fits the last-level cache
// and per-message processing slows down. At 1000 IOPS/conn the core
// peaks around 780K IOPS at ~850 connections (cache pressure keeps it
// below the 850K single-connection-count peak).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

double RunPoint(int num_conns, double iops_per_conn) {
  core::ServerOptions options;
  options.num_threads = 1;
  bench::BenchWorld world(options, /*num_client_machines=*/8);

  core::Tenant* tenant = world.server->RegisterTenant(
      core::SloSpec{}, core::TenantClass::kBestEffort);

  // Spread connections over client machines (mutilate-style agents).
  const int kMachines = 8;
  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;
  int remaining = num_conns;
  for (int m = 0; m < kMachines && remaining > 0; ++m) {
    const int batch =
        (num_conns + kMachines - 1) / kMachines > remaining
            ? remaining
            : (num_conns + kMachines - 1) / kMachines;
    client::ReflexClient::Options copts;
    copts.stack = net::StackCosts::IxDataplane();
    copts.num_connections = batch;
    copts.seed = 6000 + m;
    auto client = std::make_unique<client::ReflexClient>(
        world.sim, *world.server, world.client_machines[m], copts);
    sessions.push_back(client->AttachSession(tenant->handle()));
    client::LoadGenSpec spec;
    spec.offered_iops = iops_per_conn * batch;
    spec.read_fraction = 1.0;
    spec.request_bytes = 1024;
    spec.seed = 7000 + m;
    generators.push_back(std::make_unique<client::LoadGenerator>(
        world.sim, *sessions.back(), spec));
    clients.push_back(std::move(client));
    remaining -= batch;
  }

  const sim::TimeNs warm = sim::Millis(60);
  const sim::TimeNs end = sim::Millis(310);
  for (auto& g : generators) g->Run(warm, end);
  for (auto& g : generators) world.Await(g->Done(), sim::Seconds(120));
  double total = 0;
  for (auto& g : generators) total += g->AchievedIops();
  return total;
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Figure 6c - connection scaling (1 tenant, 1 core, 1KB reads)",
      "throughput vs #connections at 100/500/1000 IOPS per conn");
  std::printf("%8s %16s %14s %14s\n", "conns", "iops_per_conn",
              "offered_iops", "achieved_iops");
  const std::vector<int> conn_counts = {10,   50,   100,  250,  500, 850,
                                        1500, 2500, 5000, 7500, 10000};
  for (double rate : {100.0, 500.0, 1000.0}) {
    for (int conns : conn_counts) {
      const double offered = rate * conns;
      if (offered > 1200000.0) continue;  // beyond any useful point
      const double achieved = reflex::RunPoint(conns, rate);
      std::printf("%8d %16.0f %14.0f %14.0f\n", conns, rate, offered,
                  achieved);
    }
    std::printf("\n");
  }
  std::printf(
      "Check: 100 IOPS/conn tracks offered load to ~5K conns then\n"
      "degrades (connection state exceeds the LLC); 1000 IOPS/conn\n"
      "peaks near ~780K IOPS around 850 conns.\n");
  return 0;
}
