// Ablation D3: what the calibrated cost model buys. The scheduler is
// run with deliberately mis-set write costs: C(write)=1 ("all I/Os are
// equal", the assumption of fair queueing without device knowledge)
// up to C(write)=40 (over-conservative). A fig5-style LC tenant shares
// the device with a write-heavy best-effort tenant.
//
// Expected: under-pricing writes admits too much BE write traffic and
// blows the LC tail; over-pricing protects latency but wastes device
// throughput (BE IOPS collapse). The calibrated value (~10 tokens for
// device A) both meets the SLO and stays work-conserving.

#include <cstdio>

#include "bench/common.h"
#include "client/load_generator.h"
#include "client/reflex_client.h"

namespace reflex {
namespace {

void RunPoint(double write_cost) {
  flash::CalibrationResult calibration = bench::CalibrationA();
  calibration.write_cost = write_cost;  // the mis-calibration

  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.neg_limit = -15.0 * write_cost;  // same burst depth in writes
  bench::BenchWorld world(options);
  // Rebuild the server with the altered calibration.
  core::ReflexServer server(world.sim, world.net, world.server_machine,
                            world.device, calibration, options);

  core::SloSpec slo;
  slo.iops = 110000;
  slo.read_fraction = 1.0;
  slo.latency = sim::Micros(500);
  core::Tenant* lc =
      server.RegisterTenant(slo, core::TenantClass::kLatencyCritical);
  core::Tenant* be =
      server.RegisterTenant(core::SloSpec{}, core::TenantClass::kBestEffort);

  client::ReflexClient::Options copts;
  copts.num_connections = 8;
  client::ReflexClient lc_client(world.sim, server,
                                 world.client_machines[0], copts);
  auto lc_session = lc_client.AttachSession(lc->handle());
  client::LoadGenSpec lc_spec;
  lc_spec.offered_iops = 100000;
  lc_spec.poisson_arrivals = false;
  lc_spec.read_fraction = 1.0;
  client::LoadGenerator lc_load(world.sim, *lc_session, lc_spec);

  client::ReflexClient::Options be_copts;
  be_copts.num_connections = 8;
  be_copts.seed = 2;
  client::ReflexClient be_client(world.sim, server,
                                 world.client_machines[1], be_copts);
  auto be_session = be_client.AttachSession(be->handle());
  client::LoadGenSpec be_spec;
  be_spec.queue_depth = 32;
  be_spec.read_fraction = 0.25;  // write-heavy interference
  be_spec.seed = 3;
  client::LoadGenerator be_load(world.sim, *be_session, be_spec);

  lc_load.Run(sim::Millis(100), sim::Millis(500));
  be_load.Run(sim::Millis(100), sim::Millis(500));
  world.Await(lc_load.Done(), sim::Seconds(60));
  world.Await(be_load.Done(), sim::Seconds(60));

  std::printf("%10.0f %12.0f %14.1f %12.0f %10s\n", write_cost,
              lc_load.AchievedIops(),
              lc_load.read_latency().Percentile(0.95) / 1e3,
              be_load.AchievedIops(),
              lc_load.read_latency().Percentile(0.95) <= sim::Micros(500)
                  ? "met"
                  : "VIOLATED");
}

}  // namespace
}  // namespace reflex

int main() {
  reflex::bench::Banner(
      "Ablation D3 - mis-calibrated write cost (device A truth: ~10)",
      "LC 500us SLO under write-heavy BE vs the scheduler's C(write)");
  std::printf("%10s %12s %14s %12s %10s\n", "C(write)", "lc_iops",
              "lc_p95_us", "be_iops", "SLO");
  for (double cost : {1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    reflex::RunPoint(cost);
  }
  std::printf(
      "\nCheck: under-pricing writes (C=1..5) admits far too much BE\n"
      "write traffic and blows the LC tail by ~10x. The calibrated ~10\n"
      "recovers almost all of it; the residual gap at this extreme\n"
      "25%%-read BE mix is the cost-model collapse error documented in\n"
      "EXPERIMENTS.md (the r=90%% calibration curve is optimistic for\n"
      "very write-heavy device mixes). Over-pricing (C=20..40) meets\n"
      "the SLO but strands device throughput: BE IOPS fall far below\n"
      "the work-conserving level.\n");
  return 0;
}
