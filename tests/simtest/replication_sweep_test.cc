// Replication-specific simtest coverage: the replicated sweep is
// bit-identical across in-process runs, the serve_stale_replica
// planted mutation is caught by the oracle, replica-kill seeds stay
// clean, and the --replication override round-trips through the repro
// artifact.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "simtest/repro.h"
#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace reflex {
namespace {

using simtest::GenerateScenario;
using simtest::Mutation;
using simtest::RunReport;
using simtest::RunScenario;
using simtest::ScenarioSpec;

/** The sweep's --replication override: applied post-expansion. */
ScenarioSpec ExpandReplicated(uint64_t seed, int replication) {
  ScenarioSpec spec = GenerateScenario(seed);
  spec.replication = replication;
  return spec;
}

// Steering determinism golden: a 5-seed replicated sweep, run twice
// in-process, must produce bit-identical repro artifacts (which embed
// op counts, read counts, and every violation).
TEST(ReplicationSweepTest, ReplicatedSweepIsBitIdenticalAcrossRuns) {
  auto sweep = [] {
    std::vector<std::string> artifacts;
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const ScenarioSpec spec = ExpandReplicated(seed, 2);
      const RunReport report = RunScenario(spec);
      EXPECT_TRUE(report.ok()) << "seed " << seed;
      artifacts.push_back(simtest::ReproToJson(
          spec, report, Mutation::kNone, -1, /*force_policy=*/false,
          /*force_replication=*/true));
    }
    return artifacts;
  };
  EXPECT_EQ(sweep(), sweep());
}

TEST(ReplicationSweepTest, ReplicationThreeSeedsStayClean) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const RunReport report = RunScenario(ExpandReplicated(seed, 3));
    EXPECT_TRUE(report.completed) << "seed " << seed << " stalled";
    EXPECT_TRUE(report.data_violations.empty())
        << "seed " << seed << ": "
        << report.data_violations.front().detail;
    EXPECT_TRUE(report.invariant_violations.empty())
        << "seed " << seed << ": "
        << report.invariant_violations.front().detail;
    EXPECT_GT(report.reads_checked, 0) << "seed " << seed;
  }
}

// Planted-mutation canary: silently skipping one replica of a
// replicated write, then reading that replica directly, must surface
// as a stale read. Proves the oracle actually covers replica reads.
TEST(ReplicationSweepTest, ServeStaleReplicaCanaryIsCaught) {
  const RunReport report =
      RunScenario(GenerateScenario(1), Mutation::kServeStaleReplica);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.data_violations.empty());
  EXPECT_EQ(report.data_violations.front().kind, "stale_read");
}

TEST(ReplicationSweepTest, ServeStaleReplicaCanaryReplaysDeterministically) {
  const ScenarioSpec spec = GenerateScenario(1);
  const RunReport a = RunScenario(spec, Mutation::kServeStaleReplica);
  const RunReport b = RunScenario(spec, Mutation::kServeStaleReplica);
  ASSERT_FALSE(a.ok());
  ASSERT_EQ(a.data_violations.size(), b.data_violations.size());
  for (size_t i = 0; i < a.data_violations.size(); ++i) {
    EXPECT_EQ(a.data_violations[i].detail, b.data_violations[i].detail);
    EXPECT_EQ(a.data_violations[i].time, b.data_violations[i].time);
  }
}

// Seeds whose expansion draws a mid-run replica kill must run with
// zero oracle violations: reads steer away, writes commit on the
// survivors.
TEST(ReplicationSweepTest, ReplicaKillSeedsStayClean) {
  int covered = 0;
  for (uint64_t seed = 1; seed <= 40 && covered < 4; ++seed) {
    const ScenarioSpec spec = GenerateScenario(seed);
    if (!spec.kill_replica ||
        std::min(spec.replication, spec.num_shards) < 2) {
      continue;
    }
    ++covered;
    const RunReport report = RunScenario(spec);
    EXPECT_TRUE(report.completed) << "seed " << seed << " stalled";
    EXPECT_TRUE(report.data_violations.empty())
        << "seed " << seed << ": "
        << report.data_violations.front().detail;
    EXPECT_TRUE(report.invariant_violations.empty())
        << "seed " << seed << ": "
        << report.invariant_violations.front().detail;
  }
  EXPECT_GE(covered, 1)
      << "no seed in 1..40 drew a replicated kill window; the fuzzer "
         "lost fault coverage";
}

TEST(ReplicationSweepTest, ForcedReplicationRoundTripsThroughArtifact) {
  const ScenarioSpec spec = ExpandReplicated(4, 2);
  const RunReport report = RunScenario(spec, Mutation::kNone, 50);
  const std::string json = simtest::ReproToJson(
      spec, report, Mutation::kNone, 50, /*force_policy=*/false,
      /*force_replication=*/true);
  EXPECT_NE(json.find("\"forced_replication\": 2"), std::string::npos);

  simtest::ReproSpec repro;
  ASSERT_TRUE(simtest::ParseRepro(json, &repro));
  EXPECT_TRUE(repro.force_replication);
  EXPECT_EQ(repro.replication, 2);
  EXPECT_EQ(repro.seed, 4u);
  EXPECT_EQ(repro.max_ops, 50);

  // An artifact without the field must not force anything.
  simtest::ReproSpec plain;
  ASSERT_TRUE(simtest::ParseRepro(
      simtest::ReproToJson(spec, report, Mutation::kNone, 50), &plain));
  EXPECT_FALSE(plain.force_replication);
}

}  // namespace
}  // namespace reflex
