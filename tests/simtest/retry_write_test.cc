// Non-idempotent write paths under faults, checked with the consistency
// oracle: a timed-out or reset write must end in kUnknownOutcome (never
// a retransmit that could double-apply), and whatever a later read
// observes must be explainable by the oracle's zombie rule.

#include <gtest/gtest.h>

#include <vector>

#include "client/reflex_client.h"
#include "sim/fault.h"
#include "simtest/oracle.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using client::IoResult;
using core::ReqStatus;
using sim::FaultKind;
using sim::FaultPlan;
using sim::Micros;
using sim::Millis;
using simtest::ConsistencyOracle;
using testing::Harness;
using testing::RetryingClientOptions;

constexpr uint32_t kSectors = 8;
constexpr size_t kBytes = kSectors * core::kSectorBytes;

/** Issues one oracle-tracked write of `version` and returns its result. */
IoResult AwaitWrite(Harness& h, client::TenantSession& session,
                    ConsistencyOracle& oracle, std::vector<uint8_t>& buf,
                    uint64_t version, uint64_t lba) {
  ConsistencyOracle::StampPayload(buf.data(), version, lba, kSectors);
  auto io = session.Write(lba, kSectors, buf.data());
  EXPECT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  oracle.EndWrite(version, io.Get());
  return io.Get();
}

/** Reads `lba` and feeds the payload through the oracle. */
IoResult AwaitRead(Harness& h, client::TenantSession& session,
                   ConsistencyOracle& oracle, std::vector<uint8_t>& buf,
                   uint64_t lba) {
  auto io = session.Read(lba, kSectors, buf.data());
  EXPECT_TRUE(h.RunUntilReady([&] { return io.Ready(); }));
  // A retransmitted duplicate may refresh the buffer after the future
  // resolves; extend the window to observation time (same rule as the
  // stress runner).
  IoResult observed = io.Get();
  observed.complete_time = std::max(observed.complete_time, h.sim.Now());
  oracle.EndRead(lba, kSectors, buf.data(), observed);
  return io.Get();
}

TEST(RetryWriteTest, UndeliverableWriteIsUnknownOutcomeNotRetried) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());
  ConsistencyOracle oracle;

  std::vector<uint8_t> w1(kBytes), w2(kBytes), r(kBytes);
  const uint64_t v1 = oracle.BeginWrite(0, 0, kSectors, h.sim.Now());
  ASSERT_TRUE(AwaitWrite(h, *session, oracle, w1, v1, 0).ok());

  // Link down for the whole attempt: the second write cannot complete
  // and must NOT be blindly retransmitted (it is not idempotent).
  plan.ScheduleWindow(FaultKind::kNetLinkFlap, h.sim.Now() + Micros(1),
                      Millis(20));
  const uint64_t v2 = oracle.BeginWrite(0, 0, kSectors, h.sim.Now());
  const IoResult res = AwaitWrite(h, *session, oracle, w2, v2, 0);
  EXPECT_EQ(res.status, ReqStatus::kUnknownOutcome);
  EXPECT_EQ(client.fault_stats().retries, 0)
      << "non-idempotent writes must not be retransmitted";

  // After the flap clears, the sector must read as v1 or v2 -- both
  // are acceptable (v2 is a zombie) -- and nothing else.
  h.RunUntilReady([&] { return h.sim.Now() >= Millis(25); });
  ASSERT_TRUE(AwaitRead(h, *session, oracle, r, 0).ok());
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front().detail;
  const uint64_t seen = ConsistencyOracle::ReadStamp(r.data());
  EXPECT_TRUE(seen == v1 || seen == v2);
}

TEST(RetryWriteTest, ResetRacingWriteCompletionDoesNotDoubleApply) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());
  ConsistencyOracle oracle;

  const int64_t before = h.device.stats().writes_completed;

  // Reset the connection while the write is on the wire: the client
  // cannot tell whether the server applied it before the reset.
  plan.ScheduleWindow(FaultKind::kNetReset, Micros(1), Micros(200),
                      static_cast<uint64_t>(h.client_machine->id()));
  h.sim.RunUntil(Micros(2));
  std::vector<uint8_t> w(kBytes), r(kBytes);
  const uint64_t v = oracle.BeginWrite(0, 0, kSectors, h.sim.Now());
  const IoResult res = AwaitWrite(h, *session, oracle, w, v, 0);
  EXPECT_FALSE(res.ok()) << "a reset mid-flight cannot report success";
  EXPECT_EQ(res.status, ReqStatus::kUnknownOutcome);

  // Exactly-zero-or-once: the device never applied the write twice.
  h.RunUntilReady([&] { return h.sim.Now() >= Millis(10); });
  EXPECT_LE(h.device.stats().writes_completed, before + 1);

  // The read (after reconnect) sees either the zombie or unwritten
  // zeros; the oracle accepts both and flags anything else.
  ASSERT_TRUE(AwaitRead(h, *session, oracle, r, 0).ok());
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front().detail;
  EXPECT_GE(client.fault_stats().reconnects, 1);
}

TEST(RetryWriteTest, AppliedWriteWithLostResponseIsAcceptedAsZombie) {
  Harness h;
  FaultPlan plan(h.sim, 5);
  h.net.SetFaultPlan(&plan);
  core::Tenant* tenant = h.LcTenant();
  client::ReflexClient client(h.sim, h.server, h.client_machine,
                              RetryingClientOptions());
  auto session = client.AttachSession(tenant->handle());
  ConsistencyOracle oracle;

  // Drop only messages the SERVER sends for the next millisecond: the
  // write request gets through and applies, but its completion never
  // reaches the client, which must report kUnknownOutcome -- the write
  // executed even though the library cannot know it.
  plan.ScheduleWindow(FaultKind::kNetDrop, h.sim.Now() + Micros(1),
                      Millis(1),
                      static_cast<uint64_t>(h.server_machine->id()));
  std::vector<uint8_t> w(kBytes), r(kBytes);
  const uint64_t v = oracle.BeginWrite(0, 0, kSectors, h.sim.Now());
  const IoResult res = AwaitWrite(h, *session, oracle, w, v, 0);
  EXPECT_EQ(res.status, ReqStatus::kUnknownOutcome)
      << "lost completion on a write is an unknown outcome, not an error";
  EXPECT_GE(h.net.dropped_messages(), 1);

  // The zombie rule makes the silently-applied write acceptable: the
  // read after the window MUST observe v (it really did apply) and the
  // oracle must not flag it.
  h.RunUntilReady([&] { return h.sim.Now() >= Millis(5); });
  ASSERT_TRUE(AwaitRead(h, *session, oracle, r, 0).ok());
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front().detail;
  EXPECT_EQ(ConsistencyOracle::ReadStamp(r.data()), v)
      << "the write applied server-side despite the unknown outcome";
}

}  // namespace
}  // namespace reflex
