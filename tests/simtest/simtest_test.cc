// End-to-end checks of the stress harness itself: clean seeds stay
// clean, scenario expansion is a pure function of the seed, planted
// mutations are caught, and the repro artifact round-trips.

#include <gtest/gtest.h>

#include "simtest/repro.h"
#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace reflex {
namespace {

using simtest::GenerateScenario;
using simtest::Mutation;
using simtest::RunReport;
using simtest::RunScenario;
using simtest::ScenarioSpec;

TEST(SimtestTest, ScenarioExpansionIsPureFunctionOfSeed) {
  const ScenarioSpec a = GenerateScenario(7);
  const ScenarioSpec b = GenerateScenario(7);
  EXPECT_EQ(simtest::ScenarioToJson(a), simtest::ScenarioToJson(b));
  EXPECT_NE(simtest::ScenarioToJson(a),
            simtest::ScenarioToJson(GenerateScenario(8)));
  EXPECT_GE(a.num_shards, 1);
  EXPECT_LE(a.num_shards, 4);
  EXPECT_FALSE(a.tenants.empty());
  for (const simtest::TenantSpec& t : a.tenants) {
    EXPECT_GT(t.lba_span, 0u);
    EXPECT_GT(t.ops, 0);
  }
}

TEST(SimtestTest, CleanSeedsRunWithoutViolations) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const RunReport report = RunScenario(GenerateScenario(seed));
    EXPECT_TRUE(report.completed) << "seed " << seed << " stalled";
    EXPECT_TRUE(report.data_violations.empty())
        << "seed " << seed << ": "
        << report.data_violations.front().detail;
    EXPECT_TRUE(report.invariant_violations.empty())
        << "seed " << seed << ": "
        << report.invariant_violations.front().detail;
    EXPECT_GT(report.reads_checked, 0) << "seed " << seed;
    EXPECT_GT(report.writes_tracked, 0) << "seed " << seed;
  }
}

TEST(SimtestTest, SkippedSubWriteMutationIsCaughtAsTornWrite) {
  // Seed 4 expands to a multi-shard topology where a cross-shard write
  // occurs; skipping one of its sub-I/Os while reporting success must
  // surface as a stale read of the skipped sectors.
  const RunReport report =
      RunScenario(GenerateScenario(4), Mutation::kSkipOneSubWrite);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.data_violations.empty());
  EXPECT_EQ(report.data_violations.front().kind, "stale_read");
}

TEST(SimtestTest, ForgedTokensMutationBreaksConservationLedger) {
  const RunReport report =
      RunScenario(GenerateScenario(1), Mutation::kForgeTokens);
  ASSERT_FALSE(report.ok());
  bool conservation = false;
  for (const auto& v : report.invariant_violations) {
    conservation |=
        v.name.find("token_conservation") != std::string::npos;
  }
  EXPECT_TRUE(conservation)
      << "forged tokens must break the conservation ledger";
}

TEST(SimtestTest, MutatedRunReplaysDeterministically) {
  const ScenarioSpec spec = GenerateScenario(4);
  const RunReport a = RunScenario(spec, Mutation::kSkipOneSubWrite);
  const RunReport b = RunScenario(spec, Mutation::kSkipOneSubWrite);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.reads_checked, b.reads_checked);
  ASSERT_EQ(a.data_violations.size(), b.data_violations.size());
  for (size_t i = 0; i < a.data_violations.size(); ++i) {
    EXPECT_EQ(a.data_violations[i].detail, b.data_violations[i].detail);
    EXPECT_EQ(a.data_violations[i].time, b.data_violations[i].time);
  }
}

TEST(SimtestTest, OpBudgetCapsDeterministically) {
  const ScenarioSpec spec = GenerateScenario(3);
  const RunReport capped = RunScenario(spec, Mutation::kNone, 10);
  EXPECT_TRUE(capped.completed);
  EXPECT_EQ(capped.ops_executed, 10);
}

TEST(SimtestTest, ReproArtifactRoundTrips) {
  const ScenarioSpec spec = GenerateScenario(4);
  const RunReport report =
      RunScenario(spec, Mutation::kSkipOneSubWrite, 107);
  const std::string json = simtest::ReproToJson(
      spec, report, Mutation::kSkipOneSubWrite, 107);

  simtest::ReproSpec repro;
  ASSERT_TRUE(simtest::ParseRepro(json, &repro));
  EXPECT_EQ(repro.seed, 4u);
  EXPECT_EQ(repro.max_ops, 107);
  EXPECT_EQ(repro.mutation, Mutation::kSkipOneSubWrite);
  EXPECT_FALSE(repro.force_policy);

  // The replay key reproduces the failure.
  const RunReport replay =
      RunScenario(GenerateScenario(repro.seed), repro.mutation,
                  repro.max_ops);
  EXPECT_FALSE(replay.ok());
  ASSERT_EQ(replay.data_violations.size(), report.data_violations.size());
  for (size_t i = 0; i < replay.data_violations.size(); ++i) {
    EXPECT_EQ(replay.data_violations[i].detail,
              report.data_violations[i].detail);
  }
}

TEST(SimtestTest, ForcedPolicyRoundTripsThroughArtifact) {
  // A sweep's --policy override is recorded as a top-level
  // "forced_policy" field, distinct from the scenario's descriptive
  // "qos_policy" key, and parses back into the replay spec.
  ScenarioSpec spec = GenerateScenario(4);
  spec.policy = core::QosPolicyKind::kQwin;
  spec.enforce_qos = true;
  const RunReport report =
      RunScenario(spec, Mutation::kSkipOneSubWrite, 107);
  const std::string json = simtest::ReproToJson(
      spec, report, Mutation::kSkipOneSubWrite, 107, /*force_policy=*/true);
  EXPECT_NE(json.find("\"forced_policy\": \"qwin\""), std::string::npos);

  simtest::ReproSpec repro;
  ASSERT_TRUE(simtest::ParseRepro(json, &repro));
  EXPECT_TRUE(repro.force_policy);
  EXPECT_EQ(repro.policy, core::QosPolicyKind::kQwin);
  EXPECT_EQ(repro.seed, 4u);

  // An artifact without the field must not force anything.
  simtest::ReproSpec plain;
  ASSERT_TRUE(simtest::ParseRepro(
      simtest::ReproToJson(spec, report, Mutation::kSkipOneSubWrite, 107),
      &plain));
  EXPECT_FALSE(plain.force_policy);
}

TEST(SimtestTest, MutationNamesRoundTrip) {
  for (Mutation m : {Mutation::kNone, Mutation::kSkipOneSubWrite,
                     Mutation::kForgeTokens,
                     Mutation::kServeStaleReplica}) {
    EXPECT_EQ(simtest::MutationFromName(simtest::MutationName(m)), m);
  }
  EXPECT_EQ(simtest::MutationFromName("garbage"), Mutation::kNone);
}

}  // namespace
}  // namespace reflex
