#include "simtest/oracle.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/protocol.h"

namespace reflex {
namespace {

using client::IoResult;
using core::ReqStatus;
using simtest::ConsistencyOracle;

IoResult Result(ReqStatus status, sim::TimeNs issue, sim::TimeNs done) {
  IoResult r;
  r.status = status;
  r.issue_time = issue;
  r.complete_time = done;
  return r;
}

IoResult Ok(sim::TimeNs issue, sim::TimeNs done) {
  return Result(ReqStatus::kOk, issue, done);
}

/** A payload buffer stamped as a write of `version` at `lba` would be. */
std::vector<uint8_t> Stamped(uint64_t version, uint64_t lba,
                             uint32_t sectors) {
  std::vector<uint8_t> data(
      static_cast<size_t>(sectors) * core::kSectorBytes, 0);
  if (version != ConsistencyOracle::kUnwritten) {
    ConsistencyOracle::StampPayload(data.data(), version, lba, sectors);
  }
  return data;
}

TEST(OracleTest, StampRoundTrips) {
  std::vector<uint8_t> data = Stamped(0x1234, 77, 2);
  EXPECT_EQ(ConsistencyOracle::ReadStamp(data.data()), 0x1234u);
  EXPECT_EQ(
      ConsistencyOracle::ReadStamp(data.data() + core::kSectorBytes),
      0x1234u);
}

TEST(OracleTest, VersionsAreUniqueAcrossTenantsAndOps) {
  ConsistencyOracle oracle;
  const uint64_t a1 = oracle.BeginWrite(0, 0, 1, 10);
  const uint64_t a2 = oracle.BeginWrite(0, 0, 1, 20);
  const uint64_t b1 = oracle.BeginWrite(1, 0, 1, 10);
  EXPECT_NE(a1, a2);
  EXPECT_NE(a1, b1);
  EXPECT_NE(a2, b1);
}

TEST(OracleTest, CommittedVersionIsAcceptable) {
  ConsistencyOracle oracle;
  const uint64_t v = oracle.BeginWrite(0, 100, 4, 10);
  oracle.EndWrite(v, Ok(10, 20));

  std::vector<uint8_t> data = Stamped(v, 100, 4);
  oracle.EndRead(100, 4, data.data(), Ok(30, 40));
  EXPECT_TRUE(oracle.ok()) << oracle.violations().front().detail;
  EXPECT_EQ(oracle.reads_checked(), 1);
}

TEST(OracleTest, SupersededVersionIsStaleRead) {
  ConsistencyOracle oracle;
  const uint64_t v1 = oracle.BeginWrite(0, 100, 1, 10);
  oracle.EndWrite(v1, Ok(10, 20));
  const uint64_t v2 = oracle.BeginWrite(0, 100, 1, 30);
  oracle.EndWrite(v2, Ok(30, 40));

  // Read issued strictly after v2 committed must not see v1.
  std::vector<uint8_t> data = Stamped(v1, 100, 1);
  oracle.EndRead(100, 1, data.data(), Ok(50, 60));
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].kind, "stale_read");
  EXPECT_EQ(oracle.violations()[0].observed, v1);
  EXPECT_EQ(oracle.violations()[0].expected, v2);
}

TEST(OracleTest, RacingReadMaySeeEitherVersion) {
  ConsistencyOracle oracle;
  const uint64_t v1 = oracle.BeginWrite(0, 100, 1, 10);
  oracle.EndWrite(v1, Ok(10, 20));
  const uint64_t v2 = oracle.BeginWrite(0, 100, 1, 30);
  oracle.EndWrite(v2, Ok(30, 50));

  // Window [35, 45] overlaps v2's execution: both versions are legal.
  std::vector<uint8_t> old_data = Stamped(v1, 100, 1);
  oracle.EndRead(100, 1, old_data.data(), Ok(35, 45));
  std::vector<uint8_t> new_data = Stamped(v2, 100, 1);
  oracle.EndRead(100, 1, new_data.data(), Ok(35, 45));
  EXPECT_TRUE(oracle.ok());
}

TEST(OracleTest, ZombieWriteAcceptableEvenAfterLaterCommit) {
  ConsistencyOracle oracle;
  const uint64_t v1 = oracle.BeginWrite(0, 100, 1, 10);
  oracle.EndWrite(v1, Result(ReqStatus::kUnknownOutcome, 10, 20));
  const uint64_t v2 = oracle.BeginWrite(0, 100, 1, 30);
  oracle.EndWrite(v2, Ok(30, 40));

  // The unknown-outcome write may sit queued server-side and apply
  // long after v2: seeing it far in the future is not a violation.
  std::vector<uint8_t> data = Stamped(v1, 100, 1);
  oracle.EndRead(100, 1, data.data(), Ok(1000, 1010));
  EXPECT_TRUE(oracle.ok());
}

TEST(OracleTest, UnwrittenAcceptableOnlyBeforeFirstCommit) {
  ConsistencyOracle oracle;
  std::vector<uint8_t> zeros = Stamped(ConsistencyOracle::kUnwritten, 0, 1);

  oracle.EndRead(100, 1, zeros.data(), Ok(1, 5));
  EXPECT_TRUE(oracle.ok()) << "never-written sectors read as zeros";

  const uint64_t v = oracle.BeginWrite(0, 100, 1, 10);
  oracle.EndWrite(v, Ok(10, 20));
  oracle.EndRead(100, 1, zeros.data(), Ok(30, 40));
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].kind, "stale_read")
      << "zeros after a definite commit are a lost update";
}

TEST(OracleTest, InFlightWriteIsAcceptable) {
  ConsistencyOracle oracle;
  const uint64_t v = oracle.BeginWrite(0, 100, 1, 10);
  // No EndWrite: still pending. A read overlapping it may see it.
  std::vector<uint8_t> data = Stamped(v, 100, 1);
  oracle.EndRead(100, 1, data.data(), Ok(15, 25));
  EXPECT_TRUE(oracle.ok());
}

TEST(OracleTest, MisdirectedPayloadFlagged) {
  ConsistencyOracle oracle;
  const uint64_t v = oracle.BeginWrite(0, 100, 1, 10);
  oracle.EndWrite(v, Ok(10, 20));

  // Payload stamped for lba 100 comes back from a read of lba 200.
  std::vector<uint8_t> data = Stamped(v, 100, 1);
  oracle.EndRead(200, 1, data.data(), Ok(30, 40));
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].kind, "misdirected");
  EXPECT_EQ(oracle.violations()[0].lba, 200u);
}

TEST(OracleTest, FabricatedVersionFlagged) {
  ConsistencyOracle oracle;
  const uint64_t bogus = (uint64_t{9} << 48) | 1234;
  std::vector<uint8_t> data = Stamped(bogus, 100, 1);
  oracle.EndRead(100, 1, data.data(), Ok(10, 20));
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].kind, "unknown_version");
}

TEST(OracleTest, FailedReadsCarryNoPayloadContract) {
  ConsistencyOracle oracle;
  const uint64_t bogus = (uint64_t{9} << 48) | 1234;
  std::vector<uint8_t> data = Stamped(bogus, 100, 1);
  oracle.EndRead(100, 1, data.data(),
                 Result(ReqStatus::kDeviceError, 10, 20));
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.reads_checked(), 0);
}

TEST(OracleTest, TornMultiSectorWriteFlagsExactlyMissingSectors) {
  ConsistencyOracle oracle;
  const uint64_t v = oracle.BeginWrite(0, 100, 4, 10);
  oracle.EndWrite(v, Ok(10, 20));

  // Sectors 0..2 carry v, sector 3 still reads as unwritten: the torn
  // tail of a cross-shard write that reported success.
  std::vector<uint8_t> data = Stamped(v, 100, 4);
  std::fill(data.begin() + 3 * core::kSectorBytes, data.end(), 0);
  oracle.EndRead(100, 4, data.data(), Ok(30, 40));
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_EQ(oracle.violations()[0].kind, "stale_read");
  EXPECT_EQ(oracle.violations()[0].lba, 103u);
  EXPECT_EQ(oracle.violations()[0].expected, v);
}

}  // namespace
}  // namespace reflex
