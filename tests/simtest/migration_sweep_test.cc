// Migration-aware simtest coverage: forced-migration seeds run clean
// against the consistency oracle, the sweep is bit-identical across
// in-process runs, both planted migration mutations are caught, the
// --migrate override round-trips through the repro artifact, and
// autoscaling seeds stay clean.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "simtest/repro.h"
#include "simtest/runner.h"
#include "simtest/scenario.h"

namespace reflex {
namespace {

using simtest::GenerateScenario;
using simtest::Mutation;
using simtest::RunReport;
using simtest::RunScenario;
using simtest::ScenarioSpec;

/** The sweep's --migrate override: applied post-expansion so the RNG
 * stream (and with it the rest of the scenario) is untouched. */
ScenarioSpec ExpandMigrating(uint64_t seed) {
  ScenarioSpec spec = GenerateScenario(seed);
  spec.migrate = true;
  return spec;
}

void ExpectClean(const RunReport& report, uint64_t seed) {
  EXPECT_TRUE(report.completed) << "seed " << seed << " stalled";
  EXPECT_TRUE(report.data_violations.empty())
      << "seed " << seed << ": " << report.data_violations.front().detail;
  EXPECT_TRUE(report.invariant_violations.empty())
      << "seed " << seed << ": "
      << report.invariant_violations.front().detail;
}

// The PR-gating sweep, in-process: ten forced-migration seeds (fuzzed
// schedules raced against the drawn fault plan and replication factor)
// with zero oracle violations, and at least one actually migrating.
TEST(MigrationSweepTest, ForcedMigrationSeedsStayClean) {
  int64_t migrations = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const RunReport report = RunScenario(ExpandMigrating(seed));
    ExpectClean(report, seed);
    migrations += report.migrations_started;
  }
  EXPECT_GE(migrations, 1)
      << "no seed started a migration; the sweep lost its coverage";
}

TEST(MigrationSweepTest, MigrationSweepIsBitIdenticalAcrossRuns) {
  auto sweep = [] {
    std::vector<std::string> artifacts;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const ScenarioSpec spec = ExpandMigrating(seed);
      const RunReport report = RunScenario(spec);
      EXPECT_TRUE(report.ok()) << "seed " << seed;
      artifacts.push_back(simtest::ReproToJson(
          spec, report, Mutation::kNone, -1, /*force_policy=*/false,
          /*force_replication=*/false, /*force_migration=*/true));
    }
    return artifacts;
  };
  EXPECT_EQ(sweep(), sweep());
}

// Canary 1: a migration that silently drops the dirty-recopy rounds
// loses every write that raced the copy window -- the oracle must
// surface it as a stale read, or the oracle is not migration-aware.
TEST(MigrationSweepTest, DropForwardedWriteCanaryIsCaught) {
  const RunReport report =
      RunScenario(GenerateScenario(1), Mutation::kDropForwardedWrite);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.data_violations.empty());
  EXPECT_EQ(report.data_violations.front().kind, "stale_read");
}

// Canary 2: a cutover that forgets the kMoved gates leaves the source
// serving pre-migration bytes to stale-mapped clients.
TEST(MigrationSweepTest, ServePremigrationRangeCanaryIsCaught) {
  const RunReport report =
      RunScenario(GenerateScenario(1), Mutation::kServePremigrationRange);
  ASSERT_FALSE(report.ok());
  ASSERT_FALSE(report.data_violations.empty());
  EXPECT_EQ(report.data_violations.front().kind, "stale_read");
}

TEST(MigrationSweepTest, MigrationCanariesReplayDeterministically) {
  for (Mutation mutation : {Mutation::kDropForwardedWrite,
                            Mutation::kServePremigrationRange}) {
    const ScenarioSpec spec = GenerateScenario(1);
    const RunReport a = RunScenario(spec, mutation);
    const RunReport b = RunScenario(spec, mutation);
    ASSERT_FALSE(a.ok());
    ASSERT_EQ(a.data_violations.size(), b.data_violations.size());
    for (size_t i = 0; i < a.data_violations.size(); ++i) {
      EXPECT_EQ(a.data_violations[i].detail, b.data_violations[i].detail);
      EXPECT_EQ(a.data_violations[i].time, b.data_violations[i].time);
    }
  }
}

TEST(MigrationSweepTest, MigrationMutationNamesRoundTrip) {
  for (Mutation mutation : {Mutation::kDropForwardedWrite,
                            Mutation::kServePremigrationRange}) {
    EXPECT_EQ(simtest::MutationFromName(simtest::MutationName(mutation)),
              mutation);
  }
}

// Seeds whose expansion draws SLO-aware autoscaling must also run
// clean: rebalances ride the same oracle-checked dataplane.
TEST(MigrationSweepTest, AutoscaleSeedsStayClean) {
  int covered = 0;
  for (uint64_t seed = 1; seed <= 60 && covered < 3; ++seed) {
    const ScenarioSpec spec = GenerateScenario(seed);
    if (!spec.autoscale || spec.num_shards < 2) continue;
    ++covered;
    ExpectClean(RunScenario(spec), seed);
  }
  EXPECT_GE(covered, 1)
      << "no seed in 1..60 drew autoscaling; the fuzzer lost coverage";
}

TEST(MigrationSweepTest, ForcedMigrationRoundTripsThroughArtifact) {
  const ScenarioSpec spec = ExpandMigrating(4);
  const RunReport report = RunScenario(spec, Mutation::kNone, 50);
  const std::string json = simtest::ReproToJson(
      spec, report, Mutation::kNone, 50, /*force_policy=*/false,
      /*force_replication=*/false, /*force_migration=*/true);
  EXPECT_NE(json.find("\"forced_migration\": true"), std::string::npos);

  simtest::ReproSpec repro;
  ASSERT_TRUE(simtest::ParseRepro(json, &repro));
  EXPECT_TRUE(repro.force_migration);
  EXPECT_EQ(repro.seed, 4u);
  EXPECT_EQ(repro.max_ops, 50);

  // An artifact without the field must not force anything.
  simtest::ReproSpec plain;
  ASSERT_TRUE(simtest::ParseRepro(
      simtest::ReproToJson(spec, report, Mutation::kNone, 50), &plain));
  EXPECT_FALSE(plain.force_migration);
}

}  // namespace
}  // namespace reflex
