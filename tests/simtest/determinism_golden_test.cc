// Determinism golden test: the Figure-5 style QoS scenario (2 LC + 2 BE
// tenants sharing one enforcing server) run twice in-process must
// produce bit-identical metrics and latency-histogram exports. Any
// drift here means a hidden source of nondeterminism crept into the
// stack -- which would silently invalidate every simtest repro
// artifact.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "obs/export.h"
#include "sim/histogram.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using testing::Harness;

void AppendHistogram(std::ostringstream& out, const char* name,
                     const sim::Histogram& h) {
  char mean[64];
  std::snprintf(mean, sizeof(mean), "%.17g", h.Mean());
  out << name << ": count=" << h.Count() << " min=" << h.Min()
      << " max=" << h.Max() << " mean=" << mean
      << " p50=" << h.Percentile(0.50) << " p95=" << h.Percentile(0.95)
      << " p99=" << h.Percentile(0.99) << "\n";
}

/** One miniature fig5 run; returns the full serialized observable state. */
std::string RunQosScenarioOnce() {
  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.enforce = true;
  Harness h(options);

  struct Setup {
    const char* name;
    core::TenantClass cls;
    core::SloSpec slo;
    double offered_iops;  // 0 => closed loop
    double read_fraction;
  };
  std::vector<Setup> setups = {
      {"A", core::TenantClass::kLatencyCritical,
       {40000, 1.0, sim::Micros(500), 0.95, 4096}, 30000, 1.0},
      {"B", core::TenantClass::kLatencyCritical,
       {20000, 0.8, sim::Micros(500), 0.95, 4096}, 15000, 0.8},
      {"C", core::TenantClass::kBestEffort, {}, 0, 0.95},
      {"D", core::TenantClass::kBestEffort, {}, 0, 0.25},
  };

  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;
  int idx = 0;
  for (const Setup& s : setups) {
    core::Tenant* tenant = h.server.RegisterTenant(s.slo, s.cls);
    if (tenant == nullptr) ADD_FAILURE() << s.name << " inadmissible";
    client::ReflexClient::Options copts;
    copts.num_connections = 4;
    copts.seed = 500 + idx;
    clients.push_back(std::make_unique<client::ReflexClient>(
        h.sim, h.server, h.client_machine, copts));
    sessions.push_back(clients.back()->AttachSession(tenant->handle()));

    client::LoadGenSpec spec;
    spec.read_fraction = s.read_fraction;
    spec.request_bytes = 4096;
    if (s.offered_iops > 0) {
      spec.offered_iops = s.offered_iops;
      spec.poisson_arrivals = false;
    } else {
      spec.queue_depth = 8;
    }
    spec.seed = 900 + idx;
    generators.push_back(std::make_unique<client::LoadGenerator>(
        h.sim, *sessions.back(), spec));
    ++idx;
  }

  const sim::TimeNs warm = sim::Millis(10);
  const sim::TimeNs end = sim::Millis(60);
  for (auto& g : generators) g->Run(warm, end);
  for (auto& g : generators) {
    EXPECT_TRUE(h.RunUntilDone(g->Done(), sim::Seconds(60)));
  }

  std::ostringstream out;
  for (size_t i = 0; i < generators.size(); ++i) {
    EXPECT_GT(generators[i]->AchievedIops(), 0.0)
        << setups[i].name << " did no work";
    char iops[64];
    std::snprintf(iops, sizeof(iops), "%.17g",
                  generators[i]->AchievedIops());
    out << setups[i].name << " iops=" << iops << "\n";
    AppendHistogram(out, "read_latency", generators[i]->read_latency());
    AppendHistogram(out, "write_latency", generators[i]->write_latency());
  }
  out << obs::RegistryToJson(h.server.SnapshotMetrics());
  out << obs::RegistryToCsv(h.server.SnapshotMetrics());
  return out.str();
}

TEST(DeterminismGoldenTest, Fig5QosScenarioIsBitIdenticalAcrossRuns) {
  const std::string first = RunQosScenarioOnce();
  const std::string second = RunQosScenarioOnce();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "two in-process runs of the same scenario diverged: the "
         "simulation has a hidden source of nondeterminism";
}

}  // namespace
}  // namespace reflex
