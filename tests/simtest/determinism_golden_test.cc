// Determinism golden test: the Figure-5 style QoS scenario (2 LC + 2 BE
// tenants sharing one enforcing server) run twice in-process must
// produce bit-identical metrics and latency-histogram exports. Any
// drift here means a hidden source of nondeterminism crept into the
// stack -- which would silently invalidate every simtest repro
// artifact.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "client/load_generator.h"
#include "client/reflex_client.h"
#include "obs/export.h"
#include "sim/histogram.h"
#include "testing/harness.h"

namespace reflex {
namespace {

using testing::Harness;

void AppendHistogram(std::ostringstream& out, const char* name,
                     const sim::Histogram& h) {
  char mean[64];
  std::snprintf(mean, sizeof(mean), "%.17g", h.Mean());
  out << name << ": count=" << h.Count() << " min=" << h.Min()
      << " max=" << h.Max() << " mean=" << mean
      << " p50=" << h.Percentile(0.50) << " p95=" << h.Percentile(0.95)
      << " p99=" << h.Percentile(0.99) << "\n";
}

/** One miniature fig5 run; returns the full serialized observable state. */
std::string RunQosScenarioOnce() {
  core::ServerOptions options;
  options.num_threads = 1;
  options.qos.enforce = true;
  Harness h(options);

  struct Setup {
    const char* name;
    core::TenantClass cls;
    core::SloSpec slo;
    double offered_iops;  // 0 => closed loop
    double read_fraction;
  };
  std::vector<Setup> setups = {
      {"A", core::TenantClass::kLatencyCritical,
       {40000, 1.0, sim::Micros(500), 0.95, 4096}, 30000, 1.0},
      {"B", core::TenantClass::kLatencyCritical,
       {20000, 0.8, sim::Micros(500), 0.95, 4096}, 15000, 0.8},
      {"C", core::TenantClass::kBestEffort, {}, 0, 0.95},
      {"D", core::TenantClass::kBestEffort, {}, 0, 0.25},
  };

  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;
  int idx = 0;
  for (const Setup& s : setups) {
    core::Tenant* tenant = h.server.RegisterTenant(s.slo, s.cls);
    if (tenant == nullptr) ADD_FAILURE() << s.name << " inadmissible";
    client::ReflexClient::Options copts;
    copts.num_connections = 4;
    copts.seed = 500 + idx;
    clients.push_back(std::make_unique<client::ReflexClient>(
        h.sim, h.server, h.client_machine, copts));
    sessions.push_back(clients.back()->AttachSession(tenant->handle()));

    client::LoadGenSpec spec;
    spec.read_fraction = s.read_fraction;
    spec.request_bytes = 4096;
    if (s.offered_iops > 0) {
      spec.offered_iops = s.offered_iops;
      spec.poisson_arrivals = false;
    } else {
      spec.queue_depth = 8;
    }
    spec.seed = 900 + idx;
    generators.push_back(std::make_unique<client::LoadGenerator>(
        h.sim, *sessions.back(), spec));
    ++idx;
  }

  const sim::TimeNs warm = sim::Millis(10);
  const sim::TimeNs end = sim::Millis(60);
  for (auto& g : generators) g->Run(warm, end);
  for (auto& g : generators) {
    EXPECT_TRUE(h.RunUntilDone(g->Done(), sim::Seconds(60)));
  }

  std::ostringstream out;
  for (size_t i = 0; i < generators.size(); ++i) {
    EXPECT_GT(generators[i]->AchievedIops(), 0.0)
        << setups[i].name << " did no work";
    char iops[64];
    std::snprintf(iops, sizeof(iops), "%.17g",
                  generators[i]->AchievedIops());
    out << setups[i].name << " iops=" << iops << "\n";
    AppendHistogram(out, "read_latency", generators[i]->read_latency());
    AppendHistogram(out, "write_latency", generators[i]->write_latency());
  }
  out << obs::RegistryToJson(h.server.SnapshotMetrics());
  out << obs::RegistryToCsv(h.server.SnapshotMetrics());
  return out.str();
}

TEST(DeterminismGoldenTest, Fig5QosScenarioIsBitIdenticalAcrossRuns) {
  const std::string first = RunQosScenarioOnce();
  const std::string second = RunQosScenarioOnce();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "two in-process runs of the same scenario diverged: the "
         "simulation has a hidden source of nondeterminism";
}

/**
 * Per-tenant export with >= 10 tenants: two runs must be bit-identical
 * AND rows must come out in numeric tenant-handle order. Guards the
 * regression where lexicographic label ordering moved tenant=10..12
 * between tenant=1 and tenant=2 as soon as an 11th tenant registered.
 */
std::string RunManyTenantExportOnce(std::vector<size_t>* tenant_rows) {
  core::ServerOptions options;
  options.num_threads = 1;
  Harness h(options);

  std::vector<std::unique_ptr<client::ReflexClient>> clients;
  std::vector<std::unique_ptr<client::TenantSession>> sessions;
  std::vector<std::unique_ptr<client::LoadGenerator>> generators;
  for (int i = 0; i < 12; ++i) {
    core::Tenant* tenant =
        h.server.RegisterTenant({}, core::TenantClass::kBestEffort);
    if (tenant == nullptr) ADD_FAILURE() << "tenant " << i << " inadmissible";
    client::ReflexClient::Options copts;
    copts.seed = 700 + i;
    clients.push_back(std::make_unique<client::ReflexClient>(
        h.sim, h.server, h.client_machine, copts));
    sessions.push_back(clients.back()->AttachSession(tenant->handle()));
    client::LoadGenSpec spec;
    spec.read_fraction = 1.0;
    spec.request_bytes = 4096;
    spec.queue_depth = 2;
    spec.seed = 1100 + i;
    generators.push_back(std::make_unique<client::LoadGenerator>(
        h.sim, *sessions.back(), spec));
  }
  for (auto& g : generators) g->Run(sim::Millis(1), sim::Millis(10));
  for (auto& g : generators) {
    EXPECT_TRUE(h.RunUntilDone(g->Done(), sim::Seconds(60)));
  }

  const std::string csv = obs::RegistryToCsv(h.server.SnapshotMetrics());
  if (tenant_rows != nullptr) {
    tenant_rows->clear();
    std::istringstream lines(csv);
    std::string line;
    while (std::getline(lines, line)) {
      const std::string prefix = "tenant_queue_depth,{tenant=";
      const auto pos = line.find(prefix);
      if (pos == std::string::npos) continue;
      tenant_rows->push_back(static_cast<size_t>(
          std::stoul(line.substr(pos + prefix.size()))));
    }
  }
  return csv;
}

TEST(DeterminismGoldenTest, ManyTenantExportIsIdenticalAndNumericOrdered) {
  std::vector<size_t> rows;
  const std::string first = RunManyTenantExportOnce(&rows);
  const std::string second = RunManyTenantExportOnce(nullptr);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "12-tenant export diverged across runs";
  ASSERT_EQ(rows.size(), 12u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], i + 1)
        << "per-tenant rows not in numeric handle order at row " << i;
  }
}

}  // namespace
}  // namespace reflex
