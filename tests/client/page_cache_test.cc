#include "client/page_cache.h"

#include <gtest/gtest.h>

#include <cstring>

#include "baseline/local_spdk.h"
#include "client/storage_backend.h"
#include "flash/flash_device.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace reflex::client {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest()
      : device_(sim_, flash::DeviceProfile::DeviceA(), 3),
        local_(sim_, device_, baseline::LocalSpdkService::Options{}),
        backend_(local_, 1ULL << 30) {}

  void WritePattern(uint64_t page, uint8_t fill) {
    std::vector<uint8_t> buf(4096, fill);
    auto f = backend_.WriteBytes(page * 4096, 4096, buf.data());
    sim_.Run();
    ASSERT_TRUE(f.Ready() && f.Get().ok());
  }

  sim::Simulator sim_;
  flash::FlashDevice device_;
  baseline::LocalSpdkService local_;
  ServiceStorageAdapter backend_;
};

TEST_F(PageCacheTest, MissThenHit) {
  WritePattern(5, 0xAB);
  PageCache cache(sim_, backend_, 16);
  auto f1 = cache.GetPage(5 * 4096);
  sim_.Run();
  ASSERT_TRUE(f1.Ready());
  EXPECT_EQ(f1.Get()[0], 0xAB);
  EXPECT_EQ(cache.stats().misses, 1);
  auto f2 = cache.GetPage(5 * 4096 + 100);  // same page
  sim_.Run();
  ASSERT_TRUE(f2.Ready());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST_F(PageCacheTest, ConcurrentFetchesDeduplicated) {
  WritePattern(9, 0x7);
  PageCache cache(sim_, backend_, 16);
  auto f1 = cache.GetPage(9 * 4096);
  auto f2 = cache.GetPage(9 * 4096);
  auto f3 = cache.GetPage(9 * 4096);
  sim_.Run();
  ASSERT_TRUE(f1.Ready() && f2.Ready() && f3.Ready());
  EXPECT_EQ(cache.stats().misses, 1) << "one Flash read serves all three";
  EXPECT_EQ(cache.stats().hits, 2);
}

TEST_F(PageCacheTest, LruEviction) {
  PageCache cache(sim_, backend_, 4);
  for (uint64_t p = 0; p < 8; ++p) {
    auto f = cache.GetPage(p * 4096);
    sim_.Run();
  }
  EXPECT_EQ(cache.stats().misses, 8);
  EXPECT_GT(cache.stats().evictions, 0);
  // Recently used pages are still cached; the oldest are not.
  auto recent = cache.GetPage(7 * 4096);
  sim_.Run();
  EXPECT_EQ(cache.stats().hits, 1);
  auto old = cache.GetPage(0);
  sim_.Run();
  EXPECT_EQ(cache.stats().misses, 9);
}

TEST_F(PageCacheTest, InvalidateDropsPages) {
  WritePattern(3, 0x11);
  PageCache cache(sim_, backend_, 16);
  auto f1 = cache.GetPage(3 * 4096);
  sim_.Run();
  EXPECT_EQ(f1.Get()[0], 0x11);
  // New data lands; without invalidation the cache would stay stale.
  WritePattern(3, 0x22);
  cache.Invalidate(3 * 4096, 4096);
  auto f2 = cache.GetPage(3 * 4096);
  sim_.Run();
  EXPECT_EQ(f2.Get()[0], 0x22);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST_F(PageCacheTest, InvalidateCoversInFlightFetch) {
  WritePattern(6, 0xAA);
  PageCache cache(sim_, backend_, 16);
  // Start a fetch but do not run the simulator: the Flash read has
  // snapshotted the old contents and is now in flight.
  auto f = cache.GetPage(6 * 4096);
  ASSERT_FALSE(f.Ready());
  // New data lands (the store is updated at submit time) and the range
  // is invalidated while the old read is still outstanding.
  std::vector<uint8_t> buf(4096, 0xBB);
  auto w = backend_.WriteBytes(6 * 4096, 4096, buf.data());
  cache.Invalidate(6 * 4096, 4096);
  sim_.Run();
  ASSERT_TRUE(w.Ready() && w.Get().ok());
  ASSERT_TRUE(f.Ready());
  ASSERT_NE(f.Get(), nullptr);
  EXPECT_EQ(f.Get()[0], 0xBB)
      << "the outstanding fetch must re-read the backend instead of "
         "inserting pre-invalidation data";
  EXPECT_EQ(cache.stats().invalidated_refetches, 1);

  // The refetched page is genuinely cached (no stale residue).
  auto again = cache.GetPage(6 * 4096);
  sim_.Run();
  EXPECT_EQ(again.Get()[0], 0xBB);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST_F(PageCacheTest, FetchRetriesBeforeSurfacingFailure) {
  // max_attempts = 1 => a failed backend read surfaces immediately as
  // nullptr instead of panicking (callers decide whether it is fatal).
  PageCache::RetryPolicy retry;
  retry.max_attempts = 1;
  PageCache cache(sim_, backend_, 16, 64, 0, retry);
  sim::FaultPlan plan(sim_, 11);
  device_.SetFaultPlan(&plan);
  plan.SetProbability(sim::FaultKind::kFlashReadError, 1.0);
  auto f = cache.GetPage(2 * 4096);
  sim_.Run();
  ASSERT_TRUE(f.Ready());
  EXPECT_EQ(f.Get(), nullptr);
  EXPECT_EQ(cache.stats().fetch_failures, 1);

  // With retries and the fault cleared mid-backoff, the same fetch
  // succeeds and counts its retry.
  plan.SetProbability(sim::FaultKind::kFlashReadError, 0.0);
  auto f2 = cache.GetPage(2 * 4096);
  sim_.Run();
  ASSERT_TRUE(f2.Ready());
  EXPECT_NE(f2.Get(), nullptr);
}

TEST_F(PageCacheTest, BoundsOutstandingIo) {
  PageCache cache(sim_, backend_, 256, /*max_outstanding=*/2);
  for (uint64_t p = 0; p < 50; ++p) cache.GetPage(p * 4096);
  sim_.Run();
  EXPECT_EQ(cache.stats().misses, 50);
}

}  // namespace
}  // namespace reflex::client
