#include "client/block_device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "testing/harness.h"

namespace reflex::client {
namespace {

using sim::Micros;
using sim::Millis;
using testing::Harness;

class BlockDeviceTest : public ::testing::Test {
 protected:
  BlockDeviceTest() : tenant_(harness_.LcTenant(150000, 0.8)) {}

  BlockDevice MakeDevice(BlockDevice::Options options = {}) {
    return BlockDevice(harness_.sim, harness_.server,
                       harness_.client_machine, tenant_->handle(), options);
  }

  Harness harness_;
  core::Tenant* tenant_;
};

TEST_F(BlockDeviceTest, DataRoundTrip) {
  BlockDevice bdev = MakeDevice();
  std::vector<uint8_t> out(8192);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(i * 13);
  }
  auto w = bdev.Write(1 << 20, 8192, out.data());
  ASSERT_TRUE(harness_.RunUntilReady([&] { return w.Ready(); }));
  ASSERT_TRUE(w.Get().ok());

  std::vector<uint8_t> in(8192, 0);
  auto r = bdev.Read(1 << 20, 8192, in.data());
  ASSERT_TRUE(harness_.RunUntilReady([&] { return r.Ready(); }));
  ASSERT_TRUE(r.Get().ok());
  EXPECT_EQ(std::memcmp(in.data(), out.data(), 8192), 0);
}

TEST_F(BlockDeviceTest, LargeRequestSplitAcrossContexts) {
  BlockDevice::Options options;
  options.max_request_sectors = 64;  // 32KB chunks
  BlockDevice bdev = MakeDevice(options);
  std::vector<uint8_t> out(1 << 20);  // 1MB => 32 chunks
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>(i % 251);
  }
  auto w = bdev.Write(0, 1 << 20, out.data());
  ASSERT_TRUE(harness_.RunUntilReady([&] { return w.Ready(); }));
  ASSERT_TRUE(w.Get().ok());
  std::vector<uint8_t> in(1 << 20, 0);
  auto r = bdev.Read(0, 1 << 20, in.data());
  ASSERT_TRUE(harness_.RunUntilReady([&] { return r.Ready(); }));
  ASSERT_TRUE(r.Get().ok());
  EXPECT_EQ(in, out);
}

TEST_F(BlockDeviceTest, UnloadedLatencyIncludesKernelPath) {
  // Table 2 context: the ReFlex block-device path adds the client
  // kernel block + TCP layers over the raw user-level client (~99us),
  // so a 4KB read lands around 110-145us.
  BlockDevice bdev = MakeDevice();
  sim::Histogram lat;
  for (int i = 0; i < 200; ++i) {
    auto r = bdev.Read(static_cast<uint64_t>(i) * 4096, 4096, nullptr);
    ASSERT_TRUE(harness_.RunUntilReady([&] { return r.Ready(); }));
    lat.Record(r.Get().Latency());
  }
  EXPECT_GT(lat.Mean() / 1e3, 100.0);
  EXPECT_LT(lat.Mean() / 1e3, 160.0);
}

sim::Task ClosedLoopReader(sim::Simulator& sim, BlockDevice& bdev,
                           sim::TimeNs end, int64_t* completed,
                           uint64_t salt) {
  uint64_t i = 0;
  while (sim.Now() < end) {
    co_await bdev.Read(4096 * ((salt * 977 + i++) % 4096), 4096, nullptr);
    ++*completed;
  }
}

TEST_F(BlockDeviceTest, PerContextThroughputCeiling) {
  // Paper section 4.2: the Linux TCP stack supports ~70K messages per
  // second per thread, so a single blk-mq context tops out there.
  BlockDevice::Options options;
  options.num_contexts = 1;
  BlockDevice bdev = MakeDevice(options);

  int64_t completed = 0;
  const sim::TimeNs end = Millis(200);
  for (int q = 0; q < 32; ++q) {
    ClosedLoopReader(harness_.sim, bdev, end, &completed, q);
  }
  harness_.sim.RunUntil(end + Millis(50));

  const double iops = static_cast<double>(completed) / sim::ToSeconds(end);
  EXPECT_LT(iops, 90000.0);
  EXPECT_GT(iops, 40000.0);
}

TEST_F(BlockDeviceTest, MoreContextsScaleThroughput) {
  BlockDevice::Options one;
  one.num_contexts = 1;
  BlockDevice::Options six;
  six.num_contexts = 6;

  auto measure = [&](BlockDevice::Options options) {
    BlockDevice bdev = MakeDevice(options);
    int64_t completed = 0;
    const sim::TimeNs start = harness_.sim.Now();
    const sim::TimeNs end = start + Millis(100);
    for (int q = 0; q < 64; ++q) {
      ClosedLoopReader(harness_.sim, bdev, end, &completed, q);
    }
    harness_.sim.RunUntil(end + Millis(50));
    return static_cast<double>(completed) / sim::ToSeconds(end - start);
  };

  const double one_ctx = measure(one);
  const double six_ctx = measure(six);
  EXPECT_GT(six_ctx, 3.0 * one_ctx);
}

TEST_F(BlockDeviceTest, CapacityMatchesDevice) {
  BlockDevice bdev = MakeDevice();
  EXPECT_EQ(bdev.CapacityBytes(),
            harness_.device.profile().capacity_sectors * 512ULL);
}

}  // namespace
}  // namespace reflex::client
